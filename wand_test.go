package queenbee

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// wandPair boots two engines over the same seed and corpus — one on the
// default block-max path, one forced exhaustive — and returns both. Ranks
// are computed so the page-rank blend is live when rankWeight > 0.
func wandPair(t testing.TB, seed uint64, ndocs int, rankWeight float64) (wand, exhaustive *Engine, corp *corpus.Corpus) {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Seed = seed
	cfg.NumDocs = ndocs
	cfg.MeanDocLen = 40
	corp = corpus.Generate(cfg)
	pages := make([]Page, len(corp.Docs))
	for i, d := range corp.Docs {
		pages[i] = Page{URL: d.URL, Text: d.Text, Links: d.Links}
	}
	build := func(opts ...Option) *Engine {
		base := []Option{WithSeed(seed), WithPeers(10), WithBees(3), WithRankWeight(rankWeight)}
		e := New(append(base, opts...)...)
		owner := e.NewAccount("wand-owner", 1<<40)
		if _, err := e.PublishBatch(owner, pages); err != nil {
			t.Fatal(err)
		}
		e.RunUntilIdle()
		e.ComputeRanks(2)
		e.RunUntilIdle()
		return e
	}
	return build(), build(WithExhaustiveScoring(true)), corp
}

// wandWorkload builds the query mix the equivalence tests replay on both
// engines: single terms (the document-at-a-time direct path), AND, OR,
// phrase, parsed boolean queries, and paginated variants.
type wandQuery struct {
	name string
	run  func(e *Engine) (*Response, error)
}

func wandWorkload(corp *corpus.Corpus, seed uint64) []wandQuery {
	var qs []wandQuery
	for i, q := range corp.Queries(seed, 6, 1) {
		text := q.Text
		qs = append(qs, wandQuery{fmt.Sprintf("term-%d", i), func(e *Engine) (*Response, error) {
			return e.Query(text).All().Run()
		}})
	}
	for i, q := range corp.Queries(seed+1, 4, 2) {
		text := q.Text
		qs = append(qs, wandQuery{fmt.Sprintf("and-%d", i), func(e *Engine) (*Response, error) {
			return e.Query(text).All().Run()
		}})
		qs = append(qs, wandQuery{fmt.Sprintf("or-%d", i), func(e *Engine) (*Response, error) {
			return e.Query(strings.Join(q.Terms, " OR ")).Run()
		}})
		qs = append(qs, wandQuery{fmt.Sprintf("phrase-%d", i), func(e *Engine) (*Response, error) {
			return e.Query(text).Phrase().Run()
		}})
	}
	for i, q := range corp.Queries(seed+2, 3, 1) {
		text := q.Text
		// Pagination: the heap target is offset+limit, so deep pages must
		// still match exhaustive scoring exactly.
		for page := 1; page <= 3; page++ {
			p := page
			qs = append(qs, wandQuery{fmt.Sprintf("page%d-%d", p, i), func(e *Engine) (*Response, error) {
				return e.Query(text).Any().Page(p, 3).Run()
			}})
		}
	}
	for i, q := range corp.Queries(seed+3, 2, 3) {
		terms := q.Terms
		qs = append(qs, wandQuery{fmt.Sprintf("bool-%d", i), func(e *Engine) (*Response, error) {
			return e.Query(fmt.Sprintf("%s OR (%s %s)", terms[0], terms[1], terms[2])).Limit(7).Run()
		}})
	}
	return qs
}

// TestWANDEngineMatchesExhaustive: across seeds, rank-weight extremes
// (0 disables the blend, 1000 makes bound slack maximally dangerous) and
// every workload shape, the block-max engine must return byte-identical
// responses — same URLs, scores, ranks, totals, order — to the engine
// that scores every candidate exhaustively.
func TestWANDEngineMatchesExhaustive(t *testing.T) {
	for _, tc := range []struct {
		seed       uint64
		rankWeight float64
	}{
		{seed: 3, rankWeight: 0},
		{seed: 3, rankWeight: 1},
		{seed: 11, rankWeight: 1000},
	} {
		t.Run(fmt.Sprintf("seed=%d/rw=%v", tc.seed, tc.rankWeight), func(t *testing.T) {
			w, ex, corp := wandPair(t, tc.seed, 60, tc.rankWeight)
			var skipped int64
			for _, q := range wandWorkload(corp, tc.seed) {
				wr, werr := q.run(w)
				er, eerr := q.run(ex)
				if (werr == nil) != (eerr == nil) {
					t.Fatalf("%s: error mismatch: wand=%v exhaustive=%v", q.name, werr, eerr)
				}
				if werr != nil {
					continue
				}
				if wr.Total != er.Total {
					t.Fatalf("%s: total %d, want %d", q.name, wr.Total, er.Total)
				}
				if len(wr.Results) != len(er.Results) {
					t.Fatalf("%s: %d results, want %d", q.name, len(wr.Results), len(er.Results))
				}
				for i := range er.Results {
					if wr.Results[i] != er.Results[i] {
						t.Fatalf("%s: result %d = %+v, want %+v", q.name, i, wr.Results[i], er.Results[i])
					}
				}
				if er.ScoreStats.BlocksSkipped != 0 || er.ScoreStats.DocsSkipped != 0 {
					t.Fatalf("%s: exhaustive engine skipped work: %+v", q.name, er.ScoreStats)
				}
				skipped += wr.ScoreStats.DocsSkipped + wr.ScoreStats.BlocksSkipped
			}
			if skipped == 0 {
				t.Error("block-max engine never skipped anything across the whole workload")
			}
		})
	}
}

// TestSearchScalingSublinear is the deterministic acceptance check
// behind BenchmarkSearchScaling: on the same 1×/10×/100× corpora, (a)
// the block-max engine's results must equal the exhaustive engine's
// exactly at every scale, and (b) postings scanned per query at 100×
// must be at most 10× the 1× figure — the early-termination claim, in
// work counted rather than wall clock.
func TestSearchScalingSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("100× corpus ingest in -short mode")
	}
	scanned := map[int]int64{}
	for _, ndocs := range []int{48, 4800} {
		e, corp := scalingCorpusEngine(t, ndocs)
		ex, _ := scalingCorpusEngine(t, ndocs, WithExhaustiveScoring(true))
		queries := corp.Queries(7, 32, 1)
		var total int64
		for _, q := range queries {
			resp, err := e.Query(q.Text).Limit(10).Run()
			if err != nil {
				t.Fatal(err)
			}
			exResp, err := ex.Query(q.Text).Limit(10).Run()
			if err != nil {
				t.Fatal(err)
			}
			if resp.Total != exResp.Total || len(resp.Results) != len(exResp.Results) {
				t.Fatalf("docs=%d %q: total %d/%d results %d/%d", ndocs, q.Text,
					resp.Total, exResp.Total, len(resp.Results), len(exResp.Results))
			}
			for i := range exResp.Results {
				if resp.Results[i] != exResp.Results[i] {
					t.Fatalf("docs=%d %q result %d: %+v, want %+v", ndocs, q.Text, i,
						resp.Results[i], exResp.Results[i])
				}
			}
			total += resp.ScoreStats.PostingsScanned
		}
		scanned[ndocs] = total / int64(len(queries))
	}
	t.Logf("postings scanned per query: 1x=%d 100x=%d", scanned[48], scanned[4800])
	if scanned[4800] > 10*scanned[48] {
		t.Fatalf("postings scanned grew superlinearly with corpus: 1x=%d 100x=%d (> 10x)",
			scanned[48], scanned[4800])
	}
}

// TestExhaustiveScoringOption: the option must actually land in the
// config and zero out skip counters.
func TestExhaustiveScoringOption(t *testing.T) {
	e := New(WithSeed(1), WithPeers(6), WithBees(2), WithExhaustiveScoring(true))
	if !e.Cluster.Config().ExhaustiveScoring {
		t.Fatal("WithExhaustiveScoring did not set config")
	}
	owner := e.NewAccount("o", 1000)
	if err := e.Publish(owner, "dweb://p", "exhaustive scoring option body", nil); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle()
	resp, err := e.Query("scoring option").Run()
	if err != nil {
		t.Fatal(err)
	}
	if resp.ScoreStats.BlocksSkipped != 0 || resp.ScoreStats.DocsSkipped != 0 {
		t.Fatalf("exhaustive engine reported skips: %+v", resp.ScoreStats)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("results = %+v", resp.Results)
	}
}
