// Command detlint statically enforces the repository's determinism and
// cost-accounting contract: sorted map iteration where order leaks,
// simulated time only (no wall clock) outside cmd/, seeded xrand streams
// only (no math/rand), no swallowed dht/store/chain errors, and no dropped
// netsim.Cost values.
//
// Usage:
//
//	detlint [-v] [packages]
//
// Package patterns follow the go tool's shape: "./..." analyzes every
// package under the current module, "./internal/..." a subtree, and a
// plain directory path analyzes that one package. With no arguments it
// defaults to "./...". Test files are not analyzed.
//
// Findings are suppressed by an in-source directive carrying a mandatory
// reason:
//
//	//detlint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it. Reasonless, unknown-analyzer
// and stale (non-suppressing) directives are themselves findings, and the
// run summary always prints the suppression count per analyzer, so the
// pile of exceptions stays visible in every CI log.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	verbose := flag.Bool("v", false, "list suppressed findings too")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [-v] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	loader, modPath, err := analysis.NewModuleLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	root := loader.Roots[modPath]

	dirs, err := expandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}

	var pkgs []*analysis.Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			fmt.Fprintf(os.Stderr, "detlint: %s is outside module %s\n", dir, modPath)
			return 2
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(importPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	runner := &analysis.Runner{Analyzers: analysis.All()}
	res, err := runner.Run(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}

	for _, d := range res.Findings {
		pos := loader.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: [%s] %s\n", relTo(cwd, pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if *verbose {
		for _, d := range res.Suppressed {
			pos := loader.Fset.Position(d.Pos)
			fmt.Printf("%s:%d:%d: [%s, suppressed: %s] %s\n", relTo(cwd, pos.Filename), pos.Line, pos.Column, d.Analyzer, d.SuppressReason, d.Message)
		}
	}
	fmt.Println(res.Summary())
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// expandPatterns resolves go-style package patterns to package directories.
func expandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(ds ...string) {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := filepath.Join(cwd, rest)
			sub, err := analysis.PackageDirs(base)
			if err != nil {
				return nil, err
			}
			add(sub...)
			continue
		}
		dir := filepath.Join(cwd, pat)
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("no such package directory: %s", pat)
		}
		add(dir)
	}
	return dirs, nil
}

// relTo renders a path relative to base for compact diagnostics.
func relTo(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
