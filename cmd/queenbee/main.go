// Command queenbee boots a simulated QueenBee deployment, publishes a
// demo corpus through the smart contract, lets the worker bees index and
// rank it, and serves a few queries — the whole Figure 1 flow in one run.
//
// Usage:
//
//	queenbee -peers 24 -bees 6 -docs 40 -query "decentralized search"
//	queenbee -query 'search OR retrieval -crawler site:dweb://doc-000' -explain
//
// The -query flag speaks the full structured query language (uppercase
// OR/AND, '-' exclusions, "quoted phrases", site: URL-prefix filters,
// parentheses — see docs/query-language.md); -explain prints the
// compiled execution plan with per-node candidate counts and simulated
// network cost.
package main

import (
	"flag"
	"fmt"
	"os"

	queenbee "repro"
	"repro/internal/corpus"
)

func main() {
	peers := flag.Int("peers", 16, "DWeb devices in the swarm")
	bees := flag.Int("bees", 4, "worker bees")
	docs := flag.Int("docs", 30, "synthetic pages to publish")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	query := flag.String("query", "", "extra structured query to run (optional; supports OR/AND, -, quotes, site:)")
	explain := flag.Bool("explain", false, "print the execution plan for -query")
	flag.Parse()

	engine := queenbee.New(
		queenbee.WithSeed(*seed),
		queenbee.WithPeers(*peers),
		queenbee.WithBees(*bees),
	)
	fmt.Printf("QueenBee swarm up: %d peers, %d worker bees\n", *peers, *bees)

	creator := engine.NewAccount("creator", 100_000)
	advertiser := engine.NewAccount("advertiser", 100_000)
	user := engine.NewAccount("user", 1_000)

	ccfg := corpus.DefaultConfig()
	ccfg.Seed = *seed
	ccfg.NumDocs = *docs
	corp := corpus.Generate(ccfg)
	fmt.Printf("publishing %d pages via the smart contract (no crawling)…\n", *docs)
	for _, d := range corp.Docs {
		if err := engine.Publish(creator, d.URL, d.Text, d.Links); err != nil {
			fmt.Fprintln(os.Stderr, "publish:", err)
			os.Exit(1)
		}
	}
	engine.RunUntilIdle()
	fmt.Println("worker bees finished indexing; computing page ranks…")
	epoch := engine.ComputeRanks(4)
	if err := engine.PayPopularityRewards(epoch); err != nil {
		fmt.Println("popularity rewards:", err)
	}

	adID, err := engine.RegisterAd(advertiser, []string{corp.Vocab(0)}, 10, 500)
	if err != nil {
		fmt.Fprintln(os.Stderr, "register ad:", err)
		os.Exit(1)
	}

	for _, q := range corp.Queries(*seed, 3, 2) {
		results, ads, err := engine.Search(q.Text, 5)
		if err != nil {
			fmt.Printf("query %q: %v\n", q.Text, err)
			continue
		}
		fmt.Printf("\nquery %q → %d results\n", q.Text, len(results))
		for i, r := range results {
			fmt.Printf("  %d. %-28s score=%.3f rank=%.4f\n", i+1, r.URL, r.Score, r.Rank)
		}
		for _, ad := range ads {
			fmt.Printf("  [ad %d] keywords=%v bid=%d\n", ad.ID, ad.Keywords, ad.BidPerClick)
			if err := engine.Click(user, ad.ID, results[0].URL); err == nil {
				fmt.Printf("  [ad %d] user clicked — creator and bees paid\n", ad.ID)
			}
		}
	}
	// The -query flag goes through the structured pipeline: boolean
	// operators, exclusions, site: filters, pagination, Explain.
	if *query != "" {
		b := engine.Query(*query).Page(1, 5)
		if *explain {
			b = b.Explain()
		}
		resp, err := b.Run()
		if err != nil {
			fmt.Printf("\nstructured query %q: %v\n", *query, err)
		} else {
			fmt.Printf("\nstructured query %q → %d of %d matches\n",
				*query, len(resp.Results), resp.Total)
			for i, r := range resp.Results {
				fmt.Printf("  %d. %-28s score=%.3f rank=%.4f\n", i+1, r.URL, r.Score, r.Rank)
			}
			for _, ad := range resp.Ads {
				fmt.Printf("  [ad %d] keywords=%v bid=%d\n", ad.ID, ad.Keywords, ad.BidPerClick)
			}
			if resp.Explain != nil {
				fmt.Print(resp.Explain.String())
			}
		}
	}
	_ = adID

	s := engine.Stats()
	fmt.Printf("\n--- deployment summary ---\n")
	fmt.Printf("pages: %d   chain height: %d   honey supply: %d\n", s.Pages, s.Height, s.HoneySupply)
	fmt.Printf("tasks: %d finalized, %d failed, %d open   active bees: %d\n",
		s.TasksFinalized, s.TasksFailed, s.TasksOpen, s.Workers)
	fmt.Printf("creator balance: %d honey (started with 100000)\n", engine.Balance(creator))
}
