package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	queenbee "repro"
	"repro/internal/corpus"
)

// testHandler builds one small indexed deployment shared by every
// subtest (engine boot dominates test time). testTerm is a vocabulary
// word guaranteed to appear in the corpus (the most frequent one).
var (
	handlerOnce sync.Once
	testH       http.Handler
	testTerm    string
)

func serverHandler(t *testing.T) http.Handler {
	t.Helper()
	handlerOnce.Do(func() {
		engine, publisher := buildEngine(1, 10, 3, 12, 2, true, true, true, false)
		testH = newHandler(engine, publisher, defaultLimits())
		ccfg := corpus.DefaultConfig()
		ccfg.Seed = 1
		ccfg.NumDocs = 12
		testTerm = corpus.Generate(ccfg).Vocab(0)
	})
	return testH
}

func getJSON(t *testing.T, h http.Handler, url string, wantStatus int, into any) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s = %d (%s), want %d", url, rec.Code, rec.Body.String(), wantStatus)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s content-type = %q", url, ct)
	}
	if into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, rec.Body.String(), err)
		}
	}
}

func TestSearchEndpoint(t *testing.T) {
	h := serverHandler(t)
	var out searchJSON
	getJSON(t, h, "/search?q="+testTerm+"&size=5", http.StatusOK, &out)
	if out.Total == 0 || len(out.Results) == 0 {
		t.Fatalf("search returned nothing: %+v", out)
	}
	if len(out.Results) > 5 {
		t.Fatalf("size=5 returned %d results", len(out.Results))
	}
	if out.Cost.Msgs == 0 {
		t.Fatalf("search response carries no simulated cost: %+v", out.Cost)
	}
	for _, r := range out.Results {
		if !strings.HasPrefix(r.URL, "dweb://") {
			t.Fatalf("result URL %q not a dweb address", r.URL)
		}
	}
}

func TestSearchPaginationTiles(t *testing.T) {
	h := serverHandler(t)
	var full searchJSON
	getJSON(t, h, "/search?q="+testTerm+"&size=10", http.StatusOK, &full)
	if len(full.Results) < 4 {
		t.Skipf("corpus too small for pagination test: %d hits", len(full.Results))
	}
	var p1, p2 searchJSON
	getJSON(t, h, "/search?q="+testTerm+"&page=1&size=2", http.StatusOK, &p1)
	getJSON(t, h, "/search?q="+testTerm+"&page=2&size=2", http.StatusOK, &p2)
	got := append(append([]resultJSON{}, p1.Results...), p2.Results...)
	for i, r := range got {
		if r.URL != full.Results[i].URL {
			t.Fatalf("page tiling broke at %d: %q vs %q", i, r.URL, full.Results[i].URL)
		}
	}
}

func TestSearchModesAndSnippets(t *testing.T) {
	h := serverHandler(t)
	for _, mode := range []string{"parsed", "all", "any", "phrase"} {
		getJSON(t, h, "/search?q="+testTerm+"&mode="+mode, http.StatusOK, &searchJSON{})
	}
	var snip searchJSON
	getJSON(t, h, "/search?q="+testTerm+"&size=2&snippets=1", http.StatusOK, &snip)
	if len(snip.Results) > 0 && snip.Results[0].Snippet == "" {
		t.Fatalf("snippets=1 returned no snippet: %+v", snip.Results[0])
	}
}

func TestSearchRejectsBadRequests(t *testing.T) {
	h := serverHandler(t)
	cases := []string{
		"/search",                                // missing q
		"/search?q=" + strings.Repeat("x", 2000), // too long
		"/search?q=" + testTerm + "&size=0",      // below min
		"/search?q=" + testTerm + "&size=1000",   // above max-page-size
		"/search?q=" + testTerm + "&page=zero",   // not an integer
		"/search?q=" + testTerm + "&mode=fuzzy",  // unknown mode
		"/search?q=-only",                        // exclusion-only: bad syntax
		"/search?q=the+of",                       // stopwords only: empty query
	}
	for _, url := range cases {
		var e map[string]string
		getJSON(t, h, url, http.StatusBadRequest, &e)
		if e["error"] == "" {
			t.Fatalf("%s: no error message in body", url)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	h := serverHandler(t)
	var out explainJSON
	getJSON(t, h, "/explain?q="+testTerm, http.StatusOK, &out)
	if out.Plan == nil || len(out.Shards) == 0 {
		t.Fatalf("explain missing plan/shards: %+v", out)
	}
	if out.Costs["total"].Msgs == 0 {
		t.Fatalf("explain missing total cost: %+v", out.Costs)
	}
	if !strings.Contains(out.Rendered, "plan") {
		t.Fatalf("rendered plan = %q", out.Rendered)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	h := serverHandler(t)
	var out healthJSON
	getJSON(t, h, "/healthz", http.StatusOK, &out)
	if out.Status != "ok" || out.Pages == 0 || out.Workers == 0 {
		t.Fatalf("healthz = %+v", out)
	}
	if out.Cache.SegBudget == 0 || out.Cache.ChainBudget == 0 {
		t.Fatalf("healthz missing cache budgets: %+v", out.Cache)
	}
}

// TestReadyzEndpoint: a healthy deployment answers 200 with every shard
// reachable, and the repair counters ride along (maintenance runs after
// publish rounds, so the loops have already probed).
func TestReadyzEndpoint(t *testing.T) {
	h := serverHandler(t)
	var out readyJSON
	getJSON(t, h, "/readyz", http.StatusOK, &out)
	if !out.Ready || out.ShardsOK != out.ShardsTotal || len(out.FailedShards) != 0 {
		t.Fatalf("readyz = %+v, want fully ready", out)
	}
	if out.ShardsTotal == 0 {
		t.Fatalf("readyz reports no shards: %+v", out)
	}
	if out.Repair.Runs == 0 || out.Repair.ProbedKeys == 0 {
		t.Fatalf("maintenance never ran on the serving engine: %+v", out.Repair)
	}
	if out.Repair.SegmentsLost != 0 {
		t.Fatalf("healthy deployment lost segments: %+v", out.Repair)
	}
}

// TestStatsEndpoint: the serving tier's counters are visible — pool
// shape, per-frontend load, aggregate caches — and queries actually
// move them.
func TestStatsEndpoint(t *testing.T) {
	h := serverHandler(t)
	getJSON(t, h, "/search?q="+testTerm, http.StatusOK, nil)
	var out statsJSON
	getJSON(t, h, "/stats", http.StatusOK, &out)
	if out.PoolSize != 2 || !out.Hedged {
		t.Fatalf("pool shape = %+v, want size 2 hedged", out)
	}
	if len(out.Frontends) != out.PoolSize {
		t.Fatalf("stats list %d frontends for a pool of %d", len(out.Frontends), out.PoolSize)
	}
	var served, busy int64
	for _, f := range out.Frontends {
		served += f.Served
		busy += f.BusySimUS
	}
	if served == 0 || busy == 0 {
		t.Fatalf("no load booked against any frontend: %+v", out.Frontends)
	}
	if out.Cache.SegBudget == 0 {
		t.Fatalf("aggregate cache stats missing budgets: %+v", out.Cache)
	}

	// Write-path block: the boot's publish rounds left a ledger — rounds
	// driven, segments put, bytes ingested — and the per-tier histogram
	// accounts for every live segment chain.
	if out.Write.Rounds == 0 || out.Write.SegmentWrites == 0 || out.Write.PointerWrites == 0 {
		t.Fatalf("write block empty after indexing boot: %+v", out.Write)
	}
	if out.Write.IngestedBytes == 0 {
		t.Fatalf("no ingested bytes accounted: %+v", out.Write)
	}
	if out.Write.Amplification < 1 {
		t.Fatalf("write amplification %v < 1 with ingested bytes booked", out.Write.Amplification)
	}
	tiered := 0
	for _, n := range out.Write.SegmentsPerTier {
		tiered += n
	}
	if tiered == 0 {
		t.Fatalf("per-tier histogram accounts no segments: %+v", out.Write)
	}

	// Rank block: the boot ran one full epoch, so freshness reports it
	// as both the latest and the last exact epoch, with no delta drift.
	if out.Rank.Epoch == 0 || out.Rank.LastFull != out.Rank.Epoch {
		t.Fatalf("rank block = %+v, want a finalized full epoch", out.Rank)
	}
	if out.Rank.DeltasSinceFull != 0 {
		t.Fatalf("full-epoch boot reports delta drift: %+v", out.Rank)
	}
}

// TestSearchDeadline: a simulated deadline shorter than one shard RTT
// answers 504 with the typed error and the partial execution trace;
// the same query without a deadline still succeeds afterwards (the
// abandoned wave left caches and singleflights consistent).
func TestSearchDeadline(t *testing.T) {
	h := serverHandler(t)
	var out deadlineJSON
	getJSON(t, h, "/search?q="+testTerm+"&deadline_ms=1", http.StatusGatewayTimeout, &out)
	if !strings.Contains(out.Error, "deadline") {
		t.Fatalf("504 error = %q, want the typed deadline error", out.Error)
	}
	if out.Trace == nil || !out.Trace.Partial || len(out.Trace.Shards) == 0 {
		t.Fatalf("504 missing partial trace: %+v", out.Trace)
	}
	if out.Cost.Msgs == 0 {
		t.Fatalf("a deadline-stopped wave still costs the work it ran: %+v", out.Cost)
	}
	getJSON(t, h, "/search?q="+testTerm, http.StatusOK, nil)

	var st statsJSON
	getJSON(t, h, "/stats", http.StatusOK, &st)
	if st.DeadlineMisses == 0 {
		t.Fatal("deadline miss not counted in /stats")
	}
}

// postJSON sends a JSON body and decodes the JSON response.
func postJSON(t *testing.T, h http.Handler, url, body string, wantStatus int, into any) {
	t.Helper()
	req := httptest.NewRequest("POST", url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("POST %s = %d (%s), want %d", url, rec.Code, rec.Body.String(), wantStatus)
	}
	if into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("POST %s: bad JSON %q: %v", url, rec.Body.String(), err)
		}
	}
}

// TestPublishEndpoint ingests a batch through POST /publish and then
// finds the new pages through GET /search — the full write-then-read
// serving loop over one shared engine.
func TestPublishEndpoint(t *testing.T) {
	h := serverHandler(t)
	body := `{"pages":[
		{"url":"dweb://api/one","text":"glowworm beacon essay about luminous navigation"},
		{"url":"dweb://api/two","text":"glowworm colonies and their luminous caves"}
	]}`
	var out publishRespJSON
	postJSON(t, h, "/publish", body, http.StatusOK, &out)
	if out.Pages != 2 {
		t.Fatalf("pages = %d, want 2", out.Pages)
	}
	if out.Round.Materialized == 0 {
		t.Fatalf("round materialized nothing: %+v", out.Round)
	}
	// One batch task → one segment; pointer writes bounded by shards.
	if out.Round.SegmentWrites != 1 || out.Round.StatsWrites != 1 {
		t.Fatalf("batch write counters: %+v", out.Round)
	}
	if len(out.Round.Errors) > 0 {
		t.Fatalf("round errors: %v", out.Round.Errors)
	}
	if out.Round.Partial {
		t.Fatalf("clean round flagged partial: %+v", out.Round)
	}
	if out.Round.WaveCost.Msgs == 0 {
		t.Fatalf("round carries no simulated cost: %+v", out.Round)
	}

	var got searchJSON
	getJSON(t, h, "/search?q=glowworm+luminous", http.StatusOK, &got)
	if got.Total != 2 {
		t.Fatalf("published pages not searchable: %+v", got)
	}
}

func TestPublishRejectsBadBatches(t *testing.T) {
	h := serverHandler(t)
	cases := []string{
		`not json`,
		`{"pages":[]}`,
		`{"pages":[{"url":"","text":"x"}]}`,
		`{"pages":[{"url":"dweb://no-text","text":""}]}`,
		`{"pages":[{"url":"dweb://dup","text":"a"},{"url":"dweb://dup","text":"b"}]}`,
	}
	for _, body := range cases {
		var e map[string]any
		postJSON(t, h, "/publish", body, http.StatusBadRequest, &e)
		if e["error"] == "" {
			t.Fatalf("%s: no error message in body", body)
		}
	}
	// Oversized batches are refused before touching the engine.
	var pages []string
	for i := 0; i < defaultLimits().maxBatchPages+1; i++ {
		pages = append(pages, `{"url":"dweb://big/`+strconv.Itoa(i)+`","text":"w"}`)
	}
	postJSON(t, h, "/publish", `{"pages":[`+strings.Join(pages, ",")+`]}`,
		http.StatusBadRequest, nil)
}

// TestPublishPartialFailureSurfaced is the POST /publish audit: a round
// receipt carrying per-bee errors must not render like a full success.
// The JSON body flags it "partial": true with the error summary — the
// exact shape a client retrying failed contributions keys off.
func TestPublishPartialFailureSurfaced(t *testing.T) {
	rr := queenbee.RoundReceipt{
		Materialized: 3,
		Errors: []queenbee.RoundError{
			{Bee: "bee-2", Shard: 5, Stage: "segment-write", Err: errors.New("replica down")},
			{Bee: "bee-4", Shard: -1, Task: "idx:9", Stage: "build", Err: errors.New("decode failed")},
		},
	}
	out := roundOf(rr)
	if !out.Partial {
		t.Fatalf("receipt with %d errors not flagged partial: %+v", len(rr.Errors), out)
	}
	if len(out.Errors) != 2 || !strings.Contains(out.Errors[0], "bee-2") {
		t.Fatalf("error summary lost: %+v", out.Errors)
	}
	enc, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"partial":true`) {
		t.Fatalf("partial flag missing from wire JSON: %s", enc)
	}

	// And a clean receipt stays non-partial with errors omitted.
	clean, err := json.Marshal(roundOf(queenbee.RoundReceipt{Materialized: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(clean), `"partial":false`) || strings.Contains(string(clean), `"errors"`) {
		t.Fatalf("clean receipt JSON: %s", clean)
	}
}

// TestCrawlBootServesIngestStats boots a deployment in -crawl mode (the
// corpus arrives through the streaming pipeline) and checks the crawl's
// counters surface in GET /stats and the index still serves.
func TestCrawlBootServesIngestStats(t *testing.T) {
	engine, publisher := buildEngine(2, 10, 3, 24, 2, true, true, true, true)
	h := newHandler(engine, publisher, defaultLimits())

	var st statsJSON
	getJSON(t, h, "/stats", http.StatusOK, &st)
	in := st.Ingest
	if in.Fetched != 24 || in.Published == 0 || in.Batches == 0 {
		t.Fatalf("ingest counters = %+v, want the crawled corpus accounted", in)
	}
	if in.Published+in.Deduped != in.Fetched {
		t.Fatalf("fetched pages neither published nor deduped: %+v", in)
	}
	if in.RoundErrors != 0 {
		t.Fatalf("crawl rounds recorded errors: %+v", in)
	}
	if in.MakespanUS <= 0 || in.PagesPerSec <= 0 || in.Speedup < 1 {
		t.Fatalf("ingest timing missing: %+v", in)
	}

	ccfg := corpus.DefaultConfig()
	ccfg.Seed = 2
	ccfg.NumDocs = 24
	term := corpus.Generate(ccfg).Vocab(0)
	var out searchJSON
	getJSON(t, h, "/search?q="+term+"&size=5", http.StatusOK, &out)
	if out.Total == 0 {
		t.Fatalf("crawled index serves nothing for %q", term)
	}
}

// canonicalSearch re-encodes a /search body with its cost zeroed:
// per-message jitter advances the link streams, so the simulated cost of
// a repeat query legitimately differs call to call — the *results* may
// not.
func canonicalSearch(t *testing.T, body []byte) string {
	t.Helper()
	var out searchJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad search JSON %q: %v", body, err)
	}
	out.Cost = costJSON{}
	enc, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(enc)
}

// TestConcurrentRequestsConsistent hammers the shared engine from many
// client goroutines and asserts every response carries results identical
// to the sequential baseline — the serving-side face of the determinism
// soak (costs are excluded: jitter draws advance per message by design).
func TestConcurrentRequestsConsistent(t *testing.T) {
	h := serverHandler(t)
	urls := []string{
		"/search?q=" + testTerm + "&size=5",
		"/search?q=" + testTerm + "&mode=any&size=3",
		"/search?q=" + testTerm + "&page=2&size=2",
	}
	want := make(map[string]string, len(urls))
	for _, u := range urls {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		want[u] = canonicalSearch(t, rec.Body.Bytes())
	}
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				u := urls[(c+i)%len(urls)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
				if rec.Code != http.StatusOK {
					t.Errorf("client %d: GET %s = %d", c, u, rec.Code)
					return
				}
				if got := canonicalSearch(t, rec.Body.Bytes()); got != want[u] {
					t.Errorf("client %d: GET %s results diverged:\n got %s\nwant %s", c, u, got, want[u])
					return
				}
			}
		}(c)
	}
	wg.Wait()
}
