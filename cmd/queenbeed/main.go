// Command queenbeed serves a QueenBee deployment over HTTP: it boots the
// simulated swarm, publishes a demo corpus through the smart contract,
// lets the worker bees index and rank it, and then answers queries from
// many concurrent clients against one shared engine — the serving shape
// the paper's "stateless frontend" implies.
//
// Endpoints (all JSON):
//
//	GET  /search?q=<query>[&page=N][&size=K][&mode=parsed|all|any|phrase][&snippets=1][&deadline_ms=D]
//	GET  /explain?q=<query>           — the compiled plan with per-node counts and costs
//	GET  /healthz                     — liveness, deployment summary, cache occupancy
//	GET  /readyz                      — readiness: per-shard index reachability (503 while degraded)
//	GET  /stats                       — serving tier: per-frontend load, caches, deadline misses, repair and ingest counters
//	POST /publish                     — ingest a page batch: {"pages":[{"url","text","links"}]}
//
// The default mode speaks the full structured query language (uppercase
// OR/AND, '-' exclusions, "quoted phrases", site: URL-prefix filters,
// parentheses — docs/query-language.md). Per-request limits (query
// length, page size, body size, batch size, handler timeout) keep one
// abusive client from monopolizing the shared engine; see
// docs/serving.md.
//
// Queries are served by a pool of per-peer frontends behind a
// deterministic least-loaded balancer (-pool, -hedged); each request's
// context is threaded into the simulated waves, so a disconnected
// client abandons its remaining shard fetches. deadline_ms bounds the
// query's *simulated* latency: a query whose simulated cost would
// overrun it is stopped mid-wave and answered 504 with the partial
// execution trace.
//
// Publishes run under the server's write lock — the engine's mutation
// contract is a single deterministic driver — while queries share a
// read lock and stay concurrent among themselves. One POST /publish
// ingests the whole batch as one protocol round (one commit-reveal
// cycle, one shard-pointer write per touched shard — docs/indexing.md)
// and reports the round receipt: wave cost, write counters and any
// write-path errors.
//
// Usage:
//
//	queenbeed -addr :8080 -peers 24 -bees 6 -docs 60
//	queenbeed -crawl -docs 200        # boot corpus via the streaming crawler pipeline
//	curl 'localhost:8080/search?q=decentralized+search&size=5'
//	curl -X POST localhost:8080/publish -d '{"pages":[{"url":"dweb://new","text":"fresh words"}]}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	queenbee "repro"
	"repro/internal/corpus"
)

// limits are the per-request guardrails of the shared engine.
type limits struct {
	maxQueryBytes int
	maxPageSize   int
	maxBatchPages int
	maxBodyBytes  int64
	timeout       time.Duration
}

func defaultLimits() limits {
	return limits{
		maxQueryBytes: 1024,
		maxPageSize:   100,
		maxBatchPages: 64,
		maxBodyBytes:  1 << 20,
		timeout:       5 * time.Second,
	}
}

// server answers HTTP requests against one shared engine. Queries are
// concurrency-safe and share the read lock; POST /publish mutates the
// deployment and takes the write lock, honoring the engine's
// single-driver mutation contract while queries stay concurrent among
// themselves.
type server struct {
	engine    *queenbee.Engine
	publisher *queenbee.Account // owns API-published pages
	lim       limits
	start     time.Time

	mu sync.RWMutex // read: queries; write: publish rounds
}

// newHandler wires the API routes, each wrapped in the request timeout.
// The Content-Type is pre-set on the real response writer so the 503
// body http.TimeoutHandler emits on timeout is also served as JSON (it
// would otherwise be content-sniffed to text/plain on this all-JSON
// API); handlers overwrite the header with the same value on the normal
// path.
func newHandler(e *queenbee.Engine, publisher *queenbee.Account, lim limits) http.Handler {
	s := &server{engine: e, publisher: publisher, lim: lim, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /publish", s.handlePublish)
	inner := http.TimeoutHandler(mux, lim.timeout, `{"error":"request timed out"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		inner.ServeHTTP(w, r)
	})
}

// costJSON renders a simulated cost for API consumers.
type costJSON struct {
	Latency   string `json:"latency"`
	LatencyUS int64  `json:"latency_us"`
	Bytes     int64  `json:"bytes"`
	Msgs      int    `json:"msgs"`
}

func costOf(c queenbee.Cost) costJSON {
	return costJSON{
		Latency:   c.Latency.String(),
		LatencyUS: c.Latency.Microseconds(),
		Bytes:     c.Bytes,
		Msgs:      c.Msgs,
	}
}

type resultJSON struct {
	URL     string  `json:"url"`
	Score   float64 `json:"score"`
	Rank    float64 `json:"rank"`
	Snippet string  `json:"snippet,omitempty"`
}

type adJSON struct {
	ID          uint64   `json:"id"`
	Keywords    []string `json:"keywords"`
	BidPerClick uint64   `json:"bid_per_click"`
}

// degradedJSON flags a partial answer served under -degraded: the wave
// legs that failed and how complete the answer is.
type degradedJSON struct {
	FailedShards []int   `json:"failed_shards"`
	Completeness float64 `json:"completeness"`
	Cause        string  `json:"cause"`
}

type searchJSON struct {
	Query    string        `json:"query"`
	Page     int           `json:"page"`
	Size     int           `json:"size"`
	Total    int           `json:"total"`
	Results  []resultJSON  `json:"results"`
	Ads      []adJSON      `json:"ads"`
	Cost     costJSON      `json:"cost"`
	Degraded *degradedJSON `json:"degraded,omitempty"`
}

// buildQuery validates the request parameters and assembles the builder,
// or replies with a 400 and returns nil. The request's context rides
// into the builder: a client that disconnects abandons its query's
// remaining simulated waves, and deadline_ms bounds the query's
// simulated latency (504 with partial trace on overrun).
func (s *server) buildQuery(w http.ResponseWriter, r *http.Request) (*queenbee.QueryBuilder, int, int) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing q parameter")
		return nil, 0, 0
	}
	if len(q) > s.lim.maxQueryBytes {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("query exceeds %d bytes", s.lim.maxQueryBytes))
		return nil, 0, 0
	}
	page, ok := intParam(w, r, "page", 1, 1, 1<<20)
	if !ok {
		return nil, 0, 0
	}
	size, ok := intParam(w, r, "size", 10, 1, s.lim.maxPageSize)
	if !ok {
		return nil, 0, 0
	}
	deadlineMS, ok := intParam(w, r, "deadline_ms", 0, 1, 1<<20)
	if !ok {
		return nil, 0, 0
	}
	b := s.engine.QueryCtx(r.Context(), q)
	if deadlineMS > 0 {
		b = b.Deadline(time.Duration(deadlineMS) * time.Millisecond)
	}
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "parsed":
	case "all":
		b = b.All()
	case "any":
		b = b.Any()
	case "phrase":
		b = b.Phrase()
	default:
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q", mode))
		return nil, 0, 0
	}
	b = b.Page(page, size)
	if r.URL.Query().Get("snippets") == "1" {
		b = b.WithSnippets()
	}
	return b, page, size
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	b, page, size := s.buildQuery(w, r)
	if b == nil {
		return
	}
	s.mu.RLock()
	resp, err := b.Run()
	s.mu.RUnlock()
	if err != nil {
		writeQueryErr(w, resp, err)
		return
	}
	out := searchJSON{
		Query:   r.URL.Query().Get("q"),
		Page:    page,
		Size:    size,
		Total:   resp.Total,
		Results: make([]resultJSON, 0, len(resp.Results)),
		Ads:     make([]adJSON, 0, len(resp.Ads)),
		Cost:    costOf(resp.Cost),
	}
	if d := resp.Degraded; d != nil {
		out.Degraded = &degradedJSON{FailedShards: d.FailedShards, Completeness: d.Completeness, Cause: d.Cause}
	}
	for _, res := range resp.Results {
		out.Results = append(out.Results, resultJSON{URL: res.URL, Score: res.Score, Rank: res.Rank, Snippet: res.Snippet})
	}
	for _, ad := range resp.Ads {
		out.Ads = append(out.Ads, adJSON{ID: ad.ID, Keywords: ad.Keywords, BidPerClick: ad.BidPerClick})
	}
	writeJSON(w, http.StatusOK, out)
}

type explainJSON struct {
	Query      string                `json:"query"`
	Mode       string                `json:"mode"`
	Terms      []string              `json:"terms"`
	Shards     []int                 `json:"shards"`
	Plan       *queenbee.ExplainNode `json:"plan"`
	Candidates int                   `json:"candidates"`
	Returned   int                   `json:"returned"`
	Costs      map[string]costJSON   `json:"costs"`
	Rendered   string                `json:"rendered"`
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	b, _, _ := s.buildQuery(w, r)
	if b == nil {
		return
	}
	s.mu.RLock()
	resp, err := b.Explain().Run()
	s.mu.RUnlock()
	if err != nil {
		writeQueryErr(w, resp, err)
		return
	}
	ex := resp.Explain
	writeJSON(w, http.StatusOK, explainJSON{
		Query:      ex.Query,
		Mode:       ex.Mode,
		Terms:      ex.Terms,
		Shards:     ex.Shards,
		Plan:       ex.Plan,
		Candidates: ex.Candidates,
		Returned:   ex.Returned,
		Costs: map[string]costJSON{
			"load":    costOf(ex.LoadCost),
			"snippet": costOf(ex.SnippetCost),
			"total":   costOf(ex.TotalCost),
		},
		Rendered: ex.String(),
	})
}

type healthJSON struct {
	Status  string              `json:"status"`
	Uptime  string              `json:"uptime"`
	Pages   int                 `json:"pages"`
	Height  uint64              `json:"height"`
	Workers int                 `json:"workers"`
	Cache   queenbee.CacheStats `json:"cache"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sum := s.engine.Stats()
	writeJSON(w, http.StatusOK, healthJSON{
		Status:  "ok",
		Uptime:  time.Since(s.start).Round(time.Millisecond).String(),
		Pages:   sum.Pages,
		Height:  sum.Height,
		Workers: sum.Workers,
		Cache:   s.engine.CacheStats(),
	})
}

// readyJSON is the GET /readyz body: serving readiness as per-shard
// index reachability, plus the self-healing counters so an operator
// watching a degraded deployment can see repair progressing.
type readyJSON struct {
	Ready        bool       `json:"ready"`
	ShardsTotal  int        `json:"shards_total"`
	ShardsOK     int        `json:"shards_ok"`
	FailedShards []int      `json:"failed_shards,omitempty"`
	Repair       repairJSON `json:"repair"`
}

// handleReadyz answers readiness, distinct from /healthz liveness: the
// process can be alive while churn has made index shards unreachable.
// 200 when every shard's pointer is reachable, 503 while degraded —
// load balancers and orchestration probes key off exactly this split.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	ready := s.engine.Ready()
	repair := s.engine.RepairStats()
	s.mu.RUnlock()
	status := http.StatusOK
	if !ready.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, readyJSON{
		Ready:        ready.Ready,
		ShardsTotal:  ready.ShardsTotal,
		ShardsOK:     ready.ShardsOK,
		FailedShards: ready.Failed,
		Repair:       repairOf(repair),
	})
}

// repairJSON renders the self-healing counters for /readyz and /stats.
type repairJSON struct {
	Runs          int      `json:"runs"`
	ProbedKeys    int      `json:"probed_keys"`
	Republished   int      `json:"republished"`
	Reseeded      int      `json:"reseeded"`
	ReseededBytes int64    `json:"reseeded_bytes"`
	SegmentsLost  int      `json:"segments_lost"`
	Reprovided    int      `json:"reprovided"`
	Cost          costJSON `json:"cost"`
}

func repairOf(rs queenbee.RepairStats) repairJSON {
	return repairJSON{
		Runs:          rs.Runs,
		ProbedKeys:    rs.ProbedKeys,
		Republished:   rs.Republished,
		Reseeded:      rs.Reseeded,
		ReseededBytes: rs.ReseededBytes,
		SegmentsLost:  rs.SegmentsLost,
		Reprovided:    rs.Reprovided,
		Cost:          costOf(rs.Cost),
	}
}

// frontendJSON is one pool frontend's load in GET /stats.
type frontendJSON struct {
	Served    int64               `json:"served"`
	InFlight  int                 `json:"in_flight"`
	BusySimUS int64               `json:"busy_sim_us"`
	Hedges    int64               `json:"hedges"`
	Cache     queenbee.CacheStats `json:"cache"`
}

// ingestJSON renders the streaming pipeline's accumulated counters
// (every Engine.Crawl on this deployment, e.g. a -crawl boot) for
// GET /stats.
type ingestJSON struct {
	Fetched       int     `json:"fetched"`
	FetchFailed   int     `json:"fetch_failed"`
	Dangling      int     `json:"dangling"`
	Deduped       int     `json:"deduped"`
	Published     int     `json:"published"`
	Batches       int     `json:"batches"`
	RoundErrors   int     `json:"round_errors"`
	QueueDepthMax int     `json:"queue_depth_max"`
	QueueWaitUS   int64   `json:"queue_wait_us"`
	StallWaitUS   int64   `json:"stall_wait_us"`
	MakespanUS    int64   `json:"makespan_us"`
	PagesPerSec   float64 `json:"sim_pages_per_sec"`
	Speedup       float64 `json:"pipeline_speedup"`
}

func ingestOf(is queenbee.IngestStats) ingestJSON {
	return ingestJSON{
		Fetched:       is.Fetched,
		FetchFailed:   is.FetchFailed,
		Dangling:      is.Dangling,
		Deduped:       is.Deduped,
		Published:     is.Published,
		Batches:       is.Batches,
		RoundErrors:   is.RoundErrors,
		QueueDepthMax: is.QueueDepthMax,
		QueueWaitUS:   is.QueueWait.Microseconds(),
		StallWaitUS:   is.StallWait.Microseconds(),
		MakespanUS:    is.Makespan.Microseconds(),
		PagesPerSec:   is.PagesPerSec(),
		Speedup:       is.Speedup(),
	}
}

// writeJSONBlock renders the write path's cumulative ledger: rounds,
// put counters, per-tier segment histogram, and the ingested/compacted
// byte split whose ratio is the write amplification.
type writeJSONBlock struct {
	Rounds          int     `json:"rounds"`
	SegmentWrites   int     `json:"segment_writes"`
	PointerWrites   int     `json:"pointer_writes"`
	Compactions     int     `json:"compactions"`
	StatsWrites     int     `json:"stats_writes"`
	IngestedBytes   int64   `json:"ingested_bytes"`
	CompactedBytes  int64   `json:"compacted_bytes"`
	Amplification   float64 `json:"write_amplification"`
	SegmentsPerTier []int   `json:"segments_per_tier"`
}

func writeOf(ws queenbee.WriteStats) writeJSONBlock {
	return writeJSONBlock{
		Rounds:          ws.Rounds,
		SegmentWrites:   ws.SegmentWrites,
		PointerWrites:   ws.PointerWrites,
		Compactions:     ws.Compactions,
		StatsWrites:     ws.StatsWrites,
		IngestedBytes:   ws.IngestedBytes,
		CompactedBytes:  ws.CompactedBytes,
		Amplification:   ws.Amplification(),
		SegmentsPerTier: ws.SegmentsPerTier,
	}
}

// rankJSON renders rank freshness: the latest finalized epoch, the
// last exact (full) epoch, the delta epochs since, and the pages
// dirtied but not yet covered by any epoch.
type rankJSON struct {
	Epoch           uint64 `json:"epoch"`
	LastFull        uint64 `json:"last_full_epoch"`
	DeltasSinceFull int    `json:"deltas_since_full"`
	DirtyPages      int    `json:"dirty_pages"`
}

func rankOf(rs queenbee.RankStatus) rankJSON {
	return rankJSON{
		Epoch:           rs.Epoch,
		LastFull:        rs.LastFull,
		DeltasSinceFull: rs.DeltasSinceFull,
		DirtyPages:      rs.DirtyPages,
	}
}

// statsJSON is the GET /stats body: the serving tier's per-frontend
// load counters, aggregate cache occupancy, deadline misses, the
// self-healing loops' repair counters, the ingest pipeline's
// accumulated crawl counters, and the write path's compaction/rank
// freshness ledger.
type statsJSON struct {
	PoolSize       int                 `json:"pool_size"`
	Hedged         bool                `json:"hedged"`
	DeadlineMisses int64               `json:"deadline_misses"`
	Frontends      []frontendJSON      `json:"frontends"`
	Cache          queenbee.CacheStats `json:"cache"` // aggregated across the pool
	Repair         repairJSON          `json:"repair"`
	Ingest         ingestJSON          `json:"ingest"`
	Write          writeJSONBlock      `json:"write"`
	Rank           rankJSON            `json:"rank"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ps := s.engine.PoolStats()
	out := statsJSON{
		PoolSize:       ps.Size,
		Hedged:         ps.Hedged,
		DeadlineMisses: ps.DeadlineMisses,
		Frontends:      make([]frontendJSON, 0, len(ps.Frontends)),
		Repair:         repairOf(s.engine.RepairStats()),
		Ingest:         ingestOf(s.engine.IngestStats()),
		// Both served from in-memory accumulators — no DHT reads, so
		// polling /stats never consumes simulation RNG draws.
		Write: writeOf(s.engine.WriteStats()),
		Rank:  rankOf(s.engine.RankStatus()),
	}
	for _, fl := range ps.Frontends {
		out.Frontends = append(out.Frontends, frontendJSON{
			Served:    fl.Served,
			InFlight:  fl.InFlight,
			BusySimUS: fl.BusySim.Microseconds(),
			Hedges:    fl.Hedges,
			Cache:     fl.Cache,
		})
		// The aggregate sums the per-frontend snapshots already in hand,
		// so it always agrees with the rows in this same response.
		out.Cache.Add(fl.Cache)
	}
	writeJSON(w, http.StatusOK, out)
}

// publishJSON is the POST /publish request body.
type publishJSON struct {
	Pages []pageJSON `json:"pages"`
}

type pageJSON struct {
	URL   string   `json:"url"`
	Text  string   `json:"text"`
	Links []string `json:"links,omitempty"`
}

// roundJSON renders a round receipt for API consumers. Speedup is the
// serial/wave latency ratio the concurrent round engine achieved.
type roundJSON struct {
	Materialized  int      `json:"materialized"`
	StoreCost     costJSON `json:"store_cost"`
	WaveCost      costJSON `json:"wave_cost"`
	SerialCost    costJSON `json:"serial_cost"`
	Speedup       float64  `json:"speedup"`
	SegmentWrites int      `json:"segment_writes"`
	PointerWrites int      `json:"pointer_writes"`
	StatsWrites   int      `json:"stats_writes"`
	Compactions   int      `json:"compactions"`
	// Partial flags a round that succeeded overall but recorded per-bee
	// write-path errors — some contributions may be missing from the
	// materialized segments. Clients that treat 200 as "fully indexed"
	// must check this; Errors carries the summary.
	Partial bool     `json:"partial"`
	Errors  []string `json:"errors,omitempty"`
}

func roundOf(rr queenbee.RoundReceipt) roundJSON {
	out := roundJSON{
		Materialized:  rr.Materialized,
		StoreCost:     costOf(rr.StoreCost),
		WaveCost:      costOf(rr.Wave()),
		SerialCost:    costOf(rr.Serial()),
		SegmentWrites: rr.SegmentWrites,
		PointerWrites: rr.PointerWrites,
		StatsWrites:   rr.StatsWrites,
		Compactions:   rr.Compactions,
		Partial:       len(rr.Errors) > 0,
	}
	if wave := rr.Wave().Latency; wave > 0 {
		out.Speedup = float64(rr.Serial().Latency) / float64(wave)
	}
	for _, re := range rr.Errors {
		out.Errors = append(out.Errors, re.Error())
	}
	return out
}

// publishRespJSON is the POST /publish response.
type publishRespJSON struct {
	Pages      int       `json:"pages"`
	TotalPages int       `json:"total_pages"` // deployment-wide, after the round
	Round      roundJSON `json:"round"`
}

// handlePublish ingests a page batch as one protocol round, under the
// server's write lock (mutations are a single deterministic driver).
func (s *server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req publishJSON
	body := http.MaxBytesReader(w, r.Body, s.lim.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Pages) == 0 {
		writeErr(w, http.StatusBadRequest, "no pages in batch")
		return
	}
	if len(req.Pages) > s.lim.maxBatchPages {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("batch exceeds %d pages", s.lim.maxBatchPages))
		return
	}
	pages := make([]queenbee.Page, 0, len(req.Pages))
	for _, p := range req.Pages {
		if p.URL == "" || p.Text == "" {
			writeErr(w, http.StatusBadRequest, "every page needs url and text")
			return
		}
		pages = append(pages, queenbee.Page{URL: p.URL, Text: p.Text, Links: p.Links})
	}

	s.mu.Lock()
	rr, err := s.engine.PublishBatch(s.publisher, pages)
	var total int
	if err == nil {
		total = s.engine.Stats().Pages
	}
	s.mu.Unlock()
	if err != nil {
		// A rejected batch (foreign ownership, duplicate URL — refused
		// atomically) is the client's fault; anything else is a
		// server-side fault (e.g. the content store).
		if errors.Is(err, queenbee.ErrBatchRejected) {
			writeErr(w, http.StatusBadRequest, err.Error())
		} else {
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, publishRespJSON{
		Pages:      len(pages),
		TotalPages: total,
		Round:      roundOf(rr),
	})
}

// intParam parses an optional integer query parameter within [min, max].
func intParam(w http.ResponseWriter, r *http.Request, name string, def, min, max int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < min || v > max {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("%s must be an integer in [%d, %d]", name, min, max))
		return 0, false
	}
	return v, true
}

// deadlineJSON is the 504 body for a query stopped by its lifecycle:
// the typed error plus the partial execution trace — what ran before
// the deadline and what it cost.
type deadlineJSON struct {
	Error string             `json:"error"`
	Cost  costJSON           `json:"cost"`
	Trace *deadlineTraceJSON `json:"trace,omitempty"`
}

type deadlineTraceJSON struct {
	Partial bool                `json:"partial"`
	Terms   []string            `json:"terms"`
	Shards  []int               `json:"shards"`
	Costs   map[string]costJSON `json:"costs"`
}

// writeQueryErr maps query-surface errors onto HTTP statuses: malformed
// queries are the client's fault, an unreachable index shard is a
// (retryable) server-side condition, and a missed deadline is a 504
// carrying the partial trace from resp (non-nil exactly on that path).
func writeQueryErr(w http.ResponseWriter, resp *queenbee.Response, err error) {
	switch {
	case errors.Is(err, queenbee.ErrEmptyQuery), errors.Is(err, queenbee.ErrBadSyntax):
		writeErr(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, queenbee.ErrDeadlineExceeded):
		out := deadlineJSON{Error: err.Error()}
		if resp != nil {
			out.Cost = costOf(resp.Cost)
			if ex := resp.Explain; ex != nil {
				out.Trace = &deadlineTraceJSON{
					Partial: ex.Partial,
					Terms:   ex.Terms,
					Shards:  ex.Shards,
					Costs: map[string]costJSON{
						"load":  costOf(ex.LoadCost),
						"total": costOf(ex.TotalCost),
					},
				}
			}
		}
		writeJSON(w, http.StatusGatewayTimeout, out)
	case errors.Is(err, queenbee.ErrShardUnavailable):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// buildEngine boots the deployment and indexes the demo corpus — the
// write side runs to completion before the first query is served. The
// returned account owns the demo corpus and every page later ingested
// through POST /publish. With crawl set, the corpus arrives through the
// streaming ingest pipeline (fetcher → extractor → bounded queue →
// pipelined publish rounds, GET /stats shows the counters) instead of
// one monolithic batch.
func buildEngine(seed uint64, peers, bees, docs, pool int, hedged, maintenance, degraded, crawl bool) (*queenbee.Engine, *queenbee.Account) {
	engine := queenbee.New(
		queenbee.WithSeed(seed),
		queenbee.WithPeers(peers),
		queenbee.WithBees(bees),
		queenbee.WithFrontendPool(pool),
		queenbee.WithHedgedReads(hedged),
		queenbee.WithMaintenance(maintenance),
		queenbee.WithDegradedReads(degraded),
	)
	creator := engine.NewAccount("creator", 1_000_000)
	ccfg := corpus.DefaultConfig()
	ccfg.Seed = seed
	ccfg.NumDocs = docs
	corp := corpus.Generate(ccfg)
	pages := make([]queenbee.Page, 0, len(corp.Docs))
	seeds := make([]string, 0, len(corp.Docs))
	for _, d := range corp.Docs {
		pages = append(pages, queenbee.Page{URL: d.URL, Text: d.Text, Links: d.Links})
		seeds = append(seeds, d.URL)
	}
	if crawl {
		st, err := engine.Crawl(context.Background(), seeds, queenbee.CrawlOptions{
			Owner: creator,
			Pages: pages,
		})
		if err != nil {
			log.Fatalf("crawl corpus: %v", err)
		}
		log.Printf("crawled corpus: %d fetched, %d deduped, %d published in %d rounds (%.0f sim pages/s, %.2f× pipelining)",
			st.Fetched, st.Deduped, st.Published, st.Batches, st.PagesPerSec(), st.Speedup())
	} else if rr, err := engine.PublishBatch(creator, pages); err != nil {
		// The demo corpus ships as one batch: one commit-reveal round,
		// one shard-pointer write per touched shard.
		log.Fatalf("publish corpus: %v", err)
	} else if len(rr.Errors) > 0 {
		log.Fatalf("publish corpus: round errors: %v", rr.Errors[0])
	}
	engine.RunUntilIdle()
	engine.ComputeRanks(4)
	return engine, creator
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	peers := flag.Int("peers", 16, "DWeb devices in the swarm")
	bees := flag.Int("bees", 4, "worker bees")
	docs := flag.Int("docs", 40, "synthetic pages to publish before serving")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	pool := flag.Int("pool", 4, "frontends in the serving tier")
	hedged := flag.Bool("hedged", true, "hedge each query's slowest shard fetch on a second frontend")
	maintenance := flag.Bool("maintenance", true, "run a self-healing pass (republish/re-seed/reprovide) after every protocol round")
	degraded := flag.Bool("degraded", true, "serve partial answers with a degraded warning when some shards are unreachable")
	crawl := flag.Bool("crawl", false, "ingest the boot corpus through the streaming crawler pipeline instead of one monolithic batch")
	maxQuery := flag.Int("max-query-bytes", 1024, "reject queries longer than this")
	maxPage := flag.Int("max-page-size", 100, "largest size= a request may ask for")
	maxBatch := flag.Int("max-batch-pages", 64, "largest page batch POST /publish accepts")
	maxBody := flag.Int64("max-body-bytes", 1<<20, "largest request body POST /publish accepts")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request handler timeout")
	flag.Parse()

	log.Printf("booting QueenBee swarm: %d peers, %d bees, %d docs (seed %d)…", *peers, *bees, *docs, *seed)
	engine, publisher := buildEngine(*seed, *peers, *bees, *docs, *pool, *hedged, *maintenance, *degraded, *crawl)
	sum := engine.Stats()
	log.Printf("index ready: %d pages, chain height %d, %d active bees, %d frontends (hedged=%v)",
		sum.Pages, sum.Height, sum.Workers, engine.PoolStats().Size, engine.PoolStats().Hedged)

	lim := limits{
		maxQueryBytes: *maxQuery,
		maxPageSize:   *maxPage,
		maxBatchPages: *maxBatch,
		maxBodyBytes:  *maxBody,
		timeout:       *timeout,
	}
	log.Printf("queenbeed listening on %s", *addr)
	if err := http.ListenAndServe(*addr, newHandler(engine, publisher, lim)); err != nil {
		log.Fatal(err)
	}
}
