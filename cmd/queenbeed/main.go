// Command queenbeed serves a QueenBee deployment over HTTP: it boots the
// simulated swarm, publishes a demo corpus through the smart contract,
// lets the worker bees index and rank it, and then answers queries from
// many concurrent clients against one shared engine — the serving shape
// the paper's "stateless frontend" implies.
//
// Endpoints (all JSON):
//
//	GET /search?q=<query>[&page=N][&size=K][&mode=parsed|all|any|phrase][&snippets=1]
//	GET /explain?q=<query>            — the compiled plan with per-node counts and costs
//	GET /healthz                      — liveness, deployment summary, cache occupancy
//
// The default mode speaks the full structured query language (uppercase
// OR/AND, '-' exclusions, "quoted phrases", site: URL-prefix filters,
// parentheses — docs/query-language.md). Per-request limits (query
// length, page size, handler timeout) keep one abusive client from
// monopolizing the shared engine; see docs/serving.md.
//
// Usage:
//
//	queenbeed -addr :8080 -peers 24 -bees 6 -docs 60
//	curl 'localhost:8080/search?q=decentralized+search&size=5'
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	queenbee "repro"
	"repro/internal/corpus"
)

// limits are the per-request guardrails of the shared engine.
type limits struct {
	maxQueryBytes int
	maxPageSize   int
	timeout       time.Duration
}

func defaultLimits() limits {
	return limits{maxQueryBytes: 1024, maxPageSize: 100, timeout: 5 * time.Second}
}

// server answers HTTP queries against one shared, concurrently-queried
// engine. The engine must be fully built (published, indexed, ranked)
// before serving starts: queries are concurrency-safe, mutations are not.
type server struct {
	engine *queenbee.Engine
	lim    limits
	start  time.Time
}

// newHandler wires the API routes, each wrapped in the request timeout.
// The Content-Type is pre-set on the real response writer so the 503
// body http.TimeoutHandler emits on timeout is also served as JSON (it
// would otherwise be content-sniffed to text/plain on this all-JSON
// API); handlers overwrite the header with the same value on the normal
// path.
func newHandler(e *queenbee.Engine, lim limits) http.Handler {
	s := &server{engine: e, lim: lim, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	inner := http.TimeoutHandler(mux, lim.timeout, `{"error":"request timed out"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		inner.ServeHTTP(w, r)
	})
}

// costJSON renders a simulated cost for API consumers.
type costJSON struct {
	Latency   string `json:"latency"`
	LatencyUS int64  `json:"latency_us"`
	Bytes     int64  `json:"bytes"`
	Msgs      int    `json:"msgs"`
}

func costOf(c queenbee.Cost) costJSON {
	return costJSON{
		Latency:   c.Latency.String(),
		LatencyUS: c.Latency.Microseconds(),
		Bytes:     c.Bytes,
		Msgs:      c.Msgs,
	}
}

type resultJSON struct {
	URL     string  `json:"url"`
	Score   float64 `json:"score"`
	Rank    float64 `json:"rank"`
	Snippet string  `json:"snippet,omitempty"`
}

type adJSON struct {
	ID          uint64   `json:"id"`
	Keywords    []string `json:"keywords"`
	BidPerClick uint64   `json:"bid_per_click"`
}

type searchJSON struct {
	Query   string       `json:"query"`
	Page    int          `json:"page"`
	Size    int          `json:"size"`
	Total   int          `json:"total"`
	Results []resultJSON `json:"results"`
	Ads     []adJSON     `json:"ads"`
	Cost    costJSON     `json:"cost"`
}

// buildQuery validates the request parameters and assembles the builder,
// or replies with a 400 and returns nil.
func (s *server) buildQuery(w http.ResponseWriter, r *http.Request) (*queenbee.QueryBuilder, int, int) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing q parameter")
		return nil, 0, 0
	}
	if len(q) > s.lim.maxQueryBytes {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("query exceeds %d bytes", s.lim.maxQueryBytes))
		return nil, 0, 0
	}
	page, ok := intParam(w, r, "page", 1, 1, 1<<20)
	if !ok {
		return nil, 0, 0
	}
	size, ok := intParam(w, r, "size", 10, 1, s.lim.maxPageSize)
	if !ok {
		return nil, 0, 0
	}
	b := s.engine.Query(q)
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "parsed":
	case "all":
		b = b.All()
	case "any":
		b = b.Any()
	case "phrase":
		b = b.Phrase()
	default:
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q", mode))
		return nil, 0, 0
	}
	b = b.Page(page, size)
	if r.URL.Query().Get("snippets") == "1" {
		b = b.WithSnippets()
	}
	return b, page, size
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	b, page, size := s.buildQuery(w, r)
	if b == nil {
		return
	}
	resp, err := b.Run()
	if err != nil {
		writeQueryErr(w, err)
		return
	}
	out := searchJSON{
		Query:   r.URL.Query().Get("q"),
		Page:    page,
		Size:    size,
		Total:   resp.Total,
		Results: make([]resultJSON, 0, len(resp.Results)),
		Ads:     make([]adJSON, 0, len(resp.Ads)),
		Cost:    costOf(resp.Cost),
	}
	for _, res := range resp.Results {
		out.Results = append(out.Results, resultJSON{URL: res.URL, Score: res.Score, Rank: res.Rank, Snippet: res.Snippet})
	}
	for _, ad := range resp.Ads {
		out.Ads = append(out.Ads, adJSON{ID: ad.ID, Keywords: ad.Keywords, BidPerClick: ad.BidPerClick})
	}
	writeJSON(w, http.StatusOK, out)
}

type explainJSON struct {
	Query      string                `json:"query"`
	Mode       string                `json:"mode"`
	Terms      []string              `json:"terms"`
	Shards     []int                 `json:"shards"`
	Plan       *queenbee.ExplainNode `json:"plan"`
	Candidates int                   `json:"candidates"`
	Returned   int                   `json:"returned"`
	Costs      map[string]costJSON   `json:"costs"`
	Rendered   string                `json:"rendered"`
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	b, _, _ := s.buildQuery(w, r)
	if b == nil {
		return
	}
	resp, err := b.Explain().Run()
	if err != nil {
		writeQueryErr(w, err)
		return
	}
	ex := resp.Explain
	writeJSON(w, http.StatusOK, explainJSON{
		Query:      ex.Query,
		Mode:       ex.Mode,
		Terms:      ex.Terms,
		Shards:     ex.Shards,
		Plan:       ex.Plan,
		Candidates: ex.Candidates,
		Returned:   ex.Returned,
		Costs: map[string]costJSON{
			"load":    costOf(ex.LoadCost),
			"snippet": costOf(ex.SnippetCost),
			"total":   costOf(ex.TotalCost),
		},
		Rendered: ex.String(),
	})
}

type healthJSON struct {
	Status  string              `json:"status"`
	Uptime  string              `json:"uptime"`
	Pages   int                 `json:"pages"`
	Height  uint64              `json:"height"`
	Workers int                 `json:"workers"`
	Cache   queenbee.CacheStats `json:"cache"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sum := s.engine.Stats()
	writeJSON(w, http.StatusOK, healthJSON{
		Status:  "ok",
		Uptime:  time.Since(s.start).Round(time.Millisecond).String(),
		Pages:   sum.Pages,
		Height:  sum.Height,
		Workers: sum.Workers,
		Cache:   s.engine.CacheStats(),
	})
}

// intParam parses an optional integer query parameter within [min, max].
func intParam(w http.ResponseWriter, r *http.Request, name string, def, min, max int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < min || v > max {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("%s must be an integer in [%d, %d]", name, min, max))
		return 0, false
	}
	return v, true
}

// writeQueryErr maps query-surface errors onto HTTP statuses: malformed
// queries are the client's fault, an unreachable index shard is a
// (retryable) server-side condition.
func writeQueryErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, queenbee.ErrEmptyQuery), errors.Is(err, queenbee.ErrBadSyntax):
		writeErr(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, queenbee.ErrShardUnavailable):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// buildEngine boots the deployment and indexes the demo corpus — the
// write side runs to completion before the first query is served.
func buildEngine(seed uint64, peers, bees, docs int) *queenbee.Engine {
	engine := queenbee.New(
		queenbee.WithSeed(seed),
		queenbee.WithPeers(peers),
		queenbee.WithBees(bees),
	)
	creator := engine.NewAccount("creator", 1_000_000)
	ccfg := corpus.DefaultConfig()
	ccfg.Seed = seed
	ccfg.NumDocs = docs
	corp := corpus.Generate(ccfg)
	for _, d := range corp.Docs {
		if err := engine.Publish(creator, d.URL, d.Text, d.Links); err != nil {
			log.Fatalf("publish %s: %v", d.URL, err)
		}
	}
	engine.RunUntilIdle()
	engine.ComputeRanks(4)
	return engine
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	peers := flag.Int("peers", 16, "DWeb devices in the swarm")
	bees := flag.Int("bees", 4, "worker bees")
	docs := flag.Int("docs", 40, "synthetic pages to publish before serving")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	maxQuery := flag.Int("max-query-bytes", 1024, "reject queries longer than this")
	maxPage := flag.Int("max-page-size", 100, "largest size= a request may ask for")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request handler timeout")
	flag.Parse()

	log.Printf("booting QueenBee swarm: %d peers, %d bees, %d docs (seed %d)…", *peers, *bees, *docs, *seed)
	engine := buildEngine(*seed, *peers, *bees, *docs)
	sum := engine.Stats()
	log.Printf("index ready: %d pages, chain height %d, %d active bees", sum.Pages, sum.Height, sum.Workers)

	lim := limits{maxQueryBytes: *maxQuery, maxPageSize: *maxPage, timeout: *timeout}
	log.Printf("queenbeed listening on %s", *addr)
	if err := http.ListenAndServe(*addr, newHandler(engine, lim)); err != nil {
		log.Fatal(err)
	}
}
