// Command experiments regenerates every table and figure of the
// reproduction (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments -exp all          # run everything
//	experiments -exp E5           # one experiment
//	experiments -list             # list experiments
//	experiments -exp E5 -seed 7   # change the deterministic seed
//	experiments -exp E14          # serving tier: pool size × hedging × deadlines
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (E1..E19) or 'all'")
	seed := flag.Uint64("seed", 1, "deterministic simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %q\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("    paper claim: %q\n\n", e.Claim)
		start := time.Now()
		for _, table := range e.Run(*seed) {
			fmt.Println(table.String())
		}
		fmt.Printf("    (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
