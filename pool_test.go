package queenbee

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolSoakMatchesSingleFrontend is the serving-tier determinism
// soak: a pool of 4 hedged frontends must answer every workload query
// byte-identically to a single sequential frontend on the same seed —
// first under a sequential driver (the deterministic least-loaded
// schedule), then with all 16 clients racing. (The TestPool name prefix
// keeps it inside CI's -count=2 determinism re-run.)
func TestPoolSoakMatchesSingleFrontend(t *testing.T) {
	single, corp := soakEngine(t, 11, 24)
	pooled, _ := soakEngine(t, 11, 24, WithFrontendPool(4), WithHedgedReads(true))

	baseline := make([][]string, soakClients)
	for c := 0; c < soakClients; c++ {
		for _, q := range soakWorkload(corp, c) {
			resp, err := q.run(single)
			if err != nil {
				t.Fatalf("single %s: %v", q.label, err)
			}
			baseline[c] = append(baseline[c], canonical(t, resp))
		}
	}

	// Sequential pass over the pool: deterministic balancing, responses
	// must match the single frontend exactly.
	for c := 0; c < soakClients; c++ {
		for i, q := range soakWorkload(corp, c) {
			resp, err := q.run(pooled)
			if err != nil {
				t.Fatalf("pooled sequential %s: %v", q.label, err)
			}
			if got := canonical(t, resp); got != baseline[c][i] {
				t.Fatalf("pooled sequential %s diverged:\npooled %s\nsingle %s", q.label, got, baseline[c][i])
			}
		}
	}

	// Concurrent pass: all clients at once against the warm pool.
	var wg sync.WaitGroup
	for c := 0; c < soakClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, q := range soakWorkload(corp, c) {
				resp, err := q.run(pooled)
				if err != nil {
					t.Errorf("pooled concurrent client %d %s: %v", c, q.label, err)
					return
				}
				if got := canonical(t, resp); got != baseline[c][i] {
					t.Errorf("pooled concurrent client %d %s diverged:\npooled %s\nsingle %s",
						c, q.label, got, baseline[c][i])
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// The tier actually did its job: load spread beyond one frontend and
	// hedges were issued.
	ps := pooled.PoolStats()
	if ps.Size != 4 || !ps.Hedged {
		t.Fatalf("pool shape = %+v", ps)
	}
	loaded, hedges := 0, int64(0)
	for _, f := range ps.Frontends {
		if f.Served > 0 {
			loaded++
		}
		hedges += f.Hedges
	}
	if loaded < 2 {
		t.Fatalf("balancer pinned all load on %d frontend(s): %+v", loaded, ps.Frontends)
	}
	if hedges == 0 {
		t.Fatal("hedged pool issued no hedged shard fetches")
	}
}

// TestPoolConcurrentThroughput measures the serving tier's win in the
// simulator's own currency: each frontend serializes its queries in
// simulated time, so the tier's makespan is the busiest frontend. A
// pool of 4 must cut the makespan of the same 8-client workload by ≥2×
// against pool=1 on the same seed — the multi-frontend serving claim.
func TestPoolConcurrentThroughput(t *testing.T) {
	run := func(pool int) (sum, busiest time.Duration) {
		e, corp := soakEngine(t, 5, 24, WithFrontendPool(pool))
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for _, q := range soakWorkload(corp, c) {
					if _, err := q.run(e); err != nil {
						t.Errorf("pool=%d client %d %s: %v", pool, c, q.label, err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		for _, f := range e.PoolStats().Frontends {
			sum += f.BusySim
			if f.BusySim > busiest {
				busiest = f.BusySim
			}
		}
		if sum == 0 {
			t.Fatalf("pool=%d booked no simulated serving time", pool)
		}
		return sum, busiest
	}
	_, mk1 := run(1)
	sum4, mk4 := run(4)
	spread := float64(sum4) / float64(mk4)
	speedup := float64(mk1) / float64(mk4)
	t.Logf("simulated serving makespan: pool=1 %v, pool=4 %v → %.1f× throughput (in-pool spread %.1f×)",
		mk1, mk4, speedup, spread)
	if speedup < 2 {
		t.Fatalf("pool=4 throughput = %.2f× pool=1, want ≥ 2×", speedup)
	}
	if spread < 2 {
		t.Fatalf("pool=4 spread its load only %.2f×, want ≥ 2×", spread)
	}
}

// TestPoolDeadlineShorterThanShardRTT: a simulated deadline below one
// shard round trip reliably fails with the typed error and a partial
// trace — never a hang, never a torn cache — and the same query
// succeeds right afterwards against the caches the abandoned wave left
// behind.
func TestPoolDeadlineShorterThanShardRTT(t *testing.T) {
	e, corp := soakEngine(t, 9, 12, WithFrontendPool(2))
	q := corp.Vocab(0) + " " + corp.Vocab(1)

	for round := 0; round < 2; round++ {
		resp, err := e.Query(q).All().Deadline(time.Millisecond).Run()
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("round %d: err = %v, want ErrDeadlineExceeded", round, err)
		}
		if resp == nil || resp.Explain == nil || !resp.Explain.Partial {
			t.Fatalf("round %d: deadline response missing partial trace: %+v", round, resp)
		}
		if len(resp.Explain.Shards) == 0 {
			t.Fatalf("round %d: partial trace lists no shards: %+v", round, resp.Explain)
		}
		if len(resp.Results) != 0 || resp.Total != 0 {
			t.Fatalf("round %d: deadline response leaked results: %+v", round, resp)
		}
		if resp.Cost.Latency < time.Millisecond {
			t.Fatalf("round %d: abandoned wave costs %v, want ≥ the 1ms deadline", round, resp.Cost.Latency)
		}
	}
	if misses := e.PoolStats().DeadlineMisses; misses != 2 {
		t.Fatalf("deadline misses = %d, want 2", misses)
	}

	// The abandoned waves left the tier consistent: the same query with
	// room to breathe succeeds, and an explicit builder deadline
	// overrides an engine-wide default.
	resp, err := e.Query(q).All().Run()
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("query after deadline misses: %v (results %d)", err, len(resp.Results))
	}

	strict, _ := soakEngine(t, 9, 12, WithDefaultDeadline(time.Millisecond))
	if _, err := strict.Query(q).All().Run(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("WithDefaultDeadline not applied: %v", err)
	}
	if _, err := strict.Query(q).All().Deadline(time.Hour).Run(); err != nil {
		t.Fatalf("per-query deadline should override the default: %v", err)
	}
}

// cancelWhen is a context that flips to cancelled once its predicate
// holds. Done is nil (the read path polls Err at its deterministic
// checkpoints), which makes mid-wave cancellation reproducible: the
// predicate is driven by simulation state, not wall-clock timing.
type cancelWhen struct{ cond func() bool }

func (c cancelWhen) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c cancelWhen) Done() <-chan struct{}       { return nil }
func (c cancelWhen) Value(any) any               { return nil }
func (c cancelWhen) Err() error {
	if c.cond() {
		return context.Canceled
	}
	return nil
}

// TestQueryCancelBetweenShardFetches is the mid-wave cancellation soak:
// under the legacy shared stream the shard wave runs sequentially, so a
// context that cancels once the first shard's chain is cached stops the
// query deterministically between shard fetches. The query must return
// ErrDeadlineExceeded with a partial trace, leave caches and
// singleflight consistent (asserted via CacheStatsSnapshot before and
// after), and the rerun must produce exactly the never-cancelled
// engine's results.
func TestQueryCancelBetweenShardFetches(t *testing.T) {
	baselineEngine, corp := soakEngine(t, 13, 12, WithSharedNetStream(true))
	e, _ := soakEngine(t, 13, 12, WithSharedNetStream(true))
	q := corp.Vocab(0) + " " + corp.Vocab(1) + " " + corp.Vocab(2)

	baseline, err := baselineEngine.Query(q).All().Explain().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Explain.Shards) < 2 {
		t.Skipf("workload hashes to %d shard(s); need ≥ 2 to cancel between fetches", len(baseline.Explain.Shards))
	}

	before := e.CacheStats()
	if before.ChainEntries != 0 {
		t.Fatalf("test engine not cold: %+v", before)
	}
	ctx := cancelWhen{cond: func() bool { return e.CacheStats().ChainEntries >= 1 }}
	resp, err := e.QueryCtx(ctx, q).All().Run()
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded wrapping context.Canceled", err)
	}
	if resp == nil || resp.Explain == nil || !resp.Explain.Partial {
		t.Fatalf("cancelled query missing partial trace: %+v", resp)
	}
	if resp.Cost.Msgs == 0 {
		t.Fatal("the completed first leg must be costed")
	}

	// Exactly the first shard's chain landed; the abandoned legs cached
	// nothing and left no wedged flights.
	mid := e.CacheStats()
	if mid.ChainEntries != 1 {
		t.Fatalf("after cancel: %d chain entries, want exactly 1 (first leg)", mid.ChainEntries)
	}

	rerun, err := e.Query(q).All().Run()
	if err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}
	if got, want := canonical(t, rerun), canonical(t, baseline); got != want {
		t.Fatalf("rerun diverged from never-cancelled engine:\ngot  %s\nwant %s", got, want)
	}
	after := e.CacheStats()
	if after.ChainEntries != len(baseline.Explain.Shards) {
		t.Fatalf("after rerun: %d chain entries, want %d", after.ChainEntries, len(baseline.Explain.Shards))
	}
}
