package queenbee

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// TestScaleMillion is the end-to-end write-path scaling run: crawl →
// index → rank → serve over a synthetic web, at a scale picked by
// environment:
//
//	default / -short        10^4 pages  (CI smoke; asserted memory ceiling)
//	QUEENBEE_SCALE_CI=1     10^5 pages  (nightly-sized CI job)
//	QUEENBEE_SCALE=1        10^6 pages  (the full million-document run;
//	                                     takes a long time — run by hand)
//
// The harness asserts exact ingest counts (failure and dedup are
// disabled so every generated page must land), serving correctness on
// the full corpus, delta rank epochs riding the crawl, a bounded write
// amplification, and a per-page memory budget. At the smoke scale it
// additionally replays the ingest on a monolithic-compaction +
// full-recompute control engine and requires identical search results
// — the legacy write path and the scaled one must be observationally
// equivalent.
func TestScaleMillion(t *testing.T) {
	pages := 10_000
	switch {
	case os.Getenv("QUEENBEE_SCALE") == "1":
		pages = 1_000_000
	case os.Getenv("QUEENBEE_SCALE_CI") == "1":
		pages = 100_000
	case testing.Short():
		// 10^4 is the floor; -short keeps it.
	}

	run := scaleRun(t, pages, false)

	// Memory budget: heap after the run, amortized per page. The smoke
	// scale carries a fixed-overhead allowance (cluster boot, caches);
	// the per-page slope is what must not regress, or 10^6 stops
	// fitting in a commodity machine. Budgets calibrated with ~2×
	// headroom over measurement.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	budget := uint64(256<<20) + uint64(pages)*20<<10 // 256 MiB + 20 KiB/page
	if ms.HeapAlloc > budget {
		t.Fatalf("heap after %d pages = %d MiB, budget %d MiB",
			pages, ms.HeapAlloc>>20, budget>>20)
	}
	t.Logf("scale=%d heap=%dMiB amp=%.2f epochs=%d tiers=%v",
		pages, ms.HeapAlloc>>20, run.write.Amplification(), run.ingest.RankEpochs, run.write.SegmentsPerTier)

	// Control comparison only at the smoke scale (a second full engine
	// doubles the cost): the monolithic + full-recompute engine must
	// serve byte-identical results.
	if pages > 10_000 || testing.Short() {
		return
	}
	control := scaleRun(t, pages, true)
	if len(run.results) != len(control.results) {
		t.Fatalf("result set sizes diverged: %d vs control %d", len(run.results), len(control.results))
	}
	for i := range run.results {
		if run.results[i] != control.results[i] {
			t.Fatalf("query %d diverged from control:\n tiered+delta: %v\n control:      %v",
				i, run.results[i], control.results[i])
		}
	}
	// And the scaled path must not rewrite more than the control did.
	if run.write.CompactedBytes > control.write.CompactedBytes {
		t.Fatalf("tiered rewrote %d bytes, monolithic control %d — tiering lost its own game",
			run.write.CompactedBytes, control.write.CompactedBytes)
	}
}

// scaleOutcome is what one engine's scale run exposes for assertions.
type scaleOutcome struct {
	ingest  IngestStats
	write   WriteStats
	results []string // "url score" lines of the probe queries, in order
}

// scaleRun drives one engine through the full pipeline at the given
// page count and probes it with deterministic queries.
func scaleRun(t *testing.T, pages int, control bool) scaleOutcome {
	t.Helper()
	opts := []Option{
		WithSeed(42),
		WithPeers(10),
		WithBees(3),
		WithShards(8),
	}
	if control {
		opts = append(opts, WithMonolithicCompaction(true), WithRankFullEvery(1))
	}
	e := New(opts...)

	web := scalePages(pages)
	st, err := e.Crawl(context.Background(), []string{web[0].URL}, CrawlOptions{
		Pages:          web,
		BatchSize:      256,
		MaxPages:       pages,
		DedupThreshold: -1, // exact counts: no demotion
		FetchFailRate:  0,  // and no simulated fetch loss
		RankEvery:      8,  // a delta-scheduled epoch every 8 batches
		RankPartitions: 2,
	})
	if err != nil {
		t.Fatalf("crawl at scale %d: %v", pages, err)
	}
	if st.Published != pages || st.Fetched != pages {
		t.Fatalf("crawl landed %d/%d of %d pages", st.Published, st.Fetched, pages)
	}
	if st.RoundErrors != 0 {
		t.Fatalf("crawl surfaced %d round errors", st.RoundErrors)
	}
	if st.RankEpochs == 0 {
		t.Fatal("no rank epoch rode the crawl")
	}
	// Close the run with one FULL epoch — the exactness escape hatch.
	// The epochs that rode the crawl were delta-scheduled (that is the
	// cost win); the final full recompute zeroes their accumulated
	// drift, which is what lets the control comparison below demand
	// byte-identical scores instead of a tolerance.
	e.ComputeRanks(2)
	if rs := e.RankStatus(); rs.LastFull != rs.Epoch || rs.DeltasSinceFull != 0 {
		t.Fatalf("closing full epoch did not reset staleness: %+v", rs)
	}

	ws := e.WriteStats()
	if ws.IngestedBytes == 0 || ws.Compactions == 0 {
		t.Fatalf("write ledger implausible at scale: %+v", ws)
	}
	// The write-amplification contract: tiered compaction rewrites each
	// ingested byte about once per level promotion (measured ~1.3× per
	// tier — the shard's share plus the DocLens tombstone set), so total
	// amplification is O(tiers) = O(log₄ rounds), never O(tiers×shards)
	// or the monolithic policy's O(rounds). Asserted per tier with 2×
	// headroom; a regression to whole-chain or unrestricted rewrites
	// blows through it immediately at any scale.
	if !control {
		maxTier := len(ws.SegmentsPerTier) - 1
		if bound := 1 + 2*float64(maxTier); ws.Amplification() > bound {
			t.Fatalf("write amplification %.2f exceeds the tiered bound %.1f at %d tiers (ledger %+v)",
				ws.Amplification(), bound, maxTier, ws)
		}
	}

	out := scaleOutcome{ingest: st, write: ws}
	for _, q := range scaleQueries() {
		resp, err := e.Query(q).All().Limit(10).Run()
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		if len(resp.Results) == 0 {
			t.Fatalf("query %q found nothing in a %d-page index", q, pages)
		}
		for _, r := range resp.Results {
			out.results = append(out.results, fmt.Sprintf("%s %v %v", r.URL, r.Score, r.Rank))
		}
	}
	return out
}

// scaleWords is the vocabulary of the scale generator; small enough
// that queries hit everywhere, spread enough that every shard fills.
var scaleWords = []string{
	"honey", "nectar", "forage", "waggle", "swarm", "queen", "worker", "drone",
	"comb", "hive", "pollen", "clover", "meadow", "orchard", "cedar", "willow",
	"bramble", "thistle", "sage", "fennel", "yarrow", "sorrel", "vetch", "rue",
}

// scalePages generates n pages in O(1) per page: deterministic text
// drawn from a fixed vocabulary and a shallow link pattern (each page
// links to a recent page and to one of a few hubs, giving the rank
// vector real skew without the O(n²) preferential-attachment walk the
// corpus generator pays).
func scalePages(n int) []Page {
	pages := make([]Page, n)
	for i := 0; i < n; i++ {
		w := func(k int) string { return scaleWords[(i*7+k*13)%len(scaleWords)] }
		var links []string
		if i+1 < n {
			links = append(links, scaleURL(i+1)) // forward chain: the frontier reaches everything from page 0
		}
		if i > 0 {
			links = append(links, scaleURL(i%16)) // a few early hubs dominate the rank
			if i%97 == 3 {
				links = append(links, scaleURL(i/2)) // occasional long-range edge
			}
		}
		pages[i] = Page{
			URL: scaleURL(i),
			// Two anchor terms every page carries (serving probes with
			// full-corpus postings) plus three rotating terms that spread
			// the vocabulary over every shard.
			Text:  fmt.Sprintf("honey hive %s %s %s page %d", w(0), w(1), w(2), i),
			Links: links,
		}
	}
	return pages
}

func scaleURL(i int) string { return fmt.Sprintf("dweb://scale/%07d", i) }

// scaleQueries are the serving probes: the anchor pair hits every page
// (the heaviest postings the index holds), the single terms hit the
// rotating slices.
func scaleQueries() []string {
	return []string{"honey hive", "meadow", "queen", "bramble"}
}
