package contracts

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/chain"
)

// Ad is one advertiser's escrowed campaign. Advertisers "directly make
// advertisements through our smart contract and the ad revenue is shared
// among the content creators and worker bees."
type Ad struct {
	ID          uint64
	Advertiser  chain.Address
	Keywords    []string
	BidPerClick uint64
	// BidPerImpression optionally charges per display as well ("a fair
	// scheme to charge them" — the paper leaves the model open; this
	// implements CPC with an optional CPM component).
	BidPerImpression uint64
	Budget           uint64
	Clicks           int
	Impressions      int
	Active           bool
}

// RegisterAdParams opens a campaign; the attached value is the budget.
type RegisterAdParams struct {
	Keywords         []string
	BidPerClick      uint64
	BidPerImpression uint64 // 0 disables impression charging
}

func (q *QueenBee) execRegisterAd(ctx *chain.TxContext, params []byte) error {
	var p RegisterAdParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	if len(p.Keywords) == 0 {
		return fmt.Errorf("queenbee: ad needs at least one keyword")
	}
	if p.BidPerClick == 0 && p.BidPerImpression == 0 {
		return fmt.Errorf("queenbee: ad needs a positive bid")
	}
	if minBid := maxU64(p.BidPerClick, p.BidPerImpression); ctx.Value < minBid {
		return fmt.Errorf("queenbee: budget %d below one charge %d", ctx.Value, minBid)
	}
	q.nextAdID++
	kws := make([]string, len(p.Keywords))
	for i, k := range p.Keywords {
		kws[i] = strings.ToLower(k)
	}
	ad := &Ad{
		ID:               q.nextAdID,
		Advertiser:       ctx.Sender,
		Keywords:         kws,
		BidPerClick:      p.BidPerClick,
		BidPerImpression: p.BidPerImpression,
		Budget:           ctx.Value,
		Active:           true,
	}
	q.ads[ad.ID] = ad
	ctx.Emit(EventAdRegistered, map[string]string{
		"ad":       strconv.FormatUint(ad.ID, 10),
		"bid":      strconv.FormatUint(p.BidPerClick, 10),
		"keywords": strings.Join(kws, ","),
	})
	return nil
}

// TopUpAdParams adds budget to an existing campaign.
type TopUpAdParams struct {
	AdID uint64
}

func (q *QueenBee) execTopUpAd(ctx *chain.TxContext, params []byte) error {
	var p TopUpAdParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	ad, ok := q.ads[p.AdID]
	if !ok {
		return fmt.Errorf("queenbee: unknown ad %d", p.AdID)
	}
	if ad.Advertiser != ctx.Sender {
		return fmt.Errorf("queenbee: ad %d belongs to %s", p.AdID, ad.Advertiser.Short())
	}
	if ctx.Value == 0 {
		return fmt.Errorf("queenbee: top-up needs attached honey")
	}
	ad.Budget += ctx.Value
	if ad.Budget >= ad.BidPerClick {
		ad.Active = true
	}
	return nil
}

// ClickParams records one paid click: the ad clicked and the page on
// which it was displayed.
type ClickParams struct {
	AdID uint64
	URL  string
}

// execClick implements pay-per-click ("they pay by the number of clicks
// on the ad"): the bid moves from the advertiser's escrowed budget to the
// page's content creator and the worker pool, split by CreatorShareBP.
func (q *QueenBee) execClick(ctx *chain.TxContext, params []byte) error {
	var p ClickParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	ad, ok := q.ads[p.AdID]
	if !ok {
		return fmt.Errorf("queenbee: unknown ad %d", p.AdID)
	}
	if ad.BidPerClick == 0 {
		return fmt.Errorf("queenbee: ad %d is not pay-per-click", p.AdID)
	}
	if !ad.Active || ad.Budget < ad.BidPerClick {
		return fmt.Errorf("queenbee: ad %d exhausted", p.AdID)
	}
	page, ok := q.pages[p.URL]
	if !ok {
		return fmt.Errorf("queenbee: click on unregistered page %q", p.URL)
	}
	charge := ad.BidPerClick
	if q.cfg.SecondPriceClicks {
		charge = q.secondPriceLocked(ad)
	}
	if err := q.payRevenueSplitLocked(ctx, page.Owner, charge); err != nil {
		return err
	}
	ad.Budget -= charge
	ad.Clicks++
	q.deactivateIfExhaustedLocked(ctx, ad)
	ctx.Emit(EventAdClick, map[string]string{
		"ad":      strconv.FormatUint(ad.ID, 10),
		"url":     p.URL,
		"creator": page.Owner.String(),
		"amount":  strconv.FormatUint(charge, 10),
	})
	return nil
}

// secondPriceLocked returns the GSP charge for a click on ad: one more
// than the highest competing bid among active ads sharing a keyword,
// capped at the ad's own bid. With no competitor the reserve is 1.
func (q *QueenBee) secondPriceLocked(ad *Ad) uint64 {
	kws := make(map[string]bool, len(ad.Keywords))
	for _, k := range ad.Keywords {
		kws[k] = true
	}
	var best uint64
	for _, other := range q.ads {
		if other.ID == ad.ID || !other.Active || other.BidPerClick == 0 {
			continue
		}
		shares := false
		for _, k := range other.Keywords {
			if kws[k] {
				shares = true
				break
			}
		}
		if shares && other.BidPerClick > best {
			//detlint:ignore maprange pure max over uint64 bids; the reduced value is iteration-order independent
			best = other.BidPerClick
		}
	}
	charge := best + 1
	if charge > ad.BidPerClick {
		charge = ad.BidPerClick
	}
	return charge
}

// ImpressionParams records one paid ad display (CPM component).
type ImpressionParams struct {
	AdID uint64
	URL  string
}

// execImpression charges BidPerImpression for one display, with the same
// creator/worker revenue split as clicks.
func (q *QueenBee) execImpression(ctx *chain.TxContext, params []byte) error {
	var p ImpressionParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	ad, ok := q.ads[p.AdID]
	if !ok {
		return fmt.Errorf("queenbee: unknown ad %d", p.AdID)
	}
	if ad.BidPerImpression == 0 {
		return fmt.Errorf("queenbee: ad %d has no impression bid", p.AdID)
	}
	if !ad.Active || ad.Budget < ad.BidPerImpression {
		return fmt.Errorf("queenbee: ad %d exhausted", p.AdID)
	}
	page, ok := q.pages[p.URL]
	if !ok {
		return fmt.Errorf("queenbee: impression on unregistered page %q", p.URL)
	}
	if err := q.payRevenueSplitLocked(ctx, page.Owner, ad.BidPerImpression); err != nil {
		return err
	}
	ad.Budget -= ad.BidPerImpression
	ad.Impressions++
	q.deactivateIfExhaustedLocked(ctx, ad)
	return nil
}

// payRevenueSplitLocked pays the creator's share of amount to owner and
// distributes the remainder equally across active workers; indivisible
// remainders stay in escrow as tracked dust.
func (q *QueenBee) payRevenueSplitLocked(ctx *chain.TxContext, owner chain.Address, amount uint64) error {
	creatorCut := amount * q.cfg.CreatorShareBP / 10000
	workerCut := amount - creatorCut
	if err := ctx.PayFromEscrow(owner, creatorCut); err != nil {
		return err
	}
	workers := q.activeWorkersLocked()
	var distributed uint64
	if len(workers) > 0 {
		perWorker := workerCut / uint64(len(workers))
		for _, w := range workers {
			if perWorker == 0 {
				break
			}
			if err := ctx.PayFromEscrow(w, perWorker); err != nil {
				return err
			}
			distributed += perWorker
		}
	}
	q.dust += workerCut - distributed
	return nil
}

// deactivateIfExhaustedLocked turns the ad off once the budget can no
// longer cover the cheapest positive charge.
func (q *QueenBee) deactivateIfExhaustedLocked(ctx *chain.TxContext, ad *Ad) {
	min := minPositive(ad.BidPerClick, ad.BidPerImpression)
	if min == 0 || ad.Budget >= min {
		return
	}
	ad.Active = false
	ctx.Emit(EventAdExhausted, map[string]string{
		"ad": strconv.FormatUint(ad.ID, 10),
	})
}

func minPositive(a, b uint64) uint64 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// AdInfo returns a copy of one campaign.
func (q *QueenBee) AdInfo(id uint64) (Ad, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	ad, ok := q.ads[id]
	if !ok {
		return Ad{}, false
	}
	out := *ad
	out.Keywords = append([]string(nil), ad.Keywords...)
	return out, true
}

// AdsForTerms returns active ads whose keywords intersect the query
// terms, highest bid first (the simple auction the frontend runs when
// composing results). Ties break by lower ID for determinism.
func (q *QueenBee) AdsForTerms(terms []string) []Ad {
	want := make(map[string]bool, len(terms))
	for _, t := range terms {
		want[strings.ToLower(t)] = true
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	var out []Ad
	for _, ad := range q.ads {
		if !ad.Active {
			continue
		}
		for _, k := range ad.Keywords {
			if want[k] {
				cp := *ad
				cp.Keywords = append([]string(nil), ad.Keywords...)
				out = append(out, cp)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BidPerClick != out[j].BidPerClick {
			return out[i].BidPerClick > out[j].BidPerClick
		}
		return out[i].ID < out[j].ID
	})
	return out
}
