package contracts

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/chain"
)

// PageRecord is the on-chain registration of one page version. The
// content itself lives in the DWeb store under CID; the chain holds the
// authoritative URL→CID binding and ownership.
type PageRecord struct {
	URL    string
	Owner  chain.Address
	CID    string // hex root CID in the content store
	Seq    uint64 // bumped on every re-publish
	Height uint64 // block height of the latest version
	Links  []string
}

// PublishParams registers or updates a page.
type PublishParams struct {
	URL   string
	CID   string
	Links []string
}

// execPublish records the page version and creates an index task assigned
// to a quorum of worker bees. This is the paper's "no-crawling" path: the
// index update is triggered by the publish transaction itself.
func (q *QueenBee) execPublish(ctx *chain.TxContext, params []byte) error {
	var p PublishParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	if p.URL == "" {
		return fmt.Errorf("queenbee: publish with empty URL")
	}
	if p.CID == "" {
		return fmt.Errorf("queenbee: publish %q with empty CID", p.URL)
	}
	rec, exists := q.pages[p.URL]
	if exists && rec.Owner != ctx.Sender {
		return fmt.Errorf("queenbee: %q is owned by %s", p.URL, rec.Owner.Short())
	}

	if !exists {
		rec = &PageRecord{URL: p.URL, Owner: ctx.Sender}
		q.pages[p.URL] = rec
	}
	rec.Seq++
	rec.CID = p.CID
	rec.Height = ctx.Height
	rec.Links = append([]string(nil), p.Links...)

	ctx.Emit(EventPublished, map[string]string{
		"url": p.URL,
		"cid": p.CID,
		"seq": strconv.FormatUint(rec.Seq, 10),
	})

	taskID := fmt.Sprintf("idx:%s:%d", p.URL, rec.Seq)
	q.createTaskLocked(ctx, taskID, TaskIndex, map[string]string{
		"url": p.URL,
		"cid": p.CID,
		"seq": strconv.FormatUint(rec.Seq, 10),
	})
	return nil
}

// Page returns the registration record for a URL (engine read path).
func (q *QueenBee) Page(url string) (PageRecord, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	rec, ok := q.pages[url]
	if !ok {
		return PageRecord{}, false
	}
	out := *rec
	out.Links = append([]string(nil), rec.Links...)
	return out, true
}

// Pages returns every registered URL, sorted.
func (q *QueenBee) Pages() []string {
	q.mu.RLock()
	defer q.mu.RUnlock()
	out := make([]string, 0, len(q.pages))
	for u := range q.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// PageCount returns the number of registered pages.
func (q *QueenBee) PageCount() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return len(q.pages)
}

// LinkGraph returns url → outgoing links for every registered page, the
// input to the page-rank computation.
func (q *QueenBee) LinkGraph() map[string][]string {
	q.mu.RLock()
	defer q.mu.RUnlock()
	out := make(map[string][]string, len(q.pages))
	for u, rec := range q.pages {
		out[u] = append([]string(nil), rec.Links...)
	}
	return out
}

// joinAddrs renders addresses for event attributes.
func joinAddrs(addrs []chain.Address) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}
