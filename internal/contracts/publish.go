package contracts

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/chain"
)

// PageRecord is the on-chain registration of one page version. The
// content itself lives in the DWeb store under CID; the chain holds the
// authoritative URL→CID binding and ownership.
type PageRecord struct {
	URL    string
	Owner  chain.Address
	CID    string // hex root CID in the content store
	Seq    uint64 // bumped on every re-publish
	Height uint64 // block height of the latest version
	Links  []string
}

// PublishParams registers or updates a page.
type PublishParams struct {
	URL   string
	CID   string
	Links []string
}

// validatePublishLocked rejects a page registration the contract would
// refuse: empty URL/CID or an URL owned by a different account.
func (q *QueenBee) validatePublishLocked(sender chain.Address, p PublishParams) error {
	if p.URL == "" {
		return fmt.Errorf("queenbee: publish with empty URL")
	}
	if p.CID == "" {
		return fmt.Errorf("queenbee: publish %q with empty CID", p.URL)
	}
	if rec, exists := q.pages[p.URL]; exists && rec.Owner != sender {
		return fmt.Errorf("queenbee: %q is owned by %s", p.URL, rec.Owner.Short())
	}
	return nil
}

// registerPageLocked records one page version and emits its publish
// event; validation must already have passed. Returns the record.
func (q *QueenBee) registerPageLocked(ctx *chain.TxContext, p PublishParams) *PageRecord {
	rec, exists := q.pages[p.URL]
	if !exists {
		rec = &PageRecord{URL: p.URL, Owner: ctx.Sender}
		q.pages[p.URL] = rec
	}
	rec.Seq++
	rec.CID = p.CID
	rec.Height = ctx.Height
	rec.Links = append([]string(nil), p.Links...)
	// Every publish (new page or new version) dirties the link graph; the
	// next delta rank epoch snapshots and re-walks exactly this set.
	q.dirtyPages[p.URL] = true

	ctx.Emit(EventPublished, map[string]string{
		"url": p.URL,
		"cid": p.CID,
		"seq": strconv.FormatUint(rec.Seq, 10),
	})
	return rec
}

// execPublish records the page version and creates an index task assigned
// to a quorum of worker bees. This is the paper's "no-crawling" path: the
// index update is triggered by the publish transaction itself.
func (q *QueenBee) execPublish(ctx *chain.TxContext, params []byte) error {
	var p PublishParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	if err := q.validatePublishLocked(ctx.Sender, p); err != nil {
		return err
	}
	rec := q.registerPageLocked(ctx, p)

	taskID := fmt.Sprintf("idx:%s:%d", p.URL, rec.Seq)
	q.createTaskLocked(ctx, taskID, TaskIndex, map[string]string{
		"url": p.URL,
		"cid": p.CID,
		"seq": strconv.FormatUint(rec.Seq, 10),
	})
	return nil
}

// PublishBatchParams registers many pages in one transaction. The batch
// produces a single index task: the assigned quorum builds one delta
// segment covering every page, so a round ingesting N pages costs one
// commit-reveal cycle instead of N.
type PublishBatchParams struct {
	Pages []PublishParams
}

// BatchEntry is one page of a batch index task, carried in the task's
// meta so every assignee fetches and indexes the same page versions.
type BatchEntry struct {
	URL string `json:"url"`
	CID string `json:"cid"`
	Seq uint64 `json:"seq"`
}

// batchMetaKey holds the JSON-encoded []BatchEntry on a batch task.
const batchMetaKey = "batch"

// EncodeBatchEntries serializes batch entries for task meta.
func EncodeBatchEntries(entries []BatchEntry) string {
	b, err := json.Marshal(entries)
	if err != nil {
		panic(fmt.Sprintf("queenbee: encoding batch entries: %v", err))
	}
	return string(b)
}

// BatchEntries decodes a task's batch page list. ok is false when the
// task is not a batch task.
func BatchEntries(t Task) ([]BatchEntry, bool) {
	raw, isBatch := t.Meta[batchMetaKey]
	if !isBatch {
		return nil, false
	}
	var entries []BatchEntry
	if err := json.Unmarshal([]byte(raw), &entries); err != nil {
		return nil, false
	}
	return entries, true
}

// execPublishBatch atomically registers every page of the batch and
// creates one index task covering all of them. Validation runs over the
// whole batch before any state changes, so a rejected batch leaves no
// partial registrations behind.
func (q *QueenBee) execPublishBatch(ctx *chain.TxContext, params []byte) error {
	var p PublishBatchParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	if len(p.Pages) == 0 {
		return fmt.Errorf("queenbee: publish-batch with no pages")
	}
	seen := make(map[string]bool, len(p.Pages))
	for _, page := range p.Pages {
		if err := q.validatePublishLocked(ctx.Sender, page); err != nil {
			return err
		}
		if seen[page.URL] {
			return fmt.Errorf("queenbee: publish-batch lists %q twice", page.URL)
		}
		seen[page.URL] = true
	}

	entries := make([]BatchEntry, 0, len(p.Pages))
	for _, page := range p.Pages {
		rec := q.registerPageLocked(ctx, page)
		entries = append(entries, BatchEntry{URL: page.URL, CID: page.CID, Seq: rec.Seq})
	}

	// The task ID hashes the batch contents so two batches sealed at the
	// same height get distinct, deterministic IDs.
	h := sha256.New()
	for _, e := range entries {
		fmt.Fprintf(h, "%s:%s:%d\n", e.URL, e.CID, e.Seq)
	}
	taskID := fmt.Sprintf("idxb:%d:%s", ctx.Height, hex.EncodeToString(h.Sum(nil)[:8]))
	q.createTaskLocked(ctx, taskID, TaskIndex, map[string]string{
		batchMetaKey: EncodeBatchEntries(entries),
	})
	return nil
}

// Page returns the registration record for a URL (engine read path).
func (q *QueenBee) Page(url string) (PageRecord, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	rec, ok := q.pages[url]
	if !ok {
		return PageRecord{}, false
	}
	out := *rec
	out.Links = append([]string(nil), rec.Links...)
	return out, true
}

// Pages returns every registered URL, sorted.
func (q *QueenBee) Pages() []string {
	q.mu.RLock()
	defer q.mu.RUnlock()
	out := make([]string, 0, len(q.pages))
	for u := range q.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// PageCount returns the number of registered pages.
func (q *QueenBee) PageCount() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return len(q.pages)
}

// LinkGraph returns url → outgoing links for every registered page, the
// input to the page-rank computation.
func (q *QueenBee) LinkGraph() map[string][]string {
	q.mu.RLock()
	defer q.mu.RUnlock()
	out := make(map[string][]string, len(q.pages))
	for u, rec := range q.pages {
		out[u] = append([]string(nil), rec.Links...)
	}
	return out
}

// joinAddrs renders addresses for event attributes.
func joinAddrs(addrs []chain.Address) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}
