package contracts

import (
	"fmt"
	"testing"

	"repro/internal/chain"
)

func TestStakeWeightedQuorumFavorsStake(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	whale := chain.NewNamedAccount(1, "whale")
	minnows := make([]*chain.Account, 4)
	for i := range minnows {
		minnows[i] = chain.NewNamedAccount(1, fmt.Sprintf("minnow-%d", i))
	}
	cfg := DefaultConfig()
	cfg.Quorum = 1
	cfg.StakeWeightedQuorum = true
	h := newHarness(t, cfg, append([]*chain.Account{alice, whale}, minnows...)...)

	// Whale stakes 10x each minnow.
	h.call(whale, MethodRegisterWorker, nil, 5_000)
	for _, m := range minnows {
		h.call(m, MethodRegisterWorker, nil, 500)
	}
	h.seal()

	// Many tasks: the whale should win far more than 1/5 of seats.
	const tasks = 40
	whaleSeats := 0
	for i := 0; i < tasks; i++ {
		url := fmt.Sprintf("dweb://sw/%d", i)
		h.call(alice, MethodPublish, PublishParams{URL: url, CID: "c"}, 0)
		h.seal()
		task, ok := h.qb.TaskInfo(fmt.Sprintf("idx:%s:1", url))
		if !ok {
			t.Fatal("task missing")
		}
		if len(task.Assignees) == 1 && task.Assignees[0] == whale.Address() {
			whaleSeats++
		}
	}
	// Expected share: 5000/7000 ≈ 71%; uniform would be 20%. Require a
	// clear majority to keep the test robust.
	if whaleSeats < tasks/2 {
		t.Fatalf("whale won %d/%d seats; stake weighting ineffective", whaleSeats, tasks)
	}
}

func TestStakeWeightedSybilGainsNothing(t *testing.T) {
	// Splitting 5000 stake across 10 Sybils wins the same expected seats
	// as one 5000-stake identity: seats are proportional to total stake.
	alice := chain.NewNamedAccount(2, "alice")
	honest := chain.NewNamedAccount(2, "honest")
	sybils := make([]*chain.Account, 10)
	for i := range sybils {
		sybils[i] = chain.NewNamedAccount(2, fmt.Sprintf("sybil-%d", i))
	}
	cfg := DefaultConfig()
	cfg.Quorum = 1
	cfg.StakeWeightedQuorum = true
	h := newHarness(t, cfg, append([]*chain.Account{alice, honest}, sybils...)...)

	h.call(honest, MethodRegisterWorker, nil, 5_000)
	for _, s := range sybils {
		h.call(s, MethodRegisterWorker, nil, 500) // total 5000 across Sybils
	}
	h.seal()

	const tasks = 60
	sybilSeats := 0
	sybilAddrs := map[chain.Address]bool{}
	for _, s := range sybils {
		sybilAddrs[s.Address()] = true
	}
	for i := 0; i < tasks; i++ {
		url := fmt.Sprintf("dweb://syb/%d", i)
		h.call(alice, MethodPublish, PublishParams{URL: url, CID: "c"}, 0)
		h.seal()
		task, _ := h.qb.TaskInfo(fmt.Sprintf("idx:%s:1", url))
		if len(task.Assignees) == 1 && sybilAddrs[task.Assignees[0]] {
			sybilSeats++
		}
	}
	// Expected ~50%; allow wide slack but catch "Sybils dominate".
	if sybilSeats < tasks/4 || sybilSeats > 3*tasks/4 {
		t.Fatalf("sybil seats = %d/%d, want ≈ stake share (half)", sybilSeats, tasks)
	}
}

func TestImpressionCharging(t *testing.T) {
	adv := chain.NewNamedAccount(3, "adv")
	alice := chain.NewNamedAccount(3, "alice")
	h := newHarness(t, DefaultConfig(), adv, alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(adv, MethodRegisterAd, RegisterAdParams{
		Keywords: []string{"k"}, BidPerClick: 100, BidPerImpression: 10,
	}, 1000)
	h.seal()

	aliceBefore := h.chain.State().Balance(alice.Address())
	imp := h.call(alice, MethodImpression, ImpressionParams{AdID: 1, URL: "dweb://p"}, 0)
	h.seal()
	h.mustOK(imp)

	// 10 per impression, 60% creator share → 6.
	if got := h.chain.State().Balance(alice.Address()); got != aliceBefore+6 {
		t.Fatalf("creator impression cut = %d, want +6", got-aliceBefore)
	}
	ad, _ := h.qb.AdInfo(1)
	if ad.Impressions != 1 || ad.Budget != 990 {
		t.Fatalf("ad = %+v", ad)
	}
	h.checkEscrowInvariant()
}

func TestImpressionOnCPCOnlyAdFails(t *testing.T) {
	adv := chain.NewNamedAccount(4, "adv")
	alice := chain.NewNamedAccount(4, "alice")
	h := newHarness(t, DefaultConfig(), adv, alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(adv, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 50}, 500)
	h.seal()
	tx := h.call(alice, MethodImpression, ImpressionParams{AdID: 1, URL: "dweb://p"}, 0)
	h.seal()
	h.mustFail(tx)
}

func TestClickOnCPMOnlyAdFails(t *testing.T) {
	adv := chain.NewNamedAccount(5, "adv")
	alice := chain.NewNamedAccount(5, "alice")
	h := newHarness(t, DefaultConfig(), adv, alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(adv, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerImpression: 5}, 500)
	h.seal()
	tx := h.call(alice, MethodClick, ClickParams{AdID: 1, URL: "dweb://p"}, 0)
	h.seal()
	h.mustFail(tx)
}

func TestCPMAdExhaustion(t *testing.T) {
	adv := chain.NewNamedAccount(6, "adv")
	alice := chain.NewNamedAccount(6, "alice")
	h := newHarness(t, DefaultConfig(), adv, alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(adv, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerImpression: 100}, 250)
	h.seal()

	// Two impressions fit (250 → 150 → 50 < 100).
	for i := 0; i < 2; i++ {
		tx := h.call(alice, MethodImpression, ImpressionParams{AdID: 1, URL: "dweb://p"}, 0)
		h.seal()
		h.mustOK(tx)
	}
	third := h.call(alice, MethodImpression, ImpressionParams{AdID: 1, URL: "dweb://p"}, 0)
	h.seal()
	h.mustFail(third)
	ad, _ := h.qb.AdInfo(1)
	if ad.Active {
		t.Fatal("ad should be exhausted")
	}
	h.checkEscrowInvariant()
}

func TestMixedCampaignConservation(t *testing.T) {
	adv := chain.NewNamedAccount(7, "adv")
	alice := chain.NewNamedAccount(7, "alice")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{adv, alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 200)
	}
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(adv, MethodRegisterAd, RegisterAdParams{
		Keywords: []string{"k"}, BidPerClick: 70, BidPerImpression: 7,
	}, 700)
	h.seal()

	for i := 0; i < 5; i++ {
		h.call(alice, MethodImpression, ImpressionParams{AdID: 1, URL: "dweb://p"}, 0)
		h.seal()
	}
	for i := 0; i < 3; i++ {
		h.call(alice, MethodClick, ClickParams{AdID: 1, URL: "dweb://p"}, 0)
		h.seal()
	}
	st := h.chain.State()
	if st.SumBalances() != st.Supply() {
		t.Fatal("conservation violated")
	}
	h.checkEscrowInvariant()
	ad, _ := h.qb.AdInfo(1)
	if ad.Impressions != 5 || ad.Clicks != 3 {
		t.Fatalf("ad = %+v", ad)
	}
}

func TestMinPositiveAndMaxU64(t *testing.T) {
	if minPositive(0, 5) != 5 || minPositive(5, 0) != 5 || minPositive(3, 5) != 3 || minPositive(5, 3) != 3 {
		t.Fatal("minPositive wrong")
	}
	if maxU64(2, 9) != 9 || maxU64(9, 2) != 9 {
		t.Fatal("maxU64 wrong")
	}
}

func TestSecondPriceClickCharging(t *testing.T) {
	a1 := chain.NewNamedAccount(8, "a1")
	a2 := chain.NewNamedAccount(8, "a2")
	alice := chain.NewNamedAccount(8, "alice")
	cfg := DefaultConfig()
	cfg.SecondPriceClicks = true
	h := newHarness(t, cfg, a1, a2, alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	// Competing campaigns on the same keyword: bids 100 and 40.
	h.call(a1, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 100}, 1000)
	h.call(a2, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 40}, 1000)
	h.seal()

	// Click the winner: charged second price 40+1=41, not 100.
	click := h.call(alice, MethodClick, ClickParams{AdID: 1, URL: "dweb://p"}, 0)
	h.seal()
	h.mustOK(click)
	ad, _ := h.qb.AdInfo(1)
	if ad.Budget != 1000-41 {
		t.Fatalf("budget = %d, want %d (second-price charge 41)", ad.Budget, 1000-41)
	}
	h.checkEscrowInvariant()
}

func TestSecondPriceNoCompetitorReserve(t *testing.T) {
	a1 := chain.NewNamedAccount(9, "a1")
	alice := chain.NewNamedAccount(9, "alice")
	cfg := DefaultConfig()
	cfg.SecondPriceClicks = true
	h := newHarness(t, cfg, a1, alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(a1, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 100}, 1000)
	h.seal()
	click := h.call(alice, MethodClick, ClickParams{AdID: 1, URL: "dweb://p"}, 0)
	h.seal()
	h.mustOK(click)
	ad, _ := h.qb.AdInfo(1)
	if ad.Budget != 999 { // reserve price 1
		t.Fatalf("budget = %d, want 999", ad.Budget)
	}
}

func TestSecondPriceDisjointKeywordsNoEffect(t *testing.T) {
	a1 := chain.NewNamedAccount(10, "a1")
	a2 := chain.NewNamedAccount(10, "a2")
	alice := chain.NewNamedAccount(10, "alice")
	cfg := DefaultConfig()
	cfg.SecondPriceClicks = true
	h := newHarness(t, cfg, a1, a2, alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(a1, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 100}, 1000)
	h.call(a2, MethodRegisterAd, RegisterAdParams{Keywords: []string{"other"}, BidPerClick: 90}, 1000)
	h.seal()
	h.call(alice, MethodClick, ClickParams{AdID: 1, URL: "dweb://p"}, 0)
	h.seal()
	ad, _ := h.qb.AdInfo(1)
	if ad.Budget != 999 { // a2 bids on a different keyword: reserve applies
		t.Fatalf("budget = %d, want 999", ad.Budget)
	}
}
