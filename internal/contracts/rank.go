package contracts

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/chain"
)

// RankEpoch tracks one distributed page-rank computation: the link graph
// is split into partitions, each verified by its own quorum task; the
// epoch finalizes when every partition task has finalized.
//
// A Delta epoch carries the on-chain dirty snapshot: the sorted URLs
// published (new pages or new versions) since the previous epoch's
// snapshot. Every assignee computes the same delta from the same inputs
// — the finalized rank vector plus this snapshot — so quorum digests
// still agree; the rank-epoch contract in the package doc of the root
// module (doc.go) states the exactness terms.
type RankEpoch struct {
	Epoch      uint64
	Partitions int
	Finalized  int
	Done       bool

	// Delta marks an incremental epoch; Dirty is its snapshot, sorted so
	// every bee iterates it identically (never map order).
	Delta bool
	Dirty []string
}

// RankEntry is one page's rank inside a rank-task result. Results are
// JSON-encoded slices sorted by URL so digests are deterministic.
type RankEntry struct {
	URL  string
	Rank float64
}

// EncodeRankResult serializes rank entries for reveal payloads.
func EncodeRankResult(entries []RankEntry) []byte {
	b, err := json.Marshal(entries)
	if err != nil {
		panic(fmt.Sprintf("contracts: encoding rank result: %v", err))
	}
	return b
}

// DecodeRankResult parses a rank-task result.
func DecodeRankResult(data []byte) ([]RankEntry, error) {
	var out []RankEntry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("contracts: decoding rank result: %w", err)
	}
	return out, nil
}

// CreateRankEpochParams opens the rank tasks for one epoch. Delta asks
// for an incremental epoch: the contract snapshots the pages dirtied
// since the last epoch into the epoch record and the assignees re-walk
// only the subgraph reachable from them.
type CreateRankEpochParams struct {
	Epoch      uint64
	Partitions int
	Delta      bool
}

// RankTaskID names the task for one partition of one epoch.
func RankTaskID(epoch uint64, partition int) string {
	return fmt.Sprintf("rank:%d:%d", epoch, partition)
}

func (q *QueenBee) execCreateRankEpoch(ctx *chain.TxContext, params []byte) error {
	var p CreateRankEpochParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	if p.Partitions <= 0 {
		return fmt.Errorf("queenbee: rank epoch needs >= 1 partition")
	}
	if _, dup := q.rankEpochs[p.Epoch]; dup {
		return fmt.Errorf("queenbee: rank epoch %d already exists", p.Epoch)
	}
	re := &RankEpoch{Epoch: p.Epoch, Partitions: p.Partitions, Delta: p.Delta}
	if p.Delta {
		re.Dirty = sortedBoolKeys(q.dirtyPages)
	}
	// Full or delta, this epoch covers the graph as of now: reset the
	// dirty set so the next delta snapshot is relative to this epoch. (An
	// epoch that later fails to finalize under-counts staleness — the
	// escape-hatch full recompute bounds the damage.)
	q.dirtyPages = make(map[string]bool)
	q.rankEpochs[p.Epoch] = re
	for part := 0; part < p.Partitions; part++ {
		q.createTaskLocked(ctx, RankTaskID(p.Epoch, part), TaskRank, map[string]string{
			"epoch":     strconv.FormatUint(p.Epoch, 10),
			"partition": strconv.Itoa(part),
		})
	}
	ctx.Emit(EventRankEpochCreated, map[string]string{
		"epoch":      strconv.FormatUint(p.Epoch, 10),
		"partitions": strconv.Itoa(p.Partitions),
	})
	return nil
}

// onRankTaskFinalizedLocked merges a finalized partition's rank values and
// closes the epoch when all partitions are in.
func (q *QueenBee) onRankTaskFinalizedLocked(ctx *chain.TxContext, t *Task) {
	epoch, err := strconv.ParseUint(t.Meta["epoch"], 10, 64)
	if err != nil {
		return
	}
	re, ok := q.rankEpochs[epoch]
	if !ok || re.Done {
		return
	}
	entries, err := DecodeRankResult(t.WinningResult)
	if err != nil {
		return
	}
	for _, e := range entries {
		q.pageRanks[e.URL] = e.Rank
	}
	if len(entries) > 0 {
		q.rankGen++
	}
	re.Finalized++
	if re.Finalized >= re.Partitions {
		re.Done = true
		if epoch > q.rankEpoch {
			q.rankEpoch = epoch
		}
		if !re.Delta && epoch > q.fullEpoch {
			q.fullEpoch = epoch
		}
		ctx.Emit(EventRankEpochFinalized, map[string]string{
			"epoch": strconv.FormatUint(epoch, 10),
		})
	}
}

// RankStaleness is the freshness summary serving surfaces report: the
// latest finalized epoch, the latest finalized FULL epoch (the last
// time the vector was exact rather than delta-approximated), how many
// epochs of drift have accumulated since, and how many pages have been
// dirtied since the last epoch snapshot (i.e. are not yet covered by
// any epoch).
type RankStaleness struct {
	Epoch           uint64
	LastFull        uint64
	DeltasSinceFull int
	DirtyPages      int
}

// RankStaleness returns the current freshness summary. Safe for
// concurrent use; queenbeed serves it in the /stats write-path block.
func (q *QueenBee) RankStaleness() RankStaleness {
	q.mu.RLock()
	defer q.mu.RUnlock()
	st := RankStaleness{
		Epoch:      q.rankEpoch,
		LastFull:   q.fullEpoch,
		DirtyPages: len(q.dirtyPages),
	}
	for e, re := range q.rankEpochs {
		if re.Done && re.Delta && e > q.fullEpoch {
			st.DeltasSinceFull++
		}
	}
	return st
}

// sortedBoolKeys returns a set's keys in sorted order — the only order
// in which a dirty snapshot may reach the chain.
func sortedBoolKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PageRank returns a page's latest finalized rank (0 if unranked).
func (q *QueenBee) PageRank(url string) float64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.pageRanks[url]
}

// PageRanks returns a copy of the latest finalized rank vector.
func (q *QueenBee) PageRanks() map[string]float64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	out := make(map[string]float64, len(q.pageRanks))
	for k, v := range q.pageRanks {
		out[k] = v
	}
	return out
}

// RankGen returns a generation counter that advances whenever the rank
// vector changes (any finalized partition that merged entries). Readers
// that derive values from PageRanks — e.g. the frontend's memoized
// maxRank — key their caches on it instead of rescanning the vector on
// every query.
func (q *QueenBee) RankGen() uint64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.rankGen
}

// LatestRankEpoch returns the newest finalized epoch (0 if none).
func (q *QueenBee) LatestRankEpoch() uint64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.rankEpoch
}

// RankEpochInfo returns a copy of one epoch's progress.
func (q *QueenBee) RankEpochInfo(epoch uint64) (RankEpoch, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	re, ok := q.rankEpochs[epoch]
	if !ok {
		return RankEpoch{}, false
	}
	return *re, true
}

// PayPopularityParams mints the threshold reward for one finalized epoch.
type PayPopularityParams struct {
	Epoch uint64
}

// execPayPopularity implements the paper's incentive sketch: "give the
// providers for which the page ranks of their websites exceed a certain
// threshold some QueenBee's honey." Each page pays at most once per epoch.
func (q *QueenBee) execPayPopularity(ctx *chain.TxContext, params []byte) error {
	var p PayPopularityParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	re, ok := q.rankEpochs[p.Epoch]
	if !ok || !re.Done {
		return fmt.Errorf("queenbee: rank epoch %d not finalized", p.Epoch)
	}
	paid := 0
	for _, url := range sortedKeys(q.pageRanks) {
		rank := q.pageRanks[url]
		if rank < q.cfg.PopularityThreshold {
			continue
		}
		key := fmt.Sprintf("%d:%s", p.Epoch, url)
		if q.paidPopularity[key] {
			continue
		}
		rec, ok := q.pages[url]
		if !ok {
			continue
		}
		if err := ctx.Mint(rec.Owner, q.cfg.PopularityReward); err != nil {
			return err
		}
		q.paidPopularity[key] = true
		paid++
		ctx.Emit(EventPopularityPaid, map[string]string{
			"url":    url,
			"owner":  rec.Owner.String(),
			"amount": strconv.FormatUint(q.cfg.PopularityReward, 10),
			"epoch":  strconv.FormatUint(p.Epoch, 10),
		})
	}
	if paid == 0 {
		return fmt.Errorf("queenbee: no unpaid pages above threshold in epoch %d", p.Epoch)
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
