package contracts

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/vclock"
)

// harness wires a chain, the contract and a cast of funded accounts.
type harness struct {
	t      *testing.T
	chain  *chain.Chain
	clock  *vclock.Clock
	qb     *QueenBee
	nonces map[chain.Address]uint64
}

func newHarness(t *testing.T, cfg Config, accts ...*chain.Account) *harness {
	t.Helper()
	clock := vclock.New(time.Time{})
	genesis := make(map[chain.Address]uint64)
	for _, a := range accts {
		genesis[a.Address()] = 10_000
	}
	c := chain.New(clock, genesis)
	qb := New(cfg)
	c.RegisterContract(qb, true)
	return &harness{t: t, chain: c, clock: clock, qb: qb, nonces: map[chain.Address]uint64{}}
}

// call submits a contract call and returns the tx for receipt checks.
func (h *harness) call(from *chain.Account, method string, params any, value uint64) *chain.Tx {
	h.t.Helper()
	n := h.nonces[from.Address()]
	h.nonces[from.Address()]++
	tx := chain.NewCall(from, n, ContractName, method, params, value)
	if err := h.chain.Submit(tx); err != nil {
		h.t.Fatalf("submit %s: %v", method, err)
	}
	return tx
}

// seal seals a block and advances the clock.
func (h *harness) seal() {
	h.clock.Advance(10 * time.Second)
	h.chain.Seal()
}

// mustOK asserts a transaction succeeded.
func (h *harness) mustOK(tx *chain.Tx) {
	h.t.Helper()
	r := h.chain.Receipt(tx.Hash())
	if r == nil {
		h.t.Fatal("no receipt (did you seal?)")
	}
	if !r.OK {
		h.t.Fatalf("tx failed: %s", r.Err)
	}
}

// mustFail asserts a transaction failed.
func (h *harness) mustFail(tx *chain.Tx) {
	h.t.Helper()
	r := h.chain.Receipt(tx.Hash())
	if r == nil {
		h.t.Fatal("no receipt (did you seal?)")
	}
	if r.OK {
		h.t.Fatal("tx unexpectedly succeeded")
	}
}

// checkEscrowInvariant verifies escrow balance == stakes + budgets + dust.
func (h *harness) checkEscrowInvariant() {
	h.t.Helper()
	b := h.qb.Escrow()
	onChain := h.chain.State().Balance(chain.EscrowAddress(ContractName))
	if want := b.Stakes + b.AdBudgets + b.Dust; onChain != want {
		h.t.Fatalf("escrow invariant violated: on-chain %d != stakes %d + budgets %d + dust %d",
			onChain, b.Stakes, b.AdBudgets, b.Dust)
	}
}

func workers(n int) []*chain.Account {
	out := make([]*chain.Account, n)
	for i := range out {
		out[i] = chain.NewNamedAccount(100, fmt.Sprintf("worker-%d", i))
	}
	return out
}

func TestPublishRegistersPageAndCreatesTask(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 100)
	}
	h.seal()

	tx := h.call(alice, MethodPublish, PublishParams{URL: "dweb://a", CID: "c1", Links: []string{"dweb://b"}}, 0)
	h.seal()
	h.mustOK(tx)

	rec, ok := h.qb.Page("dweb://a")
	if !ok || rec.CID != "c1" || rec.Seq != 1 || rec.Owner != alice.Address() {
		t.Fatalf("page record = %+v ok=%v", rec, ok)
	}
	task, ok := h.qb.TaskInfo("idx:dweb://a:1")
	if !ok {
		t.Fatal("index task not created")
	}
	if len(task.Assignees) != 3 {
		t.Fatalf("assignees = %d, want quorum 3", len(task.Assignees))
	}
	if task.Kind != TaskIndex || task.Status != StatusOpen {
		t.Fatalf("task = %+v", task)
	}
}

func TestRepublishBumpsSeq(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	h := newHarness(t, DefaultConfig(), alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://a", CID: "c1"}, 0)
	h.seal()
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://a", CID: "c2"}, 0)
	h.seal()
	rec, _ := h.qb.Page("dweb://a")
	if rec.Seq != 2 || rec.CID != "c2" {
		t.Fatalf("rec = %+v, want seq 2 cid c2", rec)
	}
}

func TestPublishOwnershipEnforced(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	mallory := chain.NewNamedAccount(1, "mallory")
	h := newHarness(t, DefaultConfig(), alice, mallory)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://a", CID: "c1"}, 0)
	h.seal()
	tx := h.call(mallory, MethodPublish, PublishParams{URL: "dweb://a", CID: "evil"}, 0)
	h.seal()
	h.mustFail(tx)
	rec, _ := h.qb.Page("dweb://a")
	if rec.CID != "c1" {
		t.Fatal("hijack succeeded")
	}
}

func TestWorkerRegistration(t *testing.T) {
	w := chain.NewNamedAccount(1, "w")
	h := newHarness(t, DefaultConfig(), w)

	low := h.call(w, MethodRegisterWorker, nil, 50) // below MinStake 100
	h.seal()
	h.mustFail(low)

	ok := h.call(w, MethodRegisterWorker, nil, 150)
	h.seal()
	h.mustOK(ok)
	info, found := h.qb.WorkerInfo(w.Address())
	if !found || !info.Active || info.Stake != 150 {
		t.Fatalf("worker = %+v", info)
	}
	h.checkEscrowInvariant()

	dup := h.call(w, MethodRegisterWorker, nil, 150)
	h.seal()
	h.mustFail(dup)

	dereg := h.call(w, MethodDeregisterWorker, nil, 0)
	h.seal()
	h.mustOK(dereg)
	if got := h.chain.State().Balance(w.Address()); got != 10_000 {
		t.Fatalf("balance after deregister = %d, want 10000", got)
	}
	h.checkEscrowInvariant()
}

// runTask drives a full commit-reveal cycle where each worker submits the
// digest returned by digestFor.
func runTask(h *harness, taskID string, ws []*chain.Account, digestFor func(i int) string) {
	h.t.Helper()
	task, ok := h.qb.TaskInfo(taskID)
	if !ok {
		h.t.Fatalf("task %s missing", taskID)
	}
	assigned := map[chain.Address]bool{}
	for _, a := range task.Assignees {
		assigned[a] = true
	}
	salts := map[int][]byte{}
	for i, w := range ws {
		if !assigned[w.Address()] {
			continue
		}
		salts[i] = []byte{byte(i), 0xAB}
		h.call(w, MethodCommit, CommitParams{
			TaskID:     taskID,
			Commitment: Commitment(digestFor(i), salts[i]),
		}, 0)
	}
	h.seal()
	for i, w := range ws {
		if !assigned[w.Address()] {
			continue
		}
		h.call(w, MethodReveal, RevealParams{
			TaskID: taskID,
			Digest: digestFor(i),
			Salt:   salts[i],
		}, 0)
	}
	h.seal()
}

func TestCommitRevealHonestQuorum(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 200)
	}
	h.seal()
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.seal()

	honest := ResultDigest([]byte("postings-v1"))
	runTask(h, "idx:dweb://p:1", ws, func(int) string { return honest })

	task, _ := h.qb.TaskInfo("idx:dweb://p:1")
	if task.Status != StatusFinalized || task.WinningDigest != honest {
		t.Fatalf("task = %+v", task)
	}
	// Every assignee earned the task reward.
	cfg := h.qb.Config()
	for _, w := range ws {
		info, _ := h.qb.WorkerInfo(w.Address())
		if !isAssigneeAddr(task.Assignees, w.Address()) {
			continue
		}
		if info.Completed != 1 {
			t.Fatalf("worker %s completed = %d", w.Address().Short(), info.Completed)
		}
		bal := h.chain.State().Balance(w.Address())
		if bal != 10_000-200+cfg.TaskReward {
			t.Fatalf("worker balance = %d", bal)
		}
	}
	h.checkEscrowInvariant()
}

func isAssigneeAddr(assignees []chain.Address, a chain.Address) bool {
	for _, x := range assignees {
		if x == a {
			return true
		}
	}
	return false
}

func TestMinorityDissenterSlashed(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 200)
	}
	h.seal()
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.seal()

	honest := ResultDigest([]byte("good"))
	evil := ResultDigest([]byte("evil"))
	// Worker index 0 (in assignee order) lies.
	task, _ := h.qb.TaskInfo("idx:dweb://p:1")
	liar := task.Assignees[0]
	runTask(h, "idx:dweb://p:1", ws, func(i int) string {
		if ws[i].Address() == liar {
			return evil
		}
		return honest
	})

	task, _ = h.qb.TaskInfo("idx:dweb://p:1")
	if task.Status != StatusFinalized || task.WinningDigest != honest {
		t.Fatalf("honest digest should win: %+v", task)
	}
	info, _ := h.qb.WorkerInfo(liar)
	if info.Slashes != 1 {
		t.Fatalf("liar slashes = %d, want 1", info.Slashes)
	}
	if info.Stake != 200-h.qb.Config().SlashAmount {
		t.Fatalf("liar stake = %d", info.Stake)
	}
	h.checkEscrowInvariant()
	// Slash is burned: supply went down by slash, up by 2 rewards.
	burned := h.chain.State().Burned()
	if burned != h.qb.Config().SlashAmount {
		t.Fatalf("burned = %d, want %d", burned, h.qb.Config().SlashAmount)
	}
}

func TestColludingMajorityCorruptsTask(t *testing.T) {
	// The attack the paper warns about: with 2 of 3 assignees colluding,
	// the wrong digest wins and honest workers get slashed.
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 200)
	}
	h.seal()
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.seal()

	honest := ResultDigest([]byte("good"))
	evil := ResultDigest([]byte("evil"))
	task, _ := h.qb.TaskInfo("idx:dweb://p:1")
	honestWorker := task.Assignees[0]
	runTask(h, "idx:dweb://p:1", ws, func(i int) string {
		if ws[i].Address() == honestWorker {
			return honest
		}
		return evil
	})

	task, _ = h.qb.TaskInfo("idx:dweb://p:1")
	if task.WinningDigest != evil {
		t.Fatalf("collusion should win with 2/3: %+v", task)
	}
	info, _ := h.qb.WorkerInfo(honestWorker)
	if info.Slashes != 1 {
		t.Fatal("honest minority should be slashed (the cost of the attack)")
	}
}

func TestNoMajorityFailsTask(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 200)
	}
	h.seal()
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.seal()

	// Three distinct digests: no strict majority.
	runTask(h, "idx:dweb://p:1", ws, func(i int) string {
		return ResultDigest([]byte{byte(i)})
	})
	task, _ := h.qb.TaskInfo("idx:dweb://p:1")
	if task.Status != StatusFailed {
		t.Fatalf("task = %+v, want failed", task)
	}
}

func TestRevealMustMatchCommitment(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(1)
	cfg := DefaultConfig()
	cfg.Quorum = 1
	h := newHarness(t, cfg, append([]*chain.Account{alice}, ws...)...)
	h.call(ws[0], MethodRegisterWorker, nil, 200)
	h.seal()
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.seal()

	h.call(ws[0], MethodCommit, CommitParams{
		TaskID:     "idx:dweb://p:1",
		Commitment: Commitment(ResultDigest([]byte("a")), []byte("salt")),
	}, 0)
	h.seal()
	bad := h.call(ws[0], MethodReveal, RevealParams{
		TaskID: "idx:dweb://p:1",
		Digest: ResultDigest([]byte("DIFFERENT")),
		Salt:   []byte("salt"),
	}, 0)
	h.seal()
	h.mustFail(bad)
}

func TestNonAssigneeCannotCommit(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	outsider := chain.NewNamedAccount(1, "outsider")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{alice, outsider}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 200)
	}
	h.seal()
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.seal()
	tx := h.call(outsider, MethodCommit, CommitParams{TaskID: "idx:dweb://p:1", Commitment: "00"}, 0)
	h.seal()
	h.mustFail(tx)
}

func TestFinalizeAfterDeadlineSlashesNonRevealers(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 200)
	}
	h.seal()
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.seal()

	// Two of three commit+reveal; the third is silent.
	task, _ := h.qb.TaskInfo("idx:dweb://p:1")
	digest := ResultDigest([]byte("r"))
	salt := []byte("s")
	active := task.Assignees[:2]
	byAddr := map[chain.Address]*chain.Account{}
	for _, w := range ws {
		byAddr[w.Address()] = w
	}
	for _, a := range active {
		h.call(byAddr[a], MethodCommit, CommitParams{TaskID: task.ID, Commitment: Commitment(digest, salt)}, 0)
	}
	h.seal()
	for _, a := range active {
		h.call(byAddr[a], MethodReveal, RevealParams{TaskID: task.ID, Digest: digest, Salt: salt}, 0)
	}
	h.seal()

	// Reveal window still open → finalize must fail.
	early := h.call(alice, MethodFinalize, FinalizeParams{TaskID: task.ID}, 0)
	h.seal()
	h.mustFail(early)

	// Burn blocks past the deadline.
	for h.chain.Height() <= task.RevealDeadline {
		h.seal()
	}
	late := h.call(alice, MethodFinalize, FinalizeParams{TaskID: task.ID}, 0)
	h.seal()
	h.mustOK(late)

	got, _ := h.qb.TaskInfo(task.ID)
	if got.Status != StatusFinalized || got.WinningDigest != digest {
		t.Fatalf("task = %+v", got)
	}
	silent := task.Assignees[2]
	info, _ := h.qb.WorkerInfo(silent)
	if info.Slashes != 1 {
		t.Fatalf("silent worker slashes = %d, want 1", info.Slashes)
	}
	h.checkEscrowInvariant()
}

func TestRankEpochLifecycle(t *testing.T) {
	admin := chain.NewNamedAccount(1, "admin")
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{admin, alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 200)
	}
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://a", CID: "c"}, 0)
	h.seal()

	h.call(admin, MethodCreateRankEpoch, CreateRankEpochParams{Epoch: 1, Partitions: 2}, 0)
	h.seal()

	result0 := EncodeRankResult([]RankEntry{{URL: "dweb://a", Rank: 0.5}})
	result1 := EncodeRankResult([]RankEntry{{URL: "dweb://b", Rank: 0.25}})

	byAddr := map[chain.Address]*chain.Account{}
	for _, w := range ws {
		byAddr[w.Address()] = w
	}
	// Commit to both partitions within one block, reveal in the next, so
	// both fit inside the commit/reveal windows.
	results := [][]byte{result0, result1}
	for part, result := range results {
		id := RankTaskID(1, part)
		task, ok := h.qb.TaskInfo(id)
		if !ok {
			t.Fatalf("missing task %s", id)
		}
		digest := ResultDigest(result)
		salt := []byte{byte(part)}
		for _, a := range task.Assignees {
			h.call(byAddr[a], MethodCommit, CommitParams{TaskID: id, Commitment: Commitment(digest, salt)}, 0)
		}
	}
	h.seal()
	for part, result := range results {
		id := RankTaskID(1, part)
		task, _ := h.qb.TaskInfo(id)
		digest := ResultDigest(result)
		salt := []byte{byte(part)}
		for _, a := range task.Assignees {
			h.call(byAddr[a], MethodReveal, RevealParams{TaskID: id, Digest: digest, Salt: salt, Result: result}, 0)
		}
	}
	h.seal()

	if got := h.qb.LatestRankEpoch(); got != 1 {
		t.Fatalf("latest epoch = %d, want 1", got)
	}
	if got := h.qb.PageRank("dweb://a"); got != 0.5 {
		t.Fatalf("rank a = %v, want 0.5", got)
	}
	if got := h.qb.PageRank("dweb://b"); got != 0.25 {
		t.Fatalf("rank b = %v, want 0.25", got)
	}
}

func TestRankRevealRequiresResult(t *testing.T) {
	admin := chain.NewNamedAccount(1, "admin")
	ws := workers(1)
	cfg := DefaultConfig()
	cfg.Quorum = 1
	h := newHarness(t, cfg, append([]*chain.Account{admin}, ws...)...)
	h.call(ws[0], MethodRegisterWorker, nil, 200)
	h.seal()
	h.call(admin, MethodCreateRankEpoch, CreateRankEpochParams{Epoch: 1, Partitions: 1}, 0)
	h.seal()

	id := RankTaskID(1, 0)
	digest := ResultDigest([]byte("r"))
	h.call(ws[0], MethodCommit, CommitParams{TaskID: id, Commitment: Commitment(digest, []byte("s"))}, 0)
	h.seal()
	tx := h.call(ws[0], MethodReveal, RevealParams{TaskID: id, Digest: digest, Salt: []byte("s")}, 0)
	h.seal()
	h.mustFail(tx)
}

func TestPopularityRewards(t *testing.T) {
	admin := chain.NewNamedAccount(1, "admin")
	alice := chain.NewNamedAccount(1, "alice")
	bob := chain.NewNamedAccount(1, "bob")
	ws := workers(1)
	cfg := DefaultConfig()
	cfg.Quorum = 1
	cfg.PopularityThreshold = 0.1
	h := newHarness(t, cfg, append([]*chain.Account{admin, alice, bob}, ws...)...)
	h.call(ws[0], MethodRegisterWorker, nil, 200)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://popular", CID: "c"}, 0)
	h.call(bob, MethodPublish, PublishParams{URL: "dweb://obscure", CID: "c"}, 0)
	h.seal()

	h.call(admin, MethodCreateRankEpoch, CreateRankEpochParams{Epoch: 1, Partitions: 1}, 0)
	h.seal()
	result := EncodeRankResult([]RankEntry{
		{URL: "dweb://popular", Rank: 0.9},
		{URL: "dweb://obscure", Rank: 0.01},
	})
	id := RankTaskID(1, 0)
	digest := ResultDigest(result)
	h.call(ws[0], MethodCommit, CommitParams{TaskID: id, Commitment: Commitment(digest, []byte("s"))}, 0)
	h.seal()
	h.call(ws[0], MethodReveal, RevealParams{TaskID: id, Digest: digest, Salt: []byte("s"), Result: result}, 0)
	h.seal()

	before := h.chain.State().Balance(alice.Address())
	pay := h.call(admin, MethodPayPopularity, PayPopularityParams{Epoch: 1}, 0)
	h.seal()
	h.mustOK(pay)
	if got := h.chain.State().Balance(alice.Address()); got != before+cfg.PopularityReward {
		t.Fatalf("alice balance = %d, want +%d", got, cfg.PopularityReward)
	}
	bobBefore := h.chain.State().Balance(bob.Address())
	_ = bobBefore
	// Double pay must fail (all pages above threshold already paid).
	again := h.call(admin, MethodPayPopularity, PayPopularityParams{Epoch: 1}, 0)
	h.seal()
	h.mustFail(again)
}

func TestAdLifecycleAndClickSplit(t *testing.T) {
	advertiser := chain.NewNamedAccount(1, "adv")
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(2)
	cfg := DefaultConfig()
	cfg.CreatorShareBP = 6000
	h := newHarness(t, cfg, append([]*chain.Account{advertiser, alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 100)
	}
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://page", CID: "c"}, 0)
	h.seal()

	reg := h.call(advertiser, MethodRegisterAd, RegisterAdParams{
		Keywords: []string{"Shoes", "boots"}, BidPerClick: 100,
	}, 1000)
	h.seal()
	h.mustOK(reg)
	h.checkEscrowInvariant()

	ads := h.qb.AdsForTerms([]string{"shoes"})
	if len(ads) != 1 || ads[0].BidPerClick != 100 {
		t.Fatalf("AdsForTerms = %+v", ads)
	}

	aliceBefore := h.chain.State().Balance(alice.Address())
	w0Before := h.chain.State().Balance(ws[0].Address())
	click := h.call(alice, MethodClick, ClickParams{AdID: ads[0].ID, URL: "dweb://page"}, 0)
	h.seal()
	h.mustOK(click)

	// 100 per click: 60 creator, 40/2=20 per worker.
	if got := h.chain.State().Balance(alice.Address()); got != aliceBefore+60 {
		t.Fatalf("creator cut = %d, want +60", got-aliceBefore)
	}
	if got := h.chain.State().Balance(ws[0].Address()); got != w0Before+20 {
		t.Fatalf("worker cut = %d, want +20", got-w0Before)
	}
	ad, _ := h.qb.AdInfo(ads[0].ID)
	if ad.Budget != 900 || ad.Clicks != 1 {
		t.Fatalf("ad = %+v", ad)
	}
	h.checkEscrowInvariant()
}

func TestAdExhaustion(t *testing.T) {
	advertiser := chain.NewNamedAccount(1, "adv")
	alice := chain.NewNamedAccount(1, "alice")
	h := newHarness(t, DefaultConfig(), advertiser, alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(advertiser, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 100}, 150)
	h.seal()

	ads := h.qb.AdsForTerms([]string{"k"})
	first := h.call(alice, MethodClick, ClickParams{AdID: ads[0].ID, URL: "dweb://p"}, 0)
	h.seal()
	h.mustOK(first)
	// Budget now 50 < bid: ad inactive.
	second := h.call(alice, MethodClick, ClickParams{AdID: ads[0].ID, URL: "dweb://p"}, 0)
	h.seal()
	h.mustFail(second)
	if len(h.qb.AdsForTerms([]string{"k"})) != 0 {
		t.Fatal("exhausted ad still served")
	}
	// Top-up reactivates.
	topup := h.call(advertiser, MethodTopUpAd, TopUpAdParams{AdID: ads[0].ID}, 500)
	h.seal()
	h.mustOK(topup)
	if len(h.qb.AdsForTerms([]string{"k"})) != 1 {
		t.Fatal("top-up should reactivate ad")
	}
	h.checkEscrowInvariant()
}

func TestClickDustWithNoWorkers(t *testing.T) {
	advertiser := chain.NewNamedAccount(1, "adv")
	alice := chain.NewNamedAccount(1, "alice")
	h := newHarness(t, DefaultConfig(), advertiser, alice)
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(advertiser, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 100}, 200)
	h.seal()
	ads := h.qb.AdsForTerms([]string{"k"})
	h.call(alice, MethodClick, ClickParams{AdID: ads[0].ID, URL: "dweb://p"}, 0)
	h.seal()
	b := h.qb.Escrow()
	if b.Dust != 40 { // no workers → worker cut becomes dust
		t.Fatalf("dust = %d, want 40", b.Dust)
	}
	h.checkEscrowInvariant()
}

func TestAdsSortedByBid(t *testing.T) {
	a1 := chain.NewNamedAccount(1, "a1")
	a2 := chain.NewNamedAccount(1, "a2")
	h := newHarness(t, DefaultConfig(), a1, a2)
	h.call(a1, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 10}, 100)
	h.call(a2, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 99}, 100)
	h.seal()
	ads := h.qb.AdsForTerms([]string{"k"})
	if len(ads) != 2 || ads[0].BidPerClick != 99 {
		t.Fatalf("ads = %+v, want highest bid first", ads)
	}
}

func TestQuorumSmallerThanPoolAssignsAll(t *testing.T) {
	alice := chain.NewNamedAccount(1, "alice")
	ws := workers(2) // pool smaller than quorum 3
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{alice}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 200)
	}
	h.seal()
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.seal()
	task, _ := h.qb.TaskInfo("idx:dweb://p:1")
	if len(task.Assignees) != 2 {
		t.Fatalf("assignees = %d, want all 2", len(task.Assignees))
	}
}

func TestSupplyConservationAcrossFullFlow(t *testing.T) {
	admin := chain.NewNamedAccount(1, "admin")
	alice := chain.NewNamedAccount(1, "alice")
	adv := chain.NewNamedAccount(1, "adv")
	ws := workers(3)
	h := newHarness(t, DefaultConfig(), append([]*chain.Account{admin, alice, adv}, ws...)...)
	for _, w := range ws {
		h.call(w, MethodRegisterWorker, nil, 300)
	}
	h.call(alice, MethodPublish, PublishParams{URL: "dweb://p", CID: "c"}, 0)
	h.call(adv, MethodRegisterAd, RegisterAdParams{Keywords: []string{"k"}, BidPerClick: 50}, 500)
	h.seal()

	honest := ResultDigest([]byte("seg"))
	runTask(h, "idx:dweb://p:1", ws, func(int) string { return honest })

	h.call(alice, MethodClick, ClickParams{AdID: 1, URL: "dweb://p"}, 0)
	h.seal()

	st := h.chain.State()
	if st.SumBalances() != st.Supply() {
		t.Fatalf("conservation violated: balances %d != supply %d", st.SumBalances(), st.Supply())
	}
	h.checkEscrowInvariant()
}
