// Package contracts implements "QueenBee's smart contract": the on-chain
// business logic the paper sketches in Figure 1. One contract (as in the
// paper, which speaks of publishing "via QueenBee's smart contract")
// covers five method areas:
//
//   - publish:  content creators register page versions (no crawling —
//     index maintenance is driven by these publish events);
//   - workers:  worker bees stake honey to join the indexing/ranking pool;
//   - tasks:    index and page-rank work is assigned to a pseudo-random
//     quorum of bees, verified by commit–reveal majority voting,
//     rewarded with minted honey, with dissenters slashed (the
//     defense evaluated against the collusion attack, E11);
//   - ads:      advertisers escrow budgets and pay per click, with revenue
//     shared between content creators and the worker pool;
//   - rewards:  providers whose page rank exceeds a threshold earn
//     popularity honey (the paper's fair-incentive sketch).
package contracts

import (
	"fmt"
	"sync"

	"repro/internal/chain"
)

// ContractName is the registration key for the QueenBee contract.
const ContractName = "queenbee"

// Method names.
const (
	MethodPublish          = "publish"
	MethodPublishBatch     = "publish-batch"
	MethodRegisterWorker   = "register-worker"
	MethodDeregisterWorker = "deregister-worker"
	MethodCommit           = "commit"
	MethodReveal           = "reveal"
	MethodFinalize         = "finalize"
	MethodCreateRankEpoch  = "create-rank-epoch"
	MethodPayPopularity    = "pay-popularity"
	MethodRegisterAd       = "register-ad"
	MethodTopUpAd          = "top-up-ad"
	MethodClick            = "click"
	MethodImpression       = "impression"
)

// Config tunes the QueenBee economy.
type Config struct {
	// Quorum is the number of worker bees assigned to each task; majority
	// of reveals decides the canonical result.
	Quorum int
	// TaskReward is the honey minted to each worker in the winning
	// majority of a finalized task.
	TaskReward uint64
	// SlashAmount is the stake burned from a worker that reveals a
	// minority digest or misses the reveal deadline.
	SlashAmount uint64
	// MinStake is the stake required to register as a worker.
	MinStake uint64
	// CommitBlocks and RevealBlocks are phase lengths in blocks; after
	// CreatedAt+CommitBlocks+RevealBlocks anyone may finalize.
	CommitBlocks uint64
	RevealBlocks uint64
	// CreatorShareBP is the content creator's share of each ad click in
	// basis points; the remainder goes to the worker pool.
	CreatorShareBP uint64
	// PopularityThreshold is the page-rank value above which a provider
	// earns PopularityReward each epoch.
	PopularityThreshold float64
	// PopularityReward is the honey minted per popular page per epoch.
	PopularityReward uint64
	// StakeWeightedQuorum selects task assignees with probability
	// proportional to stake instead of uniformly. It makes quorum seats
	// cost capital: an attacker splitting one stake across many Sybil
	// identities gains no extra seats.
	StakeWeightedQuorum bool
	// SecondPriceClicks charges a clicked ad the highest competing bid
	// among active ads sharing a keyword (plus one), capped at its own
	// bid — a generalized-second-price auction, one answer to the
	// paper's "fair scheme to charge [advertisers]".
	SecondPriceClicks bool
}

// DefaultConfig returns the simulation defaults.
func DefaultConfig() Config {
	return Config{
		Quorum:              3,
		TaskReward:          10,
		SlashAmount:         50,
		MinStake:            100,
		CommitBlocks:        2,
		RevealBlocks:        2,
		CreatorShareBP:      6000, // 60% creator, 40% worker pool
		PopularityThreshold: 0.01,
		PopularityReward:    100,
	}
}

// QueenBee is the contract state. All mutation happens inside Execute
// (under the chain's sealer); reads from the engine take the read lock.
type QueenBee struct {
	mu  sync.RWMutex
	cfg Config

	pages      map[string]*PageRecord
	workers    map[chain.Address]*Worker
	workerList []chain.Address // registration order, for deterministic quorums
	tasks      map[string]*Task
	taskOrder  []string
	ads        map[uint64]*Ad
	nextAdID   uint64

	rankEpochs map[uint64]*RankEpoch
	pageRanks  map[string]float64 // latest finalized ranks
	rankEpoch  uint64             // latest finalized epoch
	rankGen    uint64             // bumped on every pageRanks mutation (RankGen)
	dirtyPages map[string]bool    // pages touched since the last epoch snapshot
	fullEpoch  uint64             // latest finalized full (non-delta) epoch

	paidPopularity map[string]bool // "epoch:url" → paid

	// dust is click revenue that could not be split evenly and remains in
	// escrow; tracked so the escrow invariant is exact.
	dust uint64
}

// New creates the contract.
func New(cfg Config) *QueenBee {
	if cfg.Quorum <= 0 {
		cfg.Quorum = 3
	}
	if cfg.CreatorShareBP > 10000 {
		cfg.CreatorShareBP = 10000
	}
	return &QueenBee{
		cfg:            cfg,
		pages:          make(map[string]*PageRecord),
		workers:        make(map[chain.Address]*Worker),
		tasks:          make(map[string]*Task),
		ads:            make(map[uint64]*Ad),
		rankEpochs:     make(map[uint64]*RankEpoch),
		pageRanks:      make(map[string]float64),
		dirtyPages:     make(map[string]bool),
		paidPopularity: make(map[string]bool),
	}
}

// Name implements chain.Contract.
func (q *QueenBee) Name() string { return ContractName }

// Config returns the contract's economic parameters.
func (q *QueenBee) Config() Config { return q.cfg }

// Execute implements chain.Contract.
func (q *QueenBee) Execute(ctx *chain.TxContext, method string, params []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	switch method {
	case MethodPublish:
		return q.execPublish(ctx, params)
	case MethodPublishBatch:
		return q.execPublishBatch(ctx, params)
	case MethodRegisterWorker:
		return q.execRegisterWorker(ctx, params)
	case MethodDeregisterWorker:
		return q.execDeregisterWorker(ctx, params)
	case MethodCommit:
		return q.execCommit(ctx, params)
	case MethodReveal:
		return q.execReveal(ctx, params)
	case MethodFinalize:
		return q.execFinalize(ctx, params)
	case MethodCreateRankEpoch:
		return q.execCreateRankEpoch(ctx, params)
	case MethodPayPopularity:
		return q.execPayPopularity(ctx, params)
	case MethodRegisterAd:
		return q.execRegisterAd(ctx, params)
	case MethodTopUpAd:
		return q.execTopUpAd(ctx, params)
	case MethodClick:
		return q.execClick(ctx, params)
	case MethodImpression:
		return q.execImpression(ctx, params)
	default:
		return fmt.Errorf("queenbee: unknown method %q", method)
	}
}

// EscrowBreakdown reports how the contract's escrow decomposes; the sum
// must equal the on-chain escrow balance (invariant-tested).
type EscrowBreakdown struct {
	Stakes    uint64
	AdBudgets uint64
	Dust      uint64
}

// Escrow returns the current breakdown of escrowed honey.
func (q *QueenBee) Escrow() EscrowBreakdown {
	q.mu.RLock()
	defer q.mu.RUnlock()
	var b EscrowBreakdown
	for _, w := range q.workers {
		b.Stakes += w.Stake
	}
	for _, ad := range q.ads {
		b.AdBudgets += ad.Budget
	}
	b.Dust = q.dust
	return b
}
