package contracts

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/chain"
	"repro/internal/xrand"
)

// TaskKind distinguishes index-update tasks from page-rank tasks.
type TaskKind string

// Task kinds.
const (
	TaskIndex TaskKind = "index"
	TaskRank  TaskKind = "rank"
)

// TaskStatus is a task's lifecycle phase.
type TaskStatus string

// Task statuses.
const (
	StatusOpen      TaskStatus = "open"      // accepting commits/reveals
	StatusFinalized TaskStatus = "finalized" // majority reached
	StatusFailed    TaskStatus = "failed"    // no majority
)

// Event types emitted by the contract.
const (
	EventPublished          = "published"
	EventTaskCreated        = "task-created"
	EventTaskFinalized      = "task-finalized"
	EventTaskFailed         = "task-failed"
	EventSlashed            = "slashed"
	EventWorkerRegistered   = "worker-registered"
	EventWorkerDeregistered = "worker-deregistered"
	EventRankEpochCreated   = "rank-epoch-created"
	EventRankEpochFinalized = "rank-epoch-finalized"
	EventPopularityPaid     = "popularity-paid"
	EventAdRegistered       = "ad-registered"
	EventAdClick            = "ad-click"
	EventAdExhausted        = "ad-exhausted"
)

// Reveal is one worker's opened vote on a task result.
type Reveal struct {
	Digest string // hex SHA-256 of the result bytes
	Result []byte // carried on-chain only for rank tasks
}

// Task is one unit of verifiable work assigned to a quorum of bees.
type Task struct {
	ID        string
	Kind      TaskKind
	CreatedAt uint64
	Assignees []chain.Address
	Meta      map[string]string

	Commitments map[chain.Address]string // hex H(digest || salt)
	Reveals     map[chain.Address]Reveal

	Status        TaskStatus
	WinningDigest string
	WinningResult []byte

	CommitDeadline uint64
	RevealDeadline uint64
}

// Commitment computes the commit-phase hash binding a worker to a result
// digest without disclosing it: H(digestHex || salt).
func Commitment(digestHex string, salt []byte) string {
	h := sha256.New()
	h.Write([]byte(digestHex))
	h.Write(salt)
	return hex.EncodeToString(h.Sum(nil))
}

// ResultDigest hashes result bytes into the vote digest.
func ResultDigest(result []byte) string {
	sum := sha256.Sum256(result)
	return hex.EncodeToString(sum[:])
}

// createTaskLocked assigns a pseudo-random quorum, seeded by the task ID
// and creation height so the assignment is deterministic and cannot be
// predicted before the triggering transaction is sealed.
func (q *QueenBee) createTaskLocked(ctx *chain.TxContext, id string, kind TaskKind, meta map[string]string) {
	active := q.activeWorkersLocked()
	quorum := q.cfg.Quorum
	if quorum > len(active) {
		quorum = len(active)
	}
	var assignees []chain.Address
	if quorum > 0 {
		seedBytes := sha256.Sum256([]byte(fmt.Sprintf("%s@%d", id, ctx.Height)))
		rng := xrand.New(binary.BigEndian.Uint64(seedBytes[:8]))
		if q.cfg.StakeWeightedQuorum {
			assignees = sampleByStake(rng, active, q.workers, quorum)
		} else {
			for _, idx := range rng.Sample(len(active), quorum) {
				assignees = append(assignees, active[idx])
			}
		}
		sort.Slice(assignees, func(i, j int) bool {
			return assignees[i].String() < assignees[j].String()
		})
	}
	t := &Task{
		ID:             id,
		Kind:           kind,
		CreatedAt:      ctx.Height,
		Assignees:      assignees,
		Meta:           meta,
		Commitments:    make(map[chain.Address]string),
		Reveals:        make(map[chain.Address]Reveal),
		Status:         StatusOpen,
		CommitDeadline: ctx.Height + q.cfg.CommitBlocks,
		RevealDeadline: ctx.Height + q.cfg.CommitBlocks + q.cfg.RevealBlocks,
	}
	q.tasks[id] = t
	q.taskOrder = append(q.taskOrder, id)
	ctx.Emit(EventTaskCreated, map[string]string{
		"task":      id,
		"kind":      string(kind),
		"assignees": joinAddrs(assignees),
	})
}

// sampleByStake draws quorum distinct workers with probability
// proportional to stake (successive weighted draws without replacement).
func sampleByStake(rng *xrand.RNG, active []chain.Address, workers map[chain.Address]*Worker, quorum int) []chain.Address {
	remaining := append([]chain.Address(nil), active...)
	weights := make([]float64, len(remaining))
	var out []chain.Address
	for len(out) < quorum && len(remaining) > 0 {
		total := 0.0
		for i, a := range remaining {
			weights[i] = float64(workers[a].Stake)
			total += weights[i]
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(len(remaining))
		} else {
			pick = rng.Weighted(weights[:len(remaining)])
		}
		out = append(out, remaining[pick])
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return out
}

// CommitParams binds a worker to a hidden result digest.
type CommitParams struct {
	TaskID     string
	Commitment string // hex H(digest || salt)
}

func (q *QueenBee) execCommit(ctx *chain.TxContext, params []byte) error {
	var p CommitParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	t, ok := q.tasks[p.TaskID]
	if !ok {
		return fmt.Errorf("queenbee: unknown task %q", p.TaskID)
	}
	if t.Status != StatusOpen {
		return fmt.Errorf("queenbee: task %q is %s", p.TaskID, t.Status)
	}
	if !isAssignee(t, ctx.Sender) {
		return fmt.Errorf("queenbee: %s not assigned to %q", ctx.Sender.Short(), p.TaskID)
	}
	if _, dup := t.Commitments[ctx.Sender]; dup {
		return fmt.Errorf("queenbee: %s already committed to %q", ctx.Sender.Short(), p.TaskID)
	}
	if ctx.Height > t.CommitDeadline {
		return fmt.Errorf("queenbee: commit deadline passed for %q", p.TaskID)
	}
	t.Commitments[ctx.Sender] = p.Commitment
	return nil
}

// RevealParams opens a commitment.
type RevealParams struct {
	TaskID string
	Digest string // hex SHA-256 of result
	Salt   []byte
	Result []byte // required for rank tasks (result is used on-chain)
}

func (q *QueenBee) execReveal(ctx *chain.TxContext, params []byte) error {
	var p RevealParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	t, ok := q.tasks[p.TaskID]
	if !ok {
		return fmt.Errorf("queenbee: unknown task %q", p.TaskID)
	}
	if t.Status != StatusOpen {
		return fmt.Errorf("queenbee: task %q is %s", p.TaskID, t.Status)
	}
	if !isAssignee(t, ctx.Sender) {
		return fmt.Errorf("queenbee: %s not assigned to %q", ctx.Sender.Short(), p.TaskID)
	}
	com, committed := t.Commitments[ctx.Sender]
	if !committed {
		return fmt.Errorf("queenbee: %s reveals without commit on %q", ctx.Sender.Short(), p.TaskID)
	}
	if _, dup := t.Reveals[ctx.Sender]; dup {
		return fmt.Errorf("queenbee: %s already revealed on %q", ctx.Sender.Short(), p.TaskID)
	}
	if ctx.Height > t.RevealDeadline {
		return fmt.Errorf("queenbee: reveal deadline passed for %q", p.TaskID)
	}
	if Commitment(p.Digest, p.Salt) != com {
		return fmt.Errorf("queenbee: reveal does not match commitment on %q", p.TaskID)
	}
	if t.Kind == TaskRank {
		if len(p.Result) == 0 {
			return fmt.Errorf("queenbee: rank reveal on %q requires result bytes", p.TaskID)
		}
		if ResultDigest(p.Result) != p.Digest {
			return fmt.Errorf("queenbee: result bytes do not hash to digest on %q", p.TaskID)
		}
	}
	t.Reveals[ctx.Sender] = Reveal{Digest: p.Digest, Result: p.Result}

	// Auto-finalize once every assignee has revealed.
	if len(t.Reveals) == len(t.Assignees) && len(t.Assignees) > 0 {
		return q.finalizeTaskLocked(ctx, t)
	}
	return nil
}

// FinalizeParams closes a task after its reveal deadline.
type FinalizeParams struct {
	TaskID string
}

func (q *QueenBee) execFinalize(ctx *chain.TxContext, params []byte) error {
	var p FinalizeParams
	if err := chain.DecodeParams(params, &p); err != nil {
		return err
	}
	t, ok := q.tasks[p.TaskID]
	if !ok {
		return fmt.Errorf("queenbee: unknown task %q", p.TaskID)
	}
	if t.Status != StatusOpen {
		return fmt.Errorf("queenbee: task %q is %s", p.TaskID, t.Status)
	}
	if ctx.Height <= t.RevealDeadline {
		return fmt.Errorf("queenbee: task %q reveal window still open", p.TaskID)
	}
	return q.finalizeTaskLocked(ctx, t)
}

// finalizeTaskLocked applies majority voting: the digest revealed by a
// strict majority of the quorum wins; winners earn minted task rewards,
// workers that revealed a different digest or did not reveal are slashed.
// Without a strict majority the task fails (nobody is paid; non-revealers
// are still slashed for liveness).
func (q *QueenBee) finalizeTaskLocked(ctx *chain.TxContext, t *Task) error {
	votes := make(map[string][]chain.Address)
	for _, a := range t.Assignees {
		if r, ok := t.Reveals[a]; ok {
			votes[r.Digest] = append(votes[r.Digest], a)
		}
	}
	// A strict majority is unique, but scan digests in sorted order
	// anyway so the loop is order-independent by construction.
	digests := make([]string, 0, len(votes))
	for digest := range votes {
		digests = append(digests, digest)
	}
	sort.Strings(digests)
	var winning string
	for _, digest := range digests {
		if len(votes[digest])*2 > len(t.Assignees) {
			winning = digest
			break
		}
	}

	if winning == "" {
		t.Status = StatusFailed
		for _, a := range t.Assignees {
			if _, ok := t.Reveals[a]; !ok {
				q.slashLocked(ctx, a, t.ID)
			}
		}
		ctx.Emit(EventTaskFailed, map[string]string{"task": t.ID})
		return nil
	}

	t.Status = StatusFinalized
	t.WinningDigest = winning
	for _, a := range votes[winning] {
		if w := q.workers[a]; w != nil {
			w.Completed++
		}
		if err := ctx.Mint(a, q.cfg.TaskReward); err != nil {
			return err
		}
	}
	for _, a := range t.Assignees {
		r, revealed := t.Reveals[a]
		if !revealed || r.Digest != winning {
			q.slashLocked(ctx, a, t.ID)
		}
	}
	if t.Kind == TaskRank {
		for _, a := range votes[winning] {
			t.WinningResult = t.Reveals[a].Result
			break
		}
		q.onRankTaskFinalizedLocked(ctx, t)
	}
	ctx.Emit(EventTaskFinalized, map[string]string{
		"task":   t.ID,
		"kind":   string(t.Kind),
		"digest": winning,
	})
	return nil
}

func isAssignee(t *Task, a chain.Address) bool {
	for _, x := range t.Assignees {
		if x == a {
			return true
		}
	}
	return false
}

// TaskInfo returns a copy of a task (engine read path).
func (q *QueenBee) TaskInfo(id string) (Task, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	t, ok := q.tasks[id]
	if !ok {
		return Task{}, false
	}
	return copyTask(t), true
}

// OpenTasksFor returns the open tasks assigned to a worker, in creation
// order.
func (q *QueenBee) OpenTasksFor(a chain.Address) []Task {
	q.mu.RLock()
	defer q.mu.RUnlock()
	var out []Task
	for _, id := range q.taskOrder {
		t := q.tasks[id]
		if t.Status == StatusOpen && isAssignee(t, a) {
			out = append(out, copyTask(t))
		}
	}
	return out
}

// OpenTasksPastDeadline returns IDs of open tasks whose reveal window has
// closed at the given height — candidates for anyone-may-finalize.
func (q *QueenBee) OpenTasksPastDeadline(height uint64) []string {
	q.mu.RLock()
	defer q.mu.RUnlock()
	var out []string
	for _, id := range q.taskOrder {
		t := q.tasks[id]
		if t.Status == StatusOpen && height > t.RevealDeadline {
			out = append(out, id)
		}
	}
	return out
}

// TaskCounts reports how many tasks are in each status.
func (q *QueenBee) TaskCounts() (open, finalized, failed int) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	for _, t := range q.tasks {
		switch t.Status {
		case StatusOpen:
			open++
		case StatusFinalized:
			finalized++
		case StatusFailed:
			failed++
		}
	}
	return
}

func copyTask(t *Task) Task {
	out := *t
	out.Assignees = append([]chain.Address(nil), t.Assignees...)
	out.Commitments = make(map[chain.Address]string, len(t.Commitments))
	for k, v := range t.Commitments {
		out.Commitments[k] = v
	}
	out.Reveals = make(map[chain.Address]Reveal, len(t.Reveals))
	for k, v := range t.Reveals {
		out.Reveals[k] = v
	}
	out.Meta = make(map[string]string, len(t.Meta))
	for k, v := range t.Meta {
		out.Meta[k] = v
	}
	return out
}
