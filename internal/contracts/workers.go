package contracts

import (
	"fmt"
	"sort"

	"repro/internal/chain"
)

// Worker is a registered worker bee.
type Worker struct {
	Addr      chain.Address
	Stake     uint64
	Completed int // winning reveals
	Slashes   int
	Active    bool
}

// execRegisterWorker stakes the attached honey and joins the pool.
func (q *QueenBee) execRegisterWorker(ctx *chain.TxContext, _ []byte) error {
	if ctx.Value < q.cfg.MinStake {
		return fmt.Errorf("queenbee: stake %d below minimum %d", ctx.Value, q.cfg.MinStake)
	}
	if w, ok := q.workers[ctx.Sender]; ok && w.Active {
		return fmt.Errorf("queenbee: worker %s already registered", ctx.Sender.Short())
	}
	w, ok := q.workers[ctx.Sender]
	if !ok {
		w = &Worker{Addr: ctx.Sender}
		q.workers[ctx.Sender] = w
		q.workerList = append(q.workerList, ctx.Sender)
	}
	w.Active = true
	w.Stake += ctx.Value
	ctx.Emit(EventWorkerRegistered, map[string]string{
		"worker": ctx.Sender.String(),
	})
	return nil
}

// execDeregisterWorker leaves the pool and refunds the remaining stake.
func (q *QueenBee) execDeregisterWorker(ctx *chain.TxContext, _ []byte) error {
	w, ok := q.workers[ctx.Sender]
	if !ok || !w.Active {
		return fmt.Errorf("queenbee: worker %s not registered", ctx.Sender.Short())
	}
	refund := w.Stake
	if err := ctx.PayFromEscrow(ctx.Sender, refund); err != nil {
		return err
	}
	w.Stake = 0
	w.Active = false
	ctx.Emit(EventWorkerDeregistered, map[string]string{
		"worker": ctx.Sender.String(),
	})
	return nil
}

// WorkerInfo returns a copy of a worker record.
func (q *QueenBee) WorkerInfo(a chain.Address) (Worker, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	w, ok := q.workers[a]
	if !ok {
		return Worker{}, false
	}
	return *w, true
}

// ActiveWorkers returns the addresses of active workers in registration
// order.
func (q *QueenBee) ActiveWorkers() []chain.Address {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.activeWorkersLocked()
}

func (q *QueenBee) activeWorkersLocked() []chain.Address {
	var out []chain.Address
	for _, a := range q.workerList {
		if w := q.workers[a]; w != nil && w.Active {
			out = append(out, a)
		}
	}
	return out
}

// slashLocked burns up to SlashAmount of a worker's stake. Burning (rather
// than redistributing) keeps the colluders from profiting via their own
// slashes. If the stake is exhausted the worker is deactivated.
func (q *QueenBee) slashLocked(ctx *chain.TxContext, addr chain.Address, taskID string) {
	w := q.workers[addr]
	if w == nil || w.Stake == 0 {
		return
	}
	amt := q.cfg.SlashAmount
	if amt > w.Stake {
		amt = w.Stake
	}
	if err := ctx.BurnFromEscrow(amt); err != nil {
		return // escrow accounting bug; leave stake untouched
	}
	w.Stake -= amt
	w.Slashes++
	if w.Stake < q.cfg.MinStake {
		w.Active = false
	}
	ctx.Emit(EventSlashed, map[string]string{
		"worker": addr.String(),
		"amount": fmt.Sprint(amt),
		"task":   taskID,
	})
}

// WorkerEarnings summarises the pool for the incentive experiments.
type WorkerEarnings struct {
	Addr      chain.Address
	Stake     uint64
	Completed int
	Slashes   int
}

// AllWorkers returns a summary of every worker ever registered, sorted by
// address for determinism.
func (q *QueenBee) AllWorkers() []WorkerEarnings {
	q.mu.RLock()
	defer q.mu.RUnlock()
	out := make([]WorkerEarnings, 0, len(q.workers))
	for _, w := range q.workers {
		out = append(out, WorkerEarnings{
			Addr: w.Addr, Stake: w.Stake, Completed: w.Completed, Slashes: w.Slashes,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Addr.String() < out[j].Addr.String()
	})
	return out
}
