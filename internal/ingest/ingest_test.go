package ingest

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// fakeSink records batches and returns synthetic receipts with fixed
// phase costs, so pipeline tests never boot a cluster.
type fakeSink struct {
	commit, reveal time.Duration
	batches        [][]core.BatchPage
	failOn         int // fail the Nth call (1-based); 0 = never
	onBatch        func(n int)
}

func (s *fakeSink) IndexBatch(pages []core.BatchPage) (core.RoundReceipt, error) {
	cp := append([]core.BatchPage(nil), pages...)
	s.batches = append(s.batches, cp)
	if s.onBatch != nil {
		s.onBatch(len(s.batches))
	}
	if s.failOn > 0 && len(s.batches) == s.failOn {
		return core.RoundReceipt{}, errors.New("sink exploded")
	}
	return core.RoundReceipt{
		Materialized:    1,
		CommitWave:      netsim.Cost{Latency: s.commit},
		MaterializeWave: netsim.Cost{Latency: s.reveal},
	}, nil
}

func (s *fakeSink) published() []string {
	var out []string
	for _, b := range s.batches {
		for _, p := range b {
			out = append(out, p.URL)
		}
	}
	return out
}

// chainPages builds a linked list of n distinct pages: page i links to
// page i+1; the last page links to a dangling URL.
func chainPages(n int) []Page {
	pages := make([]Page, n)
	for i := range pages {
		pages[i] = Page{
			URL:  fmt.Sprintf("dweb://t/p%03d", i),
			Text: testText(i, 60),
		}
		if i+1 < n {
			pages[i].Links = []string{fmt.Sprintf("dweb://t/p%03d", i+1)}
		} else {
			pages[i].Links = []string{"dweb://t/missing"}
		}
	}
	return pages
}

// testText builds distinct word-soup per id so no two pages are
// near-duplicates.
func testText(id, words int) string {
	var b strings.Builder
	for w := 0; w < words; w++ {
		fmt.Fprintf(&b, "toka%d tokb%d ", (id*97+w*7)%61, (id*53+w*13)%43)
	}
	return b.String()
}

func TestIngestFrontierDiscovery(t *testing.T) {
	pages := chainPages(10)
	sink := &fakeSink{commit: time.Millisecond, reveal: time.Millisecond}
	st, err := Crawl(context.Background(), MapSource(pages), sink,
		[]string{pages[0].URL}, Options{Seed: 1, BatchSize: 4, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The whole chain is reachable from the single seed, in link order.
	want := make([]string, len(pages))
	for i := range pages {
		want[i] = pages[i].URL
	}
	if got := sink.published(); !reflect.DeepEqual(got, want) {
		t.Fatalf("published %v, want %v", got, want)
	}
	if st.Fetched != 10 || st.Published != 10 || st.Batches != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.Dangling != 1 {
		t.Fatalf("dangling = %d, want 1 (the missing link)", st.Dangling)
	}
	if st.Makespan <= 0 || st.PagesPerSec() <= 0 {
		t.Fatalf("no makespan accounted: %+v", st)
	}
}

func TestIngestScraperMirrorDemoted(t *testing.T) {
	// The paper's scraper attack: a mirror site republishes page 3's
	// content with a few spliced words, hoping to siphon its traffic.
	pages := chainPages(6)
	mirror := Page{
		URL:  "dweb://scraper/copy",
		Text: pages[3].Text + " sponsored mirror links here",
	}
	pages[5].Links = []string{mirror.URL}
	all := append(append([]Page(nil), pages...), mirror)
	sink := &fakeSink{}
	st, err := Crawl(context.Background(), MapSource(all), sink,
		[]string{pages[0].URL}, Options{Seed: 1, BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deduped != 1 {
		t.Fatalf("Deduped = %d, want 1; stats %+v", st.Deduped, st)
	}
	for _, url := range sink.published() {
		if url == mirror.URL {
			t.Fatal("demoted mirror was published")
		}
	}
	if st.Published != 6 || st.Fetched != 7 {
		t.Fatalf("stats %+v", st)
	}

	// With demotion disabled the mirror publishes like any page.
	sink2 := &fakeSink{}
	st2, err := Crawl(context.Background(), MapSource(all), sink2,
		[]string{pages[0].URL}, Options{Seed: 1, BatchSize: 3, DedupThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Deduped != 0 || st2.Published != 7 {
		t.Fatalf("dedup off: %+v", st2)
	}
}

func TestIngestBackpressureAccounting(t *testing.T) {
	// Expensive rounds + tiny queue: fetchers must stall, the queue
	// must saturate, and pipelined rounds must beat serial ones.
	pages := chainPages(32)
	seeds := make([]string, len(pages))
	for i := range pages {
		seeds[i] = pages[i].URL
	}
	opts := Options{
		Seed: 3, BatchSize: 8, QueueDepth: 4, FetchWorkers: 8,
		MeanFetchLatency: time.Millisecond,
	}
	run := func(serial bool) Stats {
		sink := &fakeSink{commit: 40 * time.Millisecond, reveal: 40 * time.Millisecond}
		o := opts
		o.Serial = serial
		st, err := Crawl(context.Background(), MapSource(pages), sink, seeds, o)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	pip := run(false)
	ser := run(true)

	if pip.QueueDepthMax != opts.QueueDepth {
		t.Fatalf("queue never saturated: depth max %d, want %d", pip.QueueDepthMax, opts.QueueDepth)
	}
	if pip.StallWait <= 0 {
		t.Fatalf("no producer stall accounted under a full queue: %+v", pip)
	}
	if pip.Makespan >= ser.Makespan {
		t.Fatalf("pipelined makespan %v not better than serial %v", pip.Makespan, ser.Makespan)
	}
	if pip.SerialMakespan != ser.Makespan {
		t.Fatalf("pipelined run predicts serial makespan %v, serial run measured %v",
			pip.SerialMakespan, ser.Makespan)
	}
	if sp := pip.Speedup(); sp <= 1 {
		t.Fatalf("speedup = %v, want > 1", sp)
	}
	if ser.Speedup() != 1 {
		t.Fatalf("serial speedup = %v, want 1", ser.Speedup())
	}
	// Chain effects are identical either way: same pages, same batches.
	if pip.Published != ser.Published || pip.Batches != ser.Batches {
		t.Fatalf("round model changed what was published: %+v vs %+v", pip, ser)
	}
}

func TestIngestDeterministicRuns(t *testing.T) {
	pages := chainPages(24)
	seeds := []string{pages[0].URL}
	opts := Options{Seed: 9, BatchSize: 5, QueueDepth: 4, FetchWorkers: 6, FetchFailRate: 0.25}
	var prev Stats
	var prevPub []string
	for i := 0; i < 3; i++ {
		sink := &fakeSink{commit: 2 * time.Millisecond, reveal: 3 * time.Millisecond}
		st, err := Crawl(context.Background(), MapSource(pages), sink, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if st.FetchFailed == 0 {
			t.Fatalf("fail rate drew no failures: %+v", st)
		}
		if i > 0 {
			if st != prev {
				t.Fatalf("run %d stats diverged:\n%+v\n%+v", i, st, prev)
			}
			if !reflect.DeepEqual(sink.published(), prevPub) {
				t.Fatalf("run %d published set diverged", i)
			}
		}
		prev, prevPub = st, sink.published()
	}
	// A failed fetch breaks the chain walk there: everything after the
	// first failure is undiscovered, so fetched+failed < total.
	if prev.Fetched+prev.FetchFailed > len(pages) {
		t.Fatalf("accounted more pages than exist: %+v", prev)
	}
}

func TestIngestMaxPages(t *testing.T) {
	pages := chainPages(30)
	sink := &fakeSink{}
	st, err := Crawl(context.Background(), MapSource(pages), sink,
		[]string{pages[0].URL}, Options{Seed: 1, BatchSize: 4, MaxPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Fetched != 10 || st.Published != 10 {
		t.Fatalf("MaxPages not honored: %+v", st)
	}
}

func TestIngestSinkError(t *testing.T) {
	pages := chainPages(40)
	seeds := make([]string, len(pages))
	for i := range pages {
		seeds[i] = pages[i].URL
	}
	sink := &fakeSink{failOn: 2}
	st, err := Crawl(context.Background(), MapSource(pages), sink, seeds,
		Options{Seed: 1, BatchSize: 8, QueueDepth: 4})
	if err == nil || !strings.Contains(err.Error(), "sink exploded") {
		t.Fatalf("err = %v, want sink failure", err)
	}
	if st.Published != 8 || st.Batches != 1 {
		t.Fatalf("partial stats %+v, want exactly the first batch", st)
	}
}

func TestIngestCancellation(t *testing.T) {
	pages := chainPages(64)
	seeds := make([]string, len(pages))
	for i := range pages {
		seeds[i] = pages[i].URL
	}
	ctx, cancel := context.WithCancel(context.Background())
	sink := &fakeSink{onBatch: func(n int) {
		if n == 2 {
			cancel()
		}
	}}
	st, err := Crawl(ctx, MapSource(pages), sink, seeds,
		Options{Seed: 1, BatchSize: 8, QueueDepth: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Published == 0 || st.Published >= len(pages) {
		t.Fatalf("want a partial crawl, got %+v", st)
	}
}

func TestIngestEmptyAndAllDangling(t *testing.T) {
	sink := &fakeSink{}
	st, err := Crawl(context.Background(), MapSource(nil), sink,
		[]string{"dweb://nowhere/a", "dweb://nowhere/b"}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Dangling != 2 || st.Published != 0 || len(sink.batches) != 0 {
		t.Fatalf("stats %+v, batches %d", st, len(sink.batches))
	}
	if _, err := Crawl(context.Background(), MapSource(nil), sink, nil, Options{Seed: 1}); err != nil {
		t.Fatalf("empty seeds: %v", err)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Fetched: 3, Published: 2, QueueDepthMax: 4, Makespan: time.Second, SerialMakespan: 2 * time.Second}
	b := Stats{Fetched: 1, Deduped: 1, QueueDepthMax: 2, Makespan: time.Second, SerialMakespan: time.Second}
	a.Merge(b)
	if a.Fetched != 4 || a.Deduped != 1 || a.QueueDepthMax != 4 || a.Makespan != 2*time.Second {
		t.Fatalf("merged %+v", a)
	}
	if a.Speedup() != 1.5 {
		t.Fatalf("speedup %v", a.Speedup())
	}
}
