package ingest

import (
	"repro/internal/core"
	"repro/internal/corpus"
)

// Page is one crawlable document (alias of the batch-publish page so
// sources plug straight into the publish path).
type Page = core.BatchPage

// Source resolves a URL discovered by the crawler to its content and
// outgoing links. Resolve returns false for a dangling URL (a link that
// points outside the crawlable set). Implementations must be pure:
// resolving the same URL twice returns the same page — the pipeline's
// determinism guarantee is built on it.
type Source interface {
	Resolve(url string) (Page, bool)
}

// mapSource serves a fixed page set.
type mapSource map[string]Page

// MapSource builds a Source over an explicit page set. Later duplicates
// of a URL are ignored, keeping Resolve pure.
func MapSource(pages []Page) Source {
	m := make(mapSource, len(pages))
	for _, p := range pages {
		if _, ok := m[p.URL]; !ok {
			m[p.URL] = p
		}
	}
	return m
}

func (m mapSource) Resolve(url string) (Page, bool) {
	p, ok := m[url]
	return p, ok
}

// CorpusSource exposes a generated corpus as a crawlable web: every
// document resolves under its canonical URL with its link-graph edges.
func CorpusSource(c *corpus.Corpus) Source {
	pages := make([]Page, 0, len(c.Docs))
	for _, d := range c.Docs {
		pages = append(pages, Page{URL: d.URL, Text: d.Text, Links: d.Links})
	}
	return MapSource(pages)
}
