package ingest

import (
	"repro/internal/chain"
	"repro/internal/core"
)

// Sink indexes one batch of pages and reports the round it drove. The
// pipeline calls it from exactly one goroutine, strictly in batch
// order — a sink never needs to be concurrency-safe, and a cluster-
// backed sink sees the identical call sequence a sequential
// PublishBatch loop would issue (the byte-identical-state contract in
// docs/ingest.md rests on this).
type Sink interface {
	IndexBatch(pages []core.BatchPage) (core.RoundReceipt, error)
}

// RankDriver is the optional sink extension Options.RankEvery uses: a
// sink implementing it can run one page-rank epoch between batches.
// Called from the same single goroutine as IndexBatch, strictly between
// batch flushes.
type RankDriver interface {
	RankEpoch(partitions int)
}

// clusterSink drives real cluster rounds.
type clusterSink struct {
	c     *core.Cluster
	owner *chain.Account
}

// NewClusterSink returns a Sink that publishes each batch through
// Cluster.IndexBatch on behalf of owner.
func NewClusterSink(c *core.Cluster, owner *chain.Account) Sink {
	return clusterSink{c: c, owner: owner}
}

func (s clusterSink) IndexBatch(pages []core.BatchPage) (core.RoundReceipt, error) {
	return s.c.IndexBatch(s.owner, pages)
}

// RankEpoch implements RankDriver: one delta-scheduled rank epoch,
// driven to finalization before the next batch flushes (delta epochs
// warm-start from the previous finalized vector, so they must not
// overlap).
func (s clusterSink) RankEpoch(partitions int) {
	s.c.StartRankEpochDelta(partitions)
	s.c.RunUntilIdle(50)
}
