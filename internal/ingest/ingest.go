// Package ingest is the streaming crawl/ingest pipeline: a simulated
// fetcher pool feeding a frontier walk over the corpus link graph, an
// extractor (analysis + MinHash signature), a bounded queue with real
// backpressure, near-duplicate demotion against already-accepted pages,
// and a batch publisher driving pipelined commit/reveal rounds.
//
// Execution is really concurrent (fetch workers are goroutines, the
// queue is a bounded channel), yet the pipeline is deterministic: the
// sequencer releases pages in frontier order, every sink call happens
// in batch order from one goroutine, and all timing lives in simulated
// virtual time derived from the seed — so a pipelined crawl leaves the
// cluster byte-identical to a sequential PublishBatch loop over the
// same pages. docs/ingest.md has the full design and the determinism
// rules.
package ingest

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/xrand"
)

// Defaults for Options zero values.
const (
	DefaultFetchWorkers   = 4
	DefaultQueueDepth     = 8
	DefaultBatchSize      = 16
	DefaultDedupThreshold = 0.85
	DefaultFetchLatency   = 20 * time.Millisecond
)

// Simulated compute rates of the fetch/extract stage.
const (
	fetchPerByte    = 200 * time.Nanosecond // wire transfer after first byte
	extractPerToken = 2 * time.Microsecond  // analysis + signature
)

// Options tunes a crawl. The zero value gives a sensible default
// pipeline; Seed must be set explicitly for reproducible runs.
type Options struct {
	// Seed drives every simulated draw (per-URL fetch latency and
	// failure). Same seed + same source + same seeds ⇒ same crawl.
	Seed uint64
	// FetchWorkers is the fetcher parallelism — both the real goroutine
	// count and the virtual workers of the simulated fetch schedule.
	FetchWorkers int
	// QueueDepth bounds the fetcher→indexer queue. Producers block
	// (really, and in simulated time) when the indexer falls behind.
	QueueDepth int
	// BatchSize is pages per publish round.
	BatchSize int
	// MaxPages caps the frontier (seeds + discovered links); 0 = no cap.
	MaxPages int
	// Serial disables commit/reveal pipelining in the round model: the
	// indexer waits out each round's reveal before collecting the next
	// batch. Chain state is identical either way; only simulated
	// makespan and queue accounting change.
	Serial bool
	// DedupThreshold is the MinHash similarity at which a page is
	// demoted as a near-duplicate of an already-accepted page
	// (the paper's scraper-mirror defense). 0 selects
	// DefaultDedupThreshold; negative disables demotion.
	DedupThreshold float64
	// FetchFailRate is the per-URL simulated fetch failure probability.
	FetchFailRate float64
	// MeanFetchLatency is the mean simulated first-byte latency; actual
	// per-URL latency is uniform in [0.5, 1.5)× the mean.
	MeanFetchLatency time.Duration
	// RankEvery drives one page-rank epoch through the sink after every
	// RankEvery flushed batches (0 = never). The sink decides full vs
	// delta (a cluster sink uses the delta scheduler with its configured
	// full-recompute cadence); a sink that implements no RankDriver
	// ignores the cadence. Epochs run between rounds on the indexer
	// goroutine, so the batch order the sink sees is unchanged.
	RankEvery int
	// RankPartitions is the partition count of each driven epoch
	// (0 selects one partition).
	RankPartitions int
}

func (o Options) withDefaults() Options {
	if o.FetchWorkers <= 0 {
		o.FetchWorkers = DefaultFetchWorkers
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.DedupThreshold == 0 {
		o.DedupThreshold = DefaultDedupThreshold
	}
	if o.MeanFetchLatency <= 0 {
		o.MeanFetchLatency = DefaultFetchLatency
	}
	return o
}

// Stats is the pipeline's counters and simulated-time accounting.
type Stats struct {
	Fetched     int // pages fetched and extracted
	FetchFailed int // simulated fetch failures
	Dangling    int // frontier URLs the source could not resolve
	Deduped     int // pages demoted as near-duplicates
	Published   int // pages indexed through the sink
	Batches     int // publish rounds driven
	RankEpochs  int // page-rank epochs driven mid-crawl (Options.RankEvery)
	RoundErrors int // per-bee errors across all round receipts

	QueueDepthMax int           // peak pages simultaneously queued
	QueueWait     time.Duration // Σ simulated time pages sat in the queue
	StallWait     time.Duration // Σ simulated time fetch results waited to enqueue (resequencing + backpressure)

	CommitBusy time.Duration // Σ commit-phase cost (store + commit wave)
	RevealBusy time.Duration // Σ reveal/materialize-phase cost

	// Makespan is the crawl's simulated wall time under the configured
	// round model; SerialMakespan is the same crawl costed with serial
	// (non-overlapping) rounds. Their ratio is the pipelining speedup.
	Makespan       time.Duration
	SerialMakespan time.Duration
}

// PagesPerSec is indexing throughput in simulated time.
func (s Stats) PagesPerSec() float64 {
	if s.Makespan <= 0 {
		return 0
	}
	return float64(s.Published) / s.Makespan.Seconds()
}

// Speedup is the simulated makespan ratio of serial over pipelined
// rounds for this crawl (1.0 when Serial was set; 0 with no makespan).
func (s Stats) Speedup() float64 {
	if s.Makespan <= 0 {
		return 0
	}
	return float64(s.SerialMakespan) / float64(s.Makespan)
}

// Merge accumulates another crawl's stats into s (counters and busy
// times sum, makespans sum as back-to-back crawls, peak depth is the
// max). Engine-level ingest counters aggregate with this.
func (s *Stats) Merge(o Stats) {
	s.Fetched += o.Fetched
	s.FetchFailed += o.FetchFailed
	s.Dangling += o.Dangling
	s.Deduped += o.Deduped
	s.Published += o.Published
	s.Batches += o.Batches
	s.RankEpochs += o.RankEpochs
	s.RoundErrors += o.RoundErrors
	if o.QueueDepthMax > s.QueueDepthMax {
		s.QueueDepthMax = o.QueueDepthMax
	}
	s.QueueWait += o.QueueWait
	s.StallWait += o.StallWait
	s.CommitBusy += o.CommitBusy
	s.RevealBusy += o.RevealBusy
	s.Makespan += o.Makespan
	s.SerialMakespan += o.SerialMakespan
}

// fetchResult is one worker's output for a claimed frontier URL.
type fetchResult struct {
	page     Page
	dangling bool
	failed   bool
	latency  time.Duration // simulated fetch + extract time
	sig      index.MinHashSig
}

// item is one accepted page released to the indexer.
type item struct {
	page Page
	done time.Duration // virtual fetch-completion time
}

// crawl is one pipeline run's shared state.
type crawl struct {
	opts Options
	src  Source
	sink Sink

	mu       sync.Mutex
	cond     *sync.Cond
	frontier []string        // claim queue, in discovery order
	disc     []time.Duration // virtual discovery time per frontier entry
	claimed  int             // next frontier index to claim
	visited  map[string]bool
	results  map[int]fetchResult // out-of-order worker results by frontier index
	nextSeq  int                 // next frontier index to release in order
	stopped  bool
	cause    error

	quit chan struct{} // closed by stop()
	ch   chan item     // the bounded queue
}

// Crawl runs the pipeline: walk the frontier from seeds over src's link
// graph, extract and dedup pages, and index them through sink in
// BatchSize batches. It returns when the frontier is exhausted, ctx is
// cancelled (returns ctx's error with partial stats), or the sink fails
// (returns its error with partial stats).
func Crawl(ctx context.Context, src Source, sink Sink, seeds []string, opts Options) (Stats, error) {
	opts = opts.withDefaults()
	c := &crawl{
		opts:    opts,
		src:     src,
		sink:    sink,
		visited: make(map[string]bool),
		results: make(map[int]fetchResult),
		quit:    make(chan struct{}),
		ch:      make(chan item, opts.QueueDepth),
	}
	c.cond = sync.NewCond(&c.mu)
	for _, s := range seeds {
		if c.visited[s] {
			continue
		}
		if opts.MaxPages > 0 && len(c.frontier) >= opts.MaxPages {
			break
		}
		c.visited[s] = true
		c.frontier = append(c.frontier, s)
		c.disc = append(c.disc, 0)
	}

	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			c.stop(ctx.Err())
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < opts.FetchWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.worker()
		}()
	}
	var seqStats Stats
	wg.Add(1)
	go func() {
		defer wg.Done()
		seqStats = c.sequence()
	}()

	stats, sinkErr := c.index()
	wg.Wait()
	stats.Merge(seqStats)
	if sinkErr != nil {
		return stats, sinkErr
	}
	return stats, c.stopCause()
}

// stop halts the pipeline once, recording the first cause.
func (c *crawl) stop(err error) {
	c.mu.Lock()
	if !c.stopped {
		c.stopped = true
		c.cause = err
		close(c.quit)
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

func (c *crawl) stopCause() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// worker claims frontier URLs and fetches/extracts them concurrently.
// Results park in c.results for the sequencer to release in order.
func (c *crawl) worker() {
	for {
		c.mu.Lock()
		// The frontier can still grow while unsequenced entries remain
		// (their pages may carry undiscovered links) — wait, don't exit.
		for !c.stopped && c.claimed >= len(c.frontier) && c.nextSeq < len(c.frontier) {
			c.cond.Wait()
		}
		if c.stopped || c.claimed >= len(c.frontier) {
			c.mu.Unlock()
			return
		}
		seq := c.claimed
		url := c.frontier[seq]
		c.claimed++
		c.mu.Unlock()

		r := c.fetch(url)

		c.mu.Lock()
		c.results[seq] = r
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// fetch simulates retrieving one URL and really extracts its content.
// All randomness is drawn from a per-URL named stream, so the result is
// a pure function of (seed, url) no matter which worker runs it.
func (c *crawl) fetch(url string) fetchResult {
	rng := xrand.NewNamed(c.opts.Seed, "ingest:fetch:"+url)
	r := fetchResult{
		latency: time.Duration((0.5 + rng.Float64()) * float64(c.opts.MeanFetchLatency)),
	}
	page, ok := c.src.Resolve(url)
	if !ok {
		r.dangling = true
		return r
	}
	if rng.Bool(c.opts.FetchFailRate) {
		r.failed = true
		return r
	}
	r.page = page
	toks := len(index.Analyze(page.Text))
	r.latency += time.Duration(len(page.Text))*fetchPerByte + time.Duration(toks)*extractPerToken
	r.sig = index.SignatureOf(page.Text)
	return r
}

// sequence releases fetch results strictly in frontier order: assigns
// each its virtual fetch-completion time on the simulated worker pool,
// applies near-duplicate demotion, discovers links (growing the
// frontier deterministically), and enqueues accepted pages on the
// bounded queue — blocking for real when the indexer falls behind.
func (c *crawl) sequence() Stats {
	defer close(c.ch)
	var st Stats
	free := make([]time.Duration, c.opts.FetchWorkers) // virtual worker pool
	var sigs *index.SigIndex
	if c.opts.DedupThreshold >= 0 {
		sigs = index.NewSigIndex(0)
	}
	for {
		c.mu.Lock()
		for {
			if c.stopped {
				c.mu.Unlock()
				return st
			}
			if c.nextSeq >= len(c.frontier) {
				c.mu.Unlock()
				return st // every discovered URL sequenced: crawl complete
			}
			if _, ok := c.results[c.nextSeq]; ok {
				break
			}
			c.cond.Wait()
		}
		seq := c.nextSeq
		r := c.results[seq]
		delete(c.results, seq)
		c.nextSeq++
		discovered := c.disc[seq]
		c.cond.Broadcast() // nextSeq moved: idle workers may now exit
		c.mu.Unlock()

		// Virtual fetch schedule: the least-loaded simulated worker
		// picks the URL up no earlier than its discovery time.
		w := 0
		for i, f := range free {
			if f < free[w] {
				w = i
			}
		}
		start := free[w]
		if discovered > start {
			start = discovered
		}
		done := start + r.latency
		free[w] = done

		if r.dangling {
			st.Dangling++
			continue
		}
		if r.failed {
			st.FetchFailed++
			continue
		}
		st.Fetched++
		demoted := false
		if sigs != nil {
			if key, sim := sigs.Nearest(r.sig); key != "" && sim >= c.opts.DedupThreshold {
				demoted = true
				st.Deduped++
			} else {
				sigs.Add(r.page.URL, r.sig)
			}
		}
		c.mu.Lock()
		for _, l := range r.page.Links {
			if c.visited[l] {
				continue
			}
			if c.opts.MaxPages > 0 && len(c.frontier) >= c.opts.MaxPages {
				break
			}
			c.visited[l] = true
			c.frontier = append(c.frontier, l)
			c.disc = append(c.disc, done)
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		if demoted {
			continue // links still crawl; only the content is demoted
		}
		select {
		case c.ch <- item{page: r.page, done: done}:
		case <-c.quit:
			return st
		}
	}
}

// batchCost is one driven round's phase costs.
type batchCost struct {
	size           int
	commit, reveal time.Duration
}

// index is the consumer: it drains the queue, flushes BatchSize batches
// through the sink strictly in order, and derives the crawl's virtual
// queue/round schedule. Runs on the caller's goroutine.
func (c *crawl) index() (Stats, error) {
	var st Stats
	var done []time.Duration // virtual fetch completion per published page
	var batches []batchCost
	var batch []core.BatchPage
	flush := func() error {
		rr, err := c.sink.IndexBatch(batch)
		if err != nil {
			return err
		}
		st.Published += len(batch)
		st.Batches++
		st.RoundErrors += len(rr.Errors)
		b := batchCost{
			size:   len(batch),
			commit: rr.StoreCost.Seq(rr.CommitWave).Latency,
			reveal: rr.MaterializeWave.Latency,
		}
		batches = append(batches, b)
		st.CommitBusy += b.commit
		st.RevealBusy += b.reveal
		batch = batch[:0]
		if c.opts.RankEvery > 0 && st.Batches%c.opts.RankEvery == 0 {
			if rd, ok := c.sink.(RankDriver); ok {
				parts := c.opts.RankPartitions
				if parts <= 0 {
					parts = 1
				}
				rd.RankEpoch(parts)
				st.RankEpochs++
			}
		}
		return nil
	}
	var sinkErr error
	for it := range c.ch {
		if sinkErr != nil {
			continue // drain so the sequencer never blocks forever
		}
		done = append(done, it.done)
		batch = append(batch, it.page)
		if len(batch) >= c.opts.BatchSize {
			if err := flush(); err != nil {
				sinkErr = err
				c.stop(err)
			}
		}
	}
	if sinkErr == nil && c.stopCause() == nil && len(batch) > 0 {
		if err := flush(); err != nil {
			sinkErr = err
			c.stop(err)
		}
	}
	done = done[:st.Published] // drop pages never flushed (cancel/error)

	sched := computeSchedule(done, batches, c.opts.QueueDepth, c.opts.Serial)
	st.QueueWait = sched.queueWait
	st.StallWait = sched.stallWait
	st.QueueDepthMax = sched.depthMax
	st.Makespan = sched.makespan
	if c.opts.Serial {
		st.SerialMakespan = sched.makespan
	} else {
		st.SerialMakespan = computeSchedule(done, batches, c.opts.QueueDepth, true).makespan
	}
	return st, sinkErr
}

// virtualSchedule is the derived simulated timeline of one crawl.
type virtualSchedule struct {
	makespan  time.Duration
	queueWait time.Duration
	stallWait time.Duration
	depthMax  int
}

// computeSchedule replays the queue and round phases in virtual time.
// Pages enqueue in release order into a QueueDepth-bounded queue; the
// indexer dequeues when free and launches a round per batch. Pipelined
// rounds free the indexer at commit end (batch N+1 overlaps round N's
// reveal); serial rounds hold it until reveal end. The recurrence:
//
//	enq[i]        = max(done[i], enq[i-1], deq[i-depth])
//	deq[i]        = max(enq[i], consumerFree)
//	commitStart_k = max(deq[last page of k], commitEnd_{k-1})
//	revealStart_k = max(commitEnd_k, revealEnd_{k-1})
//	consumerFree  = commitEnd_k (pipelined) | revealEnd_k (serial)
func computeSchedule(done []time.Duration, batches []batchCost, depth int, serial bool) virtualSchedule {
	var s virtualSchedule
	n := 0
	for _, b := range batches {
		n += b.size
	}
	if n == 0 {
		return s
	}
	enq := make([]time.Duration, n)
	deq := make([]time.Duration, n)
	var consumerFree, commitEnd, revealEnd, prevEnq time.Duration
	idx := 0
	for _, b := range batches {
		for j := 0; j < b.size; j++ {
			e := done[idx]
			if prevEnq > e {
				e = prevEnq
			}
			if idx >= depth && deq[idx-depth] > e {
				e = deq[idx-depth] // queue full: block until a slot frees
			}
			enq[idx] = e
			prevEnq = e
			s.stallWait += e - done[idx]
			d := e
			if consumerFree > d {
				d = consumerFree
			}
			deq[idx] = d
			s.queueWait += d - e
			idx++
		}
		commitStart := deq[idx-1]
		if commitEnd > commitStart {
			commitStart = commitEnd
		}
		commitEnd = commitStart + b.commit
		revealStart := commitEnd
		if revealEnd > revealStart {
			revealStart = revealEnd
		}
		revealEnd = revealStart + b.reveal
		if serial {
			consumerFree = revealEnd
		} else {
			consumerFree = commitEnd
		}
	}
	s.makespan = revealEnd
	// Peak queue depth: enq and deq are monotone, so sweep two pointers.
	dq := 0
	for i := range enq {
		for dq < i && deq[dq] <= enq[i] {
			dq++
		}
		if d := i - dq + 1; d > s.depthMax {
			s.depthMax = d
		}
	}
	return s
}
