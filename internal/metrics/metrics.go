// Package metrics provides the measurement primitives used by the
// experiment harness: duration/value histograms with percentile queries,
// counters, Gini coefficients for the incentive-fairness experiments, and
// plain-text table/series rendering that cmd/experiments prints.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram accumulates float64 samples and answers percentile queries.
// The zero value is ready to use.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// AddDuration records a duration sample in seconds.
func (h *Histogram) AddDuration(d time.Duration) { h.Add(d.Seconds()) }

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank
// interpolation, or 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	pos := q * float64(len(h.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Median is Quantile(0.5).
func (h *Histogram) Median() float64 { return h.Quantile(0.5) }

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Gini computes the Gini coefficient of a set of non-negative values:
// 0 = perfectly equal, →1 = maximally concentrated. Used by the incentive
// fairness experiment (E10). Returns 0 for fewer than 2 values or a zero
// total.
func Gini(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, v := range sorted {
		if v < 0 {
			panic("metrics: Gini of negative value")
		}
		cum += v * float64(2*(i+1)-n-1)
		total += v
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the lengths differ, and returns 0 if either side has zero
// variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("metrics: Pearson length mismatch")
	}
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Spearman returns the Spearman rank correlation between xs and ys.
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}

// Table renders experiment results as aligned plain text, the format both
// cmd/experiments and EXPERIMENTS.md use.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; each cell is formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// String renders the table with a title line, a header row, a rule and the
// data rows, columns padded to equal width.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// Counter is a simple named event counter set.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: map[string]int64{}} }

// Inc adds delta to the named counter.
func (c *Counter) Inc(name string, delta int64) { c.counts[name] += delta }

// Get returns the value of the named counter (0 if never incremented).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
