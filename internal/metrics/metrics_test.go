package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Median() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram should return zeros")
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4} {
		h.Add(v)
	}
	if h.Mean() != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", h.Mean())
	}
	if h.Sum() != 10 {
		t.Fatalf("Sum = %v, want 10", h.Sum())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if got := h.Median(); math.Abs(got-50.5) > 0.01 {
		t.Fatalf("Median = %v, want 50.5", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("Q1 = %v, want 100", got)
	}
	if got := h.Quantile(0.99); got < 98 || got > 100 {
		t.Fatalf("Q99 = %v, want ~99", got)
	}
}

func TestHistogramAddAfterQuantile(t *testing.T) {
	var h Histogram
	h.Add(5)
	_ = h.Median()
	h.Add(1)
	if got := h.Min(); got != 1 {
		t.Fatalf("Min after re-add = %v, want 1", got)
	}
}

func TestHistogramAddDuration(t *testing.T) {
	var h Histogram
	h.AddDuration(1500 * time.Millisecond)
	if h.Mean() != 1.5 {
		t.Fatalf("Mean = %v, want 1.5", h.Mean())
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if got := h.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestGiniEqual(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Fatalf("Gini equal = %v, want 0", g)
	}
}

func TestGiniConcentrated(t *testing.T) {
	g := Gini([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Fatalf("Gini concentrated = %v, want high", g)
	}
}

func TestGiniDegenerate(t *testing.T) {
	if Gini(nil) != 0 || Gini([]float64{3}) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Fatal("degenerate Gini should be 0")
	}
}

func TestGiniInRangeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		g := Gini(vals)
		return g >= -1e-9 && g <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-9 {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Pearson with zero variance = %v, want 0", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 10, 100, 1000, 10000} // monotone but nonlinear
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.0)
	tb.AddRow("b", 250*time.Millisecond)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "250ms") {
		t.Fatalf("missing cells: %q", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", tb.Rows())
	}
	if tb.Cell(0, 0) != "alpha" {
		t.Fatalf("Cell(0,0) = %q", tb.Cell(0, 0))
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		1234:   "1234",
		0.5:    "0.50000",
		1.25:   "1.250",
		123.45: "123.5",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a", 2)
	c.Inc("a", 3)
	c.Inc("b", 1)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(float64(v))
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
