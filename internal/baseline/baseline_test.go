package baseline

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dht"
	"repro/internal/netsim"
	"repro/internal/vclock"
)

func newWorld(t *testing.T) (*netsim.Network, *vclock.Clock) {
	t.Helper()
	return netsim.New(netsim.DefaultConfig()), vclock.New(time.Time{})
}

func TestCentralCrawlAndSearch(t *testing.T) {
	net, clock := newWorld(t)
	net.Register("client", nil)
	src := NewMapSource()
	src.Set("http://a", "golden retrievers are friendly dogs")
	src.Set("http://b", "siamese cats are independent")
	e := NewCentralEngine(net, clock, "server", src, time.Minute)

	urls, _, err := e.Search("client", "friendly dogs", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 1 || urls[0] != "http://a" {
		t.Fatalf("urls = %v", urls)
	}
}

func TestCentralFreshnessBoundedByCrawl(t *testing.T) {
	net, clock := newWorld(t)
	net.Register("client", nil)
	src := NewMapSource()
	src.Set("http://a", "original text")
	e := NewCentralEngine(net, clock, "server", src, 10*time.Minute)

	// Update the page right after the first crawl.
	src.Set("http://a", "updated revolutionary text")
	urls, _, _ := e.Search("client", "revolutionary", 10)
	if len(urls) != 0 {
		t.Fatal("update visible before any crawl — impossible for a crawler")
	}
	// Not yet: 9 minutes in, still the old index.
	clock.Advance(9 * time.Minute)
	urls, _, _ = e.Search("client", "revolutionary", 10)
	if len(urls) != 0 {
		t.Fatal("update visible before crawl interval elapsed")
	}
	// After the crawl fires, the update is searchable.
	clock.Advance(2 * time.Minute)
	urls, _, _ = e.Search("client", "revolutionary", 10)
	if len(urls) != 1 {
		t.Fatalf("update not visible after crawl: %v", urls)
	}
	if e.Crawls() < 2 {
		t.Fatalf("crawls = %d, want >= 2", e.Crawls())
	}
}

func TestCentralSinglePointOfFailure(t *testing.T) {
	net, clock := newWorld(t)
	net.Register("client", nil)
	src := NewMapSource()
	src.Set("http://a", "some content")
	e := NewCentralEngine(net, clock, "server", src, time.Minute)

	net.SetDown("server", true)
	_, _, err := e.Search("client", "content", 10)
	if !errors.Is(err, netsim.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestCentralOverloadShedsQueries(t *testing.T) {
	net, clock := newWorld(t)
	net.Register("client", nil)
	src := NewMapSource()
	src.Set("http://a", "some content words")
	e := NewCentralEngine(net, clock, "server", src, time.Minute)

	net.SetCapacity("server", 100)
	net.SetOfferedLoad("server", 1000) // 10x overload
	fails := 0
	for i := 0; i < 200; i++ {
		if _, _, err := e.Search("client", "content", 10); err != nil {
			fails++
		}
	}
	if fails < 100 {
		t.Fatalf("only %d/200 failed under 10x overload", fails)
	}
}

func TestCentralStopCancelsCrawls(t *testing.T) {
	net, clock := newWorld(t)
	src := NewMapSource()
	e := NewCentralEngine(net, clock, "server", src, time.Minute)
	e.Stop()
	before := e.Crawls()
	clock.Advance(time.Hour)
	if e.Crawls() != before {
		t.Fatal("crawls continued after Stop")
	}
}

func buildP2PSwarm(t *testing.T, n int) []*dht.Node {
	t.Helper()
	net := netsim.New(netsim.DefaultConfig())
	nodes := make([]*dht.Node, n)
	for i := range nodes {
		nodes[i] = dht.NewNode(net, netsim.NodeID(fmt.Sprintf("p%02d", i)), dht.DefaultConfig())
	}
	for _, nd := range nodes[1:] {
		nd.Bootstrap([]dht.Contact{nodes[0].Self()})
	}
	for _, nd := range nodes {
		nd.Bootstrap([]dht.Contact{nodes[0].Self()})
	}
	return nodes
}

func TestUnverifiedPublishSearch(t *testing.T) {
	nodes := buildP2PSwarm(t, 16)
	u := NewUnverifiedP2P(8)
	if _, err := u.Publish(nodes[1], "dweb://a", "honey bees dance"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Publish(nodes[2], "dweb://b", "honey badgers dig"); err != nil {
		t.Fatal(err)
	}
	urls, _, err := u.Search(nodes[9], "honey bees")
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 1 || urls[0] != "dweb://a" {
		t.Fatalf("urls = %v", urls)
	}
	both, _, _ := u.Search(nodes[9], "honey")
	if len(both) != 2 {
		t.Fatalf("single-term search = %v", both)
	}
}

func TestUnverifiedSearchMissingTerm(t *testing.T) {
	nodes := buildP2PSwarm(t, 8)
	u := NewUnverifiedP2P(8)
	urls, _, err := u.Search(nodes[0], "neverindexed")
	if err != nil || urls != nil {
		t.Fatalf("urls=%v err=%v", urls, err)
	}
}

func TestUnverifiedIndexPoisoning(t *testing.T) {
	// The attack the paper says YaCy-style systems cannot stop: anyone
	// injects spam under a popular term.
	nodes := buildP2PSwarm(t, 16)
	u := NewUnverifiedP2P(8)
	u.Publish(nodes[1], "dweb://legit", "reliable information source")
	if _, err := u.Poison(nodes[13], "reliable", "dweb://spam"); err != nil {
		t.Fatal(err)
	}
	urls, _, _ := u.Search(nodes[5], "reliable")
	found := false
	for _, url := range urls {
		if url == "dweb://spam" {
			found = true
		}
	}
	if !found {
		t.Fatalf("poisoning failed, urls = %v — baseline should be vulnerable", urls)
	}
}

func TestMapSource(t *testing.T) {
	m := NewMapSource()
	m.Set("u1", "t1")
	m.Set("u2", "t2")
	m.Set("u1", "t1b")
	if text, ok := m.Content("u1"); !ok || text != "t1b" {
		t.Fatalf("Content = %q, %v", text, ok)
	}
	if _, ok := m.Content("ghost"); ok {
		t.Fatal("missing URL should not resolve")
	}
	urls := m.URLs()
	if len(urls) != 2 || urls[0] != "u1" || urls[1] != "u2" {
		t.Fatalf("URLs = %v", urls)
	}
}

func TestCrawlDurationDelaysVisibility(t *testing.T) {
	net, clock := newWorld(t)
	net.Register("client", nil)
	src := NewMapSource()
	for i := 0; i < 10; i++ {
		src.Set(fmt.Sprintf("http://site/%d", i), "filler page content")
	}
	e := NewCentralEngine(net, clock, "server", src, time.Hour)
	e.PerPage = 30 * time.Second // 10 pages → 5-minute crawl

	// The initial (instant, PerPage set after boot) index is live; now a
	// page updates and we force a re-crawl.
	src.Set("http://site/0", "breaking slowcrawl news")
	e.Crawl()
	urls, _, _ := e.Search("client", "slowcrawl", 5)
	if len(urls) != 0 {
		t.Fatal("crawl results visible before the crawl finished")
	}
	clock.Advance(4 * time.Minute)
	urls, _, _ = e.Search("client", "slowcrawl", 5)
	if len(urls) != 0 {
		t.Fatal("crawl finished too early")
	}
	clock.Advance(2 * time.Minute)
	urls, _, _ = e.Search("client", "slowcrawl", 5)
	if len(urls) != 1 {
		t.Fatalf("crawl results missing after completion: %v", urls)
	}
}
