package baseline

import (
	"encoding/json"
	"sort"

	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/netsim"
)

// UnverifiedP2P is the YaCy-style baseline: a keyword index over the DHT
// where publishers write term postings directly — no worker bees, no
// staking, no commit–reveal. The paper's criticism ("without an incentive
// scheme or a security incentive that guard against practical attacks")
// shows up concretely: Poison lets any peer insert spam under any term
// and nothing stops it.
type UnverifiedP2P struct {
	numShards int
}

// termRecord is the DHT value for one term shard: url → version text
// postings (urls only; this baseline is presence-based like early YaCy).
type termRecord struct {
	URLs    []string
	Version uint64
}

// NewUnverifiedP2P creates the baseline over an existing peer swarm.
func NewUnverifiedP2P(numShards int) *UnverifiedP2P {
	if numShards <= 0 {
		numShards = index.DefaultShards
	}
	return &UnverifiedP2P{numShards: numShards}
}

func (u *UnverifiedP2P) termKey(term string) dht.Key {
	return dht.KeyOfString("yacy:term:" + term)
}

// Publish writes the document's terms straight into the keyword DHT from
// the publishing peer.
func (u *UnverifiedP2P) Publish(d *dht.Node, url, text string) (netsim.Cost, error) {
	var total netsim.Cost
	seen := map[string]bool{}
	for _, tok := range index.Analyze(text) {
		if seen[tok.Term] {
			continue
		}
		seen[tok.Term] = true
		cost, err := u.appendURL(d, tok.Term, url)
		total = total.Seq(cost)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Poison inserts an arbitrary URL under a term — the index-poisoning
// attack no mechanism prevents in this baseline.
func (u *UnverifiedP2P) Poison(d *dht.Node, term, spamURL string) (netsim.Cost, error) {
	return u.appendURL(d, index.Stem(term), spamURL)
}

func (u *UnverifiedP2P) appendURL(d *dht.Node, term, url string) (netsim.Cost, error) {
	var rec termRecord
	val, seq, cost, err := d.Get(u.termKey(term))
	if err == nil {
		if json.Unmarshal(val, &rec) != nil {
			rec = termRecord{}
		}
		rec.Version = seq
	} else if err != dht.ErrNotFound {
		return cost, err
	}
	for _, existing := range rec.URLs {
		if existing == url {
			return cost, nil
		}
	}
	rec.URLs = append(rec.URLs, url)
	sort.Strings(rec.URLs)
	rec.Version++
	data, _ := json.Marshal(rec)
	_, wcost, err := d.Put(u.termKey(term), data, rec.Version)
	return cost.Seq(wcost), err
}

// Search intersects the URL sets of the query terms.
func (u *UnverifiedP2P) Search(d *dht.Node, query string) ([]string, netsim.Cost, error) {
	terms := index.AnalyzeQuery(query)
	var total netsim.Cost
	var sets [][]string
	for _, term := range terms {
		val, _, cost, err := d.Get(u.termKey(term))
		total = total.Seq(cost)
		if err == dht.ErrNotFound {
			return nil, total, nil
		}
		if err != nil {
			return nil, total, err
		}
		var rec termRecord
		if json.Unmarshal(val, &rec) != nil {
			return nil, total, nil
		}
		sets = append(sets, rec.URLs)
	}
	return intersectStrings(sets), total, nil
}

func intersectStrings(sets [][]string) []string {
	if len(sets) == 0 {
		return nil
	}
	out := sets[0]
	for _, s := range sets[1:] {
		var next []string
		i, j := 0, 0
		for i < len(out) && j < len(s) {
			switch {
			case out[i] < s[j]:
				i++
			case out[i] > s[j]:
				j++
			default:
				next = append(next, out[i])
				i++
				j++
			}
		}
		out = next
		if len(out) == 0 {
			return nil
		}
	}
	return out
}
