// Package baseline implements the comparison systems the paper implies:
//
//   - CentralEngine — a conventional ("Web 2.0") search engine: one
//     server that crawls sites on a fixed interval and answers queries
//     over RPC. It inherits the weaknesses the paper attributes to
//     centralized search: a single point of failure (E3), a DDoS target
//     (E4), and crawl-bounded freshness (E5).
//   - UnverifiedP2P — a YaCy-style P2P keyword index: publishers write
//     postings straight into a keyword DHT with no incentives and no
//     verification, so any peer can poison any term (the contrast for
//     E11's quorum defense).
package baseline

import (
	"sort"
	"time"

	"repro/internal/index"
	"repro/internal/netsim"
	"repro/internal/vclock"
)

// ContentSource lets the crawler read the current content of a URL (the
// "origin server" of Web 2.0).
type ContentSource interface {
	Content(url string) (text string, ok bool)
	URLs() []string
}

// MapSource is a mutable in-memory ContentSource.
type MapSource struct {
	pages map[string]string
}

// NewMapSource creates an empty source.
func NewMapSource() *MapSource { return &MapSource{pages: make(map[string]string)} }

// Set publishes or updates a page.
func (m *MapSource) Set(url, text string) { m.pages[url] = text }

// Content implements ContentSource.
func (m *MapSource) Content(url string) (string, bool) {
	t, ok := m.pages[url]
	return t, ok
}

// URLs implements ContentSource.
func (m *MapSource) URLs() []string {
	out := make([]string, 0, len(m.pages))
	for u := range m.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// searchReq is the RPC a client sends to the central server.
type searchReq struct {
	Query string
	K     int
}

type searchResp struct {
	URLs []string
}

func (r searchReq) WireSize() int  { return 16 + len(r.Query) }
func (r searchResp) WireSize() int { return wireSizeURLs(r.URLs) }

func wireSizeURLs(urls []string) int {
	n := 8
	for _, u := range urls {
		n += len(u) + 4
	}
	return n
}

// CentralEngine is the centralized crawl-based search engine.
type CentralEngine struct {
	net    *netsim.Network
	clock  *vclock.Clock
	addr   netsim.NodeID
	source ContentSource

	interval time.Duration
	// PerPage is the politeness-limited fetch time per page: a crawl of
	// n pages only becomes the serving index PerPage×n after it starts.
	// Zero makes crawls instantaneous.
	PerPage time.Duration

	seg    *index.Segment
	docURL map[index.DocID]string
	gen    uint64

	crawls     int
	lastCrawl  time.Time
	crawlTimer *vclock.Timer
}

// NewCentralEngine boots the server on the network and schedules crawls
// every interval. The first crawl runs immediately.
func NewCentralEngine(net *netsim.Network, clock *vclock.Clock, addr netsim.NodeID, source ContentSource, interval time.Duration) *CentralEngine {
	e := &CentralEngine{
		net:      net,
		clock:    clock,
		addr:     addr,
		source:   source,
		interval: interval,
		seg:      index.NewSegment(0),
		docURL:   make(map[index.DocID]string),
	}
	net.Register(addr, e.handle)
	e.Crawl()
	e.schedule()
	return e
}

// Addr returns the server's network address.
func (e *CentralEngine) Addr() netsim.NodeID { return e.addr }

// Crawls returns how many crawl passes completed.
func (e *CentralEngine) Crawls() int { return e.crawls }

// LastCrawl returns the completion time of the latest crawl.
func (e *CentralEngine) LastCrawl() time.Time { return e.lastCrawl }

func (e *CentralEngine) schedule() {
	if e.interval <= 0 {
		return
	}
	e.crawlTimer = e.clock.AfterFunc(e.interval, func(time.Time) {
		e.Crawl()
		e.schedule()
	})
}

// Stop cancels future crawls.
func (e *CentralEngine) Stop() {
	if e.crawlTimer != nil {
		e.crawlTimer.Stop()
	}
}

// Crawl re-reads every URL from the source and rebuilds the index. The
// staleness this models is the paper's core freshness complaint: a page
// updated just after a crawl stays invisible until the next one — and
// with PerPage > 0, not even then: the crawl itself takes time
// proportional to the corpus.
func (e *CentralEngine) Crawl() {
	e.gen++
	b := index.NewBuilder(e.gen)
	docURL := make(map[index.DocID]string)
	pages := 0
	for _, url := range e.source.URLs() {
		text, ok := e.source.Content(url)
		if !ok {
			continue
		}
		id := index.DocIDOf(url)
		b.Add(id, text)
		docURL[id] = url
		pages++
	}
	seg := b.Build()
	install := func(time.Time) {
		e.seg = seg
		e.docURL = docURL
		e.crawls++
		e.lastCrawl = e.clock.Now()
	}
	if e.PerPage <= 0 {
		install(e.clock.Now())
		return
	}
	e.clock.AfterFunc(time.Duration(pages)*e.PerPage, install)
}

// handle serves search RPCs.
func (e *CentralEngine) handle(_ netsim.NodeID, req any) (any, error) {
	sr, ok := req.(searchReq)
	if !ok {
		return nil, netsim.ErrNoHandler
	}
	return searchResp{URLs: e.searchLocal(sr.Query, sr.K)}, nil
}

// searchLocal runs the query against the crawl index.
func (e *CentralEngine) searchLocal(query string, k int) []string {
	terms := index.AnalyzeQuery(query)
	if len(terms) == 0 {
		return nil
	}
	var lists [][]index.DocID
	for _, t := range terms {
		pl := e.seg.Postings(t)
		if len(pl) == 0 {
			return nil
		}
		lists = append(lists, pl.Docs())
	}
	docs := index.IntersectGallop(lists)
	var totalLen uint64
	for _, l := range e.seg.DocLens {
		totalLen += uint64(l)
	}
	avg := 1.0
	if n := len(e.seg.DocLens); n > 0 {
		avg = float64(totalLen) / float64(n)
	}
	scorer := index.NewScorer(index.CorpusStats{DocCount: len(e.seg.DocLens), AvgDocLen: avg}, 0)
	scored := make([]index.ScoredDoc, 0, len(docs))
	for _, d := range docs {
		var s float64
		for _, t := range terms {
			pl := e.seg.Postings(t)
			if p, ok := pl.Find(d); ok {
				s += scorer.TermScore(p.TF, e.seg.DocLens[d], len(pl))
			}
		}
		scored = append(scored, index.ScoredDoc{Doc: d, Score: s})
	}
	var urls []string
	for _, sd := range index.TopK(scored, k) {
		if u := e.docURL[sd.Doc]; u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// centralSearchRetries bounds how many times a client re-issues a query
// that failed transiently (dropped on a lossy link, shed by an
// overloaded server). Structural failures — server down, partition —
// are never retried.
const centralSearchRetries = 2

// Search issues a query from a client node over the network, so failures
// (server down, partition, overload) behave like the real thing.
// Transient failures are retried up to centralSearchRetries times, the
// same client behavior the decentralized engine's DHT call layer has;
// every attempt's simulated cost is accumulated.
func (e *CentralEngine) Search(from netsim.NodeID, query string, k int) ([]string, netsim.Cost, error) {
	var total netsim.Cost
	for attempt := 0; ; attempt++ {
		resp, cost, err := e.net.Call(from, e.addr, searchReq{Query: query, K: k})
		total = total.Seq(cost)
		if err == nil {
			return resp.(searchResp).URLs, total, nil
		}
		if !netsim.Retryable(err) || attempt >= centralSearchRetries {
			return nil, total, err
		}
	}
}
