package netsim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRetryableClassification(t *testing.T) {
	retryable := []error{ErrDropped, ErrOverloaded, fmt.Errorf("wrapped: %w", ErrDropped)}
	for _, err := range retryable {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	fatal := []error{ErrNodeDown, ErrUnknownNode, ErrPartitioned, ErrNoHandler,
		ErrSelfUnderload, ErrCancelled, errors.New("other"), nil}
	for _, err := range fatal {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

// faultNet builds a network with n registered echo nodes.
func faultNet(n int) (*Network, []NodeID) {
	net := New(DefaultConfig())
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("node-%02d", i))
		net.Register(ids[i], func(from NodeID, req any) (any, error) { return req, nil })
	}
	return net, ids
}

func TestFaultPlanScheduleFires(t *testing.T) {
	net, ids := faultNet(6)
	plan := &FaultPlan{
		Seed:  7,
		Scope: ids,
		Events: []FaultEvent{
			{At: 10 * time.Second, Kind: FaultCrash, Nodes: []NodeID{ids[1], ids[2]}},
			{At: 20 * time.Second, Kind: FaultDropRate, Rate: 1.0},
			{At: 30 * time.Second, Kind: FaultDropRate, Rate: 0},
			{At: 30 * time.Second, Kind: FaultRecover},
		},
	}

	// Nothing due yet.
	if fired := plan.Advance(5*time.Second, net); len(fired) != 0 {
		t.Fatalf("fired %d events at t=5s, want 0", len(fired))
	}
	if net.IsDown(ids[1]) {
		t.Fatal("node down before its crash event")
	}

	// The crash fires; the drop-rate episode is still in the future.
	fired := plan.Advance(12*time.Second, net)
	if len(fired) != 1 || fired[0].Kind != FaultCrash {
		t.Fatalf("fired = %+v, want one crash", fired)
	}
	if !net.IsDown(ids[1]) || !net.IsDown(ids[2]) {
		t.Fatal("crash event did not mark nodes down")
	}
	if _, _, err := net.Call(ids[0], ids[1], "ping"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("call to crashed node: err = %v, want ErrNodeDown", err)
	}

	// Lossy episode: every message drops.
	plan.Advance(20*time.Second, net)
	if _, _, err := net.Call(ids[0], ids[3], "ping"); !errors.Is(err, ErrDropped) {
		t.Fatalf("call during lossy episode: err = %v, want ErrDropped", err)
	}

	// Episode ends and the crashed nodes recover (Recover with no Nodes
	// revives everything the plan crashed).
	plan.Advance(time.Minute, net)
	if net.IsDown(ids[1]) || net.IsDown(ids[2]) {
		t.Fatal("recover event did not revive crashed nodes")
	}
	if _, _, err := net.Call(ids[0], ids[1], "ping"); err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
	if !plan.Done() {
		t.Fatal("plan not done after final event")
	}
}

func TestFaultPlanPartitionAndHeal(t *testing.T) {
	net, ids := faultNet(4)
	plan := &FaultPlan{
		Events: []FaultEvent{
			{At: time.Second, Kind: FaultPartition, Groups: map[NodeID]int{ids[3]: 1}},
			{At: 2 * time.Second, Kind: FaultHeal},
		},
	}
	plan.Advance(time.Second, net)
	if _, _, err := net.Call(ids[0], ids[3], "x"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-partition call: err = %v, want ErrPartitioned", err)
	}
	plan.Advance(2*time.Second, net)
	if _, _, err := net.Call(ids[0], ids[3], "x"); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

func TestFaultPlanFractionDeterministic(t *testing.T) {
	run := func() []NodeID {
		net, ids := faultNet(20)
		plan := &FaultPlan{
			Seed:  42,
			Scope: ids,
			Events: []FaultEvent{
				{At: time.Second, Kind: FaultCrash, Fraction: 0.5},
			},
		}
		plan.Advance(time.Second, net)
		return plan.CrashedNodes()
	}
	a, b := run(), run()
	if len(a) != 10 {
		t.Fatalf("crashed %d of 20 at fraction 0.5, want 10", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim sets diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestFaultPlanFractionSamplesSurvivors(t *testing.T) {
	// A second 50% storm kills half of the SURVIVORS, so the crashed set
	// grows to 75% of the scope without double-crashing anyone.
	net, ids := faultNet(16)
	plan := &FaultPlan{
		Seed:  3,
		Scope: ids,
		Events: []FaultEvent{
			{At: time.Second, Kind: FaultCrash, Fraction: 0.5},
			{At: 2 * time.Second, Kind: FaultCrash, Fraction: 0.5},
		},
	}
	plan.Advance(time.Second, net)
	if got := len(plan.CrashedNodes()); got != 8 {
		t.Fatalf("first storm crashed %d, want 8", got)
	}
	plan.Advance(2*time.Second, net)
	if got := len(plan.CrashedNodes()); got != 12 {
		t.Fatalf("after second storm crashed %d, want 12", got)
	}
}

func TestFaultPlanDoesNotDisturbLinkStreams(t *testing.T) {
	// Costs of calls on an untouched link must be identical whether or
	// not a plan fired in between: victim sampling never draws from link
	// streams.
	observe := func(withPlan bool) []time.Duration {
		net, ids := faultNet(8)
		var out []time.Duration
		for i := 0; i < 3; i++ {
			_, c, err := net.CallCtx(context.Background(), ids[0], ids[1], "x")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, c.Latency)
			if withPlan && i == 0 {
				plan := &FaultPlan{Seed: 9, Scope: ids[4:],
					Events: []FaultEvent{{At: 0, Kind: FaultCrash, Fraction: 0.5}}}
				plan.Advance(time.Second, net)
			}
		}
		return out
	}
	a, b := observe(false), observe(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d shifted: %v vs %v", i, a[i], b[i])
		}
	}
}
