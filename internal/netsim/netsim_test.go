package netsim

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

func echoHandler(from NodeID, req any) (any, error) { return req, nil }

func newTestNet(t *testing.T, ids ...NodeID) *Network {
	t.Helper()
	n := New(DefaultConfig())
	for _, id := range ids {
		n.Register(id, echoHandler)
	}
	return n
}

func TestCallRoundTrip(t *testing.T) {
	n := newTestNet(t, "a", "b")
	resp, cost, err := n.Call("a", "b", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "hello" {
		t.Fatalf("resp = %v, want hello", resp)
	}
	if cost.Latency < 2*10*time.Millisecond/2 {
		t.Fatalf("latency %v implausibly small", cost.Latency)
	}
	if cost.Bytes != 2*DefaultMsgBytes {
		t.Fatalf("bytes = %d, want %d", cost.Bytes, 2*DefaultMsgBytes)
	}
	if cost.Msgs != 1 {
		t.Fatalf("msgs = %d, want 1", cost.Msgs)
	}
}

func TestCallUnknownNode(t *testing.T) {
	n := newTestNet(t, "a")
	if _, _, err := n.Call("a", "ghost", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if _, _, err := n.Call("ghost", "a", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestCallDownNode(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.SetDown("b", true)
	if _, _, err := n.Call("a", "b", 1); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if !n.IsDown("b") {
		t.Fatal("IsDown should report true")
	}
	n.SetDown("b", false)
	if _, _, err := n.Call("a", "b", 1); err != nil {
		t.Fatalf("recovered node should accept calls: %v", err)
	}
}

func TestFailedCallStillCostsTime(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.SetDown("b", true)
	_, cost, _ := n.Call("a", "b", 1)
	if cost.Latency <= 0 {
		t.Fatal("failed call should cost simulated time")
	}
}

func TestPartition(t *testing.T) {
	n := newTestNet(t, "a", "b", "c")
	n.SetPartition(map[NodeID]int{"a": 0, "b": 1, "c": 0})
	if _, _, err := n.Call("a", "b", 1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-partition err = %v, want ErrPartitioned", err)
	}
	if _, _, err := n.Call("a", "c", 1); err != nil {
		t.Fatalf("same-partition call failed: %v", err)
	}
	n.SetPartition(nil) // heal
	if _, _, err := n.Call("a", "b", 1); err != nil {
		t.Fatalf("healed call failed: %v", err)
	}
}

func TestDropRate(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.SetDropRate(1.0)
	if _, _, err := n.Call("a", "b", 1); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	n.SetDropRate(0)
	if _, _, err := n.Call("a", "b", 1); err != nil {
		t.Fatalf("err after clearing drop rate: %v", err)
	}
}

func TestDropRatePartial(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.SetDropRate(0.5)
	drops := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if _, _, err := n.Call("a", "b", 1); err != nil {
			drops++
		}
	}
	if drops < trials/3 || drops > 2*trials/3 {
		t.Fatalf("drops = %d/%d, want ~half", drops, trials)
	}
}

func TestOverloadShedding(t *testing.T) {
	n := newTestNet(t, "a", "srv")
	n.SetCapacity("srv", 100)
	n.SetOfferedLoad("srv", 400) // 4x over capacity
	ok := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if _, _, err := n.Call("a", "srv", 1); err == nil {
			ok++
		}
	}
	frac := float64(ok) / trials
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("survival fraction = %v, want ~0.25", frac)
	}
}

func TestQueueingDelayGrowsWithUtilization(t *testing.T) {
	n := newTestNet(t, "a", "srv")
	n.SetCapacity("srv", 100)

	measure := func(load float64) time.Duration {
		n.SetOfferedLoad("srv", load)
		var total time.Duration
		const trials = 50
		for i := 0; i < trials; i++ {
			_, c, err := n.Call("a", "srv", 1)
			if err != nil {
				t.Fatalf("unexpected shed at load %v: %v", load, err)
			}
			total += c.Latency
		}
		return total / trials
	}

	low := measure(10)  // rho = 0.1
	high := measure(90) // rho = 0.9
	if high <= low {
		t.Fatalf("latency at rho=0.9 (%v) should exceed rho=0.1 (%v)", high, low)
	}
}

func TestCostSeqPar(t *testing.T) {
	a := Cost{Latency: 10 * time.Millisecond, Bytes: 100, Msgs: 1}
	b := Cost{Latency: 30 * time.Millisecond, Bytes: 50, Msgs: 2}
	seq := a.Seq(b)
	if seq.Latency != 40*time.Millisecond || seq.Bytes != 150 || seq.Msgs != 3 {
		t.Fatalf("Seq = %+v", seq)
	}
	par := a.Par(b)
	if par.Latency != 30*time.Millisecond || par.Bytes != 150 || par.Msgs != 3 {
		t.Fatalf("Par = %+v", par)
	}
	all := ParAll([]Cost{a, b, {Latency: 5 * time.Millisecond}})
	if all.Latency != 30*time.Millisecond {
		t.Fatalf("ParAll latency = %v", all.Latency)
	}
}

type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

func TestSizerPayloads(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.Register("b", func(from NodeID, req any) (any, error) {
		return sized{n: 1000}, nil
	})
	_, cost, err := n.Call("a", "b", sized{n: 500})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Bytes != 1500 {
		t.Fatalf("bytes = %d, want 1500", cost.Bytes)
	}
}

func TestBandwidthAddsTransferDelay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	cfg.MaxExtra = 0
	n := New(cfg)
	n.Register("a", echoHandler)
	n.Register("b", echoHandler)
	_, small, _ := n.Call("a", "b", sized{n: 100})
	_, large, _ := n.Call("a", "b", sized{n: 10 << 20}) // 10 MB at 10 MB/s ≈ 1s
	if large.Latency-small.Latency < 500*time.Millisecond {
		t.Fatalf("large transfer %v not slower than small %v", large.Latency, small.Latency)
	}
}

func TestStats(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.Call("a", "b", 1)
	n.SetDown("b", true)
	n.Call("a", "b", 1)
	s := n.StatsSnapshot()
	if s.Calls != 2 {
		t.Fatalf("Calls = %d, want 2", s.Calls)
	}
	if s.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", s.Failures)
	}
	if s.Bytes == 0 {
		t.Fatal("Bytes should be counted")
	}
	n.ResetStats()
	if s := n.StatsSnapshot(); s.Calls != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestBroadcast(t *testing.T) {
	n := newTestNet(t, "a", "b", "c", "d")
	n.SetDown("d", true)
	delivered, cost := n.Broadcast("a", "ping")
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
	if cost.Msgs != 3 {
		t.Fatalf("msgs = %d, want 3", cost.Msgs)
	}
}

func TestDeterministicLatency(t *testing.T) {
	run := func() []time.Duration {
		n := New(DefaultConfig())
		n.Register("a", echoHandler)
		n.Register("b", echoHandler)
		var out []time.Duration
		for i := 0; i < 20; i++ {
			_, c, _ := n.Call("a", "b", i)
			out = append(out, c.Latency)
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("nondeterministic latency at call %d: %v vs %v", i, x[i], y[i])
		}
	}
}

// TestLegacySharedStreamGolden pins the pre-concurrency RNG behavior:
// with Config.SharedStream set, the latency sequence must match the
// golden values captured from the historical single-stream implementation
// (DefaultConfig, seed 1, nodes registered a, b, c, alternating a→b and
// a→c calls). Golden-cost comparisons across versions rely on this mode.
func TestLegacySharedStreamGolden(t *testing.T) {
	golden := [][2]time.Duration{
		{37172334, 61178148},
		{43642130, 63314570},
		{44173784, 68394966},
		{44175410, 64785248},
		{41470496, 67559618},
		{37248812, 62558478},
	}
	cfg := DefaultConfig()
	cfg.SharedStream = true
	n := New(cfg)
	n.Register("a", echoHandler)
	n.Register("b", echoHandler)
	n.Register("c", echoHandler)
	for i, want := range golden {
		_, c1, _ := n.Call("a", "b", i)
		_, c2, _ := n.Call("a", "c", i)
		if c1.Latency != want[0] || c2.Latency != want[1] {
			t.Fatalf("call %d: latencies (%d, %d), want (%d, %d)",
				i, c1.Latency, c2.Latency, want[0], want[1])
		}
	}
	if !n.SharedStream() {
		t.Fatal("SharedStream() should report the legacy mode")
	}
}

// TestPerLinkStreamsIgnoreInterleaving is the concurrency-determinism
// contract of the default mode: the i-th call on a link draws the same
// jitter regardless of how calls on other links interleave with it.
func TestPerLinkStreamsIgnoreInterleaving(t *testing.T) {
	const calls = 32
	pairs := [][2]NodeID{{"a", "b"}, {"a", "c"}, {"b", "c"}, {"c", "a"}}

	sequential := func() map[[2]NodeID][]time.Duration {
		n := newTestNet(t, "a", "b", "c")
		out := make(map[[2]NodeID][]time.Duration)
		for i := 0; i < calls; i++ {
			for _, p := range pairs {
				_, c, err := n.Call(p[0], p[1], i)
				if err != nil {
					t.Fatal(err)
				}
				out[p] = append(out[p], c.Latency)
			}
		}
		return out
	}

	concurrent := func() map[[2]NodeID][]time.Duration {
		n := newTestNet(t, "a", "b", "c")
		out := make(map[[2]NodeID][]time.Duration)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, p := range pairs {
			wg.Add(1)
			go func(p [2]NodeID) {
				defer wg.Done()
				seq := make([]time.Duration, 0, calls)
				for i := 0; i < calls; i++ {
					_, c, err := n.Call(p[0], p[1], i)
					if err != nil {
						t.Error(err)
						return
					}
					seq = append(seq, c.Latency)
				}
				mu.Lock()
				out[p] = seq
				mu.Unlock()
			}(p)
		}
		wg.Wait()
		return out
	}

	want, got := sequential(), concurrent()
	for _, p := range pairs {
		for i := range want[p] {
			if got[p][i] != want[p][i] {
				t.Fatalf("pair %v call %d: latency %v concurrent vs %v sequential",
					p, i, got[p][i], want[p][i])
			}
		}
	}
}

// TestSameLinkConcurrentDrawsConserved: goroutines racing on ONE link may
// swap which call observes which draw, but the multiset of draws — and so
// every aggregate cost — is invariant.
func TestSameLinkConcurrentDrawsConserved(t *testing.T) {
	const calls, workers = 40, 4
	collect := func(parallel bool) []time.Duration {
		n := newTestNet(t, "a", "b")
		all := make([]time.Duration, 0, calls*workers)
		if !parallel {
			for i := 0; i < calls*workers; i++ {
				_, c, _ := n.Call("a", "b", i)
				all = append(all, c.Latency)
			}
		} else {
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					local := make([]time.Duration, 0, calls)
					for i := 0; i < calls; i++ {
						_, c, _ := n.Call("a", "b", i)
						local = append(local, c.Latency)
					}
					mu.Lock()
					all = append(all, local...)
					mu.Unlock()
				}()
			}
			wg.Wait()
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		return all
	}
	want, got := collect(false), collect(true)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw multiset diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestUnregister(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.Unregister("b")
	if _, _, err := n.Call("a", "b", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if len(n.Nodes()) != 1 {
		t.Fatalf("Nodes = %v, want 1 node", n.Nodes())
	}
}

func TestReRegisterKeepsPosition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	n := New(cfg)
	n.Register("a", echoHandler)
	n.Register("b", echoHandler)
	_, before, _ := n.Call("a", "b", 1)
	n.Register("b", echoHandler) // replace handler
	_, after, _ := n.Call("a", "b", 1)
	if before.Latency != after.Latency {
		t.Fatalf("latency changed after re-register: %v vs %v", before.Latency, after.Latency)
	}
}

// TestCallCtxCancelledShortCircuits: a call issued under a done context
// never hits the wire — zero cost, no bytes, the typed sentinel, and
// both the netsim and the context errors matchable.
func TestCallCtxCancelledShortCircuits(t *testing.T) {
	n := newTestNet(t, "a", "b")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp, cost, err := n.CallCtx(ctx, "a", "b", "hello")
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	if resp != nil || cost != (Cost{}) {
		t.Fatalf("cancelled call leaked work: resp=%v cost=%+v", resp, cost)
	}
}

// TestCallCtxCancelConsumesNoDraws pins the stream-desync contract:
// interleaving cancelled CallCtx calls between executed ones must not
// shift the i-th executed call's jitter draws on any link — the two
// runs below observe byte-identical per-call costs.
func TestCallCtxCancelConsumesNoDraws(t *testing.T) {
	run := func(withCancelled bool) []Cost {
		n := newTestNet(t, "a", "b", "c")
		done, cancel := context.WithCancel(context.Background())
		cancel()
		var costs []Cost
		for i := 0; i < 6; i++ {
			if withCancelled {
				// Abandoned calls on BOTH links, before every executed call.
				if _, _, err := n.CallCtx(done, "a", "b", i); !errors.Is(err, ErrCancelled) {
					t.Fatalf("want cancelled, got %v", err)
				}
				if _, _, err := n.CallCtx(done, "a", "c", i); !errors.Is(err, ErrCancelled) {
					t.Fatalf("want cancelled, got %v", err)
				}
			}
			_, c1, err := n.CallCtx(context.Background(), "a", "b", i)
			if err != nil {
				t.Fatal(err)
			}
			_, c2, err := n.CallCtx(context.Background(), "a", "c", i)
			if err != nil {
				t.Fatal(err)
			}
			costs = append(costs, c1, c2)
		}
		return costs
	}
	clean, interleaved := run(false), run(true)
	for i := range clean {
		if clean[i] != interleaved[i] {
			t.Fatalf("executed call %d drew differently with cancellations interleaved: %+v vs %+v",
				i, clean[i], interleaved[i])
		}
	}
}

// TestCallCtxLiveMatchesCall: with a live context, CallCtx is Call —
// same draws, same costs, same stats accounting.
func TestCallCtxLiveMatchesCall(t *testing.T) {
	n1 := newTestNet(t, "a", "b")
	n2 := newTestNet(t, "a", "b")
	for i := 0; i < 4; i++ {
		_, c1, err1 := n1.Call("a", "b", i)
		_, c2, err2 := n2.CallCtx(context.Background(), "a", "b", i)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if c1 != c2 {
			t.Fatalf("call %d: Call cost %+v, CallCtx cost %+v", i, c1, c2)
		}
	}
	if s1, s2 := n1.StatsSnapshot(), n2.StatsSnapshot(); s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
}

// TestNodesSorted pins the membership-listing contract detlint's sweep
// introduced: Nodes() returns IDs in sorted order, so every caller that
// iterates the membership (Broadcast included) does identical work per
// run regardless of map layout.
func TestNodesSorted(t *testing.T) {
	n := newTestNet(t, "delta", "alpha", "charlie", "bravo")
	ids := n.Nodes()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatalf("Nodes() not sorted: %v", ids)
	}
}

// TestBroadcastDeterministic pins Broadcast on sorted membership: in
// legacy shared-stream mode the per-call RNG draws depend on call order,
// so two identical networks must pay byte-identical broadcast costs.
// Before Nodes() sorted its output, map iteration order leaked into the
// shared stream here.
func TestBroadcastDeterministic(t *testing.T) {
	run := func() (int, Cost) {
		cfg := DefaultConfig()
		cfg.SharedStream = true
		n := New(cfg)
		for _, id := range []NodeID{"edgar", "alice", "dave", "carol", "bob"} {
			n.Register(id, echoHandler)
		}
		return n.Broadcast("alice", "ping")
	}
	d1, c1 := run()
	d2, c2 := run()
	if d1 != d2 || c1 != c2 {
		t.Fatalf("broadcast diverged across identical runs: (%d, %+v) vs (%d, %+v)", d1, c1, d2, c2)
	}
}
