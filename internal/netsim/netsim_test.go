package netsim

import (
	"errors"
	"testing"
	"time"
)

func echoHandler(from NodeID, req any) (any, error) { return req, nil }

func newTestNet(t *testing.T, ids ...NodeID) *Network {
	t.Helper()
	n := New(DefaultConfig())
	for _, id := range ids {
		n.Register(id, echoHandler)
	}
	return n
}

func TestCallRoundTrip(t *testing.T) {
	n := newTestNet(t, "a", "b")
	resp, cost, err := n.Call("a", "b", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "hello" {
		t.Fatalf("resp = %v, want hello", resp)
	}
	if cost.Latency < 2*10*time.Millisecond/2 {
		t.Fatalf("latency %v implausibly small", cost.Latency)
	}
	if cost.Bytes != 2*DefaultMsgBytes {
		t.Fatalf("bytes = %d, want %d", cost.Bytes, 2*DefaultMsgBytes)
	}
	if cost.Msgs != 1 {
		t.Fatalf("msgs = %d, want 1", cost.Msgs)
	}
}

func TestCallUnknownNode(t *testing.T) {
	n := newTestNet(t, "a")
	if _, _, err := n.Call("a", "ghost", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if _, _, err := n.Call("ghost", "a", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestCallDownNode(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.SetDown("b", true)
	if _, _, err := n.Call("a", "b", 1); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if !n.IsDown("b") {
		t.Fatal("IsDown should report true")
	}
	n.SetDown("b", false)
	if _, _, err := n.Call("a", "b", 1); err != nil {
		t.Fatalf("recovered node should accept calls: %v", err)
	}
}

func TestFailedCallStillCostsTime(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.SetDown("b", true)
	_, cost, _ := n.Call("a", "b", 1)
	if cost.Latency <= 0 {
		t.Fatal("failed call should cost simulated time")
	}
}

func TestPartition(t *testing.T) {
	n := newTestNet(t, "a", "b", "c")
	n.SetPartition(map[NodeID]int{"a": 0, "b": 1, "c": 0})
	if _, _, err := n.Call("a", "b", 1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-partition err = %v, want ErrPartitioned", err)
	}
	if _, _, err := n.Call("a", "c", 1); err != nil {
		t.Fatalf("same-partition call failed: %v", err)
	}
	n.SetPartition(nil) // heal
	if _, _, err := n.Call("a", "b", 1); err != nil {
		t.Fatalf("healed call failed: %v", err)
	}
}

func TestDropRate(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.SetDropRate(1.0)
	if _, _, err := n.Call("a", "b", 1); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	n.SetDropRate(0)
	if _, _, err := n.Call("a", "b", 1); err != nil {
		t.Fatalf("err after clearing drop rate: %v", err)
	}
}

func TestDropRatePartial(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.SetDropRate(0.5)
	drops := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if _, _, err := n.Call("a", "b", 1); err != nil {
			drops++
		}
	}
	if drops < trials/3 || drops > 2*trials/3 {
		t.Fatalf("drops = %d/%d, want ~half", drops, trials)
	}
}

func TestOverloadShedding(t *testing.T) {
	n := newTestNet(t, "a", "srv")
	n.SetCapacity("srv", 100)
	n.SetOfferedLoad("srv", 400) // 4x over capacity
	ok := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if _, _, err := n.Call("a", "srv", 1); err == nil {
			ok++
		}
	}
	frac := float64(ok) / trials
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("survival fraction = %v, want ~0.25", frac)
	}
}

func TestQueueingDelayGrowsWithUtilization(t *testing.T) {
	n := newTestNet(t, "a", "srv")
	n.SetCapacity("srv", 100)

	measure := func(load float64) time.Duration {
		n.SetOfferedLoad("srv", load)
		var total time.Duration
		const trials = 50
		for i := 0; i < trials; i++ {
			_, c, err := n.Call("a", "srv", 1)
			if err != nil {
				t.Fatalf("unexpected shed at load %v: %v", load, err)
			}
			total += c.Latency
		}
		return total / trials
	}

	low := measure(10)  // rho = 0.1
	high := measure(90) // rho = 0.9
	if high <= low {
		t.Fatalf("latency at rho=0.9 (%v) should exceed rho=0.1 (%v)", high, low)
	}
}

func TestCostSeqPar(t *testing.T) {
	a := Cost{Latency: 10 * time.Millisecond, Bytes: 100, Msgs: 1}
	b := Cost{Latency: 30 * time.Millisecond, Bytes: 50, Msgs: 2}
	seq := a.Seq(b)
	if seq.Latency != 40*time.Millisecond || seq.Bytes != 150 || seq.Msgs != 3 {
		t.Fatalf("Seq = %+v", seq)
	}
	par := a.Par(b)
	if par.Latency != 30*time.Millisecond || par.Bytes != 150 || par.Msgs != 3 {
		t.Fatalf("Par = %+v", par)
	}
	all := ParAll([]Cost{a, b, {Latency: 5 * time.Millisecond}})
	if all.Latency != 30*time.Millisecond {
		t.Fatalf("ParAll latency = %v", all.Latency)
	}
}

type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

func TestSizerPayloads(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.Register("b", func(from NodeID, req any) (any, error) {
		return sized{n: 1000}, nil
	})
	_, cost, err := n.Call("a", "b", sized{n: 500})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Bytes != 1500 {
		t.Fatalf("bytes = %d, want 1500", cost.Bytes)
	}
}

func TestBandwidthAddsTransferDelay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	cfg.MaxExtra = 0
	n := New(cfg)
	n.Register("a", echoHandler)
	n.Register("b", echoHandler)
	_, small, _ := n.Call("a", "b", sized{n: 100})
	_, large, _ := n.Call("a", "b", sized{n: 10 << 20}) // 10 MB at 10 MB/s ≈ 1s
	if large.Latency-small.Latency < 500*time.Millisecond {
		t.Fatalf("large transfer %v not slower than small %v", large.Latency, small.Latency)
	}
}

func TestStats(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.Call("a", "b", 1)
	n.SetDown("b", true)
	n.Call("a", "b", 1)
	s := n.StatsSnapshot()
	if s.Calls != 2 {
		t.Fatalf("Calls = %d, want 2", s.Calls)
	}
	if s.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", s.Failures)
	}
	if s.Bytes == 0 {
		t.Fatal("Bytes should be counted")
	}
	n.ResetStats()
	if s := n.StatsSnapshot(); s.Calls != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestBroadcast(t *testing.T) {
	n := newTestNet(t, "a", "b", "c", "d")
	n.SetDown("d", true)
	delivered, cost := n.Broadcast("a", "ping")
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
	if cost.Msgs != 3 {
		t.Fatalf("msgs = %d, want 3", cost.Msgs)
	}
}

func TestDeterministicLatency(t *testing.T) {
	run := func() []time.Duration {
		n := New(DefaultConfig())
		n.Register("a", echoHandler)
		n.Register("b", echoHandler)
		var out []time.Duration
		for i := 0; i < 20; i++ {
			_, c, _ := n.Call("a", "b", i)
			out = append(out, c.Latency)
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("nondeterministic latency at call %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestUnregister(t *testing.T) {
	n := newTestNet(t, "a", "b")
	n.Unregister("b")
	if _, _, err := n.Call("a", "b", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if len(n.Nodes()) != 1 {
		t.Fatalf("Nodes = %v, want 1 node", n.Nodes())
	}
}

func TestReRegisterKeepsPosition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	n := New(cfg)
	n.Register("a", echoHandler)
	n.Register("b", echoHandler)
	_, before, _ := n.Call("a", "b", 1)
	n.Register("b", echoHandler) // replace handler
	_, after, _ := n.Call("a", "b", 1)
	if before.Latency != after.Latency {
		t.Fatalf("latency changed after re-register: %v vs %v", before.Latency, after.Latency)
	}
}
