package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/xrand"
)

// Retryable classifies a Call error as transient or fatal. Transient
// failures — a dropped message, a request shed by an overloaded node —
// are worth retrying: the same call can succeed a moment later on the
// same link. (The simulator has no spurious-timeout mode; a dropped
// message is its timeout analog.) Everything else is structural: the
// target is down or unknown, the network is partitioned, the caller
// itself is down, or the request lifecycle ended — retrying cannot help
// until the world changes.
func Retryable(err error) bool {
	return errors.Is(err, ErrDropped) || errors.Is(err, ErrOverloaded)
}

// FaultKind is one category of scripted fault event.
type FaultKind int

// Fault event kinds.
const (
	// FaultCrash marks nodes down (SetDown true): explicit Nodes, or a
	// Fraction of the plan's Scope sampled deterministically.
	FaultCrash FaultKind = iota
	// FaultRecover brings nodes back (SetDown false): explicit Nodes, or
	// every node this plan crashed when Nodes is empty.
	FaultRecover
	// FaultPartition splits the network into the event's Groups.
	FaultPartition
	// FaultHeal dissolves all partitions (SetPartition nil).
	FaultHeal
	// FaultDropRate sets the global message drop probability to Rate —
	// Rate 0 ends a lossy-link episode.
	FaultDropRate
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRecover:
		return "recover"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultDropRate:
		return "drop-rate"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scripted churn event, applied when the plan's
// elapsed simulated time reaches At.
type FaultEvent struct {
	At   time.Duration
	Kind FaultKind
	// Nodes are explicit victims for crash/recover events.
	Nodes []NodeID
	// Fraction crashes that share of the plan Scope's currently-live
	// members instead, sampled deterministically from the plan seed.
	// Only read when Kind is FaultCrash and Nodes is empty.
	Fraction float64
	// Groups is the partition assignment for FaultPartition.
	Groups map[NodeID]int
	// Rate is the drop probability for FaultDropRate.
	Rate float64
}

// FiredEvent records one applied event and the nodes it affected.
type FiredEvent struct {
	At      time.Duration
	Kind    FaultKind
	Victims []NodeID
}

// FaultPlan is a replayable churn schedule: a list of events on a
// simulated-time axis, applied against a Network as time advances. The
// driver (e.g. the cluster's block seal) calls Advance with its elapsed
// time; events whose At has passed fire once, in slice order. Victim
// sampling for fractional crashes draws from an RNG derived from the
// plan seed and the event index — never from the network's link
// streams — so "50% of peers leave mid-round" is the same 50% every
// run, and the schedule perturbs no per-link jitter/drop draws.
//
// Advance is safe for concurrent use, but a deterministic schedule
// needs a single-threaded driver (the same contract as the cluster's
// write side).
type FaultPlan struct {
	// Seed derives the victim-sampling streams.
	Seed uint64
	// Scope is the victim pool for Fraction events (typically the plain
	// peers, never the bees). Sampling order follows this slice.
	Scope []NodeID
	// Events fire in slice order as their At times pass.
	Events []FaultEvent

	mu      sync.Mutex
	next    int
	crashed map[NodeID]bool
	fired   []FiredEvent
}

// Advance applies every not-yet-fired event with At <= elapsed, in
// order, and returns the events fired by this call.
func (p *FaultPlan) Advance(elapsed time.Duration, net *Network) []FiredEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed == nil {
		p.crashed = make(map[NodeID]bool)
	}
	var out []FiredEvent
	for p.next < len(p.Events) && p.Events[p.next].At <= elapsed {
		ev := p.Events[p.next]
		fe := FiredEvent{At: ev.At, Kind: ev.Kind}
		switch ev.Kind {
		case FaultCrash:
			fe.Victims = p.crashVictims(p.next, ev)
			for _, id := range fe.Victims {
				net.SetDown(id, true)
				p.crashed[id] = true
			}
		case FaultRecover:
			fe.Victims = ev.Nodes
			if len(fe.Victims) == 0 {
				fe.Victims = sortedIDs(p.crashed)
			}
			for _, id := range fe.Victims {
				net.SetDown(id, false)
				delete(p.crashed, id)
			}
		case FaultPartition:
			net.SetPartition(ev.Groups)
		case FaultHeal:
			net.SetPartition(nil)
		case FaultDropRate:
			net.SetDropRate(ev.Rate)
		}
		p.fired = append(p.fired, fe)
		out = append(out, fe)
		p.next++
	}
	return out
}

// crashVictims resolves a crash event's victim set: explicit nodes, or
// a deterministic sample of the scope's still-live members. Called with
// p.mu held.
func (p *FaultPlan) crashVictims(eventIdx int, ev FaultEvent) []NodeID {
	if len(ev.Nodes) > 0 {
		return ev.Nodes
	}
	live := make([]NodeID, 0, len(p.Scope))
	for _, id := range p.Scope {
		if !p.crashed[id] {
			live = append(live, id)
		}
	}
	n := int(ev.Fraction * float64(len(live)))
	if n <= 0 {
		return nil
	}
	rng := xrand.NewNamed(p.Seed, fmt.Sprintf("fault-event:%d", eventIdx))
	victims := make([]NodeID, 0, n)
	for _, i := range rng.Sample(len(live), n) {
		victims = append(victims, live[i])
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	return victims
}

// Fired returns every event applied so far, in firing order.
func (p *FaultPlan) Fired() []FiredEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FiredEvent, len(p.fired))
	copy(out, p.fired)
	return out
}

// CrashedNodes returns the nodes this plan has crashed and not yet
// recovered, sorted by ID.
func (p *FaultPlan) CrashedNodes() []NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return sortedIDs(p.crashed)
}

// Done reports whether every event has fired.
func (p *FaultPlan) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next >= len(p.Events)
}

func sortedIDs(set map[NodeID]bool) []NodeID {
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
