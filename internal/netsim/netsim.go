// Package netsim simulates the peer-to-peer network underneath the DWeb.
//
// The simulator is synchronous and cost-accounted rather than real-time:
// every RPC executes the target node's handler immediately (on the caller's
// goroutine) and returns a Cost describing the simulated latency and bytes
// on the wire. Sequential RPCs add their costs; parallel fan-outs combine
// with Par (max of latencies, sum of bytes). This keeps experiments
// deterministic and lets a laptop simulate thousands of nodes.
//
// The network is safe for concurrent callers, and — in the default
// per-link RNG mode — concurrency does not cost reproducibility: every
// (caller, target) pair owns an RNG stream derived from (Config.Seed,
// caller, target), so the i-th message on a link always sees the same
// jitter/drop/shedding draws no matter how goroutines interleave across
// links. The single pre-concurrency stream survives behind
// Config.SharedStream for golden-cost comparisons.
//
// Failure injection covers the paper's resilience claims: nodes can be
// marked down (crash faults), the network can be split into partitions,
// links can drop messages probabilistically, and per-node load (for the
// DDoS experiment) inflates service time with an M/M/1-style queueing
// delay and sheds requests beyond capacity.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/xrand"
)

// NodeID addresses a node on the simulated network.
type NodeID string

// Errors returned by Call.
var (
	ErrNodeDown      = errors.New("netsim: target node is down")
	ErrUnknownNode   = errors.New("netsim: unknown node")
	ErrPartitioned   = errors.New("netsim: nodes are in different partitions")
	ErrDropped       = errors.New("netsim: message dropped")
	ErrOverloaded    = errors.New("netsim: target node overloaded")
	ErrNoHandler     = errors.New("netsim: node has no handler")
	ErrSelfUnderload = errors.New("netsim: caller node is down")
	// ErrCancelled is returned by CallCtx when the request context was
	// done before the message hit the wire. The error wraps the context's
	// own error too, so callers can match either sentinel.
	ErrCancelled = errors.New("netsim: call cancelled")
)

// Cost accounts the simulated expense of one or more RPCs.
type Cost struct {
	Latency time.Duration // simulated wall time
	Bytes   int64         // bytes moved on the wire
	Msgs    int           // message count (requests, incl. responses implied)
}

// Seq returns the cost of performing c then d sequentially.
func (c Cost) Seq(d Cost) Cost {
	return Cost{Latency: c.Latency + d.Latency, Bytes: c.Bytes + d.Bytes, Msgs: c.Msgs + d.Msgs}
}

// Par returns the cost of performing c and d in parallel.
func (c Cost) Par(d Cost) Cost {
	lat := c.Latency
	if d.Latency > lat {
		lat = d.Latency
	}
	return Cost{Latency: lat, Bytes: c.Bytes + d.Bytes, Msgs: c.Msgs + d.Msgs}
}

// ParAll folds Par over a set of costs.
func ParAll(costs []Cost) Cost {
	var out Cost
	for _, c := range costs {
		out = out.Par(c)
	}
	return out
}

// Sizer lets payload types report their wire size. Payloads that do not
// implement Sizer are charged DefaultMsgBytes.
type Sizer interface{ WireSize() int }

// DefaultMsgBytes is the assumed wire size of a payload without a Sizer.
const DefaultMsgBytes = 128

// Handler processes one inbound RPC on a node and returns the response
// payload. Handlers run synchronously on the caller's goroutine and must be
// safe for concurrent use.
type Handler func(from NodeID, req any) (resp any, err error)

// Config tunes the latency model.
type Config struct {
	Seed uint64 // RNG seed; 0 means 1

	// BaseLatency is the minimum one-way delay on any link.
	BaseLatency time.Duration
	// MaxExtra is the additional one-way delay between the two most
	// distant nodes; per-pair delay scales with distance in a random 2-D
	// embedding.
	MaxExtra time.Duration
	// JitterFrac adds a uniform ±frac jitter to every message.
	JitterFrac float64
	// Bandwidth is bytes per simulated second per link; 0 disables the
	// serialization-delay term.
	Bandwidth float64
	// SharedStream restores the pre-concurrency behavior of drawing every
	// jitter/drop/shedding decision from one global RNG stream. Costs then
	// match historical golden values exactly, but concurrent callers
	// consume draws in scheduling order, so per-seed cost reproducibility
	// only holds for a single-threaded driver. The default (false) derives
	// an independent stream per (caller, target) link, which keeps the
	// i-th draw on every link identical across runs regardless of
	// goroutine interleaving.
	SharedStream bool
}

// DefaultConfig models a modest wide-area swarm: 10ms floor, up to +80ms
// with distance, 10% jitter, 10 MB/s links.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		BaseLatency: 10 * time.Millisecond,
		MaxExtra:    80 * time.Millisecond,
		JitterFrac:  0.10,
		Bandwidth:   10 << 20,
	}
}

type nodeState struct {
	handler   Handler
	x, y      float64 // position in the unit square (distance → latency)
	down      bool
	partition int
	capacity  float64 // requests per simulated second; 0 = unlimited
	offered   float64 // current offered load, requests per second
}

// Network is the simulated network. Safe for concurrent use.
type Network struct {
	cfg Config

	mu       sync.Mutex
	rng      *xrand.RNG // topology placement; every draw in SharedStream mode
	nodes    map[NodeID]*nodeState
	dropRate float64

	linksMu sync.Mutex
	links   map[linkKey]*linkStream

	stats Stats
}

// linkKey identifies one directed (caller, target) pair.
type linkKey struct {
	from, to NodeID
}

// linkStream is the derived RNG of one directed link. Its mutex orders
// draws so the stream position equals the link's message count.
type linkStream struct {
	mu  sync.Mutex
	rng *xrand.RNG
}

// linkStream returns (creating on first use) the RNG stream of a link.
func (n *Network) linkStream(from, to NodeID) *linkStream {
	key := linkKey{from, to}
	n.linksMu.Lock()
	defer n.linksMu.Unlock()
	ls, ok := n.links[key]
	if !ok {
		seed := n.cfg.Seed
		if seed == 0 {
			seed = 1
		}
		ls = &linkStream{rng: xrand.NewNamed(seed, "link:"+string(from)+"\x00"+string(to))}
		n.links[key] = ls
	}
	return ls
}

// SharedStream reports whether the network runs in the legacy
// single-stream RNG mode, where only a single-threaded driver keeps
// per-seed cost reproducibility.
func (n *Network) SharedStream() bool { return n.cfg.SharedStream }

// Stats aggregates global traffic counters.
type Stats struct {
	Calls    int64
	Failures int64
	Bytes    int64
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:   cfg,
		rng:   xrand.New(seed),
		nodes: make(map[NodeID]*nodeState),
		links: make(map[linkKey]*linkStream),
	}
}

// Register adds a node. Re-registering an existing ID replaces its handler
// but keeps its position and fault state.
func (n *Network) Register(id NodeID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st, ok := n.nodes[id]; ok {
		st.handler = h
		return
	}
	n.nodes[id] = &nodeState{
		handler: h,
		x:       n.rng.Float64(),
		y:       n.rng.Float64(),
	}
}

// Unregister removes a node entirely.
func (n *Network) Unregister(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
}

// Nodes returns the IDs of all registered nodes in sorted order, so
// callers iterating the membership do identical work on every run.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetDown marks a node as crashed (true) or recovered (false).
func (n *Network) SetDown(id NodeID, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st, ok := n.nodes[id]; ok {
		st.down = down
	}
}

// IsDown reports whether the node is currently marked down.
func (n *Network) IsDown(id NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.nodes[id]
	return ok && st.down
}

// SetPartition assigns nodes to partition groups. Calls between different
// groups fail with ErrPartitioned. Nodes not present in the map join group
// 0. Passing nil heals all partitions.
func (n *Network) SetPartition(groups map[NodeID]int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id, st := range n.nodes {
		if groups == nil {
			st.partition = 0
			continue
		}
		st.partition = groups[id]
	}
}

// SetDropRate sets the probability that any message is silently dropped.
func (n *Network) SetDropRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropRate = p
}

// SetCapacity sets a node's service capacity in requests per simulated
// second. Zero means unlimited (no queueing model).
func (n *Network) SetCapacity(id NodeID, rps float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st, ok := n.nodes[id]; ok {
		st.capacity = rps
	}
}

// SetOfferedLoad sets the node's current offered load (requests per
// simulated second), e.g. attack traffic aimed at it. The queueing model
// uses utilization = offered/capacity.
func (n *Network) SetOfferedLoad(id NodeID, rps float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st, ok := n.nodes[id]; ok {
		st.offered = rps
	}
}

// StatsSnapshot returns a copy of the global counters.
func (n *Network) StatsSnapshot() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the global counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}

// payloadSize estimates the wire size of a payload.
func payloadSize(p any) int64 {
	if s, ok := p.(Sizer); ok {
		return int64(s.WireSize())
	}
	return DefaultMsgBytes
}

// Call performs a synchronous RPC from one node to another and returns the
// response together with the simulated round-trip cost. The returned cost
// is meaningful even when err != nil (a timeout still costs time: failed
// calls are charged one base round trip so that retry loops accumulate
// simulated delay).
func (n *Network) Call(from, to NodeID, req any) (resp any, cost Cost, err error) {
	n.mu.Lock()
	src, okSrc := n.nodes[from]
	dst, okDst := n.nodes[to]
	n.stats.Calls++

	fail := func(e error) (any, Cost, error) {
		n.stats.Failures++
		c := Cost{Latency: 2 * n.cfg.BaseLatency, Msgs: 1}
		n.mu.Unlock()
		return nil, c, e
	}

	switch {
	case !okSrc:
		return fail(fmt.Errorf("%w: %s", ErrUnknownNode, from))
	case !okDst:
		return fail(fmt.Errorf("%w: %s", ErrUnknownNode, to))
	case src.down:
		return fail(ErrSelfUnderload)
	case dst.down:
		return fail(ErrNodeDown)
	case src.partition != dst.partition:
		return fail(ErrPartitioned)
	case dst.handler == nil:
		return fail(ErrNoHandler)
	}

	// Snapshot everything the draw section needs, then release n.mu in
	// the default mode: per-message randomness only serializes on the
	// link's own stream, so concurrent calls on different links never
	// contend on the global lock while drawing. (Node positions are set
	// once at registration and never move, so dist is safe to carry out
	// of the lock.) SharedStream keeps the draws on n.rng under n.mu,
	// reproducing the historical sequence exactly.
	dropRate := n.dropRate
	var rho float64
	if dst.capacity > 0 && dst.offered > 0 {
		rho = dst.offered / dst.capacity
	}
	dist := nodeDist(src, dst)
	handler := dst.handler
	reqBytes := payloadSize(req)

	// The draw order per message is fixed: drop, shedding, jitter — each
	// conditional on its feature being active.
	var link *linkStream
	var draw func() float64
	if n.cfg.SharedStream {
		draw = n.rng.Float64
	} else {
		link = n.linkStream(from, to)
		n.mu.Unlock()
		link.mu.Lock()
		draw = link.rng.Float64
	}
	// failDrawn releases whichever lock the draw section holds, then
	// charges the failure under n.mu.
	failDrawn := func(e error) (any, Cost, error) {
		if link != nil {
			link.mu.Unlock()
			n.mu.Lock()
		}
		return fail(e) // fail unlocks n.mu
	}

	if dropRate > 0 && draw() < dropRate {
		return failDrawn(ErrDropped)
	}

	// Queueing model: overload sheds requests, high utilization inflates
	// service time (M/M/1 waiting factor, capped).
	var queueDelay time.Duration
	if rho >= 1 {
		// Saturated: only capacity/offered of requests survive.
		if !(draw() < 1/rho) {
			return failDrawn(ErrOverloaded)
		}
		queueDelay = time.Duration(20) * n.cfg.BaseLatency
	} else if rho > 0 {
		wait := rho / (1 - rho)
		if wait > 20 {
			wait = 20
		}
		queueDelay = time.Duration(float64(n.cfg.BaseLatency) * wait)
	}

	oneWay := n.linkLatency(dist, draw)
	if link != nil {
		link.mu.Unlock()
	} else {
		n.mu.Unlock()
	}

	resp, err = handler(from, req)

	n.mu.Lock()
	respBytes := payloadSize(resp)
	totalBytes := reqBytes + respBytes
	var xfer time.Duration
	if n.cfg.Bandwidth > 0 {
		xfer = time.Duration(float64(totalBytes) / n.cfg.Bandwidth * float64(time.Second))
	}
	cost = Cost{
		Latency: 2*oneWay + queueDelay + xfer,
		Bytes:   totalBytes,
		Msgs:    1,
	}
	n.stats.Bytes += totalBytes
	if err != nil {
		n.stats.Failures++
	}
	n.mu.Unlock()
	return resp, cost, err
}

// CallCtx is Call with a request lifecycle: when ctx is already done the
// call short-circuits BEFORE touching any RNG stream — a cancelled call
// consumes no drop/shedding/jitter draws, so the i-th *executed* message
// on every link still observes the same draws no matter how many
// abandoned calls were interleaved with it (the per-seed determinism
// contract survives cancellation; pinned by the interleaving tests).
//
// A short-circuited call costs nothing and moves no bytes: it never
// reached the wire. Wave-level accounting stays with the caller — the
// legs a wave completed before the cancel keep their full cost, so a
// cancelled wave is costed as the partial wave it actually ran. The
// returned error wraps both ErrCancelled and the context's own error.
//
// Cancellation cannot interrupt a handler mid-execution: the simulator
// is synchronous, so a call that starts always completes and is costed
// in full. The deterministic cancellation points are the call
// boundaries.
func (n *Network) CallCtx(ctx context.Context, from, to NodeID, req any) (resp any, cost Cost, err error) {
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, Cost{}, fmt.Errorf("%w: %w", ErrCancelled, cerr)
		}
	}
	return n.Call(from, to, req)
}

// nodeDist is the normalized [0,1] distance between two nodes in the 2-D
// embedding. Positions are written once at registration, so the result
// is safe to carry outside n.mu.
func nodeDist(a, b *nodeState) float64 {
	dx, dy := a.x-b.x, a.y-b.y
	return math.Sqrt(dx*dx+dy*dy) / math.Sqrt2
}

// linkLatency computes the one-way delay for a link of the given
// normalized distance, drawing the jitter from the supplied stream.
func (n *Network) linkLatency(dist float64, draw func() float64) time.Duration {
	lat := float64(n.cfg.BaseLatency) + dist*float64(n.cfg.MaxExtra)
	if n.cfg.JitterFrac > 0 {
		j := 1 + n.cfg.JitterFrac*(2*draw()-1)
		lat *= j
	}
	return time.Duration(lat)
}

// Broadcast calls every node except the sender with the same payload, in
// parallel cost terms. It returns the number of successful deliveries and
// the combined cost.
func (n *Network) Broadcast(from NodeID, req any) (delivered int, cost Cost) {
	for _, id := range n.Nodes() {
		if id == from {
			continue
		}
		_, c, err := n.Call(from, id, req)
		cost = cost.Par(c)
		if err == nil {
			delivered++
		}
	}
	return delivered, cost
}
