package core

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/netsim"
)

// ShardPointer is the mutable DHT record listing the segment chain of one
// index shard. Segments themselves are immutable, content-addressed
// records; the pointer is versioned (DHT sequence numbers) so later
// updates win.
//
// Levels records each run's compaction tier under the tiered policy:
// Levels[i] is the tier of Digests[i] (0 = a raw round segment, k = the
// product of k merges). A nil Levels — a pre-tiered pointer, or one
// written by the monolithic policy — means every run is level 0. The
// tiered writer maintains the invariant that levels are non-increasing
// along the chain (appends land level-0 runs at the end; a merge
// replaces a level's contiguous run block with one higher-level run at
// the block's start), which is what makes every merge a contiguous,
// precedence-preserving splice under index.Merge's oldest-first
// semantics.
type ShardPointer struct {
	Digests []string // segment digests, oldest first
	Levels  []int    `json:",omitempty"` // compaction tier per digest (nil = all level 0)
	Version uint64
}

// levelOf returns the tier of run i, treating a nil/short Levels slice
// as level 0 (legacy pointers).
func (p ShardPointer) levelOf(i int) int {
	if i < len(p.Levels) {
		return p.Levels[i]
	}
	return 0
}

// IndexStats is the global record frontends use for BM25 collection
// statistics.
type IndexStats struct {
	Docs    int
	Tokens  uint64
	Version uint64
}

// StatsKey names the DHT record holding the global index statistics
// (exported so determinism soaks can diff raw DHT state).
const StatsKey = "qb:stats"

func encodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("core: encoding %T: %v", v, err))
	}
	return b
}

// readShardPointer fetches a shard's pointer record through a DHT node.
func readShardPointer(d *dht.Node, shard int) (ShardPointer, netsim.Cost, error) {
	return readShardPointerCtx(context.Background(), d, shard)
}

// readShardPointerCtx is readShardPointer with a request lifecycle: a
// cancelled context abandons the quorum read mid-lookup with the partial
// cost.
func readShardPointerCtx(ctx context.Context, d *dht.Node, shard int) (ShardPointer, netsim.Cost, error) {
	var ptr ShardPointer
	val, _, cost, err := d.GetCtx(ctx, dht.KeyOfString(index.ShardPointerKey(shard)))
	if err != nil {
		return ptr, cost, err
	}
	if err := json.Unmarshal(val, &ptr); err != nil {
		return ptr, cost, fmt.Errorf("core: corrupt shard pointer %d: %w", shard, err)
	}
	return ptr, cost, nil
}

// writeShardPointer stores a pointer with its version as DHT sequence.
func writeShardPointer(d *dht.Node, shard int, ptr ShardPointer) (netsim.Cost, error) {
	_, cost, err := d.Put(dht.KeyOfString(index.ShardPointerKey(shard)), encodeJSON(ptr), ptr.Version)
	return cost, err
}

// appendSegmentsToShard reads a shard pointer once, appends every digest
// not already present (preserving the given order) and writes back one
// bumped version — the batch read-modify-write of the round engine. A
// round that lands K segments on a shard costs one RMW, not K. The
// returned pointer reflects the written state so compaction can reuse it
// without re-reading; wrote reports whether a pointer write happened.
func appendSegmentsToShard(d *dht.Node, shard int, digests []string) (ptr ShardPointer, cost netsim.Cost, wrote bool, err error) {
	ptr, cost, err = readShardPointer(d, shard)
	if err != nil && err != dht.ErrNotFound {
		// Unreachable shard record: surface the error.
		return ptr, cost, false, err
	}
	existing := make(map[string]bool, len(ptr.Digests))
	for _, dg := range ptr.Digests {
		existing[dg] = true
	}
	appended := false
	for _, dg := range digests {
		if existing[dg] {
			continue
		}
		existing[dg] = true
		ptr.Digests = append(ptr.Digests, dg)
		appended = true
	}
	if !appended {
		return ptr, cost, false, nil
	}
	ptr.Version++
	wcost, err := writeShardPointer(d, shard, ptr)
	return ptr, cost.Seq(wcost), err == nil, err
}

// writeSegment stores an immutable segment record under its digest key.
func writeSegment(d *dht.Node, digestHex string, data []byte) (netsim.Cost, error) {
	_, cost, err := d.Put(dht.KeyOfString(index.SegmentKey(digestHex)), data, 0)
	return cost, err
}

// readSegment fetches and hash-verifies a segment by digest. Segments
// are immutable, so the first replica suffices (the digest check below
// catches a tampered one).
func readSegment(d *dht.Node, digestHex string) (*index.Segment, netsim.Cost, error) {
	return readSegmentCtx(context.Background(), d, digestHex)
}

// readSegmentCtx is readSegment with a request lifecycle.
func readSegmentCtx(ctx context.Context, d *dht.Node, digestHex string) (*index.Segment, netsim.Cost, error) {
	val, cost, err := d.GetImmutableCtx(ctx, dht.KeyOfString(index.SegmentKey(digestHex)))
	if err != nil {
		return nil, cost, err
	}
	if got := index.DigestOf(val); got != digestHex {
		return nil, cost, fmt.Errorf("core: segment %s failed hash verification", digestHex[:8])
	}
	seg, err := index.DecodeSegment(val)
	if err != nil {
		return nil, cost, err
	}
	return seg, cost, nil
}

// readStats fetches the global index statistics (zero value if absent).
func readStats(d *dht.Node) (IndexStats, netsim.Cost) {
	var st IndexStats
	val, _, cost, err := d.Get(dht.KeyOfString(StatsKey))
	if err != nil {
		return st, cost
	}
	if json.Unmarshal(val, &st) != nil {
		return IndexStats{}, cost
	}
	return st, cost
}

// bumpStats adds one document's token count to the global statistics.
func bumpStats(d *dht.Node, addDocs int, addTokens uint64) (netsim.Cost, error) {
	st, cost := readStats(d)
	st.Docs += addDocs
	st.Tokens += addTokens
	st.Version++
	_, wcost, err := d.Put(dht.KeyOfString(StatsKey), encodeJSON(st), st.Version)
	return cost.Seq(wcost), err
}

// compactionThreshold is the chain length at which a shard's segments
// are merged into one. Compaction is the off-chain optimization worker
// bees run so query-time merging stays cheap (ablation A4 measures the
// effect); the round engine checks it at most once per shard per round,
// against the pointer it just wrote.
const compactionThreshold = 8

// compactShardFromPtr merges a shard's segment chain into one segment
// when it has grown past the threshold, reusing the caller's
// already-read pointer (no extra DHT read). This is the monolithic
// policy (Config.MonolithicCompaction — the E19 control): every firing
// rewrites O(shard bytes). Returns the pointer as written, whether a
// compaction happened, and the merged bytes it rewrote.
func compactShardFromPtr(d *dht.Node, shard int, ptr ShardPointer) (ShardPointer, netsim.Cost, bool, int64, error) {
	var cost netsim.Cost
	if len(ptr.Digests) < compactionThreshold {
		return ptr, cost, false, 0, nil
	}
	var segs []*index.Segment
	for _, dg := range ptr.Digests {
		seg, c2, err := readSegment(d, dg)
		cost = cost.Seq(c2)
		if err != nil {
			return ptr, cost, false, 0, err
		}
		segs = append(segs, seg)
	}
	merged := index.Merge(segs)
	data := merged.Encode()
	digest := index.DigestOf(data)
	wcost, err := writeSegment(d, digest, data)
	cost = cost.Seq(wcost)
	if err != nil {
		return ptr, cost, false, 0, err
	}
	ptr.Digests = []string{digest}
	ptr.Version++
	wcost, err = writeShardPointer(d, shard, ptr)
	return ptr, cost.Seq(wcost), err == nil, int64(len(data)), err
}

// tieredFanout is the size-tiered compaction fan-out: once a level holds
// this many runs, all of them merge into one run at the next level. With
// one round segment landing per round, each ingested byte is rewritten
// once per level promotion, so steady-state bytes rewritten per round is
// O(round bytes · log_fanout(shard bytes)) instead of the monolithic
// policy's O(shard bytes).
const tieredFanout = 4

// tieredResult reports what one tiered shard materialization did beyond
// the plain append.
type tieredResult struct {
	// Compacted reports whether a merge happened; Level is the tier that
	// merged (meaningful only when Compacted).
	Compacted bool
	Level     int
	// CompactedBytes is the size of the merged segment written — the
	// write-amplification numerator next to the round's ingested bytes.
	CompactedBytes int64
}

// materializeShardTiered is the tiered write path: ONE pointer
// read-modify-write that both appends the round's level-0 segments and
// applies at most one merge. After the append, the lowest level holding
// at least tieredFanout runs (if any) has ALL its runs merged into one
// run at the next level — merging the whole bucket is what absorbs
// bursty rounds that land many segments on one shard at once. Tier
// selection, merge membership and the spliced chain order are pure
// functions of the pointer just read, never of map order or scheduling.
//
// Merged runs are restricted to the shard's own terms (numShards > 0):
// a round's level-0 segment covers the whole batch and lands on every
// shard its terms hash to, so merging it unrestricted would rewrite the
// full batch bytes once PER SHARD — write amplification multiplied by
// the shard fan-in. Restriction keeps each shard's rewrites to its own
// share (plus the full DocLens tombstone set; see Segment.Restrict),
// which is what holds global amplification to O(tiers), not
// O(tiers × shards). Queries never notice: a term is only ever looked
// up on the shard it hashes to.
//
// The chain a reader merges stays logically identical to the unmerged
// one: level-0 runs enter in chain order = Gen order, the levels along
// the chain are non-increasing, so a level's runs form a contiguous
// block and replacing the block with its index.Merge (oldest-first,
// newer-shadows-older) preserves document precedence exactly. Search
// results are byte-identical to the monolithic policy's
// (TestWriteTieredMatchesMonolithic asserts it).
func materializeShardTiered(d *dht.Node, shard, numShards int, digests []string) (ptr ShardPointer, cost netsim.Cost, wrote bool, res tieredResult, err error) {
	ptr, cost, err = readShardPointer(d, shard)
	if err != nil && err != dht.ErrNotFound {
		return ptr, cost, false, res, err
	}
	err = nil // a missing pointer just means a fresh shard
	existing := make(map[string]bool, len(ptr.Digests))
	for _, dg := range ptr.Digests {
		existing[dg] = true
	}
	// Normalize legacy pointers so Levels tracks Digests 1:1 from here on.
	for len(ptr.Levels) < len(ptr.Digests) {
		ptr.Levels = append(ptr.Levels, 0)
	}
	appended := false
	for _, dg := range digests {
		if existing[dg] {
			continue
		}
		existing[dg] = true
		ptr.Digests = append(ptr.Digests, dg)
		ptr.Levels = append(ptr.Levels, 0)
		appended = true
	}

	// Deterministic tier selection: the lowest level with a full bucket.
	counts := make(map[int]int)
	maxLevel := 0
	for i := range ptr.Digests {
		l := ptr.levelOf(i)
		counts[l]++
		if l > maxLevel {
			maxLevel = l
		}
	}
	mergeLevel := -1
	for l := 0; l <= maxLevel; l++ { // ascending scan, never map order
		if counts[l] >= tieredFanout {
			mergeLevel = l
			break
		}
	}

	if mergeLevel >= 0 {
		var segs []*index.Segment
		var keepDigests []string
		var keepLevels []int
		spliceAt := -1
		for i, dg := range ptr.Digests {
			if ptr.levelOf(i) == mergeLevel {
				seg, c2, rerr := readSegment(d, dg)
				cost = cost.Seq(c2)
				if rerr != nil {
					// Leave the chain unmerged; the append (if any) must
					// still land, so fall through to the pointer write.
					err = rerr
					break
				}
				segs = append(segs, seg)
				if spliceAt < 0 {
					spliceAt = len(keepDigests)
					keepDigests = append(keepDigests, "") // placeholder for the merged run
					keepLevels = append(keepLevels, mergeLevel+1)
				}
				continue
			}
			keepDigests = append(keepDigests, dg)
			keepLevels = append(keepLevels, ptr.levelOf(i))
		}
		if err == nil {
			merged := index.Merge(segs)
			if numShards > 0 {
				merged = merged.Restrict(func(t string) bool { return index.ShardOf(t, numShards) == shard })
			}
			data := merged.Encode()
			digest := index.DigestOf(data)
			var wcost netsim.Cost
			wcost, err = writeSegment(d, digest, data)
			cost = cost.Seq(wcost)
			if err == nil {
				keepDigests[spliceAt] = digest
				ptr.Digests = keepDigests
				ptr.Levels = keepLevels
				res.Compacted = true
				res.Level = mergeLevel
				res.CompactedBytes = int64(len(data))
			}
		}
	}

	if !appended && !res.Compacted {
		return ptr, cost, false, res, err
	}
	ptr.Version++
	wcost, werr := writeShardPointer(d, shard, ptr)
	cost = cost.Seq(wcost)
	if werr != nil {
		return ptr, cost, false, res, werr
	}
	return ptr, cost, true, res, err
}
