package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/netsim"
)

// ShardPointer is the mutable DHT record listing the segment chain of one
// index shard. Segments themselves are immutable, content-addressed
// records; the pointer is versioned (DHT sequence numbers) so later
// updates win.
type ShardPointer struct {
	Digests []string // segment digests, oldest first
	Version uint64
}

// IndexStats is the global record frontends use for BM25 collection
// statistics.
type IndexStats struct {
	Docs    int
	Tokens  uint64
	Version uint64
}

const statsKey = "qb:stats"

func encodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("core: encoding %T: %v", v, err))
	}
	return b
}

// readShardPointer fetches a shard's pointer record through a DHT node.
func readShardPointer(d *dht.Node, shard int) (ShardPointer, netsim.Cost, error) {
	var ptr ShardPointer
	val, _, cost, err := d.Get(dht.KeyOfString(index.ShardPointerKey(shard)))
	if err != nil {
		return ptr, cost, err
	}
	if err := json.Unmarshal(val, &ptr); err != nil {
		return ptr, cost, fmt.Errorf("core: corrupt shard pointer %d: %w", shard, err)
	}
	return ptr, cost, nil
}

// writeShardPointer stores a pointer with its version as DHT sequence.
func writeShardPointer(d *dht.Node, shard int, ptr ShardPointer) (netsim.Cost, error) {
	_, cost, err := d.Put(dht.KeyOfString(index.ShardPointerKey(shard)), encodeJSON(ptr), ptr.Version)
	return cost, err
}

// appendSegmentToShard reads a shard pointer, appends a digest if absent
// and writes back the bumped version.
func appendSegmentToShard(d *dht.Node, shard int, digest string) (netsim.Cost, error) {
	ptr, cost, err := readShardPointer(d, shard)
	if err != nil && err != dht.ErrNotFound {
		// Unreachable shard record: surface the error.
		return cost, err
	}
	for _, existing := range ptr.Digests {
		if existing == digest {
			return cost, nil
		}
	}
	ptr.Digests = append(ptr.Digests, digest)
	ptr.Version++
	wcost, err := writeShardPointer(d, shard, ptr)
	return cost.Seq(wcost), err
}

// writeSegment stores an immutable segment record under its digest key.
func writeSegment(d *dht.Node, digestHex string, data []byte) (netsim.Cost, error) {
	_, cost, err := d.Put(dht.KeyOfString(index.SegmentKey(digestHex)), data, 0)
	return cost, err
}

// readSegment fetches and hash-verifies a segment by digest. Segments
// are immutable, so the first replica suffices (the digest check below
// catches a tampered one).
func readSegment(d *dht.Node, digestHex string) (*index.Segment, netsim.Cost, error) {
	val, cost, err := d.GetImmutable(dht.KeyOfString(index.SegmentKey(digestHex)))
	if err != nil {
		return nil, cost, err
	}
	if got := index.DigestOf(val); got != digestHex {
		return nil, cost, fmt.Errorf("core: segment %s failed hash verification", digestHex[:8])
	}
	seg, err := index.DecodeSegment(val)
	if err != nil {
		return nil, cost, err
	}
	return seg, cost, nil
}

// readStats fetches the global index statistics (zero value if absent).
func readStats(d *dht.Node) (IndexStats, netsim.Cost) {
	var st IndexStats
	val, _, cost, err := d.Get(dht.KeyOfString(statsKey))
	if err != nil {
		return st, cost
	}
	if json.Unmarshal(val, &st) != nil {
		return IndexStats{}, cost
	}
	return st, cost
}

// bumpStats adds one document's token count to the global statistics.
func bumpStats(d *dht.Node, addDocs int, addTokens uint64) (netsim.Cost, error) {
	st, cost := readStats(d)
	st.Docs += addDocs
	st.Tokens += addTokens
	st.Version++
	_, wcost, err := d.Put(dht.KeyOfString(statsKey), encodeJSON(st), st.Version)
	return cost.Seq(wcost), err
}

// mergeShardForStore fetches every segment of a shard and compacts them
// into one when the chain grows long; returns the read cost. Compaction
// is the off-chain optimization worker bees run so query-time merging
// stays cheap (ablation A4 measures the effect).
const compactionThreshold = 8

func compactShard(d *dht.Node, shard int) (netsim.Cost, error) {
	ptr, cost, err := readShardPointer(d, shard)
	if err != nil || len(ptr.Digests) < compactionThreshold {
		return cost, err
	}
	var segs []*index.Segment
	for _, dg := range ptr.Digests {
		seg, c2, err := readSegment(d, dg)
		cost = cost.Seq(c2)
		if err != nil {
			return cost, err
		}
		segs = append(segs, seg)
	}
	merged := index.Merge(segs)
	data := merged.Encode()
	digest := index.DigestOf(data)
	wcost, err := writeSegment(d, digest, data)
	cost = cost.Seq(wcost)
	if err != nil {
		return cost, err
	}
	ptr.Digests = []string{digest}
	ptr.Version++
	wcost, err = writeShardPointer(d, shard, ptr)
	return cost.Seq(wcost), err
}
