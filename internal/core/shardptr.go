package core

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/netsim"
)

// ShardPointer is the mutable DHT record listing the segment chain of one
// index shard. Segments themselves are immutable, content-addressed
// records; the pointer is versioned (DHT sequence numbers) so later
// updates win.
type ShardPointer struct {
	Digests []string // segment digests, oldest first
	Version uint64
}

// IndexStats is the global record frontends use for BM25 collection
// statistics.
type IndexStats struct {
	Docs    int
	Tokens  uint64
	Version uint64
}

// StatsKey names the DHT record holding the global index statistics
// (exported so determinism soaks can diff raw DHT state).
const StatsKey = "qb:stats"

func encodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("core: encoding %T: %v", v, err))
	}
	return b
}

// readShardPointer fetches a shard's pointer record through a DHT node.
func readShardPointer(d *dht.Node, shard int) (ShardPointer, netsim.Cost, error) {
	return readShardPointerCtx(context.Background(), d, shard)
}

// readShardPointerCtx is readShardPointer with a request lifecycle: a
// cancelled context abandons the quorum read mid-lookup with the partial
// cost.
func readShardPointerCtx(ctx context.Context, d *dht.Node, shard int) (ShardPointer, netsim.Cost, error) {
	var ptr ShardPointer
	val, _, cost, err := d.GetCtx(ctx, dht.KeyOfString(index.ShardPointerKey(shard)))
	if err != nil {
		return ptr, cost, err
	}
	if err := json.Unmarshal(val, &ptr); err != nil {
		return ptr, cost, fmt.Errorf("core: corrupt shard pointer %d: %w", shard, err)
	}
	return ptr, cost, nil
}

// writeShardPointer stores a pointer with its version as DHT sequence.
func writeShardPointer(d *dht.Node, shard int, ptr ShardPointer) (netsim.Cost, error) {
	_, cost, err := d.Put(dht.KeyOfString(index.ShardPointerKey(shard)), encodeJSON(ptr), ptr.Version)
	return cost, err
}

// appendSegmentsToShard reads a shard pointer once, appends every digest
// not already present (preserving the given order) and writes back one
// bumped version — the batch read-modify-write of the round engine. A
// round that lands K segments on a shard costs one RMW, not K. The
// returned pointer reflects the written state so compaction can reuse it
// without re-reading; wrote reports whether a pointer write happened.
func appendSegmentsToShard(d *dht.Node, shard int, digests []string) (ptr ShardPointer, cost netsim.Cost, wrote bool, err error) {
	ptr, cost, err = readShardPointer(d, shard)
	if err != nil && err != dht.ErrNotFound {
		// Unreachable shard record: surface the error.
		return ptr, cost, false, err
	}
	existing := make(map[string]bool, len(ptr.Digests))
	for _, dg := range ptr.Digests {
		existing[dg] = true
	}
	appended := false
	for _, dg := range digests {
		if existing[dg] {
			continue
		}
		existing[dg] = true
		ptr.Digests = append(ptr.Digests, dg)
		appended = true
	}
	if !appended {
		return ptr, cost, false, nil
	}
	ptr.Version++
	wcost, err := writeShardPointer(d, shard, ptr)
	return ptr, cost.Seq(wcost), err == nil, err
}

// writeSegment stores an immutable segment record under its digest key.
func writeSegment(d *dht.Node, digestHex string, data []byte) (netsim.Cost, error) {
	_, cost, err := d.Put(dht.KeyOfString(index.SegmentKey(digestHex)), data, 0)
	return cost, err
}

// readSegment fetches and hash-verifies a segment by digest. Segments
// are immutable, so the first replica suffices (the digest check below
// catches a tampered one).
func readSegment(d *dht.Node, digestHex string) (*index.Segment, netsim.Cost, error) {
	return readSegmentCtx(context.Background(), d, digestHex)
}

// readSegmentCtx is readSegment with a request lifecycle.
func readSegmentCtx(ctx context.Context, d *dht.Node, digestHex string) (*index.Segment, netsim.Cost, error) {
	val, cost, err := d.GetImmutableCtx(ctx, dht.KeyOfString(index.SegmentKey(digestHex)))
	if err != nil {
		return nil, cost, err
	}
	if got := index.DigestOf(val); got != digestHex {
		return nil, cost, fmt.Errorf("core: segment %s failed hash verification", digestHex[:8])
	}
	seg, err := index.DecodeSegment(val)
	if err != nil {
		return nil, cost, err
	}
	return seg, cost, nil
}

// readStats fetches the global index statistics (zero value if absent).
func readStats(d *dht.Node) (IndexStats, netsim.Cost) {
	var st IndexStats
	val, _, cost, err := d.Get(dht.KeyOfString(StatsKey))
	if err != nil {
		return st, cost
	}
	if json.Unmarshal(val, &st) != nil {
		return IndexStats{}, cost
	}
	return st, cost
}

// bumpStats adds one document's token count to the global statistics.
func bumpStats(d *dht.Node, addDocs int, addTokens uint64) (netsim.Cost, error) {
	st, cost := readStats(d)
	st.Docs += addDocs
	st.Tokens += addTokens
	st.Version++
	_, wcost, err := d.Put(dht.KeyOfString(StatsKey), encodeJSON(st), st.Version)
	return cost.Seq(wcost), err
}

// compactionThreshold is the chain length at which a shard's segments
// are merged into one. Compaction is the off-chain optimization worker
// bees run so query-time merging stays cheap (ablation A4 measures the
// effect); the round engine checks it at most once per shard per round,
// against the pointer it just wrote.
const compactionThreshold = 8

// compactShardFromPtr merges a shard's segment chain into one segment
// when it has grown past the threshold, reusing the caller's
// already-read pointer (no extra DHT read). Reports whether a
// compaction happened.
func compactShardFromPtr(d *dht.Node, shard int, ptr ShardPointer) (netsim.Cost, bool, error) {
	var cost netsim.Cost
	if len(ptr.Digests) < compactionThreshold {
		return cost, false, nil
	}
	var segs []*index.Segment
	for _, dg := range ptr.Digests {
		seg, c2, err := readSegment(d, dg)
		cost = cost.Seq(c2)
		if err != nil {
			return cost, false, err
		}
		segs = append(segs, seg)
	}
	merged := index.Merge(segs)
	data := merged.Encode()
	digest := index.DigestOf(data)
	wcost, err := writeSegment(d, digest, data)
	cost = cost.Seq(wcost)
	if err != nil {
		return cost, false, err
	}
	ptr.Digests = []string{digest}
	ptr.Version++
	wcost, err = writeShardPointer(d, shard, ptr)
	return cost.Seq(wcost), err == nil, err
}
