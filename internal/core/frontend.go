package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/netsim"
	"repro/internal/store"
)

// Frontend is QueenBee's query side: "the HTML+Javascript frontend ...
// responsible for composing the search results by intersecting the
// matched inverted lists, ranking the results, and displaying relevant
// ads." It is a stateless client of the DHT and the chain: it owns a DWeb
// peer for reads and caches immutable segments by content address.
//
// Queries (Search*, Execute) are safe for concurrent use and, with the
// default per-link netsim streams, same-seed results are byte-identical
// whether queries run sequentially or raced across goroutines (see
// docs/serving.md). Both caches are byte-budgeted LRUs so a long-lived
// serving frontend stays bounded under publish churn, and concurrent
// queries needing the same segment digest share one DHT fetch
// (singleflight) instead of issuing duplicates.
type Frontend struct {
	cluster *Cluster
	peer    *store.Peer

	mu          sync.Mutex
	segCache    *lruCache[string, *index.Segment] // digest → segment (immutable)
	chainCache  *lruCache[int, chainEntry]        // shard → merged view of its segment chain
	segFlight   map[string]*segFetch              // digest → in-flight DHT fetch
	chainFlight map[int]*chainFetch               // shard → in-flight chain rebuild
	docURL      map[index.DocID]string
	docURLGen   int // page count when docURL was built

	stats        IndexStats
	statsGen     int // page count when stats were fetched; -1 before the first fetch
	statsFlight  *statsFetch
	statsFetches int64

	// Memoized rank view: PageRanks() copies the whole rank vector and
	// the old scoring path then scanned it for the max on every query —
	// O(corpus) before a single doc was scored. Both are now cached and
	// keyed on the contract's rank generation (not the cached-stats page
	// count: page registrations don't move ranks, and rank epochs can
	// finalize without new pages).
	ranks     map[string]float64
	ranksMax  float64
	ranksGen  uint64
	ranksInit bool

	// gallop selects the intersection kernel (A1); queries snapshot it at
	// start, so flipping it mid-flight never races an executing plan.
	gallop atomic.Bool

	// wand selects the top-k executor: block-max WAND early termination
	// (the default) or exhaustive candidate scoring
	// (Config.ExhaustiveScoring; the E18 baseline). Results are
	// byte-identical either way; snapshotted per query like gallop.
	wand atomic.Bool

	// hedge, when set by a FrontendPool, is the buddy frontend this one
	// duplicates its slowest shard fetch onto (hedged reads); hedges
	// counts the duplicates issued, and hedgeBill (also pool-set) books
	// each hedge's simulated time against the buddy's serving load.
	hedge     *Frontend
	hedges    atomic.Int64
	hedgeBill func(time.Duration)
}

// segFetch is one in-flight segment download; duplicate requesters block
// on done and share the result.
type segFetch struct {
	done chan struct{}
	seg  *index.Segment
	cost netsim.Cost
	err  error
}

// statsFetch is one in-flight stats read, singleflighted like segments.
type statsFetch struct {
	done chan struct{}
	st   IndexStats
	cost netsim.Cost
}

// chainFetch is one in-flight chain rebuild (segment fetches + merge)
// for a shard. Concurrent queries that resolved the same digest chain
// share it: the segment fetches already dedup via segFlight, but the
// merge itself is the expensive decode-everything step worth running
// once, not once per racing query.
type chainFetch struct {
	key  string // the digest chain being built
	done chan struct{}
	seg  *index.Segment
	cost netsim.Cost // segment fetches; excludes each caller's own pointer read
	err  error
}

// NewFrontend attaches a frontend to one DWeb peer of the cluster.
func NewFrontend(c *Cluster, peer *store.Peer) *Frontend {
	f := &Frontend{
		cluster:     c,
		peer:        peer,
		segCache:    newLRUCache[string, *index.Segment](c.cfg.SegCacheBytes),
		chainCache:  newLRUCache[int, chainEntry](c.cfg.ChainCacheBytes),
		segFlight:   make(map[string]*segFetch),
		chainFlight: make(map[int]*chainFetch),
		docURL:      make(map[index.DocID]string),
		statsGen:    -1,
	}
	f.gallop.Store(true)
	f.wand.Store(!c.cfg.ExhaustiveScoring)
	return f
}

// SetUseGallopIntersection selects the intersection kernel (ablation A1).
// Safe while queries are in flight: each query snapshots the option when
// it starts executing.
func (f *Frontend) SetUseGallopIntersection(on bool) { f.gallop.Store(on) }

// UseGallopIntersection reports the currently selected kernel.
func (f *Frontend) UseGallopIntersection() bool { return f.gallop.Load() }

// SetUseBlockMax selects the top-k executor: block-max WAND early
// termination (true) or exhaustive scoring (false). Safe while queries
// are in flight: each query snapshots the option when it starts.
func (f *Frontend) SetUseBlockMax(on bool) { f.wand.Store(on) }

// UseBlockMax reports the currently selected top-k executor.
func (f *Frontend) UseBlockMax() bool { return f.wand.Load() }

// chainEntry caches the merged view of one shard's segment chain, keyed by
// the exact digest chain it was built from. The entry stays valid until
// the shard pointer lists a different chain (a new head digest), so warm
// queries skip both the segment fetches and the re-merge.
type chainEntry struct {
	key string // "," joined segment digests, oldest first
	seg *index.Segment
}

// Result is one ranked search hit.
type Result struct {
	URL     string
	CID     string
	Score   float64
	Rank    float64 // page rank component
	Snippet string  // populated when SearchOptions.Snippets is set
}

// Ad is one displayed advertisement.
type Ad struct {
	ID          uint64
	Keywords    []string
	BidPerClick uint64
}

// ScoreStats counts the ranking stage's work: postings decoded or
// probed, skip blocks passed without decoding, and candidate documents
// never fully scored (block-max early termination). Exhaustive scoring
// reports zero skips; the scaling benchmark and E18 read these to show
// sublinear growth.
type ScoreStats struct {
	PostingsScanned int64
	BlocksSkipped   int64
	DocsSkipped     int64
}

// SearchResponse is the composed answer for one query.
type SearchResponse struct {
	Results []Result
	Ads     []Ad
	Cost    netsim.Cost
	// ScoreStats records the ranking stage's work for this query.
	ScoreStats ScoreStats
	// Terms are the positive analyzed terms (excluded terms drive
	// shard loading but not scoring, ads or snippets).
	Terms []string
	// Total counts every candidate that survived boolean evaluation,
	// before ranking truncated to the requested page.
	Total int
	// Explain is the execution trace; nil unless Query.Explain was set.
	Explain *Explain
	// Degraded is set when the answer was composed from a partial shard
	// wave (Config.DegradedReads); nil on a complete answer.
	Degraded *Degraded
}

// Degraded is the typed warning attached to a partial answer: which
// shards stayed unreachable after retries, the fraction of the wave
// that did load, and the error that failed the first missing shard.
type Degraded struct {
	FailedShards []int
	// Completeness is loaded shards / wave shards, in (0, 1).
	Completeness float64
	Cause        string
}

// Search runs the full frontend pipeline for a conjunctive (AND) query.
// SearchWith (query.go) exposes OR/phrase modes and snippets.
func (f *Frontend) Search(query string, k int) (SearchResponse, error) {
	return f.SearchWith(query, SearchOptions{Mode: ModeAND, K: k})
}

// scoreAndCompose ranks the candidate documents with BM25 × PageRank,
// keeps the requested page (offset/limit over the deterministic total
// order), and fills in results and ads — steps 3–5 of the frontend
// pipeline, shared by every query mode. The budget is checked once
// before the collection-statistics read (the stage's only RPC; ranking
// itself is pure CPU): a spent lifecycle returns ErrDeadlineExceeded
// without composing anything.
//
// Three executors share this stage, all producing byte-identical
// rankings (docs/serving.md "Early termination"):
//
//   - direct (non-nil direct cursor): a bare-term query walks its one
//     posting list block by block, skipping blocks whose block-max bound
//     cannot beat the current top-(offset+limit) threshold;
//   - WAND (useWAND, consistent doc lengths): candidates stream against
//     per-term block cursors with frontier bounds and skip-pointer
//     galloping;
//   - exhaustive (fallback and ablation): every candidate is scored via
//     one forward merge cursor per term — O(postings), not the
//     O(docs·terms·log n) of the per-(doc,term) binary searches this
//     replaced.
func (f *Frontend) scoreAndCompose(bud reqBudget, resp *SearchResponse, terms []string,
	merged map[string]index.PostingList, segsByShard map[int]*index.Segment,
	docs []index.DocID, limit, offset int, useWAND bool, direct *index.TermCursor) error {

	if err := bud.check(resp.Cost.Latency); err != nil {
		return err
	}
	// Collection statistics only shift BM25 constants, so they are
	// cached and refreshed only when the page count changes. The fetch
	// leader always runs to completion (Background ctx): a stats read
	// abandoned mid-flight would cache a zero snapshot for a whole
	// generation and skew every later query's BM25 constants.
	stats, cost := f.cachedStats()
	resp.Cost = resp.Cost.Seq(cost)
	scorer := index.NewScorer(index.CorpusStats{
		DocCount:  max(stats.Docs, 1),
		AvgDocLen: avgDocLen(stats),
	}, f.cluster.cfg.RankWeight)

	ranks, maxRank := f.pageRankView()
	urls := f.docURLView()
	rankOf := func(d index.DocID) float64 { return ranks[urls[d]] }
	avgLen := uint32(avgDocLen(stats))

	// Shards are probed in ascending id order so collisions resolve the
	// same way on every run.
	shardIDs := make([]int, 0, len(segsByShard))
	for sid := range segsByShard {
		shardIDs = append(shardIDs, sid)
	}
	sort.Ints(shardIDs)

	k := offset + limit
	var top []index.ScoredDoc
	var wstats index.WANDStats
	switch {
	case direct != nil:
		// Bare-term fast path: the single shard's postings drive scoring
		// directly, no candidate list materialized. Doc lengths probe the
		// loaded shard segments per doc — with one shard (always, for one
		// term) that is exactly the lens-map value the exhaustive path
		// would have built from the same candidates.
		docLen := func(d index.DocID) uint32 {
			for _, sid := range shardIDs {
				if l, ok := segsByShard[sid].DocLens[d]; ok {
					return l
				}
			}
			return avgLen
		}
		top = index.WANDTopKDirect(direct, scorer, docLen, rankOf, maxRank, k, &wstats)
	default:
		// One DocID→length lookup, built up front: each candidate probes
		// every loaded shard at most once, instead of rescanning the
		// shards for every (doc, term) pair in the scoring loop below.
		// The same pass detects cross-shard disagreement on a doc's
		// length (possible transiently under churn when shard chains
		// re-index a page at different times): block-max bounds are
		// computed from each segment's own lengths and are only safe
		// against scores that use those lengths, so any disagreement
		// falls back to exhaustive scoring for this query.
		lens := make(map[index.DocID]uint32, len(docs))
		lensConsistent := true
		for _, d := range docs {
			have := false
			var first uint32
			for _, sid := range shardIDs {
				l, ok := segsByShard[sid].DocLens[d]
				if !ok {
					continue
				}
				if !have {
					first, have = l, true
					lens[d] = l
					if len(shardIDs) == 1 {
						break
					}
				} else if l != first {
					lensConsistent = false
				}
			}
		}
		docLen := func(d index.DocID) uint32 {
			if l, ok := lens[d]; ok {
				return l
			}
			return avgLen
		}

		if useWAND && lensConsistent {
			cursors := make([]*index.TermCursor, len(terms))
			for i, t := range terms {
				if seg, ok := segsByShard[index.ShardOf(t, f.cluster.cfg.NumShards)]; ok {
					cursors[i] = seg.Cursor(t)
				}
			}
			top = index.WANDTopK(docs, cursors, scorer, docLen, rankOf, maxRank, k, &wstats)
		} else {
			// Exhaustive scoring: every candidate, every term — but via
			// forward merge cursors (candidates and postings are both
			// ascending), not a binary search per (doc, term) pair.
			idx := make([]int, len(terms))
			pls := make([]index.PostingList, len(terms))
			for i, t := range terms {
				pls[i] = merged[t]
			}
			scored := make([]index.ScoredDoc, 0, len(docs))
			for _, d := range docs {
				var text float64
				for ti, pl := range pls {
					j := idx[ti]
					for j < len(pl) && pl[j].Doc < d {
						j++
					}
					idx[ti] = j
					wstats.PostingsScanned++
					if j < len(pl) && pl[j].Doc == d {
						text += scorer.TermScore(pl[j].TF, docLen(d), len(pl))
					}
				}
				scored = append(scored, index.ScoredDoc{Doc: d, Score: scorer.Combine(text, rankOf(d), maxRank)})
			}
			top = index.TopK(scored, k)
		}
	}
	resp.ScoreStats = ScoreStats{
		PostingsScanned: wstats.PostingsScanned,
		BlocksSkipped:   wstats.BlocksSkipped,
		DocsSkipped:     wstats.DocsSkipped,
	}
	if offset >= len(top) {
		top = nil
	} else {
		top = top[offset:]
	}

	for _, sd := range top {
		url := urls[sd.Doc]
		if url == "" {
			continue // unindexed or collision; skip
		}
		rec, ok := f.cluster.QB.Page(url)
		if !ok {
			continue
		}
		resp.Results = append(resp.Results, Result{
			URL:   url,
			CID:   rec.CID,
			Score: sd.Score,
			Rank:  ranks[url],
		})
	}

	for _, ad := range f.cluster.QB.AdsForTerms(terms) {
		resp.Ads = append(resp.Ads, Ad{ID: ad.ID, Keywords: ad.Keywords, BidPerClick: ad.BidPerClick})
		if len(resp.Ads) == 3 {
			break
		}
	}
	return nil
}

// fetchSegment returns the immutable segment for a digest: LRU cache
// first, then one shared DHT fetch. Concurrent requests for the same
// digest singleflight — duplicates block until the leader's fetch lands
// and share its result and cost (they observed the same simulated wall
// time; the bytes moved on the wire only once and are counted once in the
// network's global stats).
func (f *Frontend) fetchSegment(digest string) (*index.Segment, netsim.Cost, error) {
	return f.fetchSegmentCtx(context.Background(), digest)
}

// fetchSegmentCtx is fetchSegment with a request lifecycle. The leader
// fetches under its own ctx, so a cancelled leader abandons the DHT
// lookup mid-wave; its flight then reports the cancellation and caches
// nothing. A waiter whose own lifecycle is still live does not inherit
// that fate — it retries as the new leader — so one cancelled query
// never fails the innocents coalesced behind it, and the singleflight
// table never wedges on a dead flight.
func (f *Frontend) fetchSegmentCtx(ctx context.Context, digest string) (*index.Segment, netsim.Cost, error) {
	for {
		f.mu.Lock()
		if seg, ok := f.segCache.get(digest); ok {
			f.mu.Unlock()
			return seg, netsim.Cost{}, nil
		}
		if fl, ok := f.segFlight[digest]; ok {
			f.mu.Unlock()
			<-fl.done
			if isCancelled(fl.err) && ctx.Err() == nil {
				continue // the leader's request died, not the fetch: retry
			}
			return fl.seg, fl.cost, fl.err
		}
		fl := &segFetch{done: make(chan struct{})}
		f.segFlight[digest] = fl
		f.mu.Unlock()

		fl.seg, fl.cost, fl.err = readSegmentCtx(ctx, f.peer.DHT(), digest)
		var size int64
		if fl.err == nil {
			size = fl.seg.SizeBytes()
		}
		f.mu.Lock()
		delete(f.segFlight, digest)
		if fl.err == nil {
			f.segCache.add(digest, fl.seg, size)
		}
		f.mu.Unlock()
		close(fl.done)
		return fl.seg, fl.cost, fl.err
	}
}

// loadShard fetches a shard's segment chain and returns its merged view.
// Two cache layers keep warm queries cheap: segments are immutable and
// cached per digest, and the merged chain is cached per shard keyed by the
// digest chain — the pointer read is the only per-query DHT traffic until
// the chain changes. Single-segment chains (the common case after
// compaction) skip merging entirely, so their postings stay lazy.
func (f *Frontend) loadShard(shard int) (*index.Segment, netsim.Cost, error) {
	return f.loadShardCtx(reqBudget{}, 0, shard)
}

// loadShardCtx is one wave leg with a request lifecycle. e0 is the
// query's simulated elapsed time when the wave launched; the leg's own
// sequential steps (pointer read, then each segment fetch) extend it,
// and the budget is re-checked before every step — a spent budget
// abandons the rest of the chain with the partial cost and a typed
// ErrDeadlineExceeded. A leader abandoned mid-chain reports the
// lifecycle error on its flight; waiters whose own budget is still live
// retry as the new leader, so the chain singleflight never wedges and
// never fails an innocent query.
func (f *Frontend) loadShardCtx(bud reqBudget, e0 time.Duration, shard int) (*index.Segment, netsim.Cost, error) {
	if err := bud.check(e0); err != nil {
		return nil, netsim.Cost{}, err
	}
	ptr, cost, err := readShardPointerCtx(bud.context(), f.peer.DHT(), shard)
	if err == dht.ErrNotFound {
		return index.NewSegment(0), cost, nil
	}
	if err != nil {
		return nil, cost, asLifecycle(err)
	}
	key := strings.Join(ptr.Digests, ",")
	for {
		f.mu.Lock()
		ce, cached := f.chainCache.peek(shard)
		switch {
		case cached && ce.key == key:
			f.chainCache.hits++
			f.chainCache.promote(shard)
			f.mu.Unlock()
			return ce.seg, cost, nil
		case cached:
			// The shard head moved on: a real miss, and the stale view must
			// neither serve nor outlive genuinely warm entries.
			f.chainCache.misses++
			f.chainCache.drop(shard)
		default:
			f.chainCache.misses++
		}
		if fl, ok := f.chainFlight[shard]; ok && fl.key == key {
			f.mu.Unlock()
			<-fl.done
			if lifecycleErr(fl.err) && bud.check(e0+cost.Latency) == nil {
				continue // the leader's request died, not the chain: retry
			}
			return fl.seg, cost.Seq(fl.cost), fl.err
		}
		fl := &chainFetch{key: key, done: make(chan struct{})}
		f.chainFlight[shard] = fl
		f.mu.Unlock()

		segs := make([]*index.Segment, 0, len(ptr.Digests))
		for _, digest := range ptr.Digests {
			// The chain's fetches are sequential within this leg, so the
			// leg-local elapsed time grows step by step — this is the
			// "cancelled between shard fetches" cut point.
			if err := bud.check(e0 + cost.Latency + fl.cost.Latency); err != nil {
				fl.err = err
				break
			}
			seg, c2, err := f.fetchSegmentCtx(bud.context(), digest)
			fl.cost = fl.cost.Seq(c2)
			if err != nil {
				fl.err = asLifecycle(err)
				break
			}
			segs = append(segs, seg)
		}
		var size int64
		if fl.err == nil {
			fl.seg = index.Merge(segs)
			size = fl.seg.SizeBytes()
		}
		f.mu.Lock()
		if f.chainFlight[shard] == fl {
			delete(f.chainFlight, shard)
		}
		if fl.err == nil {
			f.chainCache.add(shard, chainEntry{key: key, seg: fl.seg}, size)
		}
		f.mu.Unlock()
		close(fl.done)
		return fl.seg, cost.Seq(fl.cost), fl.err
	}
}

// loadShards resolves a query's distinct shards as one concurrent fetch
// wave: the independent DHT lookups run on their own goroutines, and the
// per-link netsim streams keep same-seed results reproducible no matter
// how the fetches interleave. The wave's cost folds Par in shard order —
// the slowest shard, not the sum. When the network runs the legacy
// shared RNG stream (or the wave has one shard), execution stays
// sequential so historical golden costs cannot shift.
//
// On failure every fetch was still in flight, so the full wave cost is
// reported alongside the error of the lowest-indexed failing shard —
// Explain's shard-wave accounting stays consistent for failed waves
// (asserted in plan_test.go). The map still carries every shard that DID
// load, so callers with DegradedReads enabled can compose a partial
// answer instead of discarding the wave.
func (f *Frontend) loadShards(shards []int) (map[int]*index.Segment, netsim.Cost, error) {
	return f.loadShardsCtx(reqBudget{}, 0, shards)
}

// loadShardsCtx is loadShards with a request lifecycle and, on pool
// frontends, hedged reads. Every leg starts at the wave's base elapsed
// time e0 (parallel legs share a launch instant; sequential steps inside
// a leg extend it), and a spent budget abandons each leg's remaining
// steps — the wave then reports the partial cost of the work that ran
// and a typed ErrDeadlineExceeded.
func (f *Frontend) loadShardsCtx(bud reqBudget, e0 time.Duration, shards []int) (map[int]*index.Segment, netsim.Cost, error) {
	segs := make([]*index.Segment, len(shards))
	costs := make([]netsim.Cost, len(shards))
	errs := make([]error, len(shards))
	runWave(len(shards), !f.cluster.Net.SharedStream(), func(i int) {
		segs[i], costs[i], errs[i] = f.loadShardCtx(bud, e0, shards[i])
	})
	f.hedgeLeg(bud, e0, shards, segs, costs, errs)
	out := make(map[int]*index.Segment, len(shards))
	var cost netsim.Cost
	var firstErr error
	for i := range shards {
		cost = cost.Par(costs[i])
		if errs[i] != nil {
			// A spent lifecycle outranks shard errors: the query was
			// stopped, not the index broken.
			if firstErr == nil || (lifecycleErr(errs[i]) && !lifecycleErr(firstErr)) {
				firstErr = fmt.Errorf("shard %d: %w", shards[i], errs[i])
			}
			continue
		}
		out[shards[i]] = segs[i]
	}
	return out, cost, firstErr
}

// hedgeLeg duplicates one leg of a completed shard wave on the
// buddy frontend (hedged reads, pool frontends only): the fetch reruns
// against the buddy's own peer, caches and links, the first reply wins
// the latency, and both replies pay their bytes and messages. The
// hedged leg is the lowest-indexed FAILED leg when the wave has one —
// the duplicate is the retry that can actually rescue the wave
// (single-frontend fault tolerance) — and otherwise the slowest
// successful leg, where first-reply-wins shaves the tail. The results
// are byte-identical either way (both frontends read the same
// immutable DHT state), so hedging shifts only costs, never responses.
// Waves stopped by the lifecycle are not hedged: the client is gone.
func (f *Frontend) hedgeLeg(bud reqBudget, e0 time.Duration, shards []int, segs []*index.Segment, costs []netsim.Cost, errs []error) {
	if f.hedge == nil || len(shards) == 0 {
		return
	}
	slowest, failed := 0, -1
	for i := range shards {
		if lifecycleErr(errs[i]) {
			return
		}
		if errs[i] != nil && failed < 0 {
			failed = i
		}
		if costs[i].Latency > costs[slowest].Latency {
			slowest = i
		}
	}
	if failed >= 0 {
		slowest = failed
	} else if costs[slowest].Latency == 0 {
		// Every leg was free: there is no latency to win, so a hedge
		// would only burn duplicate DHT traffic.
		return
	}
	hseg, hcost, herr := f.hedge.loadShardCtx(bud, e0, shards[slowest])
	if lifecycleErr(herr) {
		return // the lifecycle ended mid-hedge; keep the primary leg as-is
	}
	f.hedges.Add(1)
	if f.hedgeBill != nil {
		// The duplicate ran on the buddy's device: its simulated time is
		// the buddy's serving load, not this frontend's.
		f.hedgeBill(hcost.Latency)
	}
	pc := costs[slowest]
	merged := netsim.Cost{Bytes: pc.Bytes + hcost.Bytes, Msgs: pc.Msgs + hcost.Msgs}
	switch {
	case errs[slowest] == nil && herr == nil:
		merged.Latency = min(pc.Latency, hcost.Latency)
	case errs[slowest] != nil && herr == nil:
		segs[slowest], errs[slowest] = hseg, nil
		merged.Latency = hcost.Latency
	case errs[slowest] == nil:
		merged.Latency = pc.Latency
	default:
		// Both replies failed; the caller observes the later failure.
		merged.Latency = max(pc.Latency, hcost.Latency)
	}
	costs[slowest] = merged
}

// cachedStats returns the collection statistics, re-reading from the DHT
// only when the registered page count changed since the last fetch. The
// fetched state is an explicit generation (-1 = never fetched), not a
// "Docs > 0" sentinel — an empty corpus is a valid cached answer, not a
// reason to hit the DHT on every query.
// Concurrent queries arriving on a stale generation share one DHT read
// (the same singleflight shape as fetchSegment).
func (f *Frontend) cachedStats() (IndexStats, netsim.Cost) {
	n := f.cluster.QB.PageCount()
	f.mu.Lock()
	if n == f.statsGen {
		st := f.stats
		f.mu.Unlock()
		return st, netsim.Cost{}
	}
	if fl := f.statsFlight; fl != nil {
		f.mu.Unlock()
		<-fl.done
		return fl.st, fl.cost
	}
	fl := &statsFetch{done: make(chan struct{})}
	f.statsFlight = fl
	f.mu.Unlock()
	fl.st, fl.cost = readStats(f.peer.DHT())
	f.mu.Lock()
	f.stats, f.statsGen = fl.st, n
	f.statsFlight = nil
	f.statsFetches++
	f.mu.Unlock()
	close(fl.done)
	return fl.st, fl.cost
}

// pageRankView returns the rank vector and its maximum, memoized on the
// contract's rank generation: queries between rank-epoch finalizations
// reuse one snapshot instead of copying and scanning the whole O(corpus)
// vector each time. The generation is read before the vector, so a
// concurrent finalization can at worst store fresh ranks under a stale
// generation — the next query simply refetches. The returned map is a
// private snapshot, never mutated, so callers may read it without f.mu.
func (f *Frontend) pageRankView() (map[string]float64, float64) {
	gen := f.cluster.QB.RankGen()
	f.mu.Lock()
	if f.ranksInit && f.ranksGen == gen {
		m, mx := f.ranks, f.ranksMax
		f.mu.Unlock()
		return m, mx
	}
	f.mu.Unlock()
	ranks := f.cluster.QB.PageRanks()
	maxRank := 0.0
	for _, r := range ranks {
		if r > maxRank {
			//detlint:ignore maprange pure max over float64 ranks; the reduced value is iteration-order independent
			maxRank = r
		}
	}
	f.mu.Lock()
	f.ranks, f.ranksMax, f.ranksGen, f.ranksInit = ranks, maxRank, gen, true
	f.mu.Unlock()
	return ranks, maxRank
}

// CacheStats is a point-in-time snapshot of the frontend's caches.
type CacheStats struct {
	SegBytes, SegBudget     int64
	SegEntries              int
	SegHits, SegMisses      int64
	ChainBytes, ChainBudget int64
	ChainEntries            int
	ChainHits, ChainMisses  int64
	StatsFetches            int64
}

// Add accumulates another snapshot into c — the aggregation a pool (or
// a serving surface) runs across its frontends' independent caches.
// Budgets sum too: the total memory the tier may hold.
func (c *CacheStats) Add(o CacheStats) {
	c.SegBytes += o.SegBytes
	c.SegBudget += o.SegBudget
	c.SegEntries += o.SegEntries
	c.SegHits += o.SegHits
	c.SegMisses += o.SegMisses
	c.ChainBytes += o.ChainBytes
	c.ChainBudget += o.ChainBudget
	c.ChainEntries += o.ChainEntries
	c.ChainHits += o.ChainHits
	c.ChainMisses += o.ChainMisses
	c.StatsFetches += o.StatsFetches
}

// CacheStatsSnapshot reports cache occupancy and traffic counters —
// queenbeed's /healthz surfaces it, and the churn tests assert the
// byte budgets hold.
func (f *Frontend) CacheStatsSnapshot() CacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return CacheStats{
		SegBytes:     f.segCache.bytes(),
		SegBudget:    f.segCache.budget,
		SegEntries:   f.segCache.len(),
		SegHits:      f.segCache.hits,
		SegMisses:    f.segCache.misses,
		ChainBytes:   f.chainCache.bytes(),
		ChainBudget:  f.chainCache.budget,
		ChainEntries: f.chainCache.len(),
		ChainHits:    f.chainCache.hits,
		ChainMisses:  f.chainCache.misses,
		StatsFetches: f.statsFetches,
	}
}

// refreshDocURLs rebuilds the DocID→URL map when new pages registered.
func (f *Frontend) refreshDocURLs() {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.cluster.QB.PageCount()
	if n == f.docURLGen {
		return
	}
	f.docURL = make(map[index.DocID]string, n)
	for _, url := range f.cluster.QB.Pages() {
		f.docURL[index.DocIDOf(url)] = url
	}
	f.docURLGen = n
}

// docURLView refreshes and returns the current DocID→URL map. The map
// is replaced wholesale on refresh, never mutated in place, so readers
// may keep the returned reference without holding f.mu.
func (f *Frontend) docURLView() map[index.DocID]string {
	f.refreshDocURLs()
	f.mu.Lock()
	m := f.docURL
	f.mu.Unlock()
	return m
}

// FetchResult downloads and verifies the content of a search result.
func (f *Frontend) FetchResult(r Result) ([]byte, netsim.Cost, error) {
	cid, err := cidFromHex(r.CID)
	if err != nil {
		return nil, netsim.Cost{}, err
	}
	return f.peer.Fetch(cid)
}

func avgDocLen(st IndexStats) float64 {
	if st.Docs == 0 {
		return 1
	}
	return float64(st.Tokens) / float64(st.Docs)
}

// TopRankedPages lists the highest page-rank URLs from chain state.
func (f *Frontend) TopRankedPages(n int) []string {
	ranks := f.cluster.QB.PageRanks()
	type pr struct {
		url  string
		rank float64
	}
	all := make([]pr, 0, len(ranks))
	for u, r := range ranks {
		all = append(all, pr{u, r})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].rank != all[j].rank {
			return all[i].rank > all[j].rank
		}
		return all[i].url < all[j].url
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].url
	}
	return out
}
