package core

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/netsim"
	"repro/internal/store"
)

// Frontend is QueenBee's query side: "the HTML+Javascript frontend ...
// responsible for composing the search results by intersecting the
// matched inverted lists, ranking the results, and displaying relevant
// ads." It is a stateless client of the DHT and the chain: it owns a DWeb
// peer for reads and caches immutable segments by content address.
type Frontend struct {
	cluster *Cluster
	peer    *store.Peer

	mu         sync.Mutex
	segCache   map[string]*index.Segment // digest → segment (immutable)
	chainCache map[int]chainEntry        // shard → merged view of its segment chain
	docURL     map[index.DocID]string
	docURLGen  int // page count when docURL was built

	stats    IndexStats
	statsGen int // page count when stats were fetched

	// UseGallopIntersection selects the intersection kernel (A1).
	UseGallopIntersection bool
}

// NewFrontend attaches a frontend to one DWeb peer of the cluster.
func NewFrontend(c *Cluster, peer *store.Peer) *Frontend {
	return &Frontend{
		cluster:               c,
		peer:                  peer,
		segCache:              make(map[string]*index.Segment),
		chainCache:            make(map[int]chainEntry),
		docURL:                make(map[index.DocID]string),
		UseGallopIntersection: true,
	}
}

// chainEntry caches the merged view of one shard's segment chain, keyed by
// the exact digest chain it was built from. The entry stays valid until
// the shard pointer lists a different chain (a new head digest), so warm
// queries skip both the segment fetches and the re-merge.
type chainEntry struct {
	key string // "," joined segment digests, oldest first
	seg *index.Segment
}

// Result is one ranked search hit.
type Result struct {
	URL     string
	CID     string
	Score   float64
	Rank    float64 // page rank component
	Snippet string  // populated when SearchOptions.Snippets is set
}

// Ad is one displayed advertisement.
type Ad struct {
	ID          uint64
	Keywords    []string
	BidPerClick uint64
}

// SearchResponse is the composed answer for one query.
type SearchResponse struct {
	Results []Result
	Ads     []Ad
	Cost    netsim.Cost
	// Terms are the positive analyzed terms (excluded terms drive
	// shard loading but not scoring, ads or snippets).
	Terms []string
	// Total counts every candidate that survived boolean evaluation,
	// before ranking truncated to the requested page.
	Total int
	// Explain is the execution trace; nil unless Query.Explain was set.
	Explain *Explain
}

// Search runs the full frontend pipeline for a conjunctive (AND) query.
// SearchWith (query.go) exposes OR/phrase modes and snippets.
func (f *Frontend) Search(query string, k int) (SearchResponse, error) {
	return f.SearchWith(query, SearchOptions{Mode: ModeAND, K: k})
}

// scoreAndCompose ranks the candidate documents with BM25 × PageRank,
// keeps the requested page (offset/limit over the deterministic total
// order), and fills in results and ads — steps 3–5 of the frontend
// pipeline, shared by every query mode.
func (f *Frontend) scoreAndCompose(resp *SearchResponse, terms []string,
	merged map[string]index.PostingList, segsByShard map[int]*index.Segment,
	docs []index.DocID, limit, offset int) {

	// Collection statistics only shift BM25 constants, so they are
	// cached and refreshed only when the page count changes.
	stats, cost := f.cachedStats()
	resp.Cost = resp.Cost.Seq(cost)
	scorer := index.NewScorer(index.CorpusStats{
		DocCount:  maxInt(stats.Docs, 1),
		AvgDocLen: avgDocLen(stats),
	}, f.cluster.cfg.RankWeight)

	ranks := f.cluster.QB.PageRanks()
	maxRank := 0.0
	for _, r := range ranks {
		if r > maxRank {
			maxRank = r
		}
	}
	urls := f.docURLView()

	// One DocID→length lookup, built up front: each candidate probes
	// every loaded shard at most once, instead of rescanning the shards
	// for every (doc, term) pair in the scoring loop below. Shards are
	// probed in ascending id order so collisions resolve the same way
	// on every run.
	shardIDs := make([]int, 0, len(segsByShard))
	for sid := range segsByShard {
		shardIDs = append(shardIDs, sid)
	}
	sort.Ints(shardIDs)
	lens := make(map[index.DocID]uint32, len(docs))
	for _, d := range docs {
		for _, sid := range shardIDs {
			if l, ok := segsByShard[sid].DocLens[d]; ok {
				lens[d] = l
				break
			}
		}
	}
	docLen := func(d index.DocID) uint32 {
		if l, ok := lens[d]; ok {
			return l
		}
		return uint32(avgDocLen(stats))
	}

	scored := make([]index.ScoredDoc, 0, len(docs))
	for _, d := range docs {
		var text float64
		for _, term := range terms {
			pl := merged[term]
			if p, ok := pl.Find(d); ok {
				text += scorer.TermScore(p.TF, docLen(d), len(pl))
			}
		}
		url := urls[d]
		final := scorer.Combine(text, ranks[url], maxRank)
		scored = append(scored, index.ScoredDoc{Doc: d, Score: final})
	}
	top := index.TopK(scored, offset+limit)
	if offset >= len(top) {
		top = nil
	} else {
		top = top[offset:]
	}

	for _, sd := range top {
		url := urls[sd.Doc]
		if url == "" {
			continue // unindexed or collision; skip
		}
		rec, ok := f.cluster.QB.Page(url)
		if !ok {
			continue
		}
		resp.Results = append(resp.Results, Result{
			URL:   url,
			CID:   rec.CID,
			Score: sd.Score,
			Rank:  ranks[url],
		})
	}

	for _, ad := range f.cluster.QB.AdsForTerms(terms) {
		resp.Ads = append(resp.Ads, Ad{ID: ad.ID, Keywords: ad.Keywords, BidPerClick: ad.BidPerClick})
		if len(resp.Ads) == 3 {
			break
		}
	}
}

// loadShard fetches a shard's segment chain and returns its merged view.
// Two cache layers keep warm queries cheap: segments are immutable and
// cached per digest, and the merged chain is cached per shard keyed by the
// digest chain — the pointer read is the only per-query DHT traffic until
// the chain changes. Single-segment chains (the common case after
// compaction) skip merging entirely, so their postings stay lazy.
func (f *Frontend) loadShard(shard int) (*index.Segment, netsim.Cost, error) {
	ptr, cost, err := readShardPointer(f.peer.DHT(), shard)
	if err == dht.ErrNotFound {
		return index.NewSegment(0), cost, nil
	}
	if err != nil {
		return nil, cost, err
	}
	key := strings.Join(ptr.Digests, ",")
	f.mu.Lock()
	if ce, ok := f.chainCache[shard]; ok && ce.key == key {
		f.mu.Unlock()
		return ce.seg, cost, nil
	}
	f.mu.Unlock()
	segs := make([]*index.Segment, 0, len(ptr.Digests))
	for _, digest := range ptr.Digests {
		f.mu.Lock()
		seg, ok := f.segCache[digest]
		f.mu.Unlock()
		if !ok {
			var c2 netsim.Cost
			seg, c2, err = readSegment(f.peer.DHT(), digest)
			cost = cost.Seq(c2)
			if err != nil {
				return nil, cost, err
			}
			f.mu.Lock()
			f.segCache[digest] = seg
			f.mu.Unlock()
		}
		segs = append(segs, seg)
	}
	merged := index.Merge(segs)
	f.mu.Lock()
	f.chainCache[shard] = chainEntry{key: key, seg: merged}
	f.mu.Unlock()
	return merged, cost, nil
}

// loadShards resolves a query's distinct shards as one concurrent fetch
// wave: a real frontend issues the independent DHT lookups at once, so
// the modeled cost is the Par combination — the slowest shard, not the
// sum. Execution itself stays sequential (in shard order) because the
// network simulation draws jitter and drop decisions from one seeded
// RNG; racing goroutines would reorder those draws and break the per-seed
// reproducibility the whole harness promises. Returns the first error
// encountered, if any.
func (f *Frontend) loadShards(shards []int) (map[int]*index.Segment, netsim.Cost, error) {
	out := make(map[int]*index.Segment, len(shards))
	var cost netsim.Cost
	var firstErr error
	for _, shard := range shards {
		seg, c, err := f.loadShard(shard)
		cost = cost.Par(c)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[shard] = seg
	}
	if firstErr != nil {
		return nil, cost, firstErr
	}
	return out, cost, nil
}

// cachedStats returns the collection statistics, re-reading from the DHT
// only when the registered page count changed since the last fetch.
func (f *Frontend) cachedStats() (IndexStats, netsim.Cost) {
	n := f.cluster.QB.PageCount()
	f.mu.Lock()
	if n == f.statsGen && f.stats.Docs > 0 {
		st := f.stats
		f.mu.Unlock()
		return st, netsim.Cost{}
	}
	f.mu.Unlock()
	st, cost := readStats(f.peer.DHT())
	f.mu.Lock()
	f.stats, f.statsGen = st, n
	f.mu.Unlock()
	return st, cost
}

// refreshDocURLs rebuilds the DocID→URL map when new pages registered.
func (f *Frontend) refreshDocURLs() {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.cluster.QB.PageCount()
	if n == f.docURLGen {
		return
	}
	f.docURL = make(map[index.DocID]string, n)
	for _, url := range f.cluster.QB.Pages() {
		f.docURL[index.DocIDOf(url)] = url
	}
	f.docURLGen = n
}

// docURLView refreshes and returns the current DocID→URL map. The map
// is replaced wholesale on refresh, never mutated in place, so readers
// may keep the returned reference without holding f.mu.
func (f *Frontend) docURLView() map[index.DocID]string {
	f.refreshDocURLs()
	f.mu.Lock()
	m := f.docURL
	f.mu.Unlock()
	return m
}

// FetchResult downloads and verifies the content of a search result.
func (f *Frontend) FetchResult(r Result) ([]byte, netsim.Cost, error) {
	cid, err := cidFromHex(r.CID)
	if err != nil {
		return nil, netsim.Cost{}, err
	}
	return f.peer.Fetch(cid)
}

func avgDocLen(st IndexStats) float64 {
	if st.Docs == 0 {
		return 1
	}
	return float64(st.Tokens) / float64(st.Docs)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TopRankedPages lists the highest page-rank URLs from chain state.
func (f *Frontend) TopRankedPages(n int) []string {
	ranks := f.cluster.QB.PageRanks()
	type pr struct {
		url  string
		rank float64
	}
	all := make([]pr, 0, len(ranks))
	for u, r := range ranks {
		all = append(all, pr{u, r})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].rank != all[j].rank {
			return all[i].rank > all[j].rank
		}
		return all[i].url < all[j].url
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].url
	}
	return out
}
