package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dht"
	"repro/internal/index"
)

// TestPoolBalancerDeterministicLeastLoaded: under a sequential driver
// (in-flight always zero) the balancer is least-simulated-busy with a
// round-robin cursor — the same cost sequence yields the same
// assignment sequence every run.
func TestPoolBalancerDeterministicLeastLoaded(t *testing.T) {
	c, _ := queryCluster(t)
	pool := NewFrontendPool(c, 3, false, 0)
	for i := 0; i < 9; i++ {
		if _, err := pool.Execute(Query{Raw: "red apples", Mode: PlanAll, Limit: 5}); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	var total int64
	for i, f := range st.Frontends {
		if f.Served == 0 {
			t.Fatalf("frontend %d served nothing: %+v", i, st.Frontends)
		}
		if f.InFlight != 0 {
			t.Fatalf("frontend %d still in flight after a sequential drive", i)
		}
		total += f.Served
	}
	if total != 9 {
		t.Fatalf("served %d queries, want 9", total)
	}
}

// TestPoolHedgeRescuesTamperedReplica: the hedged leg is the wave's
// failed leg, so a segment replica tampered on the primary frontend's
// own peer — hash verification fails there — is rescued by the buddy's
// clean fetch and the query succeeds with full results.
func TestPoolHedgeRescuesTamperedReplica(t *testing.T) {
	c, _ := queryCluster(t)
	pool := NewFrontendPool(c, 2, true, 0)
	primary := pool.Frontend(0)

	// Locate the single shard behind "orchard" and tamper its segment
	// replica locally on the primary's peer. GetImmutable serves the
	// local replica first, so the primary's fetch sees garbage and
	// fails the digest check; the buddy (a different peer) reads a
	// clean replica.
	shard := index.ShardOf("orchard", c.Config().NumShards)
	ptr, _, err := readShardPointer(primary.peer.DHT(), shard)
	if err != nil {
		t.Fatal(err)
	}
	if len(ptr.Digests) == 0 {
		t.Fatal("orchard's shard has no segments")
	}
	primary.peer.DHT().StoreLocal(
		dht.KeyOfString(index.SegmentKey(ptr.Digests[0])), []byte("tampered"), 0)

	// Unhedged control: the same tampered frontend alone fails loudly.
	alone := NewFrontend(c, primary.peer)
	if _, err := alone.Execute(Query{Raw: "orchard", Mode: PlanAll}); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("unhedged tampered frontend: err = %v, want ErrShardUnavailable", err)
	}

	// Hedged pool: frontend 0 serves the first query, its leg fails,
	// the hedge reruns it on frontend 1 and the wave succeeds.
	resp, err := pool.Execute(Query{Raw: "orchard", Mode: PlanAll})
	if err != nil {
		t.Fatalf("hedge did not rescue the tampered leg: %v", err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("rescued query returned no results")
	}
	if got := pool.Frontend(0).hedges.Load(); got == 0 {
		t.Fatal("no hedge recorded for the rescued wave")
	}
	// The buddy's serving time was billed for the duplicate.
	if busy := pool.Stats().Frontends[1].BusySim; busy == 0 {
		t.Fatalf("hedge time not billed to the buddy: %+v", pool.Stats().Frontends)
	}
}

// TestPoolDefaultDeadlineApplies: queries inherit the pool's default
// deadline, an explicit Query.Deadline overrides it, and only real
// deadline misses count (see ExecuteCtx).
func TestPoolDefaultDeadlineApplies(t *testing.T) {
	c, _ := queryCluster(t)
	pool := NewFrontendPool(c, 1, false, time.Millisecond)
	if _, err := pool.Execute(Query{Raw: "orchard", Mode: PlanAll}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("default deadline not applied: %v", err)
	}
	if _, err := pool.Execute(Query{Raw: "orchard", Mode: PlanAll, Deadline: time.Hour}); err != nil {
		t.Fatalf("explicit deadline should override the default: %v", err)
	}
	if misses := pool.Stats().DeadlineMisses; misses != 1 {
		t.Fatalf("deadline misses = %d, want 1", misses)
	}
}
