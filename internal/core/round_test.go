package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/contracts"
)

// TestRoundBatchMaterializationDHTPutCounts is the O(shards) claim: a
// round that finalizes many index tasks must issue at most one
// shard-pointer read-modify-write per touched shard and exactly one
// stats bump — not one per segment per shard, as the per-task path
// paid. Asserted both through the receipt's write counters and through
// the pointer records themselves (one RMW ⇒ Version 1 even with many
// digests in the chain).
func TestRoundBatchMaterializationDHTPutCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 10
	cfg.NumBees = 3
	cfg.NumShards = 4 // concentrate segments so shards receive several each
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 100_000)
	c.Seal()

	const docs = 6 // small enough that no chain reaches the compaction threshold
	for i := 0; i < docs; i++ {
		if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], fmt.Sprintf("dweb://batch/%02d", i),
			fmt.Sprintf("batched materialization workload document %02d body content", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Seal() // all 6 index tasks created in one block

	rr := c.ProcessRoundReceipt()
	if rr.Materialized != docs {
		t.Fatalf("materialized = %d, want %d (one round should finalize all)", rr.Materialized, docs)
	}
	if rr.SegmentWrites != docs {
		t.Fatalf("segment writes = %d, want %d (one immutable put per task)", rr.SegmentWrites, docs)
	}
	if rr.PointerWrites > cfg.NumShards {
		t.Fatalf("pointer writes = %d over %d shards; batching must bound them by the shard count",
			rr.PointerWrites, cfg.NumShards)
	}
	if rr.StatsWrites != 1 {
		t.Fatalf("stats writes = %d, want exactly 1 per round", rr.StatsWrites)
	}
	if len(rr.Errors) != 0 {
		t.Fatalf("round errors: %v", rr.Errors)
	}

	// Each touched shard saw exactly one pointer write (Version 1) even
	// though several segments landed on it.
	reader := c.Peers[1].DHT()
	multi := false
	touched := 0
	for shard := 0; shard < cfg.NumShards; shard++ {
		ptr, _, err := readShardPointer(reader, shard)
		if err != nil {
			continue // shard untouched by this vocabulary
		}
		touched++
		if ptr.Version != 1 {
			t.Fatalf("shard %d pointer version = %d after one round, want 1 (one RMW)", shard, ptr.Version)
		}
		// Several segments landed on this shard if the chain holds more
		// than one run — or if the tiered writer already merged a full
		// level-0 bucket (≥ tieredFanout runs) into one higher-level run
		// inside the same RMW (Version stays 1, which makes the one-RMW
		// claim strictly stronger).
		if len(ptr.Digests) > 1 || (len(ptr.Levels) > 0 && ptr.Levels[0] > 0) {
			multi = true
		}
	}
	if touched == 0 {
		t.Fatal("no shard received any segment")
	}
	if touched != rr.PointerWrites {
		t.Fatalf("pointer writes = %d but %d shards touched", rr.PointerWrites, touched)
	}
	if !multi {
		t.Fatal("test vocabulary never put two segments on one shard; the O(K·S) vs O(S) distinction was not exercised")
	}

	// One stats bump: Version 1, all documents counted.
	st, _ := readStats(reader)
	if st.Version != 1 || st.Docs != docs {
		t.Fatalf("stats = %+v, want Version 1 / Docs %d", st, docs)
	}
}

// TestRoundReceiptWaveVsSerial sanity-checks the receipt's two cost
// readings: the wave makespan can never exceed the serial sum, and with
// several bees sharing a round's work it must be strictly cheaper.
func TestRoundReceiptWaveVsSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 12
	cfg.NumBees = 4
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 100_000)
	c.Seal()
	for i := 0; i < 12; i++ {
		if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], fmt.Sprintf("dweb://wave/%02d", i),
			fmt.Sprintf("wave accounting document %02d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Seal()
	rr := c.ProcessRoundReceipt()
	if rr.Wave().Latency > rr.Serial().Latency {
		t.Fatalf("wave %v exceeds serial %v", rr.Wave().Latency, rr.Serial().Latency)
	}
	if rr.Wave().Latency >= rr.Serial().Latency {
		t.Fatalf("wave %v not cheaper than serial %v with %d bees", rr.Wave().Latency, rr.Serial().Latency, cfg.NumBees)
	}
	if rr.Wave().Bytes != rr.Serial().Bytes {
		t.Fatalf("wave moved %d bytes, serial %d — parallelism must not change traffic", rr.Wave().Bytes, rr.Serial().Bytes)
	}
}

// TestRoundErrorsSurfaced makes the write path fail (the only provider
// of the published content goes down before the bees fetch it) and
// asserts the failure lands in the round's error summary and on the
// failing bees — not silently swallowed.
func TestRoundErrorsSurfaced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 10
	cfg.NumBees = 3
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 10_000)
	c.Seal()
	if _, err := c.Publish(alice, c.Peers[0], "dweb://doomed", "content nobody will reach", nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	c.Net.SetDown(c.Peers[0].Addr(), true) // the only content provider

	rr := c.ProcessRoundReceipt()
	if len(rr.Errors) == 0 {
		t.Fatal("no round errors surfaced for unreachable content")
	}
	for _, re := range rr.Errors {
		if re.Stage != "build" {
			t.Fatalf("unexpected stage %q: %v", re.Stage, re)
		}
		if re.Bee == "" || re.Task == "" {
			t.Fatalf("error missing attribution: %+v", re)
		}
		if !strings.Contains(re.Error(), re.Task) {
			t.Fatalf("rendered error %q does not name the task", re.Error())
		}
	}
	// The same failures are recorded on the bees themselves.
	recorded := 0
	for _, b := range c.Bees {
		recorded += len(b.Errs)
	}
	if recorded != len(rr.Errors) {
		t.Fatalf("bees recorded %d errors, receipt has %d", recorded, len(rr.Errors))
	}
}

// TestPublishBatchSingleTask: a batch publish creates ONE index task
// covering every page, the quorum builds one multi-doc segment, and all
// pages become searchable.
func TestPublishBatchSingleTask(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 100_000)
	c.Seal()
	pages := []BatchPage{
		{URL: "dweb://b/one", Text: "falcon migration patterns across continents"},
		{URL: "dweb://b/two", Text: "falcon nesting habits in city towers"},
		{URL: "dweb://b/three", Text: "urban towers and their many inhabitants"},
	}
	br, err := c.PublishBatch(alice, c.Peers[0], pages)
	if err != nil {
		t.Fatal(err)
	}
	c.Seal()
	if r := c.Chain.Receipt(br.Tx.Hash()); r == nil || !r.OK {
		t.Fatalf("batch tx failed: %+v", r)
	}
	rr := c.ProcessRoundReceipt()
	if open, finalized, failed := c.QB.TaskCounts(); open != 0 || finalized != 1 || failed != 0 {
		t.Fatalf("tasks open=%d finalized=%d failed=%d, want exactly one finalized batch task", open, finalized, failed)
	}
	if rr.SegmentWrites != 1 {
		t.Fatalf("segment writes = %d, want 1 (one segment for the whole batch)", rr.SegmentWrites)
	}
	if len(rr.Errors) != 0 {
		t.Fatalf("round errors: %v", rr.Errors)
	}

	fe := NewFrontend(c, c.Peers[3])
	resp, err := fe.Search("falcon", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("falcon results = %+v, want the two falcon pages", resp.Results)
	}
	st, _ := readStats(c.Peers[2].DHT())
	if st.Docs != len(pages) {
		t.Fatalf("stats docs = %d, want %d", st.Docs, len(pages))
	}
}

// TestPublishBatchAtomicRejection: a batch containing a page owned by
// someone else is refused — at pre-flight, before any content is
// stored or block sealed — and even a batch transaction that reaches
// the contract directly (bypassing pre-flight) is rejected atomically,
// registering none of its pages.
func TestPublishBatchAtomicRejection(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 10_000)
	bob := c.NewAccount("bob", 10_000)
	c.Seal()
	if _, err := c.Publish(alice, c.Peers[0], "dweb://alices", "belongs to alice", nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	c.RunUntilIdle(4)

	heightBefore := c.Chain.Height()
	_, err := c.PublishBatch(bob, c.Peers[1], []BatchPage{
		{URL: "dweb://bobs/new", Text: "a fresh page from bob"},
		{URL: "dweb://alices", Text: "bob tries to overwrite alice"},
	})
	if !errors.Is(err, ErrBatchInvalid) {
		t.Fatalf("pre-flight err = %v, want ErrBatchInvalid", err)
	}
	if c.Chain.Height() != heightBefore {
		t.Fatal("rejected batch advanced the chain")
	}
	if _, err := c.PublishBatch(bob, c.Peers[1], []BatchPage{
		{URL: "dweb://dup", Text: "a"}, {URL: "dweb://dup", Text: "b"},
	}); !errors.Is(err, ErrBatchInvalid) {
		t.Fatalf("duplicate-URL pre-flight err = %v, want ErrBatchInvalid", err)
	}

	// Contract-level atomicity: the same foreign-URL batch submitted
	// directly (no pre-flight) must fail on chain with no partial
	// registration.
	tx := c.SubmitCall(bob, contracts.MethodPublishBatch, contracts.PublishBatchParams{
		Pages: []contracts.PublishParams{
			{URL: "dweb://bobs/new", CID: "aa"},
			{URL: "dweb://alices", CID: "bb"},
		},
	}, 0)
	c.Seal()
	r := c.Chain.Receipt(tx.Hash())
	if r == nil || r.OK {
		t.Fatalf("batch with foreign URL must fail on chain: %+v", r)
	}
	if _, ok := c.QB.Page("dweb://bobs/new"); ok {
		t.Fatal("rejected batch leaked a page registration")
	}
	if rec, _ := c.QB.Page("dweb://alices"); rec.Owner != alice.Address() {
		t.Fatal("ownership changed through a rejected batch")
	}
}

// TestBatchRepublishCountsStatsOncePerVersion: batch entries carry the
// page Seq, so re-published pages do not inflate the document count.
func TestBatchRepublishCountsStatsOncePerVersion(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 10_000)
	c.Seal()
	first := []BatchPage{
		{URL: "dweb://r/a", Text: "first version alpha words"},
		{URL: "dweb://r/b", Text: "first version beta words"},
	}
	if _, err := c.PublishBatch(alice, c.Peers[0], first); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	c.RunUntilIdle(4)

	second := []BatchPage{
		{URL: "dweb://r/a", Text: "second version alpha rewritten"}, // Seq 2: no stats bump
		{URL: "dweb://r/c", Text: "a brand new gamma page"},         // Seq 1: counted
	}
	if _, err := c.PublishBatch(alice, c.Peers[0], second); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	c.RunUntilIdle(4)

	st, _ := readStats(c.Peers[1].DHT())
	if st.Docs != 3 {
		t.Fatalf("stats docs = %d, want 3 (republish must not double-count)", st.Docs)
	}
	// Freshness holds across batch republish too.
	fe := NewFrontend(c, c.Peers[2])
	if resp, _ := fe.Search("alpha words", 10); len(resp.Results) != 0 {
		t.Fatalf("stale postings survived batch republish: %+v", resp.Results)
	}
	if resp, _ := fe.Search("alpha rewritten", 10); len(resp.Results) != 1 {
		t.Fatalf("new version not searchable: %+v", resp.Results)
	}
}

// TestRoundEngineSequentialModeMatchesParallel drives the same workload
// through a parallel and a sequential cluster on one seed and diffs the
// resulting DHT records — the core of the write-side determinism
// contract (the facade-level soak in ingest_test.go covers the full
// corpus shape).
func TestRoundEngineSequentialModeMatchesParallel(t *testing.T) {
	build := func(parallel bool) *Cluster {
		cfg := DefaultConfig()
		cfg.Seed = 42
		cfg.NumPeers = 10
		cfg.NumBees = 4
		cfg.ParallelRounds = parallel
		c := NewCluster(cfg)
		alice := c.NewAccount("alice", 100_000)
		c.Seal()
		for i := 0; i < 9; i++ {
			if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], fmt.Sprintf("dweb://det/%02d", i),
				fmt.Sprintf("deterministic workload document %02d content", i), nil); err != nil {
				t.Fatal(err)
			}
		}
		c.Seal()
		c.RunUntilIdle(6)
		return c
	}
	par, seq := build(true), build(false)
	for shard := 0; shard < par.Config().NumShards; shard++ {
		p1, _, err1 := readShardPointer(par.Peers[1].DHT(), shard)
		p2, _, err2 := readShardPointer(seq.Peers[1].DHT(), shard)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("shard %d presence diverged: %v vs %v", shard, err1, err2)
		}
		if fmt.Sprintf("%+v", p1) != fmt.Sprintf("%+v", p2) {
			t.Fatalf("shard %d pointer diverged:\nparallel   %+v\nsequential %+v", shard, p1, p2)
		}
	}
	s1, _ := readStats(par.Peers[1].DHT())
	s2, _ := readStats(seq.Peers[1].DHT())
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
}

// TestBatchEntriesRoundTrip covers the task-meta encoding of batches.
func TestBatchEntriesRoundTrip(t *testing.T) {
	entries := []contracts.BatchEntry{
		{URL: "dweb://x", CID: "aa", Seq: 1},
		{URL: "dweb://y", CID: "bb", Seq: 3},
	}
	task := contracts.Task{Meta: map[string]string{"batch": contracts.EncodeBatchEntries(entries)}}
	got, ok := contracts.BatchEntries(task)
	if !ok || len(got) != 2 || got[0] != entries[0] || got[1] != entries[1] {
		t.Fatalf("round trip = %+v ok=%v", got, ok)
	}
	if _, ok := contracts.BatchEntries(contracts.Task{Meta: map[string]string{"url": "dweb://x"}}); ok {
		t.Fatal("non-batch task reported batch entries")
	}
}
