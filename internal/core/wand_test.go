package core

import (
	"fmt"
	"testing"
)

// TestSetUseBlockMaxToggle: flipping the block-max switch on a live
// frontend must never change results — only the work counters. The same
// frontend answers the same queries on both paths, which also proves the
// memoized rank view and cursor cache survive mode changes.
func TestSetUseBlockMaxToggle(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 1_000_000)
	c.Seal()
	for i := 0; i < 30; i++ {
		url := fmt.Sprintf("dweb://toggle/%02d", i)
		text := fmt.Sprintf("shared toggle corpus document %d with honey and wax number%d", i, i%5)
		if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], url, text, nil); err != nil {
			t.Fatal(err)
		}
		c.Seal()
	}
	c.RunUntilIdle(60)

	fe := NewFrontend(c, c.Peers[5])
	if !fe.UseBlockMax() {
		t.Fatal("block-max should be the default")
	}
	queries := []Query{
		{Raw: "toggle", Limit: 5},
		{Raw: "honey wax", Mode: PlanAll, Limit: 10},
		{Raw: "number0 OR number3", Limit: 4, Offset: 2},
	}
	for _, q := range queries {
		wand, err := fe.Execute(q)
		if err != nil {
			t.Fatalf("%q (wand): %v", q.Raw, err)
		}
		fe.SetUseBlockMax(false)
		ex, err := fe.Execute(q)
		fe.SetUseBlockMax(true)
		if err != nil {
			t.Fatalf("%q (exhaustive): %v", q.Raw, err)
		}
		if wand.Total != ex.Total || len(wand.Results) != len(ex.Results) {
			t.Fatalf("%q: total/len mismatch: %d/%d vs %d/%d",
				q.Raw, wand.Total, len(wand.Results), ex.Total, len(ex.Results))
		}
		for i := range ex.Results {
			if wand.Results[i] != ex.Results[i] {
				t.Fatalf("%q result %d: %+v vs %+v", q.Raw, i, wand.Results[i], ex.Results[i])
			}
		}
		if ex.ScoreStats.BlocksSkipped != 0 || ex.ScoreStats.DocsSkipped != 0 {
			t.Fatalf("%q: exhaustive path skipped: %+v", q.Raw, ex.ScoreStats)
		}
	}
}
