package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
)

// ErrDeadlineExceeded marks a query stopped by its request lifecycle:
// either its simulated deadline passed (Query.Deadline, measured against
// the query's accumulated simulated latency) or its context was
// cancelled. The response carries a partial Explain trace and the cost
// of the work that actually ran; remaining wave members were abandoned.
// Callers match with errors.Is.
var ErrDeadlineExceeded = errors.New("core: query deadline exceeded")

// reqBudget is one query's lifecycle, threaded through every stage of
// the read pipeline. It combines two stop signals:
//
//   - ctx: real cancellation (a disconnected HTTP client, a test). Its
//     arrival point relative to simulated work is inherently
//     scheduling-dependent, so cancellation trades determinism for
//     liveness — by design.
//   - deadline: the query's simulated latency bound. Checks compare
//     deterministic simulated elapsed time against it, so the same seed
//     and the same deadline stop the same query at the same point, every
//     run.
//
// Checkpoints sit at call boundaries: before each sequential RPC of a
// wave leg (elapsed grows leg-locally — parallel legs all start at the
// wave's base elapsed) and between pipeline stages (elapsed is the
// response's accumulated latency). The simulator cannot interrupt an
// RPC mid-flight, so work between checkpoints completes and is costed
// in full: a cancelled wave is costed as the partial wave it ran.
type reqBudget struct {
	ctx      context.Context
	deadline time.Duration // simulated latency bound; 0 = none
}

// check fails once the budget is spent: the context is done, or the
// simulated elapsed time has reached the deadline. The error wraps
// ErrDeadlineExceeded (and the context's own error, when that was the
// trigger).
func (b reqBudget) check(elapsed time.Duration) error {
	if b.ctx != nil {
		if cerr := b.ctx.Err(); cerr != nil {
			return fmt.Errorf("%w: %w", ErrDeadlineExceeded, cerr)
		}
	}
	if b.deadline > 0 && elapsed >= b.deadline {
		return fmt.Errorf("%w: %v simulated elapsed against a %v deadline",
			ErrDeadlineExceeded, elapsed, b.deadline)
	}
	return nil
}

// lifecycleErr reports whether an error from a lower layer means the
// request lifecycle ended (context cancelled at a netsim/DHT call
// boundary, or a deadline checkpoint fired) rather than the index being
// unavailable.
func lifecycleErr(err error) bool {
	return errors.Is(err, ErrDeadlineExceeded) || isCancelled(err)
}

// isCancelled matches the cancellation sentinel a short-circuited
// netsim call (or an abandoned DHT lookup) surfaces.
func isCancelled(err error) bool { return errors.Is(err, netsim.ErrCancelled) }

// asLifecycle lifts a lower-layer cancellation into the typed deadline
// error; every other error passes through unchanged.
func asLifecycle(err error) error {
	if err != nil && isCancelled(err) && !errors.Is(err, ErrDeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	}
	return err
}

// context returns the budget's context, defaulting to Background so
// lower layers can poll Err without nil checks.
func (b reqBudget) context() context.Context {
	if b.ctx == nil {
		return context.Background()
	}
	return b.ctx
}
