package core

import "sort"

// WriteStats is the cluster's accumulated write-path accounting: round
// counters summed over every materialize pass, plus a snapshot of the
// current segment-chain tier layout. The write-amplification contract
// (docs/indexing.md) is asserted against these: under the tiered policy
// Amplification stays O(log shard bytes) at steady ingest, while the
// monolithic policy's grows with the shard.
type WriteStats struct {
	// Rounds counts processed rounds (ProcessRoundReceipt calls).
	Rounds int
	// SegmentWrites / PointerWrites / Compactions / StatsWrites sum the
	// per-round receipt counters of the same names.
	SegmentWrites int
	PointerWrites int
	Compactions   int
	StatsWrites   int
	// IngestedBytes sums new segment bytes (each winning segment once);
	// CompactedBytes sums merged-segment bytes compaction rewrote.
	IngestedBytes  int64
	CompactedBytes int64
	// SegmentsPerTier is the current chain layout aggregated across
	// shards: SegmentsPerTier[k] counts level-k runs. Under the
	// monolithic policy everything reports as tier 0.
	SegmentsPerTier []int
}

// Amplification is the write-amplification ratio: every byte the write
// path put into segment records (ingest + rewrites) over the bytes
// ingest actually produced. 0 before any ingest.
func (w WriteStats) Amplification() float64 {
	if w.IngestedBytes == 0 {
		return 0
	}
	return float64(w.IngestedBytes+w.CompactedBytes) / float64(w.IngestedBytes)
}

// noteShardTiers records the tier layout of every shard pointer a
// materialize pass just wrote, for the WriteStats snapshot. Reading the
// layout from the in-hand pointers (not the DHT) keeps stats serving
// free of network draws.
func (c *Cluster) noteShardTiers(shardOrder []int, wrote []bool, ptrs []ShardPointer) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	for j, s := range shardOrder {
		if !wrote[j] {
			continue
		}
		levels := make([]int, len(ptrs[j].Digests))
		for i := range levels {
			levels[i] = ptrs[j].levelOf(i)
		}
		c.shardTiers[s] = levels
	}
}

// noteRoundReceipt folds one processed round's counters into the
// accumulated write stats.
func (c *Cluster) noteRoundReceipt(r RoundReceipt) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.write.Rounds++
	c.write.SegmentWrites += r.SegmentWrites
	c.write.PointerWrites += r.PointerWrites
	c.write.Compactions += r.Compactions
	c.write.StatsWrites += r.StatsWrites
	c.write.IngestedBytes += r.IngestedBytes
	c.write.CompactedBytes += r.CompactedBytes
}

// WriteStats returns a snapshot of the accumulated write-path counters
// and the current per-tier segment counts. Safe for concurrent use (the
// daemon serves it while rounds run); never touches the DHT.
func (c *Cluster) WriteStats() WriteStats {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	out := c.write
	maxLevel := -1
	shards := make([]int, 0, len(c.shardTiers))
	for s := range c.shardTiers {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		for _, l := range c.shardTiers[s] {
			if l > maxLevel {
				maxLevel = l
			}
		}
	}
	if maxLevel >= 0 {
		out.SegmentsPerTier = make([]int, maxLevel+1)
		for _, s := range shards {
			for _, l := range c.shardTiers[s] {
				out.SegmentsPerTier[l]++
			}
		}
	}
	return out
}
