// Package core is QueenBee itself — the paper's primary contribution. It
// wires the substrates together exactly as Figure 1 sketches:
//
//   - content creators publish through the smart contract (no crawling);
//     the page bytes go to the DWeb content store, the URL→CID binding
//     and the index task go on chain;
//   - worker bees poll the chain for tasks, fetch content from the DWeb,
//     build deterministic index segments or page-rank partitions, vote by
//     commit–reveal, and materialize winning results into the DHT;
//   - the frontend answers keyword queries by fetching the matched
//     inverted lists from the DHT, intersecting them, ranking with
//     BM25×PageRank, and attaching relevant ads from the contract's ad
//     market.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/dht"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/xrand"
)

// Config assembles a simulated QueenBee deployment.
type Config struct {
	Seed uint64

	// NumPeers is the number of plain DWeb devices (beyond bees).
	NumPeers int
	// NumBees is the number of worker bees.
	NumBees int
	// NumShards is the term-shard count of the distributed index.
	NumShards int
	// BlockInterval is the simulated time between sealed blocks.
	BlockInterval time.Duration
	// RankWeight blends page rank into query scores.
	RankWeight float64

	// SegCacheBytes bounds each frontend's per-digest segment cache;
	// ChainCacheBytes bounds its per-shard merged-chain cache. Publish
	// churn retires digests and chains, so both are LRU-evicted against
	// these budgets. Zero selects the defaults below.
	SegCacheBytes   int64
	ChainCacheBytes int64

	// ParallelRounds lets ProcessRound fan its commit and materialize
	// waves out across goroutines (one per bee, then one per touched
	// shard). DHT state stays byte-identical either way — the round
	// engine orders every write deterministically — so this only trades
	// wall-clock for goroutines. Forced off under Net.SharedStream,
	// where a single RNG stream makes draw order scheduling-dependent.
	ParallelRounds bool

	// PoolSize is the number of frontends in the serving tier, each
	// attached to its own peer with its own caches, behind the
	// deterministic least-loaded balancer (see FrontendPool). Zero or
	// negative means 1.
	PoolSize int
	// HedgedReads duplicates each query's slowest shard fetch on a
	// second pool frontend: first reply wins the latency, both replies
	// pay bytes. Needs PoolSize ≥ 2.
	HedgedReads bool
	// DefaultDeadline bounds the simulated latency of queries that carry
	// no deadline of their own (see Query.Deadline). Zero means none.
	DefaultDeadline time.Duration

	// FaultPlan, when set, scripts churn against the cluster: the plan
	// advances on every Seal using the cluster's simulated clock (epoch =
	// boot), so "50% of peers crash mid-round" is a replayable schedule.
	FaultPlan *netsim.FaultPlan
	// Maintenance runs the self-healing pass (republish, re-seed, repair,
	// reprovide — see RunMaintenance) at the end of every processed round.
	Maintenance bool
	// DegradedReads lets queries return partial results with a typed
	// Degraded warning when some shards stay unreachable after retries,
	// instead of failing the whole wave.
	DegradedReads bool

	// ExhaustiveScoring disables the block-max WAND top-k executor (A?
	// ablation / E18 baseline): every candidate document is fully scored.
	// Results are byte-identical either way; only the work differs.
	ExhaustiveScoring bool

	// MonolithicCompaction restores the legacy compaction policy (merge a
	// shard's whole chain into one segment past a fixed threshold) instead
	// of the size-tiered default. Search results are byte-identical either
	// way; only write amplification differs — the E19 baseline and the
	// TestWriteTieredMatchesMonolithic control.
	MonolithicCompaction bool

	// RankFullEvery makes every Nth rank epoch started through
	// StartRankEpochDelta a full recompute instead of a delta — the
	// exactness escape hatch bounding the frozen-subgraph approximation's
	// drift. Zero selects the default (4); negative disables full
	// recomputes entirely (every epoch after the first is a delta).
	RankFullEvery int

	Net      netsim.Config
	DHT      dht.Config
	Peer     store.PeerConfig
	Contract contracts.Config
}

// Default frontend cache budgets: enough for every simulated corpus to
// stay fully warm, small enough that a browser-grade device could donate
// them.
const (
	DefaultSegCacheBytes   = 32 << 20
	DefaultChainCacheBytes = 32 << 20
)

// DefaultConfig returns a small, fast deployment.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		NumPeers:        16,
		NumBees:         4,
		NumShards:       8,
		BlockInterval:   5 * time.Second,
		RankWeight:      1.0,
		SegCacheBytes:   DefaultSegCacheBytes,
		ChainCacheBytes: DefaultChainCacheBytes,
		ParallelRounds:  true,
		Net:             netsim.DefaultConfig(),
		DHT:             dht.DefaultConfig(),
		Peer:            store.DefaultPeerConfig(),
		Contract:        contracts.DefaultConfig(),
	}
}

// Cluster is one simulated QueenBee deployment: the network, the chain,
// the contract, the DWeb peers and the worker bees.
type Cluster struct {
	cfg Config

	Clock *vclock.Clock
	Net   *netsim.Network
	Chain *chain.Chain
	QB    *contracts.QueenBee

	Peers []*store.Peer
	Bees  []*WorkerBee

	treasury *chain.Account
	nonces   map[chain.Address]uint64
	rng      *xrand.RNG

	nextRankEpoch uint64

	// bootCost accumulates the DHT join traffic paid while assembling
	// the deployment (initial bootstrap plus every later AddBee join).
	// It is deliberately kept out of per-query receipts: experiments
	// report steady-state serving costs, and setup traffic is exposed
	// separately through BootCost.
	bootCost netsim.Cost

	// Fault injection and self-healing (see maintenance.go).
	faultPlan  *netsim.FaultPlan
	faultEpoch time.Time
	repairMu   sync.Mutex
	repair     RepairStats

	// Write-path accounting (see WriteStats): accumulated round counters
	// plus the latest per-shard tier layout, guarded so serving surfaces
	// (queenbeed GET /stats) can read them while rounds run.
	writeMu    sync.Mutex
	write      WriteStats
	shardTiers map[int][]int // shard → levels of its current chain
}

// treasurySupply is the genesis allocation the faucet draws from.
const treasurySupply = 1 << 40

// NewCluster boots a deployment: peers join the DHT, bees register and
// stake, and the genesis block allocates the faucet treasury.
func NewCluster(cfg Config) *Cluster {
	if cfg.NumPeers <= 0 {
		cfg.NumPeers = 8
	}
	if cfg.NumShards <= 0 {
		cfg.NumShards = 8
	}
	if cfg.BlockInterval <= 0 {
		cfg.BlockInterval = 5 * time.Second
	}
	if cfg.SegCacheBytes <= 0 {
		cfg.SegCacheBytes = DefaultSegCacheBytes
	}
	if cfg.ChainCacheBytes <= 0 {
		cfg.ChainCacheBytes = DefaultChainCacheBytes
	}
	cfg.Net.Seed = cfg.Seed + 1

	c := &Cluster{
		cfg:        cfg,
		Clock:      vclock.New(time.Time{}),
		Net:        netsim.New(cfg.Net),
		treasury:   chain.NewNamedAccount(cfg.Seed, "treasury"),
		nonces:     make(map[chain.Address]uint64),
		rng:        xrand.New(cfg.Seed),
		shardTiers: make(map[int][]int),
	}
	c.Chain = chain.New(c.Clock, map[chain.Address]uint64{
		c.treasury.Address(): treasurySupply,
	})
	c.QB = contracts.New(cfg.Contract)
	c.Chain.RegisterContract(c.QB, true)

	// DWeb peers.
	for i := 0; i < cfg.NumPeers; i++ {
		addr := netsim.NodeID(fmt.Sprintf("peer-%03d", i))
		d := dht.NewNode(c.Net, addr, cfg.DHT)
		c.Peers = append(c.Peers, store.NewPeer(c.Net, d, cfg.Peer))
	}
	c.bootstrapDHT()

	// Worker bees: each is a DWeb peer plus a funded, staked account.
	for i := 0; i < cfg.NumBees; i++ {
		c.AddBee(fmt.Sprintf("bee-%03d", i))
	}
	c.Seal()
	// A config-supplied fault plan starts its clock now — after boot — so
	// event times are relative to the healthy, bootstrapped deployment.
	if cfg.FaultPlan != nil {
		c.SetFaultPlan(cfg.FaultPlan)
	}
	return c
}

// bootstrapDHT joins every peer through the first one.
func (c *Cluster) bootstrapDHT() {
	if len(c.Peers) == 0 {
		return
	}
	seed := c.Peers[0].DHT().Self()
	for _, p := range c.Peers[1:] {
		c.bootCost = c.bootCost.Seq(p.DHT().Bootstrap([]dht.Contact{seed}))
	}
	for _, p := range c.Peers {
		c.bootCost = c.bootCost.Seq(p.DHT().Bootstrap([]dht.Contact{seed}))
	}
}

// BootCost reports the accumulated DHT join traffic paid to assemble the
// deployment: the initial bootstrap rounds plus every AddBee join since.
// Setup traffic is accounted here rather than on per-query receipts.
func (c *Cluster) BootCost() netsim.Cost { return c.bootCost }

// AddBee creates, funds, stakes and registers a new worker bee. The bee
// is active after the next Seal.
func (c *Cluster) AddBee(name string) *WorkerBee {
	addr := netsim.NodeID(name)
	d := dht.NewNode(c.Net, addr, c.cfg.DHT)
	peer := store.NewPeer(c.Net, d, c.cfg.Peer)
	if len(c.Peers) > 0 {
		c.bootCost = c.bootCost.Seq(d.Bootstrap([]dht.Contact{c.Peers[0].DHT().Self()}))
	}
	acct := chain.NewNamedAccount(c.cfg.Seed, "bee:"+name)
	stake := c.cfg.Contract.MinStake
	if stake == 0 {
		stake = 100
	}
	c.Fund(acct.Address(), stake*10)
	bee := &WorkerBee{
		cluster: c,
		Name:    name,
		Account: acct,
		Peer:    peer,
		pending: make(map[string]pendingResult),
		written: make(map[string]bool),
	}
	c.Bees = append(c.Bees, bee)
	c.SubmitCall(acct, contracts.MethodRegisterWorker, nil, stake)
	return bee
}

// NewAccount creates and funds an externally owned account (publisher,
// advertiser, clicker). Funds are spendable after the next Seal.
func (c *Cluster) NewAccount(name string, funds uint64) *chain.Account {
	acct := chain.NewNamedAccount(c.cfg.Seed, "acct:"+name)
	c.Fund(acct.Address(), funds)
	return acct
}

// Fund transfers honey from the treasury (applied at next Seal).
func (c *Cluster) Fund(to chain.Address, amount uint64) {
	tx := chain.NewTransfer(c.treasury, c.nonce(c.treasury.Address()), to, amount)
	if err := c.Chain.Submit(tx); err != nil {
		panic(fmt.Sprintf("core: faucet submit: %v", err))
	}
}

// SubmitCall signs and submits a QueenBee contract call with automatic
// nonce management. The call executes at the next Seal.
func (c *Cluster) SubmitCall(from *chain.Account, method string, params any, value uint64) *chain.Tx {
	tx := chain.NewCall(from, c.nonce(from.Address()), contracts.ContractName, method, params, value)
	if err := c.Chain.Submit(tx); err != nil {
		panic(fmt.Sprintf("core: submit %s: %v", method, err))
	}
	return tx
}

func (c *Cluster) nonce(a chain.Address) uint64 {
	n := c.nonces[a]
	c.nonces[a] = n + 1
	return n
}

// Seal advances simulated time by one block interval and seals a block.
// If a fault plan is attached, its due events fire here — churn lands at
// block boundaries, which is where the simulated world moves.
func (c *Cluster) Seal() *chain.Block {
	c.Clock.Advance(c.cfg.BlockInterval)
	b := c.Chain.Seal()
	if c.faultPlan != nil {
		c.faultPlan.Advance(c.Clock.Since(c.faultEpoch), c.Net)
	}
	return b
}

// SetFaultPlan attaches a churn schedule whose event times are measured
// from now; due events fire on each subsequent Seal.
func (c *Cluster) SetFaultPlan(p *netsim.FaultPlan) {
	c.faultPlan = p
	c.faultEpoch = c.Clock.Now()
}

// FaultPlan returns the attached churn schedule, if any.
func (c *Cluster) FaultPlan() *netsim.FaultPlan { return c.faultPlan }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// RandomPeer returns a pseudo-random DWeb peer.
func (c *Cluster) RandomPeer() *store.Peer {
	return c.Peers[c.rng.Intn(len(c.Peers))]
}

// ProcessRound drives one full protocol round:
//
//  1. every bee computes results and commits for its open tasks — a
//     goroutine wave under ParallelRounds, with commitments submitted
//     sequentially in bee order;
//  2. a block seals the commits;
//  3. every bee reveals; the last reveal of each task auto-finalizes it;
//  4. a block seals the reveals;
//  5. winning bees materialize finalized results into the DHT as one
//     batch: a segment-write wave, then one pointer read-modify-write
//     per touched shard, then one stats bump (see round.go).
//
// It returns the number of tasks materialized during the round.
func (c *Cluster) ProcessRound() int {
	return c.ProcessRoundReceipt().Materialized
}

// ProcessRoundReceipt is ProcessRound with the full accounting: wave
// vs serial costs, mutable-DHT write counters, and the round's error
// summary.
func (c *Cluster) ProcessRoundReceipt() RoundReceipt {
	var r RoundReceipt
	c.commitWave(&r)
	c.Seal()
	for _, bee := range c.Bees {
		bee.RevealPhase()
	}
	c.Seal()
	c.materializePass(&r)
	// Janitor: anyone may finalize a task whose reveal window closed
	// (slashing non-revealers); the treasury plays that role here so
	// stuck tasks always resolve to finalized-or-failed.
	if stuck := c.QB.OpenTasksPastDeadline(c.Chain.Height()); len(stuck) > 0 {
		for _, id := range stuck {
			c.SubmitCall(c.treasury, contracts.MethodFinalize, contracts.FinalizeParams{TaskID: id}, 0)
		}
		c.Seal()
		c.materializePass(&r)
	}
	// Self-healing: with Maintenance on, every round ends with a repair
	// pass, so churn damage is bounded by one round's exposure.
	if c.cfg.Maintenance {
		c.RunMaintenance()
	}
	c.noteRoundReceipt(r)
	return r
}

// RunUntilIdle processes rounds until no open tasks remain (bounded by
// maxRounds). Returns rounds executed.
func (c *Cluster) RunUntilIdle(maxRounds int) int {
	for round := 1; round <= maxRounds; round++ {
		c.ProcessRound()
		if open, _, _ := c.QB.TaskCounts(); open == 0 {
			return round
		}
	}
	return maxRounds
}

// StartRankEpoch creates the rank tasks for the current link graph,
// partitioned across the given number of rank tasks, and returns the
// epoch number. Drive with ProcessRound until idle, then ranks are
// finalized on chain.
func (c *Cluster) StartRankEpoch(partitions int) uint64 {
	c.nextRankEpoch++
	epoch := c.nextRankEpoch
	c.SubmitCall(c.treasuryAccount(), contracts.MethodCreateRankEpoch,
		contracts.CreateRankEpochParams{Epoch: epoch, Partitions: partitions}, 0)
	c.Seal()
	return epoch
}

// StartRankEpochDelta starts a rank epoch on the incremental schedule:
// a delta epoch (bees re-walk only the subgraph reachable from pages
// dirtied since the last epoch, warm-started from the finalized vector)
// unless exactness is due — the first epoch ever, or every
// RankFullEvery'th epoch, runs a full recompute so the frozen-subgraph
// approximation's drift is periodically reset to zero. Epochs started
// here must be driven to finalization (RunUntilIdle) before the next
// one starts: a delta epoch's inputs are the finalized vector and the
// dirty snapshot taken at creation.
func (c *Cluster) StartRankEpochDelta(partitions int) uint64 {
	c.nextRankEpoch++
	epoch := c.nextRankEpoch
	delta := c.QB.LatestRankEpoch() > 0
	every := c.cfg.RankFullEvery
	if every == 0 {
		every = DefaultRankFullEvery
	}
	if every > 0 && epoch%uint64(every) == 0 {
		delta = false
	}
	c.SubmitCall(c.treasuryAccount(), contracts.MethodCreateRankEpoch,
		contracts.CreateRankEpochParams{Epoch: epoch, Partitions: partitions, Delta: delta}, 0)
	c.Seal()
	return epoch
}

// DefaultRankFullEvery is the exactness cadence Config.RankFullEvery=0
// selects: every 4th epoch on the delta schedule is a full recompute.
const DefaultRankFullEvery = 4

// PayPopularity triggers the threshold reward for a finalized epoch.
func (c *Cluster) PayPopularity(epoch uint64) *chain.Tx {
	tx := c.SubmitCall(c.treasuryAccount(), contracts.MethodPayPopularity,
		contracts.PayPopularityParams{Epoch: epoch}, 0)
	c.Seal()
	return tx
}

func (c *Cluster) treasuryAccount() *chain.Account { return c.treasury }

// FailPeers marks a fraction of the plain DWeb peers (never bees) as
// crashed and returns the failed addresses. Deterministic per cluster
// seed.
func (c *Cluster) FailPeers(fraction float64) []netsim.NodeID {
	n := int(fraction * float64(len(c.Peers)))
	var failed []netsim.NodeID
	for _, idx := range c.rng.Sample(len(c.Peers), n) {
		addr := c.Peers[idx].Addr()
		c.Net.SetDown(addr, true)
		failed = append(failed, addr)
	}
	return failed
}

// HealPeers brings previously failed peers back.
func (c *Cluster) HealPeers(addrs []netsim.NodeID) {
	for _, a := range addrs {
		c.Net.SetDown(a, false)
	}
}

// RefreshDHT makes every live node re-replicate its DHT records to the
// current k closest peers — the periodic republish real Kademlia
// deployments run, compressed into one call for churn experiments.
func (c *Cluster) RefreshDHT() netsim.Cost {
	var total netsim.Cost
	for _, p := range c.Peers {
		if c.Net.IsDown(p.Addr()) {
			continue
		}
		total = total.Seq(p.DHT().Refresh())
	}
	for _, b := range c.Bees {
		if c.Net.IsDown(b.Peer.Addr()) {
			continue
		}
		total = total.Seq(b.Peer.DHT().Refresh())
	}
	return total
}
