package core

import (
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/contracts"
)

func smallCluster(t testing.TB) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumPeers = 10
	cfg.NumBees = 3
	return NewCluster(cfg)
}

func TestClusterBoot(t *testing.T) {
	c := smallCluster(t)
	if len(c.Peers) != 10 || len(c.Bees) != 3 {
		t.Fatalf("peers=%d bees=%d", len(c.Peers), len(c.Bees))
	}
	for _, b := range c.Bees {
		info, ok := c.QB.WorkerInfo(b.Account.Address())
		if !ok || !info.Active {
			t.Fatalf("bee %s not registered: %+v", b.Name, info)
		}
	}
	if err := c.Chain.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestPublishIndexSearchPipeline(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 1000)
	c.Seal()

	text := "queen bees coordinate the honey colony with remarkable precision"
	if _, err := c.Publish(alice, c.Peers[0], "dweb://hive", text, nil); err != nil {
		t.Fatal(err)
	}
	c.Seal() // publish tx executes, task created
	rounds := c.RunUntilIdle(5)
	if open, finalized, failed := c.QB.TaskCounts(); open != 0 || finalized != 1 || failed != 0 {
		t.Fatalf("tasks open=%d finalized=%d failed=%d after %d rounds", open, finalized, failed, rounds)
	}

	fe := NewFrontend(c, c.Peers[5])
	resp, err := fe.Search("honey colony", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].URL != "dweb://hive" {
		t.Fatalf("results = %+v", resp.Results)
	}
	// With K=8 replication on a 13-node swarm the frontend peer may hold
	// every record locally (zero cost) — that is the DWeb caching
	// advantage, so only sanity-check the accounting.
	if resp.Cost.Latency < 0 {
		t.Fatal("negative search cost")
	}

	// Fetching the result returns the genuine content, hash-verified.
	content, _, err := fe.FetchResult(resp.Results[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != text {
		t.Fatal("fetched content differs from published text")
	}
}

func TestSearchConjunctiveSemantics(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	docs := map[string]string{
		"dweb://a": "red apples grow on trees",
		"dweb://b": "red fire trucks drive fast",
		"dweb://c": "apples and fire do not mix",
	}
	for url, text := range docs {
		if _, err := c.Publish(alice, c.Peers[0], url, text, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Seal()
	c.RunUntilIdle(6)

	fe := NewFrontend(c, c.Peers[3])
	resp, err := fe.Search("red apples", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].URL != "dweb://a" {
		t.Fatalf("AND semantics broken: %+v", resp.Results)
	}
	// A term with no postings yields no results, no error.
	resp, err = fe.Search("nonexistentterm apples", 10)
	if err != nil || len(resp.Results) != 0 {
		t.Fatalf("missing term: results=%v err=%v", resp.Results, err)
	}
}

func TestRepublishFreshness(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	c.Publish(alice, c.Peers[0], "dweb://page", "original ancient words", nil)
	c.Seal()
	c.RunUntilIdle(5)

	fe := NewFrontend(c, c.Peers[4])
	resp, _ := fe.Search("ancient", 10)
	if len(resp.Results) != 1 {
		t.Fatalf("v1 not searchable: %+v", resp.Results)
	}

	// Republish with different content; the old term must vanish.
	c.Publish(alice, c.Peers[0], "dweb://page", "fresh modern phrasing", nil)
	c.Seal()
	c.RunUntilIdle(5)

	resp, _ = fe.Search("ancient", 10)
	if len(resp.Results) != 0 {
		t.Fatalf("stale postings survived republish: %+v", resp.Results)
	}
	resp, _ = fe.Search("modern", 10)
	if len(resp.Results) != 1 {
		t.Fatalf("v2 not searchable: %+v", resp.Results)
	}
}

func TestBeesEarnTaskRewards(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	before := make(map[string]uint64)
	for _, b := range c.Bees {
		before[b.Name] = c.Chain.State().Balance(b.Account.Address())
	}
	c.Publish(alice, c.Peers[0], "dweb://p", "reward worthy content here", nil)
	c.Seal()
	c.RunUntilIdle(5)

	earned := 0
	for _, b := range c.Bees {
		if c.Chain.State().Balance(b.Account.Address()) > before[b.Name] {
			earned++
		}
	}
	if earned == 0 {
		t.Fatal("no bee earned a task reward")
	}
	st := c.Chain.State()
	if st.SumBalances() != st.Supply() {
		t.Fatal("honey conservation violated")
	}
}

func TestRankEpochEndToEnd(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	// hub is linked by everyone.
	c.Publish(alice, c.Peers[0], "dweb://hub", "the central hub of everything", nil)
	for _, u := range []string{"dweb://s1", "dweb://s2", "dweb://s3"} {
		c.Publish(alice, c.Peers[0], u, "a spoke page linking to the hub "+u, []string{"dweb://hub"})
	}
	c.Seal()
	c.RunUntilIdle(6)

	epoch := c.StartRankEpoch(2)
	c.RunUntilIdle(6)
	re, ok := c.QB.RankEpochInfo(epoch)
	if !ok || !re.Done {
		t.Fatalf("epoch not finalized: %+v", re)
	}
	hub := c.QB.PageRank("dweb://hub")
	spoke := c.QB.PageRank("dweb://s1")
	if hub <= spoke {
		t.Fatalf("hub rank %v should exceed spoke %v", hub, spoke)
	}

	fe := NewFrontend(c, c.Peers[2])
	top := fe.TopRankedPages(1)
	if len(top) != 1 || top[0] != "dweb://hub" {
		t.Fatalf("top pages = %v", top)
	}
}

func TestPageRankInfluencesSearchOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 10
	cfg.NumBees = 3
	cfg.RankWeight = 5.0
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 1000)
	c.Seal()

	// Same text so BM25 ties; popularity must break the tie.
	text := "identical twin pages about beekeeping techniques"
	c.Publish(alice, c.Peers[0], "dweb://popular", text, nil)
	c.Publish(alice, c.Peers[0], "dweb://obscure", text, nil)
	for i := 0; i < 5; i++ {
		c.Publish(alice, c.Peers[0], urlFor(i), "filler linking page", []string{"dweb://popular"})
	}
	c.Seal()
	c.RunUntilIdle(8)
	c.StartRankEpoch(1)
	c.RunUntilIdle(6)

	fe := NewFrontend(c, c.Peers[1])
	resp, err := fe.Search("beekeeping techniques", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if resp.Results[0].URL != "dweb://popular" {
		t.Fatalf("page rank did not lift popular page: %+v", resp.Results)
	}
}

func urlFor(i int) string {
	return "dweb://filler-" + string(rune('a'+i))
}

func TestAdsAppearInSearch(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 1000)
	adv := c.NewAccount("adv", 5000)
	c.Seal()
	c.Publish(alice, c.Peers[0], "dweb://shoes", "running shoes for marathon training", nil)
	c.SubmitCall(adv, contracts.MethodRegisterAd, contracts.RegisterAdParams{
		Keywords: []string{"shoe", "marathon"}, BidPerClick: 10,
	}, 500)
	c.Seal()
	c.RunUntilIdle(5)

	fe := NewFrontend(c, c.Peers[2])
	resp, err := fe.Search("marathon shoes", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Ads) != 1 {
		t.Fatalf("ads = %+v", resp.Ads)
	}

	// A click pays the creator.
	before := c.Chain.State().Balance(alice.Address())
	c.SubmitCall(alice, contracts.MethodClick, contracts.ClickParams{
		AdID: resp.Ads[0].ID, URL: "dweb://shoes",
	}, 0)
	c.Seal()
	if got := c.Chain.State().Balance(alice.Address()); got <= before {
		t.Fatal("creator did not receive click revenue")
	}
}

func TestCollusionCorruptsIndexWithMajority(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 8
	cfg.NumBees = 3
	c := NewCluster(cfg)
	// 2 of 3 bees collude; quorum 3 → colluders win every task.
	c.Bees[0].Colluding = true
	c.Bees[1].Colluding = true
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	c.Publish(alice, c.Peers[0], "dweb://victim", "legitimate content to destroy", nil)
	c.Seal()
	c.RunUntilIdle(5)

	task, ok := c.QB.TaskInfo("idx:dweb://victim:1")
	if !ok || task.Status != contracts.StatusFinalized {
		t.Fatalf("task = %+v", task)
	}
	// The honest bee computed a different digest and was slashed.
	honest := c.Bees[2]
	info, _ := c.QB.WorkerInfo(honest.Account.Address())
	if info.Slashes != 1 {
		t.Fatalf("honest bee slashes = %d, want 1 (attack succeeded)", info.Slashes)
	}
	// Search now surfaces the spam doc, not the victim content.
	fe := NewFrontend(c, c.Peers[1])
	resp, _ := fe.Search("legitimate content", 10)
	if len(resp.Results) != 0 {
		t.Fatalf("victim content should be gone from index: %+v", resp.Results)
	}
}

func TestSingleColluderIsDefeatedAndSlashed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 8
	cfg.NumBees = 3
	c := NewCluster(cfg)
	c.Bees[0].Colluding = true // minority
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	c.Publish(alice, c.Peers[0], "dweb://safe", "protected by quorum voting", nil)
	c.Seal()
	c.RunUntilIdle(5)

	info, _ := c.QB.WorkerInfo(c.Bees[0].Account.Address())
	if info.Slashes != 1 {
		t.Fatalf("colluder slashes = %d, want 1", info.Slashes)
	}
	fe := NewFrontend(c, c.Peers[1])
	resp, _ := fe.Search("quorum voting", 10)
	if len(resp.Results) != 1 || resp.Results[0].URL != "dweb://safe" {
		t.Fatalf("honest index should win: %+v", resp.Results)
	}
}

func TestScraperDefenseZeroesMirrorRank(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 8
	cfg.NumBees = 3
	c := NewCluster(cfg)
	for _, b := range c.Bees {
		b.DetectDuplicates = true
	}
	alice := c.NewAccount("alice", 1000)
	scraper := c.NewAccount("scraper", 1000)
	c.Seal()

	original := "an extensive article describing the honeybee waggle dance communication system in detail " +
		strings.Repeat("waggle dance communication ", 10)
	c.Publish(alice, c.Peers[0], "dweb://original", original, nil)
	c.Seal()
	c.RunUntilIdle(5)
	// Scraper publishes a near-identical mirror later.
	c.Publish(scraper, c.Peers[1], "dweb://mirror", original+" copied", nil)
	c.Seal()
	c.RunUntilIdle(5)

	c.StartRankEpoch(1)
	c.RunUntilIdle(6)

	if mirror := c.QB.PageRank("dweb://mirror"); mirror != 0 {
		t.Fatalf("mirror rank = %v, want 0 (defense active)", mirror)
	}
	if orig := c.QB.PageRank("dweb://original"); orig <= 0 {
		t.Fatalf("original rank = %v, want > 0", orig)
	}
}

func TestPopularityRewardFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 8
	cfg.NumBees = 3
	cfg.Contract.PopularityThreshold = 0.2
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	c.Publish(alice, c.Peers[0], "dweb://hub", "the hub everyone links to", nil)
	for i := 0; i < 4; i++ {
		c.Publish(alice, c.Peers[0], urlFor(i), "spoke page", []string{"dweb://hub"})
	}
	c.Seal()
	c.RunUntilIdle(8)
	epoch := c.StartRankEpoch(1)
	c.RunUntilIdle(6)

	before := c.Chain.State().Balance(alice.Address())
	tx := c.PayPopularity(epoch)
	r := c.Chain.Receipt(tx.Hash())
	if r == nil || !r.OK {
		t.Fatalf("popularity payout failed: %+v", r)
	}
	if got := c.Chain.State().Balance(alice.Address()); got <= before {
		t.Fatal("popular owner not rewarded")
	}
}

func TestChainIntegrityAfterFullWorkload(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	for i := 0; i < 5; i++ {
		c.Publish(alice, c.Peers[0], urlFor(i), "document number "+string(rune('0'+i)), nil)
	}
	c.Seal()
	c.RunUntilIdle(8)
	if err := c.Chain.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	st := c.Chain.State()
	if st.SumBalances() != st.Supply() {
		t.Fatal("conservation violated")
	}
}

func TestAddBeeDynamically(t *testing.T) {
	c := smallCluster(t)
	n := len(c.Bees)
	bee := c.AddBee("late-bee")
	c.Seal()
	if len(c.Bees) != n+1 {
		t.Fatal("bee not added")
	}
	info, ok := c.QB.WorkerInfo(bee.Account.Address())
	if !ok || !info.Active {
		t.Fatalf("late bee not active: %+v", info)
	}
}

func TestFundAndAccounts(t *testing.T) {
	c := smallCluster(t)
	acct := c.NewAccount("funded", 777)
	c.Seal()
	if got := c.Chain.State().Balance(acct.Address()); got != 777 {
		t.Fatalf("balance = %d, want 777", got)
	}
	// Deterministic account derivation.
	again := chain.NewNamedAccount(c.Config().Seed, "acct:funded")
	if again.Address() != acct.Address() {
		t.Fatal("account derivation not deterministic")
	}
}
