package core

import (
	"strings"
	"testing"
)

// queryCluster publishes three documents with known term overlaps.
func queryCluster(t *testing.T) (*Cluster, *Frontend) {
	t.Helper()
	c := smallCluster(t)
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	docs := map[string]string{
		"dweb://q1": "red apples grow on apple trees in the orchard",
		"dweb://q2": "red fire trucks race through the city streets",
		"dweb://q3": "green apples taste sour compared to red apples",
	}
	for url, text := range docs {
		if _, err := c.Publish(alice, c.Peers[0], url, text, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Seal()
	c.RunUntilIdle(6)
	return c, NewFrontend(c, c.Peers[3])
}

func TestSearchModeOR(t *testing.T) {
	_, fe := queryCluster(t)
	resp, err := fe.SearchWith("orchard streets", SearchOptions{Mode: ModeOR, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	// OR: q1 (orchard) and q2 (streets).
	if len(resp.Results) != 2 {
		t.Fatalf("OR results = %+v", resp.Results)
	}
	urls := map[string]bool{}
	for _, r := range resp.Results {
		urls[r.URL] = true
	}
	if !urls["dweb://q1"] || !urls["dweb://q2"] {
		t.Fatalf("OR results = %v", urls)
	}
}

func TestSearchModeORWithMissingTerm(t *testing.T) {
	_, fe := queryCluster(t)
	resp, err := fe.SearchWith("orchard zzznonexistent", SearchOptions{Mode: ModeOR, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].URL != "dweb://q1" {
		t.Fatalf("OR with missing term = %+v", resp.Results)
	}
}

func TestSearchModePhrase(t *testing.T) {
	_, fe := queryCluster(t)
	// "red apples" adjacent: q1 ("red apples grow") and q3 ("to red
	// apples"); q2 has "red" but no adjacent "apples".
	resp, err := fe.SearchWith("red apples", SearchOptions{Mode: ModePhrase, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("phrase results = %+v", resp.Results)
	}
	for _, r := range resp.Results {
		if r.URL == "dweb://q2" {
			t.Fatal("q2 should not phrase-match 'red apples'")
		}
	}

	// AND would also match nothing extra here, but phrase must reject
	// non-adjacent orders: "apples red" never occurs.
	resp, err = fe.SearchWith("apples red", SearchOptions{Mode: ModePhrase, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 {
		t.Fatalf("reversed phrase should not match: %+v", resp.Results)
	}
}

func TestSearchModeAndDefault(t *testing.T) {
	_, fe := queryCluster(t)
	and, err := fe.Search("red apples", 10)
	if err != nil {
		t.Fatal(err)
	}
	with, err := fe.SearchWith("red apples", SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(and.Results) != len(with.Results) {
		t.Fatal("Search and SearchWith(default) disagree")
	}
}

func TestSearchSnippets(t *testing.T) {
	_, fe := queryCluster(t)
	resp, err := fe.SearchWith("orchard", SearchOptions{K: 5, Snippets: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("results = %+v", resp.Results)
	}
	sn := resp.Results[0].Snippet
	if !strings.Contains(sn, "«orchard»") {
		t.Fatalf("snippet = %q, want marked match", sn)
	}
	if !strings.Contains(sn, "trees") {
		t.Fatalf("snippet = %q, want surrounding context", sn)
	}
}

func TestSnippetFunction(t *testing.T) {
	text := "one two three four five six seven eight nine ten"
	sn := Snippet(text, []string{"five"}, 4)
	if !strings.Contains(sn, "«five»") {
		t.Fatalf("snippet = %q", sn)
	}
	if strings.Contains(sn, "one") || strings.Contains(sn, "ten") {
		t.Fatalf("window too wide: %q", sn)
	}
	// No match: prefix fallback.
	sn = Snippet(text, []string{"missing"}, 3)
	if !strings.HasPrefix(sn, "one two three") {
		t.Fatalf("fallback snippet = %q", sn)
	}
	// Match at the very start.
	sn = Snippet(text, []string{"one"}, 4)
	if !strings.HasPrefix(sn, "«one»") {
		t.Fatalf("edge snippet = %q", sn)
	}
}

func TestQueryModeString(t *testing.T) {
	if ModeAND.String() != "AND" || ModeOR.String() != "OR" || ModePhrase.String() != "PHRASE" {
		t.Fatal("mode names wrong")
	}
	if QueryMode(99).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}

func TestSearchKDefaults(t *testing.T) {
	_, fe := queryCluster(t)
	resp, err := fe.SearchWith("red", SearchOptions{}) // K unset → 10
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("default K should return results")
	}
}
