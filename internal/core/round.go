package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/contracts"
	"repro/internal/dht"
	"repro/internal/netsim"
)

// This file is the write-side round engine: the concurrent, deterministic
// drive train behind ProcessRound. Each round runs three waves —
//
//  1. commit: every bee fetches content and builds its result on its own
//     goroutine (per-bee compute is independent: own pending map, own
//     DWeb peer, read-locked contract views); commitments are then
//     submitted sequentially in bee order so transaction order is stable;
//  2. reveal: cheap on-chain calls, sequential;
//  3. materialize: bees write their winning immutable segments in a
//     goroutine wave, then the round's contributions are grouped by
//     shard and every touched shard gets exactly ONE pointer
//     read-modify-write (and at most one compaction) no matter how many
//     segments landed on it, plus one global stats bump for the whole
//     round. A round with K segments over S shards costs O(S) mutable
//     DHT round trips, not O(K·S).
//
// Determinism contract: with the default per-link netsim streams the
// same seed produces byte-identical DHT state (shard pointers, segments,
// stats) whether the waves fan out or run sequentially
// (Config.ParallelRounds=false, or SharedStream mode). Wave costs fold
// with Par in slot order, mirroring Frontend.loadShards.

// RoundError is one recorded write-path failure: which bee, which task
// (or shard), at which pipeline stage. The zero Shard value is
// meaningful, so "not shard-scoped" is -1.
type RoundError struct {
	Bee   string
	Task  string // empty for shard- or stats-scoped failures
	Shard int    // -1 when the failure is not shard-scoped
	Stage string // "build" | "decode" | "segment-write" | "shard-append" | "compact" | "stats"
	Err   error
}

// Error implements error.
func (e RoundError) Error() string {
	where := e.Task
	if e.Shard >= 0 {
		where = fmt.Sprintf("shard %d", e.Shard)
	}
	return fmt.Sprintf("core: bee %s: %s %s: %v", e.Bee, e.Stage, where, e.Err)
}

// RoundReceipt reports one ProcessRound: what was materialized, the
// simulated cost of the round's waves, the mutable-DHT write counters
// the batching claims are asserted against, and every write-path error
// the round surfaced (instead of swallowing).
type RoundReceipt struct {
	// Materialized counts tasks whose winning results landed this round
	// (index segments written plus finalized rank tasks).
	Materialized int

	// CommitWave is the commit compute as the bees experienced it — a
	// parallel wave, the slowest bee. CommitSerial is what a sequential
	// driver would have paid (the sum); their ratio is the write-side
	// concurrency speedup BenchmarkIngest reports.
	CommitWave   netsim.Cost
	CommitSerial netsim.Cost
	// MaterializeWave / MaterializeSerial account the materialize phase
	// the same way: segment-write wave, then per-shard pointer wave,
	// then the stats bump.
	MaterializeWave   netsim.Cost
	MaterializeSerial netsim.Cost
	// StoreCost is the content-store wave of the publish step that
	// preceded this round (set by Engine.PublishBatch; zero for plain
	// rounds).
	StoreCost netsim.Cost

	// SegmentWrites counts immutable segment puts; PointerWrites counts
	// shard-pointer read-modify-writes (at most one per touched shard
	// per materialize pass); Compactions counts chain merges; StatsWrites
	// counts global-stats bumps (at most one per pass).
	SegmentWrites int
	PointerWrites int
	Compactions   int
	StatsWrites   int

	// IngestedBytes is the round's new segment bytes (each winning
	// segment counted once, however many shards its terms hash to);
	// CompactedBytes is the merged-segment bytes compaction rewrote. The
	// write-amplification claim E19 tabulates is their ratio over a
	// steady-ingest run: (ingested+compacted)/ingested stays
	// O(log shard bytes) under the tiered policy and grows O(shard
	// bytes) under the monolithic one.
	IngestedBytes  int64
	CompactedBytes int64

	// Errors lists every write-path failure of the round, also recorded
	// on the failing bee's Errs.
	Errors []RoundError
}

// Wave returns the round's total simulated makespan: publish store wave
// (if any), commit wave and materialize wave in sequence.
func (r RoundReceipt) Wave() netsim.Cost {
	return r.StoreCost.Seq(r.CommitWave).Seq(r.MaterializeWave)
}

// Serial returns what a fully sequential driver would have paid for the
// same round.
func (r RoundReceipt) Serial() netsim.Cost {
	return r.StoreCost.Seq(r.CommitSerial).Seq(r.MaterializeSerial)
}

// contribution is one winning index segment's input to the round's
// batched materialization: the shards its terms hash to and its
// first-version document/token counts for the stats bump.
type contribution struct {
	bee     *WorkerBee
	taskID  string
	digest  string
	bytes   int   // encoded segment size (ingested bytes, counted once)
	shards  []int // sorted
	newDocs int
	tokens  uint64
}

// parallelRounds reports whether the round engine may fan its waves out
// across goroutines: enabled by config and running on per-link netsim
// streams (the legacy shared stream serializes, as in loadShards, so
// historical golden costs cannot shift).
func (c *Cluster) parallelRounds() bool {
	return c.cfg.ParallelRounds && !c.Net.SharedStream()
}

// runWave executes fn(0..n-1), concurrently when parallel is set (and
// the wave has more than one leg), sequentially otherwise. Shared by
// the round engine's waves (gated on parallelRounds) and the query
// side's shard loads (gated on the netsim stream mode alone). Callers
// write results into index-addressed slots so both execution modes
// produce identical state.
func runWave(n int, parallel bool, fn func(i int)) {
	if n <= 1 || !parallel {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// forEachNode visits every DHT node in the deployment — DWeb peers
// first, then bee peers — in a fixed order.
func (c *Cluster) forEachNode(fn func(*dht.Node)) {
	for _, p := range c.Peers {
		fn(p.DHT())
	}
	for _, b := range c.Bees {
		fn(b.Peer.DHT())
	}
}

// runDHTWave is runWave for legs that issue DHT traffic. Around a
// parallel wave it freezes inbound-contact learning on every node in
// the deployment: handlers answering one leg's lookups must not mutate
// the routing tables a sibling leg's lookups traverse, or the sibling's
// path — and its cost — would depend on goroutine interleaving. Queued
// contacts are applied after the wave, node by node in deployment
// order, so the tables still converge and do so identically every run.
func (c *Cluster) runDHTWave(n int, fn func(i int)) {
	parallel := c.parallelRounds()
	if parallel && n > 1 {
		c.forEachNode(func(d *dht.Node) { d.SetDeferLearning(true) })
	}
	runWave(n, parallel, fn)
	if parallel && n > 1 {
		c.forEachNode(func(d *dht.Node) {
			d.SetDeferLearning(false)
			d.FlushLearning()
		})
	}
}

// commitWave fans the bees' commit compute out as one goroutine wave,
// then submits the resulting commitments sequentially in bee order.
func (c *Cluster) commitWave(r *RoundReceipt) {
	n := len(c.Bees)
	commits := make([][]contracts.CommitParams, n)
	costs := make([]netsim.Cost, n)
	errs := make([][]RoundError, n)
	parallel := c.parallelRounds()
	if parallel {
		// Concurrent bees all fetch the same batch pages; an inline
		// serve-cache Provide would mutate shared provider records
		// mid-wave, making a sibling's FindProviders result — and its
		// cost — depend on goroutine interleaving. Queue the
		// announcements and apply them in bee order after the wave, so
		// every bee fetches against the provider state the wave started
		// with and costs are a pure function of the seed.
		for _, b := range c.Bees {
			b.Peer.SetDeferProvides(true)
		}
	}
	c.runDHTWave(n, func(i int) {
		commits[i], costs[i], errs[i] = c.Bees[i].prepareCommits()
	})
	if parallel {
		for i, b := range c.Bees {
			b.Peer.SetDeferProvides(false)
			costs[i] = costs[i].Seq(b.Peer.FlushProvides())
		}
	}
	for i, b := range c.Bees {
		b.Cost = b.Cost.Seq(costs[i])
		b.Errs = append(b.Errs, errs[i]...)
		r.Errors = append(r.Errors, errs[i]...)
		r.CommitWave = r.CommitWave.Par(costs[i])
		r.CommitSerial = r.CommitSerial.Seq(costs[i])
		for _, params := range commits[i] {
			c.SubmitCall(b.Account, contracts.MethodCommit, params, 0)
		}
	}
}

// materializePass runs one batched materialize phase: a per-bee
// goroutine wave writes the winning immutable segments and collects
// contributions, then the contributions are grouped by shard and each
// touched shard gets one pointer RMW (and at most one compaction) on
// the first contributing bee's DHT node, and finally the whole round's
// stats land in one bump. May run twice per round (the janitor path
// finalizes stuck tasks mid-round); counters and costs accumulate.
func (c *Cluster) materializePass(r *RoundReceipt) {
	n := len(c.Bees)
	contribsBy := make([][]contribution, n)
	counts := make([]int, n)
	costs := make([]netsim.Cost, n)
	errs := make([][]RoundError, n)
	c.runDHTWave(n, func(i int) {
		contribsBy[i], counts[i], costs[i], errs[i] = c.Bees[i].collectWins()
	})

	var collectWave, collectSerial netsim.Cost
	var all []contribution
	for i, b := range c.Bees {
		b.Cost = b.Cost.Seq(costs[i])
		b.Errs = append(b.Errs, errs[i]...)
		r.Errors = append(r.Errors, errs[i]...)
		collectWave = collectWave.Par(costs[i])
		collectSerial = collectSerial.Seq(costs[i])
		r.Materialized += counts[i]
		r.SegmentWrites += len(contribsBy[i])
		all = append(all, contribsBy[i]...)
	}
	for _, ctr := range all {
		r.IngestedBytes += int64(ctr.bytes)
	}

	// Deterministic batch order: contributions sorted by task ID (each
	// task has exactly one designated writer, so IDs are unique), shards
	// ascending. The digest order within a shard pointer and the draw
	// order on every DHT link follow from this, not from goroutine
	// scheduling or map iteration.
	sort.Slice(all, func(i, j int) bool { return all[i].taskID < all[j].taskID })
	digestsByShard := make(map[int][]string)
	writerByShard := make(map[int]*WorkerBee)
	var shardOrder []int
	for _, ctr := range all {
		for _, s := range ctr.shards {
			if _, seen := writerByShard[s]; !seen {
				writerByShard[s] = ctr.bee
				shardOrder = append(shardOrder, s)
			}
			digestsByShard[s] = append(digestsByShard[s], ctr.digest)
		}
	}
	sort.Ints(shardOrder)

	shardCosts := make([]netsim.Cost, len(shardOrder))
	shardWrote := make([]bool, len(shardOrder))
	shardCompacted := make([]bool, len(shardOrder))
	shardBytes := make([]int64, len(shardOrder))
	shardPtrs := make([]ShardPointer, len(shardOrder))
	shardErrs := make([][]RoundError, len(shardOrder))
	// Fan out by WRITER, not by shard: two concurrent legs on the same
	// writer's node would interleave draws on its shared (caller,target)
	// netsim streams, so which leg pays which draw — and the wave's Par
	// latency — would depend on goroutine scheduling. Writers run in
	// parallel (disjoint caller links); each walks its own shards in
	// ascending order, pinning every link's draw sequence.
	var writers []*WorkerBee
	legsByWriter := make(map[*WorkerBee][]int)
	for j, s := range shardOrder {
		w := writerByShard[s]
		if _, seen := legsByWriter[w]; !seen {
			writers = append(writers, w)
		}
		legsByWriter[w] = append(legsByWriter[w], j)
	}
	c.runDHTWave(len(writers), func(wi int) {
		w := writers[wi]
		for _, j := range legsByWriter[w] {
			s := shardOrder[j]
			if c.cfg.MonolithicCompaction {
				// Legacy policy (the E19 control): append in one RMW, then
				// merge the whole chain into one segment past the threshold
				// (a second pointer write when it fires).
				ptr, cost, wrote, err := appendSegmentsToShard(w.Peer.DHT(), s, digestsByShard[s])
				shardCosts[j] = cost
				shardWrote[j] = wrote
				shardPtrs[j] = ptr
				if err != nil {
					shardErrs[j] = append(shardErrs[j], RoundError{Bee: w.Name, Shard: s, Stage: "shard-append", Err: err})
					continue
				}
				ptr, cost, compacted, mergedBytes, err := compactShardFromPtr(w.Peer.DHT(), s, ptr)
				shardCosts[j] = shardCosts[j].Seq(cost)
				shardCompacted[j] = compacted
				shardBytes[j] = mergedBytes
				shardPtrs[j] = ptr
				if err != nil {
					shardErrs[j] = append(shardErrs[j], RoundError{Bee: w.Name, Shard: s, Stage: "compact", Err: err})
				}
				continue
			}
			ptr, cost, wrote, res, err := materializeShardTiered(w.Peer.DHT(), s, c.cfg.NumShards, digestsByShard[s])
			shardCosts[j] = cost
			shardWrote[j] = wrote
			shardCompacted[j] = res.Compacted
			shardBytes[j] = res.CompactedBytes
			shardPtrs[j] = ptr
			if err != nil {
				shardErrs[j] = append(shardErrs[j], RoundError{Bee: w.Name, Shard: s, Stage: "compact", Err: err})
			}
		}
	})
	var shardWave, shardSerial netsim.Cost
	for j, s := range shardOrder {
		w := writerByShard[s]
		w.Cost = w.Cost.Seq(shardCosts[j])
		w.Errs = append(w.Errs, shardErrs[j]...)
		r.Errors = append(r.Errors, shardErrs[j]...)
		shardWave = shardWave.Par(shardCosts[j])
		shardSerial = shardSerial.Seq(shardCosts[j])
		if shardWrote[j] {
			r.PointerWrites++
		}
		if shardCompacted[j] {
			r.Compactions++
			r.CompactedBytes += shardBytes[j]
		}
	}
	c.noteShardTiers(shardOrder, shardWrote, shardPtrs)

	// One stats bump for the whole pass, aggregated across every
	// contribution (re-published pages contribute zero but the version
	// still advances, as the per-task path always did).
	var statsCost netsim.Cost
	if len(all) > 0 {
		var docs int
		var tokens uint64
		for _, ctr := range all {
			docs += ctr.newDocs
			tokens += ctr.tokens
		}
		w := all[0].bee
		cost, err := bumpStats(w.Peer.DHT(), docs, tokens)
		statsCost = cost
		w.Cost = w.Cost.Seq(cost)
		r.StatsWrites++
		if err != nil {
			re := RoundError{Bee: w.Name, Shard: -1, Stage: "stats", Err: err}
			w.Errs = append(w.Errs, re)
			r.Errors = append(r.Errors, re)
		}
	}

	r.MaterializeWave = r.MaterializeWave.Seq(collectWave).Seq(shardWave).Seq(statsCost)
	r.MaterializeSerial = r.MaterializeSerial.Seq(collectSerial).Seq(shardSerial).Seq(statsCost)
}
