package core

import "container/list"

// lruCache is a byte-budgeted LRU used for the frontend's segment and
// chain caches, modeled on store/blockstore.go: entries carry an explicit
// byte size, inserts evict least-recently-used entries until the budget
// holds, and an entry larger than the whole budget is simply not admitted
// (the caller re-fetches; memory stays bounded). The zero budget means
// "cache nothing". It is NOT internally locked: the owning Frontend
// serializes access under its own mutex.
type lruCache[K comparable, V any] struct {
	budget  int64
	used    int64
	entries map[K]*list.Element
	order   *list.List // front = most recently used

	hits, misses int64
}

type lruEntry[K comparable, V any] struct {
	key   K
	value V
	size  int64
}

func newLRUCache[K comparable, V any](budget int64) *lruCache[K, V] {
	return &lruCache[K, V]{
		budget:  budget,
		entries: make(map[K]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached value and refreshes its recency.
func (c *lruCache[K, V]) get(key K) (V, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(lruEntry[K, V]).value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// peek returns the cached value without touching recency or counters —
// for callers whose hit condition is richer than key presence (the chain
// cache validates the digest chain too) and account hits/misses
// themselves via promote/drop and the counter fields.
func (c *lruCache[K, V]) peek(key K) (V, bool) {
	if el, ok := c.entries[key]; ok {
		return el.Value.(lruEntry[K, V]).value, true
	}
	var zero V
	return zero, false
}

// promote refreshes an entry's recency.
func (c *lruCache[K, V]) promote(key K) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
	}
}

// drop removes an entry (no-op when absent).
func (c *lruCache[K, V]) drop(key K) {
	if el, ok := c.entries[key]; ok {
		c.remove(el)
	}
}

// add inserts or replaces an entry and evicts until the budget holds. It
// reports whether the entry was admitted (false only when size exceeds
// the entire budget).
func (c *lruCache[K, V]) add(key K, value V, size int64) bool {
	if el, ok := c.entries[key]; ok {
		c.remove(el)
	}
	if size > c.budget {
		return false
	}
	for c.used+size > c.budget {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.remove(oldest)
	}
	el := c.order.PushFront(lruEntry[K, V]{key: key, value: value, size: size})
	c.entries[key] = el
	c.used += size
	return true
}

func (c *lruCache[K, V]) remove(el *list.Element) {
	ent := el.Value.(lruEntry[K, V])
	c.order.Remove(el)
	delete(c.entries, ent.key)
	c.used -= ent.size
}

func (c *lruCache[K, V]) len() int     { return len(c.entries) }
func (c *lruCache[K, V]) bytes() int64 { return c.used }
