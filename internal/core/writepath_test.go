package core

import (
	"fmt"
	"reflect"
	"testing"
)

// TestWriteTieredMatchesMonolithic is the tiered-compaction safety
// property: across seeds and round counts, a cluster on the tiered
// write path answers every query — results, scores, rank blend — and
// finalizes every rank vector byte-identically to one on the
// monolithic policy. The two policies produce different segment chains
// (that is the point), but index.Merge over either chain must yield
// the same logical index. Runs under CI's -count=2 re-run pattern, so
// it also guards against residual global state.
func TestWriteTieredMatchesMonolithic(t *testing.T) {
	queries := []string{"workload", "payload body", "document"}
	for _, seed := range []uint64{1, 7} {
		for _, rounds := range []int{2, 5} {
			t.Run(fmt.Sprintf("seed=%d,rounds=%d", seed, rounds), func(t *testing.T) {
				tiered := driveWritePath(t, seed, rounds, false, queries)
				mono := driveWritePath(t, seed, rounds, true, queries)
				for i, q := range queries {
					if !reflect.DeepEqual(tiered.responses[i], mono.responses[i]) {
						t.Fatalf("query %q diverged:\ntiered: %+v\nmonolithic: %+v",
							q, tiered.responses[i], mono.responses[i])
					}
				}
				if !reflect.DeepEqual(tiered.ranks, mono.ranks) {
					t.Fatalf("rank vectors diverged:\ntiered: %v\nmonolithic: %v",
						tiered.ranks, mono.ranks)
				}
				if tiered.stats != mono.stats {
					t.Fatalf("index stats diverged: tiered %+v vs monolithic %+v",
						tiered.stats, mono.stats)
				}
				// At five rounds the workload overflows level-0 buckets, so
				// the equivalence must have been exercised across real merges.
				if rounds >= 5 && tiered.write.Compactions == 0 {
					t.Fatalf("tiered run never compacted; property not exercised: %+v", tiered.write)
				}
				if tiered.write.IngestedBytes != mono.write.IngestedBytes {
					t.Fatalf("ingested bytes diverged: tiered %d vs monolithic %d",
						tiered.write.IngestedBytes, mono.write.IngestedBytes)
				}
			})
		}
	}
}

// writePathRun is one policy's observable outcome for the property test.
type writePathRun struct {
	responses [][]Result
	ranks     map[string]float64
	stats     IndexStats
	write     WriteStats
}

// driveWritePath boots a cluster under one compaction policy, ingests
// a linked corpus over the given number of publish rounds, finalizes a
// full rank epoch, and snapshots everything a reader can observe.
func driveWritePath(t *testing.T, seed uint64, rounds int, monolithic bool, queries []string) writePathRun {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = 10
	cfg.NumBees = 3
	cfg.NumShards = 2 // concentrate chains so merges actually fire
	cfg.MonolithicCompaction = monolithic
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 1_000_000)
	c.Seal()

	doc := 0
	for r := 0; r < rounds; r++ {
		for j := 0; j < 6; j++ {
			url := fmt.Sprintf("dweb://w/%03d", doc)
			var links []string
			if doc > 0 {
				links = append(links, "dweb://w/000")
				links = append(links, fmt.Sprintf("dweb://w/%03d", doc-1))
			}
			text := fmt.Sprintf("write path workload document %03d payload body round %d", doc, r)
			if _, err := c.Publish(alice, c.Peers[doc%len(c.Peers)], url, text, links); err != nil {
				t.Fatal(err)
			}
			doc++
		}
		c.Seal()
		c.RunUntilIdle(6)
	}
	c.StartRankEpoch(2)
	c.RunUntilIdle(10)

	run := writePathRun{ranks: c.QB.PageRanks(), write: c.WriteStats()}
	run.stats, _ = readStats(c.Peers[1].DHT())
	fe := NewFrontend(c, c.Peers[2])
	for _, q := range queries {
		resp, err := fe.Search(q, doc)
		if err != nil {
			t.Fatalf("query %q under monolithic=%v: %v", q, monolithic, err)
		}
		run.responses = append(run.responses, resp.Results)
	}
	return run
}
