package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/rank"
)

// TestRankEpochDeltaScheduleAndStaleness drives the incremental rank
// schedule end to end: the first epoch is forced full, later epochs run
// delta off the on-chain dirty snapshot, the RankFullEvery cadence
// forces periodic exactness, and the staleness accessor tracks all of
// it. Every epoch finalizing at quorum 3 is itself a determinism check:
// three bees independently computed byte-identical delta results from
// the chain's snapshot.
func TestRankEpochDeltaScheduleAndStaleness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 10
	cfg.NumBees = 3
	cfg.RankFullEvery = 3
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 1_000_000)
	c.Seal()

	publish := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			var links []string
			if i > 0 {
				links = []string{fmt.Sprintf("dweb://re/%02d", (i-1)%lo1(lo))}
			}
			if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], fmt.Sprintf("dweb://re/%02d", i),
				fmt.Sprintf("rank epoch corpus document %02d", i), links); err != nil {
				t.Fatal(err)
			}
		}
		c.Seal()
		c.RunUntilIdle(6)
	}
	publish(0, 8)

	// Epoch 1: nothing finalized yet, so the scheduler must go full.
	if e := c.StartRankEpochDelta(2); e != 1 {
		t.Fatalf("first epoch = %d", e)
	}
	c.RunUntilIdle(10)
	re, ok := c.QB.RankEpochInfo(1)
	if !ok || !re.Done || re.Delta {
		t.Fatalf("epoch 1 = %+v, want finalized full", re)
	}
	st := c.QB.RankStaleness()
	if st.Epoch != 1 || st.LastFull != 1 || st.DeltasSinceFull != 0 || st.DirtyPages != 0 {
		t.Fatalf("staleness after full epoch = %+v", st)
	}

	// Two new pages dirty the graph; epoch 2 must run delta with exactly
	// those URLs (sorted) in its on-chain snapshot.
	publish(8, 10)
	if st := c.QB.RankStaleness(); st.DirtyPages != 2 {
		t.Fatalf("dirty pages after publishes = %d, want 2", st.DirtyPages)
	}
	if e := c.StartRankEpochDelta(2); e != 2 {
		t.Fatalf("second epoch = %d", e)
	}
	c.RunUntilIdle(10)
	re, _ = c.QB.RankEpochInfo(2)
	if !re.Done || !re.Delta {
		t.Fatalf("epoch 2 = %+v, want finalized delta", re)
	}
	if !sort.StringsAreSorted(re.Dirty) {
		t.Fatalf("dirty snapshot not sorted: %v", re.Dirty)
	}
	wantDirty := []string{"dweb://re/08", "dweb://re/09"}
	if len(re.Dirty) != 2 || re.Dirty[0] != wantDirty[0] || re.Dirty[1] != wantDirty[1] {
		t.Fatalf("dirty snapshot = %v, want %v", re.Dirty, wantDirty)
	}
	st = c.QB.RankStaleness()
	if st.Epoch != 2 || st.LastFull != 1 || st.DeltasSinceFull != 1 || st.DirtyPages != 0 {
		t.Fatalf("staleness after delta epoch = %+v", st)
	}

	// The delta vector must sit within the documented drift bound of an
	// exact recompute over the same chain graph.
	g := rank.NewGraph(c.QB.LinkGraph())
	exact := rank.Compute(g, rank.DefaultOptions())
	got := c.QB.PageRanks()
	for i := 0; i < g.Size(); i++ {
		if d := math.Abs(got[g.URL(i)] - exact.Ranks[i]); d > 1e-2 {
			t.Fatalf("page %s drifted %g from exact rank", g.URL(i), d)
		}
	}

	// Epoch 3 hits the RankFullEvery=3 cadence: full again, drift reset.
	if e := c.StartRankEpochDelta(2); e != 3 {
		t.Fatalf("third epoch = %d", e)
	}
	c.RunUntilIdle(10)
	re, _ = c.QB.RankEpochInfo(3)
	if !re.Done || re.Delta {
		t.Fatalf("epoch 3 = %+v, want finalized full (cadence)", re)
	}
	st = c.QB.RankStaleness()
	if st.Epoch != 3 || st.LastFull != 3 || st.DeltasSinceFull != 0 {
		t.Fatalf("staleness after cadence epoch = %+v", st)
	}
}

// lo1 avoids a modulo-by-zero when the first publish block starts at 0.
func lo1(lo int) int {
	if lo == 0 {
		return 1
	}
	return lo
}
