package core

import (
	"encoding/json"
	"errors"

	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/netsim"
)

// RepairStats accumulates what the self-healing loops have done: how
// many keys were probed, how many records were pushed back to full
// replication, how many lost segments were re-materialized, and the
// total simulated traffic the maintenance spent doing it.
type RepairStats struct {
	// Runs counts completed maintenance passes.
	Runs int
	// ProbedKeys counts replica-count probes issued (pointers, segments,
	// and the stats record).
	ProbedKeys int
	// Republished counts versioned records (shard pointers, index stats)
	// pushed back to the current k closest nodes.
	Republished int
	// Reseeded counts immutable segments re-materialized from a surviving
	// replica after their replication dropped below K; ReseededBytes is
	// the segment bytes those re-puts rewrote — maintenance's share of
	// the write-amplification ledger next to compaction's CompactedBytes.
	Reseeded      int
	ReseededBytes int64
	// SegmentsLost gauges segments referenced by a pointer chain with no
	// reachable replica as of the most recent pass — data repair cannot
	// currently recover. A gauge, not a cumulative counter: a segment
	// invisible during a network storm stops counting once a later pass
	// reaches it again.
	SegmentsLost int
	// Reprovided counts provider records re-announced by live peers.
	Reprovided int
	// Cost is the total simulated traffic maintenance has spent.
	Cost netsim.Cost
}

// RepairStats returns a snapshot of the accumulated maintenance
// counters. Safe for concurrent use (the daemon reads it while rounds
// run).
func (c *Cluster) RepairStats() RepairStats {
	c.repairMu.Lock()
	defer c.repairMu.Unlock()
	return c.repair
}

// replicationTarget is the replica count maintenance restores toward:
// the DHT's K.
func (c *Cluster) replicationTarget() int {
	if k := c.cfg.DHT.K; k > 0 {
		return k
	}
	return 8
}

// maintenanceNode picks the DHT node that drives repair traffic. Bees
// are the natural maintainers — they wrote the records and never churn
// in the fault plans — falling back to the first live peer.
func (c *Cluster) maintenanceNode() *dht.Node {
	for _, b := range c.Bees {
		if !c.Net.IsDown(b.Peer.Addr()) {
			return b.Peer.DHT()
		}
	}
	for _, p := range c.Peers {
		if !c.Net.IsDown(p.Addr()) {
			return p.DHT()
		}
	}
	return nil
}

// RunMaintenance executes one self-healing pass and returns what this
// pass did. Three loops, in deterministic order:
//
//  1. Republish: every shard pointer (and the stats record) is probed;
//     a record replicated below K is re-Put at its current version,
//     landing it on the current k closest nodes.
//  2. Re-seed + repair: every segment referenced by a pointer chain is
//     probed; one replicated below K is fetched from a surviving
//     replica, hash-verified, and re-Put. A segment with no surviving
//     replica is counted lost (nothing to re-materialize from).
//  3. Reprovide: every live peer re-announces its provider records, so
//     content discovery survives the loss of the nodes that held the
//     provider lists.
//
// The pass is driven from a single live node (a bee when possible), in
// ascending shard / chain order, so its traffic — and therefore every
// RNG draw it causes — is identical across runs.
func (c *Cluster) RunMaintenance() RepairStats {
	var pass RepairStats
	d := c.maintenanceNode()
	if d == nil {
		return pass
	}
	k := c.replicationTarget()

	probeValue := func(key dht.Key, seq uint64, val []byte) {
		pass.ProbedKeys++
		n, cost := d.ProbeReplication(key)
		pass.Cost = pass.Cost.Seq(cost)
		if n >= k {
			return
		}
		_, cost, err := d.Put(key, val, seq)
		pass.Cost = pass.Cost.Seq(cost)
		if err == nil {
			pass.Republished++
		}
	}

	// 1+2. Shard pointers, then each pointer's segment chain.
	for shard := 0; shard < c.cfg.NumShards; shard++ {
		key := dht.KeyOfString(index.ShardPointerKey(shard))
		val, seq, cost, err := d.Get(key)
		pass.Cost = pass.Cost.Seq(cost)
		if err != nil {
			// Never-written shards (or a pointer wholly lost to churn —
			// nothing to repair from) are skipped.
			continue
		}
		probeValue(key, seq, val)

		var ptr ShardPointer
		if json.Unmarshal(val, &ptr) != nil {
			continue
		}
		for _, digest := range ptr.Digests {
			segKey := dht.KeyOfString(index.SegmentKey(digest))
			pass.ProbedKeys++
			n, cost := d.ProbeReplication(segKey)
			pass.Cost = pass.Cost.Seq(cost)
			if n >= k {
				continue
			}
			raw, cost, err := d.GetImmutable(segKey)
			pass.Cost = pass.Cost.Seq(cost)
			if err != nil || index.DigestOf(raw) != digest {
				// Lost means NOTHING answered: the probe saw zero replicas
				// and the fetch found no (intact) copy. A failed fetch with
				// a live replica on record is transient — the next pass
				// retries instead of declaring data gone under a storm.
				if n == 0 {
					pass.SegmentsLost++
				}
				continue
			}
			_, cost, err = d.Put(segKey, raw, 0)
			pass.Cost = pass.Cost.Seq(cost)
			if err == nil {
				pass.Reseeded++
				pass.ReseededBytes += int64(len(raw))
			}
		}
	}

	// Stats record.
	statsKey := dht.KeyOfString(StatsKey)
	if val, seq, cost, err := d.Get(statsKey); err == nil {
		pass.Cost = pass.Cost.Seq(cost)
		probeValue(statsKey, seq, val)
	} else {
		pass.Cost = pass.Cost.Seq(cost)
	}

	// 3. Provider republish from every live peer and bee, in slice order.
	for _, p := range c.Peers {
		if c.Net.IsDown(p.Addr()) {
			continue
		}
		n, cost := p.Reprovide()
		pass.Reprovided += n
		pass.Cost = pass.Cost.Seq(cost)
	}
	for _, b := range c.Bees {
		if c.Net.IsDown(b.Peer.Addr()) {
			continue
		}
		n, cost := b.Peer.Reprovide()
		pass.Reprovided += n
		pass.Cost = pass.Cost.Seq(cost)
	}

	pass.Runs = 1
	c.repairMu.Lock()
	c.repair.Runs += pass.Runs
	c.repair.ProbedKeys += pass.ProbedKeys
	c.repair.Republished += pass.Republished
	c.repair.Reseeded += pass.Reseeded
	c.repair.ReseededBytes += pass.ReseededBytes
	c.repair.SegmentsLost = pass.SegmentsLost // gauge: the latest pass's view
	c.repair.Reprovided += pass.Reprovided
	c.repair.Cost = c.repair.Cost.Seq(pass.Cost)
	c.repairMu.Unlock()
	return pass
}

// Readiness is the health summary /readyz serves: per-shard pointer
// reachability through a live DHT node.
type Readiness struct {
	Ready       bool
	ShardsTotal int
	ShardsOK    int
	// Failed lists the shards whose pointer record is unreachable.
	Failed []int
	// Cost is the DHT probe traffic the readiness check itself paid.
	Cost netsim.Cost
}

// Readiness probes every shard pointer and reports which are currently
// reachable. A shard that has never been written counts healthy (there
// is nothing to serve yet); a shard whose pointer read fails counts
// degraded.
func (c *Cluster) Readiness() Readiness {
	r := Readiness{ShardsTotal: c.cfg.NumShards}
	d := c.maintenanceNode()
	if d == nil {
		r.Failed = make([]int, 0, c.cfg.NumShards)
		for shard := 0; shard < c.cfg.NumShards; shard++ {
			r.Failed = append(r.Failed, shard)
		}
		return r
	}
	for shard := 0; shard < c.cfg.NumShards; shard++ {
		_, _, cost, err := d.Get(dht.KeyOfString(index.ShardPointerKey(shard)))
		r.Cost = r.Cost.Seq(cost)
		if err == nil || errors.Is(err, dht.ErrNotFound) {
			r.ShardsOK++
			continue
		}
		r.Failed = append(r.Failed, shard)
	}
	r.Ready = r.ShardsOK == r.ShardsTotal
	return r
}
