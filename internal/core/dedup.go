package core

import (
	"repro/internal/index"
	"repro/internal/rank"
)

// duplicateSimilarity is the MinHash similarity above which a
// later-published page is treated as a scraper mirror.
const duplicateSimilarity = 0.85

// zeroDuplicates implements the scraper defense inside rank computation:
// every page's content signature is compared against earlier-published
// pages; near-duplicates published later (the mirror) get rank zero, so
// they earn no popularity honey and rank last in search results. The
// procedure is deterministic (content + chain state only), so honest bees
// still agree byte-for-byte.
func (b *WorkerBee) zeroDuplicates(g *rank.Graph, ranks []float64) []float64 {
	type pageSig struct {
		node   int
		height uint64
		seq    uint64
		sig    index.MinHashSig
	}
	var sigs []pageSig
	for i := 0; i < g.Size(); i++ {
		url := g.URL(i)
		rec, ok := b.cluster.QB.Page(url)
		if !ok {
			continue
		}
		cid, err := cidFromHex(rec.CID)
		if err != nil {
			continue
		}
		content, cost, err := b.Peer.Fetch(cid)
		b.Cost = b.Cost.Seq(cost)
		if err != nil {
			continue
		}
		sigs = append(sigs, pageSig{
			node:   i,
			height: rec.Height,
			sig:    index.SignatureOf(string(content)),
		})
	}
	out := append([]float64(nil), ranks...)
	for i := 0; i < len(sigs); i++ {
		for j := i + 1; j < len(sigs); j++ {
			if sigs[i].sig.Similarity(sigs[j].sig) < duplicateSimilarity {
				continue
			}
			// The later-published page is the mirror. Ties (same block)
			// demote the lexicographically later URL for determinism.
			a, b := sigs[i], sigs[j]
			later := b
			if a.height > b.height || (a.height == b.height && g.URL(a.node) > g.URL(b.node)) {
				later = a
			}
			out[later.node] = 0
		}
	}
	return out
}
