package core

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/index"
	"repro/internal/netsim"
	"repro/internal/rank"
	"repro/internal/store"
	"repro/internal/xrand"
)

// WorkerBee is one index/rank worker: a DWeb peer plus a staked chain
// account. Honest bees compute deterministic results so quorum digests
// agree; a bee with a CollusionPlan substitutes the plan's corrupted
// result instead (the E11 attack).
type WorkerBee struct {
	cluster *Cluster
	Name    string
	Account *chain.Account
	Peer    *store.Peer

	// Colluding marks this bee as part of the collusion attack.
	Colluding bool
	// DetectDuplicates enables the scraper defense: near-duplicate pages
	// get rank 0 in this bee's rank results.
	DetectDuplicates bool

	pending map[string]pendingResult // taskID → computed result awaiting reveal
	written map[string]bool          // taskID → materialized into DHT

	// Cost accumulates the simulated network expense of this bee's work.
	Cost netsim.Cost
}

type pendingResult struct {
	result []byte
	digest string
	salt   []byte
}

// CommitPhase computes results for newly assigned open tasks and submits
// commitments.
func (b *WorkerBee) CommitPhase() {
	for _, task := range b.cluster.QB.OpenTasksFor(b.Account.Address()) {
		if _, done := b.pending[task.ID]; done {
			continue
		}
		var result []byte
		var ok bool
		switch task.Kind {
		case contracts.TaskIndex:
			result, ok = b.buildIndexResult(task)
		case contracts.TaskRank:
			result, ok = b.buildRankResult(task)
		}
		if !ok {
			continue
		}
		digest := index.DigestOf(result)
		salt := make([]byte, 16)
		xrand.NewNamed(b.cluster.cfg.Seed, "salt:"+b.Name+":"+task.ID).Bytes(salt)
		b.pending[task.ID] = pendingResult{result: result, digest: digest, salt: salt}
		b.cluster.SubmitCall(b.Account, contracts.MethodCommit, contracts.CommitParams{
			TaskID:     task.ID,
			Commitment: contracts.Commitment(digest, salt),
		}, 0)
	}
}

// RevealPhase opens this bee's commitments for tasks still open.
func (b *WorkerBee) RevealPhase() {
	for _, task := range b.cluster.QB.OpenTasksFor(b.Account.Address()) {
		pr, ok := b.pending[task.ID]
		if !ok {
			continue
		}
		if _, committed := task.Commitments[b.Account.Address()]; !committed {
			continue
		}
		if _, revealed := task.Reveals[b.Account.Address()]; revealed {
			continue
		}
		params := contracts.RevealParams{
			TaskID: task.ID,
			Digest: pr.digest,
			Salt:   pr.salt,
		}
		if task.Kind == contracts.TaskRank {
			params.Result = pr.result
		}
		b.cluster.SubmitCall(b.Account, contracts.MethodReveal, params, 0)
	}
}

// MaterializePhase writes finalized winning results into the DHT. Only
// the designated writer (first winning assignee) writes, and only when
// its own digest won — a losing bee cannot materialize the honest result
// it computed. Returns the number of tasks materialized.
func (b *WorkerBee) MaterializePhase() int {
	count := 0
	for taskID, pr := range b.pending {
		if b.written[taskID] {
			continue
		}
		task, ok := b.cluster.QB.TaskInfo(taskID)
		if !ok || task.Status != contracts.StatusFinalized {
			if ok && task.Status == contracts.StatusFailed {
				b.written[taskID] = true // never retried
			}
			continue
		}
		b.written[taskID] = true
		if task.WinningDigest != pr.digest {
			continue // this bee lost the vote
		}
		if b.designatedWriter(task) != b.Account.Address() {
			continue
		}
		if task.Kind == contracts.TaskIndex {
			b.materializeIndexResult(task, pr.result)
			count++
		}
		// Rank results live on chain (WinningResult); nothing to write.
		if task.Kind == contracts.TaskRank {
			count++
		}
	}
	return count
}

// designatedWriter picks the first winning assignee in sorted order.
func (b *WorkerBee) designatedWriter(task contracts.Task) chain.Address {
	var winners []chain.Address
	for _, a := range task.Assignees {
		if r, ok := task.Reveals[a]; ok && r.Digest == task.WinningDigest {
			winners = append(winners, a)
		}
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i].String() < winners[j].String() })
	if len(winners) == 0 {
		return chain.Address{}
	}
	return winners[0]
}

// buildIndexResult fetches the published content from the DWeb and builds
// the deterministic delta segment for the task's page version.
func (b *WorkerBee) buildIndexResult(task contracts.Task) ([]byte, bool) {
	url := task.Meta["url"]
	cidHex := task.Meta["cid"]
	cid, err := cidFromHex(cidHex)
	if err != nil {
		return nil, false
	}
	content, cost, err := b.Peer.Fetch(cid)
	b.Cost = b.Cost.Seq(cost)
	if err != nil {
		return nil, false
	}
	gen := task.CreatedAt // same for every assignee → deterministic
	builder := index.NewBuilder(gen)
	builder.Add(index.DocIDOf(url), string(content))
	seg := builder.Build()
	data := seg.Encode()

	if b.Colluding {
		data = b.corruptSegment(task, seg)
	}
	return data, true
}

// corruptSegment produces the colluders' agreed-upon wrong result: the
// page's postings are replaced with spam terms pointing at the attacker's
// URL. Deterministic across colluders (keyed by task, not bee).
func (b *WorkerBee) corruptSegment(task contracts.Task, honest *index.Segment) []byte {
	builder := index.NewBuilder(honest.Gen)
	builder.Add(index.DocIDOf("dweb://attacker/spam"),
		strings.Repeat("buy spam honey now ", 8))
	return builder.Build().Encode()
}

// materializeIndexResult stores the segment and links it from every
// affected shard, then bumps global stats.
func (b *WorkerBee) materializeIndexResult(task contracts.Task, data []byte) {
	digest := index.DigestOf(data)
	cost, err := writeSegment(b.Peer.DHT(), digest, data)
	b.Cost = b.Cost.Seq(cost)
	if err != nil {
		return
	}
	seg, err := index.DecodeSegment(data)
	if err != nil {
		return
	}
	shards := make(map[int]bool)
	for _, term := range seg.TermsSorted() {
		shards[index.ShardOf(term, b.cluster.cfg.NumShards)] = true
	}
	shardList := make([]int, 0, len(shards))
	for s := range shards {
		shardList = append(shardList, s)
	}
	sort.Ints(shardList)
	for _, s := range shardList {
		cost, err := appendSegmentToShard(b.Peer.DHT(), s, digest)
		b.Cost = b.Cost.Seq(cost)
		if err != nil {
			continue
		}
		cost, _ = compactShard(b.Peer.DHT(), s)
		b.Cost = b.Cost.Seq(cost)
	}
	var tokens uint64
	newDocs := 0
	for _, l := range seg.DocLens {
		tokens += uint64(l)
		newDocs++
	}
	// Re-published pages are counted once per version; stats drift is
	// acceptable for BM25 (documented simplification).
	if seqStr := task.Meta["seq"]; seqStr == "1" {
		cost, _ = bumpStats(b.Peer.DHT(), newDocs, tokens)
	} else {
		cost, _ = bumpStats(b.Peer.DHT(), 0, 0)
	}
	b.Cost = b.Cost.Seq(cost)
}

// buildRankResult computes the page-rank partition for a rank task. The
// link graph comes from chain state, so every honest bee computes the
// same result bytes.
func (b *WorkerBee) buildRankResult(task contracts.Task) ([]byte, bool) {
	partition, err := strconv.Atoi(task.Meta["partition"])
	if err != nil {
		return nil, false
	}
	epoch, err := strconv.ParseUint(task.Meta["epoch"], 10, 64)
	if err != nil {
		return nil, false
	}
	re, ok := b.cluster.QB.RankEpochInfo(epoch)
	if !ok {
		return nil, false
	}
	g := rank.NewGraph(b.cluster.QB.LinkGraph())
	res := rank.Compute(g, rank.DefaultOptions())
	ranks := res.Ranks

	if b.DetectDuplicates {
		ranks = b.zeroDuplicates(g, ranks)
	}
	if b.Colluding {
		// Colluders inflate the attacker page and zero everyone else.
		for i := range ranks {
			ranks[i] = 0
		}
		if idx, ok := g.NodeOf("dweb://attacker/spam"); ok {
			ranks[idx] = 1
		}
	}

	parts := rank.Partition(g.Size(), re.Partitions)
	if partition >= len(parts) {
		return contracts.EncodeRankResult(nil), true
	}
	lo, hi := parts[partition][0], parts[partition][1]
	entries := make([]contracts.RankEntry, 0, hi-lo)
	for i := lo; i < hi; i++ {
		entries = append(entries, contracts.RankEntry{URL: g.URL(i), Rank: ranks[i]})
	}
	return contracts.EncodeRankResult(entries), true
}
