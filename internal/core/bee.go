package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/index"
	"repro/internal/netsim"
	"repro/internal/rank"
	"repro/internal/store"
	"repro/internal/xrand"
)

// WorkerBee is one index/rank worker: a DWeb peer plus a staked chain
// account. Honest bees compute deterministic results so quorum digests
// agree; a bee with a CollusionPlan substitutes the plan's corrupted
// result instead (the E11 attack).
type WorkerBee struct {
	cluster *Cluster
	Name    string
	Account *chain.Account
	Peer    *store.Peer

	// Colluding marks this bee as part of the collusion attack.
	Colluding bool
	// DetectDuplicates enables the scraper defense: near-duplicate pages
	// get rank 0 in this bee's rank results.
	DetectDuplicates bool

	pending map[string]pendingResult // taskID → computed result awaiting reveal
	written map[string]bool          // taskID → materialized into DHT

	// Cost accumulates the simulated network expense of this bee's work.
	Cost netsim.Cost
	// Errs records the write-path failures this bee observed (segment
	// writes, shard appends, compaction, stats) instead of swallowing
	// them; each round's slice is also surfaced on the RoundReceipt.
	Errs []RoundError
}

type pendingResult struct {
	result []byte
	digest string
	salt   []byte
}

// prepareCommits computes results for newly assigned open tasks and
// returns the commitments to submit. It is the compute leg of the
// round engine's commit wave: one goroutine per bee may run it
// concurrently — it touches only this bee's own state (pending map,
// its DWeb peer) and read-locked contract views, never the chain. The
// cluster submits the returned commitments afterwards, sequentially in
// bee order, so transaction order stays deterministic.
func (b *WorkerBee) prepareCommits() (commits []contracts.CommitParams, cost netsim.Cost, errs []RoundError) {
	for _, task := range b.cluster.QB.OpenTasksFor(b.Account.Address()) {
		if _, done := b.pending[task.ID]; done {
			continue
		}
		var result []byte
		var buildCost netsim.Cost
		var err error
		switch task.Kind {
		case contracts.TaskIndex:
			result, buildCost, err = b.buildIndexResult(task)
		case contracts.TaskRank:
			result, err = b.buildRankResult(task)
		}
		cost = cost.Seq(buildCost)
		if err != nil {
			errs = append(errs, RoundError{Bee: b.Name, Task: task.ID, Shard: -1, Stage: "build", Err: err})
			continue
		}
		digest := index.DigestOf(result)
		salt := make([]byte, 16)
		xrand.NewNamed(b.cluster.cfg.Seed, "salt:"+b.Name+":"+task.ID).Bytes(salt)
		b.pending[task.ID] = pendingResult{result: result, digest: digest, salt: salt}
		commits = append(commits, contracts.CommitParams{
			TaskID:     task.ID,
			Commitment: contracts.Commitment(digest, salt),
		})
	}
	return commits, cost, errs
}

// RevealPhase opens this bee's commitments for tasks still open.
func (b *WorkerBee) RevealPhase() {
	for _, task := range b.cluster.QB.OpenTasksFor(b.Account.Address()) {
		pr, ok := b.pending[task.ID]
		if !ok {
			continue
		}
		if _, committed := task.Commitments[b.Account.Address()]; !committed {
			continue
		}
		if _, revealed := task.Reveals[b.Account.Address()]; revealed {
			continue
		}
		params := contracts.RevealParams{
			TaskID: task.ID,
			Digest: pr.digest,
			Salt:   pr.salt,
		}
		if task.Kind == contracts.TaskRank {
			params.Result = pr.result
		}
		b.cluster.SubmitCall(b.Account, contracts.MethodReveal, params, 0)
	}
}

// collectWins is the per-bee leg of the round engine's materialize
// wave: it scans this bee's pending tasks in sorted ID order (map
// iteration order must never reach the DHT — write order and netsim
// draws are part of the determinism contract), writes the immutable
// segment record for every finalized task this bee won as designated
// writer, and returns the shard contributions for the cluster's batched
// pointer update. Only the designated writer (first winning assignee)
// contributes, and only when its own digest won — a losing bee cannot
// materialize the honest result it computed. count is the number of
// tasks materialized (index segments written plus finalized rank tasks,
// whose results live on chain).
func (b *WorkerBee) collectWins() (contribs []contribution, count int, cost netsim.Cost, errs []RoundError) {
	taskIDs := make([]string, 0, len(b.pending))
	for taskID := range b.pending {
		if !b.written[taskID] {
			taskIDs = append(taskIDs, taskID)
		}
	}
	sort.Strings(taskIDs)
	for _, taskID := range taskIDs {
		pr := b.pending[taskID]
		task, ok := b.cluster.QB.TaskInfo(taskID)
		if !ok || task.Status != contracts.StatusFinalized {
			if ok && task.Status == contracts.StatusFailed {
				b.written[taskID] = true // never retried
			}
			continue
		}
		b.written[taskID] = true
		if task.WinningDigest != pr.digest {
			continue // this bee lost the vote
		}
		if b.designatedWriter(task) != b.Account.Address() {
			continue
		}
		// Rank results live on chain (WinningResult); nothing to write.
		if task.Kind == contracts.TaskRank {
			count++
			continue
		}
		seg, err := index.DecodeSegment(pr.result)
		if err != nil {
			errs = append(errs, RoundError{Bee: b.Name, Task: taskID, Shard: -1, Stage: "decode", Err: err})
			continue
		}
		wcost, err := writeSegment(b.Peer.DHT(), pr.digest, pr.result)
		cost = cost.Seq(wcost)
		if err != nil {
			errs = append(errs, RoundError{Bee: b.Name, Task: taskID, Shard: -1, Stage: "segment-write", Err: err})
			continue
		}
		count++ // only a segment that actually landed counts as materialized
		ctr := b.contributionFor(task, seg, pr.digest)
		ctr.bytes = len(pr.result)
		contribs = append(contribs, ctr)
	}
	return contribs, count, cost, errs
}

// contributionFor assembles the shard/stat deltas one winning segment
// adds to the round's batch: the sorted shards its terms hash to, and
// the document/token counts of its first-version pages (re-published
// pages are counted once per version; stats drift is acceptable for
// BM25 — documented simplification).
func (b *WorkerBee) contributionFor(task contracts.Task, seg *index.Segment, digest string) contribution {
	shards := make(map[int]bool)
	for _, term := range seg.TermsSorted() {
		shards[index.ShardOf(term, b.cluster.cfg.NumShards)] = true
	}
	shardList := make([]int, 0, len(shards))
	for s := range shards {
		shardList = append(shardList, s)
	}
	sort.Ints(shardList)

	ctr := contribution{bee: b, taskID: task.ID, digest: digest, shards: shardList}
	if entries, isBatch := contracts.BatchEntries(task); isBatch {
		for _, e := range entries {
			if e.Seq != 1 {
				continue
			}
			ctr.newDocs++
			ctr.tokens += uint64(seg.DocLens[index.DocIDOf(e.URL)])
		}
	} else if task.Meta["seq"] == "1" {
		for _, l := range seg.DocLens {
			ctr.tokens += uint64(l)
			ctr.newDocs++
		}
	}
	return ctr
}

// designatedWriter picks the first winning assignee in sorted order.
func (b *WorkerBee) designatedWriter(task contracts.Task) chain.Address {
	var winners []chain.Address
	for _, a := range task.Assignees {
		if r, ok := task.Reveals[a]; ok && r.Digest == task.WinningDigest {
			winners = append(winners, a)
		}
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i].String() < winners[j].String() })
	if len(winners) == 0 {
		return chain.Address{}
	}
	return winners[0]
}

// buildIndexResult fetches the published content from the DWeb and
// builds the deterministic delta segment for the task's page version —
// or, for a batch task, for every page of the batch in one segment. The
// per-page fetches of a batch are independent downloads from (usually)
// distinct providers, so their cost folds as one parallel wave
// (execution stays sequential on this bee's goroutine, keeping the
// bee's per-link draw order seed-stable); across bees, the round engine
// runs the whole build as a real goroutine wave.
func (b *WorkerBee) buildIndexResult(task contracts.Task) ([]byte, netsim.Cost, error) {
	var cost netsim.Cost
	var docs []index.BatchDoc
	if entries, isBatch := contracts.BatchEntries(task); isBatch {
		for _, e := range entries {
			content, c, err := b.fetchPage(e.URL, e.CID)
			cost = cost.Par(c)
			if err != nil {
				return nil, cost, err
			}
			docs = append(docs, index.BatchDoc{Doc: index.DocIDOf(e.URL), Text: string(content)})
		}
	} else {
		content, c, err := b.fetchPage(task.Meta["url"], task.Meta["cid"])
		cost = cost.Seq(c)
		if err != nil {
			return nil, cost, err
		}
		docs = append(docs, index.BatchDoc{Doc: index.DocIDOf(task.Meta["url"]), Text: string(content)})
	}
	gen := task.CreatedAt // same for every assignee → deterministic
	seg := index.BuildBatch(gen, docs)
	data := seg.Encode()

	if b.Colluding {
		data = b.corruptSegment(task, seg)
	}
	return data, cost, nil
}

// fetchPage resolves one page version's content from the DWeb store.
func (b *WorkerBee) fetchPage(url, cidHex string) ([]byte, netsim.Cost, error) {
	cid, err := cidFromHex(cidHex)
	if err != nil {
		return nil, netsim.Cost{}, fmt.Errorf("page %q: %w", url, err)
	}
	content, cost, err := b.Peer.Fetch(cid)
	if err != nil {
		return nil, cost, fmt.Errorf("page %q: %w", url, err)
	}
	return content, cost, nil
}

// corruptSegment produces the colluders' agreed-upon wrong result: the
// page's postings are replaced with spam terms pointing at the attacker's
// URL. Deterministic across colluders (keyed by task, not bee).
func (b *WorkerBee) corruptSegment(task contracts.Task, honest *index.Segment) []byte {
	builder := index.NewBuilder(honest.Gen)
	builder.Add(index.DocIDOf("dweb://attacker/spam"),
		strings.Repeat("buy spam honey now ", 8))
	return builder.Build().Encode()
}

// buildRankResult computes the page-rank partition for a rank task. The
// link graph comes from chain state, so every honest bee computes the
// same result bytes.
func (b *WorkerBee) buildRankResult(task contracts.Task) ([]byte, error) {
	partition, err := strconv.Atoi(task.Meta["partition"])
	if err != nil {
		return nil, fmt.Errorf("task %q: bad partition: %w", task.ID, err)
	}
	epoch, err := strconv.ParseUint(task.Meta["epoch"], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("task %q: bad epoch: %w", task.ID, err)
	}
	re, ok := b.cluster.QB.RankEpochInfo(epoch)
	if !ok {
		return nil, fmt.Errorf("task %q: unknown rank epoch %d", task.ID, epoch)
	}
	g := rank.NewGraph(b.cluster.QB.LinkGraph())
	var res rank.Result
	if re.Delta {
		res = b.deltaRank(g, re)
	} else {
		res = rank.Compute(g, rank.DefaultOptions())
	}
	ranks := res.Ranks

	if b.DetectDuplicates {
		ranks = b.zeroDuplicates(g, ranks)
	}
	if b.Colluding {
		// Colluders inflate the attacker page and zero everyone else.
		for i := range ranks {
			ranks[i] = 0
		}
		if idx, ok := g.NodeOf("dweb://attacker/spam"); ok {
			ranks[idx] = 1
		}
	}

	parts := rank.Partition(g.Size(), re.Partitions)
	if partition >= len(parts) {
		return contracts.EncodeRankResult(nil), nil
	}
	lo, hi := parts[partition][0], parts[partition][1]
	entries := make([]contracts.RankEntry, 0, hi-lo)
	for i := lo; i < hi; i++ {
		entries = append(entries, contracts.RankEntry{URL: g.URL(i), Rank: ranks[i]})
	}
	return contracts.EncodeRankResult(entries), nil
}

// deltaRank runs the incremental rank pass for a delta epoch. Every
// input is finalized chain state — the link graph, the previous rank
// vector, and the epoch's dirty snapshot — so all quorum bees compute
// identical bytes. The dirty set is the snapshot's URLs mapped to graph
// nodes plus every node the previous vector has never ranked (pages
// published after the last epoch started); ComputeDelta sorts and
// deduplicates it.
func (b *WorkerBee) deltaRank(g *rank.Graph, re contracts.RankEpoch) rank.Result {
	prevMap := b.cluster.QB.PageRanks()
	if len(prevMap) == 0 {
		// Nothing to warm-start from: first epoch ever ran as delta.
		return rank.Compute(g, rank.DefaultOptions())
	}
	prev := make([]float64, g.Size())
	var dirty []int
	for i := 0; i < g.Size(); i++ {
		r, ok := prevMap[g.URL(i)]
		if !ok {
			dirty = append(dirty, i)
			continue
		}
		prev[i] = r
	}
	for _, u := range re.Dirty {
		if idx, ok := g.NodeOf(u); ok {
			dirty = append(dirty, idx)
		}
	}
	return rank.ComputeDelta(g, prev, dirty, rank.DefaultOptions())
}
