package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/index"
	"repro/internal/netsim"
	"repro/internal/query"
)

// ErrShardUnavailable wraps failures to load an index shard from the
// DHT (node down, partition, byzantine segment bytes). Callers match
// with errors.Is.
var ErrShardUnavailable = errors.New("core: index shard unavailable")

// PlanMode selects how Execute turns the raw query string into an AST.
type PlanMode int

// Plan modes.
const (
	// PlanParsed runs the full query language: AND/OR/NOT operators,
	// quoted phrases, site: prefix filters, parentheses.
	PlanParsed PlanMode = iota
	// PlanAll ANDs every analyzed term (flat legacy Search).
	PlanAll
	// PlanAny ORs every analyzed term (flat legacy SearchAny).
	PlanAny
	// PlanPhrase matches every analyzed term as one adjacent phrase
	// (flat legacy SearchPhrase).
	PlanPhrase
)

// String implements fmt.Stringer.
func (m PlanMode) String() string {
	switch m {
	case PlanParsed:
		return "parsed"
	case PlanAll:
		return "all"
	case PlanAny:
		return "any"
	case PlanPhrase:
		return "phrase"
	default:
		return fmt.Sprintf("PlanMode(%d)", int(m))
	}
}

// Query is one structured request against the frontend.
type Query struct {
	// Raw is the query string; how it is interpreted depends on Mode.
	Raw string
	// Mode defaults to PlanParsed (the full query language).
	Mode PlanMode
	// Limit caps the number of returned results — the page size.
	// Zero means 10.
	Limit int
	// Offset skips that many ranked results before collecting Limit
	// (Offset 20, Limit 10 is page 3).
	Offset int
	// Snippets fetches each result's content and attaches a snippet.
	Snippets bool
	// Explain records the executed plan, per-node candidate counts and
	// simulated costs into SearchResponse.Explain.
	Explain bool
	// Deadline bounds the query's simulated latency. Once the response's
	// accumulated simulated cost reaches it at a checkpoint — before each
	// sequential RPC of a wave leg, and between pipeline stages — the
	// remaining work is abandoned and the query fails with a typed
	// ErrDeadlineExceeded carrying a partial Explain trace. Deterministic:
	// the same seed and deadline stop at the same point every run. Zero
	// means no deadline.
	Deadline time.Duration
}

// ExplainNode is one executed plan node: the operator, its operand
// rendered as text, and how many candidate documents survived it.
type ExplainNode struct {
	Op         string // "term" | "phrase" | "and" | "or" | "not" | "site"
	Detail     string // the term, phrase, or URL prefix
	Candidates int
	Children   []*ExplainNode
}

// Explain is the structured execution trace of one query.
type Explain struct {
	Query string
	Mode  string
	// Terms lists every distinct analyzed term the plan loaded,
	// excluded terms included; Shards the distinct index shards those
	// terms hash to, fetched as one parallel wave.
	Terms  []string
	Shards []int
	// Plan is the executed operator tree with candidate counts.
	Plan *ExplainNode
	// Candidates counts documents surviving boolean evaluation;
	// Returned the results after ranking and pagination.
	Candidates int
	Returned   int
	// LoadCost is the shard wave; SnippetCost the parallel content
	// fetches (zero without snippets); TotalCost everything, including
	// collection statistics reads.
	LoadCost    netsim.Cost
	SnippetCost netsim.Cost
	TotalCost   netsim.Cost
	// Partial marks a trace truncated by the request lifecycle (deadline
	// or cancellation): the costs cover only the work that actually ran,
	// and later stages may be missing entirely. Deadline-failed queries
	// always carry a partial trace, whether or not Explain was requested.
	Partial bool
	// DegradedShards lists the wave shards that stayed unreachable when
	// the answer was composed from a partial wave (Config.DegradedReads);
	// empty on a complete answer. Completeness is loaded/total wave
	// shards — 1.0 when the wave fully loaded.
	DegradedShards []int
	Completeness   float64
}

// String renders the trace as an indented plan tree for CLI output.
func (e *Explain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q mode=%s terms=%v shards=%v\n", e.Query, e.Mode, e.Terms, e.Shards)
	writePlan(&b, e.Plan, 1)
	fmt.Fprintf(&b, "candidates=%d returned=%d\n", e.Candidates, e.Returned)
	fmt.Fprintf(&b, "cost: load=%v/%dB/%dmsg total=%v/%dB/%dmsg\n",
		e.LoadCost.Latency, e.LoadCost.Bytes, e.LoadCost.Msgs,
		e.TotalCost.Latency, e.TotalCost.Bytes, e.TotalCost.Msgs)
	return b.String()
}

func writePlan(b *strings.Builder, n *ExplainNode, depth int) {
	if n == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op)
	if n.Detail != "" {
		b.WriteByte(' ')
		b.WriteString(n.Detail)
	}
	fmt.Fprintf(b, " → %d docs\n", n.Candidates)
	for _, k := range n.Children {
		writePlan(b, k, depth+1)
	}
}

// Execute runs one structured query through the full frontend pipeline:
// compile the AST (parse or flat-build per Mode), resolve the distinct
// shards it touches and load them as one parallel wave, evaluate the
// boolean plan over posting lists, rank with BM25×PageRank, paginate,
// and optionally attach snippets and the execution trace.
func (f *Frontend) Execute(q Query) (SearchResponse, error) {
	return f.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx is Execute with a request lifecycle: the context and the
// query's simulated Deadline are threaded through every stage — the
// shard wave (each leg re-checks before every sequential RPC), the
// statistics read, and the snippet wave. A query stopped by either
// signal abandons its remaining wave members, keeps its caches and
// singleflights consistent, and returns ErrDeadlineExceeded with a
// partial Explain trace (always attached on that path, Explain requested
// or not) costing exactly the work that ran. The deadline is a promise
// about simulated response time: a query whose completed work overruns
// it also fails — the simulated client was already gone — with the
// caches it warmed left in place.
func (f *Frontend) ExecuteCtx(ctx context.Context, q Query) (SearchResponse, error) {
	limit := q.Limit
	if limit <= 0 {
		limit = 10
	}
	offset := q.Offset
	if offset < 0 {
		offset = 0
	}
	bud := reqBudget{ctx: ctx, deadline: q.Deadline}

	var resp SearchResponse
	root, err := compileAST(q)
	if err != nil {
		return resp, err
	}
	allTerms, posTerms := query.Terms(root)
	resp.Terms = posTerms

	// Plan the shard wave: distinct shards in term-appearance order.
	shardOf := make(map[string]int, len(allTerms))
	shards := make([]int, 0, len(allTerms))
	seen := make(map[int]bool, len(allTerms))
	for _, term := range allTerms {
		shard := index.ShardOf(term, f.cluster.cfg.NumShards)
		shardOf[term] = shard
		if !seen[shard] {
			seen[shard] = true
			shards = append(shards, shard)
		}
	}

	// partialTrace attaches the trace of the work done so far and strips
	// any composed payload: the lifecycle ended before the response could
	// have reached the client.
	partialTrace := func(plan *ExplainNode, candidates int, loadCost, snippetCost netsim.Cost, err error) (SearchResponse, error) {
		resp.Results, resp.Ads, resp.Total = nil, nil, 0
		resp.Explain = &Explain{
			Query:       q.Raw,
			Mode:        q.Mode.String(),
			Terms:       allTerms,
			Shards:      shards,
			Plan:        plan,
			Candidates:  candidates,
			LoadCost:    loadCost,
			SnippetCost: snippetCost,
			TotalCost:   resp.Cost,
			Partial:     true,
		}
		return resp, err
	}

	if err := bud.check(0); err != nil {
		return partialTrace(nil, 0, netsim.Cost{}, netsim.Cost{}, err)
	}
	segsByShard, loadCost, err := f.loadShardsCtx(bud, 0, shards)
	resp.Cost = resp.Cost.Seq(loadCost)
	if err != nil {
		if lifecycleErr(err) {
			return partialTrace(nil, 0, loadCost, netsim.Cost{}, asLifecycle(err))
		}
		if f.cluster.cfg.DegradedReads && len(segsByShard) > 0 {
			// Graceful degradation: some shards loaded, so compose a
			// partial answer with a typed warning instead of failing the
			// wave. Terms on the missing shards contribute no postings.
			var failed []int
			for _, s := range shards {
				if _, ok := segsByShard[s]; !ok {
					failed = append(failed, s)
				}
			}
			resp.Degraded = &Degraded{
				FailedShards: failed,
				Completeness: float64(len(segsByShard)) / float64(len(shards)),
				Cause:        err.Error(),
			}
		} else {
			// A failed wave still carries its accounting: every shard fetch
			// was in flight, so Explain (when requested) records the wave and
			// its full cost even though no results can be composed.
			if q.Explain {
				resp.Explain = &Explain{
					Query:     q.Raw,
					Mode:      q.Mode.String(),
					Terms:     allTerms,
					Shards:    shards,
					LoadCost:  loadCost,
					TotalCost: resp.Cost,
				}
			}
			return resp, fmt.Errorf("%w: %w", ErrShardUnavailable, err)
		}
	}
	// The wave completed; a deadline it overran still kills the query.
	if err := bud.check(resp.Cost.Latency); err != nil {
		return partialTrace(nil, 0, loadCost, netsim.Cost{}, err)
	}
	// Options are snapshotted once per query: concurrent SetUseGallop-
	// Intersection / SetUseBlockMax calls can never race a plan
	// mid-execution.
	useWAND := f.UseBlockMax()

	var merged map[string]index.PostingList
	var docs []index.DocID
	var plan *ExplainNode
	var direct *index.TermCursor
	if useWAND && root.Kind == query.KindTerm {
		// Document-at-a-time fast path: a bare term needs no merged
		// posting map and no boolean evaluation. The cursor drives
		// scoring block by block, and Total comes straight from the
		// term's document frequency — no candidate list is ever
		// materialized, so skipped blocks are never even decoded.
		if seg, ok := segsByShard[shardOf[root.Term]]; ok {
			direct = seg.Cursor(root.Term)
		}
		if direct != nil {
			resp.Total = direct.DF()
		}
		if q.Explain {
			plan = &ExplainNode{Op: "term", Detail: root.Term, Candidates: resp.Total}
		}
	} else {
		merged = make(map[string]index.PostingList, len(allTerms))
		for _, term := range allTerms {
			if seg, ok := segsByShard[shardOf[term]]; ok {
				merged[term] = seg.Postings(term)
			}
		}
		ev := &evaluator{f: f, merged: merged, explain: q.Explain, gallop: f.UseGallopIntersection()}
		if query.HasSite(root) {
			ev.urls = f.docURLView()
		}
		docs, plan = ev.eval(root)
		resp.Total = len(docs)
	}

	if resp.Total > 0 {
		if err := f.scoreAndCompose(bud, &resp, posTerms, merged, segsByShard, docs, limit, offset, useWAND, direct); err != nil {
			return partialTrace(plan, resp.Total, loadCost, netsim.Cost{}, err)
		}
	}
	var snippetCost netsim.Cost
	if q.Snippets && len(resp.Results) > 0 {
		if snippetCost, err = f.attachSnippets(bud, &resp, posTerms); err != nil {
			return partialTrace(plan, resp.Total, loadCost, snippetCost, err)
		}
	}
	// The response must arrive within the deadline: final checkpoint
	// against the full simulated cost.
	if err := bud.check(resp.Cost.Latency); err != nil {
		return partialTrace(plan, resp.Total, loadCost, snippetCost, err)
	}
	if q.Explain {
		resp.Explain = &Explain{
			Query:        q.Raw,
			Mode:         q.Mode.String(),
			Terms:        allTerms,
			Shards:       shards,
			Plan:         plan,
			Candidates:   resp.Total,
			Returned:     len(resp.Results),
			LoadCost:     loadCost,
			SnippetCost:  snippetCost,
			TotalCost:    resp.Cost,
			Completeness: 1.0,
		}
		if resp.Degraded != nil {
			resp.Explain.DegradedShards = resp.Degraded.FailedShards
			resp.Explain.Completeness = resp.Degraded.Completeness
		}
	}
	return resp, nil
}

// compileAST turns the raw query string into the boolean AST, either
// through the parser (PlanParsed) or as one flat operator over the
// analyzed terms (the legacy Search/SearchAny/SearchPhrase semantics,
// which treat operators and quotes as plain text).
func compileAST(q Query) (*query.Node, error) {
	if q.Mode == PlanParsed {
		return query.Parse(q.Raw)
	}
	terms := index.AnalyzeQuery(q.Raw)
	if len(terms) == 0 {
		return nil, fmt.Errorf("%w: %q", query.ErrEmptyQuery, q.Raw)
	}
	if len(terms) == 1 {
		return &query.Node{Kind: query.KindTerm, Term: terms[0]}, nil
	}
	if q.Mode == PlanPhrase {
		return &query.Node{Kind: query.KindPhrase, Terms: terms}, nil
	}
	kids := make([]*query.Node, len(terms))
	for i, t := range terms {
		kids[i] = &query.Node{Kind: query.KindTerm, Term: t}
	}
	kind := query.KindAnd
	if q.Mode == PlanAny {
		kind = query.KindOr
	}
	return &query.Node{Kind: kind, Kids: kids}, nil
}

// evaluator walks the AST bottom-up, producing sorted candidate doc
// lists per node and, when tracing, the matching ExplainNode tree.
type evaluator struct {
	f       *Frontend
	merged  map[string]index.PostingList
	urls    map[index.DocID]string // DocID→URL snapshot; set iff the tree has site: filters
	explain bool
	gallop  bool // intersection kernel, snapshotted at query start
}

// node builds an ExplainNode, or nil when tracing is off.
func (ev *evaluator) node(op, detail string, candidates int, kids []*ExplainNode) *ExplainNode {
	if !ev.explain {
		return nil
	}
	return &ExplainNode{Op: op, Detail: detail, Candidates: candidates, Children: kids}
}

func (ev *evaluator) eval(n *query.Node) ([]index.DocID, *ExplainNode) {
	switch n.Kind {
	case query.KindTerm:
		docs := ev.merged[n.Term].Docs()
		return docs, ev.node("term", n.Term, len(docs), nil)
	case query.KindPhrase:
		return ev.evalPhrase(n)
	case query.KindOr:
		return ev.evalOr(n)
	case query.KindAnd:
		return ev.evalAnd(n)
	default:
		// KindNot and KindSite are handled inside evalAnd; the parser's
		// validation pass guarantees they never stand alone.
		return nil, ev.node(n.Kind.String(), "", 0, nil)
	}
}

func (ev *evaluator) evalPhrase(n *query.Node) ([]index.DocID, *ExplainNode) {
	detail := ""
	if ev.explain {
		detail = `"` + strings.Join(n.Terms, " ") + `"`
	}
	lists := make([][]index.DocID, 0, len(n.Terms))
	pls := make([]index.PostingList, 0, len(n.Terms))
	for _, t := range n.Terms {
		pl := ev.merged[t]
		if len(pl) == 0 {
			return nil, ev.node("phrase", detail, 0, nil)
		}
		lists = append(lists, pl.Docs())
		pls = append(pls, pl)
	}
	var out []index.DocID
	for _, d := range index.IntersectGallop(lists) {
		if index.PhraseMatch(d, pls) {
			out = append(out, d)
		}
	}
	return out, ev.node("phrase", detail, len(out), nil)
}

func (ev *evaluator) evalOr(n *query.Node) ([]index.DocID, *ExplainNode) {
	var kids []*ExplainNode
	lists := make([][]index.DocID, 0, len(n.Kids))
	for _, kid := range n.Kids {
		docs, kex := ev.eval(kid)
		if len(docs) > 0 {
			lists = append(lists, docs)
		}
		if kex != nil {
			kids = append(kids, kex)
		}
	}
	docs := index.Union(lists)
	return docs, ev.node("or", "", len(docs), kids)
}

// evalAnd intersects the conjunction's positive legs, then applies its
// subtractive legs: exclusions (set difference) and site: filters (URL
// prefix predicates, which also cover -site: exclusions).
func (ev *evaluator) evalAnd(n *query.Node) ([]index.DocID, *ExplainNode) {
	type siteFilter struct {
		prefix string
		keep   bool
		ex     *ExplainNode
	}
	var kids []*ExplainNode
	var lists [][]index.DocID
	var exclusions [][]index.DocID
	var filters []siteFilter
	for _, kid := range n.Kids {
		switch kid.Kind {
		case query.KindSite:
			fex := ev.node("site", kid.Prefix, 0, nil)
			filters = append(filters, siteFilter{prefix: kid.Prefix, keep: true, ex: fex})
			if fex != nil {
				kids = append(kids, fex)
			}
		case query.KindNot:
			inner := kid.Kids[0]
			if inner.Kind == query.KindSite {
				fex := ev.node("not", "site:"+inner.Prefix, 0, nil)
				filters = append(filters, siteFilter{prefix: inner.Prefix, keep: false, ex: fex})
				if fex != nil {
					kids = append(kids, fex)
				}
				continue
			}
			docs, childEx := ev.eval(inner)
			exclusions = append(exclusions, docs)
			if nex := ev.node("not", "", len(docs), []*ExplainNode{childEx}); nex != nil {
				kids = append(kids, nex)
			}
		default:
			docs, kex := ev.eval(kid)
			lists = append(lists, docs)
			if kex != nil {
				kids = append(kids, kex)
			}
		}
	}
	docs := ev.intersect(lists)
	for _, x := range exclusions {
		if len(docs) == 0 {
			break
		}
		docs = index.Difference(docs, x)
	}
	for _, flt := range filters {
		docs = ev.filterSite(docs, flt.prefix, flt.keep)
		if flt.ex != nil {
			flt.ex.Candidates = len(docs)
		}
	}
	return docs, ev.node("and", "", len(docs), kids)
}

// intersect runs the configured kernel (ablation A1) over the positive
// conjunction legs.
func (ev *evaluator) intersect(lists [][]index.DocID) []index.DocID {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	if ev.gallop {
		return index.IntersectGallop(lists)
	}
	return index.IntersectMerge(lists)
}

// filterSite keeps (or, when keep is false, drops) the candidates whose
// URL starts with prefix, against the evaluator's URL snapshot. A DocID
// with no known URL never matches a prefix, so site: drops it and
// -site: keeps it.
func (ev *evaluator) filterSite(docs []index.DocID, prefix string, keep bool) []index.DocID {
	out := docs[:0:0]
	for _, d := range docs {
		if strings.HasPrefix(ev.urls[d], prefix) == keep {
			out = append(out, d)
		}
	}
	return out
}
