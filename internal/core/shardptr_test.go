package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dht"
	"repro/internal/index"
)

func TestReadSegmentRejectsTamperedBytes(t *testing.T) {
	c := smallCluster(t)
	// Store garbage under a digest key that does not match the bytes.
	d := c.Peers[0].DHT()
	digest := index.DigestOf([]byte("the honest segment"))
	if _, _, err := d.Put(dht.KeyOfString(index.SegmentKey(digest)), []byte("evil bytes"), 0); err != nil {
		t.Fatal(err)
	}
	_, _, err := readSegment(c.Peers[3].DHT(), digest)
	if err == nil || !strings.Contains(err.Error(), "hash verification") {
		t.Fatalf("err = %v, want hash verification failure", err)
	}
}

func TestReadSegmentAcceptsGenuineBytes(t *testing.T) {
	c := smallCluster(t)
	b := index.NewBuilder(1)
	b.Add(index.DocIDOf("dweb://x"), "genuine segment content")
	data := b.Build().Encode()
	digest := index.DigestOf(data)
	if _, err := writeSegment(c.Peers[0].DHT(), digest, data); err != nil {
		t.Fatal(err)
	}
	seg, _, err := readSegment(c.Peers[4].DHT(), digest)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Postings(index.Stem("genuine")) == nil {
		t.Fatal("decoded segment missing postings")
	}
}

func TestShardCompactionBoundsSegmentChains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 12
	cfg.NumBees = 3
	cfg.NumShards = 2 // concentrate segments onto few shards
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 100_000)
	c.Seal()

	const docs = 30
	for i := 0; i < docs; i++ {
		if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], fmt.Sprintf("dweb://c/%02d", i),
			fmt.Sprintf("compaction workload document %02d body", i), nil); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			c.Seal()
			c.RunUntilIdle(4)
		}
	}
	c.Seal()
	c.RunUntilIdle(8)

	// With 30 docs over 2 shards, uncompacted chains would be ~15 long.
	// Compaction (threshold 8) must keep every chain below that.
	reader := c.Peers[1].DHT()
	for shard := 0; shard < cfg.NumShards; shard++ {
		ptr, _, err := readShardPointer(reader, shard)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if len(ptr.Digests) >= compactionThreshold+2 {
			t.Fatalf("shard %d chain = %d segments; compaction not working", shard, len(ptr.Digests))
		}
	}
	// And the index still answers.
	fe := NewFrontend(c, c.Peers[2])
	resp, err := fe.Search("compaction workload", 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != docs {
		t.Fatalf("results = %d, want %d", len(resp.Results), docs)
	}
}

func TestStatsRecordTracksCorpus(t *testing.T) {
	c := smallCluster(t)
	alice := c.NewAccount("alice", 10_000)
	c.Seal()
	for i := 0; i < 4; i++ {
		if _, err := c.Publish(alice, c.Peers[0], fmt.Sprintf("dweb://s/%d", i),
			"five words in this body", nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Seal()
	c.RunUntilIdle(6)
	st, _ := readStats(c.Peers[1].DHT())
	if st.Docs != 4 {
		t.Fatalf("stats docs = %d, want 4", st.Docs)
	}
	if st.Tokens == 0 {
		t.Fatal("stats tokens should be positive")
	}
}
