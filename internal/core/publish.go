package core

import (
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/netsim"
	"repro/internal/store"
)

// PublishReceipt reports one completed publish pipeline step.
type PublishReceipt struct {
	URL  string
	CID  store.CID
	Tx   *chain.Tx
	Cost netsim.Cost
}

// Publish runs the creator pipeline: store the content on the given DWeb
// peer, then register the URL→CID binding via the smart contract. The
// publish transaction executes (and the index task is created) at the
// next Seal; drive ProcessRound to have bees index it.
func (c *Cluster) Publish(owner *chain.Account, peer *store.Peer, url, text string, links []string) (PublishReceipt, error) {
	cid, cost, err := peer.Add([]byte(text))
	if err != nil {
		return PublishReceipt{}, fmt.Errorf("core: storing %q: %w", url, err)
	}
	tx := c.SubmitCall(owner, contracts.MethodPublish, contracts.PublishParams{
		URL:   url,
		CID:   cid.String(),
		Links: links,
	}, 0)
	return PublishReceipt{URL: url, CID: cid, Tx: tx, Cost: cost}, nil
}

// BatchPage is one page of a batch publish.
type BatchPage struct {
	URL   string
	Text  string
	Links []string
}

// BatchReceipt reports the creator side of one batch publish: the
// content stores (costed as one parallel wave — each page is an
// independent upload) and the single registration transaction that
// creates the round's batch index task.
type BatchReceipt struct {
	Pages     int
	Tx        *chain.Tx
	StoreCost netsim.Cost
}

// ErrBatchInvalid marks a publish batch refused by pre-flight
// validation (empty, duplicate URL, foreign-owned URL) — the batch is
// the caller's fault and nothing was stored or submitted. Match with
// errors.Is.
var ErrBatchInvalid = errors.New("core: invalid publish batch")

// PublishBatch runs the creator pipeline for a whole batch: store every
// page's content on the given DWeb peer, then register all URL→CID
// bindings in ONE smart-contract transaction, which creates ONE index
// task covering the batch. The transaction executes at the next Seal;
// drive ProcessRound to have bees index it.
//
// Foreseeable rejections (duplicate or foreign-owned URLs) fail
// pre-flight with ErrBatchInvalid before any content is stored or any
// block sealed; the contract re-validates atomically at execution, so
// callers should still check the transaction receipt after sealing.
func (c *Cluster) PublishBatch(owner *chain.Account, peer *store.Peer, pages []BatchPage) (BatchReceipt, error) {
	if len(pages) == 0 {
		return BatchReceipt{}, fmt.Errorf("%w: no pages", ErrBatchInvalid)
	}
	seen := make(map[string]bool, len(pages))
	for _, p := range pages {
		if p.URL == "" {
			return BatchReceipt{}, fmt.Errorf("%w: page with empty URL", ErrBatchInvalid)
		}
		if seen[p.URL] {
			return BatchReceipt{}, fmt.Errorf("%w: %q listed twice", ErrBatchInvalid, p.URL)
		}
		seen[p.URL] = true
		if rec, exists := c.QB.Page(p.URL); exists && rec.Owner != owner.Address() {
			return BatchReceipt{}, fmt.Errorf("%w: %q is owned by %s", ErrBatchInvalid, p.URL, rec.Owner.Short())
		}
	}
	params := contracts.PublishBatchParams{Pages: make([]contracts.PublishParams, 0, len(pages))}
	var storeCost netsim.Cost
	for _, p := range pages {
		cid, cost, err := peer.Add([]byte(p.Text))
		if err != nil {
			return BatchReceipt{}, fmt.Errorf("core: storing %q: %w", p.URL, err)
		}
		storeCost = storeCost.Par(cost)
		params.Pages = append(params.Pages, contracts.PublishParams{
			URL:   p.URL,
			CID:   cid.String(),
			Links: p.Links,
		})
	}
	tx := c.SubmitCall(owner, contracts.MethodPublishBatch, params, 0)
	return BatchReceipt{Pages: len(pages), Tx: tx, StoreCost: storeCost}, nil
}

// IndexBatch is the full write cycle behind both the facade's
// PublishBatch and the streaming ingest pipeline: store + register the
// batch (PublishBatch against a cluster-chosen peer), seal the block,
// check the registration receipt, and drive one protocol round. The
// returned RoundReceipt carries the batch's store cost.
//
// Every sink MUST go through this one method: it fixes the exact
// cluster call/RNG sequence per batch (RandomPeer draw, Seal count,
// round schedule), which is what makes a pipelined crawl byte-identical
// to a sequential PublishBatch loop over the same batches. Validation
// failures — pre-flight or the contract's atomic on-chain check — wrap
// ErrBatchInvalid.
func (c *Cluster) IndexBatch(owner *chain.Account, pages []BatchPage) (RoundReceipt, error) {
	br, err := c.PublishBatch(owner, c.RandomPeer(), pages)
	if err != nil {
		return RoundReceipt{}, err
	}
	c.Seal()
	if r := c.Chain.Receipt(br.Tx.Hash()); r == nil || !r.OK {
		msg := "no receipt"
		if r != nil {
			msg = r.Err
		}
		return RoundReceipt{}, fmt.Errorf("%w: %s", ErrBatchInvalid, msg)
	}
	rr := c.ProcessRoundReceipt()
	rr.StoreCost = br.StoreCost
	return rr, nil
}

// cidFromHex parses a hex CID recorded on chain.
func cidFromHex(s string) (store.CID, error) {
	var cid store.CID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(cid) {
		return cid, fmt.Errorf("core: bad CID %q", s)
	}
	copy(cid[:], b)
	return cid, nil
}
