package core

import (
	"encoding/hex"
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/netsim"
	"repro/internal/store"
)

// PublishReceipt reports one completed publish pipeline step.
type PublishReceipt struct {
	URL  string
	CID  store.CID
	Tx   *chain.Tx
	Cost netsim.Cost
}

// Publish runs the creator pipeline: store the content on the given DWeb
// peer, then register the URL→CID binding via the smart contract. The
// publish transaction executes (and the index task is created) at the
// next Seal; drive ProcessRound to have bees index it.
func (c *Cluster) Publish(owner *chain.Account, peer *store.Peer, url, text string, links []string) (PublishReceipt, error) {
	cid, cost, err := peer.Add([]byte(text))
	if err != nil {
		return PublishReceipt{}, fmt.Errorf("core: storing %q: %w", url, err)
	}
	tx := c.SubmitCall(owner, contracts.MethodPublish, contracts.PublishParams{
		URL:   url,
		CID:   cid.String(),
		Links: links,
	}, 0)
	return PublishReceipt{URL: url, CID: cid, Tx: tx, Cost: cost}, nil
}

// cidFromHex parses a hex CID recorded on chain.
func cidFromHex(s string) (store.CID, error) {
	var cid store.CID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(cid) {
		return cid, fmt.Errorf("core: bad CID %q", s)
	}
	copy(cid[:], b)
	return cid, nil
}
