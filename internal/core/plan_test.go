package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/query"
)

// urlsOf collects result URLs into a set.
func urlsOf(resp SearchResponse) map[string]bool {
	out := make(map[string]bool, len(resp.Results))
	for _, r := range resp.Results {
		out[r.URL] = true
	}
	return out
}

// TestQueryExecuteBoolean drives the parsed query language end-to-end
// over the shared three-document cluster: exclusions, site: filters in
// both polarities, OR, and quoted phrases.
func TestQueryExecuteBoolean(t *testing.T) {
	_, fe := queryCluster(t)
	cases := []struct {
		q    string
		want []string
	}{
		// q1: "red apples grow on apple trees in the orchard"
		// q2: "red fire trucks race through the city streets"
		// q3: "green apples taste sour compared to red apples"
		{"red -fire", []string{"dweb://q1", "dweb://q3"}},
		{"red -apples", []string{"dweb://q2"}},
		{"red site:dweb://q3", []string{"dweb://q3"}},
		{"red -site:dweb://q2", []string{"dweb://q1", "dweb://q3"}},
		{"orchard OR streets", []string{"dweb://q1", "dweb://q2"}},
		{`"red apples"`, []string{"dweb://q1", "dweb://q3"}},
		{`red -"apple trees"`, []string{"dweb://q2", "dweb://q3"}},
		{"(orchard OR streets) red", []string{"dweb://q1", "dweb://q2"}},
		{"red -(fire OR green)", []string{"dweb://q1"}},
	}
	for _, tc := range cases {
		resp, err := fe.Execute(Query{Raw: tc.q})
		if err != nil {
			t.Errorf("Execute(%q): %v", tc.q, err)
			continue
		}
		got := urlsOf(resp)
		if len(got) != len(tc.want) {
			t.Errorf("Execute(%q) = %v, want %v", tc.q, got, tc.want)
			continue
		}
		for _, u := range tc.want {
			if !got[u] {
				t.Errorf("Execute(%q) = %v, missing %s", tc.q, got, u)
			}
		}
		if resp.Total != len(tc.want) {
			t.Errorf("Execute(%q).Total = %d, want %d", tc.q, resp.Total, len(tc.want))
		}
	}
}

func TestQueryExecuteErrors(t *testing.T) {
	_, fe := queryCluster(t)
	if _, err := fe.Execute(Query{Raw: "the of and"}); !errors.Is(err, query.ErrEmptyQuery) {
		t.Errorf("stopword-only: err = %v, want ErrEmptyQuery", err)
	}
	if _, err := fe.Execute(Query{Raw: "-red"}); !errors.Is(err, query.ErrBadSyntax) {
		t.Errorf("exclusion-only: err = %v, want ErrBadSyntax", err)
	}
	if _, err := fe.Execute(Query{Raw: `"unterminated`}); !errors.Is(err, query.ErrBadSyntax) {
		t.Errorf("unterminated quote: err = %v, want ErrBadSyntax", err)
	}
	// Flat modes bypass the parser but still reject term-free strings.
	if _, err := fe.Execute(Query{Raw: "the of", Mode: PlanAll}); !errors.Is(err, query.ErrEmptyQuery) {
		t.Errorf("flat stopword-only: err = %v, want ErrEmptyQuery", err)
	}
}

// TestQueryExecutePagination checks that offset/limit pages tile the
// ranked result list: disjoint, rank-ordered, and unioning back to the
// unpaginated set.
func TestQueryExecutePagination(t *testing.T) {
	_, fe := queryCluster(t)
	full, err := fe.Execute(Query{Raw: "red", Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Results) != 3 || full.Total != 3 {
		t.Fatalf("full = %d results, total %d", len(full.Results), full.Total)
	}
	var paged []Result
	for page := 0; page < 3; page++ {
		resp, err := fe.Execute(Query{Raw: "red", Limit: 1, Offset: page})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 1 {
			t.Fatalf("page %d: %d results", page, len(resp.Results))
		}
		if resp.Total != 3 {
			t.Fatalf("page %d: total = %d, want 3", page, resp.Total)
		}
		paged = append(paged, resp.Results[0])
	}
	for i, r := range paged {
		if r != full.Results[i] {
			t.Fatalf("page %d = %+v, want %+v", i, r, full.Results[i])
		}
	}
	// Past the end: empty page, same total.
	resp, err := fe.Execute(Query{Raw: "red", Limit: 5, Offset: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 || resp.Total != 3 {
		t.Fatalf("past-end page = %d results, total %d", len(resp.Results), resp.Total)
	}
}

func TestQueryExecuteExplain(t *testing.T) {
	_, fe := queryCluster(t)
	resp, err := fe.Execute(Query{Raw: "red apples -fire", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("Explain flag set but no trace on response")
	}
	if ex.Plan == nil || ex.Plan.Op != "and" {
		t.Fatalf("plan root = %+v, want and", ex.Plan)
	}
	if ex.Candidates != resp.Total || ex.Returned != len(resp.Results) {
		t.Fatalf("explain counts %d/%d vs response %d/%d",
			ex.Candidates, ex.Returned, resp.Total, len(resp.Results))
	}
	if len(ex.Shards) == 0 || len(ex.Terms) != 3 {
		t.Fatalf("shards=%v terms=%v", ex.Shards, ex.Terms)
	}
	// The excluded term still appears in the loaded-terms list (its
	// shard is part of the wave) but not in the response's positive
	// terms.
	foundFire := false
	for _, term := range ex.Terms {
		if term == "fire" {
			foundFire = true
		}
	}
	if !foundFire {
		t.Fatalf("excluded term missing from explain terms: %v", ex.Terms)
	}
	for _, term := range resp.Terms {
		if term == "fire" {
			t.Fatalf("excluded term leaked into positive terms: %v", resp.Terms)
		}
	}
	// Per-node candidate counts: the AND has a term leg, and a NOT leg
	// whose count is the size of the excluded set (one doc has "fire").
	var sawNot bool
	for _, kid := range ex.Plan.Children {
		if kid.Op == "not" {
			sawNot = true
			if kid.Candidates != 1 {
				t.Fatalf("not leg candidates = %d, want 1", kid.Candidates)
			}
		}
	}
	if !sawNot {
		t.Fatalf("plan children missing not leg: %+v", ex.Plan.Children)
	}
	if ex.TotalCost.Latency < ex.LoadCost.Latency {
		t.Fatalf("total cost %v below load cost %v", ex.TotalCost.Latency, ex.LoadCost.Latency)
	}
	if ex.String() == "" {
		t.Fatal("explain rendering empty")
	}
	// Tracing off → no tree.
	resp, err = fe.Execute(Query{Raw: "red"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Explain != nil {
		t.Fatal("explain present without the flag")
	}
}

// TestQueryFailedWaveAccounting pins the loadShards error contract: when
// one shard of the wave fails, the caller gets no partial result map, the
// error names the lowest-indexed failing shard and wraps
// ErrShardUnavailable, and the Explain trace still records the full
// wave's shards and cost (every fetch was in flight when the wave
// failed).
func TestQueryFailedWaveAccounting(t *testing.T) {
	c, fe := queryCluster(t)

	// Poison the pointer record of the shard the analyzed "red" hashes
	// to with a higher-versioned garbage value: every replica converges
	// on it, so the next pointer read fails to parse.
	terms := index.AnalyzeQuery("red apples")
	if len(terms) != 2 {
		t.Fatalf("analyzed terms = %v, want 2", terms)
	}
	shard := index.ShardOf(terms[0], c.Config().NumShards)
	key := dht.KeyOfString(index.ShardPointerKey(shard))
	if _, _, err := fe.peer.DHT().Put(key, []byte("not json"), 1<<60); err != nil {
		t.Fatal(err)
	}

	resp, err := fe.Execute(Query{Raw: "red apples", Explain: true})
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("shard %d", shard)) {
		t.Fatalf("err %q does not name the failing shard %d", err, shard)
	}
	if len(resp.Results) != 0 || resp.Total != 0 {
		t.Fatalf("failed wave leaked results: %+v", resp.Results)
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("failed wave with Explain requested should still carry the trace")
	}
	// Both terms' shards belong to the wave even though one failed, and
	// the wave's cost covers every in-flight fetch.
	wantShards := map[int]bool{
		index.ShardOf(terms[0], c.Config().NumShards): true,
		index.ShardOf(terms[1], c.Config().NumShards): true,
	}
	if len(ex.Shards) != len(wantShards) {
		t.Fatalf("explain shards = %v, want %d distinct", ex.Shards, len(wantShards))
	}
	for _, s := range ex.Shards {
		if !wantShards[s] {
			t.Fatalf("explain shards = %v, unexpected %d", ex.Shards, s)
		}
	}
	if ex.LoadCost.Msgs == 0 || ex.LoadCost.Latency == 0 {
		t.Fatalf("failed wave load cost empty: %+v", ex.LoadCost)
	}
	if ex.TotalCost != ex.LoadCost {
		t.Fatalf("failed wave total %+v should equal load %+v (nothing else ran)", ex.TotalCost, ex.LoadCost)
	}
	if ex.Plan != nil || ex.Candidates != 0 || ex.Returned != 0 {
		t.Fatalf("failed wave should carry no plan/candidates: %+v", ex)
	}
}

// TestQueryFlatModesMatchLegacy pins the wrapper contract: SearchWith's
// flat modes and the planner agree, and operators are plain text there.
func TestQueryFlatModesMatchLegacy(t *testing.T) {
	_, fe := queryCluster(t)
	// In flat AND mode, "OR" is a stopword and "-" is punctuation.
	resp, err := fe.SearchWith("orchard OR streets", SearchOptions{Mode: ModeAND, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 {
		t.Fatalf("flat AND of disjoint terms matched %v", urlsOf(resp))
	}
	parsed, err := fe.Execute(Query{Raw: "orchard OR streets"})
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Results) != 2 {
		t.Fatalf("parsed OR = %v", urlsOf(parsed))
	}
	// Snippets ride through Execute: the fetch wave costs Par, so the
	// latency is at least one fetch but the response still carries a
	// snippet per result.
	withSnips, err := fe.Execute(Query{Raw: "orchard", Snippets: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withSnips.Results) != 1 || withSnips.Results[0].Snippet == "" {
		t.Fatalf("snippets missing: %+v", withSnips.Results)
	}
}
