package core

import (
	"fmt"
	"testing"
)

// churnCluster builds a larger cluster with an indexed corpus.
func churnCluster(t *testing.T) (*Cluster, []string) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.NumPeers = 24
	cfg.NumBees = 3
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 10_000)
	c.Seal()
	var markers []string
	for i := 0; i < 10; i++ {
		marker := fmt.Sprintf("churnmarker%02d", i)
		markers = append(markers, marker)
		if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], fmt.Sprintf("dweb://churn/%d", i),
			"stable document body "+marker, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Seal()
	c.RunUntilIdle(8)
	return c, markers
}

func searchableCount(t *testing.T, c *Cluster, fe *Frontend, markers []string) int {
	t.Helper()
	hits := 0
	for _, m := range markers {
		resp, err := fe.Search(m, 5)
		if err == nil && len(resp.Results) > 0 {
			hits++
		}
	}
	return hits
}

func TestSearchSurvivesModerateChurn(t *testing.T) {
	c, markers := churnCluster(t)
	fe := NewFrontend(c, c.Bees[0].Peer) // frontend on a bee (never failed)
	if got := searchableCount(t, c, fe, markers); got != len(markers) {
		t.Fatalf("pre-churn searchable = %d/%d", got, len(markers))
	}
	c.FailPeers(0.25)
	fe2 := NewFrontend(c, c.Bees[1].Peer) // fresh frontend, no caches
	if got := searchableCount(t, c, fe2, markers); got < len(markers)*8/10 {
		t.Fatalf("post-churn searchable = %d/%d, want >= 80%%", got, len(markers))
	}
}

func TestRefreshRestoresAfterHeavyChurn(t *testing.T) {
	c, markers := churnCluster(t)
	failed := c.FailPeers(0.5)

	// Survivors re-replicate records onto the live closest nodes.
	c.RefreshDHT()

	// Even after the failed half never comes back, a fresh frontend on a
	// live bee should find (nearly) everything again.
	fe := NewFrontend(c, c.Bees[2].Peer)
	got := searchableCount(t, c, fe, markers)
	if got < len(markers)*8/10 {
		t.Fatalf("post-refresh searchable = %d/%d, want >= 80%%", got, len(markers))
	}
	// Healing is also possible.
	c.HealPeers(failed)
	if got := searchableCount(t, c, fe, markers); got != len(markers) {
		t.Fatalf("post-heal searchable = %d/%d", got, len(markers))
	}
}

func TestIndexingContinuesDuringChurn(t *testing.T) {
	c, _ := churnCluster(t)
	c.FailPeers(0.25)
	alice := c.NewAccount("alice2", 10_000)
	c.Seal()
	// Publish onto a live peer (bees are always live).
	if _, err := c.Publish(alice, c.Bees[0].Peer, "dweb://during-churn",
		"published while the swarm is degraded churnfresh", nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	c.RunUntilIdle(8)
	fe := NewFrontend(c, c.Bees[1].Peer)
	resp, err := fe.Search("churnfresh", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("new content not indexed during churn: %+v", resp.Results)
	}
}

func TestFailPeersDeterministic(t *testing.T) {
	build := func() []string {
		cfg := DefaultConfig()
		cfg.Seed = 9
		cfg.NumPeers = 12
		cfg.NumBees = 2
		c := NewCluster(cfg)
		var out []string
		for _, a := range c.FailPeers(0.3) {
			out = append(out, string(a))
		}
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lens %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FailPeers not deterministic")
		}
	}
}
