package core

import (
	"fmt"
	"strings"

	"repro/internal/index"
	"repro/internal/netsim"
)

// QueryMode selects the boolean semantics of a flat (legacy) search.
// The structured query language (see Execute and internal/query) is the
// richer surface; these modes survive as the thin Search* wrappers.
type QueryMode int

// Query modes.
const (
	// ModeAND returns documents containing every term (default).
	ModeAND QueryMode = iota
	// ModeOR returns documents containing any term.
	ModeOR
	// ModePhrase returns documents containing the terms as an exact
	// adjacent phrase (positional postings).
	ModePhrase
)

// String implements fmt.Stringer.
func (m QueryMode) String() string {
	switch m {
	case ModeAND:
		return "AND"
	case ModeOR:
		return "OR"
	case ModePhrase:
		return "PHRASE"
	default:
		return fmt.Sprintf("QueryMode(%d)", int(m))
	}
}

// SearchOptions tunes one flat query.
type SearchOptions struct {
	Mode QueryMode
	K    int
	// Snippets controls whether each result carries a text snippet
	// around the first match (requires fetching the document content,
	// which costs extra simulated time).
	Snippets bool
}

// planMode maps a legacy flat mode onto the planner's equivalent.
func (m QueryMode) planMode() PlanMode {
	switch m {
	case ModeOR:
		return PlanAny
	case ModePhrase:
		return PlanPhrase
	default:
		return PlanAll
	}
}

// SearchWith runs the frontend pipeline with explicit flat-mode
// options: a thin wrapper over Execute that ANDs/ORs/phrase-matches
// every analyzed term, treating operators and quotes as plain text.
func (f *Frontend) SearchWith(raw string, opts SearchOptions) (SearchResponse, error) {
	return f.Execute(Query{
		Raw:      raw,
		Mode:     opts.Mode.planMode(),
		Limit:    opts.K,
		Snippets: opts.Snippets,
	})
}

// attachSnippets fetches each result's content and extracts a snippet
// around the first matched term. The per-result fetches are independent
// of each other, so — like the shard loads — they are costed as one
// parallel wave (Cost.Par): the slowest fetch, not the sum. Returns the
// wave's cost, which is also folded into resp.Cost.
//
// The budget is checked once before the wave (every member shares the
// wave's simulated launch instant, so the deadline cannot cut between
// members) and the context before each member — a cancelled request
// abandons the remaining fetches and returns the partial wave's cost
// with ErrDeadlineExceeded.
func (f *Frontend) attachSnippets(bud reqBudget, resp *SearchResponse, terms []string) (netsim.Cost, error) {
	var wave netsim.Cost
	abandon := func(err error) (netsim.Cost, error) {
		resp.Cost = resp.Cost.Seq(wave)
		return wave, err
	}
	if err := bud.check(resp.Cost.Latency); err != nil {
		return abandon(err)
	}
	for i := range resp.Results {
		if cerr := bud.context().Err(); cerr != nil {
			return abandon(fmt.Errorf("%w: %w", ErrDeadlineExceeded, cerr))
		}
		data, cost, err := f.FetchResult(resp.Results[i])
		wave = wave.Par(cost)
		if err != nil {
			continue
		}
		resp.Results[i].Snippet = Snippet(string(data), terms, 12)
	}
	resp.Cost = resp.Cost.Seq(wave)
	return wave, nil
}

// Snippet extracts a window of words around the first occurrence of any
// query term (after analysis), marking the match with «…» brackets.
func Snippet(text string, terms []string, window int) string {
	want := make(map[string]bool, len(terms))
	for _, t := range terms {
		want[t] = true
	}
	words := strings.Fields(text)
	matchIdx := -1
	for i, w := range words {
		toks := index.Analyze(w)
		if len(toks) == 1 && want[toks[0].Term] {
			matchIdx = i
			break
		}
	}
	if matchIdx < 0 {
		if len(words) > window {
			words = words[:window]
		}
		return strings.Join(words, " ")
	}
	lo := matchIdx - window/2
	if lo < 0 {
		lo = 0
	}
	hi := matchIdx + window/2 + 1
	if hi > len(words) {
		hi = len(words)
	}
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if i == matchIdx {
			out = append(out, "«"+words[i]+"»")
		} else {
			out = append(out, words[i])
		}
	}
	return strings.Join(out, " ")
}
