package core

import (
	"fmt"
	"strings"

	"repro/internal/index"
)

// QueryMode selects the boolean semantics of a search.
type QueryMode int

// Query modes.
const (
	// ModeAND returns documents containing every term (default).
	ModeAND QueryMode = iota
	// ModeOR returns documents containing any term.
	ModeOR
	// ModePhrase returns documents containing the terms as an exact
	// adjacent phrase (positional match).
	ModePhrase
)

// String implements fmt.Stringer.
func (m QueryMode) String() string {
	switch m {
	case ModeAND:
		return "AND"
	case ModeOR:
		return "OR"
	case ModePhrase:
		return "PHRASE"
	default:
		return fmt.Sprintf("QueryMode(%d)", int(m))
	}
}

// SearchOptions tunes one query.
type SearchOptions struct {
	Mode QueryMode
	K    int
	// Snippets controls whether each result carries a text snippet
	// around the first match (requires fetching the document content,
	// which costs extra simulated time).
	Snippets bool
}

// SearchWith runs the frontend pipeline with explicit options. Search is
// the ModeAND shorthand.
func (f *Frontend) SearchWith(query string, opts SearchOptions) (SearchResponse, error) {
	if opts.K <= 0 {
		opts.K = 10
	}
	terms := index.AnalyzeQuery(query)
	resp := SearchResponse{Terms: terms}
	if len(terms) == 0 {
		return resp, fmt.Errorf("core: query %q has no searchable terms", query)
	}

	// Resolve the distinct shards the query touches, load them all
	// concurrently, then pull just the queried terms' posting lists (v2
	// segments decode only those lists).
	shardOf := make(map[string]int, len(terms))
	shards := make([]int, 0, len(terms))
	seen := make(map[int]bool, len(terms))
	for _, term := range terms {
		shard := index.ShardOf(term, f.cluster.cfg.NumShards)
		shardOf[term] = shard
		if !seen[shard] {
			seen[shard] = true
			shards = append(shards, shard)
		}
	}
	segsByShard, cost, err := f.loadShards(shards)
	resp.Cost = resp.Cost.Seq(cost)
	if err != nil {
		return resp, err
	}
	merged := make(map[string]index.PostingList, len(terms))
	for _, term := range terms {
		merged[term] = segsByShard[shardOf[term]].Postings(term)
	}

	var docs []index.DocID
	switch opts.Mode {
	case ModeOR:
		var lists [][]index.DocID
		for _, term := range terms {
			if pl := merged[term]; len(pl) > 0 {
				lists = append(lists, pl.Docs())
			}
		}
		docs = index.Union(lists)
	case ModePhrase:
		docs = f.phraseDocs(terms, merged)
	default:
		var lists [][]index.DocID
		for _, term := range terms {
			pl := merged[term]
			if len(pl) == 0 {
				return resp, nil
			}
			lists = append(lists, pl.Docs())
		}
		if f.UseGallopIntersection {
			docs = index.IntersectGallop(lists)
		} else {
			docs = index.IntersectMerge(lists)
		}
	}
	if len(docs) == 0 {
		return resp, nil
	}

	f.scoreAndCompose(&resp, terms, merged, segsByShard, docs, opts.K)
	if opts.Snippets {
		f.attachSnippets(&resp, terms)
	}
	return resp, nil
}

// phraseDocs intersects the terms, then filters by positional adjacency.
func (f *Frontend) phraseDocs(terms []string, merged map[string]index.PostingList) []index.DocID {
	var lists [][]index.DocID
	var postingLists []index.PostingList
	for _, term := range terms {
		pl := merged[term]
		if len(pl) == 0 {
			return nil
		}
		lists = append(lists, pl.Docs())
		postingLists = append(postingLists, pl)
	}
	candidates := index.IntersectGallop(lists)
	var out []index.DocID
	for _, d := range candidates {
		if index.PhraseMatch(d, postingLists) {
			out = append(out, d)
		}
	}
	return out
}

// attachSnippets fetches each result's content and extracts a snippet
// around the first matched term.
func (f *Frontend) attachSnippets(resp *SearchResponse, terms []string) {
	for i := range resp.Results {
		data, cost, err := f.FetchResult(resp.Results[i])
		resp.Cost = resp.Cost.Seq(cost)
		if err != nil {
			continue
		}
		resp.Results[i].Snippet = Snippet(string(data), terms, 12)
	}
}

// Snippet extracts a window of words around the first occurrence of any
// query term (after analysis), marking the match with «…» brackets.
func Snippet(text string, terms []string, window int) string {
	want := make(map[string]bool, len(terms))
	for _, t := range terms {
		want[t] = true
	}
	words := strings.Fields(text)
	matchIdx := -1
	for i, w := range words {
		toks := index.Analyze(w)
		if len(toks) == 1 && want[toks[0].Term] {
			matchIdx = i
			break
		}
	}
	if matchIdx < 0 {
		if len(words) > window {
			words = words[:window]
		}
		return strings.Join(words, " ")
	}
	lo := matchIdx - window/2
	if lo < 0 {
		lo = 0
	}
	hi := matchIdx + window/2 + 1
	if hi > len(words) {
		hi = len(words)
	}
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if i == matchIdx {
			out = append(out, "«"+words[i]+"»")
		} else {
			out = append(out, words[i])
		}
	}
	return strings.Join(out, " ")
}
