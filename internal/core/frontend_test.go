package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/index"
)

// TestCachedStatsEmptyCorpusFetchesOnce is the regression test for the
// "Docs > 0" sentinel bug: an empty corpus used to re-read the stats
// record from the DHT on every query because the zero value looked like
// "never fetched". The fetched state is now an explicit generation.
func TestCachedStatsEmptyCorpusFetchesOnce(t *testing.T) {
	c := smallCluster(t)
	fe := NewFrontend(c, c.Peers[1])

	st, _ := fe.cachedStats()
	if st.Docs != 0 {
		t.Fatalf("empty corpus stats = %+v", st)
	}
	if got := fe.CacheStatsSnapshot().StatsFetches; got != 1 {
		t.Fatalf("first read: %d DHT stats fetches, want 1", got)
	}

	// Repeat reads on the unchanged (still empty) corpus must be cache
	// hits: zero additional DHT traffic.
	before := c.Net.StatsSnapshot().Calls
	for i := 0; i < 5; i++ {
		fe.cachedStats()
	}
	if got := fe.CacheStatsSnapshot().StatsFetches; got != 1 {
		t.Fatalf("after repeats: %d DHT stats fetches, want still 1", got)
	}
	if after := c.Net.StatsSnapshot().Calls; after != before {
		t.Fatalf("cached stats reads issued %d network calls", after-before)
	}

	// Publishing a page bumps the generation, so exactly one more fetch.
	alice := c.NewAccount("alice", 1000)
	c.Seal()
	if _, err := c.Publish(alice, c.Peers[0], "dweb://s1", "fresh stats doc", nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	c.RunUntilIdle(6)
	fe.cachedStats()
	fe.cachedStats()
	if got := fe.CacheStatsSnapshot().StatsFetches; got != 2 {
		t.Fatalf("after publish: %d DHT stats fetches, want 2", got)
	}
}

// TestFetchSegmentSingleflight pins the dedup contract: a request for a
// digest with a fetch already in flight blocks until the leader finishes
// and shares its result instead of issuing a second DHT read.
func TestFetchSegmentSingleflight(t *testing.T) {
	c := smallCluster(t)
	fe := NewFrontend(c, c.Peers[1])

	fl := &segFetch{done: make(chan struct{})}
	fe.mu.Lock()
	fe.segFlight["deadbeef"] = fl
	fe.mu.Unlock()

	got := make(chan *index.Segment, 1)
	go func() {
		seg, _, err := fe.fetchSegment("deadbeef")
		if err != nil {
			t.Error(err)
		}
		got <- seg
	}()

	select {
	case <-got:
		t.Fatal("fetchSegment returned before the in-flight fetch completed")
	case <-time.After(20 * time.Millisecond):
	}

	want := index.NewSegment(7)
	fl.seg = want
	fe.mu.Lock()
	delete(fe.segFlight, "deadbeef")
	fe.mu.Unlock()
	close(fl.done)

	select {
	case seg := <-got:
		if seg != want {
			t.Fatalf("waiter got %p, want the leader's segment %p", seg, want)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter did not wake after the flight completed")
	}
}

// TestFrontendCachesStayWithinBudget drives publish churn — every wave
// retires shard chains and mints new segment digests — against a
// frontend with deliberately tiny cache budgets, asserting the LRUs
// never exceed them while still serving hits.
func TestFrontendCachesStayWithinBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 10
	cfg.NumBees = 3
	// The segment budget is tiny to force digest eviction under churn;
	// the chain budget fits a handful of merged shards so warm queries
	// still hit.
	cfg.SegCacheBytes = 4 << 10
	cfg.ChainCacheBytes = 64 << 10
	c := NewCluster(cfg)
	fe := NewFrontend(c, c.Peers[1])

	alice := c.NewAccount("alice", 100_000)
	c.Seal()

	for wave := 0; wave < 6; wave++ {
		for d := 0; d < 4; d++ {
			url := fmt.Sprintf("dweb://churn-%d-%d", wave, d)
			text := fmt.Sprintf("churn document wave %d copy %d with shared apples and unique w%dd%d", wave, d, wave, d)
			if _, err := c.Publish(alice, c.Peers[0], url, text, nil); err != nil {
				t.Fatal(err)
			}
		}
		c.Seal()
		c.RunUntilIdle(6)
		if _, err := fe.Execute(Query{Raw: "apples churn"}); err != nil {
			t.Fatal(err)
		}
		st := fe.CacheStatsSnapshot()
		if st.SegBytes > st.SegBudget {
			t.Fatalf("wave %d: segment cache %dB over its %dB budget", wave, st.SegBytes, st.SegBudget)
		}
		if st.ChainBytes > st.ChainBudget {
			t.Fatalf("wave %d: chain cache %dB over its %dB budget", wave, st.ChainBytes, st.ChainBudget)
		}
	}

	st := fe.CacheStatsSnapshot()
	if st.SegEntries == 0 && st.ChainEntries == 0 {
		t.Fatal("caches admitted nothing — budgets too small to be a meaningful test")
	}
	if st.SegMisses == 0 {
		t.Fatal("churn never missed the segment cache — eviction untested")
	}
	// Re-running the same query against the unchanged index is served
	// from the chain cache.
	warmBefore := fe.CacheStatsSnapshot().ChainHits
	if _, err := fe.Execute(Query{Raw: "apples churn"}); err != nil {
		t.Fatal(err)
	}
	if fe.CacheStatsSnapshot().ChainHits <= warmBefore {
		t.Fatal("warm repeat query did not hit the chain cache")
	}
}

// TestLoadShardsParallelMatchesSequential: the goroutine fan-out must
// return exactly the segments the sequential path returns for the same
// seed — the concurrency-determinism contract at the shard-wave level.
func TestLoadShardsParallelMatchesSequential(t *testing.T) {
	c, fe := queryCluster(t)
	shards := make([]int, 0, c.Config().NumShards)
	for s := 0; s < c.Config().NumShards; s++ {
		shards = append(shards, s)
	}

	// Cold parallel wave.
	got, _, err := fe.loadShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh frontend, sequential loads.
	fe2 := NewFrontend(c, c.Peers[2])
	want := make(map[int]*index.Segment, len(shards))
	for _, s := range shards {
		seg, _, err := fe2.loadShard(s)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = seg
	}
	if len(got) != len(want) {
		t.Fatalf("parallel loaded %d shards, sequential %d", len(got), len(want))
	}
	for s := range want {
		g, w := got[s].TermsSorted(), want[s].TermsSorted()
		if len(g) != len(w) {
			t.Fatalf("shard %d: %d terms parallel vs %d sequential", s, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("shard %d term %d: %q vs %q", s, i, g[i], w[i])
			}
		}
	}
}
