package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/netsim"
)

// FrontendPool is the serving tier: N stateless frontends, each attached
// to its own DWeb peer with its own independent caches, behind one
// deterministic balancer. The paper's "HTML+Javascript frontend" is a
// per-device artifact — scaling reads means scaling frontends — and the
// pool models exactly that: every query is routed to one frontend, whose
// simulated serving time accumulates as that frontend's load.
//
// Balancing is least-loaded and deterministic: the next query goes to
// the frontend with the fewest in-flight queries, ties broken by the
// least accumulated simulated serving time, remaining ties by a
// round-robin cursor. A sequential driver (in-flight always zero)
// therefore gets a reproducible least-simulated-load schedule — same
// seed, same assignment sequence — while concurrent drivers still spread
// load. Query *results* are frontend-independent (every frontend reads
// the same DHT state), so responses are byte-identical across pool sizes
// and balancing schedules; only simulated costs shift with the links
// used.
//
// With hedged reads enabled (size ≥ 2), each frontend duplicates the
// slowest shard fetch of a query's wave on its buddy frontend: first
// reply wins the latency, both replies pay bytes and messages, and a
// fetch that failed on the primary can be rescued by the hedge — the
// classic tail-tolerance trade documented in docs/serving.md.
type FrontendPool struct {
	cluster *Cluster
	fronts  []*Frontend
	hedged  bool

	// defaultDeadline applies to queries that carry none of their own.
	defaultDeadline time.Duration

	mu       sync.Mutex
	inflight []int
	busy     []time.Duration // accumulated simulated serving time
	served   []int64
	rr       int // round-robin cursor for full ties

	deadlineMisses int64
}

// NewFrontendPool builds a pool of size frontends over the cluster's
// peers (frontend i attaches to peer i mod NumPeers). Size is clamped to
// at least 1. Hedged reads require at least two frontends; a size-1
// hedged pool silently runs unhedged (there is no second device to
// duplicate onto).
func NewFrontendPool(c *Cluster, size int, hedged bool, defaultDeadline time.Duration) *FrontendPool {
	if size < 1 {
		size = 1
	}
	p := &FrontendPool{
		cluster:         c,
		hedged:          hedged && size > 1,
		defaultDeadline: defaultDeadline,
		inflight:        make([]int, size),
		busy:            make([]time.Duration, size),
		served:          make([]int64, size),
	}
	for i := 0; i < size; i++ {
		p.fronts = append(p.fronts, NewFrontend(c, c.Peers[i%len(c.Peers)]))
	}
	if p.hedged {
		for i, f := range p.fronts {
			buddy := (i + 1) % size
			f.hedge = p.fronts[buddy]
			f.hedgeBill = func(d time.Duration) {
				p.mu.Lock()
				p.busy[buddy] += d
				p.mu.Unlock()
			}
		}
	}
	return p
}

// Size returns the number of frontends in the pool.
func (p *FrontendPool) Size() int { return len(p.fronts) }

// Hedged reports whether shard fetches are hedged across frontends.
func (p *FrontendPool) Hedged() bool { return p.hedged }

// Frontend returns the i-th frontend (experiment harnesses, Fetch).
func (p *FrontendPool) Frontend(i int) *Frontend { return p.fronts[i] }

// acquire routes the next query: fewest in-flight, then least simulated
// busy time, then the round-robin cursor. Scanning starts at the cursor
// so full ties rotate through the pool instead of pinning frontend 0.
func (p *FrontendPool) acquire() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := -1
	for off := 0; off < len(p.fronts); off++ {
		i := (p.rr + off) % len(p.fronts)
		switch {
		case best < 0,
			p.inflight[i] < p.inflight[best],
			p.inflight[i] == p.inflight[best] && p.busy[i] < p.busy[best]:
			best = i
		}
	}
	p.rr = (best + 1) % len(p.fronts)
	p.inflight[best]++
	return best
}

// release books a finished query against its frontend's load.
func (p *FrontendPool) release(i int, cost netsim.Cost, deadlineMiss bool) {
	p.mu.Lock()
	p.inflight[i]--
	p.busy[i] += cost.Latency
	p.served[i]++
	if deadlineMiss {
		p.deadlineMisses++
	}
	p.mu.Unlock()
}

// Execute routes one structured query through the pool.
func (p *FrontendPool) Execute(q Query) (SearchResponse, error) {
	return p.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx routes one structured query through the pool with a request
// lifecycle. Queries without their own Deadline inherit the pool's
// default; misses (ErrDeadlineExceeded) are counted in Stats.
func (p *FrontendPool) ExecuteCtx(ctx context.Context, q Query) (SearchResponse, error) {
	if q.Deadline == 0 {
		q.Deadline = p.defaultDeadline
	}
	i := p.acquire()
	resp, err := p.fronts[i].ExecuteCtx(ctx, q)
	// A miss is a missed DEADLINE — simulated or the context's own. A
	// plain cancellation (client disconnect) also surfaces as
	// ErrDeadlineExceeded but is network churn, not a serving-latency
	// signal, so it stays out of the miss counter.
	miss := errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, context.Canceled)
	p.release(i, resp.Cost, miss)
	return resp, err
}

// FrontendLoad is one frontend's serving counters.
type FrontendLoad struct {
	Served   int64
	InFlight int
	// BusySim is the frontend's accumulated simulated serving time — the
	// pool's makespan is the maximum across frontends, and the pool's
	// simulated speedup is the summed busy time over that maximum.
	BusySim time.Duration
	// Hedges counts shard fetches this frontend duplicated onto its
	// buddy.
	Hedges int64
	Cache  CacheStats
}

// PoolStats is a point-in-time snapshot of the serving tier.
type PoolStats struct {
	Size           int
	Hedged         bool
	DeadlineMisses int64
	Frontends      []FrontendLoad
}

// Stats snapshots per-frontend load counters and cache occupancy.
func (p *FrontendPool) Stats() PoolStats {
	p.mu.Lock()
	st := PoolStats{
		Size:           len(p.fronts),
		Hedged:         p.hedged,
		DeadlineMisses: p.deadlineMisses,
		Frontends:      make([]FrontendLoad, len(p.fronts)),
	}
	for i := range p.fronts {
		st.Frontends[i] = FrontendLoad{
			Served:   p.served[i],
			InFlight: p.inflight[i],
			BusySim:  p.busy[i],
		}
	}
	p.mu.Unlock()
	// Cache and hedge counters live on the frontends; read them outside
	// the pool lock (they have their own synchronization).
	for i, f := range p.fronts {
		st.Frontends[i].Hedges = f.hedges.Load()
		st.Frontends[i].Cache = f.CacheStatsSnapshot()
	}
	return st
}

// CacheStatsSnapshot aggregates cache occupancy and traffic across every
// frontend in the pool: bytes, entries, budgets and counters are summed
// (the budget is the total memory the serving tier may hold).
func (p *FrontendPool) CacheStatsSnapshot() CacheStats {
	var out CacheStats
	for _, f := range p.fronts {
		out.Add(f.CacheStatsSnapshot())
	}
	return out
}
