package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/netsim"
)

// soakRounds bounds how many maintenance rounds the storm gets to heal.
const soakRounds = 4

// runChurnSoak executes one scripted churn storm — 50% of the peers
// crash at the first post-attach seal — then drives rounds of
// maintenance, measuring marker completeness before and after each
// repair pass. It returns a textual signature of everything observable
// (per-round hits, degraded flags, final repair counters) so reruns can
// be compared byte-for-byte.
func runChurnSoak(t *testing.T) string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.NumPeers = 24
	cfg.NumBees = 3
	cfg.Maintenance = false // driven explicitly below, between measurements
	cfg.DegradedReads = true
	// Sequential rounds: parallel write waves leave byte-identical DHT
	// state but can reorder same-link messages, shifting the per-link RNG
	// positions the lossy episode later draws from. With drops in play,
	// outcomes (not just costs) depend on those positions, so the soak
	// pins the single-threaded driver to stay byte-for-byte reproducible.
	cfg.ParallelRounds = false
	c := NewCluster(cfg)

	alice := c.NewAccount("alice", 10_000)
	c.Seal()
	var markers []string
	for i := 0; i < 10; i++ {
		marker := fmt.Sprintf("churnmarker%02d", i)
		markers = append(markers, marker)
		if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], fmt.Sprintf("dweb://churn/%d", i),
			"stable document body "+marker, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Seal()
	c.RunUntilIdle(8)

	scope := make([]netsim.NodeID, 0, len(c.Peers))
	for _, p := range c.Peers {
		scope = append(scope, p.Addr())
	}
	// The storm: 50% of the peers crash, and the survivors' links turn
	// lossy for two rounds (churn in the wild is departures plus the
	// congestion they cause). The crash alone cannot blind the index —
	// K=8 replication plus retry and lookup widening keep every record
	// reachable with half the swarm gone — so the lossy episode is what
	// degrades round-0 completeness; the maintenance loops then rebuild
	// full replication, and the final rounds must be back at 100%.
	plan := &netsim.FaultPlan{
		Seed:  cfg.Seed,
		Scope: scope,
		Events: []netsim.FaultEvent{
			{At: 0, Kind: netsim.FaultCrash, Fraction: 0.5},
			{At: 0, Kind: netsim.FaultDropRate, Rate: 0.85},
			{At: 3 * cfg.BlockInterval, Kind: netsim.FaultDropRate, Rate: 0},
		},
	}
	c.SetFaultPlan(plan)

	var sig strings.Builder
	for round := 0; round < soakRounds; round++ {
		c.Seal() // round 0: the storm fires here
		// Measure through a fresh, cold frontend on a live bee so each
		// round's completeness reflects DHT state, not cache residue.
		fe := NewFrontend(c, c.Bees[round%len(c.Bees)].Peer)
		hits, degraded := 0, 0
		for _, m := range markers {
			resp, err := fe.Search(m, 5)
			if err == nil && len(resp.Results) > 0 {
				hits++
			}
			if err == nil && resp.Degraded != nil {
				degraded++
			}
		}
		fmt.Fprintf(&sig, "round=%d hits=%d/%d degraded=%d crashed=%d\n",
			round, hits, len(markers), degraded, len(plan.CrashedNodes()))
		c.RunMaintenance()
	}
	rs := c.RepairStats()
	fmt.Fprintf(&sig, "repair runs=%d probed=%d republished=%d reseeded=%d lost=%d reprovided=%d msgs=%d\n",
		rs.Runs, rs.ProbedKeys, rs.Republished, rs.Reseeded, rs.SegmentsLost, rs.Reprovided, rs.Cost.Msgs)
	return sig.String()
}

// TestChurnSoak is the tentpole proof: a scripted storm kills 50% of
// the peers mid-round; completeness degrades, the maintenance loops
// run, and completeness returns to 100% of the markers within a bounded
// number of rounds — and the whole trajectory is byte-identical across
// reruns (the CI -race job runs this with -count=2).
func TestChurnSoak(t *testing.T) {
	sig := runChurnSoak(t)
	t.Logf("soak signature:\n%s", sig)

	var hits []int
	var repaired bool
	for _, line := range strings.Split(strings.TrimSpace(sig), "\n") {
		var round, h, n, deg, crashed int
		if _, err := fmt.Sscanf(line, "round=%d hits=%d/%d degraded=%d crashed=%d",
			&round, &h, &n, &deg, &crashed); err == nil {
			hits = append(hits, h)
			if crashed != 12 {
				t.Errorf("round %d: crashed = %d, want 12 (50%% of 24)", round, crashed)
			}
			continue
		}
		var runs, probed, repub, reseed, lost, reprov, msgs int
		if _, err := fmt.Sscanf(line, "repair runs=%d probed=%d republished=%d reseeded=%d lost=%d reprovided=%d msgs=%d",
			&runs, &probed, &repub, &reseed, &lost, &reprov, &msgs); err == nil {
			if runs != soakRounds {
				t.Errorf("maintenance runs = %d, want %d", runs, soakRounds)
			}
			if repub+reseed == 0 {
				t.Error("maintenance repaired nothing (republished+reseeded == 0)")
			}
			if lost != 0 {
				t.Errorf("segments lost = %d, want 0 (replicas should survive a 50%% storm)", lost)
			}
			if msgs == 0 {
				t.Error("repair traffic = 0 msgs")
			}
			repaired = true
		}
	}
	if len(hits) != soakRounds || !repaired {
		t.Fatalf("malformed signature:\n%s", sig)
	}
	if hits[0] == 10 {
		t.Error("storm did not degrade completeness in round 0")
	}
	if last := hits[len(hits)-1]; last != 10 {
		t.Errorf("completeness not restored: final round hits = %d/10", last)
	}

	// Determinism: the same scripted storm must produce the same
	// trajectory, byte for byte.
	if sig2 := runChurnSoak(t); sig2 != sig {
		t.Fatalf("soak not deterministic:\n--- run 1:\n%s--- run 2:\n%s", sig, sig2)
	}
}

// TestDegradedReadsPartialAnswer exercises graceful degradation
// directly: with most peers partitioned away, a multi-shard OR query
// loses some wave legs but not all, and returns a partial answer
// carrying the typed warning instead of ErrShardUnavailable. Without
// DegradedReads the same wave must fail the old way — pinning that the
// option gates the behavior.
func TestDegradedReadsPartialAnswer(t *testing.T) {
	build := func(degraded bool) (*Cluster, []string) {
		cfg := DefaultConfig()
		cfg.Seed = 5
		cfg.NumPeers = 24
		cfg.NumBees = 3
		cfg.DegradedReads = degraded
		c := NewCluster(cfg)
		alice := c.NewAccount("alice", 10_000)
		c.Seal()
		var markers []string
		for i := 0; i < 10; i++ {
			m := fmt.Sprintf("degmarker%02d", i)
			markers = append(markers, m)
			if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], fmt.Sprintf("dweb://deg/%d", i),
				"degraded marker body "+m, nil); err != nil {
				t.Fatal(err)
			}
		}
		c.Seal()
		c.RunUntilIdle(8)
		// Cut off the whole peer swarm, leaving only the bees reachable:
		// shards whose records kept a replica on a bee still load, shards
		// whose replicas are all stranded far-side fail their wave leg
		// (fatal ErrPartitioned, no retries) — a genuinely mixed wave.
		groups := make(map[netsim.NodeID]int)
		for _, p := range c.Peers {
			groups[p.Addr()] = 1
		}
		c.Net.SetPartition(groups)
		return c, markers
	}

	c, markers := build(true)
	fe := NewFrontend(c, c.Bees[0].Peer)
	q := Query{Raw: strings.Join(markers, " "), Mode: PlanAny, Limit: 10, Explain: true}
	resp, err := fe.Execute(q)
	if err != nil {
		t.Fatalf("degraded query failed outright: %v", err)
	}
	d := resp.Degraded
	if d == nil {
		t.Fatal("no Degraded warning on a partially-failed wave")
	}
	if len(d.FailedShards) == 0 || d.Completeness <= 0 || d.Completeness >= 1 {
		t.Fatalf("malformed Degraded: %+v", d)
	}
	if d.Cause == "" {
		t.Fatal("Degraded.Cause empty")
	}
	if resp.Explain == nil {
		t.Fatal("Explain requested but missing on degraded answer")
	}
	if resp.Explain.Completeness != d.Completeness {
		t.Fatalf("Explain completeness %v != response %v", resp.Explain.Completeness, d.Completeness)
	}
	if len(resp.Explain.DegradedShards) != len(d.FailedShards) {
		t.Fatalf("Explain degraded shards %v != %v", resp.Explain.DegradedShards, d.FailedShards)
	}
	if len(resp.Results) == 0 {
		t.Fatal("degraded answer carried no results from the loaded shards")
	}

	// Same wave, option off: the old all-or-nothing contract.
	c2, markers2 := build(false)
	fe2 := NewFrontend(c2, c2.Bees[0].Peer)
	resp2, err := fe2.Execute(Query{Raw: strings.Join(markers2, " "), Mode: PlanAny, Limit: 10})
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("without DegradedReads: err = %v, want ErrShardUnavailable", err)
	}
	if resp2.Degraded != nil {
		t.Fatal("Degraded set on the non-degraded failure path")
	}
}

// TestMaintenanceRoundHook verifies Config.Maintenance wires the repair
// pass into the round engine, and that a healthy cluster's passes probe
// but do not republish.
func TestMaintenanceRoundHook(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Maintenance = true
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 10_000)
	c.Seal()
	if _, err := c.Publish(alice, c.Peers[0], "dweb://m/1", "maintenance hook body", nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	rounds := c.RunUntilIdle(8)
	rs := c.RepairStats()
	if rs.Runs != rounds {
		t.Fatalf("repair runs = %d, want one per round (%d)", rs.Runs, rounds)
	}
	if rs.ProbedKeys == 0 {
		t.Fatal("maintenance probed nothing")
	}
	if rs.SegmentsLost != 0 {
		t.Fatalf("healthy cluster lost %d segments", rs.SegmentsLost)
	}
}

// TestReadinessDegradesAndRecovers drives /readyz's cluster-level
// summary through a storm and a heal.
func TestReadinessDegradesAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.NumPeers = 24
	cfg.NumBees = 3
	c := NewCluster(cfg)
	alice := c.NewAccount("alice", 10_000)
	c.Seal()
	for i := 0; i < 10; i++ {
		if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], fmt.Sprintf("dweb://r/%d", i),
			fmt.Sprintf("readiness body %02d stable", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Seal()
	c.RunUntilIdle(8)

	if r := c.Readiness(); !r.Ready || r.ShardsOK != r.ShardsTotal {
		t.Fatalf("healthy cluster not ready: %+v", r)
	}
	failed := c.FailPeers(0.5)
	// Maintenance restores full replication; readiness follows.
	for i := 0; i < soakRounds; i++ {
		c.RunMaintenance()
	}
	if r := c.Readiness(); !r.Ready {
		t.Fatalf("cluster not ready after %d maintenance rounds: %+v", soakRounds, r)
	}
	c.HealPeers(failed)
	if r := c.Readiness(); !r.Ready {
		t.Fatalf("cluster not ready after heal: %+v", r)
	}
}

// TestFaultPlanAdvancesOnSeal pins the Seal → FaultPlan wiring: events
// fire at block boundaries using the cluster clock, relative to when
// the plan was attached.
func TestFaultPlanAdvancesOnSeal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPeers = 8
	c := NewCluster(cfg)
	victim := c.Peers[3].Addr()
	c.SetFaultPlan(&netsim.FaultPlan{Events: []netsim.FaultEvent{
		{At: 2 * cfg.BlockInterval, Kind: netsim.FaultCrash, Nodes: []netsim.NodeID{victim}},
		{At: 3 * cfg.BlockInterval, Kind: netsim.FaultRecover},
	}})
	c.Seal()
	if c.Net.IsDown(victim) {
		t.Fatal("crash fired a block early")
	}
	c.Seal()
	if !c.Net.IsDown(victim) {
		t.Fatal("crash did not fire at its block")
	}
	c.Seal()
	if c.Net.IsDown(victim) {
		t.Fatal("recover did not fire")
	}
	if !c.FaultPlan().Done() {
		t.Fatal("plan not done")
	}
}
