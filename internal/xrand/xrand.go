// Package xrand provides deterministic pseudo-randomness for the
// simulation: a splittable seeded generator plus the distributions the
// workload generators need (Zipf, exponential, weighted choice).
//
// All randomness in the repository flows from an RNG constructed here so
// that experiments are reproducible bit-for-bit given a seed.
package xrand

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RNG is a deterministic pseudo-random generator based on SplitMix64 /
// xoshiro256**. It is intentionally not safe for concurrent use: each
// simulated actor owns its own RNG (use Split to derive one per actor).
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via SplitMix64 expansion.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// NewNamed returns an RNG seeded from a base seed and a name, so that
// independent actors can derive uncorrelated streams deterministically.
func NewNamed(seed uint64, name string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	for _, b := range buf {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return New(h)
}

// Split derives a new independent RNG from this one. The parent advances.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	rotl := func(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: Intn with n=%d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Duration returns a uniform duration in [0, max). Units are preserved
// exactly; max must be positive.
func (r *RNG) DurationN(max int64) int64 {
	if max <= 0 {
		panic("xrand: DurationN with non-positive max")
	}
	return int64(r.Uint64() % uint64(max))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n). If k >= n
// it returns all n indices in random order.
func (r *RNG) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Partial Fisher–Yates.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		binary.LittleEndian.PutUint64(b[i:], r.Uint64())
	}
	if i < len(b) {
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], r.Uint64())
		copy(b[i:], tail[:len(b)-i])
	}
}

// Zipf draws integers in [0, n) with P(k) proportional to 1/(k+1)^s.
// It uses the inverse-CDF over a precomputed table, which is exact and
// deterministic (unlike rejection sampling, whose acceptance path length
// depends on the RNG stream).
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf constructs a Zipf distribution over n items with exponent s > 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: Zipf with n <= 0")
	}
	if s <= 0 {
		panic("xrand: Zipf with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws the next rank in [0, n), rank 0 being the most popular.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weighted selects an index with probability proportional to weights[i].
// All weights must be non-negative and at least one positive.
func (r *RNG) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: Weighted with zero total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
