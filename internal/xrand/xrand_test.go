package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestNewNamedStreamsIndependent(t *testing.T) {
	a := NewNamed(7, "alice")
	b := NewNamed(7, "bob")
	a2 := NewNamed(7, "alice")
	if a.Uint64() != a2.Uint64() {
		t.Fatal("NewNamed not deterministic for same name")
	}
	if NewNamed(7, "alice").Uint64() == b.Uint64() {
		t.Fatal("NewNamed streams for different names should differ")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(7)
	s := r.Sample(50, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d, want 10", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid sample: %v", s)
		}
		seen[v] = true
	}
}

func TestSampleKGreaterThanN(t *testing.T) {
	r := New(8)
	s := r.Sample(5, 10)
	if len(s) != 5 {
		t.Fatalf("len = %d, want 5", len(s))
	}
}

func TestZipfRankZeroMostPopular(t *testing.T) {
	r := New(9)
	z := NewZipf(r, 1.1, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Fatalf("Zipf counts not monotone-ish: c0=%d c10=%d c500=%d",
			counts[0], counts[10], counts[500])
	}
}

func TestZipfSkewRatio(t *testing.T) {
	r := New(10)
	z := NewZipf(r, 1.0, 100)
	counts := make([]int, 100)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// With s=1, P(0)/P(1) = 2. Allow generous slack.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("P(0)/P(1) = %v, want ~2", ratio)
	}
}

func TestWeighted(t *testing.T) {
	r := New(11)
	w := []float64{0, 1, 0, 3}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.Weighted(w)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight indices chosen: %v", counts)
	}
	ratio := float64(counts[3]) / float64(counts[1])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestBytesFill(t *testing.T) {
	r := New(12)
	for _, n := range []int{0, 1, 7, 8, 9, 31} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 8 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
				}
			}
			if allZero {
				t.Fatalf("Bytes(%d) produced all zeros", n)
			}
		}
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(14)
	sum, sumsq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal mean=%v var=%v, want 0/1", mean, variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(15)
	a := parent.Split()
	b := parent.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams should differ")
	}
}

// Property: Perm always returns a valid permutation.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Zipf draws always fall in [0, n).
func TestZipfRangeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := New(seed)
		z := NewZipf(r, 1.2, n)
		for i := 0; i < 100; i++ {
			if v := z.Next(); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
