package chain

import (
	"crypto/sha256"
	"errors"
)

// Merkle transaction commitments: every block commits to its transaction
// set with a binary Merkle root, and the chain can produce compact
// inclusion proofs. This is what lets a thin QueenBee frontend verify
// that a publish or payout really happened without replaying the chain —
// the "autonomously and securely governed" property made checkable.

// ErrProofFailed indicates an inclusion proof that does not verify.
var ErrProofFailed = errors.New("chain: merkle proof failed")

// merkleLeaf domain-separates leaves from interior nodes (second-preimage
// hardening, as in RFC 6962).
func merkleLeaf(h [32]byte) [32]byte {
	return sha256.Sum256(append([]byte{0x00}, h[:]...))
}

func merkleNode(l, r [32]byte) [32]byte {
	buf := make([]byte, 1, 65)
	buf[0] = 0x01
	buf = append(buf, l[:]...)
	buf = append(buf, r[:]...)
	return sha256.Sum256(buf)
}

// MerkleRoot computes the root over transaction hashes. An empty set has
// the zero root. Odd levels promote the last node unchanged.
func MerkleRoot(txHashes [][32]byte) [32]byte {
	if len(txHashes) == 0 {
		return [32]byte{}
	}
	level := make([][32]byte, len(txHashes))
	for i, h := range txHashes {
		level[i] = merkleLeaf(h)
	}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// ProofStep is one sibling on the audit path.
type ProofStep struct {
	Hash  [32]byte
	Right bool // sibling sits to the right of the running hash
}

// MerkleProof is the audit path from a transaction to a block's TxRoot.
type MerkleProof struct {
	TxHash [32]byte
	Steps  []ProofStep
}

// buildProof returns the audit path for index i of the hash set.
func buildProof(txHashes [][32]byte, i int) MerkleProof {
	proof := MerkleProof{TxHash: txHashes[i]}
	level := make([][32]byte, len(txHashes))
	for j, h := range txHashes {
		level[j] = merkleLeaf(h)
	}
	idx := i
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for j := 0; j < len(level); j += 2 {
			if j+1 < len(level) {
				if j == idx || j+1 == idx {
					if j == idx {
						proof.Steps = append(proof.Steps, ProofStep{Hash: level[j+1], Right: true})
					} else {
						proof.Steps = append(proof.Steps, ProofStep{Hash: level[j], Right: false})
					}
				}
				next = append(next, merkleNode(level[j], level[j+1]))
			} else {
				next = append(next, level[j])
			}
		}
		idx /= 2
		level = next
	}
	return proof
}

// Verify checks the proof against a root.
func (p MerkleProof) Verify(root [32]byte) error {
	h := merkleLeaf(p.TxHash)
	for _, s := range p.Steps {
		if s.Right {
			h = merkleNode(h, s.Hash)
		} else {
			h = merkleNode(s.Hash, h)
		}
	}
	if h != root {
		return ErrProofFailed
	}
	return nil
}

// TxProof produces an inclusion proof for a transaction in a sealed
// block, or an error if the transaction is unknown.
func (c *Chain) TxProof(txHash [32]byte) (MerkleProof, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.receipts[txHash]
	if !ok {
		return MerkleProof{}, 0, errors.New("chain: unknown transaction")
	}
	blk := c.blocks[r.Height]
	hashes := make([][32]byte, len(blk.Txs))
	idx := -1
	for i, tx := range blk.Txs {
		hashes[i] = tx.Hash()
		if hashes[i] == txHash {
			idx = i
		}
	}
	if idx < 0 {
		return MerkleProof{}, 0, errors.New("chain: transaction not in its block")
	}
	return buildProof(hashes, idx), r.Height, nil
}
