package chain

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randomHashes(rng *xrand.RNG, n int) [][32]byte {
	out := make([][32]byte, n)
	for i := range out {
		rng.Bytes(out[i][:])
	}
	return out
}

func TestMerkleRootEmpty(t *testing.T) {
	if MerkleRoot(nil) != ([32]byte{}) {
		t.Fatal("empty root should be zero")
	}
}

func TestMerkleRootSingle(t *testing.T) {
	h := randomHashes(xrand.New(1), 1)
	root := MerkleRoot(h)
	if root == ([32]byte{}) {
		t.Fatal("single root should not be zero")
	}
	// A single leaf's root is the leaf hash (domain-separated).
	if root != merkleLeaf(h[0]) {
		t.Fatal("single-tx root should equal its leaf hash")
	}
}

func TestMerkleRootChangesWithContent(t *testing.T) {
	rng := xrand.New(2)
	hashes := randomHashes(rng, 5)
	root := MerkleRoot(hashes)
	hashes[2][0] ^= 0xFF
	if MerkleRoot(hashes) == root {
		t.Fatal("modifying a tx must change the root")
	}
}

func TestMerkleRootOrderMatters(t *testing.T) {
	rng := xrand.New(3)
	hashes := randomHashes(rng, 4)
	root := MerkleRoot(hashes)
	hashes[0], hashes[1] = hashes[1], hashes[0]
	if MerkleRoot(hashes) == root {
		t.Fatal("reordering txs must change the root")
	}
}

func TestProofRoundTripAllIndexes(t *testing.T) {
	rng := xrand.New(4)
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		hashes := randomHashes(rng, n)
		root := MerkleRoot(hashes)
		for i := 0; i < n; i++ {
			proof := buildProof(hashes, i)
			if err := proof.Verify(root); err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
		}
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	rng := xrand.New(5)
	hashes := randomHashes(rng, 6)
	proof := buildProof(hashes, 2)
	var wrong [32]byte
	wrong[0] = 1
	if err := proof.Verify(wrong); !errors.Is(err, ErrProofFailed) {
		t.Fatalf("err = %v, want ErrProofFailed", err)
	}
}

func TestProofRejectsTamperedTx(t *testing.T) {
	rng := xrand.New(6)
	hashes := randomHashes(rng, 6)
	root := MerkleRoot(hashes)
	proof := buildProof(hashes, 3)
	proof.TxHash[0] ^= 0x01
	if err := proof.Verify(root); err == nil {
		t.Fatal("tampered tx hash should fail the proof")
	}
}

func TestProofProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, idxRaw uint8) bool {
		n := int(nRaw%20) + 1
		i := int(idxRaw) % n
		hashes := randomHashes(xrand.New(seed), n)
		root := MerkleRoot(hashes)
		return buildProof(hashes, i).Verify(root) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChainTxProof(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	bob := NewNamedAccount(1, "bob")
	c, _ := newTestChain(alice, bob)
	var txs []*Tx
	for i := uint64(0); i < 5; i++ {
		tx := NewTransfer(alice, i, bob.Address(), 10+i)
		txs = append(txs, tx)
		c.Submit(tx)
	}
	blk := c.Seal()

	for _, tx := range txs {
		proof, height, err := c.TxProof(tx.Hash())
		if err != nil {
			t.Fatal(err)
		}
		if height != blk.Height {
			t.Fatalf("height = %d, want %d", height, blk.Height)
		}
		if err := proof.Verify(blk.TxRoot); err != nil {
			t.Fatal(err)
		}
	}
	// Unknown tx.
	if _, _, err := c.TxProof([32]byte{9}); err == nil {
		t.Fatal("unknown tx should error")
	}
}

func TestTxRootInBlockHash(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	bob := NewNamedAccount(1, "bob")
	c, _ := newTestChain(alice, bob)
	c.Submit(NewTransfer(alice, 0, bob.Address(), 10))
	blk := c.Seal()
	if blk.TxRoot == ([32]byte{}) {
		t.Fatal("tx root missing")
	}
	// Tamper the root: integrity check must fail.
	blk.TxRoot[0] ^= 1
	if err := c.VerifyIntegrity(); err == nil {
		t.Fatal("tampered tx root should fail integrity")
	}
}
