package chain

import (
	"errors"
	"fmt"
	"sort"
)

// Ledger errors.
var (
	ErrInsufficientFunds = errors.New("chain: insufficient funds")
	ErrBadNonce          = errors.New("chain: bad nonce")
	ErrNotMinter         = errors.New("chain: contract lacks mint privilege")
)

// State is the honey ledger: balances, nonces and total supply. Mutations
// happen only through the chain's transaction application.
type State struct {
	balances map[Address]uint64
	nonces   map[Address]uint64
	supply   uint64
	burned   uint64
}

func newState() *State {
	return &State{
		balances: make(map[Address]uint64),
		nonces:   make(map[Address]uint64),
	}
}

// Balance returns an account's honey balance.
func (s *State) Balance(a Address) uint64 { return s.balances[a] }

// Nonce returns the next expected nonce for an account.
func (s *State) Nonce(a Address) uint64 { return s.nonces[a] }

// Supply returns total honey ever minted minus burned.
func (s *State) Supply() uint64 { return s.supply }

// Burned returns total honey destroyed (e.g. slashing burns).
func (s *State) Burned() uint64 { return s.burned }

// SumBalances returns the sum of all account balances. The conservation
// invariant is SumBalances() == Supply().
func (s *State) SumBalances() uint64 {
	var sum uint64
	for _, b := range s.balances {
		sum += b
	}
	return sum
}

// Accounts returns every address with a non-zero balance, sorted.
func (s *State) Accounts() []Address {
	out := make([]Address, 0, len(s.balances))
	for a, b := range s.balances {
		if b > 0 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// ledgerOp is one buffered mutation produced during contract execution.
// Ops are validated against a view that includes earlier buffered ops and
// applied atomically only if the whole transaction succeeds.
type ledgerOp struct {
	kind byte // 't' transfer, 'm' mint, 'b' burn
	from Address
	to   Address
	amt  uint64
}

// opBuffer accumulates ledger mutations for one transaction.
type opBuffer struct {
	state *State
	ops   []ledgerOp
	delta map[Address]int64
	mint  int64
	burn  int64
}

func newOpBuffer(s *State) *opBuffer {
	return &opBuffer{state: s, delta: make(map[Address]int64)}
}

// effective returns the balance of a as seen through buffered ops.
func (b *opBuffer) effective(a Address) uint64 {
	base := int64(b.state.balances[a]) + b.delta[a]
	if base < 0 {
		// Cannot happen if transfer validation is correct.
		panic(fmt.Sprintf("chain: negative effective balance for %s", a.Short()))
	}
	return uint64(base)
}

// transfer buffers a transfer, validating against the effective view.
func (b *opBuffer) transfer(from, to Address, amt uint64) error {
	if amt == 0 {
		return nil
	}
	if b.effective(from) < amt {
		return fmt.Errorf("%w: %s has %d, needs %d",
			ErrInsufficientFunds, from.Short(), b.effective(from), amt)
	}
	b.ops = append(b.ops, ledgerOp{kind: 't', from: from, to: to, amt: amt})
	b.delta[from] -= int64(amt)
	b.delta[to] += int64(amt)
	return nil
}

// mintTo buffers a mint.
func (b *opBuffer) mintTo(to Address, amt uint64) {
	if amt == 0 {
		return
	}
	b.ops = append(b.ops, ledgerOp{kind: 'm', to: to, amt: amt})
	b.delta[to] += int64(amt)
	b.mint += int64(amt)
}

// burnFrom buffers a burn, validating against the effective view.
func (b *opBuffer) burnFrom(from Address, amt uint64) error {
	if amt == 0 {
		return nil
	}
	if b.effective(from) < amt {
		return fmt.Errorf("%w: burn from %s", ErrInsufficientFunds, from.Short())
	}
	b.ops = append(b.ops, ledgerOp{kind: 'b', from: from, amt: amt})
	b.delta[from] -= int64(amt)
	b.burn += int64(amt)
	return nil
}

// commit applies all buffered ops to the state.
func (b *opBuffer) commit() {
	for _, op := range b.ops {
		switch op.kind {
		case 't':
			b.state.balances[op.from] -= op.amt
			b.state.balances[op.to] += op.amt
		case 'm':
			b.state.balances[op.to] += op.amt
			b.state.supply += op.amt
		case 'b':
			b.state.balances[op.from] -= op.amt
			b.state.supply -= op.amt
			b.state.burned += op.amt
		}
	}
	b.ops = nil
}
