package chain

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vclock"
	"repro/internal/xrand"
)

func newTestChain(accts ...*Account) (*Chain, *vclock.Clock) {
	clock := vclock.New(time.Time{})
	genesis := make(map[Address]uint64)
	for _, a := range accts {
		genesis[a.Address()] = 1000
	}
	return New(clock, genesis), clock
}

func TestGenesisAllocation(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	if got := c.State().Balance(alice.Address()); got != 1000 {
		t.Fatalf("genesis balance = %d, want 1000", got)
	}
	if c.State().Supply() != 1000 {
		t.Fatalf("supply = %d, want 1000", c.State().Supply())
	}
}

func TestTransfer(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	bob := NewNamedAccount(1, "bob")
	c, _ := newTestChain(alice, bob)

	if err := c.Submit(NewTransfer(alice, 0, bob.Address(), 300)); err != nil {
		t.Fatal(err)
	}
	blk := c.Seal()
	if len(blk.Txs) != 1 {
		t.Fatalf("block txs = %d, want 1", len(blk.Txs))
	}
	if got := c.State().Balance(alice.Address()); got != 700 {
		t.Fatalf("alice = %d, want 700", got)
	}
	if got := c.State().Balance(bob.Address()); got != 1300 {
		t.Fatalf("bob = %d, want 1300", got)
	}
}

func TestTransferInsufficientFunds(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	bob := NewNamedAccount(1, "bob")
	c, _ := newTestChain(alice, bob)

	tx := NewTransfer(alice, 0, bob.Address(), 5000)
	c.Submit(tx)
	c.Seal()
	r := c.Receipt(tx.Hash())
	if r == nil || r.OK {
		t.Fatalf("receipt = %+v, want failure", r)
	}
	if got := c.State().Balance(alice.Address()); got != 1000 {
		t.Fatalf("alice = %d, want unchanged 1000", got)
	}
}

func TestNonceEnforcement(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	bob := NewNamedAccount(1, "bob")
	c, _ := newTestChain(alice, bob)

	// Wrong nonce (1 instead of 0) must fail.
	bad := NewTransfer(alice, 1, bob.Address(), 10)
	c.Submit(bad)
	c.Seal()
	if r := c.Receipt(bad.Hash()); r.OK {
		t.Fatal("tx with future nonce should fail")
	}

	good := NewTransfer(alice, 0, bob.Address(), 10)
	c.Submit(good)
	c.Seal()
	if r := c.Receipt(good.Hash()); !r.OK {
		t.Fatalf("tx with correct nonce failed: %s", r.Err)
	}
}

func TestNonceAdvancesOnFailure(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	bob := NewNamedAccount(1, "bob")
	c, _ := newTestChain(alice, bob)

	fail := NewTransfer(alice, 0, bob.Address(), 99999)
	c.Submit(fail)
	c.Seal()
	if c.State().Nonce(alice.Address()) != 1 {
		t.Fatal("nonce should advance on failed tx")
	}
	// Replaying the same tx must now fail on nonce, not balance.
	c.Submit(fail)
	c.Seal()
	// Two receipts share a hash; the important part is no double spend:
	if got := c.State().Balance(alice.Address()); got != 1000 {
		t.Fatalf("alice = %d, want 1000", got)
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	mallory := NewNamedAccount(1, "mallory")
	c, _ := newTestChain(alice, mallory)

	// Mallory signs a transfer claiming to be from Alice.
	tx := &Tx{
		From:   alice.Address(),
		Nonce:  0,
		To:     mallory.Address(),
		Value:  500,
		PubKey: mallory.PublicKey(),
	}
	tx.Sig = mallory.Sign(tx.SigHash())
	if err := c.Submit(tx); !errors.Is(err, ErrTxRejected) {
		t.Fatalf("Submit = %v, want ErrTxRejected", err)
	}
}

func TestTamperedParamsRejected(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	tx := NewTransfer(alice, 0, alice.Address(), 5)
	tx.Value = 999 // tamper after signing
	if err := c.Submit(tx); !errors.Is(err, ErrTxRejected) {
		t.Fatalf("Submit tampered = %v, want ErrTxRejected", err)
	}
}

// testContract exercises the TxContext surface.
type testContract struct {
	callCount int
	failNext  bool
}

func (tc *testContract) Name() string { return "test" }

func (tc *testContract) Execute(ctx *TxContext, method string, params []byte) error {
	switch method {
	case "noop":
		tc.callCount++
		return nil
	case "fail-after-pay":
		// Buffered payment must be rolled back when the method fails.
		if err := ctx.PayFromEscrow(ctx.Sender, ctx.Value); err != nil {
			return err
		}
		return errors.New("deliberate failure")
	case "refund":
		return ctx.PayFromEscrow(ctx.Sender, ctx.Value)
	case "emit":
		ctx.Emit("tested", map[string]string{"k": "v"})
		return nil
	case "mint":
		return ctx.Mint(ctx.Sender, 50)
	case "burn":
		return ctx.BurnFromEscrow(ctx.Value)
	default:
		return errors.New("unknown method")
	}
}

func TestContractCallAndEscrow(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	tc := &testContract{}
	c.RegisterContract(tc, false)

	c.Submit(NewCall(alice, 0, "test", "noop", nil, 100))
	c.Seal()
	if tc.callCount != 1 {
		t.Fatal("contract not invoked")
	}
	if got := c.State().Balance(EscrowAddress("test")); got != 100 {
		t.Fatalf("escrow = %d, want 100", got)
	}
	if got := c.State().Balance(alice.Address()); got != 900 {
		t.Fatalf("alice = %d, want 900", got)
	}
}

func TestFailedContractCallRollsBack(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	c.RegisterContract(&testContract{}, false)

	tx := NewCall(alice, 0, "test", "fail-after-pay", nil, 100)
	c.Submit(tx)
	c.Seal()
	if r := c.Receipt(tx.Hash()); r.OK {
		t.Fatal("call should have failed")
	}
	if got := c.State().Balance(alice.Address()); got != 1000 {
		t.Fatalf("alice = %d, want full rollback to 1000", got)
	}
	if got := c.State().Balance(EscrowAddress("test")); got != 0 {
		t.Fatalf("escrow = %d, want 0", got)
	}
}

func TestContractRefund(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	c.RegisterContract(&testContract{}, false)
	c.Submit(NewCall(alice, 0, "test", "refund", nil, 250))
	c.Seal()
	if got := c.State().Balance(alice.Address()); got != 1000 {
		t.Fatalf("alice = %d, want 1000 after refund", got)
	}
}

func TestEventsEmittedOnlyOnSuccess(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	c.RegisterContract(&testContract{}, false)

	c.Submit(NewCall(alice, 0, "test", "emit", nil, 0))
	c.Submit(NewCall(alice, 1, "test", "fail-after-pay", nil, 10))
	c.Seal()

	events, height := c.EventsSince(0)
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	if events[0].Type != "tested" || events[0].Attrs["k"] != "v" {
		t.Fatalf("event = %+v", events[0])
	}
	if height != 1 {
		t.Fatalf("height = %d, want 1", height)
	}
}

// TestEventsForTx: two emitting calls in one block; each transaction's
// events carry its hash, and EventsFor slices them apart.
func TestEventsForTx(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	c.RegisterContract(&testContract{}, false)

	tx1 := NewCall(alice, 0, "test", "emit", nil, 0)
	tx2 := NewCall(alice, 1, "test", "emit", nil, 0)
	c.Submit(tx1)
	c.Submit(tx2)
	c.Seal()

	for _, tx := range []*Tx{tx1, tx2} {
		h := tx.Hash()
		evs := c.EventsFor(h)
		if len(evs) != 1 {
			t.Fatalf("EventsFor(%x) = %d events, want 1", h[:4], len(evs))
		}
		if evs[0].Tx != h || evs[0].Type != "tested" {
			t.Fatalf("event = %+v, want stamped with tx %x", evs[0], h[:4])
		}
	}
	if evs := c.EventsFor([32]byte{0xFF}); evs != nil {
		t.Fatalf("unknown tx hash returned events: %+v", evs)
	}
}

func TestMintPrivilege(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	c.RegisterContract(&testContract{}, false) // not a minter

	tx := NewCall(alice, 0, "test", "mint", nil, 0)
	c.Submit(tx)
	c.Seal()
	if r := c.Receipt(tx.Hash()); r.OK {
		t.Fatal("mint without privilege should fail")
	}

	c2, _ := newTestChain(alice)
	c2.RegisterContract(&testContract{}, true) // minter
	c2.Submit(NewCall(alice, 0, "test", "mint", nil, 0))
	c2.Seal()
	if got := c2.State().Balance(alice.Address()); got != 1050 {
		t.Fatalf("alice = %d, want 1050 after mint", got)
	}
	if c2.State().Supply() != 1050 {
		t.Fatalf("supply = %d, want 1050", c2.State().Supply())
	}
}

func TestBurnReducesSupply(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	c.RegisterContract(&testContract{}, false)
	c.Submit(NewCall(alice, 0, "test", "burn", nil, 200))
	c.Seal()
	if got := c.State().Supply(); got != 800 {
		t.Fatalf("supply = %d, want 800", got)
	}
	if got := c.State().Burned(); got != 200 {
		t.Fatalf("burned = %d, want 200", got)
	}
}

func TestConservationInvariant(t *testing.T) {
	rng := xrand.New(77)
	accts := make([]*Account, 6)
	for i := range accts {
		accts[i] = NewAccount(rng)
	}
	c, _ := newTestChain(accts...)
	c.RegisterContract(&testContract{}, true)

	nonces := make(map[Address]uint64)
	for round := 0; round < 30; round++ {
		from := accts[rng.Intn(len(accts))]
		to := accts[rng.Intn(len(accts))]
		n := nonces[from.Address()]
		nonces[from.Address()]++
		switch rng.Intn(4) {
		case 0:
			c.Submit(NewTransfer(from, n, to.Address(), uint64(rng.Intn(200))))
		case 1:
			c.Submit(NewCall(from, n, "test", "refund", nil, uint64(rng.Intn(100))))
		case 2:
			c.Submit(NewCall(from, n, "test", "mint", nil, 0))
		case 3:
			c.Submit(NewCall(from, n, "test", "burn", nil, uint64(rng.Intn(50))))
		}
		if round%5 == 4 {
			c.Seal()
		}
	}
	c.Seal()
	if got, want := c.State().SumBalances(), c.State().Supply(); got != want {
		t.Fatalf("conservation violated: balances %d != supply %d", got, want)
	}
}

func TestChainIntegrity(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	bob := NewNamedAccount(1, "bob")
	c, clock := newTestChain(alice, bob)
	for i := uint64(0); i < 3; i++ {
		c.Submit(NewTransfer(alice, i, bob.Address(), 1))
		clock.Advance(10 * time.Second)
		c.Seal()
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Tamper with a sealed block.
	blk := c.BlockAt(2)
	blk.Txs[0].Value = 999
	if err := c.VerifyIntegrity(); err == nil {
		t.Fatal("tampered chain should fail integrity check")
	}
}

func TestBlockLinks(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	c.Seal()
	c.Seal()
	b1, b2 := c.BlockAt(1), c.BlockAt(2)
	if b2.PrevHash != b1.Hash {
		t.Fatal("prev hash link broken")
	}
	if c.Height() != 2 {
		t.Fatalf("height = %d, want 2", c.Height())
	}
	if c.BlockAt(99) != nil {
		t.Fatal("missing block should be nil")
	}
}

func TestUnknownContract(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	tx := NewCall(alice, 0, "ghost", "boo", nil, 0)
	c.Submit(tx)
	c.Seal()
	r := c.Receipt(tx.Hash())
	if r.OK {
		t.Fatal("call to unknown contract should fail")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	type params struct {
		URL   string
		Count int
	}
	in := params{URL: "dweb://x", Count: 7}
	var out params
	if err := DecodeParams(EncodeParams(in), &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	var empty params
	if err := DecodeParams(nil, &empty); err != nil {
		t.Fatal(err)
	}
}

func TestAccountDeterminism(t *testing.T) {
	a1 := NewNamedAccount(9, "worker-1")
	a2 := NewNamedAccount(9, "worker-1")
	if a1.Address() != a2.Address() {
		t.Fatal("NewNamedAccount not deterministic")
	}
	if NewNamedAccount(9, "worker-2").Address() == a1.Address() {
		t.Fatal("different names should give different accounts")
	}
}

// Property: a sequence of valid transfers preserves supply.
func TestTransferConservationProperty(t *testing.T) {
	f := func(amounts []uint16) bool {
		alice := NewNamedAccount(3, "alice")
		bob := NewNamedAccount(3, "bob")
		c, _ := newTestChain(alice, bob)
		for i, raw := range amounts {
			if i >= 20 {
				break
			}
			c.Submit(NewTransfer(alice, uint64(i), bob.Address(), uint64(raw%500)))
		}
		c.Seal()
		return c.State().SumBalances() == c.State().Supply()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsSinceFiltersByHeight(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	c.RegisterContract(&testContract{}, false)
	c.Submit(NewCall(alice, 0, "test", "emit", nil, 0))
	c.Seal() // height 1
	c.Submit(NewCall(alice, 1, "test", "emit", nil, 0))
	c.Seal() // height 2

	all, h := c.EventsSince(0)
	if len(all) != 2 || h != 2 {
		t.Fatalf("events = %d height = %d", len(all), h)
	}
	later, _ := c.EventsSince(1)
	if len(later) != 1 || later[0].Height != 2 {
		t.Fatalf("filtered events = %+v", later)
	}
	none, _ := c.EventsSince(2)
	if len(none) != 0 {
		t.Fatalf("expected no events past height 2: %v", none)
	}
}

func TestReceiptUnknownTx(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	c, _ := newTestChain(alice)
	if c.Receipt([32]byte{1, 2, 3}) != nil {
		t.Fatal("unknown tx should have nil receipt")
	}
}

func TestPendingCount(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	bob := NewNamedAccount(1, "bob")
	c, _ := newTestChain(alice, bob)
	c.Submit(NewTransfer(alice, 0, bob.Address(), 1))
	c.Submit(NewTransfer(alice, 1, bob.Address(), 1))
	if c.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", c.PendingCount())
	}
	c.Seal()
	if c.PendingCount() != 0 {
		t.Fatal("seal should drain the pool")
	}
}

func TestTxWireSizePositive(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	tx := NewCall(alice, 0, "queenbee", "publish", map[string]string{"URL": "u"}, 0)
	if tx.WireSize() < 100 {
		t.Fatalf("wire size = %d, implausibly small", tx.WireSize())
	}
}

func TestAccountsSorted(t *testing.T) {
	alice := NewNamedAccount(1, "alice")
	bob := NewNamedAccount(1, "bob")
	c, _ := newTestChain(alice, bob)
	accts := c.State().Accounts()
	if len(accts) != 2 {
		t.Fatalf("accounts = %d, want 2", len(accts))
	}
	if !(accts[0].String() < accts[1].String()) {
		t.Fatal("accounts not sorted")
	}
}
