package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Chain errors.
var (
	ErrUnknownContract = errors.New("chain: unknown contract")
	ErrTxRejected      = errors.New("chain: transaction rejected")
)

// Contract is the interface business logic implements. Execute must follow
// check-then-act: validate everything before mutating contract state, and
// perform all ledger movement through the TxContext (which buffers until
// the whole call succeeds).
type Contract interface {
	// Name is the registration key transactions address.
	Name() string
	// Execute runs one method invocation.
	Execute(ctx *TxContext, method string, params []byte) error
}

// Event is one log entry a contract emitted. Worker bees and frontends
// poll events to learn about publishes, task assignments and payouts.
type Event struct {
	Height uint64
	// Tx is the hash of the transaction that emitted the event — the
	// deterministic link from a submitted call to its outputs (e.g. the
	// campaign ID RegisterAd assigns).
	Tx       [32]byte
	Contract string
	Type     string
	Attrs    map[string]string
}

// Block is one sealed batch of transactions.
type Block struct {
	Height   uint64
	PrevHash [32]byte
	TxRoot   [32]byte // Merkle root over transaction hashes
	Time     time.Time
	Txs      []*Tx
	Hash     [32]byte
}

func (b *Block) computeTxRoot() [32]byte {
	hashes := make([][32]byte, len(b.Txs))
	for i, tx := range b.Txs {
		hashes[i] = tx.Hash()
	}
	return MerkleRoot(hashes)
}

func (b *Block) computeHash() [32]byte {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], b.Height)
	h.Write(buf[:])
	h.Write(b.PrevHash[:])
	h.Write(b.TxRoot[:])
	binary.BigEndian.PutUint64(buf[:], uint64(b.Time.UnixNano()))
	h.Write(buf[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Receipt reports the outcome of one transaction in a sealed block.
type Receipt struct {
	TxHash [32]byte
	Height uint64
	OK     bool
	Err    string
}

// Chain is the proof-of-authority blockchain: a single deterministic
// sealer (the simulation driver) orders transactions into blocks. Safe
// for concurrent use.
type Chain struct {
	mu        sync.Mutex
	clock     *vclock.Clock
	state     *State
	contracts map[string]Contract
	minters   map[string]bool
	blocks    []*Block
	pending   []*Tx
	events    []Event
	receipts  map[[32]byte]*Receipt
}

// New creates a chain with a genesis block and the given initial
// allocations (minted supply).
func New(clock *vclock.Clock, genesis map[Address]uint64) *Chain {
	c := &Chain{
		clock:     clock,
		state:     newState(),
		contracts: make(map[string]Contract),
		minters:   make(map[string]bool),
		receipts:  make(map[[32]byte]*Receipt),
	}
	for a, amt := range genesis {
		c.state.balances[a] += amt
		c.state.supply += amt
	}
	gen := &Block{Height: 0, Time: clock.Now()}
	gen.Hash = gen.computeHash()
	c.blocks = append(c.blocks, gen)
	return c
}

// RegisterContract installs a contract. Minter contracts may create new
// honey (the paper's publish/popularity rewards are minted).
func (c *Chain) RegisterContract(ct Contract, minter bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.contracts[ct.Name()] = ct
	c.minters[ct.Name()] = minter
}

// Submit queues a transaction after stateless verification (signature and
// address binding). Nonce and funds are checked at seal time.
func (c *Chain) Submit(tx *Tx) error {
	if err := tx.Verify(); err != nil {
		return fmt.Errorf("%w: %v", ErrTxRejected, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = append(c.pending, tx)
	return nil
}

// PendingCount returns the number of queued transactions.
func (c *Chain) PendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Seal orders all pending transactions into a new block, applying each in
// submission order. Failed transactions are included with a failure
// receipt but leave no state change. Returns the sealed block.
func (c *Chain) Seal() *Block {
	c.mu.Lock()
	defer c.mu.Unlock()

	prev := c.blocks[len(c.blocks)-1]
	blk := &Block{
		Height:   prev.Height + 1,
		PrevHash: prev.Hash,
		Time:     c.clock.Now(),
		Txs:      c.pending,
	}
	blk.TxRoot = blk.computeTxRoot()
	c.pending = nil

	for _, tx := range blk.Txs {
		err := c.applyLocked(tx, blk.Height)
		r := &Receipt{TxHash: tx.Hash(), Height: blk.Height, OK: err == nil}
		if err != nil {
			r.Err = err.Error()
		}
		c.receipts[tx.Hash()] = r
	}
	blk.Hash = blk.computeHash()
	c.blocks = append(c.blocks, blk)
	return blk
}

// applyLocked executes one transaction against the state. Caller holds mu.
func (c *Chain) applyLocked(tx *Tx, height uint64) error {
	if c.state.nonces[tx.From] != tx.Nonce {
		return fmt.Errorf("%w: have %d, tx %d", ErrBadNonce, c.state.nonces[tx.From], tx.Nonce)
	}
	// Nonce advances even for failed transactions (as in Ethereum) so a
	// failed call cannot be replayed.
	c.state.nonces[tx.From]++

	buf := newOpBuffer(c.state)
	if tx.Contract == "" {
		if err := buf.transfer(tx.From, tx.To, tx.Value); err != nil {
			return err
		}
		buf.commit()
		return nil
	}

	ct, ok := c.contracts[tx.Contract]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownContract, tx.Contract)
	}
	escrow := EscrowAddress(tx.Contract)
	if err := buf.transfer(tx.From, escrow, tx.Value); err != nil {
		return err
	}
	ctx := &TxContext{
		chain:    c,
		buf:      buf,
		Sender:   tx.From,
		Value:    tx.Value,
		Height:   height,
		Contract: tx.Contract,
		escrow:   escrow,
		isMinter: c.minters[tx.Contract],
	}
	if err := ct.Execute(ctx, tx.Method, tx.Params); err != nil {
		return err
	}
	buf.commit()
	if len(ctx.pendingEvents) > 0 {
		txHash := tx.Hash()
		for i := range ctx.pendingEvents {
			ctx.pendingEvents[i].Tx = txHash
		}
		c.events = append(c.events, ctx.pendingEvents...)
	}
	return nil
}

// Height returns the latest block height.
func (c *Chain) Height() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[len(c.blocks)-1].Height
}

// BlockAt returns the block at a height, or nil.
func (c *Chain) BlockAt(h uint64) *Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h >= uint64(len(c.blocks)) {
		return nil
	}
	return c.blocks[h]
}

// Receipt returns the receipt for a transaction hash, or nil if unknown.
func (c *Chain) Receipt(txHash [32]byte) *Receipt {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.receipts[txHash]
}

// State returns a read-only view of the ledger. Callers must not mutate.
func (c *Chain) State() *State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// EventsSince returns all events from blocks with height > h, plus the
// current height. Pollers pass their last seen height.
func (c *Chain) EventsSince(h uint64) ([]Event, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if e.Height > h {
			out = append(out, e)
		}
	}
	return out, c.blocks[len(c.blocks)-1].Height
}

// EventsFor returns the events one transaction emitted, in emission
// order — the way to read a contract call's outputs without scanning
// shared state that later transactions may have moved on.
func (c *Chain) EventsFor(txHash [32]byte) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A transaction executes once, so its events sit in one contiguous
	// batch — and callers almost always ask about a transaction they
	// just sealed, so scan from the tail and stop at the batch.
	end := -1
	for i := len(c.events) - 1; i >= 0; i-- {
		if c.events[i].Tx == txHash {
			end = i + 1
			break
		}
	}
	if end < 0 {
		return nil
	}
	start := end - 1
	for start > 0 && c.events[start-1].Tx == txHash {
		start--
	}
	return append([]Event(nil), c.events[start:end]...)
}

// Events returns every event (test helper).
func (c *Chain) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// VerifyIntegrity rechecks the hash chain and every signature. It returns
// an error describing the first violation found, demonstrating the
// tamper-evidence of the ledger.
func (c *Chain) VerifyIntegrity() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, blk := range c.blocks {
		if blk.computeTxRoot() != blk.TxRoot {
			return fmt.Errorf("chain: block %d tx-root mismatch", blk.Height)
		}
		if blk.computeHash() != blk.Hash {
			return fmt.Errorf("chain: block %d hash mismatch", blk.Height)
		}
		if i > 0 && blk.PrevHash != c.blocks[i-1].Hash {
			return fmt.Errorf("chain: block %d prev-hash mismatch", blk.Height)
		}
		for _, tx := range blk.Txs {
			if err := tx.Verify(); err != nil {
				return fmt.Errorf("chain: block %d: %w", blk.Height, err)
			}
		}
	}
	return nil
}

// TxContext is the capability surface a contract sees during Execute.
// Ledger mutations buffer until the call completes successfully.
type TxContext struct {
	chain    *Chain
	buf      *opBuffer
	escrow   Address
	isMinter bool

	// Sender is the externally owned account that signed the transaction.
	Sender Address
	// Value is the honey attached to the call (already moved to escrow).
	Value uint64
	// Height is the block being sealed.
	Height uint64
	// Contract is the executing contract's name.
	Contract string

	pendingEvents []Event
}

// Escrow returns the contract's escrow address.
func (ctx *TxContext) Escrow() Address { return ctx.escrow }

// EscrowBalance returns the effective escrow balance including buffered
// operations in this call.
func (ctx *TxContext) EscrowBalance() uint64 { return ctx.buf.effective(ctx.escrow) }

// BalanceOf returns an account's effective balance.
func (ctx *TxContext) BalanceOf(a Address) uint64 { return ctx.buf.effective(a) }

// PayFromEscrow moves honey from the contract's escrow to an account.
func (ctx *TxContext) PayFromEscrow(to Address, amt uint64) error {
	return ctx.buf.transfer(ctx.escrow, to, amt)
}

// Mint creates new honey. Only contracts registered as minters may mint.
func (ctx *TxContext) Mint(to Address, amt uint64) error {
	if !ctx.isMinter {
		return ErrNotMinter
	}
	ctx.buf.mintTo(to, amt)
	return nil
}

// BurnFromEscrow destroys honey held in escrow (e.g. slashed stakes).
func (ctx *TxContext) BurnFromEscrow(amt uint64) error {
	return ctx.buf.burnFrom(ctx.escrow, amt)
}

// Emit records an event, published only if the call succeeds.
func (ctx *TxContext) Emit(eventType string, attrs map[string]string) {
	ctx.pendingEvents = append(ctx.pendingEvents, Event{
		Height:   ctx.Height,
		Contract: ctx.Contract,
		Type:     eventType,
		Attrs:    attrs,
	})
}
