package chain

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Tx is a signed transaction. A Tx either transfers honey (Contract == "")
// or invokes Method on a registered contract, optionally attaching Value
// honey that moves into the contract's escrow before execution.
type Tx struct {
	From     Address
	Nonce    uint64
	Contract string // "" for a plain transfer
	Method   string
	Params   []byte // JSON-encoded method parameters
	To       Address
	Value    uint64

	PubKey ed25519.PublicKey
	Sig    []byte
}

// WireSize approximates the transaction's on-wire size.
func (t *Tx) WireSize() int {
	return 20 + 8 + len(t.Contract) + len(t.Method) + len(t.Params) + 20 + 8 + 32 + 64
}

// SigHash returns the digest the sender signs: every field except the
// signature material, in a fixed order.
func (t *Tx) SigHash() []byte {
	h := sha256.New()
	h.Write(t.From[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], t.Nonce)
	h.Write(buf[:])
	h.Write([]byte(t.Contract))
	h.Write([]byte{0})
	h.Write([]byte(t.Method))
	h.Write([]byte{0})
	h.Write(t.Params)
	h.Write(t.To[:])
	binary.BigEndian.PutUint64(buf[:], t.Value)
	h.Write(buf[:])
	return h.Sum(nil)
}

// Hash returns the full transaction hash (including signature).
func (t *Tx) Hash() [32]byte {
	h := sha256.New()
	h.Write(t.SigHash())
	h.Write(t.Sig)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Verify checks the signature and address binding.
func (t *Tx) Verify() error {
	return verifySig(t.From, t.PubKey, t.SigHash(), t.Sig)
}

// EncodeParams marshals contract-method parameters. Parameters must be
// JSON-encodable structs with no map fields whose order could differ.
func EncodeParams(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("chain: encoding params: %v", err))
	}
	return b
}

// DecodeParams unmarshals contract-method parameters into out.
func DecodeParams(data []byte, out any) error {
	if len(data) == 0 {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("chain: decoding params: %w", err)
	}
	return nil
}

// NewTransfer builds and signs a plain honey transfer.
func NewTransfer(from *Account, nonce uint64, to Address, amount uint64) *Tx {
	tx := &Tx{
		From:   from.Address(),
		Nonce:  nonce,
		To:     to,
		Value:  amount,
		PubKey: from.PublicKey(),
	}
	tx.Sig = from.Sign(tx.SigHash())
	return tx
}

// NewCall builds and signs a contract invocation.
func NewCall(from *Account, nonce uint64, contract, method string, params any, value uint64) *Tx {
	tx := &Tx{
		From:     from.Address(),
		Nonce:    nonce,
		Contract: contract,
		Method:   method,
		Params:   EncodeParams(params),
		Value:    value,
		PubKey:   from.PublicKey(),
	}
	tx.Sig = from.Sign(tx.SigHash())
	return tx
}
