// Package chain implements the cryptocurrency substrate the paper assumes:
// an account-model blockchain with ed25519-signed transactions, a
// proof-of-authority sealer, a deterministic contract runtime, an event
// log, and the "honey" token ledger. It stands in for Ethereum: QueenBee
// needs autonomous, ordered, attributable state transitions plus a token,
// not EVM compatibility.
package chain

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/xrand"
)

// Address identifies an account: the truncated hash of its public key.
type Address [20]byte

// AddressOfPub derives the address of an ed25519 public key.
func AddressOfPub(pub ed25519.PublicKey) Address {
	sum := sha256.Sum256(pub)
	var a Address
	copy(a[:], sum[:20])
	return a
}

// String returns the hex form of the address.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// Short returns an 8-hex-digit prefix for logs.
func (a Address) Short() string { return hex.EncodeToString(a[:4]) }

// IsZero reports whether the address is unset.
func (a Address) IsZero() bool { return a == Address{} }

// EscrowAddress derives the internal account that holds a contract's
// escrowed funds. It has no private key, so funds can only move through
// contract execution.
func EscrowAddress(contract string) Address {
	sum := sha256.Sum256([]byte("escrow:" + contract))
	var a Address
	copy(a[:], sum[:20])
	return a
}

// Account is a keypair an actor uses to sign transactions.
type Account struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
	addr Address
}

// NewAccount creates an account with randomness drawn from rng, keeping
// key generation deterministic per seed.
func NewAccount(rng *xrand.RNG) *Account {
	seed := make([]byte, ed25519.SeedSize)
	rng.Bytes(seed)
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	return &Account{pub: pub, priv: priv, addr: AddressOfPub(pub)}
}

// NewNamedAccount derives an account deterministically from a base seed
// and a role name.
func NewNamedAccount(seed uint64, name string) *Account {
	return NewAccount(xrand.NewNamed(seed, "account:"+name))
}

// Address returns the account's address.
func (a *Account) Address() Address { return a.addr }

// PublicKey returns the account's public key.
func (a *Account) PublicKey() ed25519.PublicKey { return a.pub }

// Sign signs a digest.
func (a *Account) Sign(digest []byte) []byte {
	return ed25519.Sign(a.priv, digest)
}

// verifySig checks a signature over a digest and that the public key
// matches the claimed address.
func verifySig(addr Address, pub ed25519.PublicKey, digest, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("chain: bad public key size %d", len(pub))
	}
	if AddressOfPub(pub) != addr {
		return fmt.Errorf("chain: public key does not match address %s", addr.Short())
	}
	if !ed25519.Verify(pub, digest, sig) {
		return fmt.Errorf("chain: invalid signature for %s", addr.Short())
	}
	return nil
}
