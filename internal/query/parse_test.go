package query

import (
	"errors"
	"testing"
)

// TestQueryParseGolden pins the parsed AST for representative inputs.
// The expected strings are the canonical s-expression rendering, with
// terms already analyzed (stemmed): turbines→turbin, panels→panel, …
func TestQueryParseGolden(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"cats", "cat"},
		{"cats dogs", "(AND cat dog)"},
		{"cats AND dogs", "(AND cat dog)"},
		{"cats OR dogs", "(OR cat dog)"},
		{"cats OR dogs OR mice", "(OR cat dog mice)"},
		{`"red apples"`, `"red appl"`},
		{`"sunlight"`, "sunlight"}, // one-term phrase degrades to a term
		{"wind-turbine", "(AND wind turbin)"},
		{"(cats OR dogs) mice", "(AND (OR cat dog) mice)"},
		{"cats (dogs OR mice)", "(AND cat (OR dog mice))"},
		{"cats -dogs", "(AND cat (NOT dog))"},
		{"cats -dogs -mice", "(AND cat (NOT dog) (NOT mice))"},
		{`cats -"red apples"`, `(AND cat (NOT "red appl"))`},
		{"cats -(dogs OR mice)", "(AND cat (NOT (OR dog mice)))"},
		{"site:dweb://a/ cats", "(AND site:dweb://a/ cat)"},
		{"cats -site:dweb://a/", "(AND cat (NOT site:dweb://a/))"},
		{
			`solar "wind turbine" OR panels -nuclear site:dweb://energy/`,
			`(OR (AND solar "wind turbin") (AND panel (NOT nuclear) site:dweb://energy/))`,
		},
		// Stopwords drop out of the tree without changing its shape.
		{"the cats", "cat"},
		{"cats the dogs", "(AND cat dog)"},
		{"-the cats", "cat"}, // excluding a stopword excludes nothing
		{"the OR cats", "cat"},
		// Lowercase or/and are stopwords, not operators — flat queries
		// keep their historical meaning.
		{"cats or dogs", "(AND cat dog)"},
		{"cats and dogs", "(AND cat dog)"},
	}
	for _, tc := range cases {
		root, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", tc.in, err)
			continue
		}
		if got := root.String(); got != tc.want {
			t.Errorf("Parse(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestQueryParseMalformed(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{"", ErrEmptyQuery},
		{"   ", ErrEmptyQuery},
		{"the of and", ErrEmptyQuery},
		{"()", ErrEmptyQuery},
		{`"unterminated`, ErrBadSyntax},
		{"cats OR", ErrBadSyntax},
		{"OR cats", ErrBadSyntax},
		{"cats OR OR dogs", ErrBadSyntax},
		{"cats AND", ErrBadSyntax},
		{"AND cats", ErrBadSyntax},
		{"cats AND AND dogs", ErrBadSyntax},
		{"cats -", ErrBadSyntax},
		{"cats - dogs", ErrBadSyntax},
		{"(cats", ErrBadSyntax},
		{"cats)", ErrBadSyntax},
		{"site:", ErrBadSyntax},
		// Structurally valid but unexecutable: nothing positive to
		// intersect against.
		{"-cats", ErrBadSyntax},
		{"-cats -dogs", ErrBadSyntax},
		{"site:dweb://a/", ErrBadSyntax},
		{"cats OR -dogs", ErrBadSyntax},
		{"cats OR site:dweb://a/", ErrBadSyntax},
	}
	for _, tc := range cases {
		root, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) = %s, want error %v", tc.in, root, tc.want)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("Parse(%q) error = %v, want %v", tc.in, err, tc.want)
		}
	}
}

func TestQueryTermsCollection(t *testing.T) {
	root, err := Parse(`solar "wind turbine" -nuclear site:dweb://energy/ OR wind`)
	if err != nil {
		t.Fatal(err)
	}
	all, positive := Terms(root)
	wantAll := []string{"solar", "wind", "turbin", "nuclear"}
	wantPos := []string{"solar", "wind", "turbin"}
	if !eqStrings(all, wantAll) {
		t.Errorf("all terms = %v, want %v", all, wantAll)
	}
	if !eqStrings(positive, wantPos) {
		t.Errorf("positive terms = %v, want %v", positive, wantPos)
	}
	if !HasSite(root) {
		t.Error("HasSite = false, want true")
	}
	plain, err := Parse("cats dogs")
	if err != nil {
		t.Fatal(err)
	}
	if HasSite(plain) {
		t.Error("HasSite(plain) = true, want false")
	}
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
