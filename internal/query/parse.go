package query

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/index"
)

// Typed sentinel errors of the query surface. Callers match with
// errors.Is; the wrapped messages carry the specifics.
var (
	// ErrEmptyQuery means no searchable term survived analysis (empty
	// string, only stopwords, or only operators/filters).
	ErrEmptyQuery = errors.New("query: no searchable terms")
	// ErrBadSyntax means the query string does not parse or combines
	// operators in a way the planner cannot execute.
	ErrBadSyntax = errors.New("query: bad syntax")
)

type tokKind int

const (
	tEOF tokKind = iota
	tWord
	tPhrase
	tSite
	tNot
	tAnd
	tOr
	tLParen
	tRParen
)

type token struct {
	kind tokKind
	text string
}

func (t token) name() string {
	switch t.kind {
	case tEOF:
		return "end of query"
	case tWord:
		return fmt.Sprintf("%q", t.text)
	case tPhrase:
		return fmt.Sprintf("phrase %q", t.text)
	case tSite:
		return "site:" + t.text
	case tNot:
		return "'-'"
	case tAnd:
		return "AND"
	case tOr:
		return "OR"
	case tLParen:
		return "'('"
	default:
		return "')'"
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// lex splits a query string into tokens. Operator words (OR, AND) must
// be uppercase — lowercase "or"/"and" are stopwords and analyze away,
// which keeps old flat queries meaning what they always meant. A '-'
// negates only when it starts an atom; inside a word ("wind-turbine")
// it is ordinary punctuation for the analyzer.
func lex(s string) ([]token, error) {
	toks := make([]token, 0, 8)
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case isSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{kind: tLParen})
			i++
		case c == ')':
			toks = append(toks, token{kind: tRParen})
			i++
		case c == '"':
			end := strings.IndexByte(s[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("%w: unterminated quote", ErrBadSyntax)
			}
			toks = append(toks, token{kind: tPhrase, text: s[i+1 : i+1+end]})
			i += end + 2
		case c == '-':
			if i+1 >= len(s) || isSpace(s[i+1]) || s[i+1] == ')' {
				return nil, fmt.Errorf("%w: dangling '-'", ErrBadSyntax)
			}
			toks = append(toks, token{kind: tNot})
			i++
		default:
			j := i
			for j < len(s) && !isSpace(s[j]) && s[j] != '(' && s[j] != ')' && s[j] != '"' {
				j++
			}
			word := s[i:j]
			i = j
			switch {
			case word == "OR":
				toks = append(toks, token{kind: tOr})
			case word == "AND":
				toks = append(toks, token{kind: tAnd})
			case strings.HasPrefix(word, "site:"):
				prefix := word[len("site:"):]
				if prefix == "" {
					return nil, fmt.Errorf("%w: empty site: filter", ErrBadSyntax)
				}
				toks = append(toks, token{kind: tSite, text: prefix})
			default:
				toks = append(toks, token{kind: tWord, text: word})
			}
		}
	}
	return append(toks, token{kind: tEOF}), nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() tokKind { return p.toks[p.pos].kind }

func (p *parser) next() token {
	t := p.toks[p.pos]
	p.pos++
	return t
}

// Parse turns a query string into its AST root. Stopword-only atoms
// drop out silently; if nothing searchable remains the error is
// ErrEmptyQuery, and structural problems (unbalanced quotes or parens,
// dangling operators, exclusion-only conjunctions, site: filters
// without a positive term) return ErrBadSyntax.
func Parse(s string) (*Node, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek() != tEOF {
		return nil, fmt.Errorf("%w: unexpected %s", ErrBadSyntax, p.toks[p.pos].name())
	}
	if root == nil {
		return nil, fmt.Errorf("%w: %q", ErrEmptyQuery, s)
	}
	if err := validate(root, true); err != nil {
		return nil, err
	}
	return root, nil
}

func (p *parser) parseOr() (*Node, error) {
	first, consumed, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	var kids []*Node
	if first != nil {
		kids = append(kids, first)
	}
	for p.peek() == tOr {
		if !consumed {
			return nil, fmt.Errorf("%w: OR missing left operand", ErrBadSyntax)
		}
		p.next()
		right, rightConsumed, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if !rightConsumed {
			return nil, fmt.Errorf("%w: OR missing right operand", ErrBadSyntax)
		}
		if right != nil {
			kids = append(kids, right)
		}
	}
	switch len(kids) {
	case 0:
		return nil, nil
	case 1:
		return kids[0], nil
	}
	return &Node{Kind: KindOr, Kids: kids}, nil
}

// parseAnd parses a run of implicitly-ANDed unary atoms. consumed
// reports whether any atom was syntactically present: an atom that
// analyzes away (a stopword) yields a nil node but still counts, so
// "the OR cats" stays valid while a bare "OR cats" does not.
func (p *parser) parseAnd() (*Node, bool, error) {
	var kids []*Node
	consumed := false
	pendingAnd := false
	for {
		switch p.peek() {
		case tEOF, tOr, tRParen:
			if pendingAnd {
				return nil, false, fmt.Errorf("%w: dangling AND", ErrBadSyntax)
			}
			return andOf(kids), consumed, nil
		case tAnd:
			if !consumed || pendingAnd {
				return nil, false, fmt.Errorf("%w: misplaced AND", ErrBadSyntax)
			}
			pendingAnd = true
			p.next()
		default:
			n, err := p.parseUnary()
			if err != nil {
				return nil, false, err
			}
			consumed = true
			pendingAnd = false
			if n != nil {
				kids = append(kids, n)
			}
		}
	}
}

// andOf collapses a conjunction's kid list: nil for none, the single
// kid unwrapped, otherwise a flattened AND node (nested ANDs from
// parentheses or multi-term words fold in — same semantics, one level).
func andOf(kids []*Node) *Node {
	switch len(kids) {
	case 0:
		return nil
	case 1:
		return kids[0]
	}
	flat := make([]*Node, 0, len(kids))
	for _, k := range kids {
		if k.Kind == KindAnd {
			flat = append(flat, k.Kids...)
		} else {
			flat = append(flat, k)
		}
	}
	return &Node{Kind: KindAnd, Kids: flat}
}

func (p *parser) parseUnary() (*Node, error) {
	if p.peek() == tNot {
		p.next()
		n, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		if n == nil {
			return nil, nil // excluding a stopword excludes nothing
		}
		return &Node{Kind: KindNot, Kids: []*Node{n}}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (*Node, error) {
	tok := p.next()
	switch tok.kind {
	case tLParen:
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != tRParen {
			return nil, fmt.Errorf("%w: missing ')'", ErrBadSyntax)
		}
		p.next()
		return n, nil
	case tPhrase:
		return phraseNode(tok.text), nil
	case tSite:
		return &Node{Kind: KindSite, Prefix: tok.text}, nil
	case tWord:
		return wordNode(tok.text), nil
	default:
		return nil, fmt.Errorf("%w: unexpected %s", ErrBadSyntax, tok.name())
	}
}

// wordNode analyzes one bare word. Punctuation can split it into
// several terms ("wind-turbine" → wind, turbin) which conjoin, exactly
// as the flat AND mode always treated them.
func wordNode(word string) *Node {
	terms := index.AnalyzeQuery(word)
	switch len(terms) {
	case 0:
		return nil
	case 1:
		return &Node{Kind: KindTerm, Term: terms[0]}
	}
	kids := make([]*Node, len(terms))
	for i, t := range terms {
		kids[i] = &Node{Kind: KindTerm, Term: t}
	}
	return &Node{Kind: KindAnd, Kids: kids}
}

// phraseNode analyzes quoted text in order, keeping duplicates — the
// positional matcher needs the exact term sequence. A one-term phrase
// degrades to a plain term.
func phraseNode(text string) *Node {
	toks := index.Analyze(text)
	switch len(toks) {
	case 0:
		return nil
	case 1:
		return &Node{Kind: KindTerm, Term: toks[0].Term}
	}
	terms := make([]string, len(toks))
	for i, t := range toks {
		terms[i] = t.Term
	}
	return &Node{Kind: KindPhrase, Terms: terms}
}

// validate enforces the structural rules the planner needs: exclusions
// and site: filters only make sense as legs of a conjunction that also
// has at least one positive (term or phrase) leg — there is no way to
// enumerate "every document not matching X" from posting lists.
func validate(n *Node, top bool) error {
	switch n.Kind {
	case KindTerm, KindPhrase:
		return nil
	case KindSite:
		if top {
			return fmt.Errorf("%w: site: filter needs at least one search term", ErrBadSyntax)
		}
		return nil
	case KindNot:
		if top {
			return fmt.Errorf("%w: exclusion needs at least one positive term", ErrBadSyntax)
		}
		return validate(n.Kids[0], false)
	case KindAnd:
		positive := false
		for _, k := range n.Kids {
			if k.Kind != KindNot && k.Kind != KindSite {
				positive = true
			}
			if err := validate(k, false); err != nil {
				return err
			}
		}
		if !positive {
			return fmt.Errorf("%w: conjunction has only exclusions or filters", ErrBadSyntax)
		}
		return nil
	case KindOr:
		for _, k := range n.Kids {
			if k.Kind == KindNot {
				return fmt.Errorf("%w: OR operand cannot be an exclusion", ErrBadSyntax)
			}
			if k.Kind == KindSite {
				return fmt.Errorf("%w: OR operand cannot be a site: filter", ErrBadSyntax)
			}
			if err := validate(k, false); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown node kind %d", ErrBadSyntax, int(n.Kind))
	}
}
