// Package query implements QueenBee's structured query language: a
// lexer and recursive-descent parser that turn strings like
//
//	solar "wind turbine" OR panels -nuclear site:dweb://energy/
//
// into a small boolean AST (AND/OR/NOT, quoted phrases, site: prefix
// filters) that the frontend planner compiles into an execution plan.
//
// The package is deliberately pure: it depends only on the analyzer —
// so query terms stem exactly like document terms and the two sides can
// never disagree — and it never touches the network or the index.
//
// Grammar (OR binds loosest, juxtaposition is AND, '-' negates one atom):
//
//	query  := or
//	or     := and ( "OR" and )*
//	and    := unary+            — implicit AND; an explicit "AND" token
//	                              between atoms is accepted and ignored
//	unary  := "-" atom | atom
//	atom   := "(" or ")" | '"' words '"' | "site:" prefix | word
//
// Words are analyzed (lowercased, stop-filtered, stemmed) as they are
// parsed; a word that analyzes to nothing (a stopword) simply drops out
// of the tree. site: prefixes are kept verbatim — they filter result
// URLs, which are never analyzed.
package query

import "strings"

// Kind discriminates AST node types.
type Kind int

// AST node kinds.
const (
	// KindTerm matches documents containing one analyzed term.
	KindTerm Kind = iota
	// KindPhrase matches documents containing Terms at adjacent
	// positions, in order.
	KindPhrase
	// KindAnd intersects its children; KindNot and KindSite children
	// act as subtractive / filtering legs of the conjunction.
	KindAnd
	// KindOr unions its children.
	KindOr
	// KindNot excludes its single child's matches. Valid only as a
	// direct child of a conjunction that has at least one positive leg.
	KindNot
	// KindSite keeps only results whose URL starts with Prefix. Valid
	// only inside a conjunction (possibly under a KindNot).
	KindSite
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTerm:
		return "term"
	case KindPhrase:
		return "phrase"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	case KindNot:
		return "not"
	case KindSite:
		return "site"
	default:
		return "unknown"
	}
}

// Node is one vertex of the boolean query AST.
type Node struct {
	Kind   Kind
	Term   string   // KindTerm: the analyzed term
	Terms  []string // KindPhrase: analyzed terms in phrase order
	Prefix string   // KindSite: verbatim URL prefix
	Kids   []*Node  // KindAnd, KindOr (≥2), KindNot (exactly 1)
}

// String renders the tree as a canonical s-expression — the stable form
// the golden parser tests compare against.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	switch n.Kind {
	case KindTerm:
		b.WriteString(n.Term)
	case KindPhrase:
		b.WriteByte('"')
		b.WriteString(strings.Join(n.Terms, " "))
		b.WriteByte('"')
	case KindSite:
		b.WriteString("site:")
		b.WriteString(n.Prefix)
	case KindNot:
		b.WriteString("(NOT ")
		n.Kids[0].write(b)
		b.WriteByte(')')
	case KindAnd, KindOr:
		if n.Kind == KindAnd {
			b.WriteString("(AND")
		} else {
			b.WriteString("(OR")
		}
		for _, k := range n.Kids {
			b.WriteByte(' ')
			k.write(b)
		}
		b.WriteByte(')')
	}
}

// Terms returns the distinct analyzed terms of the tree in depth-first
// first-appearance order: all of them (these decide which index shards
// to load), and the positive subset — terms not under an exclusion —
// which drive scoring, ad matching and snippet highlighting.
func Terms(root *Node) (all, positive []string) {
	seenAll := make(map[string]bool, 8)
	seenPos := make(map[string]bool, 8)
	var walk func(n *Node, neg bool)
	add := func(term string, neg bool) {
		if !seenAll[term] {
			seenAll[term] = true
			all = append(all, term)
		}
		if !neg && !seenPos[term] {
			seenPos[term] = true
			positive = append(positive, term)
		}
	}
	walk = func(n *Node, neg bool) {
		switch n.Kind {
		case KindTerm:
			add(n.Term, neg)
		case KindPhrase:
			for _, t := range n.Terms {
				add(t, neg)
			}
		case KindNot:
			walk(n.Kids[0], true)
		case KindAnd, KindOr:
			for _, k := range n.Kids {
				walk(k, neg)
			}
		}
	}
	walk(root, false)
	return all, positive
}

// HasSite reports whether the tree contains a site: filter anywhere —
// the executor resolves DocID→URL up front only when it does.
func HasSite(root *Node) bool {
	switch root.Kind {
	case KindSite:
		return true
	case KindNot, KindAnd, KindOr:
		for _, k := range root.Kids {
			if HasSite(k) {
				return true
			}
		}
	}
	return false
}
