package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/core")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go command: module
// packages resolve from Roots (import-path prefix → directory), everything
// else falls back to the standard library's source importer, so loading
// works offline with nothing but GOROOT sources.
//
// Test files (*_test.go) are deliberately excluded: detlint guards
// production code, and the determinism soaks themselves exercise test
// behavior at runtime.
type Loader struct {
	Fset *token.FileSet

	// Roots maps import-path prefixes to directories. The longest
	// matching prefix wins; the remainder of the path is joined onto the
	// directory. A typical configuration is {"repro": "/path/to/repo"}.
	Roots map[string]string

	pkgs map[string]*Package
	std  types.ImporterFrom
}

// NewLoader returns a Loader resolving the given import-path roots.
func NewLoader(roots map[string]string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{Fset: fset, Roots: roots, pkgs: make(map[string]*Package)}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// NewModuleLoader reads go.mod in dir and returns a Loader that resolves
// the module's own import path to dir.
func NewModuleLoader(dir string) (*Loader, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, "", err
	}
	modPath, err := modulePath(abs)
	if err != nil {
		return nil, "", err
	}
	return NewLoader(map[string]string{modPath: abs}), modPath, nil
}

// modulePath extracts the module path from dir/go.mod, walking up parent
// directories until one is found.
func modulePath(dir string) (string, error) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), nil
				}
			}
			return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolve maps an import path to a directory via Roots; ok is false when no
// root prefix matches (the path belongs to the standard library or an
// external module).
func (l *Loader) resolve(path string) (dir string, ok bool) {
	prefixes := make([]string, 0, len(l.Roots))
	for prefix := range l.Roots {
		prefixes = append(prefixes, prefix)
	}
	sort.Strings(prefixes)
	best := ""
	for _, prefix := range prefixes {
		if (path == prefix || strings.HasPrefix(path, prefix+"/")) && len(prefix) > len(best) {
			best = prefix
		}
	}
	if best == "" {
		return "", false
	}
	rest := strings.TrimPrefix(strings.TrimPrefix(path, best), "/")
	return filepath.Join(l.Roots[best], filepath.FromSlash(rest)), true
}

// Load parses and type-checks the package at the given import path,
// memoizing by path so shared dependencies are checked once.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return pkg, nil
	}
	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("analysis: import path %q matches no configured root", path)
	}
	l.pkgs[path] = nil // cycle guard
	pkg, err := l.loadDir(path, dir)
	if err != nil {
		delete(l.pkgs, path)
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadDir parses every non-test .go file in dir and type-checks the result.
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter adapts the Loader to types.Importer: module packages load
// through the Loader itself, everything else through the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if _, ok := l.resolve(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// PackageDirs walks root and returns the directories containing at least
// one non-test .go file, skipping testdata, hidden directories, and any
// directory whose name is in skip.
func PackageDirs(root string, skip ...string) ([]string, error) {
	skipSet := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	var dirs []string
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || skipSet[name]) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			if dir := filepath.Dir(p); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
