package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestDetlintCleanTree is the meta-test behind the CI lint job: the live
// repository, analyzed by the full detlint suite, must produce zero
// unsuppressed diagnostics. Any new order-sensitive map range, wall-clock
// read, math/rand draw, swallowed dht/store/chain error or dropped
// netsim.Cost fails this test before it can flake a soak.
func TestDetlintCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, modPath, err := analysis.NewModuleLoader(root)
	if err != nil {
		t.Fatalf("module loader: %v", err)
	}
	dirs, err := analysis.PackageDirs(root)
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(importPath)
		if err != nil {
			t.Fatalf("loading %s: %v", importPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	runner := &analysis.Runner{Analyzers: analysis.All()}
	res, err := runner.Run(pkgs)
	if err != nil {
		t.Fatalf("running detlint: %v", err)
	}
	for _, d := range res.Findings {
		pos := pkgs[0].Fset.Position(d.Pos)
		rel, _ := filepath.Rel(root, pos.Filename)
		t.Errorf("%s:%d: [%s] %s", rel, pos.Line, d.Analyzer, d.Message)
	}
	// Suppressions are allowed but accounted: the summary keeps the
	// count visible in every test log so it cannot silently grow.
	if !strings.Contains(res.Summary(), "suppressed") {
		t.Errorf("summary %q lost the suppression accounting", res.Summary())
	}
	t.Log(res.Summary())
}
