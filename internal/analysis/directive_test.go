package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDirectives drives the full Runner over the directives fixture:
// same-line and line-above suppressions must absorb their findings, while
// a reasonless directive, an unknown analyzer name and a stale (unused)
// directive must each surface as findings of the "directive"
// pseudo-analyzer.
func TestDirectives(t *testing.T) {
	loader := NewLoader(map[string]string{
		"directives": filepath.Join("testdata", "src", "directives"),
	})
	pkg, err := loader.Load("directives")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	runner := &Runner{Analyzers: All()}
	res, err := runner.Run([]*Package{pkg})
	if err != nil {
		t.Fatalf("running: %v", err)
	}

	if got, want := len(res.Suppressed), 2; got != want {
		t.Errorf("suppressed = %d, want %d: %+v", got, want, res.Suppressed)
	}
	if got := res.SuppressedByAnalyzer["wallclock"]; got != 2 {
		t.Errorf("suppressed wallclock = %d, want 2", got)
	}
	for _, d := range res.Suppressed {
		if !strings.Contains(d.SuppressReason, "fixture:") {
			t.Errorf("suppression lost its reason: %+v", d)
		}
	}

	var wallclock, directive int
	for _, d := range res.Findings {
		switch d.Analyzer {
		case "wallclock":
			wallclock++
		case "directive":
			directive++
		default:
			t.Errorf("unexpected finding: %+v", d)
		}
	}
	if wallclock != 1 {
		t.Errorf("unsuppressed wallclock findings = %d, want 1 (only the undirected time.Now)", wallclock)
	}
	// Missing reason, unknown analyzer, stale directive.
	if directive != 3 {
		t.Errorf("directive findings = %d, want 3: %+v", directive, res.Findings)
	}

	sum := res.Summary()
	for _, want := range []string{"1 packages", "4 findings", "2 suppressed", "wallclock=2"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}
