package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeObject resolves the object a call expression invokes: the function,
// method or builtin named by the callee. It returns nil for indirect calls
// through function values and for type conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.ObjectOf(fun)
	case *ast.SelectorExpr:
		return info.ObjectOf(fun.Sel)
	}
	return nil
}

// objectPkgPath returns the import path of the package that defines obj, or
// "" for builtins and universe-scope objects.
func objectPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// hasPathPrefix reports whether path equals prefix or sits below it
// (prefix "a/b" matches "a/b" and "a/b/c", never "a/bc").
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// matchesAny reports whether path matches any prefix in prefixes. A prefix
// ending in "/" is treated as a pure prefix (e.g. "repro/cmd/" matches
// every package under cmd); otherwise prefix matching is path-segment
// aware.
func matchesAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
			continue
		}
		if hasPathPrefix(path, p) {
			return true
		}
	}
	return false
}

// pkgQualifiedCall reports whether call invokes a package-level function of
// the package with the given import path (e.g. time.Now), returning the
// function name.
func pkgQualifiedCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	obj := calleeObject(info, call)
	if obj == nil {
		return "", ""
	}
	return objectPkgPath(obj), obj.Name()
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// isTypeName reports whether obj names a type.
func isTypeName(obj types.Object) bool {
	_, ok := obj.(*types.TypeName)
	return ok
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// namedTypeIs reports whether t (or the type it points to) is the named
// type pkgPath.name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && objectPkgPath(obj) == pkgPath
}

// walkWithParents traverses root like ast.Inspect while maintaining the
// ancestor chain; fn receives each node and its parents (innermost last).
func walkWithParents(root ast.Node, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children are skipped, so no matching nil pop arrives;
			// don't push.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
