// Package analysistest runs detlint analyzers over fixture packages and
// checks their diagnostics against // want comments, mirroring the
// x/tools analysistest convention:
//
//	rand.Intn(3) // want `draws from process-global state`
//
// Each want comment holds one or more Go-quoted regular expressions. A
// fixture line must produce exactly the diagnostics its want comment
// declares — extra diagnostics, missing diagnostics and unmatched patterns
// all fail the test. Fixture packages live in testdata/src/<path> and may
// import the repository's real packages (the enclosing module is resolved
// from go.mod), so analyzers are exercised against the true netsim/dht
// types rather than mocks.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the conventional testdata root below the caller's
// working directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package from testdata/src/<pkg>, applies the
// analyzer, and reports mismatches against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	roots := map[string]string{}
	// The enclosing module resolves first so fixtures can import the
	// real repro packages; fixture roots are registered after and win on
	// collision.
	if modDir, modPath, err := findModule(testdata); err == nil {
		roots[modPath] = modDir
	}
	for _, pkg := range pkgs {
		first := pkg
		if i := strings.Index(pkg, "/"); i >= 0 {
			first = pkg[:i]
		}
		roots[first] = filepath.Join(testdata, "src", first)
	}
	loader := analysis.NewLoader(roots)
	for _, pkgPath := range pkgs {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		diags, err := analysis.RunAnalyzer(a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
		}
		checkWants(t, pkg, diags)
	}
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (string, string, error) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// wantRE extracts the payload of a // want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkWants matches diagnostics against want comments line by line.
func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	files := make(map[string][]string)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading fixture %s: %v", name, err)
		}
		lines := strings.Split(string(data), "\n")
		files[name] = lines
		for i, line := range lines {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats, err := parseWantPatterns(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want comment: %v", name, i+1, err)
			}
			wants[key{name, i + 1}] = pats
		}
	}
	matched := make(map[key]int) // how many wants at this line were consumed
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		pats := wants[k]
		idx := -1
		for i, re := range pats {
			if re == nil {
				continue // already consumed
			}
			if re.MatchString(d.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
			continue
		}
		pats[idx] = nil
		matched[k]++
	}
	for k, pats := range wants {
		for _, re := range pats {
			if re != nil {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, re.String())
			}
		}
	}
}

// parseWantPatterns splits a want payload into its quoted regexps. Both
// backquoted and double-quoted forms are accepted.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var pats []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var raw string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			raw, s = s[1:1+end], s[2+end:]
		case '"':
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			raw, s = s[1:1+end], s[2+end:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		pats = append(pats, re)
		s = strings.TrimSpace(s)
	}
	return pats, nil
}
