package analysis

import (
	"go/types"
)

// costTypePkg/costTypeName identify the cost-accounting currency: every
// simulated RPC and wave fold returns a netsim.Cost, and the experiment
// tables are only honest if every such cost lands in an accumulator or a
// receipt.
const (
	costTypePkg  = "repro/internal/netsim"
	costTypeName = "Cost"
)

// Costdrop flags netsim.Cost values that fall on the floor.
//
// Costs model the network work a real deployment would pay for; dropping
// one silently under-reports an experiment (the paper's cost-vs-quality
// tables are the headline result). The analyzer diagnoses a Cost-returning
// call used as a bare statement and a Cost result assigned to the blank
// identifier — regardless of which package the function lives in, since
// wave folds in core and ingest return Cost too. Genuinely free calls
// take //detlint:ignore costdrop with a reason.
var Costdrop = &Analyzer{
	Name: "costdrop",
	Doc:  "netsim.Cost results must flow into an accumulator or receipt, never be discarded",
	Run:  runCostdrop,
}

func isCostType(t types.Type) bool {
	return namedTypeIs(t, costTypePkg, costTypeName)
}

func runCostdrop(pass *Pass) error {
	dc := &dropCheck{
		// The Cost type itself is the marker, not the callee's home
		// package: wave folds in core/ingest return Cost too.
		pkgOK:  func(string) bool { return true },
		want:   isCostType,
		kind:   "netsim.Cost",
		remedy: "fold it into an accumulator or receipt",
	}
	for _, f := range pass.Files {
		dc.check(pass, f)
	}
	return nil
}
