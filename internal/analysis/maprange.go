package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MaprangeGuardedCallPkgs lists import-path prefixes whose functions and
// methods are order-sensitive to invoke: they draw from RNG streams
// (xrand, netsim), mutate replicated state (dht, store, chain) or fold
// costs (netsim), so calling them in map-iteration order injects map
// randomization straight into the simulation.
var MaprangeGuardedCallPkgs = []string{
	"repro/internal/netsim",
	"repro/internal/dht",
	"repro/internal/store",
	"repro/internal/chain",
	"repro/internal/xrand",
}

// Maprange flags `for … range m` over a map when the loop body does
// order-sensitive work. Go randomizes map iteration order per run, so any
// of the following inside the body makes output depend on that
// randomization:
//
//   - appending to a slice declared outside the loop (element order leaks)
//   - calling into netsim/dht/store/chain/xrand (RNG draws and replicated-
//     state mutations happen in iteration order)
//   - printing via fmt.Print*/Fprint* or writing to a strings.Builder or
//     bytes.Buffer (output order leaks)
//   - compound-assigning to an outer float or string (rounding/concat
//     order leaks)
//   - plainly assigning a value derived from the loop variables to an
//     outer variable (last-writer-wins and argmax tie-breaks leak)
//
// The fix is the sorted-keys idiom: collect keys, sort, range the slice.
// The analyzer recognizes that idiom: an append whose slice is sorted by a
// later statement in an enclosing block is not a finding. Anything
// genuinely commutative (integer sums, set inserts, per-key map writes) is
// not flagged; rare exceptions take //detlint:ignore maprange with a
// reason.
var Maprange = &Analyzer{
	Name: "maprange",
	Doc:  "range over a map with an order-sensitive body must iterate sorted keys",
	Run:  runMaprange,
}

func runMaprange(pass *Pass) error {
	for _, f := range pass.Files {
		walkWithParents(f, func(n ast.Node, parents []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(pass.Info, rs) {
				return true
			}
			if why, pos := orderSensitiveOp(pass, rs, parents); why != "" {
				pass.Reportf(pos, "map iteration order reaches %s; iterate sorted keys (or //detlint:ignore maprange <reason>)", why)
			}
			return true
		})
	}
	return nil
}

// rangesOverMap reports whether rs iterates a map — directly, or through
// the maps.Keys/maps.Values/maps.All iterators, which preserve the
// randomized order.
func rangesOverMap(info *types.Info, rs *ast.RangeStmt) bool {
	if t := info.TypeOf(rs.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	call, ok := ast.Unparen(rs.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, name := pkgQualifiedCall(info, call)
	return pkg == "maps" && (name == "Keys" || name == "Values" || name == "All")
}

// orderSensitiveOp scans the loop body for the first order-sensitive
// operation and describes it; "" means the body looks commutative.
func orderSensitiveOp(pass *Pass, rs *ast.RangeStmt, parents []ast.Node) (why string, pos token.Pos) {
	loopVars := rangeVarObjects(pass.Info, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if w, p := sensitiveAssign(pass, rs, n, loopVars, parents); w != "" {
				why, pos = w, p
			}
		case *ast.CallExpr:
			if w := sensitiveCall(pass, n); w != "" {
				why, pos = w, n.Pos()
			}
		}
		return why == ""
	})
	return why, pos
}

// rangeVarObjects collects the objects bound to the range key/value.
func rangeVarObjects(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// sensitiveCall reports why a call is order-sensitive, or "".
func sensitiveCall(pass *Pass, call *ast.CallExpr) string {
	obj := calleeObject(pass.Info, call)
	if obj == nil || isTypeName(obj) {
		return ""
	}
	path := objectPkgPath(obj)
	switch {
	case matchesAny(path, MaprangeGuardedCallPkgs):
		return fmt.Sprintf("a call to %s (RNG draws / replicated-state ops execute in map order)", calleeName(pass.Info, call))
	case path == "fmt" && printsInOrder(obj.Name()):
		return fmt.Sprintf("fmt.%s output (lines print in map order)", obj.Name())
	case isOrderedWriterMethod(obj):
		return fmt.Sprintf("%s (bytes accumulate in map order)", calleeName(pass.Info, call))
	}
	return ""
}

// printsInOrder matches the fmt functions with output side effects; the
// pure Sprintf family is fine — its results only matter if they flow
// somewhere the other rules already watch.
func printsInOrder(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// isOrderedWriterMethod reports whether obj is a method on strings.Builder
// or bytes.Buffer (all their mutating methods accumulate in call order).
func isOrderedWriterMethod(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return namedTypeIs(t, "strings", "Builder") || namedTypeIs(t, "bytes", "Buffer")
}

// sensitiveAssign reports why an assignment inside the loop is
// order-sensitive, or "".
func sensitiveAssign(pass *Pass, rs *ast.RangeStmt, assign *ast.AssignStmt, loopVars map[types.Object]bool, parents []ast.Node) (string, token.Pos) {
	if assign.Tok == token.DEFINE {
		return "", token.NoPos // := always creates loop-local state
	}
	for i, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || declaredWithin(obj, rs) {
			continue // loop-local state resets every iteration
		}
		rhs := matchingRhs(assign, i)

		// xs = append(xs, …): element order leaks — unless a later
		// statement sorts xs (the canonical collect-then-sort fix).
		if assign.Tok == token.ASSIGN && rhs != nil && isAppendCall(pass.Info, rhs) {
			if sortedLater(pass, obj, rs, parents) {
				continue
			}
			return fmt.Sprintf("append to %q (element order = map order; sort %s afterwards or iterate sorted keys)", id.Name, id.Name), id.Pos()
		}

		// x += v on floats/strings: rounding and concatenation are not
		// commutative. Integer accumulation is, so it stays quiet.
		if assign.Tok != token.ASSIGN {
			switch basicKindOf(obj.Type()) {
			case floatKind:
				return fmt.Sprintf("float accumulation into %q (rounding depends on order)", id.Name), id.Pos()
			case stringKind:
				return fmt.Sprintf("string concatenation into %q (byte order = map order)", id.Name), id.Pos()
			}
			continue
		}

		// x = <expr involving k or v>: last-writer-wins / argmax
		// tie-breaking depends on iteration order — unless it is a
		// commutative integer self-update written longhand.
		if rhs != nil && referencesAny(pass.Info, rhs, loopVars) && !commutativeIntUpdate(pass.Info, obj, rhs) {
			return fmt.Sprintf("assignment to %q from the loop variables (last writer depends on map order)", id.Name), id.Pos()
		}
	}
	return "", token.NoPos
}

// matchingRhs returns the RHS expression feeding Lhs[i], or nil when the
// assignment is the tuple form (x, y = f()) where positions don't map 1:1.
func matchingRhs(assign *ast.AssignStmt, i int) ast.Expr {
	if len(assign.Lhs) == len(assign.Rhs) {
		return ast.Unparen(assign.Rhs[i])
	}
	if len(assign.Rhs) == 1 {
		return ast.Unparen(assign.Rhs[0])
	}
	return nil
}

// isAppendCall reports whether expr is a call to the append builtin.
func isAppendCall(info *types.Info, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "append"
}

// referencesAny reports whether expr mentions any of the given objects.
func referencesAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// commutativeIntUpdate reports whether rhs is an integer expression that
// mentions obj itself and combines only with commutative operators —
// `x = x + v` written longhand, which is order-insensitive.
func commutativeIntUpdate(info *types.Info, obj types.Object, rhs ast.Expr) bool {
	if basicKindOf(obj.Type()) != intKind {
		return false
	}
	selfRef := false
	commutative := true
	ast.Inspect(rhs, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if info.ObjectOf(n) == obj {
				selfRef = true
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.MUL, token.AND, token.OR, token.XOR:
			default:
				commutative = false
			}
		}
		return commutative
	})
	return selfRef && commutative
}

// basicKindOf classifies a type's underlying basic kind.
type basicKind int

const (
	otherKind basicKind = iota
	intKind
	floatKind
	stringKind
)

func basicKindOf(t types.Type) basicKind {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return otherKind
	}
	switch {
	case b.Info()&types.IsInteger != 0:
		return intKind
	case b.Info()&(types.IsFloat|types.IsComplex) != 0:
		return floatKind
	case b.Info()&types.IsString != 0:
		return stringKind
	}
	return otherKind
}

// sortedLater reports whether a statement after rs in one of its enclosing
// blocks passes the slice bound to obj into a sort.* or slices.* call —
// the collect-then-sort idiom that makes the collection loop safe.
func sortedLater(pass *Pass, obj types.Object, rs *ast.RangeStmt, parents []ast.Node) bool {
	// Find the statement within each enclosing statement list (block,
	// switch case, select case) that contains rs, then scan the
	// remaining statements of that list.
	for pi := len(parents) - 1; pi >= 0; pi-- {
		var list []ast.Stmt
		switch p := parents[pi].(type) {
		case *ast.BlockStmt:
			list = p.List
		case *ast.CaseClause:
			list = p.Body
		case *ast.CommClause:
			list = p.Body
		default:
			continue
		}
		idx := -1
		for i, stmt := range list {
			if stmt.Pos() <= rs.Pos() && rs.End() <= stmt.End() {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		for _, stmt := range list[idx+1:] {
			if sortsObject(pass.Info, stmt, obj) {
				return true
			}
		}
	}
	return false
}

// sortsObject reports whether stmt contains a sort.*/slices.* call taking
// the object as an argument.
func sortsObject(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		pkg, _ := pkgQualifiedCall(info, call)
		if pkg != "sort" && pkg != "slices" {
			return !found
		}
		for _, arg := range call.Args {
			if referencesAny(info, arg, map[types.Object]bool{obj: true}) {
				found = true
			}
		}
		return !found
	})
	return found
}
