package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces a suppression comment:
//
//	//detlint:ignore <analyzer> <reason...>
//
// The directive suppresses findings from the named analyzer on the same
// line or on the line directly below it (the usual "comment above the
// statement" placement). The reason is mandatory: a suppression with no
// stated justification is itself reported as a finding, so the suppression
// count in the summary can never silently absorb unexplained exceptions.
const DirectivePrefix = "//detlint:ignore"

// Directive is one parsed //detlint:ignore comment.
type Directive struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	Reason   string
	// Malformed is set when the directive is missing the analyzer name
	// or the reason string.
	Malformed bool
	// Used is set by the runner when the directive suppressed at least
	// one finding.
	Used bool
}

// collectDirectives extracts every //detlint:ignore directive from a file.
func collectDirectives(fset *token.FileSet, f *ast.File) []*Directive {
	var out []*Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			d := &Directive{Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //detlint:ignorance — not ours
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				// Missing analyzer name and/or reason.
				if len(fields) == 1 {
					d.Analyzer = fields[0]
				}
				d.Malformed = true
			} else {
				d.Analyzer = fields[0]
				d.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// covers reports whether the directive suppresses a finding by the named
// analyzer at the given position: same file, same line or the line below
// the directive.
func (d *Directive) covers(analyzer string, pos token.Position) bool {
	if d.Malformed || d.Analyzer != analyzer {
		return false
	}
	return d.File == pos.Filename && (d.Line == pos.Line || d.Line == pos.Line-1)
}
