package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrsinkGuardedPkgs lists the import-path prefixes whose returned errors
// must never be silently discarded: the DHT, the block store and the chain
// are the system's replicated state, and a swallowed write error there
// means divergent replicas that no soak can trace back to its source (PR 4
// fixed exactly this class of bug at runtime).
var ErrsinkGuardedPkgs = []string{
	"repro/internal/dht",
	"repro/internal/store",
	"repro/internal/chain",
}

// Errsink flags discarded errors from DHT/store/chain operations.
//
// Two forms are diagnosed: a call used as a bare statement whose result
// tuple includes an error, and an assignment that lands the error in the
// blank identifier. Handling means anything else — returning it, branching
// on it, or recording it on a receipt's Errs field. Truly ignorable errors
// take a //detlint:ignore errsink directive with the reason spelled out.
var Errsink = &Analyzer{
	Name: "errsink",
	Doc:  "errors from dht/store/chain ops must be handled or recorded on a receipt, never dropped",
	Run:  runErrsink,
}

func runErrsink(pass *Pass) error {
	dc := &dropCheck{
		pkgOK:  func(path string) bool { return matchesAny(path, ErrsinkGuardedPkgs) },
		want:   isErrorType,
		kind:   "error",
		remedy: "handle it or record it on a receipt",
	}
	for _, f := range pass.Files {
		dc.check(pass, f)
	}
	return nil
}

// resultIndex finds the first result position of call whose type matches
// want.
func resultIndex(info *types.Info, call *ast.CallExpr, want func(types.Type) bool) (pos int, ok bool) {
	tv, found := info.Types[call]
	if !found {
		return 0, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if want(t.At(i).Type()) {
				return i, true
			}
		}
	default:
		if want(t) {
			return 0, true
		}
	}
	return 0, false
}

// calleeName renders the called function for a diagnostic.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObject(info, call)
	if obj == nil {
		return "call"
	}
	if recv := receiverTypeName(obj); recv != "" {
		return recv + "." + obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// receiverTypeName returns "pkg.Type" for methods, "" otherwise.
func receiverTypeName(obj types.Object) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			return pkg.Name() + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return ""
}

// describeResult names the dropped result for a diagnostic, e.g.
// "error (result 3 of 4)".
func describeResult(info *types.Info, call *ast.CallExpr, pos int, kind string) string {
	tv, ok := info.Types[call]
	if ok {
		if tuple, ok := tv.Type.(*types.Tuple); ok && tuple.Len() > 1 {
			return fmt.Sprintf("%s (result %d of %d)", kind, pos+1, tuple.Len())
		}
	}
	return kind
}
