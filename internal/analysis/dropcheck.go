package analysis

import (
	"go/ast"
	"go/types"
)

// dropCheck is the shared machinery behind errsink and costdrop: find call
// results of a marker type (error, netsim.Cost) that are discarded, either
// by using the call as a bare statement or by assigning the result to the
// blank identifier.
type dropCheck struct {
	// pkgOK filters by the callee's defining package.
	pkgOK func(path string) bool
	// want matches the marker result type.
	want func(t types.Type) bool
	// kind names the marker type in diagnostics ("error", "netsim.Cost").
	kind string
	// remedy completes the diagnostic ("handle it or record it on a
	// receipt").
	remedy string
}

// check walks one file and reports drops.
func (dc *dropCheck) check(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				dc.checkBareCall(pass, call)
			}
		case *ast.AssignStmt:
			dc.checkAssign(pass, n)
		case *ast.GoStmt, *ast.DeferStmt:
			// go f() / defer f() discard results by design; the
			// deferred call's own body is still visited elsewhere.
		}
		return true
	})
}

// checkBareCall flags a statement-position call whose results include the
// marker type.
func (dc *dropCheck) checkBareCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObject(pass.Info, call)
	if obj == nil || !dc.pkgOK(objectPkgPath(obj)) {
		return
	}
	if pos, ok := resultIndex(pass.Info, call, dc.want); ok {
		pass.Reportf(call.Pos(), "%s returned by %s is discarded; %s",
			describeResult(pass.Info, call, pos, dc.kind), calleeName(pass.Info, call), dc.remedy)
	}
}

// checkAssign flags marker results landing in the blank identifier, in both
// assignment shapes: `v, _ := f()` (one call, tuple spread) and
// `_ = f()` / `a, _ = g(), h()` (positional).
func (dc *dropCheck) checkAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		obj := calleeObject(pass.Info, call)
		if obj == nil || !dc.pkgOK(objectPkgPath(obj)) {
			return
		}
		tv, found := pass.Info.Types[call]
		if !found {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(assign.Lhs) {
			return
		}
		for i := 0; i < tuple.Len(); i++ {
			if dc.want(tuple.At(i).Type()) && isBlank(assign.Lhs[i]) {
				pass.Reportf(assign.Lhs[i].Pos(), "%s from %s assigned to _; %s",
					describeResult(pass.Info, call, i, dc.kind), calleeName(pass.Info, call), dc.remedy)
			}
		}
		return
	}
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i := range assign.Lhs {
		if !isBlank(assign.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		obj := calleeObject(pass.Info, call)
		if obj == nil || !dc.pkgOK(objectPkgPath(obj)) {
			continue
		}
		if tv, found := pass.Info.Types[call]; found && dc.want(tv.Type) {
			pass.Reportf(assign.Lhs[i].Pos(), "%s from %s assigned to _; %s",
				dc.kind, calleeName(pass.Info, call), dc.remedy)
		}
	}
}

// isBlank reports whether expr is the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}
