// Package analysis is detlint's static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus a package loader and a
// multichecker runner, built only on the standard library's go/ast,
// go/parser, go/types and go/importer.
//
// The framework exists because this repository's correctness contract is
// *determinism*: given a seed, every experiment, soak and serving wave must
// be byte-identical run over run. Each analyzer in this package encodes one
// invariant that, when violated, has historically broken that contract at
// runtime (map-order iteration, wall-clock reads, global RNG draws,
// swallowed DHT errors, discarded netsim costs). detlint moves those
// failures from "a soak flaked" to "the build failed".
//
// See docs/static-analysis.md for the analyzer catalogue and the
// //detlint:ignore suppression policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. It mirrors the x/tools go/analysis
// Analyzer shape so the checks could migrate to the upstream driver if the
// dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:ignore directives. It must be a single lowercase word.
	Name string

	// Doc is a one-paragraph description: the invariant the analyzer
	// guards and why violating it breaks determinism or cost accounting.
	Doc string

	// Run performs the check over one package and reports findings via
	// pass.Report. It must not retain the pass after returning.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// PkgPath is the import path of the package under analysis (the
	// module-qualified path, e.g. "repro/internal/core").
	PkgPath string

	diags *[]Diagnostic
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Reportf is the common path: report a finding at pos with a formatted
// message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the analyzer that produced it and
// a human-readable message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string

	// Suppressed is set by the runner when an in-scope
	// //detlint:ignore directive covers the finding.
	Suppressed bool
	// SuppressReason carries the directive's reason when Suppressed.
	SuppressReason string
}

// All returns the full detlint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Maprange, Wallclock, RNGDiscipline, Errsink, Costdrop}
}
