package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Result is the outcome of running a set of analyzers over a set of
// packages.
type Result struct {
	// Findings are the unsuppressed diagnostics, sorted by position.
	Findings []Diagnostic
	// Suppressed are diagnostics covered by a //detlint:ignore
	// directive, sorted by position.
	Suppressed []Diagnostic
	// SuppressedByAnalyzer counts suppressions per analyzer name.
	SuppressedByAnalyzer map[string]int
	// Packages is how many packages were analyzed.
	Packages int
}

// Summary renders the one-line accounting detlint prints after a run. The
// suppression total is always shown — even when zero — so a creeping pile
// of ignores is visible in every CI log.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "detlint: %d packages, %d findings, %d suppressed", r.Packages, len(r.Findings), len(r.Suppressed))
	if len(r.SuppressedByAnalyzer) > 0 {
		names := make([]string, 0, len(r.SuppressedByAnalyzer))
		for name := range r.SuppressedByAnalyzer {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", name, r.SuppressedByAnalyzer[name]))
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, " "))
	}
	return b.String()
}

// RunAnalyzer runs a single analyzer over one loaded package and returns
// its raw diagnostics, with no suppression applied. The analysistest
// harness uses it to match findings against want-comments exactly.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		PkgPath:  pkg.Path,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

// Runner executes analyzers over loaded packages and applies the
// suppression directives.
type Runner struct {
	Analyzers []*Analyzer
}

// Run analyzes every package and returns the combined, suppression-filtered
// result. Analyzer errors abort the run; they indicate a broken analyzer,
// not a broken target.
func (r *Runner) Run(pkgs []*Package) (*Result, error) {
	res := &Result{SuppressedByAnalyzer: make(map[string]int), Packages: len(pkgs)}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range r.Analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}

		var directives []*Directive
		for _, f := range pkg.Files {
			directives = append(directives, collectDirectives(pkg.Fset, f)...)
		}
		known := make(map[string]bool, len(r.Analyzers))
		for _, a := range r.Analyzers {
			known[a.Name] = true
		}
		// Directive hygiene findings are ordinary diagnostics, except
		// they can never themselves be suppressed.
		for _, d := range directives {
			switch {
			case d.Malformed:
				diags = append(diags, Diagnostic{
					Analyzer: "directive",
					Pos:      d.Pos,
					Message:  "detlint:ignore needs an analyzer name and a reason: //detlint:ignore <analyzer> <reason>",
				})
			case !known[d.Analyzer]:
				diags = append(diags, Diagnostic{
					Analyzer: "directive",
					Pos:      d.Pos,
					Message:  fmt.Sprintf("detlint:ignore names unknown analyzer %q", d.Analyzer),
				})
			}
		}

		for i := range diags {
			diag := &diags[i]
			if diag.Analyzer == "directive" {
				continue
			}
			pos := pkg.Fset.Position(diag.Pos)
			for _, d := range directives {
				if d.covers(diag.Analyzer, pos) {
					diag.Suppressed = true
					diag.SuppressReason = d.Reason
					d.Used = true
					break
				}
			}
		}
		// An ignore that suppresses nothing is stale: the code it
		// excused was fixed or moved. Flag it so dead suppressions are
		// pruned instead of accumulating.
		for _, d := range directives {
			if !d.Malformed && known[d.Analyzer] && !d.Used {
				diags = append(diags, Diagnostic{
					Analyzer: "directive",
					Pos:      d.Pos,
					Message:  fmt.Sprintf("detlint:ignore %s suppresses no finding; remove it", d.Analyzer),
				})
			}
		}

		for _, diag := range diags {
			if diag.Suppressed {
				res.Suppressed = append(res.Suppressed, diag)
				res.SuppressedByAnalyzer[diag.Analyzer]++
			} else {
				res.Findings = append(res.Findings, diag)
			}
		}
	}
	sortDiags := func(ds []Diagnostic, fset *token.FileSet) {
		sort.Slice(ds, func(i, j int) bool {
			pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return ds[i].Analyzer < ds[j].Analyzer
		})
	}
	if len(pkgs) > 0 {
		sortDiags(res.Findings, pkgs[0].Fset)
		sortDiags(res.Suppressed, pkgs[0].Fset)
	}
	return res, nil
}
