package analysis

import (
	"go/ast"
	"strconv"
)

// RNGAllowedPkgs lists import-path prefixes allowed to touch math/rand.
// Only the deterministic RNG package itself may reference it (today it does
// not even do that — it implements xoshiro256** directly — but the
// carve-out keeps the analyzer honest if a distribution is ever
// cross-checked against the standard library).
var RNGAllowedPkgs = []string{"repro/internal/xrand"}

// rngPkgs are the import paths whose use the analyzer polices.
var rngPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// rngConstructors are the math/rand entry points that mint new generators.
var rngConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

// RNGDiscipline flags math/rand usage outside the sanctioned RNG packages.
//
// Every random draw in the repository must flow from a seeded, named
// xrand.RNG stream (xrand.New/NewNamed/Split, or netsim's per-link stream
// constructors built on them). The math/rand globals draw from a
// process-wide stream seeded at startup, and a naked rand.New hides the
// seed from the experiment config; either way the draw order — and with it
// the simulation output — stops being a pure function of the seed.
var RNGDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc:  "bans math/rand outside internal/xrand; all randomness flows from seeded, named xrand streams",
	Run:  runRNGDiscipline,
}

func runRNGDiscipline(pass *Pass) error {
	if matchesAny(pass.PkgPath, RNGAllowedPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				path, err := strconv.Unquote(n.Path.Value)
				if err == nil && rngPkgs[path] {
					pass.Reportf(n.Pos(), "import of %s: all randomness must flow from repro/internal/xrand streams", path)
				}
			case *ast.SelectorExpr:
				obj := pass.Info.ObjectOf(n.Sel)
				if !rngPkgs[objectPkgPath(obj)] {
					return true
				}
				switch {
				case isTypeName(obj):
					pass.Reportf(n.Pos(), "reference to math/rand type %s; the simulation's RNG type is xrand.RNG", n.Sel.Name)
				case receiverTypeName(obj) != "":
					pass.Reportf(n.Pos(), "call to %s.%s; the simulation's RNG type is xrand.RNG", receiverTypeName(obj), n.Sel.Name)
				case rngConstructors[n.Sel.Name]:
					pass.Reportf(n.Pos(), "rand.%s constructs an unnamed stream; use xrand.New/NewNamed/Split so the seed is explicit and the stream is attributable", n.Sel.Name)
				default:
					pass.Reportf(n.Pos(), "math/rand.%s draws from process-global state; draw from a seeded xrand.RNG stream instead", n.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
