package analysis

import (
	"go/ast"
	"go/types"
)

// WallclockAllowedPkgs lists import-path prefixes exempt from the wallclock
// analyzer. Command binaries legitimately touch the host clock for HTTP
// plumbing (uptime counters, progress printing); everything else runs in
// simulated time, where vclock and netsim cost accounting are the only
// clocks.
var WallclockAllowedPkgs = []string{"repro/cmd/"}

// wallclockBanned maps the time-package functions that read or schedule on
// the host clock to the reason each is forbidden in simulation code.
var wallclockBanned = map[string]string{
	"Now":       "reads the host clock",
	"Since":     "reads the host clock",
	"Until":     "reads the host clock",
	"After":     "schedules on the host clock",
	"AfterFunc": "schedules on the host clock",
	"Tick":      "schedules on the host clock",
	"NewTimer":  "schedules on the host clock",
	"NewTicker": "schedules on the host clock",
	"Sleep":     "blocks on the host clock",
}

// Wallclock flags host-clock reads and timers in simulation packages.
//
// The simulation's only notion of time is the vector clock advanced by
// chain rounds and the netsim Cost latencies folded per wave. A time.Now in
// a simulation package makes an experiment's output depend on host
// scheduling, which breaks the byte-identical-per-seed contract. time.Time
// and time.Duration values remain fine — only the functions that sample or
// schedule on the real clock are banned.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "bans time.Now/Since/After and friends outside cmd/ plumbing; simulated time comes from vclock and netsim costs",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) error {
	if matchesAny(pass.PkgPath, WallclockAllowedPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			reason, banned := wallclockBanned[sel.Sel.Name]
			if !banned {
				return true
			}
			obj := pass.Info.ObjectOf(sel.Sel)
			if objectPkgPath(obj) != "time" {
				return true
			}
			// Methods like time.Time.After compare values; only the
			// package-level functions touch the host clock.
			if fn, ok := obj.(*types.Func); !ok || fn.Signature().Recv() != nil {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s %s; simulation packages must take time from vclock/netsim (allowlisted: cmd/)", sel.Sel.Name, reason)
			return true
		})
	}
	return nil
}
