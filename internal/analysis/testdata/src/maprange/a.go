// Fixture for the maprange analyzer: ranging over a map is fine until the
// body does order-sensitive work; the collect-then-sort idiom is the
// sanctioned fix and stays quiet.
package maprange

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"

	"repro/internal/xrand"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out"`
	}
	return out
}

func badIterKeys(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) {
		out = append(out, k) // want `append to "out"`
	}
	return out
}

func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodCollectSlicesSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func badRNG(m map[string]int, rng *xrand.RNG) int {
	total := 0
	for range m {
		total += rng.Intn(3) // want `a call to xrand\.RNG\.Intn`
	}
	return total
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println output`
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `strings\.Builder\.WriteString`
	}
	return b.String()
}

func badFloat(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `float accumulation into "sum"`
	}
	return sum
}

func badConcat(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v // want `string concatenation into "s"`
	}
	return s
}

func badArgmax(m map[string]int) string {
	best := ""
	bestN := -1
	for k, v := range m {
		if v > bestN {
			bestN = v // want `assignment to "bestN" from the loop variables`
			best = k
		}
	}
	return best
}

func goodIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func goodLonghandIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n = n + v
	}
	return n
}

func goodPerKeyWrite(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = fmt.Sprintf("%s=%d", k, v)
	}
	return out
}

func goodSetInsert(m map[string]int) map[string]struct{} {
	set := make(map[string]struct{})
	for k := range m {
		if len(k) > 3 {
			set[k] = struct{}{}
		}
	}
	return set
}

func goodLoopLocal(m map[string]int) int {
	n := 0
	for _, v := range m {
		double := v * 2
		n += double
	}
	return n
}
