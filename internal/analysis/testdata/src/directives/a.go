// Fixture for the suppression-directive machinery, exercised through the
// full Runner rather than the single-analyzer harness.
package directives

import "time"

func suppressedSameLine() time.Time {
	return time.Now() //detlint:ignore wallclock fixture: uptime shown to humans only
}

func suppressedLineAbove() time.Time {
	//detlint:ignore wallclock fixture: cached start time for the status page
	return time.Now()
}

func unsuppressed() time.Time {
	return time.Now() // a plain comment does not suppress
}

//detlint:ignore wallclock
func missingReason() {}

//detlint:ignore nosuchanalyzer because reasons
func unknownAnalyzer() {}

//detlint:ignore maprange fixture: the loop this excused was deleted long ago
func staleDirective() {}
