// Fixture for the costdrop analyzer, exercised against the real netsim and
// dht packages: every netsim.Cost result must reach an accumulator or a
// receipt. The code only needs to type-check — it never runs.
package costdrop

import (
	"repro/internal/dht"
	"repro/internal/netsim"
)

// wave stands in for the core/ingest wave folds that return a Cost from a
// package outside netsim: the type, not the callee's package, is the marker.
func wave() netsim.Cost { return netsim.Cost{} }

func bad(net *netsim.Network, n *dht.Node, a, b netsim.NodeID) {
	net.Call(a, b, nil) // want `netsim\.Cost \(result 2 of 3\) returned by netsim\.Network\.Call is discarded`
	n.Refresh()         // want `netsim\.Cost returned by dht\.Node\.Refresh is discarded`
	wave()              // want `netsim\.Cost returned by costdrop\.wave is discarded`
	_ = wave()          // want `netsim\.Cost from costdrop\.wave assigned to _`

	resp, _, err := net.Call(a, b, nil) // want `netsim\.Cost \(result 2 of 3\) from netsim\.Network\.Call assigned to _`
	use(resp, err)
}

func good(net *netsim.Network, n *dht.Node, a, b netsim.NodeID) netsim.Cost {
	var total netsim.Cost
	total = total.Seq(wave())
	total = total.Seq(n.Refresh())
	_, cost, err := net.Call(a, b, nil)
	use(err)
	return total.Seq(cost)
}

func use(...any) {}
