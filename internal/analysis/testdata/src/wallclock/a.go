// Fixture for the wallclock analyzer: host-clock reads and timers are
// banned; time values built from data are fine.
package wallclock

import "time"

func bad() time.Duration {
	start := time.Now()          // want `time\.Now reads the host clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks on the host clock`
	<-time.After(time.Second)    // want `time\.After schedules on the host clock`
	t := time.NewTicker(1)       // want `time\.NewTicker schedules on the host clock`
	t.Stop()
	return time.Since(start) // want `time\.Since reads the host clock`
}

func good() time.Duration {
	var d time.Duration = 5 * time.Millisecond
	epoch := time.Unix(0, 42)
	_ = epoch.Add(d)
	return d * 2
}
