// Fixture for the rngdiscipline analyzer: math/rand is banned outside
// internal/xrand; xrand streams are the sanctioned source of randomness.
package rngdiscipline

import (
	"math/rand" // want `import of math/rand: all randomness must flow from repro/internal/xrand streams`

	"repro/internal/xrand"
)

func bad() int {
	n := rand.Intn(10)                // want `math/rand\.Intn draws from process-global state`
	r := rand.New(rand.NewSource(1))  // want `rand\.New constructs an unnamed stream` `rand\.NewSource constructs an unnamed stream`
	rand.Shuffle(3, func(i, j int) {}) // want `math/rand\.Shuffle draws from process-global state`
	return n + r.Int()                // want `call to rand\.Rand\.Int; the simulation's RNG type is xrand\.RNG`
}

func good(seed uint64) int {
	rng := xrand.NewNamed(seed, "fixture")
	child := rng.Split()
	return rng.Intn(10) + int(child.Uint64()%3)
}
