// Fixture for the errsink analyzer, exercised against the real dht/store
// packages: discarded errors from replicated-state ops are findings;
// handling or recording them is not. The code only needs to type-check —
// it never runs.
package errsink

import (
	"repro/internal/dht"
	"repro/internal/store"
)

// Receipt mimics the RoundReceipt pattern: errors recorded, not dropped.
type Receipt struct {
	Errs []error
}

func bad(n *dht.Node, p *store.Peer, k dht.Key) {
	n.Put(k, nil, 1)              // want `error \(result 3 of 3\) returned by dht\.Node\.Put is discarded`
	p.Add([]byte("x"))            // want `error \(result 3 of 3\) returned by store\.Peer\.Add is discarded`
	_, _, err := n.Put(k, nil, 2) // fine: err is bound…
	use(err)
	v, _, _, _ := n.Get(k) // want `error \(result 4 of 4\) from dht\.Node\.Get assigned to _`
	use(v)
}

func badPositional(n *dht.Node, k dht.Key) {
	var v []byte
	v, _, _ = n.GetImmutable(k) // want `error \(result 3 of 3\) from dht\.Node\.GetImmutable assigned to _`
	use(v)
}

func good(n *dht.Node, p *store.Peer, k dht.Key, r *Receipt) error {
	if _, _, err := n.Put(k, nil, 3); err != nil {
		return err
	}
	_, _, err := p.Add([]byte("y"))
	if err != nil {
		r.Errs = append(r.Errs, err)
	}
	_, _, err2 := n.Put(k, nil, 4)
	return err2
}

func use(...any) {}
