// Fixture for the wallclock allowlist: packages under repro/cmd/ are HTTP
// plumbing and may read the host clock (uptime counters, progress output).
// No want comments — the analyzer must stay silent here.
package plumbing

import "time"

func Uptime(start time.Time) time.Duration {
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
