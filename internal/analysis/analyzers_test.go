package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer is exercised against a fixture package that must both fire
// on every want-comment line and stay silent everywhere else; the harness
// fails on extra and missing diagnostics alike.

func TestMaprange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Maprange, "maprange")
}

func TestWallclock(t *testing.T) {
	// The second fixture sits under the repro/cmd/ allowlist and has no
	// want comments: the analyzer must not fire in command plumbing.
	analysistest.Run(t, analysistest.TestData(), analysis.Wallclock, "wallclock", "repro/cmd/plumbing")
}

func TestRNGDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.RNGDiscipline, "rngdiscipline")
}

func TestErrsink(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Errsink, "errsink")
}

func TestCostdrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Costdrop, "costdrop")
}
