package attack

import (
	"testing"

	"repro/internal/index"
)

func TestCollusionMinorityDefeated(t *testing.T) {
	res := RunCollusion(1, 5, 1, 3, 6)
	if res.Tasks != 6 {
		t.Fatalf("tasks = %d, want 6", res.Tasks)
	}
	if res.Corrupted != 0 {
		t.Fatalf("minority colluder corrupted %d tasks", res.Corrupted)
	}
	if res.CorruptionRate() != 0 {
		t.Fatalf("corruption rate = %v", res.CorruptionRate())
	}
}

func TestCollusionMajorityWins(t *testing.T) {
	// All bees collude: every task must be corrupted.
	res := RunCollusion(1, 3, 3, 3, 4)
	if res.Corrupted != res.Tasks || res.Tasks == 0 {
		t.Fatalf("full collusion should corrupt all: %+v", res)
	}
}

func TestCollusionCostsStake(t *testing.T) {
	// Minority colluders get slashed on every task they are assigned.
	res := RunCollusion(2, 5, 1, 3, 8)
	if res.ColluderSlash == 0 {
		t.Fatalf("colluder never slashed: %+v", res)
	}
	if res.ColluderStake == 0 {
		t.Fatalf("attack cost zero stake: %+v", res)
	}
}

func TestLargerQuorumResistsMore(t *testing.T) {
	// With 2 colluders of 5 bees: quorum 5 gives the 3 honest bees the
	// majority on every task; quorum 3 lets random assignment sometimes
	// pick 2 colluders.
	q5 := RunCollusion(3, 5, 2, 5, 10)
	if q5.Corrupted != 0 {
		t.Fatalf("quorum 5 with 2/5 colluders corrupted %d", q5.Corrupted)
	}
	q3 := RunCollusion(3, 5, 2, 3, 10)
	if q3.Corrupted <= q5.Corrupted {
		t.Logf("note: quorum 3 corruption %d not above quorum 5 %d (seed-dependent)", q3.Corrupted, q5.Corrupted)
	}
}

func TestScraperUndefendedEarnsHoney(t *testing.T) {
	res := RunScraper(1, false)
	if res.ScraperRank <= 0 {
		t.Fatalf("undefended mirror rank = %v, want > 0", res.ScraperRank)
	}
	if res.ScraperHoney == 0 {
		t.Fatalf("undefended scraper earned nothing: %+v — attack should pay", res)
	}
}

func TestScraperDefenseBlocksEarnings(t *testing.T) {
	res := RunScraper(1, true)
	if res.ScraperRank != 0 {
		t.Fatalf("defended mirror rank = %v, want 0", res.ScraperRank)
	}
	if res.ScraperHoney != 0 {
		t.Fatalf("defended scraper still earned %d", res.ScraperHoney)
	}
	if res.OriginalHoney == 0 {
		t.Fatal("original author should still earn popularity honey")
	}
	if res.FalseDemotions != 0 {
		t.Fatalf("defense demoted %d legitimate pages", res.FalseDemotions)
	}
}

func TestMinHashSimilarityBehaviour(t *testing.T) {
	a := index.SignatureOf("the quick brown fox jumps over the lazy dog repeatedly every single morning")
	aCopy := index.SignatureOf("the quick brown fox jumps over the lazy dog repeatedly every single morning")
	if sim := a.Similarity(aCopy); sim != 1 {
		t.Fatalf("identical texts similarity = %v, want 1", sim)
	}
	b := index.SignatureOf("completely unrelated discussion of blockchain consensus protocols and token economics")
	if sim := a.Similarity(b); sim > 0.3 {
		t.Fatalf("unrelated texts similarity = %v, want low", sim)
	}
	// Near-duplicate: small edit.
	c := index.SignatureOf("the quick brown fox jumps over the lazy dog repeatedly every single evening")
	if sim := a.Similarity(c); sim < 0.5 {
		t.Fatalf("near-duplicate similarity = %v, want high", sim)
	}
}

func TestHonestDigestOracleMatchesBee(t *testing.T) {
	// The oracle must reproduce exactly what an honest bee computes.
	b := index.NewBuilder(7)
	b.Add(index.DocIDOf("dweb://x"), "some text body")
	want := index.DigestOf(b.Build().Encode())
	if got := honestIndexDigest("dweb://x", "some text body", 7); got != want {
		t.Fatal("oracle diverges from honest bee computation")
	}
}
