// Package attack orchestrates the two attacks the paper predicts for
// decentralized search engines, against the defenses QueenBee deploys:
//
//   - collusion attack (E11): colluding worker bees reveal an agreed
//     wrong digest, trying to overturn quorum voting and corrupt the
//     index; the defense is commit–reveal majority + slashing;
//   - scraper-site attack (E12): a site mirrors popular content to farm
//     popularity honey and ad revenue; the defense is MinHash
//     near-duplicate demotion inside the verified rank computation.
package attack

import (
	"fmt"
	"strings"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/index"
)

// CollusionResult is one cell of the collusion sweep.
type CollusionResult struct {
	Colluders     int
	Quorum        int
	Tasks         int
	Corrupted     int // finalized with a non-honest digest
	Failed        int // no majority
	HonestWins    int
	ColluderStake uint64 // total stake colluders lost (the attack cost)
	HonestSlashes int
	ColluderSlash int
}

// CorruptionRate returns corrupted / total finalized-or-failed tasks.
func (r CollusionResult) CorruptionRate() float64 {
	if r.Tasks == 0 {
		return 0
	}
	return float64(r.Corrupted) / float64(r.Tasks)
}

// RunCollusion publishes numDocs pages into a cluster where `colluders`
// of numBees bees collude, with the given quorum size, and reports how
// many index tasks the attackers corrupted.
func RunCollusion(seed uint64, numBees, colluders, quorum, numDocs int) CollusionResult {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = 8
	cfg.NumBees = numBees
	cfg.Contract.Quorum = quorum
	c := core.NewCluster(cfg)
	for i := 0; i < colluders && i < len(c.Bees); i++ {
		c.Bees[i].Colluding = true
	}
	stakeBefore := colluderStake(c)

	alice := c.NewAccount("publisher", 10_000)
	c.Seal()
	texts := make(map[string]string, numDocs)
	for i := 0; i < numDocs; i++ {
		url := fmt.Sprintf("dweb://site/%03d", i)
		text := fmt.Sprintf("document %03d about decentralized honey markets and colony economics", i)
		texts[url] = text
		if _, err := c.Publish(alice, c.Peers[i%len(c.Peers)], url, text, nil); err != nil {
			panic(err)
		}
	}
	c.Seal()
	c.RunUntilIdle(10)

	res := CollusionResult{Colluders: colluders, Quorum: quorum}
	for url, text := range texts {
		taskID := fmt.Sprintf("idx:%s:1", url)
		task, ok := c.QB.TaskInfo(taskID)
		if !ok {
			continue
		}
		res.Tasks++
		switch task.Status {
		case contracts.StatusFailed:
			res.Failed++
		case contracts.StatusFinalized:
			honest := honestIndexDigest(url, text, task.CreatedAt)
			if task.WinningDigest == honest {
				res.HonestWins++
			} else {
				res.Corrupted++
			}
		}
	}
	res.ColluderStake = stakeBefore - colluderStake(c)
	for i, b := range c.Bees {
		info, ok := c.QB.WorkerInfo(b.Account.Address())
		if !ok {
			continue
		}
		if i < colluders {
			res.ColluderSlash += info.Slashes
		} else {
			res.HonestSlashes += info.Slashes
		}
	}
	return res
}

func colluderStake(c *core.Cluster) uint64 {
	var total uint64
	for _, b := range c.Bees {
		if b.Colluding {
			if info, ok := c.QB.WorkerInfo(b.Account.Address()); ok {
				total += info.Stake
			}
		}
	}
	return total
}

// honestIndexDigest recomputes the digest an honest bee produces for a
// publish task (the oracle the corruption metric compares against).
func honestIndexDigest(url, text string, createdAt uint64) string {
	b := index.NewBuilder(createdAt)
	b.Add(index.DocIDOf(url), text)
	return index.DigestOf(b.Build().Encode())
}

// ScraperResult reports the economics of the scraper-site attack.
type ScraperResult struct {
	DefenseOn      bool
	OriginalHoney  uint64 // popularity rewards earned by the original site
	ScraperHoney   uint64 // popularity rewards earned by the mirror
	OriginalRank   float64
	ScraperRank    float64
	FalseDemotions int // legitimate distinct pages demoted to rank 0
}

// RunScraper publishes an original popular page plus legitimate distinct
// pages, then a scraper mirror of the popular page, computes ranks and
// pays popularity rewards; it reports who earned what.
func RunScraper(seed uint64, defense bool) ScraperResult {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = 8
	cfg.NumBees = 3
	// Above base rank (~0.08 here) so only genuinely linked-to pages
	// qualify for popularity honey.
	cfg.Contract.PopularityThreshold = 0.1
	c := core.NewCluster(cfg)
	for _, b := range c.Bees {
		b.DetectDuplicates = defense
	}
	author := c.NewAccount("author", 10_000)
	scraper := c.NewAccount("scraper", 10_000)
	c.Seal()

	popular := "the definitive guide to decentralized search engines on the decentralized web " +
		strings.Repeat("queen bee worker bee honey index rank ", 12)
	if _, err := c.Publish(author, c.Peers[0], "dweb://original", popular, nil); err != nil {
		panic(err)
	}
	// Legitimate distinct pages linking to the original (making it popular).
	for i := 0; i < 5; i++ {
		text := fmt.Sprintf("independent review number %d praising the guide with original commentary and analysis of topic %d", i, i*7)
		if _, err := c.Publish(author, c.Peers[1], fmt.Sprintf("dweb://review/%d", i), text, []string{"dweb://original"}); err != nil {
			panic(err)
		}
	}
	c.Seal()
	c.RunUntilIdle(10)

	// The scraper mirrors the popular page, and links to itself from a
	// second spam page to gather rank.
	if _, err := c.Publish(scraper, c.Peers[2], "dweb://mirror", popular+" mirrored", nil); err != nil {
		panic(err)
	}
	if _, err := c.Publish(scraper, c.Peers[2], "dweb://linkfarm", "farm page "+strings.Repeat("mirror backlink ", 20), []string{"dweb://mirror"}); err != nil {
		panic(err)
	}
	c.Seal()
	c.RunUntilIdle(10)

	epoch := c.StartRankEpoch(2)
	c.RunUntilIdle(10)

	authorBefore := c.Chain.State().Balance(author.Address())
	scraperBefore := c.Chain.State().Balance(scraper.Address())
	c.PayPopularity(epoch)

	res := ScraperResult{
		DefenseOn:     defense,
		OriginalHoney: c.Chain.State().Balance(author.Address()) - authorBefore,
		ScraperHoney:  c.Chain.State().Balance(scraper.Address()) - scraperBefore,
		OriginalRank:  c.QB.PageRank("dweb://original"),
		ScraperRank:   c.QB.PageRank("dweb://mirror"),
	}
	for i := 0; i < 5; i++ {
		url := fmt.Sprintf("dweb://review/%d", i)
		if _, ok := c.QB.Page(url); ok && c.QB.PageRank(url) == 0 {
			// Reviews get rank 0 only when wrongly flagged as duplicates
			// (they have positive rank otherwise: the original links back? no —
			// they have no in-links, so base rank > 0 from teleportation).
			res.FalseDemotions++
		}
	}
	return res
}
