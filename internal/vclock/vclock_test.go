package vclock

import (
	"testing"
	"time"
)

func TestNewDefaultsToEpoch(t *testing.T) {
	c := New(time.Time{})
	want := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	if !c.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := New(time.Time{})
	start := c.Now()
	c.Advance(90 * time.Second)
	if got := c.Since(start); got != 90*time.Second {
		t.Fatalf("Since = %v, want 90s", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	New(time.Time{}).Advance(-time.Second)
}

func TestAfterFuncFiresAtDeadline(t *testing.T) {
	c := New(time.Time{})
	var firedAt time.Time
	c.AfterFunc(10*time.Second, func(now time.Time) { firedAt = now })
	c.Advance(9 * time.Second)
	if !firedAt.IsZero() {
		t.Fatal("timer fired early")
	}
	c.Advance(2 * time.Second)
	want := time.Date(2020, 1, 1, 0, 0, 10, 0, time.UTC)
	if !firedAt.Equal(want) {
		t.Fatalf("fired at %v, want %v", firedAt, want)
	}
}

func TestTimersFireInDeadlineOrder(t *testing.T) {
	c := New(time.Time{})
	var order []int
	c.AfterFunc(3*time.Second, func(time.Time) { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func(time.Time) { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func(time.Time) { order = append(order, 2) })
	c.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestEqualDeadlinesFireInScheduleOrder(t *testing.T) {
	c := New(time.Time{})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Second, func(time.Time) { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending schedule order", order)
		}
	}
}

func TestTimerCallbackCanReschedule(t *testing.T) {
	c := New(time.Time{})
	ticks := 0
	var tick func(time.Time)
	tick = func(time.Time) {
		ticks++
		if ticks < 4 {
			c.AfterFunc(time.Second, tick)
		}
	}
	c.AfterFunc(time.Second, tick)
	c.Advance(10 * time.Second)
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4", ticks)
	}
}

func TestStopCancelsTimer(t *testing.T) {
	c := New(time.Time{})
	fired := false
	tm := c.AfterFunc(time.Second, func(time.Time) { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true before firing")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Stop() {
		t.Fatal("Stop() on cancelled timer should return false")
	}
}

func TestStopAfterFire(t *testing.T) {
	c := New(time.Time{})
	tm := c.AfterFunc(time.Second, func(time.Time) {})
	c.Advance(time.Second)
	if tm.Stop() {
		t.Fatal("Stop() after fire should return false")
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New(time.Time{})
	target := c.Now().Add(time.Minute)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("Now = %v, want %v", c.Now(), target)
	}
	c.AdvanceTo(target.Add(-time.Second)) // past instant: no-op
	if !c.Now().Equal(target) {
		t.Fatal("AdvanceTo moved clock backwards")
	}
}

func TestPendingTimers(t *testing.T) {
	c := New(time.Time{})
	a := c.AfterFunc(time.Second, func(time.Time) {})
	c.AfterFunc(2*time.Second, func(time.Time) {})
	if got := c.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers = %d, want 2", got)
	}
	a.Stop()
	if got := c.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers after Stop = %d, want 1", got)
	}
	c.Advance(3 * time.Second)
	if got := c.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers after fire = %d, want 0", got)
	}
}

func TestAdvanceSetsClockToDeadlineDuringCallback(t *testing.T) {
	c := New(time.Time{})
	var seen time.Time
	c.AfterFunc(3*time.Second, func(time.Time) { seen = c.Now() })
	c.Advance(10 * time.Second)
	want := time.Date(2020, 1, 1, 0, 0, 3, 0, time.UTC)
	if !seen.Equal(want) {
		t.Fatalf("clock during callback = %v, want %v", seen, want)
	}
}
