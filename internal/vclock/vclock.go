// Package vclock provides a deterministic virtual clock.
//
// Every subsystem in the simulation derives time from a Clock instead of
// the wall clock, so experiments that measure durations (freshness,
// latency, crawl schedules) are reproducible and run as fast as the CPU
// allows. Time only moves when a component advances it explicitly.
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a manually advanced virtual clock. The zero value is not usable;
// construct with New. Clock is safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    uint64 // tie-breaker for timers with equal deadlines
}

// New returns a Clock starting at the given origin. A zero origin starts at
// the conventional simulation epoch 2020-01-01T00:00:00Z.
func New(origin time.Time) *Clock {
	if origin.IsZero() {
		origin = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return &Clock{now: origin}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order. Advance panics if d is negative.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	c.mu.Lock()
	target := c.now.Add(d)
	for len(c.timers) > 0 && !c.timers[0].when.After(target) {
		t := heap.Pop(&c.timers).(*timer)
		c.now = t.when
		fn := t.fn
		// Release the lock while running the callback so callbacks may
		// schedule further timers or read the clock.
		c.mu.Unlock()
		fn(t.when)
		c.mu.Lock()
	}
	c.now = target
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to the instant t. It is a no-op if t is
// not after the current time.
func (c *Clock) AdvanceTo(t time.Time) {
	now := c.Now()
	if t.After(now) {
		c.Advance(t.Sub(now))
	}
}

// AfterFunc schedules fn to run when the clock has advanced by d. The
// callback receives the virtual time at which it fired. It returns a handle
// that can cancel the timer.
func (c *Clock) AfterFunc(d time.Duration, fn func(now time.Time)) *Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	t := &timer{when: c.now.Add(d), seq: c.seq, fn: fn}
	heap.Push(&c.timers, t)
	return &Timer{clock: c, t: t}
}

// PendingTimers reports how many timers are scheduled but not yet fired.
func (c *Clock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.cancelled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	clock *Clock
	t     *timer
}

// Stop cancels the timer. It reports whether the timer had not yet fired.
func (tm *Timer) Stop() bool {
	tm.clock.mu.Lock()
	defer tm.clock.mu.Unlock()
	if tm.t.fired || tm.t.cancelled {
		return false
	}
	tm.t.cancelled = true
	tm.t.fn = func(time.Time) {}
	return true
}

type timer struct {
	when      time.Time
	seq       uint64
	fn        func(now time.Time)
	fired     bool
	cancelled bool
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}

func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *timerHeap) Push(x any) { *h = append(*h, x.(*timer)) }

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	t.fired = true
	return t
}
