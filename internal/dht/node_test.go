package dht

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/netsim"
)

// buildSwarm creates n bootstrapped DHT nodes on a fresh network.
func buildSwarm(t testing.TB, n int, cfg Config) (*netsim.Network, []*Node) {
	t.Helper()
	net := netsim.New(netsim.DefaultConfig())
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(net, netsim.NodeID(fmt.Sprintf("peer-%03d", i)), cfg)
	}
	seed := nodes[0].Self()
	for i := 1; i < n; i++ {
		nodes[i].Bootstrap([]Contact{seed})
	}
	// Second pass so early joiners learn about late joiners.
	for _, nd := range nodes {
		nd.Bootstrap([]Contact{seed})
	}
	return net, nodes
}

func TestPutGetAcrossSwarm(t *testing.T) {
	_, nodes := buildSwarm(t, 20, DefaultConfig())
	key := KeyOfString("the-answer")
	val := []byte("42")
	replicas, _, err := nodes[3].Put(key, val, 1)
	if err != nil {
		t.Fatal(err)
	}
	if replicas < 2 {
		t.Fatalf("replicas = %d, want >= 2", replicas)
	}
	got, seq, _, err := nodes[17].Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "42" || seq != 1 {
		t.Fatalf("Get = %q seq=%d, want 42 seq=1", got, seq)
	}
}

func TestGetMissingKey(t *testing.T) {
	_, nodes := buildSwarm(t, 10, DefaultConfig())
	_, _, _, err := nodes[2].Get(KeyOfString("never-stored"))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestVersionedPutHigherSeqWins(t *testing.T) {
	_, nodes := buildSwarm(t, 16, DefaultConfig())
	key := KeyOfString("pointer")
	if _, _, err := nodes[1].Put(key, []byte("v1"), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := nodes[2].Put(key, []byte("v2"), 2); err != nil {
		t.Fatal(err)
	}
	got, seq, _, err := nodes[9].Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" || seq != 2 {
		t.Fatalf("Get = %q seq=%d, want v2 seq=2", got, seq)
	}
}

func TestStaleSeqDoesNotOverwrite(t *testing.T) {
	_, nodes := buildSwarm(t, 16, DefaultConfig())
	key := KeyOfString("pointer2")
	nodes[1].Put(key, []byte("new"), 5)
	nodes[2].Put(key, []byte("old"), 3) // stale write
	got, seq, _, err := nodes[9].Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" || seq != 5 {
		t.Fatalf("Get = %q seq=%d, want new seq=5", got, seq)
	}
}

func TestLookupCostGrowsSublinearly(t *testing.T) {
	cfg := DefaultConfig()
	_, small := buildSwarm(t, 8, cfg)
	_, large := buildSwarm(t, 128, cfg)

	key := KeyOfString("scaling")
	small[1].Put(key, []byte("x"), 1)
	large[1].Put(key, []byte("x"), 1)

	_, _, cSmall, err := small[7].Get(key)
	if err != nil {
		t.Fatal(err)
	}
	_, _, cLarge, err := large[100].Get(key)
	if err != nil {
		t.Fatal(err)
	}
	// O(log n) routing: 16x more nodes should cost far less than 16x
	// messages. Allow factor 6.
	if cLarge.Msgs > 6*max(cSmall.Msgs, 3) {
		t.Fatalf("lookup msgs grew too fast: %d nodes→%d msgs vs %d nodes→%d msgs",
			8, cSmall.Msgs, 128, cLarge.Msgs)
	}
}

func TestGetSurvivesNodeFailures(t *testing.T) {
	net, nodes := buildSwarm(t, 32, DefaultConfig())
	key := KeyOfString("resilient")
	replicas, _, err := nodes[1].Put(key, []byte("alive"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if replicas < 3 {
		t.Skipf("need >=3 replicas to test failure tolerance, got %d", replicas)
	}
	// Kill a third of the swarm, but never the reader.
	for i := 0; i < len(nodes); i += 3 {
		if i != 20 {
			net.SetDown(nodes[i].Self().Addr, true)
		}
	}
	got, _, _, err := nodes[20].Get(key)
	if err != nil {
		t.Fatalf("Get after failures: %v", err)
	}
	if string(got) != "alive" {
		t.Fatalf("Get = %q, want alive", got)
	}
}

func TestProvideAndFindProviders(t *testing.T) {
	_, nodes := buildSwarm(t, 24, DefaultConfig())
	key := KeyOfString("content-block")
	for _, i := range []int{2, 5, 11} {
		if _, _, err := nodes[i].Provide(key); err != nil {
			t.Fatal(err)
		}
	}
	provs, _, err := nodes[20].FindProviders(key, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := map[netsim.NodeID]bool{"peer-002": true, "peer-005": true, "peer-011": true}
	found := 0
	for _, p := range provs {
		if want[p.Addr] {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("found %d/3 providers: %v", found, provs)
	}
}

func TestFindProvidersLimit(t *testing.T) {
	_, nodes := buildSwarm(t, 24, DefaultConfig())
	key := KeyOfString("popular")
	for i := 0; i < 10; i++ {
		nodes[i].Provide(key)
	}
	provs, _, err := nodes[20].FindProviders(key, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) > 3 {
		t.Fatalf("limit violated: %d providers", len(provs))
	}
}

func TestFindProvidersMissing(t *testing.T) {
	_, nodes := buildSwarm(t, 12, DefaultConfig())
	_, _, err := nodes[3].FindProviders(KeyOfString("no-providers"), 5)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestSingleNodePutGet(t *testing.T) {
	net := netsim.New(netsim.DefaultConfig())
	n := NewNode(net, "solo", DefaultConfig())
	key := KeyOfString("k")
	if _, _, err := n.Put(key, []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := n.Get(key)
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestRefreshRestoresReplication(t *testing.T) {
	net, nodes := buildSwarm(t, 24, DefaultConfig())
	key := KeyOfString("refresh-me")
	replicas, _, err := nodes[0].Put(key, []byte("data"), 1)
	if err != nil {
		t.Fatal(err)
	}
	// With K=8 and a fully bootstrapped 24-node swarm, the put lands on
	// the k closest nodes — the fixture must yield a real replica set or
	// the refresh assertion below tests nothing.
	if replicas < 3 {
		t.Fatalf("fixture produced %d replicas, want >= 3", replicas)
	}

	// Take down every node currently storing the value except one holder.
	var holders []*Node
	for _, nd := range nodes {
		if nd.LocalValues() > 0 {
			holders = append(holders, nd)
		}
	}
	if len(holders) < 3 {
		t.Fatalf("found %d holders after a %d-replica put, want >= 3", len(holders), replicas)
	}
	for _, h := range holders[1:] {
		net.SetDown(h.Self().Addr, true)
	}
	// The surviving holder refreshes, pushing the value to new closest
	// nodes.
	holders[0].Refresh()
	// Count live replicas now.
	live := 0
	for _, nd := range nodes {
		if !net.IsDown(nd.Self().Addr) && nd.LocalValues() > 0 {
			live++
		}
	}
	if live < 3 {
		t.Fatalf("live replicas after refresh = %d, want >= 3", live)
	}
}

func TestBootstrapPopulatesTable(t *testing.T) {
	_, nodes := buildSwarm(t, 30, DefaultConfig())
	for i, nd := range nodes {
		if nd.TableSize() < 3 {
			t.Fatalf("node %d table size = %d, want >= 3", i, nd.TableSize())
		}
	}
}

func TestStoreLocalVisibleToGet(t *testing.T) {
	_, nodes := buildSwarm(t, 8, DefaultConfig())
	key := KeyOfString("direct")
	nodes[4].StoreLocal(key, []byte("tampered"), 9)
	got, seq, _, err := nodes[4].Get(key)
	if err != nil || string(got) != "tampered" || seq != 9 {
		t.Fatalf("local Get = %q seq=%d err=%v", got, seq, err)
	}
}

func TestPingUpdatesTables(t *testing.T) {
	net := netsim.New(netsim.DefaultConfig())
	a := NewNode(net, "a", DefaultConfig())
	b := NewNode(net, "b", DefaultConfig())
	if _, err := a.Ping(b.Self()); err != nil {
		t.Fatal(err)
	}
	if a.TableSize() != 1 || b.TableSize() != 1 {
		t.Fatalf("table sizes = %d,%d, want 1,1", a.TableSize(), b.TableSize())
	}
}

func TestLargeSwarmGetWithBucketRefresh(t *testing.T) {
	// At 256 nodes, sparse routing tables can point writer and reader
	// lookups at different "closest" sets; bucket refresh closes the gap.
	net := netsim.New(netsim.DefaultConfig())
	const n = 256
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(net, netsim.NodeID(fmt.Sprintf("big-%03d", i)), DefaultConfig())
	}
	for _, nd := range nodes[1:] {
		nd.Bootstrap([]Contact{nodes[0].Self()})
	}
	for _, nd := range nodes {
		nd.Bootstrap([]Contact{nodes[0].Self()})
		nd.RefreshBuckets(2)
	}
	key := KeyOfString("large-swarm-key")
	if _, _, err := nodes[1].Put(key, []byte("payload"), 1); err != nil {
		t.Fatal(err)
	}
	// Every 8th node reads; all must find the value.
	for i := 2; i < n; i += 8 {
		got, _, _, err := nodes[i].Get(key)
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		if string(got) != "payload" {
			t.Fatalf("reader %d got %q", i, got)
		}
	}
}
