package dht

// RPC message types exchanged between DHT nodes. Each implements
// netsim.Sizer so the simulator charges realistic wire bytes.

type pingReq struct{ From Contact }

type pingResp struct{ From Contact }

func (pingReq) WireSize() int  { return contactWireSize }
func (pingResp) WireSize() int { return contactWireSize }

type findNodeReq struct {
	From   Contact
	Target Key
}

type findNodeResp struct {
	Contacts []Contact
}

func (findNodeReq) WireSize() int { return contactWireSize + KeySize }
func (r findNodeResp) WireSize() int {
	return 8 + contactWireSize*len(r.Contacts)
}

type storeReq struct {
	From  Contact
	Key   Key
	Value []byte
	Seq   uint64 // versioned records: higher sequence wins
}

type storeResp struct{ OK bool }

func (r storeReq) WireSize() int { return contactWireSize + KeySize + 8 + len(r.Value) }
func (storeResp) WireSize() int  { return 8 }

type findValueReq struct {
	From Contact
	Key  Key
}

type findValueResp struct {
	Found    bool
	Value    []byte
	Seq      uint64
	Contacts []Contact // closer contacts when not found
}

func (findValueReq) WireSize() int { return contactWireSize + KeySize }
func (r findValueResp) WireSize() int {
	return 16 + len(r.Value) + contactWireSize*len(r.Contacts)
}

type addProviderReq struct {
	From     Contact
	Key      Key
	Provider Contact
}

type addProviderResp struct{ OK bool }

func (addProviderReq) WireSize() int  { return 2*contactWireSize + KeySize }
func (addProviderResp) WireSize() int { return 8 }

type getProvidersReq struct {
	From Contact
	Key  Key
}

type getProvidersResp struct {
	Providers []Contact
	Contacts  []Contact
}

func (getProvidersReq) WireSize() int { return contactWireSize + KeySize }
func (r getProvidersResp) WireSize() int {
	return 8 + contactWireSize*(len(r.Providers)+len(r.Contacts))
}
