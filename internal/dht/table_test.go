package dht

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
)

func mkContact(i int) Contact {
	addr := netsim.NodeID(fmt.Sprintf("node-%d", i))
	return Contact{ID: KeyOfString(string(addr)), Addr: addr}
}

func TestTableUpdateAndClosest(t *testing.T) {
	self := KeyOfString("self")
	rt := newRoutingTable(self, 8)
	for i := 0; i < 100; i++ {
		rt.update(mkContact(i))
	}
	if rt.size() == 0 {
		t.Fatal("table empty after updates")
	}
	target := KeyOfString("target")
	closest := rt.closest(target, 8)
	if len(closest) != 8 {
		t.Fatalf("closest returned %d, want 8", len(closest))
	}
	// Verify ordering by XOR distance.
	for i := 1; i < len(closest); i++ {
		if DistanceLess(target, closest[i].ID, closest[i-1].ID) {
			t.Fatal("closest not sorted by distance")
		}
	}
}

func TestTableIgnoresSelf(t *testing.T) {
	self := KeyOfString("self")
	rt := newRoutingTable(self, 8)
	rt.update(Contact{ID: self, Addr: "self"})
	if rt.size() != 0 {
		t.Fatal("table should not store self")
	}
}

func TestTableBucketCapacity(t *testing.T) {
	self := KeyOfString("self")
	rt := newRoutingTable(self, 2)
	// Insert many contacts; every bucket must respect capacity 2.
	for i := 0; i < 1000; i++ {
		rt.update(mkContact(i))
	}
	for i := range rt.buckets {
		if n := len(rt.buckets[i].entries); n > 2 {
			t.Fatalf("bucket %d has %d entries, cap 2", i, n)
		}
	}
}

func TestTableFailedEviction(t *testing.T) {
	self := KeyOfString("self")
	rt := newRoutingTable(self, 1)
	// Find two contacts landing in the same bucket.
	var a, b Contact
	found := false
	for i := 0; i < 10000 && !found; i++ {
		c := mkContact(i)
		ai := BucketIndex(self.XOR(c.ID))
		for j := i + 1; j < 10000; j++ {
			d := mkContact(j)
			if BucketIndex(self.XOR(d.ID)) == ai {
				a, b = c, d
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("could not find bucket collision")
	}
	rt.update(a)
	rt.update(b) // bucket full with a; b dropped
	got := rt.contacts()
	if len(got) != 1 || got[0].ID != a.ID {
		t.Fatalf("expected only %v, got %v", a.Addr, got)
	}
	rt.markFailed(a.ID)
	rt.update(b) // now b replaces failed a
	got = rt.contacts()
	if len(got) != 1 || got[0].ID != b.ID {
		t.Fatalf("expected failed contact evicted, got %v", got)
	}
}

func TestTableUpdateRefreshesFailedFlag(t *testing.T) {
	self := KeyOfString("self")
	rt := newRoutingTable(self, 4)
	c := mkContact(1)
	rt.update(c)
	rt.markFailed(c.ID)
	rt.update(c) // seen alive again
	idx := BucketIndex(self.XOR(c.ID))
	if rt.buckets[idx].entries[0].failed {
		t.Fatal("update should clear failed flag")
	}
}

func TestClosestFewerThanN(t *testing.T) {
	rt := newRoutingTable(KeyOfString("self"), 8)
	rt.update(mkContact(1))
	if got := rt.closest(KeyOfString("t"), 10); len(got) != 1 {
		t.Fatalf("closest = %d contacts, want 1", len(got))
	}
}
