package dht

import (
	"context"
	"errors"
	"testing"

	"repro/internal/netsim"
)

// entryFailed reports the failed flag of id in n's routing table, and
// whether the contact is present at all.
func entryFailed(n *Node, id Key) (failed, present bool) {
	n.rt.mu.Lock()
	defer n.rt.mu.Unlock()
	for i := range n.rt.buckets {
		for _, e := range n.rt.buckets[i].entries {
			if e.c.ID == id {
				return e.failed, true
			}
		}
	}
	return false, false
}

func TestPartitionHealMidLookup(t *testing.T) {
	net, nodes := buildSwarm(t, 16, DefaultConfig())
	key := KeyOfString("heal-me")
	if _, _, err := nodes[1].Put(key, []byte("payload"), 1); err != nil {
		t.Fatal(err)
	}

	// Isolate the reader, then run an iterative lookup whose query
	// callback heals the partition after the first failure — simulating
	// the network healing while the lookup is still in flight.
	reader := nodes[10]
	net.SetPartition(map[netsim.NodeID]int{reader.Self().Addr: 1})

	failures, healed := 0, false
	var val []byte
	_, _, err := reader.iterativeLookup(context.Background(), key, func(c Contact) ([]Contact, bool, netsim.Cost) {
		resp, cc, err := reader.callCtx(context.Background(), c, findValueReq{From: reader.self, Key: key})
		if err != nil {
			failures++
			if !healed {
				net.SetPartition(nil)
				healed = true
			}
			return nil, false, cc
		}
		r := resp.(findValueResp)
		if r.Found && val == nil {
			val = r.Value
		}
		return r.Contacts, true, cc
	})
	if err != nil {
		t.Fatalf("lookup error after heal: %v", err)
	}
	if failures == 0 {
		t.Fatal("partition produced no failures — fixture did not exercise the heal path")
	}
	if string(val) != "payload" {
		t.Fatalf("lookup did not resume after heal: val = %q", val)
	}
}

func TestHealedContactRehabilitated(t *testing.T) {
	net := netsim.New(netsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.MaxRetries = 0 // fail fast so ErrPartitioned marks the contact
	a := NewNode(net, "a", cfg)
	b := NewNode(net, "b", cfg)
	a.rt.update(b.Self())

	net.SetPartition(map[netsim.NodeID]int{"b": 1})
	if _, err := a.Ping(b.Self()); !errors.Is(err, netsim.ErrPartitioned) {
		t.Fatalf("ping across partition: err = %v, want ErrPartitioned", err)
	}
	if failed, ok := entryFailed(a, b.Self().ID); !ok || !failed {
		t.Fatalf("contact failed=%v present=%v after partition ping, want failed and present", failed, ok)
	}

	// Heal: the next successful reply clears the failure flag.
	net.SetPartition(nil)
	if _, err := a.Ping(b.Self()); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
	if failed, ok := entryFailed(a, b.Self().ID); !ok || failed {
		t.Fatalf("contact failed=%v present=%v after heal ping, want rehabilitated", failed, ok)
	}
}

func TestRetryRecoversDroppedCalls(t *testing.T) {
	// Under a lossy network, retries should rescue a meaningful share of
	// pings that a no-retry node loses. Both configurations run on their
	// own identically-seeded networks, so the underlying drop draws match.
	attempt := func(maxRetries int) int {
		net := netsim.New(netsim.DefaultConfig())
		cfg := DefaultConfig()
		cfg.MaxRetries = maxRetries
		a := NewNode(net, "a", cfg)
		b := NewNode(net, "b", cfg)
		net.SetDropRate(0.4)
		ok := 0
		for i := 0; i < 100; i++ {
			if _, err := a.Ping(b.Self()); err == nil {
				ok++
			}
		}
		return ok
	}
	bare, retried := attempt(0), attempt(3)
	if retried <= bare {
		t.Fatalf("retries did not help: %d successes without vs %d with", bare, retried)
	}
	// 40% drop: bare ≈ 60/100; three retries ≈ 1-0.4^4 ≈ 97/100.
	if retried < 90 {
		t.Fatalf("retried successes = %d/100, want >= 90", retried)
	}
}

func TestRetryBackoffAccountedAndDeterministic(t *testing.T) {
	run := func() netsim.Cost {
		net := netsim.New(netsim.DefaultConfig())
		cfg := DefaultConfig()
		cfg.MaxRetries = 3
		a := NewNode(net, "a", cfg)
		b := NewNode(net, "b", cfg)
		net.SetDropRate(1.0) // every attempt fails: 4 attempts, 3 backoffs
		_, cost, err := a.callCtx(context.Background(), b.Self(), pingReq{From: a.Self()})
		if !errors.Is(err, netsim.ErrDropped) {
			t.Fatalf("err = %v, want ErrDropped", err)
		}
		return cost
	}
	c1, c2 := run(), run()
	if c1 != c2 {
		t.Fatalf("retry cost nondeterministic: %+v vs %+v", c1, c2)
	}
	if c1.Msgs != 4 {
		t.Fatalf("msgs = %d, want 4 (one per attempt)", c1.Msgs)
	}
	// Backoff latency must be present on top of the four failed-call
	// charges: base 25ms + 50ms + 100ms (±25% jitter) beyond wire time.
	base := netsim.DefaultConfig().BaseLatency
	if c1.Latency <= 4*2*base {
		t.Fatalf("latency %v does not include backoff (wire alone = %v)", c1.Latency, 4*2*base)
	}
}

func TestCancelledCallDoesNotMarkFailed(t *testing.T) {
	net := netsim.New(netsim.DefaultConfig())
	a := NewNode(net, "a", DefaultConfig())
	b := NewNode(net, "b", DefaultConfig())
	a.rt.update(b.Self())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := a.callCtx(ctx, b.Self(), pingReq{From: a.Self()}); !errors.Is(err, netsim.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if failed, ok := entryFailed(a, b.Self().ID); !ok || failed {
		t.Fatalf("cancelled call poisoned the table: failed=%v present=%v", failed, ok)
	}
}
