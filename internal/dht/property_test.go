package dht

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/xrand"
)

// Property: for any set of keys and values, every value put into a
// bootstrapped swarm is retrievable from every live node, and the
// highest sequence always wins.
func TestPutGetRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nKeysRaw uint8) bool {
		nKeys := int(nKeysRaw%8) + 1
		rng := xrand.New(seed)

		net := netsim.New(netsim.DefaultConfig())
		nodes := make([]*Node, 12)
		for i := range nodes {
			nodes[i] = NewNode(net, netsim.NodeID(fmt.Sprintf("p%02d", i)), DefaultConfig())
		}
		for _, nd := range nodes[1:] {
			nd.Bootstrap([]Contact{nodes[0].Self()})
		}
		for _, nd := range nodes {
			nd.Bootstrap([]Contact{nodes[0].Self()})
		}

		type record struct {
			key Key
			val []byte
			seq uint64
		}
		var records []record
		for k := 0; k < nKeys; k++ {
			key := KeyOfString(fmt.Sprintf("key-%d-%d", seed, k))
			// Write 1-3 versions from random writers.
			versions := 1 + rng.Intn(3)
			var last []byte
			var lastSeq uint64
			for v := 1; v <= versions; v++ {
				val := []byte(fmt.Sprintf("val-%d-%d-%d", seed, k, v))
				writer := nodes[rng.Intn(len(nodes))]
				if _, _, err := writer.Put(key, val, uint64(v)); err != nil {
					return false
				}
				last, lastSeq = val, uint64(v)
			}
			records = append(records, record{key: key, val: last, seq: lastSeq})
		}
		for _, rec := range records {
			reader := nodes[rng.Intn(len(nodes))]
			got, seq, _, err := reader.Get(rec.key)
			if err != nil || string(got) != string(rec.val) || seq != rec.seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: GetImmutable always agrees with Get for write-once records.
func TestImmutableGetAgreesProperty(t *testing.T) {
	net := netsim.New(netsim.DefaultConfig())
	nodes := make([]*Node, 16)
	for i := range nodes {
		nodes[i] = NewNode(net, netsim.NodeID(fmt.Sprintf("q%02d", i)), DefaultConfig())
	}
	for _, nd := range nodes[1:] {
		nd.Bootstrap([]Contact{nodes[0].Self()})
	}
	for _, nd := range nodes {
		nd.Bootstrap([]Contact{nodes[0].Self()})
	}
	rng := xrand.New(7)
	for i := 0; i < 20; i++ {
		key := KeyOfString(fmt.Sprintf("imm-%d", i))
		val := []byte(fmt.Sprintf("content-%d", i))
		if _, _, err := nodes[rng.Intn(len(nodes))].Put(key, val, 0); err != nil {
			t.Fatal(err)
		}
		reader := nodes[rng.Intn(len(nodes))]
		a, _, _, errA := reader.Get(key)
		b, _, errB := reader.GetImmutable(key)
		if errA != nil || errB != nil {
			t.Fatalf("key %d: errs %v %v", i, errA, errB)
		}
		if string(a) != string(b) {
			t.Fatalf("key %d: Get %q != GetImmutable %q", i, a, b)
		}
	}
}

// Property: lookup message count stays logarithmic-ish in swarm size.
func TestLookupCostLogarithmic(t *testing.T) {
	cost := func(n int) int {
		net := netsim.New(netsim.DefaultConfig())
		nodes := make([]*Node, n)
		for i := range nodes {
			nodes[i] = NewNode(net, netsim.NodeID(fmt.Sprintf("n%04d", i)), DefaultConfig())
		}
		for _, nd := range nodes[1:] {
			nd.Bootstrap([]Contact{nodes[0].Self()})
		}
		for _, nd := range nodes {
			nd.Bootstrap([]Contact{nodes[0].Self()})
		}
		key := KeyOfString("probe")
		nodes[1].Put(key, []byte("x"), 1)
		total := 0
		for i := 0; i < 10; i++ {
			_, _, c, err := nodes[2+i].Get(key)
			if err != nil {
				t.Fatal(err)
			}
			total += c.Msgs
		}
		return total
	}
	small, large := cost(16), cost(256)
	// 16x nodes: allow at most ~4x messages (true growth is ~log n).
	if large > 4*small {
		t.Fatalf("lookup cost grew superlogarithmically: %d → %d msgs", small, large)
	}
}
