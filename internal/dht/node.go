package dht

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/netsim"
)

// Errors returned by DHT operations.
var (
	ErrNotFound   = errors.New("dht: value not found")
	ErrNoContacts = errors.New("dht: routing table is empty")
)

// Config tunes the Kademlia parameters.
type Config struct {
	// K is the bucket size and replication factor (paper-standard 20; the
	// simulations default to 8 to keep swarms light).
	K int
	// Alpha is the lookup concurrency.
	Alpha int
	// MaxProvidersPerKey bounds the provider set stored per key.
	MaxProvidersPerKey int
	// MaxRetries is how many extra attempts a single RPC gets when the
	// failure is transient (netsim.Retryable): dropped messages and shed
	// requests are retried with backoff, structural failures (node down,
	// partition) fail fast. 0 disables retries.
	MaxRetries int
	// RetryBackoff is the base simulated-time backoff between attempts;
	// attempt i waits RetryBackoff<<i, jittered ±25% deterministically
	// from the (caller, target, attempt) triple.
	RetryBackoff time.Duration
}

// DefaultConfig returns the simulation defaults.
func DefaultConfig() Config {
	return Config{K: 8, Alpha: 3, MaxProvidersPerKey: 16, MaxRetries: 2, RetryBackoff: 25 * time.Millisecond}
}

type storedValue struct {
	value []byte
	seq   uint64
}

// Node is one DHT participant. It registers itself as the handler for its
// network address. Safe for concurrent use.
type Node struct {
	cfg  Config
	self Contact
	net  *netsim.Network
	rt   *routingTable

	mu        sync.Mutex
	values    map[Key]storedValue
	providers map[Key]map[netsim.NodeID]Contact

	// learnMu guards deferred inbound-contact learning. Every inbound RPC
	// teaches the handler its caller's contact; applied inline, that
	// mutates the routing table mid-request, so when several callers hit
	// the same node concurrently, whether one caller's contact is in the
	// table by the time a sibling's FIND_NODE is answered depends on
	// goroutine interleaving — and so does the sibling's lookup path and
	// cost. The round engine defers learning on every node around its
	// parallel waves: contacts queue here and FlushLearning applies them
	// in address order afterwards, making each wave's responses a pure
	// function of the table state the wave started with.
	learnMu      sync.Mutex
	deferLearn   bool
	pendingLearn map[netsim.NodeID]Contact
}

// NewNode creates a DHT node bound to addr on the network. Its keyspace ID
// is the hash of the address.
func NewNode(net *netsim.Network, addr netsim.NodeID, cfg Config) *Node {
	if cfg.K <= 0 {
		cfg.K = 8
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 3
	}
	if cfg.MaxProvidersPerKey <= 0 {
		cfg.MaxProvidersPerKey = 16
	}
	if cfg.MaxRetries > 0 && cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	n := &Node{
		cfg:       cfg,
		self:      Contact{ID: KeyOfString(string(addr)), Addr: addr},
		net:       net,
		rt:        nil,
		values:    make(map[Key]storedValue),
		providers: make(map[Key]map[netsim.NodeID]Contact),
	}
	n.rt = newRoutingTable(n.self.ID, cfg.K)
	net.Register(addr, n.handle)
	return n
}

// Self returns this node's contact record.
func (n *Node) Self() Contact { return n.self }

// TableSize returns the number of contacts in the routing table.
func (n *Node) TableSize() int { return n.rt.size() }

// SetDeferLearning switches inbound-RPC contact learning between inline
// (the default) and deferred. While deferred, contacts observed on
// inbound RPCs queue instead of entering the routing table, so the
// node's FIND_NODE/FIND_VALUE answers stay fixed for the duration of a
// concurrent wave regardless of which caller arrives first. Outbound
// learning (a caller refreshing its own table after a successful call)
// is unaffected: that order is fixed by the caller's own call sequence.
func (n *Node) SetDeferLearning(on bool) {
	n.learnMu.Lock()
	n.deferLearn = on
	n.learnMu.Unlock()
}

// FlushLearning applies every queued inbound contact to the routing
// table in address order — deterministic no matter the arrival
// interleaving — and clears the queue.
func (n *Node) FlushLearning() {
	n.learnMu.Lock()
	pending := n.pendingLearn
	n.pendingLearn = nil
	n.learnMu.Unlock()
	if len(pending) == 0 {
		return
	}
	addrs := make([]netsim.NodeID, 0, len(pending))
	for a := range pending {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		n.rt.update(pending[a])
	}
}

// learn records a contact observed on an inbound RPC: inline normally,
// queued while a parallel wave has learning deferred.
func (n *Node) learn(c Contact) {
	n.learnMu.Lock()
	if n.deferLearn {
		if n.pendingLearn == nil {
			n.pendingLearn = make(map[netsim.NodeID]Contact)
		}
		n.pendingLearn[c.Addr] = c
		n.learnMu.Unlock()
		return
	}
	n.learnMu.Unlock()
	n.rt.update(c)
}

// HandleRPC dispatches an inbound DHT RPC. It is exported so higher layers
// (block exchange, QueenBee) can register a combined handler on the same
// network address and delegate DHT traffic here.
func (n *Node) HandleRPC(from netsim.NodeID, req any) (any, error) {
	return n.handle(from, req)
}

// handle dispatches an inbound RPC.
func (n *Node) handle(from netsim.NodeID, req any) (any, error) {
	switch m := req.(type) {
	case pingReq:
		n.learn(m.From)
		return pingResp{From: n.self}, nil
	case findNodeReq:
		n.learn(m.From)
		return findNodeResp{Contacts: n.rt.closest(m.Target, n.cfg.K)}, nil
	case storeReq:
		n.learn(m.From)
		n.mu.Lock()
		cur, ok := n.values[m.Key]
		if !ok || m.Seq >= cur.seq {
			n.values[m.Key] = storedValue{value: m.Value, seq: m.Seq}
		}
		n.mu.Unlock()
		return storeResp{OK: true}, nil
	case findValueReq:
		n.learn(m.From)
		n.mu.Lock()
		sv, ok := n.values[m.Key]
		n.mu.Unlock()
		// Replica holders also return closer contacts: versioned reads
		// continue to the k closest and take the highest sequence.
		closer := n.rt.closest(m.Key, n.cfg.K)
		if ok {
			return findValueResp{Found: true, Value: sv.value, Seq: sv.seq, Contacts: closer}, nil
		}
		return findValueResp{Contacts: closer}, nil
	case addProviderReq:
		n.learn(m.From)
		n.mu.Lock()
		set := n.providers[m.Key]
		if set == nil {
			set = make(map[netsim.NodeID]Contact)
			n.providers[m.Key] = set
		}
		if len(set) < n.cfg.MaxProvidersPerKey {
			set[m.Provider.Addr] = m.Provider
		}
		n.mu.Unlock()
		return addProviderResp{OK: true}, nil
	case getProvidersReq:
		n.learn(m.From)
		n.mu.Lock()
		var provs []Contact
		for _, c := range n.providers[m.Key] {
			provs = append(provs, c)
		}
		n.mu.Unlock()
		sort.Slice(provs, func(i, j int) bool { return provs[i].Addr < provs[j].Addr })
		return getProvidersResp{
			Providers: provs,
			Contacts:  n.rt.closest(m.Key, n.cfg.K),
		}, nil
	default:
		return nil, fmt.Errorf("dht: unknown message %T", req)
	}
}

// Bootstrap seeds the routing table with known contacts and performs a
// self-lookup to populate nearby buckets. Returns the lookup cost.
func (n *Node) Bootstrap(seeds []Contact) netsim.Cost {
	for _, c := range seeds {
		if c.Addr != n.self.Addr {
			n.rt.update(c)
		}
	}
	_, cost := n.lookupNodes(n.self.ID)
	return cost
}

// call performs one RPC and maintains the routing table on success or
// failure.
func (n *Node) call(to Contact, req any) (any, netsim.Cost, error) {
	return n.callCtx(context.Background(), to, req)
}

// callCtx is call with a request lifecycle. A call short-circuited by
// cancellation never reached the peer, so — unlike a genuine RPC
// failure — it does NOT mark the contact failed: abandoning a query
// must not poison the routing table.
//
// Transient failures (netsim.Retryable: a dropped message, a shed
// request) get up to cfg.MaxRetries extra attempts, each preceded by a
// simulated exponential backoff with deterministic jitter. The backoff
// is charged as latency on the accumulated cost — waiting is wall-clock
// the caller pays — but adds no bytes or messages (the network already
// charged each failed attempt's wire cost). Structural failures (node
// down, partition, unknown node) fail fast: retrying cannot help until
// the world changes, and only then is the contact marked failed.
func (n *Node) callCtx(ctx context.Context, to Contact, req any) (any, netsim.Cost, error) {
	var total netsim.Cost
	for attempt := 0; ; attempt++ {
		resp, cost, err := n.net.CallCtx(ctx, n.self.Addr, to.Addr, req)
		total = total.Seq(cost)
		if err == nil {
			n.rt.update(to)
			return resp, total, nil
		}
		if errors.Is(err, netsim.ErrCancelled) {
			return nil, total, err
		}
		if !netsim.Retryable(err) || attempt >= n.cfg.MaxRetries {
			n.rt.markFailed(to.ID)
			return nil, total, err
		}
		total = total.Seq(netsim.Cost{Latency: n.retryBackoff(to, attempt)})
	}
}

// retryBackoff returns the simulated wait before retry number attempt:
// exponential base doubling with a deterministic jitter factor in
// [0.75, 1.25) derived by hashing the (caller, target, attempt) triple.
// Pure hashing — no RNG stream is consumed — so retries never perturb
// the per-link draw sequences other calls depend on.
func (n *Node) retryBackoff(to Contact, attempt int) time.Duration {
	base := n.cfg.RetryBackoff << uint(attempt)
	h := uint64(14695981039346656037) // FNV-64 offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(string(n.self.Addr))
	mix("\x00")
	mix(string(to.Addr))
	mix(fmt.Sprintf("\x00%d", attempt))
	factor := 0.75 + 0.5*float64(h>>11)/(1<<53)
	return time.Duration(float64(base) * factor)
}

// Ping checks liveness of a contact.
func (n *Node) Ping(to Contact) (netsim.Cost, error) {
	_, cost, err := n.call(to, pingReq{From: n.self})
	return cost, err
}

// lookupNodes performs an iterative FIND_NODE toward target and returns
// the k closest live contacts found. Queries within a round are accounted
// as parallel; rounds are sequential.
func (n *Node) lookupNodes(target Key) ([]Contact, netsim.Cost) {
	//detlint:ignore errsink iterativeLookup only errors on context cancellation, impossible with context.Background
	contacts, cost, _ := n.iterativeLookup(context.Background(), target, func(c Contact) ([]Contact, bool, netsim.Cost) {
		resp, cost, err := n.call(c, findNodeReq{From: n.self, Target: target})
		if err != nil {
			return nil, false, cost
		}
		return resp.(findNodeResp).Contacts, true, cost
	})
	return contacts, cost
}

// lookupState tracks per-contact progress during an iterative lookup.
type lookupState struct {
	queried bool
	failed  bool
}

// iterativeLookup is the shared Kademlia lookup loop. query returns the
// closer contacts a peer reported and whether the peer responded.
//
// The loop checks ctx before issuing each RPC: once the context is done
// the remaining queries of the round — and every later round — are
// abandoned, the cost accumulated so far is returned (the partial wave
// that actually ran), and the error wraps netsim.ErrCancelled. Abandoned
// peers are never marked failed.
func (n *Node) iterativeLookup(ctx context.Context, target Key, query func(Contact) ([]Contact, bool, netsim.Cost)) ([]Contact, netsim.Cost, error) {
	shortlist := n.rt.closest(target, n.cfg.K)
	states := make(map[Key]*lookupState, len(shortlist))
	for _, c := range shortlist {
		states[c.ID] = &lookupState{}
	}
	var total netsim.Cost
	var lookupErr error

	// cancelled reports (and wraps) a done context. Checked before every
	// RPC the loop issues, so an abandoned lookup stops at a call
	// boundary with the partial cost it actually paid.
	cancelled := func() bool {
		if lookupErr != nil {
			return true
		}
		if ctx == nil {
			return false
		}
		if cerr := ctx.Err(); cerr != nil {
			lookupErr = fmt.Errorf("%w: %w", netsim.ErrCancelled, cerr)
			return true
		}
		return false
	}

	insert := func(c Contact) {
		if c.ID == n.self.ID {
			return
		}
		if _, ok := states[c.ID]; ok {
			return
		}
		states[c.ID] = &lookupState{}
		shortlist = append(shortlist, c)
	}

	sortShortlist := func() {
		sort.Slice(shortlist, func(i, j int) bool {
			return DistanceLess(target, shortlist[i].ID, shortlist[j].ID)
		})
	}

	for {
		sortShortlist()
		// Pick up to alpha closest unqueried live candidates.
		var round []Contact
		for _, c := range shortlist {
			st := states[c.ID]
			if st.queried || st.failed {
				continue
			}
			round = append(round, c)
			if len(round) == n.cfg.Alpha {
				break
			}
		}
		if len(round) == 0 {
			// Exhausted: every known candidate was queried or failed. Under
			// churn the initial k-sized shortlist can die wholesale; before
			// giving up, widen it from the rest of the routing table so the
			// lookup falls back to farther live contacts. Healthy lookups
			// never reach this with unqueried table entries left, so the
			// widening changes nothing when no node has failed.
			if countLive(states) >= n.cfg.K || !widen(n.rt, target, states, &shortlist) {
				break
			}
			continue
		}
		var roundCost netsim.Cost
		progressed := false
		prevBest := bestDistance(target, shortlist, states)
		for _, c := range round {
			if cancelled() {
				break
			}
			st := states[c.ID]
			st.queried = true
			closer, ok, cost := query(c)
			roundCost = roundCost.Par(cost)
			if !ok {
				st.failed = true
				continue
			}
			for _, cc := range closer {
				insert(cc)
			}
		}
		total = total.Seq(roundCost)
		if lookupErr != nil {
			return nil, total, lookupErr
		}
		sortShortlist()
		if nowBest := bestDistance(target, shortlist, states); nowBest.Less(prevBest) {
			progressed = true
		}
		// Termination: when a round yields no closer node, query any
		// remaining unqueried nodes among the k closest, then stop.
		if !progressed {
			var tail []Contact
			count := 0
			for _, c := range shortlist {
				if count >= n.cfg.K {
					break
				}
				st := states[c.ID]
				if st.failed {
					continue
				}
				count++
				if !st.queried {
					tail = append(tail, c)
				}
			}
			if len(tail) == 0 {
				break
			}
			var tailCost netsim.Cost
			for _, c := range tail {
				if cancelled() {
					break
				}
				st := states[c.ID]
				st.queried = true
				closer, ok, cost := query(c)
				tailCost = tailCost.Par(cost)
				if !ok {
					st.failed = true
					continue
				}
				for _, cc := range closer {
					insert(cc)
				}
			}
			total = total.Seq(tailCost)
			if lookupErr != nil {
				return nil, total, lookupErr
			}
		}
	}

	sortShortlist()
	var result []Contact
	for _, c := range shortlist {
		st := states[c.ID]
		if st.failed || !st.queried {
			continue
		}
		result = append(result, c)
		if len(result) == n.cfg.K {
			break
		}
	}
	return result, total, nil
}

// countLive counts contacts queried successfully so far.
func countLive(states map[Key]*lookupState) int {
	live := 0
	for _, st := range states {
		if st.queried && !st.failed {
			live++
		}
	}
	return live
}

// widen refills an exhausted shortlist with routing-table contacts not
// yet tried, reporting whether it added any. Only reached when failures
// have eaten the original shortlist (see the lookup loop).
func widen(rt *routingTable, target Key, states map[Key]*lookupState, shortlist *[]Contact) bool {
	added := false
	for _, c := range rt.closest(target, 1<<20) {
		if _, ok := states[c.ID]; ok {
			continue
		}
		states[c.ID] = &lookupState{}
		*shortlist = append(*shortlist, c)
		added = true
	}
	return added
}

// bestDistance returns the XOR distance of the closest non-failed contact
// in a distance-sorted shortlist.
func bestDistance(target Key, list []Contact, states map[Key]*lookupState) Key {
	for _, c := range list {
		if st := states[c.ID]; st != nil && st.failed {
			continue
		}
		return c.ID.XOR(target)
	}
	var max Key
	for i := range max {
		max[i] = 0xFF
	}
	return max
}

// Put stores a versioned value on the k closest nodes to key. The writer
// also keeps a local replica (when it already holds an older version, or
// when the swarm is empty) so its own later reads can never regress.
// It returns the number of replicas written and the total cost.
func (n *Node) Put(key Key, value []byte, seq uint64) (int, netsim.Cost, error) {
	n.mu.Lock()
	if cur, ok := n.values[key]; ok && seq >= cur.seq {
		n.values[key] = storedValue{value: value, seq: seq}
	}
	n.mu.Unlock()

	closest, cost := n.lookupNodes(key)
	if len(closest) == 0 {
		// A lone node stores locally so single-node setups still work.
		n.mu.Lock()
		cur, ok := n.values[key]
		if !ok || seq >= cur.seq {
			n.values[key] = storedValue{value: value, seq: seq}
		}
		n.mu.Unlock()
		return 1, cost, nil
	}
	stored := 0
	var storeCost netsim.Cost
	for _, c := range closest {
		_, cc, err := n.call(c, storeReq{From: n.self, Key: key, Value: value, Seq: seq})
		storeCost = storeCost.Par(cc)
		if err == nil {
			stored++
		}
	}
	cost = cost.Seq(storeCost)
	if stored == 0 {
		return 0, cost, fmt.Errorf("dht: no replicas stored for %s", key.Short())
	}
	return stored, cost, nil
}

// Get retrieves the highest-sequence value for key via iterative
// FIND_VALUE. Because records are versioned (mutable pointers like index
// shard lists), the lookup does NOT stop at the first replica: it queries
// through to the k closest nodes and returns the highest sequence seen —
// a quorum-style read that tolerates stale replicas. The local replica
// (if any) participates as one more vote.
func (n *Node) Get(key Key) ([]byte, uint64, netsim.Cost, error) {
	return n.GetCtx(context.Background(), key)
}

// GetCtx is Get with a request lifecycle: once ctx is done, the
// remaining lookup rounds are abandoned and the error wraps
// netsim.ErrCancelled. A quorum read cut short mid-lookup fails even
// when some replica already answered — a partial quorum is not a read —
// and the returned cost is the partial wave that actually ran.
func (n *Node) GetCtx(ctx context.Context, key Key) ([]byte, uint64, netsim.Cost, error) {
	var (
		bestVal  []byte
		bestSeq  uint64
		anyValue bool
	)
	n.mu.Lock()
	if sv, ok := n.values[key]; ok {
		bestVal, bestSeq, anyValue = sv.value, sv.seq, true
	}
	n.mu.Unlock()

	_, cost, err := n.iterativeLookup(ctx, key, func(c Contact) ([]Contact, bool, netsim.Cost) {
		resp, cc, err := n.callCtx(ctx, c, findValueReq{From: n.self, Key: key})
		if err != nil {
			return nil, false, cc
		}
		r := resp.(findValueResp)
		if r.Found {
			if !anyValue || r.Seq > bestSeq {
				bestVal, bestSeq = r.Value, r.Seq
				anyValue = true
			}
			// A replica holder still reports closer contacts so the
			// lookup can keep converging on the k closest.
			return r.Contacts, true, cc
		}
		return r.Contacts, true, cc
	})
	if err != nil {
		return nil, 0, cost, err
	}
	if !anyValue {
		return nil, 0, cost, ErrNotFound
	}
	return bestVal, bestSeq, cost, nil
}

// GetImmutable retrieves a value that can never change (content-addressed
// records): the lookup short-circuits on the first replica found, which
// is safe because the caller verifies the content hash. Use Get for
// versioned (mutable) records.
func (n *Node) GetImmutable(key Key) ([]byte, netsim.Cost, error) {
	return n.GetImmutableCtx(context.Background(), key)
}

// GetImmutableCtx is GetImmutable with a request lifecycle: once ctx is
// done the remaining lookup rounds are abandoned with the partial cost.
// A replica found before the cancel still wins — the bytes were already
// on the wire, and the caller's hash check vouches for them.
func (n *Node) GetImmutableCtx(ctx context.Context, key Key) ([]byte, netsim.Cost, error) {
	n.mu.Lock()
	if sv, ok := n.values[key]; ok {
		n.mu.Unlock()
		return sv.value, netsim.Cost{}, nil
	}
	n.mu.Unlock()

	var (
		val   []byte
		found bool
	)
	_, cost, err := n.iterativeLookup(ctx, key, func(c Contact) ([]Contact, bool, netsim.Cost) {
		if found {
			return nil, true, netsim.Cost{}
		}
		resp, cc, err := n.callCtx(ctx, c, findValueReq{From: n.self, Key: key})
		if err != nil {
			return nil, false, cc
		}
		r := resp.(findValueResp)
		if r.Found {
			val, found = r.Value, true
			return nil, true, cc
		}
		return r.Contacts, true, cc
	})
	if found {
		return val, cost, nil
	}
	if err != nil {
		return nil, cost, err
	}
	return nil, cost, ErrNotFound
}

// Provide announces this node as a provider for key on the k closest
// nodes.
func (n *Node) Provide(key Key) (int, netsim.Cost, error) {
	closest, cost := n.lookupNodes(key)
	if len(closest) == 0 {
		n.mu.Lock()
		set := n.providers[key]
		if set == nil {
			set = make(map[netsim.NodeID]Contact)
			n.providers[key] = set
		}
		set[n.self.Addr] = n.self
		n.mu.Unlock()
		return 1, cost, nil
	}
	announced := 0
	var annCost netsim.Cost
	for _, c := range closest {
		_, cc, err := n.call(c, addProviderReq{From: n.self, Key: key, Provider: n.self})
		annCost = annCost.Par(cc)
		if err == nil {
			announced++
		}
	}
	cost = cost.Seq(annCost)
	if announced == 0 {
		return 0, cost, fmt.Errorf("dht: provider announce failed for %s", key.Short())
	}
	return announced, cost, nil
}

// FindProviders returns providers for key discovered via iterative lookup.
func (n *Node) FindProviders(key Key, limit int) ([]Contact, netsim.Cost, error) {
	// Local provider records answer immediately.
	n.mu.Lock()
	var local []Contact
	for _, c := range n.providers[key] {
		local = append(local, c)
	}
	n.mu.Unlock()
	if len(local) >= limit && limit > 0 {
		sort.Slice(local, func(i, j int) bool { return local[i].Addr < local[j].Addr })
		return local[:limit], netsim.Cost{}, nil
	}

	seen := make(map[netsim.NodeID]Contact)
	for _, c := range local {
		seen[c.Addr] = c
	}
	enough := func() bool { return limit > 0 && len(seen) >= limit }

	//detlint:ignore errsink iterativeLookup only errors on context cancellation, impossible with context.Background
	_, cost, _ := n.iterativeLookup(context.Background(), key, func(c Contact) ([]Contact, bool, netsim.Cost) {
		if enough() {
			return nil, true, netsim.Cost{}
		}
		resp, cc, err := n.call(c, getProvidersReq{From: n.self, Key: key})
		if err != nil {
			return nil, false, cc
		}
		r := resp.(getProvidersResp)
		for _, p := range r.Providers {
			seen[p.Addr] = p
		}
		return r.Contacts, true, cc
	})

	if len(seen) == 0 {
		return nil, cost, ErrNotFound
	}
	out := make([]Contact, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, cost, nil
}

// RefreshBuckets performs lookups toward deterministic pseudo-random
// targets, populating distant k-buckets — the periodic bucket refresh of
// standard Kademlia. Large swarms need it so that writer and reader
// lookups converge on the same closest nodes; without it, sparse routing
// tables can make a reader terminate before discovering a replica
// holder.
func (n *Node) RefreshBuckets(rounds int) netsim.Cost {
	var total netsim.Cost
	for i := 0; i < rounds; i++ {
		target := KeyOfString(fmt.Sprintf("bucket-refresh:%s:%d", n.self.Addr, i))
		_, cost := n.lookupNodes(target)
		total = total.Seq(cost)
	}
	return total
}

// Refresh re-replicates every locally stored value and provider record to
// the current k closest nodes. Experiments and the maintenance loop call
// this after churn. Keys are republished in sorted order so the network
// traffic (and its RNG draws) is identical across runs.
func (n *Node) Refresh() netsim.Cost {
	n.mu.Lock()
	keys := make([]Key, 0, len(n.values))
	vals := make(map[Key]storedValue, len(n.values))
	for k, v := range n.values {
		keys = append(keys, k)
		vals[k] = v
	}
	n.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i][:], keys[j][:]) < 0 })
	var total netsim.Cost
	for _, k := range keys {
		v := vals[k]
		//detlint:ignore errsink best-effort republish; a failed Put leaves the record for the next Refresh round
		_, cost, _ := n.Put(k, v.value, v.seq)
		total = total.Seq(cost)
	}
	return total
}

// LocalValues returns the number of values held locally.
func (n *Node) LocalValues() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.values)
}

// StoreLocal injects a value directly into this node's local store,
// bypassing the network. Used to model malicious replicas in E6/E11.
func (n *Node) StoreLocal(key Key, value []byte, seq uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.values[key] = storedValue{value: value, seq: seq}
}
