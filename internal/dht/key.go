// Package dht implements a Kademlia distributed hash table over the
// simulated network. It is the routing substrate the paper assumes when it
// hosts QueenBee's inverted index and page ranks "in a decentralized
// storage (e.g., IPFS)": 160-bit XOR keyspace, k-buckets, iterative
// FIND_NODE / FIND_VALUE lookups, k-replicated STORE, and provider records.
package dht

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/bits"
)

// KeySize is the keyspace width in bytes (160 bits, as in Kademlia).
const KeySize = 20

// Key is a point in the 160-bit XOR keyspace. Node IDs and content keys
// share the space.
type Key [KeySize]byte

// KeyOf hashes arbitrary bytes into the keyspace (SHA-256 truncated).
func KeyOf(data []byte) Key {
	sum := sha256.Sum256(data)
	var k Key
	copy(k[:], sum[:KeySize])
	return k
}

// KeyOfString hashes a string into the keyspace.
func KeyOfString(s string) Key { return KeyOf([]byte(s)) }

// String returns the hex form of the key.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns an 8-hex-digit prefix for logs.
func (k Key) Short() string { return hex.EncodeToString(k[:4]) }

// XOR returns the coordinate-wise XOR distance vector between two keys.
func (k Key) XOR(o Key) Key {
	var d Key
	for i := range k {
		d[i] = k[i] ^ o[i]
	}
	return d
}

// Cmp compares two keys as big-endian integers: -1, 0 or +1.
func (k Key) Cmp(o Key) int { return bytes.Compare(k[:], o[:]) }

// Less reports whether k < o as big-endian integers.
func (k Key) Less(o Key) bool { return k.Cmp(o) < 0 }

// IsZero reports whether the key is all zeros.
func (k Key) IsZero() bool { return k == Key{} }

// LeadingZeros returns the number of leading zero bits, in [0, 160].
func (k Key) LeadingZeros() int {
	n := 0
	for _, b := range k {
		if b == 0 {
			n += 8
			continue
		}
		n += bits.LeadingZeros8(b)
		break
	}
	return n
}

// BucketIndex returns the k-bucket index for a contact at XOR distance d
// from the local node: 159 for the farthest half of the space, 0 for the
// nearest non-zero distance. Returns -1 for distance zero (self).
func BucketIndex(d Key) int {
	lz := d.LeadingZeros()
	if lz >= KeySize*8 {
		return -1
	}
	return KeySize*8 - 1 - lz
}

// DistanceLess reports whether a is closer to target than b under XOR.
func DistanceLess(target, a, b Key) bool {
	return a.XOR(target).Less(b.XOR(target))
}
