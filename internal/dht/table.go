package dht

import (
	"sort"
	"sync"

	"repro/internal/netsim"
)

// Contact identifies a remote DHT node: its keyspace ID and network
// address.
type Contact struct {
	ID   Key
	Addr netsim.NodeID
}

// contactWireSize approximates one contact on the wire (20B ID + address).
const contactWireSize = 40

// routingTable is a Kademlia k-bucket table. It never performs network
// I/O: eviction prefers contacts previously marked failed, otherwise the
// newcomer is dropped (the "old contacts are good contacts" heuristic),
// which keeps updates lock-cheap and deterministic.
type routingTable struct {
	mu      sync.Mutex
	self    Key
	bucketK int
	buckets [KeySize * 8]bucket
}

type bucket struct {
	entries []tableEntry // most recently seen last
}

type tableEntry struct {
	c      Contact
	failed bool
}

func newRoutingTable(self Key, bucketK int) *routingTable {
	if bucketK <= 0 {
		bucketK = 20
	}
	return &routingTable{self: self, bucketK: bucketK}
}

// update records that a contact was seen alive. It inserts the contact,
// refreshes its recency, or — if its bucket is full — replaces a failed
// entry, else drops it.
func (rt *routingTable) update(c Contact) {
	if c.ID == rt.self {
		return
	}
	idx := BucketIndex(rt.self.XOR(c.ID))
	if idx < 0 {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := &rt.buckets[idx]
	for i := range b.entries {
		if b.entries[i].c.ID == c.ID {
			// Move to tail (most recently seen) and clear failure flag.
			e := b.entries[i]
			e.failed = false
			e.c.Addr = c.Addr
			b.entries = append(append(b.entries[:i:i], b.entries[i+1:]...), e)
			return
		}
	}
	if len(b.entries) < rt.bucketK {
		b.entries = append(b.entries, tableEntry{c: c})
		return
	}
	for i := range b.entries {
		if b.entries[i].failed {
			b.entries = append(append(b.entries[:i:i], b.entries[i+1:]...), tableEntry{c: c})
			return
		}
	}
	// Bucket full of live contacts: drop the newcomer.
}

// markFailed flags a contact that did not respond; it becomes first in
// line for eviction.
func (rt *routingTable) markFailed(id Key) {
	idx := BucketIndex(rt.self.XOR(id))
	if idx < 0 {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := &rt.buckets[idx]
	for i := range b.entries {
		if b.entries[i].c.ID == id {
			b.entries[i].failed = true
			return
		}
	}
}

// closest returns up to n live-believed contacts closest to target.
func (rt *routingTable) closest(target Key, n int) []Contact {
	rt.mu.Lock()
	all := make([]Contact, 0, 64)
	for i := range rt.buckets {
		for _, e := range rt.buckets[i].entries {
			all = append(all, e.c)
		}
	}
	rt.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		return DistanceLess(target, all[i].ID, all[j].ID)
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// size returns the number of contacts in the table.
func (rt *routingTable) size() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := 0
	for i := range rt.buckets {
		n += len(rt.buckets[i].entries)
	}
	return n
}

// contacts returns every contact in the table (arbitrary order).
func (rt *routingTable) contacts() []Contact {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []Contact
	for i := range rt.buckets {
		for _, e := range rt.buckets[i].entries {
			out = append(out, e.c)
		}
	}
	return out
}
