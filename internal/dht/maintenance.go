package dht

import (
	"repro/internal/netsim"
)

// ProbeReplication counts how many of the k closest live nodes to key
// currently hold a replica. It is the maintenance loop's health check:
// a count below K means churn has eaten replicas and the key needs a
// republish or re-seed. The probe is direct — one FIND_VALUE per
// closest node after the lookup converges — so the count reflects what
// a quorum read would actually see. This node's own replica is not
// counted: maintenance cares about replicas that survive this node.
func (n *Node) ProbeReplication(key Key) (int, netsim.Cost) {
	closest, cost := n.lookupNodes(key)
	replicas := 0
	var probeCost netsim.Cost
	for _, c := range closest {
		if c.ID == n.self.ID {
			continue
		}
		resp, cc, err := n.call(c, findValueReq{From: n.self, Key: key})
		probeCost = probeCost.Par(cc)
		if err != nil {
			continue
		}
		if r, ok := resp.(findValueResp); ok && r.Found {
			replicas++
		}
	}
	return replicas, cost.Seq(probeCost)
}
