package dht

import (
	"testing"
	"testing/quick"
)

func TestKeyOfDeterministic(t *testing.T) {
	a := KeyOf([]byte("hello"))
	b := KeyOf([]byte("hello"))
	if a != b {
		t.Fatal("KeyOf not deterministic")
	}
	if a == KeyOf([]byte("world")) {
		t.Fatal("different inputs should hash differently")
	}
}

func TestKeyOfStringMatchesBytes(t *testing.T) {
	if KeyOfString("abc") != KeyOf([]byte("abc")) {
		t.Fatal("KeyOfString should equal KeyOf on same bytes")
	}
}

func TestXORSelfIsZero(t *testing.T) {
	k := KeyOf([]byte("x"))
	if !k.XOR(k).IsZero() {
		t.Fatal("k XOR k should be zero")
	}
}

func TestXORSymmetric(t *testing.T) {
	f := func(a, b []byte) bool {
		ka, kb := KeyOf(a), KeyOf(b)
		return ka.XOR(kb) == kb.XOR(ka)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeadingZeros(t *testing.T) {
	var k Key
	if k.LeadingZeros() != 160 {
		t.Fatalf("zero key LeadingZeros = %d, want 160", k.LeadingZeros())
	}
	k[0] = 0x80
	if k.LeadingZeros() != 0 {
		t.Fatalf("0x80.. LeadingZeros = %d, want 0", k.LeadingZeros())
	}
	k[0] = 0x01
	if k.LeadingZeros() != 7 {
		t.Fatalf("0x01.. LeadingZeros = %d, want 7", k.LeadingZeros())
	}
	k[0] = 0
	k[1] = 0x40
	if k.LeadingZeros() != 9 {
		t.Fatalf("0x0040.. LeadingZeros = %d, want 9", k.LeadingZeros())
	}
}

func TestBucketIndex(t *testing.T) {
	var d Key
	if BucketIndex(d) != -1 {
		t.Fatal("zero distance should map to -1")
	}
	d[0] = 0x80
	if got := BucketIndex(d); got != 159 {
		t.Fatalf("BucketIndex(0x80..) = %d, want 159", got)
	}
	d[0] = 0
	d[KeySize-1] = 0x01
	if got := BucketIndex(d); got != 0 {
		t.Fatalf("BucketIndex(..0x01) = %d, want 0", got)
	}
}

func TestDistanceLess(t *testing.T) {
	target := KeyOf([]byte("t"))
	if !DistanceLess(target, target, KeyOf([]byte("far"))) {
		t.Fatal("target itself should be closest")
	}
}

// Property: XOR distance satisfies the triangle-ish Kademlia identity
// d(a,b) = d(b,a) and d(a,a) = 0, and unidirectionality: for any a != b,
// exactly one ordering holds.
func TestXORMetricProperties(t *testing.T) {
	f := func(a, b []byte) bool {
		ka, kb := KeyOf(a), KeyOf(b)
		if ka == kb {
			return true
		}
		ab := ka.XOR(kb)
		if ab.IsZero() {
			return false
		}
		lessAB := DistanceLess(ka, kb, ka) // d(kb,ka) < d(ka,ka)=0 must be false
		return !lessAB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpAndLess(t *testing.T) {
	var a, b Key
	b[KeySize-1] = 1
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less ordering wrong")
	}
}

func TestStringForms(t *testing.T) {
	k := KeyOf([]byte("s"))
	if len(k.String()) != 40 {
		t.Fatalf("hex string length = %d, want 40", len(k.String()))
	}
	if len(k.Short()) != 8 {
		t.Fatalf("short length = %d, want 8", len(k.Short()))
	}
}
