// Package store implements the DWeb content substrate the paper assumes:
// an IPFS-like content-addressed block store. Every content piece is
// identified by the cryptographic hash of its bytes (tamper-proofing),
// large documents are chunked into a Merkle DAG, blocks replicate onto the
// peers that fetch them ("devices that retrieve web contents also serve
// their cached data to peer devices"), and providers are discovered
// through the DHT.
package store

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/dht"
)

// CID is a content identifier: the SHA-256 digest of a block's bytes.
type CID [32]byte

// CIDOf computes the content identifier of raw bytes.
func CIDOf(data []byte) CID { return sha256.Sum256(data) }

// String returns the hex form of the CID.
func (c CID) String() string { return hex.EncodeToString(c[:]) }

// Short returns an 8-hex-digit prefix for logs.
func (c CID) Short() string { return hex.EncodeToString(c[:4]) }

// IsZero reports whether the CID is unset.
func (c CID) IsZero() bool { return c == CID{} }

// Key maps the CID into the DHT keyspace (for provider records).
func (c CID) Key() dht.Key { return dht.KeyOf(c[:]) }

// Verify reports whether data hashes to this CID. This check is the
// mechanism behind the paper's "tamper-proof contents" claim: a peer that
// serves modified bytes is detected immediately.
func (c CID) Verify(data []byte) bool { return CIDOf(data) == c }
