package store

import (
	"bytes"
	"testing"

	"repro/internal/xrand"
)

// swarmingSwarm builds peers with swarming fetch enabled.
func swarmingSwarm(t *testing.T, n int) []*Peer {
	t.Helper()
	cfg := DefaultPeerConfig()
	cfg.Swarming = true
	_, peers := buildPeerSwarm(t, n, cfg)
	return peers
}

func TestSwarmingFetchRoundTrip(t *testing.T) {
	peers := swarmingSwarm(t, 16)
	rng := xrand.New(3)
	doc := make([]byte, 40_000) // ~10 chunks
	rng.Bytes(doc)
	root, _, err := peers[0].Add(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Two extra replicas so swarming has multiple sources.
	peers[1].Fetch(root)
	peers[2].Fetch(root)

	got, _, err := peers[9].Fetch(root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("swarming fetch corrupted the document")
	}
}

func TestSwarmingFasterThanSingleProvider(t *testing.T) {
	rng := xrand.New(4)
	doc := make([]byte, 200_000) // ~49 chunks: transfer-dominated
	rng.Bytes(doc)

	run := func(swarming bool) float64 {
		cfg := DefaultPeerConfig()
		cfg.Swarming = swarming
		_, peers := buildPeerSwarm(t, 16, cfg)
		root, _, err := peers[0].Add(doc)
		if err != nil {
			t.Fatal(err)
		}
		// Prime three replicas (single-provider mode ignores the extras).
		for i := 1; i <= 3; i++ {
			if _, _, err := peers[i].Fetch(root); err != nil {
				t.Fatal(err)
			}
		}
		_, cost, err := peers[10].Fetch(root)
		if err != nil {
			t.Fatal(err)
		}
		return cost.Latency.Seconds()
	}

	single := run(false)
	swarmed := run(true)
	if swarmed >= single {
		t.Fatalf("swarming (%.3fs) should beat single provider (%.3fs) on a large doc", swarmed, single)
	}
}

func TestSwarmingToleratesDeadProvider(t *testing.T) {
	cfg := DefaultPeerConfig()
	cfg.Swarming = true
	net, peers := buildPeerSwarm(t, 16, cfg)
	rng := xrand.New(5)
	doc := make([]byte, 40_000)
	rng.Bytes(doc)
	root, _, err := peers[0].Add(doc)
	if err != nil {
		t.Fatal(err)
	}
	peers[1].Fetch(root)
	peers[2].Fetch(root)
	// One replica dies after announcing.
	net.SetDown(peers[1].Addr(), true)

	got, _, err := peers[9].Fetch(root)
	if err != nil {
		t.Fatalf("fetch with dead provider: %v", err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("content mismatch")
	}
}

func TestSwarmingRejectsTamperedChunks(t *testing.T) {
	cfg := DefaultPeerConfig()
	cfg.Swarming = true
	_, peers := buildPeerSwarm(t, 12, cfg)
	rng := xrand.New(6)
	doc := make([]byte, 40_000)
	rng.Bytes(doc)
	root, _, err := peers[0].Add(doc)
	if err != nil {
		t.Fatal(err)
	}
	// A second replica with one corrupted chunk.
	peers[1].Fetch(root)
	_, blocks := ChunkDocument(doc, DefaultChunkSize)
	for cid := range blocks {
		if cid != root {
			peers[1].Blocks().Corrupt(cid, EncodeLeaf([]byte("BAD CHUNK")))
			break
		}
	}
	got, _, err := peers[8].Fetch(root)
	if err != nil {
		t.Fatalf("fetch should fall back to honest chunks: %v", err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("tampered chunk accepted")
	}
}

func TestSwarmingSingleChunkDoc(t *testing.T) {
	peers := swarmingSwarm(t, 10)
	root, _, err := peers[0].Add([]byte("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	peers[1].Fetch(root)
	got, _, err := peers[5].Fetch(root)
	if err != nil || string(got) != "tiny" {
		t.Fatalf("got %q, err %v", got, err)
	}
}
