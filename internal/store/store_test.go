package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dht"
	"repro/internal/netsim"
	"repro/internal/xrand"
)

func TestCIDVerify(t *testing.T) {
	data := []byte("content")
	cid := CIDOf(data)
	if !cid.Verify(data) {
		t.Fatal("Verify should accept original bytes")
	}
	if cid.Verify([]byte("tampered")) {
		t.Fatal("Verify should reject modified bytes")
	}
}

func TestCIDKeyDeterministic(t *testing.T) {
	a := CIDOf([]byte("x")).Key()
	b := CIDOf([]byte("x")).Key()
	if a != b {
		t.Fatal("Key not deterministic")
	}
}

func TestChunkSmallDocumentSingleLeaf(t *testing.T) {
	data := []byte("short doc")
	root, blocks := ChunkDocument(data, 4096)
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(blocks))
	}
	leaf, children, _, err := DecodeBlock(blocks[root])
	if err != nil || children != nil {
		t.Fatalf("expected leaf, got children=%v err=%v", children, err)
	}
	if !bytes.Equal(leaf, data) {
		t.Fatal("leaf payload mismatch")
	}
}

func TestChunkLargeDocumentRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	data := make([]byte, 10_000)
	rng.Bytes(data)
	root, blocks := ChunkDocument(data, 1024)
	if len(blocks) < 10 {
		t.Fatalf("blocks = %d, want >= 10", len(blocks))
	}
	_, children, totalLen, err := DecodeBlock(blocks[root])
	if err != nil {
		t.Fatal(err)
	}
	if children == nil {
		t.Fatal("root should be a manifest")
	}
	if totalLen != len(data) {
		t.Fatalf("manifest totalLen = %d, want %d", totalLen, len(data))
	}
	var assembled []byte
	for _, c := range children {
		leaf, _, _, err := DecodeBlock(blocks[c])
		if err != nil {
			t.Fatal(err)
		}
		assembled = append(assembled, leaf...)
	}
	if !bytes.Equal(assembled, data) {
		t.Fatal("assembled document differs from original")
	}
}

func TestChunkRoundTripProperty(t *testing.T) {
	f := func(data []byte, szRaw uint8) bool {
		chunkSize := int(szRaw%64) + 16
		root, blocks := ChunkDocument(data, chunkSize)
		leaf, children, _, err := DecodeBlock(blocks[root])
		if err != nil {
			return false
		}
		if children == nil {
			return bytes.Equal(leaf, data)
		}
		var out []byte
		for _, c := range children {
			l, _, _, err := DecodeBlock(blocks[c])
			if err != nil {
				return false
			}
			out = append(out, l...)
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	if _, _, _, err := DecodeBlock(nil); err == nil {
		t.Fatal("empty block should error")
	}
	if _, _, _, err := DecodeBlock([]byte{0x77, 1, 2}); err == nil {
		t.Fatal("unknown prefix should error")
	}
	if _, _, _, err := DecodeBlock([]byte{manifestPrefix, 0x05}); err == nil {
		t.Fatal("truncated manifest should error")
	}
}

func TestBlockStorePinGet(t *testing.T) {
	bs := NewBlockStore(1024)
	cid := bs.Pin([]byte("hello"))
	got, ok := bs.Get(cid)
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q ok=%v", got, ok)
	}
	if !bs.Has(cid) {
		t.Fatal("Has should be true")
	}
}

func TestBlockStoreUnpin(t *testing.T) {
	bs := NewBlockStore(0)
	cid := bs.Pin([]byte("x"))
	if !bs.Unpin(cid) {
		t.Fatal("Unpin should succeed")
	}
	if bs.Unpin(cid) {
		t.Fatal("double Unpin should fail")
	}
	if _, ok := bs.Get(cid); ok {
		t.Fatal("unpinned block should be gone")
	}
}

func TestBlockStoreLRUEviction(t *testing.T) {
	bs := NewBlockStore(100)
	mk := func(tag byte) (CID, []byte) {
		data := bytes.Repeat([]byte{tag}, 40)
		return CIDOf(data), data
	}
	c1, d1 := mk(1)
	c2, d2 := mk(2)
	c3, d3 := mk(3)
	bs.PutCached(c1, d1)
	bs.PutCached(c2, d2)
	// Touch c1 so c2 becomes LRU.
	bs.Get(c1)
	bs.PutCached(c3, d3) // needs eviction: c2 leaves
	if bs.Has(c2) {
		t.Fatal("c2 should have been evicted")
	}
	if !bs.Has(c1) || !bs.Has(c3) {
		t.Fatal("c1 and c3 should remain")
	}
}

func TestBlockStoreCacheCapacityZero(t *testing.T) {
	bs := NewBlockStore(0)
	cid := CIDOf([]byte("d"))
	bs.PutCached(cid, []byte("d"))
	if bs.Has(cid) {
		t.Fatal("cache disabled; block should not be stored")
	}
}

func TestBlockStoreOversizedBlockIgnored(t *testing.T) {
	bs := NewBlockStore(10)
	data := bytes.Repeat([]byte{9}, 100)
	bs.PutCached(CIDOf(data), data)
	if bs.StatsSnapshot().Cached != 0 {
		t.Fatal("oversized block should be ignored")
	}
}

func TestBlockStorePinnedNeverEvicted(t *testing.T) {
	bs := NewBlockStore(50)
	pinned := bs.Pin(bytes.Repeat([]byte{7}, 40))
	for i := byte(0); i < 10; i++ {
		data := bytes.Repeat([]byte{i}, 45)
		bs.PutCached(CIDOf(data), data)
	}
	if !bs.Has(pinned) {
		t.Fatal("pinned block must survive cache churn")
	}
}

func TestBlockStoreCorrupt(t *testing.T) {
	bs := NewBlockStore(1024)
	cid := bs.Pin([]byte("genuine"))
	if !bs.Corrupt(cid, []byte("evil")) {
		t.Fatal("Corrupt should find pinned block")
	}
	got, _ := bs.Get(cid)
	if string(got) != "evil" {
		t.Fatalf("corrupted content = %q", got)
	}
	if cid.Verify(got) {
		t.Fatal("verification should fail on corrupted bytes")
	}
}

// buildPeerSwarm creates n DWeb peers on a bootstrapped DHT.
func buildPeerSwarm(t testing.TB, n int, cfg PeerConfig) (*netsim.Network, []*Peer) {
	t.Helper()
	net := netsim.New(netsim.DefaultConfig())
	peers := make([]*Peer, n)
	dcfg := dht.DefaultConfig()
	for i := 0; i < n; i++ {
		d := dht.NewNode(net, netsim.NodeID(fmt.Sprintf("peer-%03d", i)), dcfg)
		peers[i] = NewPeer(net, d, cfg)
	}
	seed := peers[0].DHT().Self()
	for i := 1; i < n; i++ {
		peers[i].DHT().Bootstrap([]dht.Contact{seed})
	}
	for _, p := range peers {
		p.DHT().Bootstrap([]dht.Contact{seed})
	}
	return net, peers
}

func TestAddFetchRoundTrip(t *testing.T) {
	_, peers := buildPeerSwarm(t, 16, DefaultPeerConfig())
	doc := bytes.Repeat([]byte("the decentralized web "), 500) // ~11KB, multi-chunk
	root, _, err := peers[2].Add(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, cost, err := peers[13].Fetch(root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("fetched document differs")
	}
	if cost.Latency <= 0 {
		t.Fatal("fetch should cost simulated time")
	}
}

func TestFetchLocalIsFree(t *testing.T) {
	_, peers := buildPeerSwarm(t, 8, DefaultPeerConfig())
	doc := []byte("tiny")
	root, _, err := peers[1].Add(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, cost, err := peers[1].Fetch(root)
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatalf("local fetch failed: %v", err)
	}
	if cost.Latency != 0 {
		t.Fatalf("local fetch cost = %v, want 0", cost.Latency)
	}
}

func TestFetchMissingContent(t *testing.T) {
	_, peers := buildPeerSwarm(t, 8, DefaultPeerConfig())
	_, _, err := peers[0].Fetch(CIDOf([]byte("never published")))
	if !errors.Is(err, ErrNoProviders) {
		t.Fatalf("err = %v, want ErrNoProviders", err)
	}
}

func TestCacheServingReplicatesContent(t *testing.T) {
	net, peers := buildPeerSwarm(t, 16, DefaultPeerConfig())
	doc := bytes.Repeat([]byte("cached content "), 100)
	root, _, err := peers[0].Add(doc)
	if err != nil {
		t.Fatal(err)
	}
	// A second peer fetches (and starts serving from cache).
	if _, _, err := peers[5].Fetch(root); err != nil {
		t.Fatal(err)
	}
	// Original publisher goes down; content must still be fetchable.
	net.SetDown(peers[0].Addr(), true)
	got, _, err := peers[9].Fetch(root)
	if err != nil {
		t.Fatalf("fetch after publisher death: %v", err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("content mismatch via cache replica")
	}
}

func TestTamperedProviderDetectedAndBypassed(t *testing.T) {
	_, peers := buildPeerSwarm(t, 16, DefaultPeerConfig())
	doc := []byte("authentic content")
	root, _, err := peers[0].Add(doc)
	if err != nil {
		t.Fatal(err)
	}
	// A malicious peer pins garbage under the same CID and announces
	// itself as provider.
	evil := peers[7]
	_, blocks := ChunkDocument(doc, DefaultChunkSize)
	for cid := range blocks {
		evil.Blocks().Pin(EncodeLeaf([]byte("FAKE NEWS")))
		// Force-store garbage under the genuine CID.
		evil.Blocks().pinned[cid] = EncodeLeaf([]byte("FAKE NEWS"))
	}
	evil.DHT().Provide(root.Key())

	reader := peers[12]
	got, _, err := reader.Fetch(root)
	if err != nil {
		t.Fatalf("fetch should succeed via honest provider: %v", err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("reader accepted tampered content")
	}
}

func TestAllProvidersTampered(t *testing.T) {
	_, peers := buildPeerSwarm(t, 12, DefaultPeerConfig())
	doc := []byte("soon to be censored")
	root, _, err := peers[0].Add(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the only genuine replica in place.
	rootBlockCID := root
	if !peers[0].Blocks().Corrupt(rootBlockCID, EncodeLeaf([]byte("censored"))) {
		t.Fatal("corrupt failed")
	}
	_, _, err = peers[6].Fetch(root)
	if !errors.Is(err, ErrAllTampered) {
		t.Fatalf("err = %v, want ErrAllTampered", err)
	}
	if peers[6].TamperDetections() == 0 {
		t.Fatal("tamper detection counter should increment")
	}
}

func TestBlocksServedCounter(t *testing.T) {
	_, peers := buildPeerSwarm(t, 10, DefaultPeerConfig())
	root, _, err := peers[0].Add([]byte("count me"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := peers[4].Fetch(root); err != nil {
		t.Fatal(err)
	}
	if peers[0].BlocksServed() == 0 {
		t.Fatal("publisher should have served blocks")
	}
}

func TestStatsSnapshot(t *testing.T) {
	bs := NewBlockStore(1000)
	cid := bs.Pin([]byte("a"))
	bs.Get(cid)
	bs.Get(CIDOf([]byte("missing")))
	s := bs.StatsSnapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Pinned != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestAddDeterministicPinOrder pins the sorted-CID pin loop in Add: two
// identical swarms publishing the same multi-chunk document must end up
// with the same root, the same announce cost, and the same block-store
// snapshot. Before Add sorted the chunk CIDs, the block store saw
// insertions in map order.
func TestAddDeterministicPinOrder(t *testing.T) {
	run := func() (CID, netsim.Cost, Stats) {
		_, peers := buildPeerSwarm(t, 8, DefaultPeerConfig())
		doc := bytes.Repeat([]byte("deterministic pin order "), 600) // multi-chunk
		root, cost, err := peers[3].Add(doc)
		if err != nil {
			t.Fatal(err)
		}
		return root, cost, peers[3].Blocks().StatsSnapshot()
	}
	r1, c1, s1 := run()
	r2, c2, s2 := run()
	if r1 != r2 || c1 != c2 || s1 != s2 {
		t.Fatalf("Add diverged across identical runs:\n(%s, %+v, %+v)\n(%s, %+v, %+v)", r1.Short(), c1, s1, r2.Short(), c2, s2)
	}
}
