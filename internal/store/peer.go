package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dht"
	"repro/internal/netsim"
)

// Errors returned by Fetch.
var (
	ErrNoProviders = errors.New("store: no providers found")
	ErrAllTampered = errors.New("store: every provider served tampered data")
)

// blockReq asks a peer for one block by CID.
type blockReq struct {
	CID CID
}

type blockResp struct {
	Found bool
	Data  []byte
}

func (blockReq) WireSize() int    { return 40 }
func (r blockResp) WireSize() int { return 8 + len(r.Data) }

// PeerConfig tunes one DWeb peer.
type PeerConfig struct {
	// ChunkSize is the leaf payload size for Add.
	ChunkSize int
	// CacheCapacity bounds the peer's cache in bytes.
	CacheCapacity int64
	// ServeCache controls whether the peer announces itself as a provider
	// for content it fetched (the DWeb "retrievers also serve" behaviour).
	ServeCache bool
	// MaxProviders bounds how many providers a fetch will try.
	MaxProviders int
	// Swarming stripes chunk downloads of multi-block documents across
	// all known providers in parallel instead of pulling from one.
	Swarming bool
}

// DefaultPeerConfig returns simulation defaults: 4 KiB chunks, 16 MiB
// cache, cache serving on.
func DefaultPeerConfig() PeerConfig {
	return PeerConfig{
		ChunkSize:     DefaultChunkSize,
		CacheCapacity: 16 << 20,
		ServeCache:    true,
		MaxProviders:  8,
	}
}

// Peer is one DWeb device: a DHT node plus a content block store. Creating
// a Peer re-registers the node's network handler with one that serves
// block requests and delegates everything else to the DHT.
type Peer struct {
	cfg    PeerConfig
	dht    *dht.Node
	net    *netsim.Network
	blocks *BlockStore

	tamperDetected atomic.Int64
	blocksServed   atomic.Int64

	// roots tracks every document root this peer has announced as a
	// provider for, so maintenance can re-announce them after churn
	// (the block store itself has no enumeration).
	rootsMu sync.Mutex
	roots   map[CID]bool

	// deferProvides queues Fetch's serve-cache announcements instead of
	// issuing them inline. The round engine sets it around parallel bee
	// waves: an inline Provide mutates shared provider records mid-wave,
	// so whether a concurrently-fetching sibling sees the new record —
	// and what its FindProviders/Ping legs cost — would depend on real
	// goroutine interleaving. Queued announcements are applied by
	// FlushProvides after the wave, in a caller-fixed order.
	deferProvides bool
	pending       []CID
}

// NewPeer wraps an existing DHT node with content storage.
func NewPeer(net *netsim.Network, d *dht.Node, cfg PeerConfig) *Peer {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.MaxProviders <= 0 {
		cfg.MaxProviders = 8
	}
	p := &Peer{
		cfg:    cfg,
		dht:    d,
		net:    net,
		blocks: NewBlockStore(cfg.CacheCapacity),
		roots:  make(map[CID]bool),
	}
	net.Register(d.Self().Addr, p.HandleRPC)
	return p
}

// DHT returns the peer's underlying DHT node.
func (p *Peer) DHT() *dht.Node { return p.dht }

// Addr returns the peer's network address.
func (p *Peer) Addr() netsim.NodeID { return p.dht.Self().Addr }

// Blocks exposes the local block store (tests and fault injection).
func (p *Peer) Blocks() *BlockStore { return p.blocks }

// TamperDetections returns how many tampered blocks this peer rejected.
func (p *Peer) TamperDetections() int64 { return p.tamperDetected.Load() }

// BlocksServed returns how many block requests this peer answered.
func (p *Peer) BlocksServed() int64 { return p.blocksServed.Load() }

// HandleRPC serves block requests and forwards other traffic to the DHT.
func (p *Peer) HandleRPC(from netsim.NodeID, req any) (any, error) {
	if br, ok := req.(blockReq); ok {
		data, found := p.blocks.Get(br.CID)
		if found {
			p.blocksServed.Add(1)
		}
		return blockResp{Found: found, Data: data}, nil
	}
	return p.dht.HandleRPC(from, req)
}

// Add publishes a document: chunks it, pins every block, and announces
// this peer as a provider for the root. It returns the root CID.
func (p *Peer) Add(data []byte) (CID, netsim.Cost, error) {
	root, blocks := ChunkDocument(data, p.cfg.ChunkSize)
	// Pin in sorted CID order so the block store sees the same insertion
	// sequence on every run.
	cids := make([]CID, 0, len(blocks))
	for c := range blocks {
		cids = append(cids, c)
	}
	sort.Slice(cids, func(i, j int) bool { return bytes.Compare(cids[i][:], cids[j][:]) < 0 })
	for _, c := range cids {
		p.blocks.Pin(blocks[c])
	}
	p.rememberRoot(root)
	_, cost, err := p.dht.Provide(root.Key())
	if err != nil {
		return root, cost, fmt.Errorf("store: announcing %s: %w", root.Short(), err)
	}
	return root, cost, nil
}

func (p *Peer) rememberRoot(root CID) {
	p.rootsMu.Lock()
	p.roots[root] = true
	p.rootsMu.Unlock()
}

// SetDeferProvides switches the peer between inline and queued
// serve-cache announcements (see the deferProvides field). Not safe to
// flip while a Fetch is in flight on this peer.
func (p *Peer) SetDeferProvides(on bool) {
	p.rootsMu.Lock()
	p.deferProvides = on
	p.rootsMu.Unlock()
}

// queueProvide appends the root to the pending announcement queue and
// reports true when deferral is active; false means the caller must
// provide inline.
func (p *Peer) queueProvide(root CID) bool {
	p.rootsMu.Lock()
	defer p.rootsMu.Unlock()
	if !p.deferProvides {
		return false
	}
	p.pending = append(p.pending, root)
	return true
}

// FlushProvides issues every queued serve-cache announcement in fetch
// order (duplicates collapsed) and returns the combined cost. The round
// engine calls it per bee, in bee order, after a parallel wave — so the
// provider-record writes and their netsim draws happen at a fixed point
// regardless of how the wave's goroutines interleaved. The costs fold
// in parallel: the announcements are independent of each other, exactly
// as the inline provides were when each rode inside its own page fetch
// and the fetches Par-folded across a batch.
func (p *Peer) FlushProvides() netsim.Cost {
	p.rootsMu.Lock()
	queued := p.pending
	p.pending = nil
	p.rootsMu.Unlock()
	var total netsim.Cost
	seen := make(map[CID]bool, len(queued))
	for _, root := range queued {
		if seen[root] {
			continue
		}
		seen[root] = true
		//detlint:ignore errsink best-effort announce; a missed provide is re-sent by the next Reprovide
		_, cost, _ := p.dht.Provide(root.Key())
		total = total.Par(cost)
	}
	return total
}

// Reprovide re-announces this peer as a provider for every root it has
// ever provided — the periodic provider-record republish a churning DHT
// needs to keep content discoverable (provider records on departed
// nodes are simply gone). Roots are announced in sorted order so the
// traffic is deterministic. Returns the number of roots announced.
func (p *Peer) Reprovide() (int, netsim.Cost) {
	p.rootsMu.Lock()
	roots := make([]CID, 0, len(p.roots))
	for r := range p.roots {
		roots = append(roots, r)
	}
	p.rootsMu.Unlock()
	sort.Slice(roots, func(i, j int) bool { return bytes.Compare(roots[i][:], roots[j][:]) < 0 })
	var total netsim.Cost
	n := 0
	for _, r := range roots {
		_, cost, err := p.dht.Provide(r.Key())
		total = total.Seq(cost)
		if err == nil {
			n++
		}
	}
	return n, total
}

// Fetch retrieves a document by root CID: local store first, then
// provider discovery through the DHT, block transfer, and per-block hash
// verification. Tampered blocks are rejected and the next provider is
// tried. On success the blocks are cached and (if configured) re-provided.
func (p *Peer) Fetch(root CID) ([]byte, netsim.Cost, error) {
	var total netsim.Cost

	if data, ok, err := p.assembleLocal(root); ok || err != nil {
		return data, total, err
	}

	provs, cost, err := p.dht.FindProviders(root.Key(), p.cfg.MaxProviders)
	total = total.Seq(cost)
	if err != nil {
		return nil, total, fmt.Errorf("%w: %s", ErrNoProviders, root.Short())
	}

	// Provider selection: ping candidates (in parallel) and prefer the
	// lowest round-trip time — with more cache replicas the nearest one
	// gets closer, which is where the DWeb latency advantage comes from.
	type candidate struct {
		addr netsim.NodeID
		rtt  time.Duration
	}
	var candidates []candidate
	var pingCost netsim.Cost
	for _, prov := range provs {
		if prov.Addr == p.Addr() {
			continue
		}
		cost, err := p.dht.Ping(prov)
		pingCost = pingCost.Par(cost)
		if err != nil {
			continue
		}
		candidates = append(candidates, candidate{addr: prov.Addr, rtt: cost.Latency})
	}
	total = total.Seq(pingCost)
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].rtt != candidates[j].rtt {
			return candidates[i].rtt < candidates[j].rtt
		}
		return candidates[i].addr < candidates[j].addr
	})

	sawTamper := false
	for i, prov := range candidates {
		var data []byte
		var cost netsim.Cost
		var err error
		if p.cfg.Swarming && len(candidates) > 1 {
			// Stripe chunk downloads across all remaining providers in
			// parallel (BitTorrent/Bitswap-style swarming) — the paper's
			// "higher throughput" mechanism for hot content.
			others := make([]netsim.NodeID, 0, len(candidates)-i)
			for _, c := range candidates[i:] {
				others = append(others, c.addr)
			}
			data, cost, err = p.fetchSwarming(others, root)
		} else {
			data, cost, err = p.fetchFrom(prov.addr, root)
		}
		total = total.Seq(cost)
		if err == nil {
			if p.cfg.ServeCache {
				p.rememberRoot(root)
				if p.queueProvide(root) {
					// Deferred: billed by FlushProvides after the wave.
				} else {
					//detlint:ignore errsink best-effort cache announce; the fetch itself already succeeded
					_, cost, _ := p.dht.Provide(root.Key())
					total = total.Seq(cost)
				}
			}
			return data, total, nil
		}
		if errors.Is(err, ErrAllTampered) {
			sawTamper = true
		}
	}
	if sawTamper {
		return nil, total, ErrAllTampered
	}
	return nil, total, fmt.Errorf("%w: %s unreachable", ErrNoProviders, root.Short())
}

// fetchSwarming downloads the root from the nearest provider, then
// stripes the child chunks round-robin across every provider; chunk
// costs combine in parallel (the wall-clock win). A chunk that fails or
// verifies badly falls back to the other providers sequentially.
func (p *Peer) fetchSwarming(providers []netsim.NodeID, root CID) ([]byte, netsim.Cost, error) {
	var total netsim.Cost
	rootBlock, cost, err := p.fetchBlock(providers[0], root)
	total = total.Seq(cost)
	if err != nil {
		return nil, total, err
	}
	leaf, children, _, err := DecodeBlock(rootBlock)
	if err != nil {
		return nil, total, err
	}
	if children == nil {
		p.blocks.PutCached(root, rootBlock)
		return leaf, total, nil
	}

	chunks := make([][]byte, len(children))
	blocks := make([][]byte, len(children))
	var stripeCost netsim.Cost
	for i, c := range children {
		if local, ok := p.blocks.Get(c); ok {
			l, _, _, err := DecodeBlock(local)
			if err != nil || l == nil {
				return nil, total, errCorruptManifest
			}
			chunks[i] = l
			continue
		}
		var chunkCost netsim.Cost
		var got []byte
		fetched := false
		for attempt := 0; attempt < len(providers); attempt++ {
			prov := providers[(i+attempt)%len(providers)]
			cb, cost, err := p.fetchBlock(prov, c)
			chunkCost = chunkCost.Seq(cost)
			if err != nil {
				continue
			}
			l, _, _, derr := DecodeBlock(cb)
			if derr != nil || l == nil {
				return nil, total.Seq(chunkCost), errCorruptManifest
			}
			got = l
			blocks[i] = cb
			fetched = true
			break
		}
		if !fetched {
			return nil, total.Seq(stripeCost).Seq(chunkCost), fmt.Errorf(
				"%w: chunk %s of %s", ErrNoProviders, c.Short(), root.Short())
		}
		chunks[i] = got
		// Different stripes run on different providers concurrently.
		stripeCost = stripeCost.Par(chunkCost)
	}
	total = total.Seq(stripeCost)

	var out []byte
	for _, ch := range chunks {
		out = append(out, ch...)
	}
	p.blocks.PutCached(root, rootBlock)
	for i, cb := range blocks {
		if cb != nil {
			p.blocks.PutCached(children[i], cb)
		}
	}
	return out, total, nil
}

// assembleLocal rebuilds a document entirely from local blocks.
func (p *Peer) assembleLocal(root CID) ([]byte, bool, error) {
	block, ok := p.blocks.Get(root)
	if !ok {
		return nil, false, nil
	}
	leaf, children, _, err := DecodeBlock(block)
	if err != nil {
		return nil, false, nil
	}
	if children == nil {
		return leaf, true, nil
	}
	var out []byte
	for _, c := range children {
		cb, ok := p.blocks.Get(c)
		if !ok {
			return nil, false, nil
		}
		l, _, _, err := DecodeBlock(cb)
		if err != nil || l == nil {
			return nil, false, nil
		}
		out = append(out, l...)
	}
	return out, true, nil
}

// fetchFrom pulls the root and all children from one provider, verifying
// every block hash.
func (p *Peer) fetchFrom(provider netsim.NodeID, root CID) ([]byte, netsim.Cost, error) {
	var total netsim.Cost

	rootBlock, cost, err := p.fetchBlock(provider, root)
	total = total.Seq(cost)
	if err != nil {
		return nil, total, err
	}
	leaf, children, _, err := DecodeBlock(rootBlock)
	if err != nil {
		return nil, total, err
	}
	if children == nil {
		p.blocks.PutCached(root, rootBlock)
		return leaf, total, nil
	}

	out := make([]byte, 0)
	fetched := [][2][]byte{} // cid bytes + block, cached only on full success
	for _, c := range children {
		if local, ok := p.blocks.Get(c); ok {
			l, _, _, err := DecodeBlock(local)
			if err != nil || l == nil {
				return nil, total, errCorruptManifest
			}
			out = append(out, l...)
			continue
		}
		cb, cost, err := p.fetchBlock(provider, c)
		total = total.Seq(cost)
		if err != nil {
			return nil, total, err
		}
		l, _, _, err := DecodeBlock(cb)
		if err != nil || l == nil {
			return nil, total, errCorruptManifest
		}
		out = append(out, l...)
		fetched = append(fetched, [2][]byte{c[:], cb})
	}
	p.blocks.PutCached(root, rootBlock)
	for _, f := range fetched {
		var cid CID
		copy(cid[:], f[0])
		p.blocks.PutCached(cid, f[1])
	}
	return out, total, nil
}

// fetchBlock retrieves and verifies one block from one provider.
func (p *Peer) fetchBlock(provider netsim.NodeID, cid CID) ([]byte, netsim.Cost, error) {
	resp, cost, err := p.net.Call(p.Addr(), provider, blockReq{CID: cid})
	if err != nil {
		return nil, cost, err
	}
	r := resp.(blockResp)
	if !r.Found {
		return nil, cost, fmt.Errorf("store: provider %s lacks block %s", provider, cid.Short())
	}
	if !cid.Verify(r.Data) {
		// The cryptographic-hash identity caught a modified block.
		p.tamperDetected.Add(1)
		return nil, cost, fmt.Errorf("%w: block %s from %s", ErrAllTampered, cid.Short(), provider)
	}
	return r.Data, cost, nil
}
