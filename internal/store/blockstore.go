package store

import (
	"container/list"
	"sync"
)

// BlockStore holds content blocks on one peer. Pinned blocks (content the
// peer published) are kept forever; cached blocks (content the peer
// fetched) live in an LRU bounded by CacheCapacity bytes, modelling the
// finite disk a browsing device donates to the DWeb.
type BlockStore struct {
	mu sync.Mutex

	pinned map[CID][]byte

	cacheCap   int64
	cacheUsed  int64
	cache      map[CID]*list.Element
	cacheOrder *list.List // front = most recently used

	hits, misses int64
}

type cacheEntry struct {
	cid  CID
	data []byte
}

// NewBlockStore creates a store with the given cache capacity in bytes.
// Capacity 0 disables caching (pins still work).
func NewBlockStore(cacheCapacity int64) *BlockStore {
	return &BlockStore{
		pinned:     make(map[CID][]byte),
		cacheCap:   cacheCapacity,
		cache:      make(map[CID]*list.Element),
		cacheOrder: list.New(),
	}
}

// Pin stores a block permanently. The block's CID is computed and
// returned.
func (bs *BlockStore) Pin(data []byte) CID {
	cid := CIDOf(data)
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if _, ok := bs.pinned[cid]; !ok {
		bs.pinned[cid] = append([]byte(nil), data...)
	}
	// A pinned block no longer needs a cache slot.
	if el, ok := bs.cache[cid]; ok {
		bs.removeCacheLocked(el)
	}
	return cid
}

// Unpin removes a permanent block. It reports whether the block was
// pinned.
func (bs *BlockStore) Unpin(cid CID) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if _, ok := bs.pinned[cid]; !ok {
		return false
	}
	delete(bs.pinned, cid)
	return true
}

// PutCached inserts a fetched block into the LRU cache, evicting least
// recently used blocks as needed. Blocks larger than the whole cache are
// ignored.
func (bs *BlockStore) PutCached(cid CID, data []byte) {
	if bs.cacheCap <= 0 || int64(len(data)) > bs.cacheCap {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if _, ok := bs.pinned[cid]; ok {
		return
	}
	if el, ok := bs.cache[cid]; ok {
		bs.cacheOrder.MoveToFront(el)
		return
	}
	for bs.cacheUsed+int64(len(data)) > bs.cacheCap {
		oldest := bs.cacheOrder.Back()
		if oldest == nil {
			break
		}
		bs.removeCacheLocked(oldest)
	}
	el := bs.cacheOrder.PushFront(cacheEntry{cid: cid, data: append([]byte(nil), data...)})
	bs.cache[cid] = el
	bs.cacheUsed += int64(len(data))
}

func (bs *BlockStore) removeCacheLocked(el *list.Element) {
	ent := el.Value.(cacheEntry)
	bs.cacheOrder.Remove(el)
	delete(bs.cache, ent.cid)
	bs.cacheUsed -= int64(len(ent.data))
}

// Get returns the block bytes if present (pinned or cached). Cached reads
// refresh recency.
func (bs *BlockStore) Get(cid CID) ([]byte, bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if data, ok := bs.pinned[cid]; ok {
		bs.hits++
		return data, true
	}
	if el, ok := bs.cache[cid]; ok {
		bs.cacheOrder.MoveToFront(el)
		bs.hits++
		return el.Value.(cacheEntry).data, true
	}
	bs.misses++
	return nil, false
}

// Has reports block presence without affecting recency or stats.
func (bs *BlockStore) Has(cid CID) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if _, ok := bs.pinned[cid]; ok {
		return true
	}
	_, ok := bs.cache[cid]
	return ok
}

// Corrupt overwrites the stored bytes of a block without changing its key,
// simulating a tampering peer for experiment E6. It reports whether the
// block existed.
func (bs *BlockStore) Corrupt(cid CID, garbage []byte) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if _, ok := bs.pinned[cid]; ok {
		bs.pinned[cid] = append([]byte(nil), garbage...)
		return true
	}
	if el, ok := bs.cache[cid]; ok {
		ent := el.Value.(cacheEntry)
		ent.data = append([]byte(nil), garbage...)
		el.Value = ent
		return true
	}
	return false
}

// Stats reports hit/miss counters and occupancy.
type Stats struct {
	Hits, Misses int64
	Pinned       int
	Cached       int
	CacheBytes   int64
}

// StatsSnapshot returns current counters.
func (bs *BlockStore) StatsSnapshot() Stats {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return Stats{
		Hits:       bs.hits,
		Misses:     bs.misses,
		Pinned:     len(bs.pinned),
		Cached:     len(bs.cache),
		CacheBytes: bs.cacheUsed,
	}
}
