package store

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultChunkSize is the leaf block size for chunked documents.
const DefaultChunkSize = 4096

// manifestMagic prefixes manifest (interior DAG) blocks so leaves that
// happen to start with the same bytes cannot be confused: a leaf block is
// always stored with a 1-byte 0x00 prefix, a manifest with 0x01.
const (
	leafPrefix     = 0x00
	manifestPrefix = 0x01
)

var errCorruptManifest = errors.New("store: corrupt manifest block")

// EncodeLeaf wraps raw chunk bytes into a leaf block.
func EncodeLeaf(chunk []byte) []byte {
	out := make([]byte, 1+len(chunk))
	out[0] = leafPrefix
	copy(out[1:], chunk)
	return out
}

// EncodeManifest builds an interior block holding the ordered child CIDs
// and the total payload length.
func EncodeManifest(children []CID, totalLen int) []byte {
	out := make([]byte, 0, 1+binary.MaxVarintLen64*2+len(children)*32)
	out = append(out, manifestPrefix)
	out = binary.AppendUvarint(out, uint64(totalLen))
	out = binary.AppendUvarint(out, uint64(len(children)))
	for _, c := range children {
		out = append(out, c[:]...)
	}
	return out
}

// DecodeBlock classifies a block and returns either the leaf payload or
// the manifest children.
func DecodeBlock(block []byte) (leaf []byte, children []CID, totalLen int, err error) {
	if len(block) == 0 {
		return nil, nil, 0, errCorruptManifest
	}
	switch block[0] {
	case leafPrefix:
		return block[1:], nil, len(block) - 1, nil
	case manifestPrefix:
		rest := block[1:]
		tl, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, 0, errCorruptManifest
		}
		rest = rest[n:]
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, 0, errCorruptManifest
		}
		rest = rest[n:]
		if uint64(len(rest)) != count*32 {
			return nil, nil, 0, errCorruptManifest
		}
		kids := make([]CID, count)
		for i := range kids {
			copy(kids[i][:], rest[i*32:(i+1)*32])
		}
		return nil, kids, int(tl), nil
	default:
		return nil, nil, 0, fmt.Errorf("store: unknown block prefix 0x%02x", block[0])
	}
}

// ChunkDocument splits data into leaf blocks of at most chunkSize payload
// bytes and, when more than one leaf results, a manifest root. It returns
// the root CID and every block (root last) keyed by CID.
func ChunkDocument(data []byte, chunkSize int) (root CID, blocks map[CID][]byte) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	blocks = make(map[CID][]byte)
	if len(data) <= chunkSize {
		b := EncodeLeaf(data)
		cid := CIDOf(b)
		blocks[cid] = b
		return cid, blocks
	}
	var children []CID
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		b := EncodeLeaf(data[off:end])
		cid := CIDOf(b)
		blocks[cid] = b
		children = append(children, cid)
	}
	m := EncodeManifest(children, len(data))
	root = CIDOf(m)
	blocks[root] = m
	return root, blocks
}
