package rank

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/xrand"
)

// randomLinks builds a deterministic pseudo-random link map of n pages
// with up to maxOut out-links each.
func randomLinks(seed uint64, n, maxOut int) map[string][]string {
	rng := xrand.New(seed)
	links := make(map[string][]string)
	for i := 0; i < n; i++ {
		var out []string
		for j := 0; j < rng.Intn(maxOut+1); j++ {
			out = append(out, url(rng.Intn(n)))
		}
		links[url(i)] = out
	}
	return links
}

// alignPrev maps an old graph's converged vector onto a new graph's
// node order, the way a delta epoch warm-starts: known URLs keep their
// rank, unseen URLs start at zero AND join the dirty set.
func alignPrev(oldG *Graph, oldRanks []float64, newG *Graph) (prev []float64, newNodes []int) {
	prev = make([]float64, newG.Size())
	for i := 0; i < newG.Size(); i++ {
		if oi, ok := oldG.NodeOf(newG.URL(i)); ok {
			prev[i] = oldRanks[oi]
		} else {
			newNodes = append(newNodes, i)
		}
	}
	return prev, newNodes
}

func linfDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestDeltaEmptyDirtySetReturnsPrevExactly: no dirty pages means no
// work — the previous vector comes back bit-for-bit with zero
// iterations, so an idle delta epoch is free.
func TestDeltaEmptyDirtySetReturnsPrevExactly(t *testing.T) {
	g := NewGraph(randomLinks(3, 80, 4))
	full := Compute(g, DefaultOptions())
	res := ComputeDelta(g, full.Ranks, nil, DefaultOptions())
	if res.Iterations != 0 || res.Active != 0 {
		t.Fatalf("empty dirty set iterated: %+v", res)
	}
	if !reflect.DeepEqual(res.Ranks, full.Ranks) {
		t.Fatal("empty dirty set changed the vector")
	}
}

// TestDeltaMatchesFullAcrossDirtyShapes is the exactness contract of
// the delta epoch: for every dirty-set shape — one page edited, a
// cluster of pages, brand-new pages joining the graph, everything
// dirty — the restricted iteration lands within a small L∞ bound of a
// full recompute and agrees exactly on the top-10 ordering serving
// surfaces expose. (Byte-exactness is not claimed: the frozen-boundary
// approximation is documented, and the periodic full epoch is the
// escape hatch that bounds its accumulation.)
func TestDeltaMatchesFullAcrossDirtyShapes(t *testing.T) {
	const n = 200
	base := randomLinks(11, n, 4)
	oldG := NewGraph(base)
	oldRes := Compute(oldG, DefaultOptions())

	shapes := []struct {
		name   string
		mutate func(links map[string][]string) []string // returns edited URLs
	}{
		{"single-page", func(links map[string][]string) []string {
			links[url(3)] = []string{url(17), url(90)}
			return []string{url(3)}
		}},
		{"page-cluster", func(links map[string][]string) []string {
			// Five pages re-linked at once, each to distinct targets — a
			// burst of independent edits, not five pages pumping one hub
			// (deliberate rank manipulation is E11's territory, and its
			// near-ties legitimately reorder under any approximation).
			edited := []string{url(5), url(6), url(7), url(8), url(9)}
			for k, u := range edited {
				links[u] = []string{url((k*31 + 11) % n), url((k*53 + 101) % n)}
			}
			return edited
		}},
		{"new-pages", func(links map[string][]string) []string {
			fresh := []string{url(n), url(n + 1), url(n + 2)}
			for _, u := range fresh {
				links[u] = []string{url(1), url(2)}
			}
			links[url(1)] = append(links[url(1)], fresh[0])
			return append(fresh, url(1))
		}},
		{"everything", func(links map[string][]string) []string {
			var all []string
			for i := 0; i < n; i++ {
				all = append(all, url(i))
			}
			links[url(2)] = []string{url(40)}
			return all
		}},
	}

	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			links := make(map[string][]string, len(base))
			for k, v := range base {
				links[k] = append([]string(nil), v...)
			}
			edited := shape.mutate(links)

			newG := NewGraph(links)
			full := Compute(newG, DefaultOptions())

			prev, dirty := alignPrev(oldG, oldRes.Ranks, newG)
			for _, u := range edited {
				if i, ok := newG.NodeOf(u); ok {
					dirty = append(dirty, i)
				}
			}
			res := ComputeDelta(newG, prev, dirty, DefaultOptions())

			// Bound calibrated with headroom over the worst observed shape
			// (page-cluster rewires five pages at one hub: ~4e-3 drift);
			// ordering, the user-visible surface, must still be exact.
			if d := linfDiff(res.Ranks, full.Ranks); d > 1e-2 {
				t.Fatalf("delta drifted L∞=%g from full recompute", d)
			}
			if !reflect.DeepEqual(TopN(res.Ranks, 10), TopN(full.Ranks, 10)) {
				t.Fatalf("top-10 diverged:\ndelta: %v\nfull:  %v",
					TopN(res.Ranks, 10), TopN(full.Ranks, 10))
			}
			// The restricted pass must actually be restricted (except the
			// everything shape, which exercises the full-graph fallback).
			if shape.name == "everything" {
				if res.Active != newG.Size() {
					t.Fatalf("all-dirty run restricted itself: active %d of %d", res.Active, newG.Size())
				}
			} else if res.Active >= newG.Size() {
				t.Fatalf("delta iterated the whole graph (active %d of %d)", res.Active, newG.Size())
			}
		})
	}
}

// TestDeltaDirtyOrderInsensitive: quorum bees may discover dirty nodes
// in different intermediate orders; the result must be a pure function
// of the dirty SET.
func TestDeltaDirtyOrderInsensitive(t *testing.T) {
	g := NewGraph(randomLinks(13, 120, 4))
	full := Compute(g, DefaultOptions())
	dirty := []int{40, 7, 99, 7, 3} // unsorted, with a duplicate
	sorted := []int{3, 7, 40, 99}
	a := ComputeDelta(g, full.Ranks, dirty, DefaultOptions())
	b := ComputeDelta(g, full.Ranks, sorted, DefaultOptions())
	if !reflect.DeepEqual(a.Ranks, b.Ranks) || a.Iterations != b.Iterations || a.Active != b.Active {
		t.Fatal("dirty-set order changed the result")
	}
}

// TestDeltaWarmStartConvergesFaster is the cost claim: after a small
// edit, the warm restricted pass must both touch fewer nodes and run
// strictly fewer iterations than a cold full recompute — the
// iterations×active product E19 tabulates as rank cost.
func TestDeltaWarmStartConvergesFaster(t *testing.T) {
	const n = 300
	base := randomLinks(17, n, 3)
	oldG := NewGraph(base)
	oldRes := Compute(oldG, DefaultOptions())

	base[url(12)] = []string{url(200)}
	newG := NewGraph(base)
	cold := Compute(newG, DefaultOptions())

	prev, dirty := alignPrev(oldG, oldRes.Ranks, newG)
	if i, ok := newG.NodeOf(url(12)); ok {
		dirty = append(dirty, i)
	}
	warm := ComputeDelta(newG, prev, dirty, DefaultOptions())

	if warm.Active >= cold.Active {
		t.Fatalf("delta active %d not smaller than full %d", warm.Active, cold.Active)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm delta took %d iterations, cold full took %d — no warm-start win",
			warm.Iterations, cold.Iterations)
	}
}
