// Package rank implements the page-rank side of QueenBee: the link graph
// extracted from publish records, power-iteration PageRank with dangling-
// node handling, block-partitioned computation (what each worker-bee rank
// task covers), warm-started incremental recomputation, and the residual
// traces experiment E8 plots.
package rank

import "sort"

// Graph is a directed link graph over URL nodes. Construct with
// NewGraph; nodes are ordered lexicographically so computations are
// deterministic regardless of map iteration order.
type Graph struct {
	urls []string
	idx  map[string]int
	out  [][]int32 // adjacency: outgoing edges
}

// NewGraph builds a graph from url → outgoing links. Links to URLs that
// are not themselves nodes are dropped (the DWeb analogue of a link to an
// unpublished page). Self-links and duplicate edges are dropped too.
func NewGraph(links map[string][]string) *Graph {
	urls := make([]string, 0, len(links))
	for u := range links {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	idx := make(map[string]int, len(urls))
	for i, u := range urls {
		idx[u] = i
	}
	out := make([][]int32, len(urls))
	for i, u := range urls {
		seen := make(map[int32]bool)
		for _, dst := range links[u] {
			j, ok := idx[dst]
			if !ok || j == i {
				continue
			}
			if !seen[int32(j)] {
				seen[int32(j)] = true
				out[i] = append(out[i], int32(j))
			}
		}
		sort.Slice(out[i], func(a, b int) bool { return out[i][a] < out[i][b] })
	}
	return &Graph{urls: urls, idx: idx, out: out}
}

// Size returns the number of nodes.
func (g *Graph) Size() int { return len(g.urls) }

// URL returns the URL of node i.
func (g *Graph) URL(i int) string { return g.urls[i] }

// NodeOf returns the node index of a URL.
func (g *Graph) NodeOf(url string) (int, bool) {
	i, ok := g.idx[url]
	return i, ok
}

// OutDegree returns the number of outgoing edges of node i.
func (g *Graph) OutDegree(i int) int { return len(g.out[i]) }

// EdgeCount returns the total number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, e := range g.out {
		n += len(e)
	}
	return n
}

// Partition splits [0, n) into p nearly equal contiguous ranges. Fewer
// than p nodes yields fewer partitions.
func Partition(n, p int) [][2]int {
	if p <= 0 {
		p = 1
	}
	if p > n {
		p = n
	}
	var out [][2]int
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
