package rank

// deltaFallbackNum/Den: when the dirty closure covers at least 3/4 of
// the graph, a restricted iteration saves nothing over a warm full pass
// and the frozen-boundary approximation only adds error — fall back to
// ComputeFrom on the whole graph.
const (
	deltaFallbackNum = 3
	deltaFallbackDen = 4
)

// ComputeDelta re-ranks only the subgraph reachable from the dirty
// nodes, warm-started from prev; every node outside that closure keeps
// its prev rank ("frozen"). Frozen nodes still feed rank into the
// active set — their contributions are constant, so they are summed
// once up front rather than per iteration — but rank flowing from
// active nodes back out to frozen ones is not propagated. That is the
// approximation: the result can drift from a full recompute by the mass
// the closure exports, which is why callers schedule a periodic full
// epoch as the exactness escape hatch (RankFullEvery).
//
// dirty holds node indices into g; it is sorted and deduplicated here,
// so callers may pass it in any order without affecting the result.
// Determinism: the closure is iterated as a sorted index slice, never
// map order — quorum bees must produce byte-identical rank entries.
//
// Special cases: an empty dirty set returns prev unchanged (zero
// iterations); a prev of the wrong length and a closure covering most
// of the graph both fall back to a full (warm) computation.
func ComputeDelta(g *Graph, prev []float64, dirty []int, opts Options) Result {
	n := g.Size()
	if n == 0 {
		return Result{}
	}
	fill(&opts)
	if len(prev) != n {
		return Compute(g, opts)
	}
	if len(dirty) == 0 {
		out := make([]float64, n)
		copy(out, prev)
		return Result{Ranks: out, Iterations: 0, Active: 0}
	}

	active := closure(g, dirty)
	if len(active)*deltaFallbackDen >= n*deltaFallbackNum {
		return ComputeFrom(g, prev, opts)
	}

	// pos maps global node index → position in the active slice (-1 for
	// frozen nodes).
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for p, i := range active {
		pos[i] = p
	}

	// One O(E) pass folds every frozen node's constant influence: link
	// mass into active targets and dangling mass redistributed to all.
	frozenIn := make([]float64, len(active))
	var frozenDangling float64
	for j := 0; j < n; j++ {
		if pos[j] >= 0 {
			continue
		}
		deg := g.OutDegree(j)
		if deg == 0 {
			frozenDangling += prev[j]
			continue
		}
		share := opts.Damping * prev[j] / float64(deg)
		for _, t := range g.out[j] {
			if p := pos[t]; p >= 0 {
				frozenIn[p] += share
			}
		}
	}

	cur := make([]float64, n)
	copy(cur, prev)
	next := make([]float64, len(active))
	var residuals []float64

	iters := 0
	for iter := 1; iter <= opts.MaxIters; iter++ {
		var activeDangling float64
		for _, i := range active {
			if g.OutDegree(i) == 0 {
				activeDangling += cur[i]
			}
		}
		base := (1-opts.Damping)/float64(n) +
			opts.Damping*(frozenDangling+activeDangling)/float64(n)

		for p := range next {
			next[p] = base + frozenIn[p]
		}
		for _, j := range active {
			deg := g.OutDegree(j)
			if deg == 0 {
				continue
			}
			share := opts.Damping * cur[j] / float64(deg)
			for _, t := range g.out[j] {
				if p := pos[t]; p >= 0 {
					next[p] += share
				}
			}
		}

		var res float64
		for p, i := range active {
			d := cur[i] - next[p]
			if d < 0 {
				d = -d
			}
			res += d
			cur[i] = next[p]
		}
		residuals = append(residuals, res)
		iters = iter
		if res < opts.Tolerance {
			break
		}
	}

	// Renormalize the composite vector to a probability distribution.
	// Restricted iteration conserves mass only approximately (rank the
	// closure exports to frozen successors leaks), and when the graph
	// grew since prev was computed, every frozen value still carries the
	// old graph's larger 1/n-scale uniform terms — a global rescale is
	// exactly the correction PageRank's distribution semantics allow.
	var sum float64
	for _, v := range cur {
		sum += v
	}
	if sum > 0 {
		for i := range cur {
			cur[i] /= sum
		}
	}
	return Result{Ranks: cur, Iterations: iters, Residuals: residuals, Active: len(active)}
}

// closure returns the sorted forward closure of the dirty set: every
// node whose rank can change when the dirty pages' links change.
func closure(g *Graph, dirty []int) []int {
	n := g.Size()
	seen := make([]bool, n)
	queue := make([]int, 0, len(dirty))
	for _, i := range dirty {
		if i < 0 || i >= n || seen[i] {
			continue
		}
		seen[i] = true
		queue = append(queue, i)
	}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		for _, t := range g.out[j] {
			if !seen[t] {
				seen[t] = true
				queue = append(queue, int(t))
			}
		}
	}
	// Collecting by ascending scan yields the sorted order directly.
	var out []int
	for i := 0; i < n; i++ {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out
}
