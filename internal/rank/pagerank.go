package rank

import "math"

// Options tunes the PageRank computation.
type Options struct {
	// Damping is the probability of following a link (standard 0.85).
	Damping float64
	// MaxIters bounds the power iteration.
	MaxIters int
	// Tolerance is the L1 residual at which iteration stops.
	Tolerance float64
}

// DefaultOptions returns the standard parameters.
func DefaultOptions() Options {
	return Options{Damping: 0.85, MaxIters: 100, Tolerance: 1e-9}
}

// Result carries the converged vector and the per-iteration L1 residuals
// (the convergence curve experiment E8 reports).
type Result struct {
	Ranks      []float64
	Iterations int
	Residuals  []float64
	// Active is how many nodes each iteration actually updated: the full
	// node count for Compute/ComputeFrom, the dirty closure's size for
	// ComputeDelta — the work metric E19's full-vs-delta table reports.
	Active int
}

// Compute runs power iteration from the uniform vector.
func Compute(g *Graph, opts Options) Result {
	n := g.Size()
	init := make([]float64, n)
	for i := range init {
		init[i] = 1 / float64(n)
	}
	return ComputeFrom(g, init, opts)
}

// ComputeFrom runs power iteration warm-started from a previous vector
// (renormalized), the incremental-update path: after a small graph change
// the previous vector converges in far fewer iterations than uniform.
func ComputeFrom(g *Graph, prev []float64, opts Options) Result {
	n := g.Size()
	if n == 0 {
		return Result{}
	}
	fill(&opts)

	cur := normalizedCopy(prev, n)
	next := make([]float64, n)
	var residuals []float64

	for iter := 1; iter <= opts.MaxIters; iter++ {
		step(g, cur, next, opts.Damping)
		res := l1diff(cur, next)
		residuals = append(residuals, res)
		cur, next = next, cur
		if res < opts.Tolerance {
			return Result{Ranks: cur, Iterations: iter, Residuals: residuals, Active: n}
		}
	}
	return Result{Ranks: cur, Iterations: opts.MaxIters, Residuals: residuals, Active: n}
}

// step performs one synchronous PageRank iteration into next.
func step(g *Graph, cur, next []float64, damping float64) {
	n := len(cur)
	base := (1 - damping) / float64(n)

	// Dangling mass is redistributed uniformly.
	var dangling float64
	for i := 0; i < n; i++ {
		if len(g.out[i]) == 0 {
			dangling += cur[i]
		}
	}
	base += damping * dangling / float64(n)

	for i := range next {
		next[i] = base
	}
	for i := 0; i < n; i++ {
		deg := len(g.out[i])
		if deg == 0 {
			continue
		}
		share := damping * cur[i] / float64(deg)
		for _, j := range g.out[i] {
			next[j] += share
		}
	}
}

// ComputeBlocked simulates the distributed computation performed by
// worker bees: each of the p workers owns one contiguous block and, per
// synchronous round, recomputes its block from the full previous vector.
// The result is numerically identical to Compute (same schedule), which
// is exactly why honest bees produce byte-identical rank results for
// commit–reveal voting. It also reports how many block-update messages
// the swarm exchanged.
func ComputeBlocked(g *Graph, p int, opts Options) (Result, int) {
	n := g.Size()
	if n == 0 {
		return Result{}, 0
	}
	fill(&opts)
	parts := Partition(n, p)

	cur := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	scratch := make([]float64, n)
	messages := 0
	var residuals []float64

	for iter := 1; iter <= opts.MaxIters; iter++ {
		// One full step computed once (the math is identical per block;
		// each worker extracts its slice and broadcasts it).
		step(g, cur, scratch, opts.Damping)
		for _, pr := range parts {
			copy(next[pr[0]:pr[1]], scratch[pr[0]:pr[1]])
			messages += len(parts) - 1 // block broadcast to other workers
		}
		res := l1diff(cur, next)
		residuals = append(residuals, res)
		cur, next = next, cur
		if res < opts.Tolerance {
			return Result{Ranks: cur, Iterations: iter, Residuals: residuals}, messages
		}
	}
	return Result{Ranks: cur, Iterations: opts.MaxIters, Residuals: residuals}, messages
}

// TopN returns the n highest-ranked node indices, rank descending with
// index ascending tiebreak.
func TopN(ranks []float64, n int) []int {
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	// Selection sort of the top n keeps this simple; n is small.
	if n > len(idx) {
		n = len(idx)
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			a, b := idx[j], idx[best]
			if ranks[a] > ranks[b] || (ranks[a] == ranks[b] && a < b) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:n]
}

func fill(opts *Options) {
	if opts.Damping <= 0 || opts.Damping >= 1 {
		opts.Damping = 0.85
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 100
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-9
	}
}

func normalizedCopy(v []float64, n int) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := 0; i < n && i < len(v); i++ {
		out[i] = v[i]
		sum += v[i]
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func l1diff(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
