package rank

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func chainGraph(n int) map[string][]string {
	links := make(map[string][]string)
	for i := 0; i < n; i++ {
		u := url(i)
		if i+1 < n {
			links[u] = []string{url(i + 1)}
		} else {
			links[u] = nil
		}
	}
	return links
}

func url(i int) string {
	return string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestGraphConstruction(t *testing.T) {
	g := NewGraph(map[string][]string{
		"b": {"a", "a", "b", "ghost"},
		"a": {"b"},
	})
	if g.Size() != 2 {
		t.Fatalf("size = %d", g.Size())
	}
	// Deterministic lexicographic node order.
	if g.URL(0) != "a" || g.URL(1) != "b" {
		t.Fatalf("order = %s,%s", g.URL(0), g.URL(1))
	}
	// b's duplicate edge, self-link and dangling target dropped.
	bi, _ := g.NodeOf("b")
	if g.OutDegree(bi) != 1 {
		t.Fatalf("outdeg(b) = %d, want 1", g.OutDegree(bi))
	}
	if g.EdgeCount() != 2 {
		t.Fatalf("edges = %d, want 2", g.EdgeCount())
	}
}

func TestRanksSumToOne(t *testing.T) {
	rng := xrand.New(5)
	links := make(map[string][]string)
	for i := 0; i < 100; i++ {
		var out []string
		for j := 0; j < rng.Intn(5); j++ {
			out = append(out, url(rng.Intn(100)))
		}
		links[url(i)] = out
	}
	g := NewGraph(links)
	res := Compute(g, DefaultOptions())
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum = %v, want 1", sum)
	}
}

func TestHubGetsHighestRank(t *testing.T) {
	// Every node links to the hub.
	links := map[string][]string{"hub": nil}
	for i := 0; i < 20; i++ {
		links[url(i)] = []string{"hub"}
	}
	g := NewGraph(links)
	res := Compute(g, DefaultOptions())
	hub, _ := g.NodeOf("hub")
	for i := range res.Ranks {
		if i != hub && res.Ranks[i] >= res.Ranks[hub] {
			t.Fatalf("node %s (%v) outranks hub (%v)", g.URL(i), res.Ranks[i], res.Ranks[hub])
		}
	}
	top := TopN(res.Ranks, 1)
	if top[0] != hub {
		t.Fatalf("TopN = %v, want hub %d", top, hub)
	}
}

func TestResidualsDecrease(t *testing.T) {
	g := NewGraph(chainGraph(50))
	res := Compute(g, DefaultOptions())
	if len(res.Residuals) < 2 {
		t.Fatalf("too few residuals: %v", res.Residuals)
	}
	if res.Residuals[len(res.Residuals)-1] >= res.Residuals[0] {
		t.Fatal("residuals should decrease")
	}
	if res.Iterations != len(res.Residuals) {
		t.Fatal("iteration count mismatch")
	}
}

func TestConvergenceTolerance(t *testing.T) {
	g := NewGraph(chainGraph(30))
	opts := DefaultOptions()
	opts.Tolerance = 1e-12
	res := Compute(g, opts)
	last := res.Residuals[len(res.Residuals)-1]
	if last >= 1e-12 && res.Iterations < opts.MaxIters {
		t.Fatalf("stopped early with residual %v", last)
	}
}

func TestBlockedMatchesSequential(t *testing.T) {
	rng := xrand.New(9)
	links := make(map[string][]string)
	for i := 0; i < 60; i++ {
		var out []string
		for j := 0; j < 1+rng.Intn(4); j++ {
			out = append(out, url(rng.Intn(60)))
		}
		links[url(i)] = out
	}
	g := NewGraph(links)
	seq := Compute(g, DefaultOptions())
	for _, p := range []int{1, 2, 4, 7} {
		blocked, msgs := ComputeBlocked(g, p, DefaultOptions())
		if blocked.Iterations != seq.Iterations {
			t.Fatalf("p=%d iterations %d != %d", p, blocked.Iterations, seq.Iterations)
		}
		for i := range seq.Ranks {
			if math.Abs(seq.Ranks[i]-blocked.Ranks[i]) > 1e-12 {
				t.Fatalf("p=%d rank[%d] diverges", p, i)
			}
		}
		if p > 1 && msgs == 0 {
			t.Fatal("blocked computation should count messages")
		}
	}
}

func TestIncrementalWarmStartConvergesFaster(t *testing.T) {
	rng := xrand.New(11)
	links := make(map[string][]string)
	for i := 0; i < 200; i++ {
		var out []string
		for j := 0; j < 1+rng.Intn(3); j++ {
			out = append(out, url(rng.Intn(200)))
		}
		links[url(i)] = out
	}
	g := NewGraph(links)
	opts := DefaultOptions()
	base := Compute(g, opts)

	// Small change: one new page.
	links["zz"] = []string{url(0)}
	g2 := NewGraph(links)
	cold := Compute(g2, opts)

	// Warm start from the previous vector (padded/renormalized inside).
	warm := ComputeFrom(g2, base.Ranks, opts)
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm start %d iters should beat cold %d", warm.Iterations, cold.Iterations)
	}
	for i := range cold.Ranks {
		if math.Abs(cold.Ranks[i]-warm.Ranks[i]) > 1e-6 {
			t.Fatalf("warm and cold disagree at %d", i)
		}
	}
}

func TestDanglingNodesConserveMass(t *testing.T) {
	// Star with a dangling center.
	links := map[string][]string{"center": nil}
	for i := 0; i < 10; i++ {
		links[url(i)] = []string{"center"}
	}
	g := NewGraph(links)
	res := Compute(g, DefaultOptions())
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("mass leaked: sum = %v", sum)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewGraph(nil)
	res := Compute(g, DefaultOptions())
	if len(res.Ranks) != 0 {
		t.Fatalf("ranks = %v", res.Ranks)
	}
	if _, msgs := ComputeBlocked(g, 4, DefaultOptions()); msgs != 0 {
		t.Fatal("empty graph should exchange no messages")
	}
}

func TestPartition(t *testing.T) {
	parts := Partition(10, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %v", parts)
	}
	covered := 0
	prevHi := 0
	for _, p := range parts {
		if p[0] != prevHi {
			t.Fatalf("gap in partitions: %v", parts)
		}
		covered += p[1] - p[0]
		prevHi = p[1]
	}
	if covered != 10 {
		t.Fatalf("covered %d of 10", covered)
	}
	if got := Partition(2, 5); len(got) != 2 {
		t.Fatalf("more parts than nodes: %v", got)
	}
	if got := Partition(5, 0); len(got) != 1 {
		t.Fatalf("p=0 should clamp to 1: %v", got)
	}
}

func TestTopNOrdering(t *testing.T) {
	ranks := []float64{0.1, 0.5, 0.3, 0.5}
	top := TopN(ranks, 3)
	if top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("top = %v", top)
	}
	if got := TopN(ranks, 99); len(got) != 4 {
		t.Fatal("n>len should return all")
	}
}

func TestDeterministicAcrossMapOrder(t *testing.T) {
	// Build the same graph twice; map iteration order must not matter.
	build := func() []float64 {
		links := make(map[string][]string)
		for i := 0; i < 50; i++ {
			links[url(i)] = []string{url((i + 7) % 50), url((i + 13) % 50)}
		}
		return Compute(NewGraph(links), DefaultOptions()).Ranks
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PageRank not deterministic")
		}
	}
}
