package index

import (
	"bytes"
	"testing"
	"testing/quick"
)

func buildSeg(gen uint64, docs map[DocID]string) *Segment {
	b := NewBuilder(gen)
	// Deterministic insertion order.
	var ids []DocID
	for id := range docs {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		b.Add(id, docs[id])
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	seg := buildSeg(1, map[DocID]string{
		1: "decentralized search engine",
		2: "decentralized web content",
	})
	pl := seg.Postings(Stem("decentralized"))
	if len(pl) != 2 || pl[0].Doc != 1 || pl[1].Doc != 2 {
		t.Fatalf("postings = %+v", pl)
	}
	if seg.DocLens[1] != 3 || seg.DocLens[2] != 3 {
		t.Fatalf("doc lens = %v", seg.DocLens)
	}
	if err := seg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderTermFrequencyAndPositions(t *testing.T) {
	seg := buildSeg(1, map[DocID]string{7: "bee bee honey bee"})
	pl := seg.Postings("bee")
	if len(pl) != 1 {
		t.Fatalf("postings = %+v", pl)
	}
	p := pl[0]
	if p.TF != 3 {
		t.Fatalf("TF = %d, want 3", p.TF)
	}
	if len(p.Positions) != 3 || p.Positions[0] != 0 || p.Positions[1] != 1 || p.Positions[2] != 3 {
		t.Fatalf("positions = %v", p.Positions)
	}
}

func TestBuilderReAddReplacesDoc(t *testing.T) {
	b := NewBuilder(1)
	b.Add(5, "old content about bees")
	b.Add(5, "completely new stuff")
	seg := b.Build()
	if seg.Postings("bee") != nil {
		t.Fatal("stale postings survived re-add")
	}
	if seg.Postings("stuff") == nil {
		t.Fatal("new postings missing")
	}
	if b2 := seg.DocLens[5]; b2 != 3 {
		t.Fatalf("doc len = %d, want 3", b2)
	}
}

func TestSegmentEncodeDecodeRoundTrip(t *testing.T) {
	seg := buildSeg(42, map[DocID]string{
		1: "queen bee honey colony worker bee",
		9: "smart contract blockchain honey",
		3: "decentralized search on the decentralized web",
	})
	enc := seg.Encode()
	dec, err := DecodeSegment(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gen != 42 {
		t.Fatalf("gen = %d", dec.Gen)
	}
	if dec.NumTerms() != seg.NumTerms() {
		t.Fatalf("terms = %d, want %d", dec.NumTerms(), seg.NumTerms())
	}
	for term, pl := range seg.Terms {
		got := dec.Postings(term)
		if len(got) != len(pl) {
			t.Fatalf("term %q postings = %d, want %d", term, len(got), len(pl))
		}
		for i := range pl {
			if got[i].Doc != pl[i].Doc || got[i].TF != pl[i].TF {
				t.Fatalf("term %q posting %d mismatch", term, i)
			}
		}
	}
	if err := dec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentEncodeDeterministic(t *testing.T) {
	// Two builders adding the same docs in different orders must produce
	// byte-identical encodings — commit-reveal voting depends on it.
	a := NewBuilder(7)
	a.Add(1, "alpha beta gamma")
	a.Add(2, "beta delta")
	b := NewBuilder(7)
	b.Add(2, "beta delta")
	b.Add(1, "alpha beta gamma")
	if !bytes.Equal(a.Build().Encode(), b.Build().Encode()) {
		t.Fatal("segment encoding depends on insertion order")
	}
}

func TestDecodeSegmentCorrupt(t *testing.T) {
	if _, err := DecodeSegment(nil); err == nil {
		t.Fatal("nil should fail")
	}
	if _, err := DecodeSegment([]byte{0xFF, 0xFF, 0x01}); err == nil {
		t.Fatal("bad magic should fail")
	}
	seg := buildSeg(1, map[DocID]string{1: "hello world"})
	enc := seg.Encode()
	if _, err := DecodeSegment(enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated segment should fail")
	}
}

func TestMergeNewerGenerationWins(t *testing.T) {
	old := buildSeg(1, map[DocID]string{1: "honey bees everywhere", 2: "old other doc"})
	new1 := buildSeg(2, map[DocID]string{1: "fresh content no insects"})
	merged := Merge([]*Segment{old, new1})

	// Doc 1's old terms must be tombstoned even though gen 2 lacks them.
	if pl := merged.Postings(Stem("honey")); pl != nil {
		if _, found := pl.Find(1); found {
			t.Fatal("stale posting for doc 1 survived merge")
		}
	}
	if pl := merged.Postings("bee"); pl != nil {
		if _, found := pl.Find(1); found {
			t.Fatal("stale 'bee' posting survived")
		}
	}
	if merged.Postings("fresh") == nil {
		t.Fatal("new postings missing")
	}
	// Doc 2 untouched.
	if merged.Postings("old") == nil {
		t.Fatal("unrelated doc lost in merge")
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeOrderIndependence(t *testing.T) {
	s1 := buildSeg(1, map[DocID]string{1: "one two three"})
	s2 := buildSeg(2, map[DocID]string{2: "two three four"})
	s3 := buildSeg(3, map[DocID]string{1: "five six"})
	a := Merge([]*Segment{s1, s2, s3}).Encode()
	b := Merge([]*Segment{s3, s1, s2}).Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("merge result depends on input order despite distinct gens")
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge(nil)
	if len(m.Terms) != 0 || m.Gen != 0 {
		t.Fatalf("merge of nothing = %+v", m)
	}
}

func TestPostingsEncodeDecodeRoundTrip(t *testing.T) {
	pl := PostingList{
		{Doc: 3, TF: 2, Positions: []uint32{0, 9}},
		{Doc: 100, TF: 1, Positions: []uint32{4}},
		{Doc: 4000000, TF: 3, Positions: []uint32{1, 2, 3}},
	}
	dec, rest, err := DecodePostings(pl.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if len(dec) != 3 || dec[2].Doc != 4000000 || dec[0].Positions[1] != 9 {
		t.Fatalf("decoded = %+v", dec)
	}
}

func TestPostingsRoundTripProperty(t *testing.T) {
	f := func(docsRaw []uint32, tfRaw []uint8) bool {
		// Build a valid sorted posting list from arbitrary input.
		seen := map[uint32]bool{}
		var docs []uint32
		for _, d := range docsRaw {
			if !seen[d] {
				seen[d] = true
				docs = append(docs, d)
			}
		}
		for i := 0; i < len(docs); i++ {
			for j := i + 1; j < len(docs); j++ {
				if docs[j] < docs[i] {
					docs[i], docs[j] = docs[j], docs[i]
				}
			}
		}
		var pl PostingList
		for i, d := range docs {
			tf := uint32(1)
			if i < len(tfRaw) {
				tf = uint32(tfRaw[i]%5) + 1
			}
			positions := make([]uint32, tf)
			for p := range positions {
				positions[p] = uint32(p * 2)
			}
			pl = append(pl, Posting{Doc: DocID(d), TF: tf, Positions: positions})
		}
		dec, rest, err := DecodePostings(pl.Encode())
		if err != nil || len(rest) != 0 || len(dec) != len(pl) {
			return false
		}
		for i := range pl {
			if dec[i].Doc != pl[i].Doc || dec[i].TF != pl[i].TF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFindBinarySearch(t *testing.T) {
	pl := PostingList{{Doc: 2}, {Doc: 5}, {Doc: 9}}
	if _, ok := pl.Find(5); !ok {
		t.Fatal("Find(5) should succeed")
	}
	if _, ok := pl.Find(4); ok {
		t.Fatal("Find(4) should fail")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	seg := NewSegment(1)
	seg.Terms["x"] = PostingList{{Doc: 5, TF: 1}}
	// Doc 5 has no DocLen.
	if err := seg.Validate(); err == nil {
		t.Fatal("missing doc length should fail validation")
	}
	seg.DocLens[5] = 10
	if err := seg.Validate(); err != nil {
		t.Fatal(err)
	}
	seg.Terms["y"] = PostingList{{Doc: 9, TF: 0}}
	seg.DocLens[9] = 1
	if err := seg.Validate(); err == nil {
		t.Fatal("zero TF should fail validation")
	}
}

// TestSegmentRestrict covers the sharded-compaction primitive: dropped
// terms vanish, kept terms keep their postings, and — the subtle part —
// the full DocLens tombstone set survives, so a restricted segment still
// shadows a document's older postings for terms the restriction dropped.
func TestSegmentRestrict(t *testing.T) {
	old := buildSeg(1, map[DocID]string{
		1: "honey nectar clover",
		2: "honey meadow",
	})
	// Doc 1 revised: "nectar" gone, new term appears.
	rev := buildSeg(2, map[DocID]string{1: "honey orchard"})

	keepHoney := func(term string) bool { return term == Stem("honey") }
	r := rev.Restrict(keepHoney)
	if r.Gen != rev.Gen {
		t.Fatalf("restrict changed Gen: %d -> %d", rev.Gen, r.Gen)
	}
	if r.Postings(Stem("orchard")) != nil {
		t.Fatal("restricted segment kept a dropped term")
	}
	if got := r.Postings(Stem("honey")); len(got) != 1 || got[0].Doc != 1 {
		t.Fatalf("kept term postings = %+v", got)
	}
	if !r.Covers(1) {
		t.Fatal("restriction dropped the tombstone set")
	}

	// Merging the OLD full segment with the restricted revision must
	// still retire doc 1's stale "nectar" posting — same logical outcome
	// as merging with the unrestricted revision, for every kept term.
	m := Merge([]*Segment{old, r})
	if pl := m.Postings(Stem("nectar")); len(pl) != 0 {
		t.Fatalf("stale posting resurfaced through a restricted merge: %+v", pl)
	}
	want := Merge([]*Segment{old, rev})
	for _, term := range []string{Stem("honey"), Stem("meadow"), Stem("clover")} {
		a, b := m.Postings(term), want.Postings(term)
		if len(a) != len(b) {
			t.Fatalf("term %q diverged: %+v vs %+v", term, a, b)
		}
		for i := range a {
			if a[i].Doc != b[i].Doc || a[i].TF != b[i].TF {
				t.Fatalf("term %q posting %d diverged: %+v vs %+v", term, i, a, b)
			}
		}
	}

	// Restriction round-trips through the wire format.
	dec, err := DecodeSegment(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumTerms() != 1 || !dec.Covers(1) {
		t.Fatalf("decoded restricted segment = %d terms, covers(1)=%v", dec.NumTerms(), dec.Covers(1))
	}
}
