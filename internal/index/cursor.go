package index

import (
	"encoding/binary"
	"sort"
)

// cursorMeta is a segment's memoized per-term skip metadata: the parsed
// block skips plus either a materialized posting list (built, v1, v2, or
// already-decoded terms) or a lazy v3 block source. It is immutable once
// built; TermCursor instances reference it but keep their own position
// state, so one query's cursor never perturbs another's.
type cursorMeta struct {
	df    int
	skips []BlockSkip
	pl    PostingList     // materialized source (nil when src is set)
	src   *lazyTermSource // lazy v3 block-decodable source
}

// lazyTermSource addresses one term's v3 postings blob for
// block-granular decoding without materializing the whole list.
type lazyTermSource struct {
	enc        uint8   // 0 = delta blocks, 1 = bitmap
	payload    []byte  // delta: whole blob; bitmap: TF/positions stream
	bitmap     []byte  // bitmap terms only
	docsSorted []DocID // bitmap terms only: ordinal → DocID
}

// Cursor returns a fresh block-max cursor over a term's postings, or nil
// if the term is absent. The underlying skip metadata is parsed (lazy
// v3) or computed (materialized lists) once per term and memoized on the
// segment; each call returns an independent cursor so concurrent queries
// never share position state.
func (s *Segment) Cursor(term string) *TermCursor {
	s.mu.RLock()
	m, ok := s.cursors[term]
	s.mu.RUnlock()
	if !ok {
		m = s.buildCursorMeta(term)
		s.mu.Lock()
		if s.cursors == nil {
			s.cursors = make(map[string]*cursorMeta)
		}
		if cached, dup := s.cursors[term]; dup {
			m = cached
		} else {
			s.cursors[term] = m
		}
		s.mu.Unlock()
	}
	if m == nil {
		return nil
	}
	return &TermCursor{df: m.df, skips: m.skips, pl: m.pl, src: m.src, decoded: -1, boundBi: -1}
}

// buildCursorMeta assembles a term's skip metadata. Lazy v3 segments
// parse the skip entries straight out of the dictionary (no posting
// decode); every other source materializes the list via Postings and
// derives equivalent skips from it.
func (s *Segment) buildCursorMeta(term string) *cursorMeta {
	s.mu.RLock()
	lazy := s.lazy
	var cached PostingList
	var inCache bool
	if lazy != nil {
		cached, inCache = lazy.cache[term]
	}
	s.mu.RUnlock()

	if lazy != nil && lazy.v3 && !inCache {
		e, blob, found, err := lazy.findV3(term)
		if err != nil || !found {
			return nil
		}
		skips, err := parseSkipsV3(e.skipsRaw, e.df)
		if err != nil {
			return nil
		}
		src := &lazyTermSource{enc: uint8(e.enc)}
		if e.enc == 1 {
			bmLen, n := binary.Uvarint(blob)
			if n <= 0 || uint64(len(blob)-n) < bmLen {
				return nil // unreachable post-validation
			}
			src.bitmap = blob[n : n+int(bmLen)]
			src.payload = blob[n+int(bmLen):]
			src.docsSorted = lazy.docsSorted
		} else {
			src.payload = blob
		}
		return &cursorMeta{df: e.df, skips: skips, src: src}
	}

	pl := cached
	if !inCache {
		pl = s.Postings(term)
	}
	if len(pl) == 0 {
		return nil
	}
	return &cursorMeta{df: len(pl), skips: computeSkips(pl, s.DocLens), pl: pl}
}

// computeSkips derives v3-equivalent skip entries from a materialized
// posting list: per 32-posting block, the last DocID and the canonical
// (TF, docLen) frontier. End offsets are unused for materialized
// sources. Missing docLens entries fall back to length 0, matching the
// encoder rule (a zero length only inflates the bound — still safe).
func computeSkips(pl PostingList, docLens map[DocID]uint32) []BlockSkip {
	nblocks := (len(pl) + postingsBlockSize - 1) / postingsBlockSize
	skips := make([]BlockSkip, 0, nblocks)
	var pairs []TFDL
	for b := 0; b < nblocks; b++ {
		lo := b * postingsBlockSize
		hi := lo + v3BlockLen(b, len(pl))
		pairs = pairs[:0]
		for i := lo; i < hi; i++ {
			pairs = append(pairs, TFDL{pl[i].TF, docLens[pl[i].Doc]})
		}
		fr := blockFrontier(pairs)
		skips = append(skips, BlockSkip{LastDoc: pl[hi-1].Doc, Frontier: append([]TFDL(nil), fr...)})
	}
	return skips
}

// TermCursor walks one term's postings block by block in ascending DocID
// order. It supports shallow seeks (skip-pointer galloping that moves
// between blocks without decoding them), per-block score bounds, and
// on-demand block decoding — the primitives the WAND executor composes
// into top-k early termination. Not safe for concurrent use; obtain one
// per query via Segment.Cursor.
type TermCursor struct {
	df    int
	skips []BlockSkip
	pl    PostingList
	src   *lazyTermSource

	bi      int // current block index (len(skips) = exhausted)
	decoded int // block currently decoded into docs/tfs (-1 = none)
	docs    []DocID
	tfs     []uint32
	scan    int // forward scan position within the decoded block

	boundBi  int // block the memoized bound was computed for (-1 = none)
	boundVal float64

	scanned       int64 // postings decoded (drained into WANDStats)
	skippedBlocks int64 // blocks passed without decoding
}

// DF returns the term's document frequency in this segment.
func (c *TermCursor) DF() int { return c.df }

// Exhausted reports whether the cursor has moved past its last block.
func (c *TermCursor) Exhausted() bool { return c.bi >= len(c.skips) }

// BlockLast returns the current block's last DocID.
func (c *TermCursor) BlockLast() DocID { return c.skips[c.bi].LastDoc }

// ShallowSeek advances the cursor to the first block whose last DocID is
// ≥ d without decoding anything, galloping through the skip entries
// (doubling probe, then binary search within the bracket). Blocks passed
// over undecoded are counted as skipped.
func (c *TermCursor) ShallowSeek(d DocID) {
	if c.bi >= len(c.skips) || c.skips[c.bi].LastDoc >= d {
		return
	}
	lo := c.bi
	step := 1
	for lo+step < len(c.skips) && c.skips[lo+step].LastDoc < d {
		lo += step
		step <<= 1
	}
	hi := lo + step + 1
	if hi > len(c.skips) {
		hi = len(c.skips)
	}
	nb := lo + 1 + sort.Search(hi-lo-1, func(x int) bool { return c.skips[lo+1+x].LastDoc >= d })
	skipped := nb - c.bi
	if c.decoded >= c.bi && c.decoded < nb {
		skipped-- // the decoded block was evaluated, not skipped
	}
	c.skippedBlocks += int64(skipped)
	c.bi = nb
}

// Bound returns the current block's maximum possible text-score
// contribution under the given scorer: the max of TermScore over the
// block's frontier pairs. Exact (not an estimate) — the frontier retains
// every pair that can achieve the block max — and memoized per block.
func (c *TermCursor) Bound(sc *Scorer) float64 {
	if c.boundBi != c.bi {
		c.boundBi = c.bi
		c.boundVal = c.boundOf(c.bi, sc)
	}
	return c.boundVal
}

// boundOf computes block bi's bound without moving the cursor.
func (c *TermCursor) boundOf(bi int, sc *Scorer) float64 {
	best := 0.0
	for _, p := range c.skips[bi].Frontier {
		if v := sc.TermScore(p.TF, p.DL, c.df); v > best {
			best = v
		}
	}
	return best
}

// SeekTF returns the term frequency for document d, decoding at most the
// one block that can contain it. The cursor only moves forward; callers
// must probe ascending DocIDs.
func (c *TermCursor) SeekTF(d DocID) (uint32, bool) {
	c.ShallowSeek(d)
	if c.bi >= len(c.skips) {
		return 0, false
	}
	if !c.ensureDecoded() {
		return 0, false
	}
	for c.scan < len(c.docs) && c.docs[c.scan] < d {
		c.scan++
	}
	if c.scan < len(c.docs) && c.docs[c.scan] == d {
		return c.tfs[c.scan], true
	}
	return 0, false
}

// ensureDecoded materializes the current block's (DocID, TF) columns.
func (c *TermCursor) ensureDecoded() bool {
	if c.decoded == c.bi {
		return true
	}
	n := v3BlockLen(c.bi, c.df)
	c.docs = c.docs[:0]
	c.tfs = c.tfs[:0]
	if c.pl != nil {
		lo := c.bi * postingsBlockSize
		for i := lo; i < lo+n; i++ {
			c.docs = append(c.docs, c.pl[i].Doc)
			c.tfs = append(c.tfs, c.pl[i].TF)
		}
	} else if !c.src.decodeBlock(c.bi, c.skips, n, &c.docs, &c.tfs) {
		// Unreachable for validated segments; defensively exhaust the
		// cursor so corruption degrades to an absent term, mirroring
		// Postings' behavior, rather than panicking.
		c.bi = len(c.skips)
		return false
	}
	c.decoded = c.bi
	c.scan = 0
	c.scanned += int64(n)
	return true
}

// advanceBlock moves to the next block without decoding the current one.
func (c *TermCursor) advanceBlock(skippedCurrent bool) {
	if skippedCurrent && c.decoded != c.bi {
		c.skippedBlocks++
	}
	c.bi++
}

// decodeBlock parses block bi's postings out of the lazy source. For
// delta terms the doc-gap chain restarts from the previous block's last
// DocID; for bitmap terms the start ordinal is recovered by binary
// search for the previous block's last DocID (itself a set bit).
func (s *lazyTermSource) decodeBlock(bi int, skips []BlockSkip, n int, docs *[]DocID, tfs *[]uint32) bool {
	start := 0
	prevDoc := uint64(0)
	ord := 0
	if bi > 0 {
		start = skips[bi-1].EndOff
		prevDoc = uint64(skips[bi-1].LastDoc)
		if s.enc == 1 {
			ord = sort.Search(len(s.docsSorted), func(i int) bool { return s.docsSorted[i] >= DocID(prevDoc) }) + 1
		}
	}
	end := skips[bi].EndOff
	if start > end || end > len(s.payload) {
		return false
	}
	b := s.payload[start:end]
	for i := 0; i < n; i++ {
		var doc DocID
		if s.enc == 0 {
			gap, ln := binary.Uvarint(b)
			if ln <= 0 {
				return false
			}
			b = b[ln:]
			prevDoc += gap
			doc = DocID(prevDoc)
		} else {
			for ord < len(s.docsSorted) && s.bitmap[ord>>3]&(1<<uint(ord&7)) == 0 {
				ord++
			}
			if ord >= len(s.docsSorted) {
				return false
			}
			doc = s.docsSorted[ord]
			ord++
		}
		tf, ln := binary.Uvarint(b)
		if ln <= 0 {
			return false
		}
		b = b[ln:]
		npos, ln := binary.Uvarint(b)
		if ln <= 0 {
			return false
		}
		b = b[ln:]
		for j := uint64(0); j < npos; j++ {
			if _, ln = binary.Uvarint(b); ln <= 0 {
				return false
			}
			b = b[ln:]
		}
		*docs = append(*docs, doc)
		*tfs = append(*tfs, uint32(tf))
	}
	return true
}
