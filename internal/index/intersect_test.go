package index

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func docs(vals ...uint32) []DocID {
	out := make([]DocID, len(vals))
	for i, v := range vals {
		out[i] = DocID(v)
	}
	return out
}

func equalDocs(a, b []DocID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntersectMergeBasic(t *testing.T) {
	got := IntersectMerge([][]DocID{
		docs(1, 3, 5, 7, 9),
		docs(3, 4, 5, 9, 11),
		docs(3, 5, 9),
	})
	if !equalDocs(got, docs(3, 5, 9)) {
		t.Fatalf("got %v", got)
	}
}

func TestIntersectGallopBasic(t *testing.T) {
	got := IntersectGallop([][]DocID{
		docs(1, 3, 5, 7, 9),
		docs(3, 4, 5, 9, 11),
		docs(3, 5, 9),
	})
	if !equalDocs(got, docs(3, 5, 9)) {
		t.Fatalf("got %v", got)
	}
}

func TestIntersectEmptyCases(t *testing.T) {
	if got := IntersectMerge(nil); got != nil {
		t.Fatalf("nil lists: %v", got)
	}
	if got := IntersectMerge([][]DocID{docs(1, 2), nil}); len(got) != 0 {
		t.Fatalf("one empty list: %v", got)
	}
	if got := IntersectGallop([][]DocID{docs(1, 2), nil}); len(got) != 0 {
		t.Fatalf("gallop one empty: %v", got)
	}
	single := IntersectMerge([][]DocID{docs(4, 5)})
	if !equalDocs(single, docs(4, 5)) {
		t.Fatalf("single list: %v", single)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	lists := [][]DocID{docs(1, 2, 3), docs(4, 5, 6)}
	if got := IntersectMerge(lists); len(got) != 0 {
		t.Fatalf("disjoint merge: %v", got)
	}
	if got := IntersectGallop(lists); len(got) != 0 {
		t.Fatalf("disjoint gallop: %v", got)
	}
}

// Property: gallop and merge always agree.
func TestIntersectVariantsAgreeProperty(t *testing.T) {
	f := func(seed uint64, sizesRaw [3]uint8) bool {
		rng := xrand.New(seed)
		var lists [][]DocID
		for _, szRaw := range sizesRaw {
			sz := int(szRaw % 50)
			set := map[uint32]bool{}
			for i := 0; i < sz; i++ {
				set[uint32(rng.Intn(100))] = true
			}
			var l []DocID
			for v := uint32(0); v < 100; v++ {
				if set[v] {
					l = append(l, DocID(v))
				}
			}
			lists = append(lists, l)
		}
		return equalDocs(IntersectMerge(lists), IntersectGallop(lists))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	got := Union([][]DocID{docs(1, 3, 5), docs(2, 3, 6), docs(5)})
	if !equalDocs(got, docs(1, 2, 3, 5, 6)) {
		t.Fatalf("union = %v", got)
	}
	if got := Union(nil); got != nil {
		t.Fatalf("union of nothing = %v", got)
	}
}

func TestDifference(t *testing.T) {
	if got := Difference(docs(1, 3, 5, 7), docs(3, 7, 9)); !equalDocs(got, docs(1, 5)) {
		t.Fatalf("difference = %v", got)
	}
	if got := Difference(docs(1, 2), nil); !equalDocs(got, docs(1, 2)) {
		t.Fatalf("difference vs empty = %v", got)
	}
	if got := Difference(nil, docs(1, 2)); got != nil {
		t.Fatalf("empty minus anything = %v", got)
	}
	if got := Difference(docs(1, 2), docs(1, 2)); len(got) != 0 {
		t.Fatalf("self difference = %v", got)
	}
	// b strictly below / above a: nothing removed.
	if got := Difference(docs(5, 6), docs(1, 2)); !equalDocs(got, docs(5, 6)) {
		t.Fatalf("disjoint low = %v", got)
	}
	if got := Difference(docs(5, 6), docs(8, 9)); !equalDocs(got, docs(5, 6)) {
		t.Fatalf("disjoint high = %v", got)
	}
}

// Property: Difference agrees with the naive set subtraction and never
// mutates its inputs.
func TestDifferenceProperty(t *testing.T) {
	f := func(seed uint64, szA, szB uint8) bool {
		rng := xrand.New(seed)
		build := func(sz int) []DocID {
			set := map[uint32]bool{}
			for i := 0; i < sz; i++ {
				set[uint32(rng.Intn(60))] = true
			}
			var l []DocID
			for v := uint32(0); v < 60; v++ {
				if set[v] {
					l = append(l, DocID(v))
				}
			}
			return l
		}
		a, b := build(int(szA%40)), build(int(szB%40))
		inB := map[DocID]bool{}
		for _, v := range b {
			inB[v] = true
		}
		var want []DocID
		for _, v := range a {
			if !inB[v] {
				want = append(want, v)
			}
		}
		return equalDocs(Difference(a, b), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGallopSkewedLists(t *testing.T) {
	// Small list vs huge list: gallop must find exactly the right docs.
	var huge []DocID
	for i := uint32(0); i < 10000; i += 2 {
		huge = append(huge, DocID(i))
	}
	small := docs(0, 1001, 5000, 9998, 9999)
	got := IntersectGallop([][]DocID{small, huge})
	if !equalDocs(got, docs(0, 5000, 9998)) {
		t.Fatalf("got %v", got)
	}
}

func TestPhraseMatch(t *testing.T) {
	b := NewBuilder(1)
	b.Add(1, "decentralized search engine for decentralized web")
	b.Add(2, "search decentralized engine")
	seg := b.Build()

	lists := []PostingList{
		seg.Postings(Stem("decentralized")),
		seg.Postings(Stem("search")),
	}
	if !PhraseMatch(1, lists) {
		t.Fatal("doc 1 contains the phrase 'decentralized search'")
	}
	if PhraseMatch(2, lists) {
		t.Fatal("doc 2 has the terms but not adjacent in order")
	}
	if PhraseMatch(99, lists) {
		t.Fatal("missing doc cannot match")
	}
	if PhraseMatch(1, nil) {
		t.Fatal("empty phrase cannot match")
	}
}

func TestScorerBM25Ordering(t *testing.T) {
	s := NewScorer(CorpusStats{DocCount: 1000, AvgDocLen: 100}, 0)
	// Rarer terms score higher.
	rare := s.TermScore(1, 100, 2)
	common := s.TermScore(1, 100, 900)
	if rare <= common {
		t.Fatalf("rare %v should outscore common %v", rare, common)
	}
	// Higher TF scores higher, sublinearly.
	tf1 := s.TermScore(1, 100, 10)
	tf2 := s.TermScore(2, 100, 10)
	tf8 := s.TermScore(8, 100, 10)
	if tf2 <= tf1 || tf8 <= tf2 {
		t.Fatal("TF should increase score")
	}
	if tf8-tf2 >= 6*(tf2-tf1) {
		t.Fatal("TF gain should saturate")
	}
	// Longer docs are penalized.
	short := s.TermScore(2, 50, 10)
	long := s.TermScore(2, 500, 10)
	if long >= short {
		t.Fatal("longer docs should score lower at equal TF")
	}
}

func TestScorerCombine(t *testing.T) {
	s := NewScorer(CorpusStats{DocCount: 10, AvgDocLen: 10}, 1.0)
	base := 2.0
	low := s.Combine(base, 0.001, 0.1)
	high := s.Combine(base, 0.1, 0.1)
	if high <= low {
		t.Fatal("higher page rank should lift score")
	}
	if got := s.Combine(base, 0.5, 0); got != base {
		t.Fatal("maxRank 0 should disable blending")
	}
	noBlend := NewScorer(CorpusStats{DocCount: 10, AvgDocLen: 10}, 0)
	if got := noBlend.Combine(base, 0.5, 1); got != base {
		t.Fatal("RankWeight 0 should disable blending")
	}
}

func TestTopK(t *testing.T) {
	in := []ScoredDoc{
		{Doc: 1, Score: 0.5}, {Doc: 2, Score: 2.0},
		{Doc: 3, Score: 1.0}, {Doc: 4, Score: 2.0},
	}
	got := TopK(in, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	// Score 2.0 tie: doc 2 before doc 4.
	if got[0].Doc != 2 || got[1].Doc != 4 || got[2].Doc != 3 {
		t.Fatalf("order = %+v", got)
	}
	if TopK(in, 0) != nil {
		t.Fatal("k=0 should be nil")
	}
	if len(TopK(in, 100)) != 4 {
		t.Fatal("k>n should return all")
	}
}

func TestShardOfStable(t *testing.T) {
	a := ShardOf("honey", 16)
	b := ShardOf("honey", 16)
	if a != b {
		t.Fatal("shard mapping unstable")
	}
	if a < 0 || a >= 16 {
		t.Fatalf("shard out of range: %d", a)
	}
	// Different terms should spread (not all one shard).
	seen := map[int]bool{}
	for _, term := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		seen[ShardOf(term, 4)] = true
	}
	if len(seen) < 2 {
		t.Fatal("sharding does not spread terms")
	}
}

func TestDocIDOfStable(t *testing.T) {
	if DocIDOf("dweb://a") != DocIDOf("dweb://a") {
		t.Fatal("DocIDOf unstable")
	}
	if DocIDOf("dweb://a") == DocIDOf("dweb://b") {
		t.Fatal("distinct URLs should (overwhelmingly) differ")
	}
}

func TestShardKeysDistinct(t *testing.T) {
	if ShardPointerKey(0) == ShardPointerKey(1) {
		t.Fatal("shard keys must differ")
	}
	if SegmentKey("ab") == SegmentKey("cd") {
		t.Fatal("segment keys must differ")
	}
}
