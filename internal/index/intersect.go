package index

import "sort"

// The intersection kernels below implement the frontend's core operation:
// "composing the search results by intersecting the matched inverted
// lists." IntersectMerge is the textbook linear merge; IntersectGallop
// uses exponential search from the shortest list, which wins when list
// lengths are skewed (ablation A1 / experiment E9 compares them).

// IntersectMerge intersects k sorted doc lists by linear k-way stepping.
func IntersectMerge(lists [][]DocID) []DocID {
	if len(lists) == 0 {
		return nil
	}
	if len(lists) == 1 {
		return append([]DocID(nil), lists[0]...)
	}
	out := append([]DocID(nil), lists[0]...)
	for _, l := range lists[1:] {
		out = intersect2Merge(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

func intersect2Merge(a, b []DocID) []DocID {
	out := a[:0:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// IntersectGallop intersects by probing the longer lists with exponential
// (galloping) search, driving from the shortest list.
func IntersectGallop(lists [][]DocID) []DocID {
	if len(lists) == 0 {
		return nil
	}
	ordered := append([][]DocID(nil), lists...)
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i]) < len(ordered[j]) })
	out := append([]DocID(nil), ordered[0]...)
	for _, l := range ordered[1:] {
		out = intersect2Gallop(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

func intersect2Gallop(small, large []DocID) []DocID {
	out := small[:0:0]
	lo := 0
	for _, v := range small {
		idx := gallopSearch(large, lo, v)
		if idx < len(large) && large[idx] == v {
			out = append(out, v)
		}
		lo = idx
		if lo >= len(large) {
			break
		}
	}
	return out
}

// gallopSearch finds the first index >= from with large[idx] >= target
// using doubling steps followed by binary search.
func gallopSearch(large []DocID, from int, target DocID) int {
	if from >= len(large) {
		return from
	}
	bound := 1
	for from+bound < len(large) && large[from+bound] < target {
		bound *= 2
	}
	lo := from + bound/2
	hi := from + bound
	if hi > len(large) {
		hi = len(large)
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return large[lo+i] >= target })
}

// Union merges sorted doc lists, deduplicating.
func Union(lists [][]DocID) []DocID {
	var out []DocID
	for _, l := range lists {
		out = union2(out, l)
	}
	return out
}

func union2(a, b []DocID) []DocID {
	out := make([]DocID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Difference returns the docs of a that are absent from b — sorted-set
// subtraction, the NOT operator of the boolean query planner.
func Difference(a, b []DocID) []DocID {
	if len(a) == 0 {
		return nil
	}
	if len(b) == 0 {
		return append([]DocID(nil), a...)
	}
	out := a[:0:0]
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// PhraseMatch reports whether the postings of consecutive query terms
// contain the terms at adjacent positions in the given document.
func PhraseMatch(doc DocID, lists []PostingList) bool {
	if len(lists) == 0 {
		return false
	}
	var positions [][]uint32
	for _, pl := range lists {
		p, ok := pl.Find(doc)
		if !ok {
			return false
		}
		positions = append(positions, p.Positions)
	}
	// For each start position of term 0, check term i at pos+i.
	for _, start := range positions[0] {
		match := true
		for i := 1; i < len(positions); i++ {
			if !containsU32(positions[i], start+uint32(i)) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func containsU32(sorted []uint32, v uint32) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	return i < len(sorted) && sorted[i] == v
}
