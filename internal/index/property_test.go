package index

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// randomSegment builds a segment of random small documents.
func randomSegment(rng *xrand.RNG, gen uint64, docBase, nDocs int) *Segment {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "theta"}
	b := NewBuilder(gen)
	for d := 0; d < nDocs; d++ {
		var text bytes.Buffer
		length := 3 + rng.Intn(10)
		for w := 0; w < length; w++ {
			text.WriteString(words[rng.Intn(len(words))])
			text.WriteByte(' ')
		}
		b.Add(DocID(docBase+d), text.String())
	}
	return b.Build()
}

// Property: merging is associative — Merge([a,b,c]) equals
// Merge([Merge([a,b]), c]) byte-for-byte (distinct generations).
func TestMergeAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := randomSegment(rng, 1, 0, 3+rng.Intn(4))
		b := randomSegment(rng, 2, 2, 3+rng.Intn(4)) // overlaps a
		c := randomSegment(rng, 3, 4, 3+rng.Intn(4)) // overlaps b
		direct := Merge([]*Segment{a, b, c}).Encode()
		stepwise := Merge([]*Segment{Merge([]*Segment{a, b}), c}).Encode()
		return bytes.Equal(direct, stepwise)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging a segment with itself is idempotent.
func TestMergeIdempotentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		s := randomSegment(rng, 5, 0, 4)
		merged := Merge([]*Segment{s, s})
		return bytes.Equal(merged.Encode(), Merge([]*Segment{s}).Encode())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a merged segment always validates and covers exactly the
// union of the inputs' documents.
func TestMergeValidityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := randomSegment(rng, 1, 0, 5)
		b := randomSegment(rng, 2, 3, 5)
		m := Merge([]*Segment{a, b})
		if m.Validate() != nil {
			return false
		}
		want := map[DocID]bool{}
		for d := range a.DocLens {
			want[d] = true
		}
		for d := range b.DocLens {
			want[d] = true
		}
		if len(m.DocLens) != len(want) {
			return false
		}
		for d := range want {
			if !m.Covers(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: stems are fixed points — analyzing a stemmed term yields the
// same term (so queries always match documents).
func TestStemFixedPointProperty(t *testing.T) {
	words := []string{
		"running", "engines", "searches", "cities", "quickly", "movement",
		"happiness", "relations", "stopped", "believes", "colonies",
		"decentralized", "incentivizes", "advertisers", "computation",
	}
	for _, w := range words {
		s1 := Stem(w)
		s2 := Stem(s1)
		if s1 != s2 {
			t.Errorf("Stem(%q) = %q but Stem(%q) = %q — not a fixed point", w, s1, s1, s2)
		}
		toks := Analyze(s1)
		if len(toks) == 1 && toks[0].Term != s1 {
			t.Errorf("Analyze(%q) = %q — stemmed term does not round-trip", s1, toks[0].Term)
		}
	}
}

// Property: intersection results are always sorted, deduplicated, and a
// subset of every input list.
func TestIntersectionInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		mk := func() []DocID {
			n := rng.Intn(60)
			set := map[uint32]bool{}
			for i := 0; i < n; i++ {
				set[uint32(rng.Intn(80))] = true
			}
			var out []DocID
			for v := uint32(0); v < 80; v++ {
				if set[v] {
					out = append(out, DocID(v))
				}
			}
			return out
		}
		lists := [][]DocID{mk(), mk(), mk()}
		for _, result := range [][]DocID{IntersectMerge(lists), IntersectGallop(lists)} {
			for i := 1; i < len(result); i++ {
				if result[i] <= result[i-1] {
					return false
				}
			}
			for _, v := range result {
				for _, l := range lists {
					found := false
					for _, x := range l {
						if x == v {
							found = true
							break
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinHash similarity is reflexive and symmetric, in [0,1].
func TestMinHashProperties(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		rngA, rngB := xrand.New(seedA), xrand.New(seedB)
		mk := func(rng *xrand.RNG) MinHashSig {
			var text bytes.Buffer
			for i := 0; i < 20+rng.Intn(30); i++ {
				fmt.Fprintf(&text, "word%d ", rng.Intn(50))
			}
			return SignatureOf(text.String())
		}
		a, b := mk(rngA), mk(rngB)
		if a.Similarity(a) != 1 {
			return false
		}
		ab, ba := a.Similarity(b), b.Similarity(a)
		return ab == ba && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
