// Package index implements the text side of QueenBee: analysis
// (tokenizing, stop-words, stemming), positional postings with varint
// delta compression, immutable segments built per publish event, doc-aware
// segment merging, the sorted-list intersection kernels the frontend uses
// ("composing the search results by intersecting the matched inverted
// lists"), and BM25 scoring blended with page rank.
//
// The package is deliberately network-free: internal/core shards segments
// over the DHT and wires worker bees to build them.
package index

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is one analyzed term occurrence.
type Token struct {
	Term string
	Pos  uint32 // token position in the document, 0-based
}

// stopwords is a compact English stop list. Queries and documents share
// it so a stop-term never reaches the index or the intersection.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"had": true, "has": true, "have": true, "he": true, "her": true,
	"his": true, "if": true, "in": true, "into": true, "is": true,
	"it": true, "its": true, "nor": true, "not": true, "of": true,
	"on": true, "or": true, "she": true, "so": true, "that": true,
	"the": true, "their": true, "them": true, "then": true, "there": true,
	"these": true, "they": true, "this": true, "those": true, "to": true,
	"was": true, "were": true, "will": true, "with": true, "you": true,
}

// IsStopword reports whether a lowercase term is on the stop list.
func IsStopword(term string) bool { return stopwords[term] }

// Analyze splits text into stemmed, stop-filtered tokens with positions.
// Positions count every non-stopword token, so phrase offsets survive
// analysis.
//
// The hot loop is allocation-conscious: the token slice is pre-sized from
// a bytes-per-token heuristic, the in-progress word lives in a reusable
// stack scratch buffer (one string allocation per *kept* token only), and
// stopwords are rejected via a non-allocating map probe on the scratch
// bytes before any string is made.
func Analyze(text string) []Token {
	tokens := make([]Token, 0, len(text)/5+4)
	var scratch [64]byte
	buf := scratch[:0]
	pos := uint32(0)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		if stopwords[string(buf)] { // compiler elides this conversion
			buf = buf[:0]
			return
		}
		term := Stem(string(buf))
		buf = buf[:0]
		if term == "" {
			return
		}
		tokens = append(tokens, Token{Term: term, Pos: pos})
		pos++
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			buf = utf8.AppendRune(buf, unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// AnalyzeQuery returns the distinct analyzed terms of a query string, in
// first-appearance order.
func AnalyzeQuery(query string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, tok := range Analyze(query) {
		if !seen[tok.Term] {
			seen[tok.Term] = true
			out = append(out, tok.Term)
		}
	}
	return out
}

// Stem applies a light Porter-style suffix stripper until it reaches a
// fixed point, so stemmed terms always re-stem to themselves — documents
// and queries can never disagree ("relations" → "relation" → "relat",
// and a query for "relation" lands on the same "relat").
func Stem(term string) string {
	for i := 0; i < 4; i++ {
		next := stemOnce(term)
		if next == term {
			return term
		}
		term = next
	}
	return term
}

// stemOnce strips one suffix layer.
func stemOnce(term string) string {
	if len(term) <= 3 {
		return term
	}
	// Order matters: longest candidate suffixes first.
	switch {
	case strings.HasSuffix(term, "ational"):
		return term[:len(term)-7] + "ate"
	case strings.HasSuffix(term, "iveness"):
		return term[:len(term)-4]
	case strings.HasSuffix(term, "fulness"):
		return term[:len(term)-4]
	case strings.HasSuffix(term, "ization"):
		return term[:len(term)-5] + "e"
	case strings.HasSuffix(term, "sses"):
		return term[:len(term)-2]
	case strings.HasSuffix(term, "ies"):
		return term[:len(term)-3] + "i"
	case strings.HasSuffix(term, "ment"):
		if len(term) > 6 {
			return term[:len(term)-4]
		}
	case strings.HasSuffix(term, "ness"):
		return term[:len(term)-4]
	case strings.HasSuffix(term, "tion"):
		return term[:len(term)-4] + "t"
	case strings.HasSuffix(term, "ing"):
		if len(term) > 5 {
			stem := term[:len(term)-3]
			return undouble(stem)
		}
	case strings.HasSuffix(term, "edly"):
		return term[:len(term)-4]
	case strings.HasSuffix(term, "ed"):
		if len(term) > 4 {
			stem := term[:len(term)-2]
			return undouble(stem)
		}
	case strings.HasSuffix(term, "ly"):
		if len(term) > 4 {
			return term[:len(term)-2]
		}
	case strings.HasSuffix(term, "es"):
		if len(term) > 4 {
			return term[:len(term)-2]
		}
	case strings.HasSuffix(term, "s") && !strings.HasSuffix(term, "ss"):
		return term[:len(term)-1]
	case strings.HasSuffix(term, "e"):
		// Final-e removal (Porter step 5) collapses singular/plural pairs
		// like engine/engines → engin.
		if len(term) > 4 {
			return term[:len(term)-1]
		}
	}
	return term
}

// undouble collapses a doubled final consonant left by suffix removal
// (e.g. "stopp" → "stop"), except the letters where English keeps the
// double ("ll", "ss", "zz").
func undouble(s string) string {
	n := len(s)
	if n < 2 || s[n-1] != s[n-2] {
		return s
	}
	switch s[n-1] {
	case 'l', 's', 'z':
		return s
	}
	return s[:n-1]
}
