package index

// BatchDoc is one document of a multi-document segment build.
type BatchDoc struct {
	Doc  DocID
	Text string
}

// BuildBatch analyzes and indexes a whole batch of documents into one
// delta segment. Worker bees use it for batch index tasks: a round that
// ingests N pages then materializes one segment instead of N, so the
// per-round DHT traffic scales with the shards touched, not the pages
// published. The result is byte-deterministic for a given (gen, docs)
// input — the property commit-reveal voting depends on.
func BuildBatch(gen uint64, docs []BatchDoc) *Segment {
	b := NewBuilder(gen)
	for _, d := range docs {
		b.Add(d.Doc, d.Text)
	}
	return b.Build()
}
