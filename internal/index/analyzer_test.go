package index

import (
	"testing"
)

func TestAnalyzeBasic(t *testing.T) {
	toks := Analyze("The quick brown Fox jumps!")
	terms := make([]string, len(toks))
	for i, tok := range toks {
		terms[i] = tok.Term
	}
	// "the" removed; lowercased; "jumps" stemmed to "jump".
	want := []string{"quick", "brown", "fox", "jump"}
	if len(terms) != len(want) {
		t.Fatalf("terms = %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Fatalf("terms = %v, want %v", terms, want)
		}
	}
}

func TestAnalyzePositionsSequential(t *testing.T) {
	toks := Analyze("alpha the beta gamma")
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	for i, tok := range toks {
		if tok.Pos != uint32(i) {
			t.Fatalf("positions not sequential: %v", toks)
		}
	}
}

func TestAnalyzePunctuationAndDigits(t *testing.T) {
	toks := Analyze("web3.0: peer-2-peer networks")
	var terms []string
	for _, tok := range toks {
		terms = append(terms, tok.Term)
	}
	joined := ""
	for _, term := range terms {
		joined += term + " "
	}
	for _, want := range []string{"web3", "0", "peer", "2"} {
		found := false
		for _, term := range terms {
			if term == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing %q in %v", want, terms)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if toks := Analyze(""); len(toks) != 0 {
		t.Fatalf("tokens = %v, want none", toks)
	}
	if toks := Analyze("the of and"); len(toks) != 0 {
		t.Fatalf("stopword-only text: %v, want none", toks)
	}
}

func TestAnalyzeQueryDedup(t *testing.T) {
	terms := AnalyzeQuery("search engines search the web")
	if len(terms) != 3 {
		t.Fatalf("terms = %v, want 3 distinct", terms)
	}
	if terms[0] != "search" || terms[1] != Stem("engines") || terms[2] != "web" {
		t.Fatalf("terms = %v", terms)
	}
}

func TestStemming(t *testing.T) {
	cases := map[string]string{
		"jumps":      "jump",
		"running":    "run",
		"stopped":    "stop",
		"cities":     "citi",
		"engines":    "engin",
		"quickly":    "quick",
		"government": "govern",
		"relation":   "relat",
		"cat":        "cat", // too short to stem
		"falls":      "fall",
		"classes":    "class",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnVariants(t *testing.T) {
	// Variants of one word should collapse to the same stem.
	groups := [][]string{
		{"index", "indexes"},
		{"rank", "ranks", "ranking", "ranked"},
		{"search", "searches", "searching", "searched"},
	}
	for _, g := range groups {
		base := Stem(g[0])
		for _, v := range g[1:] {
			if got := Stem(v); got != base {
				t.Errorf("Stem(%q) = %q, want %q (same as %q)", v, got, base, g[0])
			}
		}
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("queen") {
		t.Fatal("stopword detection wrong")
	}
}

func TestAnalyzeUnicode(t *testing.T) {
	toks := Analyze("Café Zürich")
	if len(toks) != 2 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Term != "café" {
		t.Fatalf("unicode lowercasing failed: %v", toks[0])
	}
}
