package index

import (
	"bytes"
	"encoding/binary"
	"math/bits"
	"sort"
)

// Segment format v3: the block-max layout. The outer shell is identical
// to v2 (magic, gen, docs region, 64-term dictionary index, dict region,
// postings region), but each dictionary entry now carries per-block skip
// metadata — last DocID, end byte offset, and the Pareto frontier of
// (TF, docLen) pairs from which a block-max term score bound can be
// computed for any corpus stats — and dense terms (df ≥ ndocs/8) switch
// from delta-varint postings to a bitmap over the segment's sorted doc
// ordinals. See docs/segment-format.md for the byte layout.
const (
	segmentMagicV3 = 0x5155 // "QU": v3, block-max skip layout

	// postingsBlockSize is the number of postings per skip block. Skip
	// entries and block-max bounds are kept per block; WAND decodes or
	// skips whole blocks. Small blocks keep the decode floor of a top-k
	// query near k·blockSize postings (each winner drags in its whole
	// block), at the price of one ~6-byte skip entry per block — the
	// granularity where BenchmarkSearchScaling's 100×-corpus work bound
	// actually holds.
	postingsBlockSize = 8
)

// TFDL is one (term frequency, document length) pair. A block's skip
// entry stores the Pareto frontier of its postings' pairs: TermScore is
// monotone increasing in TF and decreasing in docLen, so the frontier
// (kept in strictly-ascending TF and strictly-ascending DL order) is
// exactly the set of pairs that can achieve the block maximum under some
// corpus stats, and max over it is an exact stats-independent bound.
type TFDL struct {
	TF uint32
	DL uint32
}

// BlockSkip is one parsed skip entry: the block's last document, its end
// byte offset (blob-relative for delta terms, stream-relative for bitmap
// terms; unused for materialized posting lists), and the block's
// score-bound frontier.
type BlockSkip struct {
	LastDoc  DocID
	EndOff   int
	Frontier []TFDL
}

// v3BlockLen returns the number of postings in block bi of a df-long
// list.
func v3BlockLen(bi, df int) int {
	if n := df - bi*postingsBlockSize; n < postingsBlockSize {
		return n
	}
	return postingsBlockSize
}

// sortedDocIDs returns the covered documents in ascending order.
func sortedDocIDs(docLens map[DocID]uint32) []DocID {
	docs := make([]DocID, 0, len(docLens))
	for d := range docLens {
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	return docs
}

// blockFrontier reduces a block's (TF, docLen) pairs to their Pareto
// frontier in place and returns the surviving subslice: TF strictly
// ascending, DL strictly ascending, last pair holding the block-max TF.
// A pair dominates another when its TF is ≥ and its DL is ≤; dominated
// pairs can never achieve the block maximum for any stats, so dropping
// them keeps the bound exact. Both the encoder and the decode-time
// validator use this, so the canonical form is enforced end to end.
func blockFrontier(pairs []TFDL) []TFDL {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].TF != pairs[j].TF {
			return pairs[i].TF < pairs[j].TF
		}
		return pairs[i].DL < pairs[j].DL
	})
	// Keep the min-DL pair of each TF run.
	n := 0
	for i := range pairs {
		if n == 0 || pairs[i].TF != pairs[n-1].TF {
			pairs[n] = pairs[i]
			n++
		}
	}
	pairs = pairs[:n]
	// Right-to-left suffix-minima walk: a pair survives only if its DL is
	// strictly below every higher-TF survivor's.
	w := len(pairs)
	minDL := ^uint32(0)
	for i := len(pairs) - 1; i >= 0; i-- {
		if i == len(pairs)-1 || pairs[i].DL < minDL {
			w--
			pairs[w] = pairs[i]
			if pairs[w].DL < minDL {
				minDL = pairs[w].DL
			}
		}
	}
	return pairs[w:]
}

// appendTermV3 encodes one term's dictionary entry and postings blob.
// Delta terms chain doc gaps across block boundaries (the blob is the
// v1/v2 posting encoding minus the leading count); bitmap terms emit a
// bitmap over the segment's doc ordinals followed by a (TF, positions)
// stream. docLen for frontier pairs falls back to 0 when the doc is not
// covered (Validate rejects such segments separately; 0 only inflates
// the bound, which stays safe).
func appendTermV3(dict, posts []byte, term string, pl PostingList, docLens map[DocID]uint32, docsSorted []DocID, pairs *[]TFDL) ([]byte, []byte) {
	df := len(pl)
	enc := uint64(0)
	if df*8 >= len(docsSorted) && postingDocsCovered(pl, docLens) {
		enc = 1
	}
	nblocks := (df + postingsBlockSize - 1) / postingsBlockSize
	type skipRec struct {
		lastDoc  DocID
		endOff   int
		frontier []TFDL
	}
	skips := make([]skipRec, 0, nblocks)

	var blob []byte
	var bm, stream []byte
	if enc == 1 {
		bm = make([]byte, (len(docsSorted)+7)/8)
	}
	prevDoc := uint64(0)
	ord := 0
	for b := 0; b < nblocks; b++ {
		lo := b * postingsBlockSize
		hi := lo + v3BlockLen(b, df)
		*pairs = (*pairs)[:0]
		for i := lo; i < hi; i++ {
			p := pl[i]
			if enc == 0 {
				blob = binary.AppendUvarint(blob, uint64(p.Doc)-prevDoc)
				prevDoc = uint64(p.Doc)
				blob = binary.AppendUvarint(blob, uint64(p.TF))
				blob = appendPositions(blob, p.Positions)
			} else {
				for docsSorted[ord] < p.Doc {
					ord++
				}
				bm[ord>>3] |= 1 << uint(ord&7)
				ord++
				stream = binary.AppendUvarint(stream, uint64(p.TF))
				stream = appendPositions(stream, p.Positions)
			}
			*pairs = append(*pairs, TFDL{p.TF, docLens[p.Doc]})
		}
		end := len(blob)
		if enc == 1 {
			end = len(stream)
		}
		fr := blockFrontier(*pairs)
		skips = append(skips, skipRec{pl[hi-1].Doc, end, append([]TFDL(nil), fr...)})
	}
	if enc == 1 {
		blob = binary.AppendUvarint(nil, uint64(len(bm)))
		blob = append(blob, bm...)
		blob = append(blob, stream...)
	}

	dict = binary.AppendUvarint(dict, uint64(len(term)))
	dict = append(dict, term...)
	dict = binary.AppendUvarint(dict, enc)
	dict = binary.AppendUvarint(dict, uint64(df))
	dict = binary.AppendUvarint(dict, uint64(len(blob)))
	prevLast, prevEnd := uint64(0), 0
	for _, sk := range skips {
		dict = binary.AppendUvarint(dict, uint64(sk.lastDoc)-prevLast)
		dict = binary.AppendUvarint(dict, uint64(sk.endOff-prevEnd))
		prevLast, prevEnd = uint64(sk.lastDoc), sk.endOff
		dict = binary.AppendUvarint(dict, uint64(len(sk.frontier)))
		for _, p := range sk.frontier {
			dict = binary.AppendUvarint(dict, uint64(p.TF))
			dict = binary.AppendUvarint(dict, uint64(p.DL))
		}
	}
	return dict, append(posts, blob...)
}

// appendPositions emits npos followed by delta-encoded positions.
func appendPositions(out []byte, positions []uint32) []byte {
	out = binary.AppendUvarint(out, uint64(len(positions)))
	prev := uint64(0)
	for _, pos := range positions {
		out = binary.AppendUvarint(out, uint64(pos)-prev)
		prev = uint64(pos)
	}
	return out
}

// postingDocsCovered reports whether every posting doc has a length
// entry — the precondition for bitmap encoding (the bitmap indexes into
// the sorted covered-doc list).
func postingDocsCovered(pl PostingList, docLens map[DocID]uint32) bool {
	for _, p := range pl {
		if _, ok := docLens[p.Doc]; !ok {
			return false
		}
	}
	return true
}

// encodeV3 serializes a built segment in the v3 block-max layout.
func (s *Segment) encodeV3() []byte {
	out := binary.AppendUvarint(nil, segmentMagicV3)
	out = binary.AppendUvarint(out, s.Gen)
	out = appendDocLens(out, s.DocLens)

	terms := s.TermsSorted()
	out = binary.AppendUvarint(out, uint64(len(terms)))
	if len(terms) == 0 {
		return out
	}
	docsSorted := sortedDocIDs(s.DocLens)

	var dict, posts []byte
	type blockMeta struct {
		firstTerm string
		dictOff   int
		postOff   int
	}
	blocks := make([]blockMeta, 0, (len(terms)+dictBlockSize-1)/dictBlockSize)
	var pairs []TFDL
	for i, t := range terms {
		if i%dictBlockSize == 0 {
			blocks = append(blocks, blockMeta{t, len(dict), len(posts)})
		}
		dict, posts = appendTermV3(dict, posts, t, s.Terms[t], s.DocLens, docsSorted, &pairs)
	}
	out = binary.AppendUvarint(out, uint64(len(blocks)))
	for _, b := range blocks {
		out = binary.AppendUvarint(out, uint64(len(b.firstTerm)))
		out = append(out, b.firstTerm...)
		out = binary.AppendUvarint(out, uint64(b.dictOff))
		out = binary.AppendUvarint(out, uint64(b.postOff))
	}
	out = binary.AppendUvarint(out, uint64(len(dict)))
	out = append(out, dict...)
	out = binary.AppendUvarint(out, uint64(len(posts)))
	out = append(out, posts...)
	return out
}

// decodeDocLensOrdered parses the docs region like decodeDocLens but also
// returns the doc IDs in encounter order, enforcing the strictly
// ascending order v3 bitmaps index into.
func decodeDocLensOrdered(data []byte, into map[DocID]uint32) ([]byte, []DocID, error) {
	ndocs, n := binary.Uvarint(data)
	if n <= 0 || ndocs > uint64(len(data))/2 {
		return nil, nil, errCorruptSegment
	}
	data = data[n:]
	docs := make([]DocID, 0, ndocs)
	prev := uint64(0)
	for i := uint64(0); i < ndocs; i++ {
		gap, n := binary.Uvarint(data)
		if n <= 0 || (i > 0 && gap == 0) || gap > 1<<32-1 {
			return nil, nil, errCorruptSegment
		}
		data = data[n:]
		doc := prev + gap
		if doc > 1<<32-1 {
			return nil, nil, errCorruptSegment
		}
		prev = doc
		dl, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, errCorruptSegment
		}
		data = data[n:]
		into[DocID(doc)] = uint32(dl)
		docs = append(docs, DocID(doc))
	}
	return data, docs, nil
}

// decodeSegmentV3 parses the v3 layout. raw is the full encoding
// (including magic); data starts after the magic.
func decodeSegmentV3(raw, data []byte) (*Segment, error) {
	gen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]

	docLens := make(map[DocID]uint32)
	data, docsSorted, err := decodeDocLensOrdered(data, docLens)
	if err != nil {
		return nil, err
	}

	nterms, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]
	if nterms == 0 {
		if len(data) != 0 {
			return nil, errCorruptSegment
		}
		seg := NewSegment(gen)
		seg.DocLens = docLens
		return seg, nil
	}
	if nterms > uint64(len(data))/2 {
		return nil, errCorruptSegment
	}

	nblocks, n := binary.Uvarint(data)
	if n <= 0 || nblocks == 0 || nblocks > nterms || nblocks > uint64(len(data))/3 {
		return nil, errCorruptSegment
	}
	data = data[n:]
	blocks := make([]lazyBlock, 0, nblocks)
	for i := uint64(0); i < nblocks; i++ {
		tlen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < tlen {
			return nil, errCorruptSegment
		}
		first := data[n : n+int(tlen)]
		data = data[n+int(tlen):]
		dictOff, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		data = data[n:]
		postOff, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		data = data[n:]
		blocks = append(blocks, lazyBlock{firstTerm: first, dictOff: int(dictOff), postOff: int(postOff)})
	}

	dictLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < dictLen {
		return nil, errCorruptSegment
	}
	dict := data[n : n+int(dictLen)]
	data = data[n+int(dictLen):]
	postLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < postLen {
		return nil, errCorruptSegment
	}
	posts := data[n : n+int(postLen)]
	if len(data[n+int(postLen):]) != 0 {
		return nil, errCorruptSegment
	}

	if err := validateLazyRegionsV3(dict, posts, int(nterms), blocks, docLens, docsSorted); err != nil {
		return nil, err
	}

	return &Segment{
		Gen:     gen,
		DocLens: docLens,
		lazy: &lazySegment{
			raw:        raw,
			blocks:     blocks,
			dict:       dict,
			posts:      posts,
			nterms:     int(nterms),
			v3:         true,
			docsSorted: docsSorted,
		},
	}, nil
}

// dictEntryV3 is one parsed v3 dictionary entry header. skipsRaw is the
// undecoded skip-entry window (aliasing the dict region); parseSkipsV3
// turns it into []BlockSkip.
type dictEntryV3 struct {
	term     []byte
	enc      uint64 // 0 = delta blocks, 1 = bitmap
	df       int
	blobLen  int
	skipsRaw []byte
}

// nextDictEntryV3 parses one v3 dictionary entry, structurally checking
// the skip entries while locating their extent, and returns the
// remaining dictionary bytes.
func nextDictEntryV3(dict []byte) (e dictEntryV3, rest []byte, err error) {
	tlen, n := binary.Uvarint(dict)
	if n <= 0 || uint64(len(dict)-n) < tlen {
		return e, nil, errCorruptSegment
	}
	e.term = dict[n : n+int(tlen)]
	dict = dict[n+int(tlen):]
	enc, n := binary.Uvarint(dict)
	if n <= 0 || enc > 1 {
		return e, nil, errCorruptSegment
	}
	dict = dict[n:]
	df, n := binary.Uvarint(dict)
	if n <= 0 || df == 0 || df > 1<<31 {
		return e, nil, errCorruptSegment
	}
	dict = dict[n:]
	blobLen, n := binary.Uvarint(dict)
	if n <= 0 || blobLen > 1<<31 {
		return e, nil, errCorruptSegment
	}
	dict = dict[n:]
	e.enc, e.df, e.blobLen = enc, int(df), int(blobLen)

	nskips := (e.df + postingsBlockSize - 1) / postingsBlockSize
	start := dict
	for i := 0; i < nskips; i++ {
		gap, n := binary.Uvarint(dict)
		if n <= 0 || (i > 0 && gap == 0) {
			return e, nil, errCorruptSegment
		}
		dict = dict[n:]
		eo, n := binary.Uvarint(dict)
		if n <= 0 || eo == 0 {
			return e, nil, errCorruptSegment
		}
		dict = dict[n:]
		np, n := binary.Uvarint(dict)
		if n <= 0 || np == 0 || np > uint64(v3BlockLen(i, e.df)) {
			return e, nil, errCorruptSegment
		}
		dict = dict[n:]
		for j := uint64(0); j < 2*np; j++ {
			if _, n = binary.Uvarint(dict); n <= 0 {
				return e, nil, errCorruptSegment
			}
			dict = dict[n:]
		}
	}
	e.skipsRaw = start[:len(start)-len(dict)]
	return e, dict, nil
}

// parseSkipsV3 decodes a dictionary entry's skip entries into absolute
// form, enforcing the monotonic invariants cursors rely on: last DocIDs
// strictly ascending and 32-bit, end offsets strictly ascending, and
// each frontier in canonical (TF and DL both strictly ascending) order.
func parseSkipsV3(raw []byte, df int) ([]BlockSkip, error) {
	nskips := (df + postingsBlockSize - 1) / postingsBlockSize
	skips := make([]BlockSkip, 0, nskips)
	lastDoc, endOff := uint64(0), 0
	for i := 0; i < nskips; i++ {
		gap, n := binary.Uvarint(raw)
		if n <= 0 || (i > 0 && gap == 0) {
			return nil, errCorruptSegment
		}
		raw = raw[n:]
		lastDoc += gap
		if lastDoc > 1<<32-1 {
			return nil, errCorruptSegment
		}
		eo, n := binary.Uvarint(raw)
		if n <= 0 || eo == 0 || eo > 1<<31 {
			return nil, errCorruptSegment
		}
		raw = raw[n:]
		endOff += int(eo)
		np, n := binary.Uvarint(raw)
		if n <= 0 || np == 0 || np > uint64(v3BlockLen(i, df)) {
			return nil, errCorruptSegment
		}
		raw = raw[n:]
		frontier := make([]TFDL, 0, np)
		for j := uint64(0); j < np; j++ {
			tf, n := binary.Uvarint(raw)
			if n <= 0 {
				return nil, errCorruptSegment
			}
			raw = raw[n:]
			dl, n := binary.Uvarint(raw)
			if n <= 0 {
				return nil, errCorruptSegment
			}
			raw = raw[n:]
			if tf > 1<<32-1 || dl > 1<<32-1 {
				return nil, errCorruptSegment
			}
			if j > 0 {
				prev := frontier[j-1]
				if uint32(tf) <= prev.TF || uint32(dl) <= prev.DL {
					return nil, errCorruptSegment
				}
			}
			frontier = append(frontier, TFDL{uint32(tf), uint32(dl)})
		}
		skips = append(skips, BlockSkip{LastDoc: DocID(lastDoc), EndOff: endOff, Frontier: frontier})
	}
	if len(raw) != 0 {
		return nil, errCorruptSegment
	}
	return skips, nil
}

// validateLazyRegionsV3 is the v3 counterpart of validateLazyRegions: it
// walks the dictionary and postings regions once at decode time, checks
// the 64-term block index against the walk, and — beyond the v2 checks —
// re-derives every skip entry (last DocID, end offset, frontier) from
// the postings bytes and requires exact agreement, so lying block-max
// bounds are rejected up front rather than silently corrupting top-k
// results. Fail-loud parity with v2: any structural or metadata lie
// fails the whole decode.
func validateLazyRegionsV3(dict, posts []byte, nterms int, blocks []lazyBlock, docLens map[DocID]uint32, docsSorted []DocID) error {
	var prev []byte
	count, postOff := 0, 0
	dictLen := len(dict)
	var pairs []TFDL
	for len(dict) > 0 {
		dictOff := dictLen - len(dict)
		e, rest, err := nextDictEntryV3(dict)
		if err != nil {
			return err
		}
		if count%dictBlockSize == 0 {
			bi := count / dictBlockSize
			if bi >= len(blocks) {
				return errCorruptSegment
			}
			b := blocks[bi]
			if b.dictOff != dictOff || b.postOff != postOff || !bytes.Equal(b.firstTerm, e.term) {
				return errCorruptSegment
			}
		}
		if count > 0 && bytes.Compare(prev, e.term) >= 0 {
			return errCorruptSegment
		}
		skips, err := parseSkipsV3(e.skipsRaw, e.df)
		if err != nil {
			return err
		}
		if postOff+e.blobLen > len(posts) {
			return errCorruptSegment
		}
		if err := checkTermBlobV3(posts[postOff:postOff+e.blobLen], e, skips, docLens, docsSorted, &pairs); err != nil {
			return err
		}
		prev = e.term
		count++
		postOff += e.blobLen
		dict = rest
	}
	if count != nterms || postOff != len(posts) {
		return errCorruptSegment
	}
	if (count+dictBlockSize-1)/dictBlockSize != len(blocks) {
		return errCorruptSegment
	}
	return nil
}

// checkTermBlobV3 walks one term's postings blob, recomputing per block
// the last DocID, end offset, and canonical frontier, and requires exact
// equality with the claimed skip entries.
func checkTermBlobV3(blob []byte, e dictEntryV3, skips []BlockSkip, docLens map[DocID]uint32, docsSorted []DocID, pairs *[]TFDL) error {
	var bm, stream []byte
	if e.enc == 1 {
		bmLen, n := binary.Uvarint(blob)
		want := uint64((len(docsSorted) + 7) / 8)
		if n <= 0 || bmLen != want || uint64(len(blob)-n) < bmLen {
			return errCorruptSegment
		}
		bm = blob[n : n+int(bmLen)]
		stream = blob[n+int(bmLen):]
		// Trailing bits beyond the doc count must be zero and the set-bit
		// count must match df exactly.
		pop := 0
		for _, b := range bm {
			pop += bits.OnesCount8(b)
		}
		if pop != e.df {
			return errCorruptSegment
		}
		for ord := len(docsSorted); ord < len(bm)*8; ord++ {
			if bm[ord>>3]&(1<<uint(ord&7)) != 0 {
				return errCorruptSegment
			}
		}
	} else {
		stream = blob
	}

	b := stream
	off := 0
	prevDoc := uint64(0)
	ord := 0
	for bi, sk := range skips {
		blen := v3BlockLen(bi, e.df)
		*pairs = (*pairs)[:0]
		var lastDoc DocID
		for i := 0; i < blen; i++ {
			var doc DocID
			if e.enc == 0 {
				gap, n := binary.Uvarint(b)
				if n <= 0 || (bi+i > 0 && gap == 0) || gap > 1<<32-1 {
					return errCorruptSegment
				}
				prevDoc += gap
				if prevDoc > 1<<32-1 {
					return errCorruptSegment
				}
				b = b[n:]
				off += n
				doc = DocID(prevDoc)
			} else {
				for ord < len(docsSorted) && bm[ord>>3]&(1<<uint(ord&7)) == 0 {
					ord++
				}
				if ord >= len(docsSorted) {
					return errCorruptSegment
				}
				doc = docsSorted[ord]
				ord++
			}
			tf, n := binary.Uvarint(b)
			if n <= 0 || tf > 1<<32-1 {
				return errCorruptSegment
			}
			b = b[n:]
			off += n
			npos, n := binary.Uvarint(b)
			if n <= 0 {
				return errCorruptSegment
			}
			b = b[n:]
			off += n
			for j := uint64(0); j < npos; j++ {
				if _, n = binary.Uvarint(b); n <= 0 {
					return errCorruptSegment
				}
				b = b[n:]
				off += n
			}
			*pairs = append(*pairs, TFDL{uint32(tf), docLens[doc]})
			lastDoc = doc
		}
		fr := blockFrontier(*pairs)
		if sk.LastDoc != lastDoc || sk.EndOff != off || len(sk.Frontier) != len(fr) {
			return errCorruptSegment
		}
		for i := range fr {
			if fr[i] != sk.Frontier[i] {
				return errCorruptSegment
			}
		}
	}
	if len(b) != 0 {
		return errCorruptSegment
	}
	return nil
}

// decodeTermBlobV3 fully materializes one term's posting list (with
// positions) from its v3 blob. Only called on validated regions;
// structural errors are defensive.
func decodeTermBlobV3(blob []byte, e dictEntryV3, docsSorted []DocID) (PostingList, error) {
	var bm, stream []byte
	if e.enc == 1 {
		bmLen, n := binary.Uvarint(blob)
		if n <= 0 || uint64(len(blob)-n) < bmLen {
			return nil, errCorruptSegment
		}
		bm = blob[n : n+int(bmLen)]
		stream = blob[n+int(bmLen):]
	} else {
		stream = blob
	}
	pl := make(PostingList, 0, e.df)
	b := stream
	prevDoc := uint64(0)
	ord := 0
	for i := 0; i < e.df; i++ {
		var doc DocID
		if e.enc == 0 {
			gap, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, errCorruptSegment
			}
			b = b[n:]
			prevDoc += gap
			doc = DocID(prevDoc)
		} else {
			for ord < len(docsSorted) && bm[ord>>3]&(1<<uint(ord&7)) == 0 {
				ord++
			}
			if ord >= len(docsSorted) {
				return nil, errCorruptSegment
			}
			doc = docsSorted[ord]
			ord++
		}
		tf, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		b = b[n:]
		npos, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		b = b[n:]
		var positions []uint32
		prevPos := uint64(0)
		for j := uint64(0); j < npos; j++ {
			pgap, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, errCorruptSegment
			}
			b = b[n:]
			prevPos += pgap
			positions = append(positions, uint32(prevPos))
		}
		pl = append(pl, Posting{Doc: doc, TF: uint32(tf), Positions: positions})
	}
	if len(b) != 0 {
		return nil, errCorruptSegment
	}
	return pl, nil
}

// findV3 locates a term's v3 dictionary entry and postings blob without
// decoding any postings: binary search the block index, scan at most one
// 64-term block accumulating the postings offset.
func (l *lazySegment) findV3(term string) (e dictEntryV3, blob []byte, found bool, err error) {
	bi := sort.Search(len(l.blocks), func(i int) bool {
		return cmpBytesString(l.blocks[i].firstTerm, term) > 0
	}) - 1
	if bi < 0 {
		return e, nil, false, nil
	}
	b := l.blocks[bi]
	dictEnd := len(l.dict)
	if bi+1 < len(l.blocks) {
		dictEnd = l.blocks[bi+1].dictOff
	}
	dict := l.dict[b.dictOff:dictEnd]
	postOff := b.postOff
	for len(dict) > 0 {
		ent, rest, err := nextDictEntryV3(dict)
		if err != nil {
			return e, nil, false, err
		}
		dict = rest
		switch c := cmpBytesString(ent.term, term); {
		case c == 0:
			if postOff+ent.blobLen > len(l.posts) {
				return e, nil, false, errCorruptSegment
			}
			return ent, l.posts[postOff : postOff+ent.blobLen], true, nil
		case c > 0:
			return e, nil, false, nil
		}
		postOff += ent.blobLen
	}
	return e, nil, false, nil
}

// lookupV3 is the v3 counterpart of lookup: decode exactly one term's
// posting list on a hit.
func (l *lazySegment) lookupV3(term string) (PostingList, bool, error) {
	e, blob, found, err := l.findV3(term)
	if err != nil || !found {
		return nil, found, err
	}
	pl, err := decodeTermBlobV3(blob, e, l.docsSorted)
	if err != nil {
		return nil, false, err
	}
	if err := pl.sortCheck(); err != nil {
		return nil, false, err
	}
	return pl, true, nil
}

// decodeAllV3 decodes every posting list in dictionary order. Caller
// holds the owning Segment's write lock.
func (l *lazySegment) decodeAllV3() (map[string]PostingList, error) {
	m := make(map[string]PostingList, l.nterms)
	dict := l.dict
	postOff := 0
	for len(dict) > 0 {
		e, rest, err := nextDictEntryV3(dict)
		if err != nil {
			return nil, err
		}
		dict = rest
		if postOff+e.blobLen > len(l.posts) {
			return nil, errCorruptSegment
		}
		pl, err := decodeTermBlobV3(l.posts[postOff:postOff+e.blobLen], e, l.docsSorted)
		if err != nil {
			return nil, err
		}
		if err := pl.sortCheck(); err != nil {
			return nil, err
		}
		m[string(e.term)] = pl
		postOff += e.blobLen
	}
	if len(m) != l.nterms {
		return nil, errCorruptSegment
	}
	return m, nil
}
