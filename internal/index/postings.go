package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// DocID identifies a document (stable per URL; assigned by the engine).
type DocID uint32

// Posting is one document's occurrence record for one term.
type Posting struct {
	Doc       DocID
	TF        uint32   // term frequency
	Positions []uint32 // token positions, ascending
}

// PostingList is a term's postings, sorted ascending by DocID.
type PostingList []Posting

// Docs returns just the document IDs of the list.
func (pl PostingList) Docs() []DocID {
	out := make([]DocID, len(pl))
	for i, p := range pl {
		out[i] = p.Doc
	}
	return out
}

// Find returns the posting for a document, if present, via binary search.
func (pl PostingList) Find(doc DocID) (Posting, bool) {
	i := sort.Search(len(pl), func(i int) bool { return pl[i].Doc >= doc })
	if i < len(pl) && pl[i].Doc == doc {
		return pl[i], true
	}
	return Posting{}, false
}

// sortCheck verifies ascending strict DocID order.
func (pl PostingList) sortCheck() error {
	for i := 1; i < len(pl); i++ {
		if pl[i].Doc <= pl[i-1].Doc {
			return fmt.Errorf("index: postings out of order at %d", i)
		}
	}
	return nil
}

var errCorruptPostings = errors.New("index: corrupt postings encoding")

// Encode serializes the list with delta-varint compression: doc gaps,
// term frequencies, and position gaps.
func (pl PostingList) Encode() []byte {
	out := binary.AppendUvarint(nil, uint64(len(pl)))
	prevDoc := uint64(0)
	for _, p := range pl {
		out = binary.AppendUvarint(out, uint64(p.Doc)-prevDoc)
		prevDoc = uint64(p.Doc)
		out = binary.AppendUvarint(out, uint64(p.TF))
		out = binary.AppendUvarint(out, uint64(len(p.Positions)))
		prevPos := uint64(0)
		for _, pos := range p.Positions {
			out = binary.AppendUvarint(out, uint64(pos)-prevPos)
			prevPos = uint64(pos)
		}
	}
	return out
}

// DecodePostings parses an encoded posting list and returns the remaining
// bytes.
func DecodePostings(data []byte) (PostingList, []byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, errCorruptPostings
	}
	data = data[n:]
	pl := make(PostingList, 0, count)
	prevDoc := uint64(0)
	for i := uint64(0); i < count; i++ {
		gap, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, errCorruptPostings
		}
		data = data[n:]
		doc := prevDoc + gap
		prevDoc = doc
		tf, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, errCorruptPostings
		}
		data = data[n:]
		npos, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, errCorruptPostings
		}
		data = data[n:]
		var positions []uint32
		prevPos := uint64(0)
		for j := uint64(0); j < npos; j++ {
			pgap, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, nil, errCorruptPostings
			}
			data = data[n:]
			pos := prevPos + pgap
			prevPos = pos
			positions = append(positions, uint32(pos))
		}
		pl = append(pl, Posting{Doc: DocID(doc), TF: uint32(tf), Positions: positions})
	}
	return pl, data, nil
}

// mergePostingLists unions two lists; on DocID collision the posting from
// b (the newer segment) wins.
func mergePostingLists(a, b PostingList) PostingList {
	out := make(PostingList, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Doc < b[j].Doc:
			out = append(out, a[i])
			i++
		case a[i].Doc > b[j].Doc:
			out = append(out, b[j])
			j++
		default:
			out = append(out, b[j])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// dropDocs removes postings whose DocID is in the tombstone set.
func dropDocs(pl PostingList, dead map[DocID]bool) PostingList {
	if len(dead) == 0 {
		return pl
	}
	out := pl[:0:0]
	for _, p := range pl {
		if !dead[p.Doc] {
			out = append(out, p)
		}
	}
	return out
}
