package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Segment is an immutable inverted-index fragment: the postings produced
// by indexing one batch of documents. Worker bees build one delta segment
// per publish task; shards hold a chain of segments merged on read or by
// compaction. Gen orders segments: postings in a higher-Gen segment
// supersede a lower-Gen segment's postings for the same document, and a
// segment's DocLens set doubles as its tombstone set (any doc re-indexed
// here shadows its older postings everywhere, even for terms the new
// version no longer contains).
type Segment struct {
	Gen     uint64
	Terms   map[string]PostingList
	DocLens map[DocID]uint32 // analyzed token count per covered document
}

// NewSegment returns an empty segment with the given generation.
func NewSegment(gen uint64) *Segment {
	return &Segment{
		Gen:     gen,
		Terms:   make(map[string]PostingList),
		DocLens: make(map[DocID]uint32),
	}
}

// Builder accumulates documents into a segment.
type Builder struct {
	seg *Segment
}

// NewBuilder creates a segment builder with the given generation.
func NewBuilder(gen uint64) *Builder {
	return &Builder{seg: NewSegment(gen)}
}

// Add analyzes and indexes one document. Re-adding a DocID replaces its
// postings within this builder.
func (b *Builder) Add(doc DocID, text string) {
	if _, dup := b.seg.DocLens[doc]; dup {
		// Rebuild without the stale postings of this doc.
		for term, pl := range b.seg.Terms {
			b.seg.Terms[term] = dropDocs(pl, map[DocID]bool{doc: true})
			if len(b.seg.Terms[term]) == 0 {
				delete(b.seg.Terms, term)
			}
		}
	}
	tokens := Analyze(text)
	b.seg.DocLens[doc] = uint32(len(tokens))
	byTerm := make(map[string][]uint32)
	for _, tok := range tokens {
		byTerm[tok.Term] = append(byTerm[tok.Term], tok.Pos)
	}
	for term, positions := range byTerm {
		p := Posting{Doc: doc, TF: uint32(len(positions)), Positions: positions}
		pl := b.seg.Terms[term]
		idx := sort.Search(len(pl), func(i int) bool { return pl[i].Doc >= doc })
		pl = append(pl, Posting{})
		copy(pl[idx+1:], pl[idx:])
		pl[idx] = p
		b.seg.Terms[term] = pl
	}
}

// DocCount returns the number of documents added so far.
func (b *Builder) DocCount() int { return len(b.seg.DocLens) }

// Build finalizes and returns the segment. The builder must not be used
// afterwards.
func (b *Builder) Build() *Segment {
	seg := b.seg
	b.seg = nil
	return seg
}

// TermsSorted returns the segment's terms in lexicographic order.
func (s *Segment) TermsSorted() []string {
	out := make([]string, 0, len(s.Terms))
	for t := range s.Terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Postings returns the posting list for a term (nil if absent).
func (s *Segment) Postings(term string) PostingList { return s.Terms[term] }

// Covers reports whether the segment indexes (or tombstones) a document.
func (s *Segment) Covers(doc DocID) bool {
	_, ok := s.DocLens[doc]
	return ok
}

var errCorruptSegment = errors.New("index: corrupt segment encoding")

const segmentMagic = 0x5153 // "QS"

// Encode serializes the segment deterministically (sorted terms and doc
// IDs), so that every honest worker bee produces byte-identical segments
// — the property commit–reveal voting relies on.
func (s *Segment) Encode() []byte {
	out := binary.AppendUvarint(nil, segmentMagic)
	out = binary.AppendUvarint(out, s.Gen)

	docs := make([]DocID, 0, len(s.DocLens))
	for d := range s.DocLens {
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	out = binary.AppendUvarint(out, uint64(len(docs)))
	prev := uint64(0)
	for _, d := range docs {
		out = binary.AppendUvarint(out, uint64(d)-prev)
		prev = uint64(d)
		out = binary.AppendUvarint(out, uint64(s.DocLens[d]))
	}

	terms := s.TermsSorted()
	out = binary.AppendUvarint(out, uint64(len(terms)))
	for _, t := range terms {
		out = binary.AppendUvarint(out, uint64(len(t)))
		out = append(out, t...)
		enc := s.Terms[t].Encode()
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

// DecodeSegment parses an encoded segment.
func DecodeSegment(data []byte) (*Segment, error) {
	magic, n := binary.Uvarint(data)
	if n <= 0 || magic != segmentMagic {
		return nil, errCorruptSegment
	}
	data = data[n:]
	gen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]

	seg := NewSegment(gen)
	ndocs, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]
	prev := uint64(0)
	for i := uint64(0); i < ndocs; i++ {
		gap, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		data = data[n:]
		doc := prev + gap
		prev = doc
		dl, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		data = data[n:]
		seg.DocLens[DocID(doc)] = uint32(dl)
	}

	nterms, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]
	for i := uint64(0); i < nterms; i++ {
		tlen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < tlen {
			return nil, errCorruptSegment
		}
		data = data[n:]
		term := string(data[:tlen])
		data = data[tlen:]
		plen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < plen {
			return nil, errCorruptSegment
		}
		data = data[n:]
		pl, rest, err := DecodePostings(data[:plen])
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, errCorruptSegment
		}
		if err := pl.sortCheck(); err != nil {
			return nil, err
		}
		data = data[plen:]
		seg.Terms[term] = pl
	}
	return seg, nil
}

// Validate checks internal consistency: sorted postings and every posting
// doc covered by DocLens.
func (s *Segment) Validate() error {
	for term, pl := range s.Terms {
		if err := pl.sortCheck(); err != nil {
			return fmt.Errorf("term %q: %w", term, err)
		}
		for _, p := range pl {
			if _, ok := s.DocLens[p.Doc]; !ok {
				return fmt.Errorf("index: term %q posting doc %d lacks doc length", term, p.Doc)
			}
			if p.TF == 0 {
				return fmt.Errorf("index: term %q doc %d zero TF", term, p.Doc)
			}
		}
	}
	return nil
}

// Merge combines segments into one. Segments are applied oldest
// generation first; a newer segment's covered documents shadow all their
// older postings (tombstone semantics), and its postings replace older
// ones per term. Ties on Gen are broken by input order.
func Merge(segments []*Segment) *Segment {
	if len(segments) == 0 {
		return NewSegment(0)
	}
	ordered := append([]*Segment(nil), segments...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Gen < ordered[j].Gen })

	out := NewSegment(ordered[len(ordered)-1].Gen)
	for _, seg := range ordered {
		// Tombstone every doc this segment covers.
		dead := make(map[DocID]bool, len(seg.DocLens))
		for d := range seg.DocLens {
			dead[d] = true
		}
		for term, pl := range out.Terms {
			out.Terms[term] = dropDocs(pl, dead)
			if len(out.Terms[term]) == 0 {
				delete(out.Terms, term)
			}
		}
		for term, pl := range seg.Terms {
			out.Terms[term] = mergePostingLists(out.Terms[term], pl)
		}
		for d, l := range seg.DocLens {
			out.DocLens[d] = l
		}
	}
	return out
}
