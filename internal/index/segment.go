package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Segment is an immutable inverted-index fragment: the postings produced
// by indexing one batch of documents. Worker bees build one delta segment
// per publish task; shards hold a chain of segments merged on read or by
// compaction. Gen orders segments: postings in a higher-Gen segment
// supersede a lower-Gen segment's postings for the same document, and a
// segment's DocLens set doubles as its tombstone set (any doc re-indexed
// here shadows its older postings everywhere, even for terms the new
// version no longer contains).
//
// Segments exist in two physical states behind one API:
//
//   - built: Terms holds every posting list in memory (Builder, Merge, and
//     v1 decoding produce these);
//   - lazy: the segment was decoded from the v2 block-structured format
//     and holds only the raw bytes plus a block index; Postings decodes a
//     single term's list on first use and memoizes it.
//
// Both states are safe for concurrent readers. A segment must not be
// mutated after it is shared (the memoized views assume immutability).
type Segment struct {
	Gen     uint64
	Terms   map[string]PostingList // materialized postings; nil for lazy v2 segments
	DocLens map[DocID]uint32       // analyzed token count per covered document

	mu      sync.RWMutex
	sorted  []string               // memoized TermsSorted result
	lazy    *lazySegment           // non-nil iff decoded from the v2/v3 format
	size    int64                  // memoized SizeBytes result (0 = not yet computed)
	cursors map[string]*cursorMeta // memoized per-term skip metadata (Cursor)
}

// NewSegment returns an empty segment with the given generation.
func NewSegment(gen uint64) *Segment {
	return &Segment{
		Gen:     gen,
		Terms:   make(map[string]PostingList),
		DocLens: make(map[DocID]uint32),
	}
}

// Builder accumulates documents into a segment.
type Builder struct {
	seg *Segment
}

// NewBuilder creates a segment builder with the given generation.
func NewBuilder(gen uint64) *Builder {
	return &Builder{seg: NewSegment(gen)}
}

// Add analyzes and indexes one document. Re-adding a DocID replaces its
// postings within this builder.
func (b *Builder) Add(doc DocID, text string) {
	if _, dup := b.seg.DocLens[doc]; dup {
		// Rebuild without the stale postings of this doc.
		for term, pl := range b.seg.Terms {
			b.seg.Terms[term] = dropDocs(pl, map[DocID]bool{doc: true})
			if len(b.seg.Terms[term]) == 0 {
				delete(b.seg.Terms, term)
			}
		}
	}
	tokens := Analyze(text)
	b.seg.DocLens[doc] = uint32(len(tokens))
	byTerm := make(map[string][]uint32)
	for _, tok := range tokens {
		byTerm[tok.Term] = append(byTerm[tok.Term], tok.Pos)
	}
	for term, positions := range byTerm {
		p := Posting{Doc: doc, TF: uint32(len(positions)), Positions: positions}
		pl := b.seg.Terms[term]
		idx := sort.Search(len(pl), func(i int) bool { return pl[i].Doc >= doc })
		pl = append(pl, Posting{})
		copy(pl[idx+1:], pl[idx:])
		pl[idx] = p
		b.seg.Terms[term] = pl
	}
}

// DocCount returns the number of documents added so far.
func (b *Builder) DocCount() int { return len(b.seg.DocLens) }

// Build finalizes and returns the segment. The builder must not be used
// afterwards.
func (b *Builder) Build() *Segment {
	seg := b.seg
	b.seg = nil
	return seg
}

// TermsSorted returns the segment's terms in lexicographic order. The
// slice is computed once and memoized (segments are immutable); callers
// must not modify it.
func (s *Segment) TermsSorted() []string {
	s.mu.RLock()
	sorted := s.sorted
	s.mu.RUnlock()
	if sorted != nil {
		return sorted
	}
	var out []string
	if s.lazy != nil {
		out = make([]string, 0, s.lazy.nterms)
		dict := s.lazy.dict
		for len(dict) > 0 {
			var term []byte
			var rest []byte
			var err error
			if s.lazy.v3 {
				var e dictEntryV3
				e, rest, err = nextDictEntryV3(dict)
				term = e.term
			} else {
				term, _, rest, err = nextDictEntry(dict)
			}
			if err != nil {
				break // dict region is validated at decode; defensive only
			}
			out = append(out, string(term))
			dict = rest
		}
	} else {
		out = make([]string, 0, len(s.Terms))
		for t := range s.Terms {
			out = append(out, t)
		}
		sort.Strings(out)
	}
	s.mu.Lock()
	s.sorted = out
	s.mu.Unlock()
	return out
}

// NumTerms returns the number of distinct terms in the segment without
// decoding any postings.
func (s *Segment) NumTerms() int {
	if s.lazy != nil {
		return s.lazy.nterms
	}
	return len(s.Terms)
}

// Postings returns the posting list for a term (nil if absent). On a lazy
// v2 segment only the requested term's list is decoded; the result is
// memoized so repeated lookups are map-hit cheap. Decode errors are
// unreachable for segments produced by DecodeSegment (which structurally
// validates both regions up front); defensively they surface as an absent
// term here and as an error from Validate.
func (s *Segment) Postings(term string) PostingList {
	if s.lazy == nil {
		return s.Terms[term]
	}
	s.mu.RLock()
	pl, ok := s.lazy.cache[term]
	s.mu.RUnlock()
	if ok {
		return pl
	}
	pl, found, err := s.lazy.lookup(term)
	if err != nil || !found {
		return nil
	}
	s.mu.Lock()
	if s.lazy.cache == nil {
		s.lazy.cache = make(map[string]PostingList)
	}
	// Re-check under the write lock: postingsMap may have installed a
	// complete cache while our lookup ran, and maps it has handed out are
	// iterated without the lock — they must never be written again. A
	// complete cache always already holds this term, so skipping the
	// duplicate write preserves that invariant.
	if cached, ok := s.lazy.cache[term]; ok {
		s.mu.Unlock()
		return cached
	}
	s.lazy.cache[term] = pl
	s.mu.Unlock()
	return pl
}

// postingsMap returns the complete term → postings view, fully decoding a
// lazy segment (Merge, Validate, and compaction need every list). The
// decoded map is memoized as the lazy segment's cache.
func (s *Segment) postingsMap() (map[string]PostingList, error) {
	if s.lazy == nil {
		return s.Terms, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.lazy.cache) == s.lazy.nterms {
		return s.lazy.cache, nil
	}
	m, err := s.lazy.decodeAll()
	if err != nil {
		return nil, err
	}
	s.lazy.cache = m
	return m, nil
}

// Covers reports whether the segment indexes (or tombstones) a document.
func (s *Segment) Covers(doc DocID) bool {
	_, ok := s.DocLens[doc]
	return ok
}

// Per-entry constants for SizeBytes: a map entry's bucket overhead, one
// Posting struct (Doc + TF + the Positions slice header), and one DocLens
// entry. Approximations of the amd64 in-memory footprint.
const (
	sizeMapEntry = 48
	sizePosting  = 40
	sizeDocLen   = 16
)

// SizeBytes estimates the segment's resident memory footprint. Cache
// eviction budgets are charged against it, so it is deliberately cheap
// and stable: a lazy v2/v3 segment is charged its raw encoding (posting
// lists or blocks a query later decodes and memoizes are NOT tracked —
// they can exceed the varint-packed raw bytes by a small constant
// factor, so the budget bounds the encoded working set, not every
// decoded view), a built segment its materialized posting lists. A lazy
// v3 segment additionally carries the materialized sorted-doc slice
// (bitmap ordinal → DocID) for block-granular decoding, so that is
// charged too. Segments are immutable once shared, so the walk runs once
// and is memoized.
func (s *Segment) SizeBytes() int64 {
	s.mu.RLock()
	size := s.size
	s.mu.RUnlock()
	if size != 0 {
		return size
	}
	size = int64(len(s.DocLens)) * sizeDocLen
	s.mu.RLock()
	lazy := s.lazy
	s.mu.RUnlock()
	if lazy != nil {
		size += int64(len(lazy.raw)) + int64(len(lazy.docsSorted))*4
	} else {
		for term, pl := range s.Terms {
			size += int64(len(term)) + sizeMapEntry + int64(len(pl))*sizePosting
			for i := range pl {
				size += int64(len(pl[i].Positions)) * 4
			}
		}
	}
	if size == 0 {
		size = 1 // empty segments still occupy a cache slot
	}
	s.mu.Lock()
	s.size = size
	s.mu.Unlock()
	return size
}

var errCorruptSegment = errors.New("index: corrupt segment encoding")

const (
	segmentMagic   = 0x5153 // "QS": v1, eager layout (decode compatibility only)
	segmentMagicV2 = 0x5154 // "QT": v2, block-structured lazy layout

	// dictBlockSize is the number of terms per dictionary block in the v2
	// layout. Lookups binary-search the block index, then scan at most one
	// block; postings byte offsets accumulate within the block.
	dictBlockSize = 64
)

// appendDocLens emits the shared docs region: sorted doc IDs,
// delta-encoded, each followed by its analyzed length.
func appendDocLens(out []byte, docLens map[DocID]uint32) []byte {
	docs := sortedDocIDs(docLens)
	out = binary.AppendUvarint(out, uint64(len(docs)))
	prev := uint64(0)
	for _, d := range docs {
		out = binary.AppendUvarint(out, uint64(d)-prev)
		prev = uint64(d)
		out = binary.AppendUvarint(out, uint64(docLens[d]))
	}
	return out
}

// decodeDocLens parses the docs region, returning the remaining bytes.
func decodeDocLens(data []byte, into map[DocID]uint32) ([]byte, error) {
	ndocs, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]
	prev := uint64(0)
	for i := uint64(0); i < ndocs; i++ {
		gap, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		data = data[n:]
		doc := prev + gap
		prev = doc
		dl, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		data = data[n:]
		into[DocID(doc)] = uint32(dl)
	}
	return data, nil
}

// Encode serializes the segment deterministically (sorted terms and doc
// IDs) in the current v3 block-max layout, so that every honest worker
// bee produces byte-identical segments — the property commit–reveal
// voting relies on. A lazily decoded segment returns a copy of its
// original bytes regardless of its version (decode → encode is exactly
// the identity). See docs/segment-format.md for the byte layout.
func (s *Segment) Encode() []byte {
	s.mu.RLock()
	if s.lazy != nil {
		raw := s.lazy.raw
		s.mu.RUnlock()
		return append([]byte(nil), raw...)
	}
	s.mu.RUnlock()
	return s.encodeV3()
}

// EncodeV2 serializes the segment in the v2 block-structured layout.
// Kept so tests can prove v2 bytes still decode to the same logical
// segment; new writers always emit v3. (A lazily decoded v2 segment's
// Encode already returns its original bytes.)
func (s *Segment) EncodeV2() []byte {
	out := binary.AppendUvarint(nil, segmentMagicV2)
	out = binary.AppendUvarint(out, s.Gen)
	out = appendDocLens(out, s.DocLens)

	terms := s.TermsSorted()
	out = binary.AppendUvarint(out, uint64(len(terms)))
	if len(terms) == 0 {
		return out
	}

	var dict, posts []byte
	type blockMeta struct {
		firstTerm string
		dictOff   int
		postOff   int
	}
	blocks := make([]blockMeta, 0, (len(terms)+dictBlockSize-1)/dictBlockSize)
	for i, t := range terms {
		if i%dictBlockSize == 0 {
			blocks = append(blocks, blockMeta{t, len(dict), len(posts)})
		}
		enc := s.Postings(t).Encode()
		dict = binary.AppendUvarint(dict, uint64(len(t)))
		dict = append(dict, t...)
		dict = binary.AppendUvarint(dict, uint64(len(enc)))
		posts = append(posts, enc...)
	}
	out = binary.AppendUvarint(out, uint64(len(blocks)))
	for _, b := range blocks {
		out = binary.AppendUvarint(out, uint64(len(b.firstTerm)))
		out = append(out, b.firstTerm...)
		out = binary.AppendUvarint(out, uint64(b.dictOff))
		out = binary.AppendUvarint(out, uint64(b.postOff))
	}
	out = binary.AppendUvarint(out, uint64(len(dict)))
	out = append(out, dict...)
	out = binary.AppendUvarint(out, uint64(len(posts)))
	out = append(out, posts...)
	return out
}

// EncodeV1 serializes the segment in the legacy eager layout. Kept so
// tests can prove v1 bytes still decode to the same logical segment; new
// writers always emit v2.
func (s *Segment) EncodeV1() []byte {
	out := binary.AppendUvarint(nil, segmentMagic)
	out = binary.AppendUvarint(out, s.Gen)
	out = appendDocLens(out, s.DocLens)

	terms := s.TermsSorted()
	out = binary.AppendUvarint(out, uint64(len(terms)))
	for _, t := range terms {
		out = binary.AppendUvarint(out, uint64(len(t)))
		out = append(out, t...)
		enc := s.Postings(t).Encode()
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

// DecodeSegment parses an encoded segment. v3 bytes (the current format)
// and v2 bytes produce lazy segments whose posting lists decode on
// demand; v1 bytes are still accepted and decode eagerly.
func DecodeSegment(data []byte) (*Segment, error) {
	magic, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	switch magic {
	case segmentMagic:
		return decodeSegmentV1(data[n:])
	case segmentMagicV2:
		return decodeSegmentV2(data, data[n:])
	case segmentMagicV3:
		return decodeSegmentV3(data, data[n:])
	default:
		return nil, errCorruptSegment
	}
}

// decodeSegmentV1 parses the legacy eager layout (magic already consumed).
func decodeSegmentV1(data []byte) (*Segment, error) {
	gen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]

	seg := NewSegment(gen)
	data, err := decodeDocLens(data, seg.DocLens)
	if err != nil {
		return nil, err
	}

	nterms, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]
	for i := uint64(0); i < nterms; i++ {
		tlen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < tlen {
			return nil, errCorruptSegment
		}
		data = data[n:]
		term := string(data[:tlen])
		data = data[tlen:]
		plen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < plen {
			return nil, errCorruptSegment
		}
		data = data[n:]
		pl, rest, err := DecodePostings(data[:plen])
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, errCorruptSegment
		}
		if err := pl.sortCheck(); err != nil {
			return nil, err
		}
		data = data[plen:]
		seg.Terms[term] = pl
	}
	return seg, nil
}

// lazySegment is the in-memory view of a v2-encoded segment: raw bytes, a
// parsed block index, and sub-slices for the dictionary and postings
// regions. Individual posting lists are decoded on demand.
type lazySegment struct {
	raw    []byte // the full original encoding (Encode returns a copy)
	blocks []lazyBlock
	dict   []byte // dictionary region: (termLen, term, postingsLen)* (v3: see nextDictEntryV3)
	posts  []byte // postings region: concatenated posting blobs
	nterms int

	v3         bool    // raw is the v3 block-max layout
	docsSorted []DocID // v3 only: covered docs ascending (bitmap ordinals)

	cache map[string]PostingList // memoized decoded lists (guarded by Segment.mu)
}

type lazyBlock struct {
	firstTerm []byte // aliases raw
	dictOff   int    // byte offset of the block's first dict entry
	postOff   int    // byte offset of the block's first postings blob
}

// decodeSegmentV2 parses the v2 layout. raw is the full encoding
// (including magic); data starts after the magic.
func decodeSegmentV2(raw, data []byte) (*Segment, error) {
	gen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]

	docLens := make(map[DocID]uint32)
	data, err := decodeDocLens(data, docLens)
	if err != nil {
		return nil, err
	}

	nterms, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorruptSegment
	}
	data = data[n:]
	if nterms == 0 {
		if len(data) != 0 {
			return nil, errCorruptSegment
		}
		seg := NewSegment(gen)
		seg.DocLens = docLens
		return seg, nil
	}
	// Counts are untrusted until the regions are walked: bound them by
	// what the remaining bytes could possibly hold (a dict entry is ≥ 2
	// bytes, a block-index record ≥ 3) before any count-sized allocation.
	if nterms > uint64(len(data))/2 {
		return nil, errCorruptSegment
	}

	nblocks, n := binary.Uvarint(data)
	if n <= 0 || nblocks == 0 || nblocks > nterms || nblocks > uint64(len(data))/3 {
		return nil, errCorruptSegment
	}
	data = data[n:]
	blocks := make([]lazyBlock, 0, nblocks)
	for i := uint64(0); i < nblocks; i++ {
		tlen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < tlen {
			return nil, errCorruptSegment
		}
		first := data[n : n+int(tlen)]
		data = data[n+int(tlen):]
		dictOff, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		data = data[n:]
		postOff, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorruptSegment
		}
		data = data[n:]
		blocks = append(blocks, lazyBlock{firstTerm: first, dictOff: int(dictOff), postOff: int(postOff)})
	}

	dictLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < dictLen {
		return nil, errCorruptSegment
	}
	dict := data[n : n+int(dictLen)]
	data = data[n+int(dictLen):]
	postLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < postLen {
		return nil, errCorruptSegment
	}
	posts := data[n : n+int(postLen)]
	if len(data[n+int(postLen):]) != 0 {
		return nil, errCorruptSegment
	}

	if err := validateLazyRegions(dict, posts, int(nterms), blocks); err != nil {
		return nil, err
	}

	return &Segment{
		Gen:     gen,
		DocLens: docLens,
		lazy: &lazySegment{
			raw:    raw,
			blocks: blocks,
			dict:   dict,
			posts:  posts,
			nterms: int(nterms),
		},
	}, nil
}

// nextDictEntry parses one v2 dictionary entry — (termLen, term bytes,
// postingsLen) — returning the term (aliasing dict), the posting list's
// byte length, and the remaining dictionary bytes.
func nextDictEntry(dict []byte) (term []byte, plen int, rest []byte, err error) {
	tlen, n := binary.Uvarint(dict)
	if n <= 0 || uint64(len(dict)-n) < tlen {
		return nil, 0, nil, errCorruptSegment
	}
	term = dict[n : n+int(tlen)]
	dict = dict[n+int(tlen):]
	p, n := binary.Uvarint(dict)
	if n <= 0 || p > 1<<31 {
		return nil, 0, nil, errCorruptSegment
	}
	return term, int(p), dict[n:], nil
}

// validateLazyRegions walks the dictionary and postings regions once at
// decode time: dictionary entries must parse with strictly sorted terms
// and a count matching nterms, postings lengths must tile the postings
// region exactly, every posting list must scan as well-formed varints
// with strictly ascending doc IDs, and each block-index record must agree
// exactly with the walk (its first term and both offsets land on the
// entry the walk reaches at that stride) so lookups can trust the index.
// The scan allocates nothing and builds nothing — it only proves the
// bytes are decodable — so DecodeSegment keeps v1's fail-loud contract
// for corrupt input (a byzantine worker's digest covers its corrupt
// bytes, so hash verification alone can't) while first-use decoding
// keeps the allocation win.
func validateLazyRegions(dict, posts []byte, nterms int, blocks []lazyBlock) error {
	var prev []byte
	count, postOff := 0, 0
	dictLen := len(dict)
	for len(dict) > 0 {
		dictOff := dictLen - len(dict)
		term, plen, rest, err := nextDictEntry(dict)
		if err != nil {
			return err
		}
		if count%dictBlockSize == 0 {
			bi := count / dictBlockSize
			if bi >= len(blocks) {
				return errCorruptSegment
			}
			b := blocks[bi]
			if b.dictOff != dictOff || b.postOff != postOff || !bytes.Equal(b.firstTerm, term) {
				return errCorruptSegment
			}
		}
		if count > 0 && bytes.Compare(prev, term) >= 0 {
			return errCorruptSegment
		}
		if postOff+plen > len(posts) {
			return errCorruptSegment
		}
		if err := scanPostings(posts[postOff : postOff+plen]); err != nil {
			return err
		}
		prev = term
		count++
		postOff += plen
		dict = rest
	}
	if count != nterms || postOff != len(posts) {
		return errCorruptSegment
	}
	if (count+dictBlockSize-1)/dictBlockSize != len(blocks) {
		return errCorruptSegment
	}
	return nil
}

// scanPostings structurally validates one encoded posting list without
// materializing it: every varint parses, doc IDs are strictly ascending
// and fit in 32 bits (truncation on decode would silently break the
// ordering the lookup path relies on), and the list consumes its window
// exactly.
func scanPostings(b []byte) error {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return errCorruptPostings
	}
	b = b[n:]
	doc := uint64(0)
	for i := uint64(0); i < count; i++ {
		gap, n := binary.Uvarint(b)
		if n <= 0 || (i > 0 && gap == 0) || gap > 1<<32-1 {
			return errCorruptPostings
		}
		doc += gap // cannot wrap: both operands stay below 2^32
		if doc > 1<<32-1 {
			return errCorruptPostings
		}
		b = b[n:]
		if _, n = binary.Uvarint(b); n <= 0 { // TF
			return errCorruptPostings
		}
		b = b[n:]
		npos, n := binary.Uvarint(b)
		if n <= 0 {
			return errCorruptPostings
		}
		b = b[n:]
		for j := uint64(0); j < npos; j++ {
			if _, n = binary.Uvarint(b); n <= 0 {
				return errCorruptPostings
			}
			b = b[n:]
		}
	}
	if len(b) != 0 {
		return errCorruptPostings
	}
	return nil
}

// cmpBytesString compares b to s lexicographically without allocating.
func cmpBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// lookup binary-searches the block index for the term's block, then scans
// that block's dictionary entries, accumulating the postings byte offset,
// and decodes exactly one posting list on a hit.
func (l *lazySegment) lookup(term string) (PostingList, bool, error) {
	if l.v3 {
		return l.lookupV3(term)
	}
	// Last block whose first term is <= term.
	bi := sort.Search(len(l.blocks), func(i int) bool {
		return cmpBytesString(l.blocks[i].firstTerm, term) > 0
	}) - 1
	if bi < 0 {
		return nil, false, nil
	}
	b := l.blocks[bi]
	dictEnd := len(l.dict)
	if bi+1 < len(l.blocks) {
		dictEnd = l.blocks[bi+1].dictOff
	}
	dict := l.dict[b.dictOff:dictEnd]
	postOff := b.postOff
	for len(dict) > 0 {
		tb, plen, rest, err := nextDictEntry(dict)
		if err != nil {
			return nil, false, err
		}
		dict = rest
		switch c := cmpBytesString(tb, term); {
		case c == 0:
			if postOff+plen > len(l.posts) {
				return nil, false, errCorruptSegment
			}
			pl, rest, err := DecodePostings(l.posts[postOff : postOff+plen])
			if err != nil {
				return nil, false, err
			}
			if len(rest) != 0 {
				return nil, false, errCorruptSegment
			}
			if err := pl.sortCheck(); err != nil {
				return nil, false, err
			}
			return pl, true, nil
		case c > 0:
			return nil, false, nil // dictionary is sorted: term absent
		}
		postOff += plen
	}
	return nil, false, nil
}

// decodeAll decodes every posting list in dictionary order. Caller holds
// the owning Segment's write lock.
func (l *lazySegment) decodeAll() (map[string]PostingList, error) {
	if l.v3 {
		return l.decodeAllV3()
	}
	m := make(map[string]PostingList, l.nterms)
	dict := l.dict
	postOff := 0
	for len(dict) > 0 {
		tb, plen, rest, err := nextDictEntry(dict)
		if err != nil {
			return nil, err
		}
		dict = rest
		if postOff+plen > len(l.posts) {
			return nil, errCorruptSegment
		}
		pl, prest, err := DecodePostings(l.posts[postOff : postOff+plen])
		if err != nil {
			return nil, err
		}
		if len(prest) != 0 {
			return nil, errCorruptSegment
		}
		if err := pl.sortCheck(); err != nil {
			return nil, err
		}
		m[string(tb)] = pl
		postOff += plen
	}
	if len(m) != l.nterms {
		return nil, errCorruptSegment
	}
	return m, nil
}

// Validate checks internal consistency: decodable, sorted postings and
// every posting doc covered by DocLens.
func (s *Segment) Validate() error {
	terms, err := s.postingsMap()
	if err != nil {
		return err
	}
	for term, pl := range terms {
		if err := pl.sortCheck(); err != nil {
			return fmt.Errorf("term %q: %w", term, err)
		}
		for _, p := range pl {
			if _, ok := s.DocLens[p.Doc]; !ok {
				return fmt.Errorf("index: term %q posting doc %d lacks doc length", term, p.Doc)
			}
			if p.TF == 0 {
				return fmt.Errorf("index: term %q doc %d zero TF", term, p.Doc)
			}
		}
	}
	return nil
}

// Restrict returns a segment holding only the terms keep accepts. The
// DocLens set is retained IN FULL: it is the segment's tombstone set,
// and a covered document must keep shadowing its older postings in
// every chain — even for terms the restricted view drops — or stale
// postings would resurface after later merges. Posting lists are shared
// with the receiver (segments are immutable). Gen is preserved, so the
// restricted segment keeps its place in merge precedence.
//
// This is what makes sharded compaction cheap: a shard's merged run
// only needs the terms that hash to that shard (queries route term →
// shard before ever reading a chain), so the bytes a merge rewrites
// shrink from the whole batch segment to the shard's share of it.
func (s *Segment) Restrict(keep func(term string) bool) *Segment {
	terms, err := s.postingsMap()
	if err != nil {
		// A corrupt lazy segment contributes nothing to a merge either;
		// returning it unrestricted keeps Restrict total.
		return s
	}
	out := NewSegment(s.Gen)
	for term, pl := range terms {
		if keep(term) {
			out.Terms[term] = pl
		}
	}
	for d, l := range s.DocLens {
		out.DocLens[d] = l
	}
	return out
}

// Merge combines segments into one. Segments are applied oldest
// generation first; a newer segment's covered documents shadow all their
// older postings (tombstone semantics), and its postings replace older
// ones per term. Ties on Gen are broken by input order. Merging a single
// segment returns it unchanged (segments are immutable), which keeps a
// compacted one-segment chain fully lazy. Lazy inputs are materialized; a
// lazy input whose posting bytes fail to decode is skipped entirely —
// neither its postings nor its tombstones apply — so corruption can hide
// documents it carried but never deletes older valid ones.
func Merge(segments []*Segment) *Segment {
	if len(segments) == 0 {
		return NewSegment(0)
	}
	if len(segments) == 1 {
		return segments[0]
	}
	ordered := append([]*Segment(nil), segments...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Gen < ordered[j].Gen })

	out := NewSegment(ordered[len(ordered)-1].Gen)
	for _, seg := range ordered {
		terms, err := seg.postingsMap()
		if err != nil {
			continue
		}
		// Tombstone every doc this segment covers.
		dead := make(map[DocID]bool, len(seg.DocLens))
		for d := range seg.DocLens {
			dead[d] = true
		}
		for term, pl := range out.Terms {
			out.Terms[term] = dropDocs(pl, dead)
			if len(out.Terms[term]) == 0 {
				delete(out.Terms, term)
			}
		}
		for term, pl := range terms {
			out.Terms[term] = mergePostingLists(out.Terms[term], pl)
		}
		for d, l := range seg.DocLens {
			out.DocLens[d] = l
		}
	}
	return out
}
