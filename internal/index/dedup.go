package index

import (
	"hash/fnv"
	"math"
)

// Near-duplicate detection via w-shingling + MinHash, the defense against
// the paper's scraper-site attack: a site that mirrors popular content to
// farm honey produces a signature almost identical to the original's, so
// worker bees can demote it deterministically.

// DefaultShingleSize is the token-window width for shingling.
const DefaultShingleSize = 4

// DefaultSignatureSize is the number of MinHash components.
const DefaultSignatureSize = 64

// Shingles returns the set of hashed token k-grams of analyzed text.
func Shingles(text string, k int) map[uint64]bool {
	if k <= 0 {
		k = DefaultShingleSize
	}
	toks := Analyze(text)
	out := make(map[uint64]bool)
	if len(toks) < k {
		if len(toks) == 0 {
			return out
		}
		k = len(toks)
	}
	for i := 0; i+k <= len(toks); i++ {
		h := fnv.New64a()
		for j := i; j < i+k; j++ {
			h.Write([]byte(toks[j].Term))
			h.Write([]byte{0x1f})
		}
		out[h.Sum64()] = true
	}
	return out
}

// MinHashSig is a fixed-length similarity signature.
type MinHashSig []uint64

// MinHash computes an n-component signature over a shingle set using
// n deterministic hash mixes of each shingle.
func MinHash(shingles map[uint64]bool, n int) MinHashSig {
	if n <= 0 {
		n = DefaultSignatureSize
	}
	sig := make(MinHashSig, n)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	if len(shingles) == 0 {
		return sig
	}
	for s := range shingles {
		for i := 0; i < n; i++ {
			h := mix64(s ^ (uint64(i)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03))
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// mix64 is a strong 64-bit finalizer (SplitMix64 variant).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Similarity estimates the Jaccard similarity of the underlying shingle
// sets from two signatures.
func (a MinHashSig) Similarity(b MinHashSig) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// SignatureOf is the convenience path: shingle then MinHash with
// defaults.
func SignatureOf(text string) MinHashSig {
	return MinHash(Shingles(text, DefaultShingleSize), DefaultSignatureSize)
}
