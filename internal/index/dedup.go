package index

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Near-duplicate detection via w-shingling + MinHash, the defense against
// the paper's scraper-site attack: a site that mirrors popular content to
// farm honey produces a signature almost identical to the original's, so
// worker bees can demote it deterministically.

// DefaultShingleSize is the token-window width for shingling.
const DefaultShingleSize = 4

// DefaultSignatureSize is the number of MinHash components.
const DefaultSignatureSize = 64

// Shingles returns the set of hashed token k-grams of analyzed text.
func Shingles(text string, k int) map[uint64]bool {
	if k <= 0 {
		k = DefaultShingleSize
	}
	toks := Analyze(text)
	out := make(map[uint64]bool)
	if len(toks) < k {
		if len(toks) == 0 {
			return out
		}
		k = len(toks)
	}
	for i := 0; i+k <= len(toks); i++ {
		h := fnv.New64a()
		for j := i; j < i+k; j++ {
			h.Write([]byte(toks[j].Term))
			h.Write([]byte{0x1f})
		}
		out[h.Sum64()] = true
	}
	return out
}

// MinHashSig is a fixed-length similarity signature.
type MinHashSig []uint64

// MinHash computes an n-component signature over a shingle set using
// n deterministic hash mixes of each shingle.
func MinHash(shingles map[uint64]bool, n int) MinHashSig {
	if n <= 0 {
		n = DefaultSignatureSize
	}
	sig := make(MinHashSig, n)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	if len(shingles) == 0 {
		return sig
	}
	for s := range shingles {
		for i := 0; i < n; i++ {
			h := mix64(s ^ (uint64(i)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03))
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// mix64 is a strong 64-bit finalizer (SplitMix64 variant).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Similarity estimates the Jaccard similarity of the underlying shingle
// sets from two signatures.
func (a MinHashSig) Similarity(b MinHashSig) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// SignatureOf is the convenience path: shingle then MinHash with
// defaults.
func SignatureOf(text string) MinHashSig {
	return MinHash(Shingles(text, DefaultShingleSize), DefaultSignatureSize)
}

// DefaultBands is the band count SigIndex uses over a default-size
// signature: 16 bands of 4 rows. At the 0.85 scraper threshold the
// probability that a true near-duplicate shares no band is ~7e-6, so
// banding is a safe accelerator, not an approximation of the decision
// (candidates are always re-checked with the exact signature).
const DefaultBands = 16

// SigIndex is a banded locality-sensitive index over MinHash signatures:
// the streaming ingest pipeline adds every accepted page's signature and
// probes each new page against it, so near-duplicate detection over an
// N-page crawl costs O(N·candidates) instead of the O(N²) full scan the
// rank-time defense (zeroDuplicates) pays. Deterministic: candidates are
// compared in insertion order and ties keep the earliest key.
//
// Not safe for concurrent use; the ingest sequencer owns one.
type SigIndex struct {
	bands   int
	rows    int
	buckets []map[uint64][]int // per band: band-hash → ids
	sigs    []MinHashSig
	keys    []string
}

// NewSigIndex creates an index that slices signatures into the given
// number of bands (non-positive selects DefaultBands). Signatures added
// and probed must share one length, divisible by the band count.
func NewSigIndex(bands int) *SigIndex {
	if bands <= 0 {
		bands = DefaultBands
	}
	x := &SigIndex{bands: bands, buckets: make([]map[uint64][]int, bands)}
	for i := range x.buckets {
		x.buckets[i] = make(map[uint64][]int)
	}
	return x
}

// Len returns the number of indexed signatures.
func (x *SigIndex) Len() int { return len(x.sigs) }

// bandHash collapses one band of a signature to a bucket key.
func (x *SigIndex) bandHash(sig MinHashSig, band int) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range sig[band*x.rows : (band+1)*x.rows] {
		h = mix64(h ^ v)
	}
	return h
}

// Add indexes a signature under the given key and returns its id.
// The first Add fixes the signature length.
func (x *SigIndex) Add(key string, sig MinHashSig) int {
	x.checkLen(sig)
	id := len(x.sigs)
	x.sigs = append(x.sigs, sig)
	x.keys = append(x.keys, key)
	for b := 0; b < x.bands; b++ {
		h := x.bandHash(sig, b)
		x.buckets[b][h] = append(x.buckets[b][h], id)
	}
	return id
}

// Nearest returns the indexed key most similar to sig among candidates
// sharing at least one band, with the exact signature similarity. An
// empty index (or no candidate) returns ("", 0). Deterministic: on
// similarity ties the earliest-added key wins.
func (x *SigIndex) Nearest(sig MinHashSig) (string, float64) {
	if len(x.sigs) == 0 {
		return "", 0
	}
	x.checkLen(sig)
	seen := make(map[int]bool)
	best, bestSim := -1, -1.0
	for b := 0; b < x.bands; b++ {
		for _, id := range x.buckets[b][x.bandHash(sig, b)] {
			if seen[id] {
				continue
			}
			seen[id] = true
			if s := sig.Similarity(x.sigs[id]); s > bestSim {
				best, bestSim = id, s
			}
		}
	}
	if best < 0 {
		return "", 0
	}
	return x.keys[best], bestSim
}

func (x *SigIndex) checkLen(sig MinHashSig) {
	if len(sig) == 0 || len(sig)%x.bands != 0 {
		panic(fmt.Sprintf("index: signature length %d not divisible into %d bands", len(sig), x.bands))
	}
	if x.rows == 0 {
		x.rows = len(sig) / x.bands
	} else if len(sig) != x.rows*x.bands {
		panic(fmt.Sprintf("index: signature length %d, index built for %d", len(sig), x.rows*x.bands))
	}
}
