package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// randomSegment builds a segment from pseudo-random documents so property
// tests cover many shapes (doc counts, term overlap, position spreads).
func randomDocSegment(seed uint64, gen uint64) *Segment {
	rng := xrand.New(seed + 1)
	b := NewBuilder(gen)
	ndocs := 1 + rng.Intn(12)
	for i := 0; i < ndocs; i++ {
		doc := DocID(1 + rng.Intn(500))
		nwords := 1 + rng.Intn(40)
		var text bytes.Buffer
		for w := 0; w < nwords; w++ {
			fmt.Fprintf(&text, "word%02d ", rng.Intn(30))
		}
		b.Add(doc, text.String())
	}
	return b.Build()
}

// segmentsLogicallyEqual compares two segments term by term through the
// public API, so an eager (v1-decoded) and a lazy (v2-decoded) segment can
// be checked against each other.
func segmentsLogicallyEqual(t *testing.T, a, b *Segment) {
	t.Helper()
	if a.Gen != b.Gen {
		t.Fatalf("gen mismatch: %d vs %d", a.Gen, b.Gen)
	}
	if len(a.DocLens) != len(b.DocLens) {
		t.Fatalf("doclens size: %d vs %d", len(a.DocLens), len(b.DocLens))
	}
	for d, l := range a.DocLens {
		if b.DocLens[d] != l {
			t.Fatalf("doclen doc %d: %d vs %d", d, l, b.DocLens[d])
		}
	}
	at, bt := a.TermsSorted(), b.TermsSorted()
	if len(at) != len(bt) {
		t.Fatalf("term count: %d vs %d", len(at), len(bt))
	}
	for i, term := range at {
		if bt[i] != term {
			t.Fatalf("term %d: %q vs %q", i, term, bt[i])
		}
		apl, bpl := a.Postings(term), b.Postings(term)
		if len(apl) != len(bpl) {
			t.Fatalf("term %q postings: %d vs %d", term, len(apl), len(bpl))
		}
		for j := range apl {
			if apl[j].Doc != bpl[j].Doc || apl[j].TF != bpl[j].TF {
				t.Fatalf("term %q posting %d: %+v vs %+v", term, j, apl[j], bpl[j])
			}
			if len(apl[j].Positions) != len(bpl[j].Positions) {
				t.Fatalf("term %q posting %d positions", term, j)
			}
			for p := range apl[j].Positions {
				if apl[j].Positions[p] != bpl[j].Positions[p] {
					t.Fatalf("term %q posting %d position %d", term, j, p)
				}
			}
		}
	}
}

// TestSegmentV2RoundTripProperty: for random segments, v2 encode → decode
// → re-encode is byte-identical (determinism commit–reveal voting needs),
// and the lazy v2 decoding agrees logically with the eager v1 decoding of
// the same segment.
func TestSegmentV2RoundTripProperty(t *testing.T) {
	f := func(seed uint16, genRaw uint8) bool {
		seg := randomDocSegment(uint64(seed), uint64(genRaw))

		enc := seg.Encode()
		dec, err := DecodeSegment(enc)
		if err != nil {
			t.Logf("decode v2: %v", err)
			return false
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Log("v2 decode → encode not byte-identical")
			return false
		}
		if !bytes.Equal(seg.Encode(), enc) {
			t.Log("v2 encode not deterministic across calls")
			return false
		}
		segmentsLogicallyEqual(t, seg, dec)

		v1 := seg.EncodeV1()
		decV1, err := DecodeSegment(v1)
		if err != nil {
			t.Logf("decode v1: %v", err)
			return false
		}
		if decV1.lazy != nil {
			t.Log("v1 bytes decoded into a lazy segment")
			return false
		}
		if dec.lazy == nil && dec.NumTerms() > 0 {
			t.Log("v2 bytes decoded into an eager segment")
			return false
		}
		segmentsLogicallyEqual(t, decV1, dec)
		if err := dec.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentV2LargeDictionary exercises multi-block dictionaries (5k
// terms is ~80 blocks at dictBlockSize 64): every term must be findable
// and absent probes must miss cleanly at block boundaries.
func TestSegmentV2LargeDictionary(t *testing.T) {
	seg := NewSegment(3)
	for i := 0; i < 5000; i++ {
		term := fmt.Sprintf("term%05d", i)
		doc := DocID(i + 1)
		seg.Terms[term] = PostingList{{Doc: doc, TF: 1, Positions: []uint32{uint32(i)}}}
		seg.DocLens[doc] = 1
	}
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumTerms() != 5000 {
		t.Fatalf("nterms = %d", dec.NumTerms())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 2500, 4998, 4999} {
		term := fmt.Sprintf("term%05d", i)
		pl := dec.Postings(term)
		if len(pl) != 1 || pl[0].Doc != DocID(i+1) {
			t.Fatalf("term %q postings = %+v", term, pl)
		}
	}
	for _, absent := range []string{"", "aaa", "term", "term05000", "term99999", "zzz", "term0250", "term02500x"} {
		if pl := dec.Postings(absent); pl != nil {
			t.Fatalf("absent term %q returned %+v", absent, pl)
		}
	}
}

// TestSegmentV2MergeAgreesWithEager: merging lazy v2-decoded segments must
// produce the same bytes as merging their eager builder-built originals.
func TestSegmentV2MergeAgreesWithEager(t *testing.T) {
	var eager, lazy []*Segment
	for i := 0; i < 4; i++ {
		s := randomDocSegment(uint64(100+i), uint64(i+1))
		eager = append(eager, s)
		d, err := DecodeSegment(s.Encode())
		if err != nil {
			t.Fatal(err)
		}
		lazy = append(lazy, d)
	}
	if !bytes.Equal(Merge(eager).Encode(), Merge(lazy).Encode()) {
		t.Fatal("merge of lazy segments diverges from merge of eager segments")
	}
}

// TestMergeSkipsCorruptSegment: a lazy segment whose posting bytes fail
// to decode must contribute nothing to a merge — in particular its
// tombstones must not delete older valid postings.
func TestMergeSkipsCorruptSegment(t *testing.T) {
	good := buildSeg(1, map[DocID]string{1: "alpha beta", 2: "gamma delta"})
	newer := buildSeg(2, map[DocID]string{1: "epsilon zeta"})
	dec, err := DecodeSegment(newer.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// Clobber the first posting list's count varint: the dictionary still
	// validates (lengths unchanged) but every full decode now fails.
	dec.lazy.posts[0] = 0xFF
	if err := dec.Validate(); err == nil {
		t.Fatal("corrupted postings should fail Validate")
	}
	m := Merge([]*Segment{good, dec})
	pl := m.Postings(Stem("alpha"))
	if _, found := pl.Find(1); !found {
		t.Fatal("corrupt newer segment tombstoned doc 1's valid postings")
	}
	if m.Covers(1) && len(m.Postings(Stem("epsilon"))) != 0 {
		t.Fatal("corrupt segment contributed postings")
	}
}

// TestDecodeHostileCounts: a tiny segment claiming absurd term/block
// counts must be rejected with an error, not panic on a count-sized
// allocation.
func TestDecodeHostileCounts(t *testing.T) {
	hostile := binary.AppendUvarint(nil, segmentMagicV2)
	hostile = binary.AppendUvarint(hostile, 1)     // gen
	hostile = binary.AppendUvarint(hostile, 0)     // ndocs
	hostile = binary.AppendUvarint(hostile, 1<<62) // nterms
	hostile = binary.AppendUvarint(hostile, 1<<62) // nblocks
	if _, err := DecodeSegment(hostile); err == nil {
		t.Fatal("hostile counts should fail decode")
	}
}

// TestDecodeRejectsDocOverflow: a posting list whose accumulated doc IDs
// exceed 32 bits would truncate into non-ascending order on decode; the
// decode-time scan must reject it instead of letting lookups silently
// fail later.
func TestDecodeRejectsDocOverflow(t *testing.T) {
	var posts []byte
	posts = binary.AppendUvarint(posts, 2)     // 2 postings
	posts = binary.AppendUvarint(posts, 1)     // doc 1
	posts = binary.AppendUvarint(posts, 1)     // TF
	posts = binary.AppendUvarint(posts, 0)     // no positions
	posts = binary.AppendUvarint(posts, 1<<32) // gap → doc truncates to 1
	posts = binary.AppendUvarint(posts, 1)     // TF
	posts = binary.AppendUvarint(posts, 0)     // no positions

	enc := binary.AppendUvarint(nil, segmentMagicV2)
	enc = binary.AppendUvarint(enc, 1) // gen
	enc = binary.AppendUvarint(enc, 0) // ndocs
	enc = binary.AppendUvarint(enc, 1) // nterms
	enc = binary.AppendUvarint(enc, 1) // nblocks
	enc = binary.AppendUvarint(enc, 1) // block firstTermLen
	enc = append(enc, 'x')
	enc = binary.AppendUvarint(enc, 0) // block dictOff
	enc = binary.AppendUvarint(enc, 0) // block postOff
	var dict []byte
	dict = binary.AppendUvarint(dict, 1)
	dict = append(dict, 'x')
	dict = binary.AppendUvarint(dict, uint64(len(posts)))
	enc = binary.AppendUvarint(enc, uint64(len(dict)))
	enc = append(enc, dict...)
	enc = binary.AppendUvarint(enc, uint64(len(posts)))
	enc = append(enc, posts...)

	if _, err := DecodeSegment(enc); err == nil {
		t.Fatal("doc-ID overflow should fail decode")
	}
}

// TestDecodeRejectsTamperedBlockIndex: nudging a block-index offset so it
// no longer lands on a dictionary entry boundary must fail decode loudly
// — a frontend must never serve a segment whose lookups silently miss
// terms the dictionary contains.
func TestDecodeRejectsTamperedBlockIndex(t *testing.T) {
	seg := NewSegment(1)
	for i := 0; i < 130; i++ { // 3 blocks at dictBlockSize 64
		term := fmt.Sprintf("term%05d", i)
		doc := DocID(i + 1)
		seg.Terms[term] = PostingList{{Doc: doc, TF: 1, Positions: []uint32{0}}}
		seg.DocLens[doc] = 1
	}
	enc := seg.Encode()
	if _, err := DecodeSegment(enc); err != nil {
		t.Fatal(err)
	}

	// Walk to block 1's dictOff varint: magic, gen, docs region, nterms,
	// nblocks, block 0 (termLen, term, dictOff, postOff), block 1's
	// termLen + term.
	off := 0
	skip := func() uint64 {
		v, n := binary.Uvarint(enc[off:])
		if n <= 0 {
			t.Fatal("walk failed")
		}
		off += n
		return v
	}
	skip() // magic
	skip() // gen
	ndocs := skip()
	for i := uint64(0); i < ndocs; i++ {
		skip() // doc gap
		skip() // doc len
	}
	skip() // nterms
	skip() // nblocks
	for b := 0; b < 2; b++ {
		tlen := skip()
		off += int(tlen)
		if b == 0 {
			skip() // block 0 dictOff
			skip() // block 0 postOff
		}
	}
	tampered := append([]byte(nil), enc...)
	tampered[off]++ // block 1 dictOff: mid-entry, no longer a boundary
	if _, err := DecodeSegment(tampered); err == nil {
		t.Fatal("tampered block index should fail decode")
	}
}

// TestTermsSortedMemoized: repeated calls return the same backing slice.
func TestTermsSortedMemoized(t *testing.T) {
	seg := randomDocSegment(7, 1)
	a, b := seg.TermsSorted(), seg.TermsSorted()
	if len(a) == 0 {
		t.Fatal("empty segment")
	}
	if &a[0] != &b[0] {
		t.Fatal("TermsSorted rebuilt the slice on a second call")
	}
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	c, d := dec.TermsSorted(), dec.TermsSorted()
	if &c[0] != &d[0] {
		t.Fatal("lazy TermsSorted rebuilt the slice on a second call")
	}
}

// TestTopKMatchesFullSort: the bounded-heap selection must agree exactly
// with the reference full-sort implementation for every k.
func TestTopKMatchesFullSort(t *testing.T) {
	f := func(seed uint16, kRaw uint8) bool {
		rng := xrand.New(uint64(seed) + 1)
		n := 1 + rng.Intn(200)
		docs := make([]ScoredDoc, n)
		for i := range docs {
			// Coarse scores force plenty of ties to exercise the DocID
			// tiebreaker.
			docs[i] = ScoredDoc{Doc: DocID(rng.Intn(1000)), Score: float64(rng.Intn(8))}
		}
		k := int(kRaw)%(n+4) + 1

		ref := append([]ScoredDoc(nil), docs...)
		sortScored(ref)
		if k < len(ref) {
			ref = ref[:k]
		}
		got := TopK(docs, k)
		if len(got) != len(ref) {
			t.Logf("len = %d, want %d", len(got), len(ref))
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Logf("rank %d: %+v, want %+v", i, got[i], ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeSegment: arbitrary bytes must never panic the decoder, every
// successful decode must validate or fail cleanly, and a v2 decode must
// re-encode to the exact input bytes.
func FuzzDecodeSegment(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0xFF, 0xFF, 0x01})
	seed := randomDocSegment(11, 2)
	f.Add(seed.Encode())
	f.Add(seed.EncodeV1())
	f.Add(seed.EncodeV2())
	f.Add(denseSparseSegment(40).Encode())
	empty := NewSegment(0)
	f.Add(empty.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := DecodeSegment(data)
		if err != nil {
			return
		}
		if seg.lazy != nil {
			if !bytes.Equal(seg.Encode(), data) {
				t.Fatal("v2 decode → encode not byte-identical")
			}
		}
		// Decode structurally validates both regions up front; Validate
		// additionally cross-checks DocLens/TF and must either pass or
		// return an error, never panic.
		_ = seg.Validate()
		for _, term := range seg.TermsSorted() {
			_ = seg.Postings(term)
		}
	})
}
