package index

import (
	"bytes"
	"fmt"
	"testing"
)

// TestBuildBatchMatchesIncrementalBuilder: the batch helper must encode
// byte-identically to the equivalent sequence of Builder.Add calls —
// the determinism commit-reveal voting relies on.
func TestBuildBatchMatchesIncrementalBuilder(t *testing.T) {
	docs := make([]BatchDoc, 0, 8)
	for i := 0; i < 8; i++ {
		docs = append(docs, BatchDoc{
			Doc:  DocIDOf(fmt.Sprintf("dweb://batch/%d", i)),
			Text: fmt.Sprintf("document %d shares words with its batch siblings", i),
		})
	}
	batch := BuildBatch(7, docs).Encode()

	b := NewBuilder(7)
	for _, d := range docs {
		b.Add(d.Doc, d.Text)
	}
	incremental := b.Build().Encode()

	if !bytes.Equal(batch, incremental) {
		t.Fatal("BuildBatch encoding differs from incremental builder")
	}
	// And it is self-deterministic.
	if !bytes.Equal(batch, BuildBatch(7, docs).Encode()) {
		t.Fatal("BuildBatch not deterministic")
	}
}

// TestBuildBatchRepublishWithinBatch: re-adding a DocID inside one batch
// keeps only the latest version's postings.
func TestBuildBatchRepublishWithinBatch(t *testing.T) {
	doc := DocIDOf("dweb://twice")
	seg := BuildBatch(1, []BatchDoc{
		{Doc: doc, Text: "obsolete ancient words"},
		{Doc: doc, Text: "fresh modern phrasing"},
	})
	if pl := seg.Postings(Stem("ancient")); len(pl) != 0 {
		t.Fatalf("stale postings survived in-batch republish: %+v", pl)
	}
	if pl := seg.Postings(Stem("modern")); len(pl) != 1 {
		t.Fatalf("latest version missing: %+v", pl)
	}
}
