package index

import (
	"math"
	"sort"
)

// BM25 parameters (standard defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// CorpusStats carries the collection-level numbers BM25 needs.
type CorpusStats struct {
	DocCount  int     // N
	AvgDocLen float64 // average analyzed tokens per document
}

// Scorer computes BM25 relevance blended with page rank, the frontend's
// ranking function. RankWeight controls how strongly page rank multiplies
// the text score: final = bm25 * (1 + RankWeight * normalizedRank).
type Scorer struct {
	Stats      CorpusStats
	RankWeight float64
}

// NewScorer builds a scorer; rankWeight 0 disables the page-rank blend.
func NewScorer(stats CorpusStats, rankWeight float64) *Scorer {
	if stats.AvgDocLen <= 0 {
		stats.AvgDocLen = 1
	}
	if stats.DocCount <= 0 {
		stats.DocCount = 1
	}
	return &Scorer{Stats: stats, RankWeight: rankWeight}
}

// IDF returns the BM25 inverse document frequency for a term with the
// given document frequency.
func (s *Scorer) IDF(df int) float64 {
	n := float64(s.Stats.DocCount)
	return math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
}

// TermScore returns the BM25 contribution of one term occurrence.
func (s *Scorer) TermScore(tf uint32, docLen uint32, df int) float64 {
	if tf == 0 {
		return 0
	}
	idf := s.IDF(df)
	f := float64(tf)
	dl := float64(docLen)
	denom := f + bm25K1*(1-bm25B+bm25B*dl/s.Stats.AvgDocLen)
	return idf * f * (bm25K1 + 1) / denom
}

// Combine blends a text score with a page rank value. Rank is normalized
// by maxRank so the blend is scale-free; maxRank <= 0 disables the blend.
func (s *Scorer) Combine(textScore, rank, maxRank float64) float64 {
	if s.RankWeight <= 0 || maxRank <= 0 {
		return textScore
	}
	return textScore * (1 + s.RankWeight*rank/maxRank)
}

// ScoredDoc pairs a document with its final score.
type ScoredDoc struct {
	Doc   DocID
	Score float64
}

// TopK returns the k highest-scoring docs, score descending with DocID
// ascending as the tiebreaker (so rankings are deterministic).
func TopK(docs []ScoredDoc, k int) []ScoredDoc {
	if k <= 0 || len(docs) == 0 {
		return nil
	}
	sorted := append([]ScoredDoc(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		return sorted[i].Doc < sorted[j].Doc
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
