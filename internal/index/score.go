package index

import (
	"math"
	"sort"
)

// BM25 parameters (standard defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// CorpusStats carries the collection-level numbers BM25 needs.
type CorpusStats struct {
	DocCount  int     // N
	AvgDocLen float64 // average analyzed tokens per document
}

// Scorer computes BM25 relevance blended with page rank, the frontend's
// ranking function. RankWeight controls how strongly page rank multiplies
// the text score: final = bm25 * (1 + RankWeight * normalizedRank).
type Scorer struct {
	Stats      CorpusStats
	RankWeight float64
}

// NewScorer builds a scorer; rankWeight 0 disables the page-rank blend.
func NewScorer(stats CorpusStats, rankWeight float64) *Scorer {
	if stats.AvgDocLen <= 0 {
		stats.AvgDocLen = 1
	}
	if stats.DocCount <= 0 {
		stats.DocCount = 1
	}
	return &Scorer{Stats: stats, RankWeight: rankWeight}
}

// IDF returns the BM25 inverse document frequency for a term with the
// given document frequency.
func (s *Scorer) IDF(df int) float64 {
	n := float64(s.Stats.DocCount)
	return math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
}

// TermScore returns the BM25 contribution of one term occurrence.
func (s *Scorer) TermScore(tf uint32, docLen uint32, df int) float64 {
	if tf == 0 {
		return 0
	}
	idf := s.IDF(df)
	f := float64(tf)
	dl := float64(docLen)
	denom := f + bm25K1*(1-bm25B+bm25B*dl/s.Stats.AvgDocLen)
	return idf * f * (bm25K1 + 1) / denom
}

// Combine blends a text score with a page rank value. Rank is normalized
// by maxRank so the blend is scale-free; maxRank <= 0 disables the blend.
func (s *Scorer) Combine(textScore, rank, maxRank float64) float64 {
	if s.RankWeight <= 0 || maxRank <= 0 {
		return textScore
	}
	return textScore * (1 + s.RankWeight*rank/maxRank)
}

// ScoredDoc pairs a document with its final score.
type ScoredDoc struct {
	Doc   DocID
	Score float64
}

// TopK returns the k highest-scoring docs, score descending with DocID
// ascending as the tiebreaker (so rankings are deterministic). When k is
// smaller than the candidate set it selects via a bounded min-heap —
// O(n log k) and k-sized scratch — instead of copying and fully sorting
// all candidates; both paths produce identical output (outranks is a
// strict total order over distinct docs).
func TopK(docs []ScoredDoc, k int) []ScoredDoc {
	if k <= 0 || len(docs) == 0 {
		return nil
	}
	if k >= len(docs) {
		sorted := append([]ScoredDoc(nil), docs...)
		sortScored(sorted)
		return sorted
	}
	// Min-heap of the best k seen so far; the root is the current worst
	// and is evicted whenever a better candidate arrives.
	h := make([]ScoredDoc, 0, k)
	for _, d := range docs {
		if len(h) < k {
			h = append(h, d)
			siftUp(h, len(h)-1)
		} else if outranks(d, h[0]) {
			h[0] = d
			siftDown(h, 0)
		}
	}
	sortScored(h)
	return h
}

// outranks reports whether a places strictly ahead of b in the ranking.
func outranks(a, b ScoredDoc) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}

// sortScored orders docs into final ranking order (best first).
func sortScored(docs []ScoredDoc) {
	sort.Slice(docs, func(i, j int) bool { return outranks(docs[i], docs[j]) })
}

// siftUp restores the worst-at-root heap property after appending at i.
func siftUp(h []ScoredDoc, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !outranks(h[p], h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// siftDown restores the worst-at-root heap property after replacing the
// root.
func siftDown(h []ScoredDoc, i int) {
	for {
		w := 2*i + 1 // worst child
		if w >= len(h) {
			return
		}
		if r := w + 1; r < len(h) && outranks(h[w], h[r]) {
			w = r
		}
		if !outranks(h[i], h[w]) {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}
