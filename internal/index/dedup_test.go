package index

import (
	"fmt"
	"strings"
	"testing"
)

// mirrorOf simulates the paper's scraper attack: the mirror copies the
// original text and splices a few of its own words in, hoping to farm
// honey off someone else's content.
func mirrorOf(text string) string {
	words := strings.Fields(text)
	for i := 7; i < len(words); i += 25 {
		words[i] = "sponsored"
	}
	return strings.Join(words, " ") + " visit mirror site now"
}

func corpusText(seed, words int) string {
	var b strings.Builder
	for i := 0; i < words; i++ {
		fmt.Fprintf(&b, "worda%d wordb%d ", (seed+i*7)%53, (seed+i*13)%31)
	}
	return b.String()
}

func TestSignatureSimilarity(t *testing.T) {
	orig := corpusText(1, 120)
	same := SignatureOf(orig)
	if sim := same.Similarity(SignatureOf(orig)); sim != 1 {
		t.Fatalf("identical text similarity = %v, want 1", sim)
	}
	mirror := SignatureOf(mirrorOf(orig))
	if sim := same.Similarity(mirror); sim < 0.5 {
		t.Fatalf("mirror similarity = %v, want high", sim)
	}
	other := SignatureOf(corpusText(999, 120))
	if sim := same.Similarity(other); sim > 0.2 {
		t.Fatalf("unrelated similarity = %v, want low", sim)
	}
}

func TestSigIndexFindsMirror(t *testing.T) {
	x := NewSigIndex(0)
	for i := 0; i < 50; i++ {
		x.Add(fmt.Sprintf("doc-%02d", i), SignatureOf(corpusText(i*101, 100)))
	}
	if x.Len() != 50 {
		t.Fatalf("Len = %d", x.Len())
	}
	// The mirror of doc-17 must come back as the nearest neighbour,
	// well above the unrelated background.
	key, sim := x.Nearest(SignatureOf(mirrorOf(corpusText(17*101, 100))))
	if key != "doc-17" {
		t.Fatalf("nearest = %q (sim %v), want doc-17", key, sim)
	}
	if sim < 0.5 {
		t.Fatalf("mirror similarity = %v, want high", sim)
	}
	// An exact copy scores 1.0.
	if key, sim := x.Nearest(SignatureOf(corpusText(17*101, 100))); key != "doc-17" || sim != 1 {
		t.Fatalf("exact copy: %q %v", key, sim)
	}
}

func TestSigIndexEmptyAndDeterministic(t *testing.T) {
	x := NewSigIndex(16)
	if key, sim := x.Nearest(SignatureOf("anything at all here")); key != "" || sim != 0 {
		t.Fatalf("empty index returned %q %v", key, sim)
	}
	// Two identical documents added in order: ties keep the earliest.
	sig := SignatureOf(corpusText(5, 80))
	x.Add("first", sig)
	x.Add("second", sig)
	for i := 0; i < 3; i++ {
		if key, sim := x.Nearest(sig); key != "first" || sim != 1 {
			t.Fatalf("tie broke to %q %v", key, sim)
		}
	}
}

func TestSigIndexRejectsBadBandSplit(t *testing.T) {
	x := NewSigIndex(16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on indivisible signature length")
		}
	}()
	x.Add("bad", make(MinHashSig, 10))
}
