package index

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
)

// DigestOf returns the hex SHA-256 of encoded bytes: the content address
// of a segment and the digest worker bees vote on.
func DigestOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Sharding maps terms onto a fixed number of index shards; each shard's
// segment chain lives under a deterministic DHT key, so any frontend can
// locate the postings for a term with one hash.

// DefaultShards is the default shard count for the distributed index.
const DefaultShards = 16

// ShardOf maps a term to its shard in [0, numShards).
func ShardOf(term string, numShards int) int {
	if numShards <= 0 {
		numShards = DefaultShards
	}
	h := fnv.New32a()
	h.Write([]byte(term))
	return int(h.Sum32() % uint32(numShards))
}

// ShardPointerKey names the DHT record that holds a shard's segment list.
func ShardPointerKey(shard int) string {
	return fmt.Sprintf("qb:shard:%d", shard)
}

// SegmentKey names the DHT record holding a segment by its content
// digest (hex SHA-256 of the encoded segment).
func SegmentKey(digestHex string) string {
	return "qb:seg:" + digestHex
}

// DocIDOf derives the stable DocID for a URL (FNV-32a). The 32-bit space
// is ample for simulation corpora; collisions would only merge two URLs'
// postings.
func DocIDOf(url string) DocID {
	h := fnv.New32a()
	h.Write([]byte(url))
	return DocID(h.Sum32())
}
