package index

import "sort"

// WANDStats counts the work the block-max executor did and avoided.
type WANDStats struct {
	PostingsScanned int64 // postings decoded or probed
	BlocksSkipped   int64 // skip blocks passed without decoding
	DocsSkipped     int64 // candidate documents never fully scored
}

// wandSlack is the safety factor applied to upper bounds before a skip
// decision: skip only when bound*wandSlack ≤ current threshold. The
// block frontiers make bounds exact in real arithmetic, but TermScore's
// float evaluation can differ by a few ulps between a frontier pair and
// the dominated pair actually scored; 1e-9 relative slack dwarfs that
// while costing essentially no skips. Slack only ever suppresses a skip
// (never allows an extra one), so it preserves byte-identity with the
// exhaustive path in the conservative direction.
const wandSlack = 1 + 1e-9

// rankBlendBound returns the safe multiplier covering Combine's rank
// blend: final = text * (1 + RankWeight * rank/maxRank) ≤ text * (1 +
// RankWeight), since ranks never exceed maxRank and text scores are
// non-negative. When the blend is disabled Combine is the identity.
func rankBlendBound(sc *Scorer, maxRank float64) float64 {
	if sc.RankWeight > 0 && maxRank > 0 {
		return 1 + sc.RankWeight
	}
	return 1
}

// topkAcc is a streaming top-k accumulator over the same bounded
// min-heap primitives TopK uses, so its output is byte-identical to
// collecting every ScoredDoc and calling TopK. The heap root is the
// WAND threshold once k docs have been seen.
type topkAcc struct {
	k int
	h []ScoredDoc
}

func newTopkAcc(k int) *topkAcc { return &topkAcc{k: k, h: make([]ScoredDoc, 0, k)} }

func (a *topkAcc) full() bool      { return len(a.h) >= a.k }
func (a *topkAcc) root() ScoredDoc { return a.h[0] }

func (a *topkAcc) push(d ScoredDoc) {
	if len(a.h) < a.k {
		a.h = append(a.h, d)
		siftUp(a.h, len(a.h)-1)
		return
	}
	if outranks(d, a.h[0]) {
		a.h[0] = d
		siftDown(a.h, 0)
	}
}

func (a *topkAcc) ranked() []ScoredDoc {
	if len(a.h) == 0 {
		return nil
	}
	sortScored(a.h)
	return a.h
}

// WANDTopK scores an ascending candidate list against per-term cursors
// (aligned with the query's term order; nil entries mark terms absent
// from the segment) and returns the top k docs, byte-identical to
// exhaustively scoring every candidate and calling TopK. Once the heap
// holds k docs, a candidate is fully evaluated only if the sum of the
// cursors' current block-max bounds (times the rank-blend bound) can
// beat the heap root; otherwise the whole run of candidates up to the
// nearest block boundary is skipped. Skipping at a score tie is safe
// because candidates arrive in ascending DocID order, so a later doc
// always loses the DocID tiebreak to the incumbent root.
func WANDTopK(cands []DocID, cursors []*TermCursor, sc *Scorer, docLen func(DocID) uint32, rankOf func(DocID) float64, maxRank float64, k int, stats *WANDStats) []ScoredDoc {
	if k <= 0 || len(cands) == 0 {
		return nil
	}
	rb := rankBlendBound(sc, maxRank)
	acc := newTopkAcc(k)
	i := 0
	for i < len(cands) {
		d := cands[i]
		if acc.full() {
			ub := 0.0
			minLast := DocID(1<<32 - 1)
			live := false
			for _, c := range cursors {
				if c == nil {
					continue
				}
				c.ShallowSeek(d)
				if c.Exhausted() {
					continue
				}
				live = true
				ub += c.Bound(sc)
				if bl := c.BlockLast(); bl < minLast {
					minLast = bl
				}
			}
			if !live {
				// No cursor can contribute again: every remaining candidate
				// scores Combine(0, ...) = 0 ≤ root and loses the tiebreak.
				if stats != nil {
					stats.DocsSkipped += int64(len(cands) - i)
				}
				break
			}
			if ub*rb*wandSlack <= acc.root().Score {
				// Every candidate ≤ minLast sees these same blocks, hence the
				// same bound: skip them all in one batch.
				j := i + sort.Search(len(cands)-i, func(x int) bool { return cands[i+x] > minLast })
				if j == i {
					j = i + 1 // minLast ≥ d always; defensive
				}
				if stats != nil {
					stats.DocsSkipped += int64(j - i)
				}
				i = j
				continue
			}
		}
		text := 0.0
		for _, c := range cursors {
			if c == nil {
				continue
			}
			if tf, ok := c.SeekTF(d); ok {
				text += sc.TermScore(tf, docLen(d), c.DF())
			}
		}
		acc.push(ScoredDoc{Doc: d, Score: sc.Combine(text, rankOf(d), maxRank)})
		i++
	}
	drainCursorStats(cursors, stats)
	return acc.ranked()
}

// WANDTopKDirect is the single-term fast path: it visits one cursor's
// blocks in impact order (descending block-max bound, block index
// breaking ties), so the heap threshold is maximal from the first k
// postings on; once one block's bound fails the threshold test, every
// remaining bound fails too and the tail is skipped in one step, without
// ever materializing a candidate list. Byte-identical to exhaustively
// scoring the term's postings and calling TopK: a bounded heap's final
// content does not depend on admission order, and the slack-strict skip
// test (bound < root, since wandSlack > 1) means a skipped block cannot
// even tie the heap root — its docs lose outright, whatever their IDs.
func WANDTopKDirect(cur *TermCursor, sc *Scorer, docLen func(DocID) uint32, rankOf func(DocID) float64, maxRank float64, k int, stats *WANDStats) []ScoredDoc {
	if k <= 0 || cur == nil {
		return nil
	}
	rb := rankBlendBound(sc, maxRank)
	acc := newTopkAcc(k)
	type blockBound struct {
		bi    int
		bound float64
	}
	order := make([]blockBound, len(cur.skips))
	for i := range cur.skips {
		order[i] = blockBound{i, cur.boundOf(i, sc)}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].bound != order[j].bound {
			return order[i].bound > order[j].bound
		}
		return order[i].bi < order[j].bi
	})
	for oi, b := range order {
		if acc.full() && b.bound*rb*wandSlack <= acc.root().Score {
			for _, rest := range order[oi:] {
				cur.skippedBlocks++
				if stats != nil {
					stats.DocsSkipped += int64(v3BlockLen(rest.bi, cur.df))
				}
			}
			break
		}
		cur.bi = b.bi
		if !cur.ensureDecoded() {
			break // defensive: corrupt block exhausts the cursor
		}
		for i, d := range cur.docs {
			text := sc.TermScore(cur.tfs[i], docLen(d), cur.df)
			acc.push(ScoredDoc{Doc: d, Score: sc.Combine(text, rankOf(d), maxRank)})
		}
	}
	cur.bi = len(cur.skips)
	drainCursorStats([]*TermCursor{cur}, stats)
	return acc.ranked()
}

// drainCursorStats folds per-cursor counters into stats and resets them.
func drainCursorStats(cursors []*TermCursor, stats *WANDStats) {
	if stats == nil {
		return
	}
	for _, c := range cursors {
		if c == nil {
			continue
		}
		stats.PostingsScanned += c.scanned
		stats.BlocksSkipped += c.skippedBlocks
		c.scanned, c.skippedBlocks = 0, 0
	}
}
