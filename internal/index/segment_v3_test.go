package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// TestSegmentV3RoundTripProperty: for random segments, v3 encode → decode
// → re-encode is byte-identical, the lazy v3 decoding agrees logically
// with the eager v1 decoding, and Validate passes.
func TestSegmentV3RoundTripProperty(t *testing.T) {
	f := func(seed uint16, genRaw uint8) bool {
		seg := randomDocSegment(uint64(seed), uint64(genRaw))

		enc := seg.Encode()
		magic, _ := binary.Uvarint(enc)
		if magic != segmentMagicV3 {
			t.Logf("Encode emitted magic %#x, want v3", magic)
			return false
		}
		dec, err := DecodeSegment(enc)
		if err != nil {
			t.Logf("decode v3: %v", err)
			return false
		}
		if dec.lazy == nil || !dec.lazy.v3 {
			t.Log("v3 bytes did not decode into a lazy v3 segment")
			return false
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Log("v3 decode → encode not byte-identical")
			return false
		}
		if !bytes.Equal(seg.Encode(), enc) {
			t.Log("v3 encode not deterministic across calls")
			return false
		}
		segmentsLogicallyEqual(t, seg, dec)
		if err := dec.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentV1V2BackwardDecode: the v1 and v2 encodings of a segment
// must stay decodable alongside v3 and agree logically — replicas that
// have not republished since the format change keep working.
func TestSegmentV1V2BackwardDecode(t *testing.T) {
	f := func(seed uint16, genRaw uint8) bool {
		seg := randomDocSegment(uint64(seed), uint64(genRaw))

		v1, err := DecodeSegment(seg.EncodeV1())
		if err != nil {
			t.Logf("decode v1: %v", err)
			return false
		}
		v2enc := seg.EncodeV2()
		v2, err := DecodeSegment(v2enc)
		if err != nil {
			t.Logf("decode v2: %v", err)
			return false
		}
		if v2.lazy == nil || v2.lazy.v3 {
			t.Log("v2 bytes did not decode into a lazy v2 segment")
			return false
		}
		v3, err := DecodeSegment(seg.Encode())
		if err != nil {
			t.Logf("decode v3: %v", err)
			return false
		}
		segmentsLogicallyEqual(t, v1, v2)
		segmentsLogicallyEqual(t, v2, v3)
		// A decoded lazy segment re-encodes to its own raw bytes, so a
		// store-and-forward replica never rewrites formats behind a digest.
		if !bytes.Equal(v2.Encode(), v2enc) {
			t.Log("v2 decode → encode not byte-identical")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// denseSparseSegment builds a segment with one dense term ("dense", in
// every doc → bitmap-encoded) and one sparse term ("rare", in one doc →
// delta-encoded), big enough to span multiple 32-posting blocks.
func denseSparseSegment(ndocs int) *Segment {
	seg := NewSegment(5)
	dense := Stem("dense")
	rare := Stem("rare")
	var dpl PostingList
	for i := 0; i < ndocs; i++ {
		doc := DocID(10 + 3*i) // gaps > 1 so bitmap ordinals matter
		seg.DocLens[doc] = uint32(5 + i%7)
		dpl = append(dpl, Posting{Doc: doc, TF: uint32(1 + i%4), Positions: []uint32{uint32(i)}})
	}
	seg.Terms[dense] = dpl
	seg.Terms[rare] = PostingList{{Doc: dpl[ndocs/2].Doc, TF: 2, Positions: []uint32{1, 9}}}
	return seg
}

// TestSegmentV3BitmapThreshold: a term covering every doc must take the
// bitmap encoding, a singleton term the delta encoding, and both must
// round-trip with positions intact.
func TestSegmentV3BitmapThreshold(t *testing.T) {
	seg := denseSparseSegment(100)
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	eDense, _, found, err := dec.lazy.findV3(Stem("dense"))
	if err != nil || !found {
		t.Fatalf("findV3 dense: found=%v err=%v", found, err)
	}
	if eDense.enc != 1 {
		t.Fatalf("dense term enc = %d, want bitmap (1)", eDense.enc)
	}
	if eDense.df != 100 {
		t.Fatalf("dense df = %d, want 100", eDense.df)
	}
	eRare, _, found, err := dec.lazy.findV3(Stem("rare"))
	if err != nil || !found {
		t.Fatalf("findV3 rare: found=%v err=%v", found, err)
	}
	if eRare.enc != 0 {
		t.Fatalf("rare term enc = %d, want delta (0)", eRare.enc)
	}
	segmentsLogicallyEqual(t, seg, dec)
}

// TestSegmentV3SkipEntriesMatchBlocks: the parsed skip entries must agree
// with the posting list they summarize — per-block last DocID and an
// exact frontier max (the bound equals the true block-max TermScore).
func TestSegmentV3SkipEntriesMatchBlocks(t *testing.T) {
	seg := denseSparseSegment(100)
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScorer(CorpusStats{DocCount: 100, AvgDocLen: 8}, 0)
	for _, term := range []string{Stem("dense"), Stem("rare")} {
		e, _, found, err := dec.lazy.findV3(term)
		if err != nil || !found {
			t.Fatalf("findV3 %q: found=%v err=%v", term, found, err)
		}
		skips, err := parseSkipsV3(e.skipsRaw, e.df)
		if err != nil {
			t.Fatal(err)
		}
		pl := seg.Terms[term]
		wantBlocks := (len(pl) + postingsBlockSize - 1) / postingsBlockSize
		if len(skips) != wantBlocks {
			t.Fatalf("%q: %d skip entries, want %d", term, len(skips), wantBlocks)
		}
		for bi, sk := range skips {
			lo := bi * postingsBlockSize
			hi := lo + v3BlockLen(bi, len(pl))
			if sk.LastDoc != pl[hi-1].Doc {
				t.Fatalf("%q block %d lastDoc = %d, want %d", term, bi, sk.LastDoc, pl[hi-1].Doc)
			}
			trueMax := 0.0
			for _, p := range pl[lo:hi] {
				if v := sc.TermScore(p.TF, seg.DocLens[p.Doc], len(pl)); v > trueMax {
					trueMax = v
				}
			}
			boundMax := 0.0
			for _, fp := range sk.Frontier {
				if v := sc.TermScore(fp.TF, fp.DL, len(pl)); v > boundMax {
					boundMax = v
				}
			}
			if boundMax != trueMax {
				t.Fatalf("%q block %d bound %v != true max %v", term, bi, boundMax, trueMax)
			}
		}
	}
}

// TestV3DecodeRejectsTruncation: every proper prefix of a v3 encoding
// must fail decode with an error, never panic — truncated skip entries,
// cut-off bitmaps and half postings blobs included.
func TestV3DecodeRejectsTruncation(t *testing.T) {
	enc := denseSparseSegment(50).Encode()
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeSegment(enc[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(enc))
		}
	}
}

// TestV3DecodeRejectsLyingSkips: tampering with skip metadata — the
// block-max frontier, the last-DocID chain, the end offsets — must fail
// the whole decode. A frontend must never serve a segment whose bounds
// could skip blocks that contain winners. The dict/posts subslices alias
// the encoded buffer, so the test locates fields through the decoded
// segment and mutates the raw bytes in place.
func TestV3DecodeRejectsLyingSkips(t *testing.T) {
	mutants := []struct {
		name string
		at   func(l *lazySegment) int // offset within l.dict
	}{
		// Entry layout after the term: enc, df, blobLen, then skips:
		// lastDocGap, endOffGap, npairs, npairs×(tf, dl). The first term of
		// denseSparseSegment is "dense": 100 docs, small single-byte varints
		// throughout, so field offsets are stable byte positions.
		{"frontier TF", func(l *lazySegment) int {
			e, _, _, _ := l.findV3(Stem("dense"))
			return dictOffsetOf(l, e.skipsRaw) + 3 // skip gap, eo, npairs
		}},
		{"lastDoc gap", func(l *lazySegment) int {
			e, _, _, _ := l.findV3(Stem("dense"))
			return dictOffsetOf(l, e.skipsRaw)
		}},
		{"end offset", func(l *lazySegment) int {
			e, _, _, _ := l.findV3(Stem("dense"))
			return dictOffsetOf(l, e.skipsRaw) + 1
		}},
	}
	for _, m := range mutants {
		t.Run(m.name, func(t *testing.T) {
			enc := denseSparseSegment(100).Encode()
			dec, err := DecodeSegment(enc)
			if err != nil {
				t.Fatal(err)
			}
			off := m.at(dec.lazy)
			tampered := append([]byte(nil), enc...)
			dictStart := bytes.Index(tampered, dec.lazy.dict)
			if dictStart < 0 {
				t.Fatal("dict region not found in encoding")
			}
			tampered[dictStart+off]++
			if _, err := DecodeSegment(tampered); err == nil {
				t.Fatalf("tampered %s decoded without error", m.name)
			}
		})
	}
}

// dictOffsetOf returns raw's offset within l.dict (raw aliases it).
func dictOffsetOf(l *lazySegment, raw []byte) int {
	off := bytes.Index(l.dict, raw)
	if off < 0 {
		panic("skipsRaw does not alias dict")
	}
	return off
}

// TestV3DecodeRejectsBadBitmap: corrupting a bitmap term's blob — length
// prefix, set bits beyond the doc count, or a popcount that disagrees
// with df — must fail decode.
func TestV3DecodeRejectsBadBitmap(t *testing.T) {
	seg := denseSparseSegment(100)
	enc := seg.Encode()
	dec, err := DecodeSegment(enc)
	if err != nil {
		t.Fatal(err)
	}
	_, blob, found, err := dec.lazy.findV3(Stem("dense"))
	if err != nil || !found {
		t.Fatal("dense term not found")
	}
	blobStart := bytes.Index(enc, blob)
	if blobStart < 0 {
		t.Fatal("blob not found in encoding")
	}
	bmLen, n := binary.Uvarint(blob)

	t.Run("length prefix", func(t *testing.T) {
		tampered := append([]byte(nil), enc...)
		tampered[blobStart]++ // bmLen no longer matches ceil(ndocs/8)
		if _, err := DecodeSegment(tampered); err == nil {
			t.Fatal("bad bitmap length decoded without error")
		}
	})
	t.Run("extra set bit", func(t *testing.T) {
		tampered := append([]byte(nil), enc...)
		// Flipping any bitmap bit breaks the popcount-vs-df cross-check
		// (set → clear) or sets a bit for a doc the stream does not carry.
		tampered[blobStart+n] ^= 0xFF
		if _, err := DecodeSegment(tampered); err == nil {
			t.Fatal("tampered bitmap decoded without error")
		}
	})
	t.Run("trailing bits", func(t *testing.T) {
		tampered := append([]byte(nil), enc...)
		// 100 docs → 4 unused bits at the end of the 13-byte bitmap.
		tampered[blobStart+n+int(bmLen)-1] |= 0x80
		if _, err := DecodeSegment(tampered); err == nil {
			t.Fatal("trailing bitmap bits decoded without error")
		}
	})
}

// TestV3HostileCounts mirrors TestDecodeHostileCounts for the v3 magic.
func TestV3HostileCounts(t *testing.T) {
	hostile := binary.AppendUvarint(nil, segmentMagicV3)
	hostile = binary.AppendUvarint(hostile, 1)     // gen
	hostile = binary.AppendUvarint(hostile, 0)     // ndocs
	hostile = binary.AppendUvarint(hostile, 1<<62) // nterms
	hostile = binary.AppendUvarint(hostile, 1<<62) // nblocks
	if _, err := DecodeSegment(hostile); err == nil {
		t.Fatal("hostile counts should fail decode")
	}
}

// TestV3ByteFlipNeverPanics: flipping every byte of a valid v3 encoding
// must yield either a clean decode error or a segment whose reads do not
// panic. Complements FuzzDecodeSegment with exhaustive single-byte
// coverage of a real segment.
func TestV3ByteFlipNeverPanics(t *testing.T) {
	enc := denseSparseSegment(40).Encode()
	for i := 0; i < len(enc); i++ {
		for _, delta := range []byte{1, 0x80} {
			tampered := append([]byte(nil), enc...)
			tampered[i] += delta
			seg, err := DecodeSegment(tampered)
			if err != nil {
				continue
			}
			_ = seg.Validate()
			for _, term := range seg.TermsSorted() {
				_ = seg.Postings(term)
			}
		}
	}
}

// TestCursorMatchesPostings: walking a cursor with SeekTF over every doc
// of the posting list reproduces the list's TFs exactly, for both lazy v3
// cursors and cursors derived from materialized lists.
func TestCursorMatchesPostings(t *testing.T) {
	f := func(seed uint16) bool {
		seg := randomDocSegment(uint64(seed), 1)
		dec, err := DecodeSegment(seg.Encode())
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		for _, src := range []*Segment{seg, dec} {
			for _, term := range src.TermsSorted() {
				pl := src.Postings(term)
				cur := src.Cursor(term)
				if cur == nil {
					t.Logf("nil cursor for present term %q", term)
					return false
				}
				if cur.DF() != len(pl) {
					t.Logf("%q df = %d, want %d", term, cur.DF(), len(pl))
					return false
				}
				for _, p := range pl {
					tf, ok := cur.SeekTF(p.Doc)
					if !ok || tf != p.TF {
						t.Logf("%q doc %d: tf=%d ok=%v, want %d", term, p.Doc, tf, ok, p.TF)
						return false
					}
				}
			}
			if cur := src.Cursor("zzz-absent"); cur != nil {
				t.Log("cursor for absent term")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCursorIndependence: two cursors over the same term do not share
// position state — an exhausted cursor leaves a fresh one untouched.
func TestCursorIndependence(t *testing.T) {
	seg := denseSparseSegment(100)
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	a := dec.Cursor(Stem("dense"))
	a.ShallowSeek(1 << 31) // exhaust
	if !a.Exhausted() {
		t.Fatal("cursor not exhausted")
	}
	b := dec.Cursor(Stem("dense"))
	if b.Exhausted() {
		t.Fatal("fresh cursor inherited exhaustion")
	}
	if tf, ok := b.SeekTF(10); !ok || tf != 1 {
		t.Fatalf("fresh cursor SeekTF = %d, %v", tf, ok)
	}
}

// exhaustiveTopK is the reference scorer the WAND executor must match
// byte for byte: probe every (candidate, term) pair with Find, sum text
// scores in term order, blend rank, TopK.
func exhaustiveTopK(cands []DocID, terms []string, seg *Segment, sc *Scorer, docLens map[DocID]uint32, ranks map[DocID]float64, maxRank float64, k int) []ScoredDoc {
	scored := make([]ScoredDoc, 0, len(cands))
	for _, d := range cands {
		text := 0.0
		for _, term := range terms {
			pl := seg.Postings(term)
			if p, ok := pl.Find(d); ok {
				text += sc.TermScore(p.TF, docLens[d], len(pl))
			}
		}
		scored = append(scored, ScoredDoc{Doc: d, Score: sc.Combine(text, ranks[d], maxRank)})
	}
	return TopK(scored, k)
}

// TestWANDMatchesExhaustiveProperty: across random segments, term
// subsets, k values and rank weights (including 0 and extreme), WANDTopK
// must return exactly what exhaustive scoring returns — same docs, same
// scores, same order.
func TestWANDMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed uint16, kRaw uint8, rwRaw uint8) bool {
		rng := xrand.New(uint64(seed) + 3)
		seg := randomDocSegment(uint64(seed), 1)
		dec, err := DecodeSegment(seg.Encode())
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		all := dec.TermsSorted()
		nterms := 1 + rng.Intn(4)
		if nterms > len(all) {
			nterms = len(all)
		}
		terms := make([]string, 0, nterms+1)
		for i := 0; i < nterms; i++ {
			terms = append(terms, all[rng.Intn(len(all))])
		}
		terms = append(terms, "zz-absent") // absent terms must be tolerated

		// Candidates: union of the chosen terms' docs (ascending, unique).
		seen := map[DocID]bool{}
		var cands []DocID
		for _, term := range terms {
			for _, p := range dec.Postings(term) {
				if !seen[p.Doc] {
					seen[p.Doc] = true
					cands = append(cands, p.Doc)
				}
			}
		}
		sortDocs(cands)

		rankWeights := []float64{0, 1, 1000}
		rw := rankWeights[int(rwRaw)%len(rankWeights)]
		ranks := map[DocID]float64{}
		maxRank := 0.0
		for _, d := range cands {
			if rng.Intn(2) == 0 {
				r := float64(rng.Intn(100)) / 100
				ranks[d] = r
				if r > maxRank {
					maxRank = r
				}
			}
		}
		sc := NewScorer(CorpusStats{DocCount: len(dec.DocLens), AvgDocLen: 7}, rw)
		k := 1 + int(kRaw)%12

		want := exhaustiveTopK(cands, terms, seg, sc, seg.DocLens, ranks, maxRank, k)
		cursors := make([]*TermCursor, len(terms))
		for i, term := range terms {
			cursors[i] = dec.Cursor(term)
		}
		var stats WANDStats
		got := WANDTopK(cands, cursors, sc,
			func(d DocID) uint32 { return dec.DocLens[d] },
			func(d DocID) float64 { return ranks[d] },
			maxRank, k, &stats)
		if len(got) != len(want) {
			t.Logf("len %d, want %d", len(got), len(want))
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("rank %d: %+v, want %+v (rw=%v k=%d)", i, got[i], want[i], rw, k)
				return false
			}
		}
		if stats.PostingsScanned < 0 || stats.BlocksSkipped < 0 || stats.DocsSkipped < 0 {
			t.Log("negative stats")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestWANDDirectMatchesExhaustive: the single-term block walker must
// agree with exhaustive scoring for every k, on a corpus big enough that
// blocks actually get skipped.
func TestWANDDirectMatchesExhaustive(t *testing.T) {
	seg := denseSparseSegment(400)
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	term := Stem("dense")
	pl := seg.Terms[term]
	cands := make([]DocID, len(pl))
	for i, p := range pl {
		cands[i] = p.Doc
	}
	ranks := map[DocID]float64{}
	maxRank := 0.5
	for i, d := range cands {
		ranks[d] = float64(i%7) / 14
	}
	sc := NewScorer(CorpusStats{DocCount: 400, AvgDocLen: 8}, 2)
	for _, k := range []int{1, 3, 10, 33, 400, 1000} {
		want := exhaustiveTopK(cands, []string{term}, seg, sc, seg.DocLens, ranks, maxRank, k)
		var stats WANDStats
		got := WANDTopKDirect(dec.Cursor(term), sc,
			func(d DocID) uint32 { return dec.DocLens[d] },
			func(d DocID) float64 { return ranks[d] },
			maxRank, k, &stats)
		if len(got) != len(want) {
			t.Fatalf("k=%d: len %d, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d rank %d: %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}

	// Skips need headroom between the root and later bounds: a skewed
	// corpus (one high-TF block, the rest TF=1) with the rank blend off.
	skew := NewSegment(1)
	term = Stem("skew")
	var spl PostingList
	for i := 0; i < 400; i++ {
		doc := DocID(i + 1)
		skew.DocLens[doc] = 8
		tf := uint32(1)
		if i < 2*postingsBlockSize && i >= postingsBlockSize-4 {
			// A high-TF run straddling a block boundary, wider than k, so
			// the heap fills with high scores and every later TF=1 block's
			// bound falls strictly below the threshold.
			tf = 50
		}
		spl = append(spl, Posting{Doc: doc, TF: tf, Positions: []uint32{0}})
	}
	skew.Terms[term] = spl
	decSkew, err := DecodeSegment(skew.Encode())
	if err != nil {
		t.Fatal(err)
	}
	cands = cands[:0]
	for _, p := range spl {
		cands = append(cands, p.Doc)
	}
	sc = NewScorer(CorpusStats{DocCount: 400, AvgDocLen: 8}, 0)
	want := exhaustiveTopK(cands, []string{term}, skew, sc, skew.DocLens, nil, 0, 10)
	var stats WANDStats
	got := WANDTopKDirect(decSkew.Cursor(term), sc,
		func(d DocID) uint32 { return decSkew.DocLens[d] },
		func(DocID) float64 { return 0 }, 0, 10, &stats)
	if len(got) != len(want) {
		t.Fatalf("skew: len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("skew rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.DocsSkipped == 0 || stats.BlocksSkipped == 0 {
		t.Fatalf("skewed corpus skipped nothing: %+v", stats)
	}
}

// sortDocs sorts a DocID slice ascending (tests only).
func sortDocs(docs []DocID) {
	for i := 1; i < len(docs); i++ {
		for j := i; j > 0 && docs[j] < docs[j-1]; j-- {
			docs[j], docs[j-1] = docs[j-1], docs[j]
		}
	}
}

// TestV3EmptySegment: a docless, termless segment round-trips.
func TestV3EmptySegment(t *testing.T) {
	seg := NewSegment(9)
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gen != 9 || dec.NumTerms() != 0 {
		t.Fatalf("gen=%d terms=%d", dec.Gen, dec.NumTerms())
	}
}

// TestV3ManyTermsDictionaryBlocks exercises multi-block v3 dictionaries:
// every term findable through the 64-term index, absent probes miss.
func TestV3ManyTermsDictionaryBlocks(t *testing.T) {
	seg := NewSegment(3)
	for i := 0; i < 1000; i++ {
		term := fmt.Sprintf("term%05d", i)
		doc := DocID(i + 1)
		seg.Terms[term] = PostingList{{Doc: doc, TF: 1, Positions: []uint32{0}}}
		seg.DocLens[doc] = 1
	}
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		term := fmt.Sprintf("term%05d", i)
		if len(dec.Postings(term)) != 1 {
			t.Fatalf("term %q not found", term)
		}
		if dec.Cursor(term) == nil {
			t.Fatalf("no cursor for %q", term)
		}
	}
	for _, absent := range []string{"", "a", "term00999x", "zzz"} {
		if len(dec.Postings(absent)) != 0 || dec.Cursor(absent) != nil {
			t.Fatalf("absent term %q matched", absent)
		}
	}
}
