package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"repro/internal/index"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("sizes differ")
	}
	for i := range a.Docs {
		if a.Docs[i].Text != b.Docs[i].Text {
			t.Fatalf("doc %d text differs", i)
		}
		if strings.Join(a.Docs[i].Links, ",") != strings.Join(b.Docs[i].Links, ",") {
			t.Fatalf("doc %d links differ", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDocs = 300
	c := Generate(cfg)
	if len(c.Docs) != 300 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	for i, d := range c.Docs {
		if d.URL != URLOf(i) {
			t.Fatalf("doc %d URL = %q", i, d.URL)
		}
		if d.Title == "" || d.Text == "" {
			t.Fatalf("doc %d empty fields", i)
		}
		words := strings.Fields(d.Text)
		if len(words) < cfg.MeanDocLen/3 {
			t.Fatalf("doc %d too short: %d", i, len(words))
		}
		for _, l := range d.Links {
			if l == d.URL {
				t.Fatalf("doc %d links to itself", i)
			}
		}
	}
}

func TestVocabularyIsZipfSkewed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDocs = 400
	c := Generate(cfg)
	counts := map[string]int{}
	for _, d := range c.Docs {
		for _, w := range strings.Fields(d.Text) {
			counts[w]++
		}
	}
	top := counts[c.Vocab(0)]
	mid := counts[c.Vocab(100)]
	if top <= mid*2 {
		t.Fatalf("vocabulary not skewed: top=%d mid=%d", top, mid)
	}
}

func TestLinkGraphInDegreeSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDocs = 500
	c := Generate(cfg)
	in := map[string]int{}
	total := 0
	for _, d := range c.Docs {
		for _, l := range d.Links {
			in[l]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no links generated")
	}
	// Preferential attachment: max in-degree far above mean.
	maxIn := 0
	for _, v := range in {
		if v > maxIn {
			maxIn = v
		}
	}
	mean := float64(total) / float64(cfg.NumDocs)
	if float64(maxIn) < 4*mean {
		t.Fatalf("in-degree not skewed: max=%d mean=%.1f", maxIn, mean)
	}
}

func TestVocabWordsSurviveAnalysis(t *testing.T) {
	c := Generate(DefaultConfig())
	// Generated words must not be stop words and must analyze to
	// themselves or a stable stem (so queries match documents).
	for i := 0; i < 50; i++ {
		w := c.Vocab(i)
		if index.IsStopword(w) {
			t.Fatalf("vocab word %q is a stopword", w)
		}
		toks := index.Analyze(w)
		if len(toks) != 1 {
			t.Fatalf("vocab word %q analyzed to %v", w, toks)
		}
	}
}

func TestRevise(t *testing.T) {
	c := Generate(DefaultConfig())
	rev1 := c.Revise(5, 1, 0.3)
	rev1b := c.Revise(5, 1, 0.3)
	if rev1.Text != rev1b.Text {
		t.Fatal("revision not deterministic")
	}
	if rev1.Text == c.Docs[5].Text {
		t.Fatal("revision did not change the text")
	}
	if rev1.URL != c.Docs[5].URL {
		t.Fatal("revision changed URL")
	}
	rev2 := c.Revise(5, 2, 0.3)
	if rev2.Text == rev1.Text {
		t.Fatal("different revisions should differ")
	}
	// Zero fraction: no change.
	same := c.Revise(5, 3, 0)
	if same.Text != c.Docs[5].Text {
		t.Fatal("zero-fraction revision should be identical")
	}
}

func TestQueriesHaveMatches(t *testing.T) {
	c := Generate(DefaultConfig())
	queries := c.Queries(7, 20, 2)
	if len(queries) != 20 {
		t.Fatalf("queries = %d", len(queries))
	}
	for _, q := range queries {
		if len(q.Terms) != 2 {
			t.Fatalf("query terms = %v", q.Terms)
		}
		// The query was sampled from some document; at least one doc
		// must contain both terms.
		found := false
		for _, d := range c.Docs {
			if strings.Contains(d.Text, q.Terms[0]) && strings.Contains(d.Text, q.Terms[1]) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %q has no matching doc", q.Text)
		}
	}
}

func TestQueriesDeterministic(t *testing.T) {
	c := Generate(DefaultConfig())
	a := c.Queries(1, 5, 3)
	b := c.Queries(1, 5, 3)
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatal("queries not deterministic")
		}
	}
	other := c.Queries(2, 5, 3)
	diff := false
	for i := range a {
		if a[i].Text != other[i].Text {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should give different queries")
	}
}

// hashCorpus collapses every document — URL, title, text, links — into
// one digest, so scale tests compare whole corpora cheaply.
func hashCorpus(c *Corpus) string {
	h := sha256.New()
	for _, d := range c.Docs {
		h.Write([]byte(d.URL))
		h.Write([]byte{0})
		h.Write([]byte(d.Title))
		h.Write([]byte{0})
		h.Write([]byte(d.Text))
		h.Write([]byte{0})
		for _, l := range d.Links {
			h.Write([]byte(l))
			h.Write([]byte{1})
		}
		h.Write([]byte{2})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGenerateDeterministicAtScale is the crawler pipeline's supply
// contract: at 10^4+ documents, two same-seed generations are
// byte-identical (streaming ingest experiments regenerate the corpus
// per configuration and rely on it), the Zipf vocabulary skew holds,
// and the link graph keeps its preferential-attachment shape. -short
// drops a decade so CI stays fast.
func TestGenerateDeterministicAtScale(t *testing.T) {
	numDocs := 10_000
	if testing.Short() {
		numDocs = 1_000
	}
	cfg := Config{Seed: 42, NumDocs: numDocs, VocabSize: 5000, ZipfS: 1.0, MeanDocLen: 30, MeanLinks: 3}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Docs) != numDocs {
		t.Fatalf("docs = %d", len(a.Docs))
	}
	if ha, hb := hashCorpus(a), hashCorpus(b); ha != hb {
		t.Fatalf("same-seed corpora diverged at %d docs: %s vs %s", numDocs, ha, hb)
	}
	other := cfg
	other.Seed = 43
	if hashCorpus(Generate(other)) == hashCorpus(a) {
		t.Fatal("different seeds produced identical corpora")
	}

	// Zipf skew survives scale: the top word dwarfs a mid-rank word.
	counts := map[string]int{}
	for _, d := range a.Docs {
		for _, w := range strings.Fields(d.Text) {
			counts[w]++
		}
	}
	if top, mid := counts[a.Vocab(0)], counts[a.Vocab(200)]; top <= mid*4 {
		t.Fatalf("vocabulary skew collapsed at scale: top=%d mid=%d", top, mid)
	}

	// Link-graph shape: links only point at earlier documents (the
	// generator's DAG invariant — the crawl frontier can rely on it),
	// in-degree stays heavy-tailed, and the graph is link-complete.
	in := map[string]int{}
	total := 0
	for i, d := range a.Docs {
		for _, l := range d.Links {
			var target int
			if _, err := fmt.Sscanf(l, "dweb://wiki/page-%d", &target); err != nil {
				t.Fatalf("doc %d: unparseable link %q", i, l)
			}
			if target >= i {
				t.Fatalf("doc %d links forward to %d: not a DAG", i, target)
			}
			in[l]++
			total++
		}
	}
	if total < numDocs {
		t.Fatalf("suspiciously few links: %d for %d docs", total, numDocs)
	}
	maxIn := 0
	for _, v := range in {
		if v > maxIn {
			maxIn = v
		}
	}
	if mean := float64(total) / float64(numDocs); float64(maxIn) < 8*mean {
		t.Fatalf("in-degree tail too flat at scale: max=%d mean=%.1f", maxIn, mean)
	}
}

func TestLinkGraphComplete(t *testing.T) {
	c := Generate(DefaultConfig())
	g := c.LinkGraph()
	if len(g) != len(c.Docs) {
		t.Fatalf("graph nodes = %d, want %d", len(g), len(c.Docs))
	}
}
