// Package corpus generates the synthetic workload that stands in for the
// paper's Wikipedia snapshot: documents with Zipf-distributed vocabulary,
// a preferential-attachment link graph (so in-degree — and therefore page
// rank — is skewed like the real web), an update stream, and query
// workloads drawn from document text so conjunctive queries have hits.
package corpus

import (
	"fmt"
	"strings"

	"repro/internal/xrand"
)

// Config tunes the generator.
type Config struct {
	Seed       uint64
	NumDocs    int
	VocabSize  int
	ZipfS      float64 // vocabulary skew (1.0 ≈ natural language)
	MeanDocLen int     // tokens per document
	MeanLinks  int     // outgoing links per document
}

// DefaultConfig returns a light corpus good for tests.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		NumDocs:    200,
		VocabSize:  2000,
		ZipfS:      1.0,
		MeanDocLen: 120,
		MeanLinks:  4,
	}
}

// Document is one synthetic page.
type Document struct {
	URL   string
	Title string
	Text  string
	Links []string
}

// Corpus is a generated document collection.
type Corpus struct {
	cfg   Config
	vocab []string
	Docs  []Document
}

// URLOf returns the canonical URL for document i.
func URLOf(i int) string { return fmt.Sprintf("dweb://wiki/page-%04d", i) }

// Generate builds a corpus deterministically from cfg.Seed.
func Generate(cfg Config) *Corpus {
	if cfg.NumDocs <= 0 {
		cfg.NumDocs = 100
	}
	if cfg.VocabSize <= 0 {
		cfg.VocabSize = 1000
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.0
	}
	if cfg.MeanDocLen <= 0 {
		cfg.MeanDocLen = 100
	}
	rng := xrand.New(cfg.Seed)
	c := &Corpus{cfg: cfg, vocab: makeVocab(cfg.VocabSize)}
	zipf := xrand.NewZipf(rng.Split(), cfg.ZipfS, cfg.VocabSize)

	inDegree := make([]int, cfg.NumDocs)
	for i := 0; i < cfg.NumDocs; i++ {
		doc := Document{URL: URLOf(i)}
		// Title: 2-4 mid-frequency words.
		titleWords := 2 + rng.Intn(3)
		var title []string
		for w := 0; w < titleWords; w++ {
			title = append(title, c.vocab[zipf.Next()])
		}
		doc.Title = strings.Join(title, " ")

		// Body length varies ±50% around the mean.
		length := cfg.MeanDocLen/2 + rng.Intn(cfg.MeanDocLen+1)
		var body []string
		body = append(body, title...) // titles appear in the body text
		for w := 0; w < length; w++ {
			body = append(body, c.vocab[zipf.Next()])
		}
		doc.Text = strings.Join(body, " ")

		// Preferential attachment: link to earlier docs ∝ (in-degree+1).
		if i > 0 && cfg.MeanLinks > 0 {
			nLinks := rng.Intn(2*cfg.MeanLinks + 1)
			weights := make([]float64, i)
			for j := 0; j < i; j++ {
				weights[j] = float64(inDegree[j] + 1)
			}
			seen := make(map[int]bool)
			for l := 0; l < nLinks; l++ {
				target := rng.Weighted(weights)
				if seen[target] {
					continue
				}
				seen[target] = true
				inDegree[target]++
				doc.Links = append(doc.Links, URLOf(target))
			}
		}
		c.Docs = append(c.Docs, doc)
	}
	return c
}

// makeVocab builds pronounceable deterministic words: syllable chains
// indexed in base-|syllables|.
func makeVocab(n int) []string {
	syll := []string{
		"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
		"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
		"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
		"ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
		"ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "vu",
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		v := i
		var b strings.Builder
		// At least two syllables so words survive the stemmer mostly
		// intact and never collide with the stop list.
		b.WriteString(syll[v%len(syll)])
		v /= len(syll)
		b.WriteString(syll[v%len(syll)])
		v /= len(syll)
		for v > 0 {
			b.WriteString(syll[v%len(syll)])
			v /= len(syll)
		}
		out[i] = b.String()
	}
	return out
}

// Vocab returns word i of the vocabulary (rank 0 = most frequent).
func (c *Corpus) Vocab(i int) string { return c.vocab[i] }

// LinkGraph returns url → outgoing links for the whole corpus.
func (c *Corpus) LinkGraph() map[string][]string {
	out := make(map[string][]string, len(c.Docs))
	for _, d := range c.Docs {
		out[d.URL] = append([]string(nil), d.Links...)
	}
	return out
}

// Revise produces an updated version of document i: a fraction of its
// tokens are redrawn, modelling an edit. The same corpus RNG state is not
// reused; revisions are deterministic per (seed, i, revision).
func (c *Corpus) Revise(i int, revision int, fraction float64) Document {
	doc := c.Docs[i]
	rng := xrand.NewNamed(c.cfg.Seed, fmt.Sprintf("revise:%d:%d", i, revision))
	zipf := xrand.NewZipf(rng.Split(), c.cfg.ZipfS, c.cfg.VocabSize)
	words := strings.Fields(doc.Text)
	for w := range words {
		if rng.Bool(fraction) {
			words[w] = c.vocab[zipf.Next()]
		}
	}
	out := doc
	out.Text = strings.Join(words, " ")
	return out
}

// Query is one search request with its expected AND semantics.
type Query struct {
	Text  string
	Terms []string
}

// Queries samples n conjunctive queries of the given length by taking
// consecutive tokens from random documents, so every query has at least
// one matching document.
func (c *Corpus) Queries(seed uint64, n, termsPerQuery int) []Query {
	rng := xrand.NewNamed(c.cfg.Seed, fmt.Sprintf("queries:%d", seed))
	if termsPerQuery <= 0 {
		termsPerQuery = 2
	}
	out := make([]Query, 0, n)
	for len(out) < n {
		doc := c.Docs[rng.Intn(len(c.Docs))]
		words := strings.Fields(doc.Text)
		if len(words) < termsPerQuery {
			continue
		}
		start := rng.Intn(len(words) - termsPerQuery + 1)
		terms := words[start : start+termsPerQuery]
		out = append(out, Query{
			Text:  strings.Join(terms, " "),
			Terms: append([]string(nil), terms...),
		})
	}
	return out
}
