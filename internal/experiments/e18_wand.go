package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Block-max WAND: scoring work vs corpus scale, exhaustive vs early-terminated",
		Claim: "decentralized search stays affordable at web scale only if a frontend can answer top-k queries without touching most of the index: block-max skip data keeps postings scanned per query near-flat while the corpus grows 100x, with results byte-identical to exhaustive scoring",
		Run:   runE18,
	})
}

// e18Scale holds one corpus scale's per-query averages for one mode.
type e18Scale struct {
	scanned   float64
	skipped   float64 // blocks
	docsSkip  float64
	simMs     float64
	identical bool // WAND result lists matched exhaustive ones exactly
}

// e18Run indexes an ndocs corpus as one batch (one v3 segment per
// shard) and replays the same top-10 query workload through two
// frontends on the same cluster — one on the block-max path, one forced
// exhaustive — returning per-query averages for both and whether every
// result list was identical.
func e18Run(seed uint64, ndocs int) (wand, exhaustive e18Scale) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = 12
	cfg.NumBees = 3
	c := core.NewCluster(cfg)
	owner := c.NewAccount("e18-owner", 1<<40)
	c.Seal()

	corp := corpus.Generate(corpus.Config{
		Seed:       seed,
		NumDocs:    ndocs,
		VocabSize:  2000,
		ZipfS:      1.0,
		MeanDocLen: 40,
		MeanLinks:  3,
	})
	pages := make([]core.BatchPage, len(corp.Docs))
	for i, d := range corp.Docs {
		pages[i] = core.BatchPage{URL: d.URL, Text: d.Text, Links: d.Links}
	}
	if _, err := c.IndexBatch(owner, pages); err != nil {
		panic(fmt.Sprintf("E18 index (%d docs): %v", ndocs, err))
	}
	c.RunUntilIdle(50)

	feWAND := core.NewFrontend(c, c.Peers[0])
	feEx := core.NewFrontend(c, c.Peers[1])
	feEx.SetUseBlockMax(false)

	queries := corp.Queries(seed, 16, 1)
	identical := true
	for _, q := range queries {
		cq := core.Query{Raw: q.Text, Mode: core.PlanAll, Limit: 10}
		wr, err := feWAND.Execute(cq)
		if err != nil {
			panic(fmt.Sprintf("E18 wand query %q: %v", q.Text, err))
		}
		er, err := feEx.Execute(cq)
		if err != nil {
			panic(fmt.Sprintf("E18 exhaustive query %q: %v", q.Text, err))
		}
		if wr.Total != er.Total || len(wr.Results) != len(er.Results) {
			identical = false
		} else {
			for i := range er.Results {
				if wr.Results[i] != er.Results[i] {
					identical = false
					break
				}
			}
		}
		wand.scanned += float64(wr.ScoreStats.PostingsScanned)
		wand.skipped += float64(wr.ScoreStats.BlocksSkipped)
		wand.docsSkip += float64(wr.ScoreStats.DocsSkipped)
		wand.simMs += float64(wr.Cost.Latency) / 1e6
		exhaustive.scanned += float64(er.ScoreStats.PostingsScanned)
		exhaustive.skipped += float64(er.ScoreStats.BlocksSkipped)
		exhaustive.docsSkip += float64(er.ScoreStats.DocsSkipped)
		exhaustive.simMs += float64(er.Cost.Latency) / 1e6
	}
	n := float64(len(queries))
	for _, s := range []*e18Scale{&wand, &exhaustive} {
		s.scanned /= n
		s.skipped /= n
		s.docsSkip /= n
		s.simMs /= n
		s.identical = identical
	}
	return wand, exhaustive
}

// runE18 compares exhaustive scoring against block-max WAND at three
// corpus scales. The reading that matters: the exhaustive row's
// postings-scanned column grows ~linearly with the corpus while the
// WAND row stays near-flat — and the "identical" column stays true,
// because early termination is a work optimization, never a ranking
// change (TestE18ResultsIdentical asserts it).
func runE18(seed uint64) []*metrics.Table {
	table := metrics.NewTable(
		"E18 — top-10 scoring work vs corpus scale, exhaustive vs block-max WAND (16 single-term queries)",
		"docs", "mode", "postings scanned/q", "blocks skipped/q", "docs skipped/q", "sim ms/q", "identical results")
	for _, ndocs := range []int{48, 480, 4800} {
		w, ex := e18Run(seed, ndocs)
		table.AddRow(ndocs, "exhaustive", fmt.Sprintf("%.1f", ex.scanned),
			fmt.Sprintf("%.1f", ex.skipped), fmt.Sprintf("%.1f", ex.docsSkip),
			fmt.Sprintf("%.1f", ex.simMs), ex.identical)
		table.AddRow(ndocs, "wand", fmt.Sprintf("%.1f", w.scanned),
			fmt.Sprintf("%.1f", w.skipped), fmt.Sprintf("%.1f", w.docsSkip),
			fmt.Sprintf("%.1f", w.simMs), w.identical)
	}
	return []*metrics.Table{table}
}
