package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Serving tier: frontend pool size, hedged reads, and deadline misses",
		Claim: "the frontend is stateless — any device can run one, so heavy query traffic is served by many frontends behind a balancer",
		Run:   runE14,
	})
}

// runE14 measures the serving tier in the simulator's own currency. A
// fixed 8-client query workload is replayed against pools of 1/2/4/8
// frontends, hedging off and on. Reported per configuration:
//
//   - p50/p99 simulated per-query latency: hedging attacks the p99 tail
//     (the slowest shard fetch is duplicated, first reply wins);
//   - deadline miss rate against a fixed per-query simulated deadline;
//   - serving makespan (the busiest frontend's accumulated simulated
//     time — each frontend serializes its own queries) and the
//     throughput speedup over pool=1.
func runE14(seed uint64) []*metrics.Table {
	const (
		peers      = 24
		bees       = 6
		docs       = 96
		clients    = 8
		perClient  = 12
		deadlineMS = 400
	)

	t := metrics.NewTable("E14 — serving tier: pool size × hedging",
		"pool", "hedged", "p50 ms", "p99 ms", "miss rate", "makespan ms", "speedup")
	var baseMakespan time.Duration
	for _, hedged := range []bool{false, true} {
		for _, size := range []int{1, 2, 4, 8} {
			c, corp := buildWorkloadCluster(seed, peers, bees, docs)
			pool := core.NewFrontendPool(c, size, hedged, deadlineMS*time.Millisecond)
			// One fixed workload for every configuration: the columns
			// compare pool shapes, not query samples.
			queries := corp.Queries(seed, clients*perClient, 2)

			var lat metrics.Histogram
			misses := 0
			for i, q := range queries {
				resp, err := pool.Execute(core.Query{Raw: q.Text, Mode: core.PlanAll, Limit: 10})
				if errors.Is(err, core.ErrDeadlineExceeded) {
					misses++
					lat.AddDuration(resp.Cost.Latency)
					continue
				}
				if err != nil {
					panic(fmt.Sprintf("E14 query %d: %v", i, err))
				}
				lat.AddDuration(resp.Cost.Latency)
			}

			var makespan time.Duration
			for _, f := range pool.Stats().Frontends {
				if f.BusySim > makespan {
					makespan = f.BusySim
				}
			}
			if size == 1 && !hedged {
				baseMakespan = makespan
			}
			speedup := 0.0
			if makespan > 0 && baseMakespan > 0 {
				speedup = float64(baseMakespan) / float64(makespan)
			}
			t.AddRow(size, onOff(hedged),
				lat.Median()*1000, lat.Quantile(0.99)*1000,
				float64(misses)/float64(len(queries)),
				float64(makespan)/float64(time.Millisecond), speedup)
		}
	}
	return []*metrics.Table{t}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
