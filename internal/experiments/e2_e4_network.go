package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Latency & throughput vs replication (DWeb advantage)",
		Claim: "better browsing experiences in terms of shorter latency and higher throughput",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "Resilience to node failure and partitioning",
		Claim: "better resiliency against network partitioning",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "Resilience to DDoS",
		Claim: "better resiliency against distributed-denial-of-service attacks",
		Run:   runE4,
	})
}

// buildStoreSwarm creates a bootstrapped content swarm.
func buildStoreSwarm(seed uint64, n int, k int) (*netsim.Network, []*store.Peer) {
	ncfg := netsim.DefaultConfig()
	ncfg.Seed = seed
	net := netsim.New(ncfg)
	dcfg := dht.DefaultConfig()
	if k > 0 {
		dcfg.K = k
	}
	peers := make([]*store.Peer, n)
	for i := range peers {
		d := dht.NewNode(net, netsim.NodeID(fmt.Sprintf("peer-%03d", i)), dcfg)
		peers[i] = store.NewPeer(net, d, store.DefaultPeerConfig())
	}
	seedContact := peers[0].DHT().Self()
	for _, p := range peers[1:] {
		//detlint:ignore costdrop swarm assembly; experiments measure steady-state traffic, not join cost
		p.DHT().Bootstrap([]dht.Contact{seedContact})
	}
	for _, p := range peers {
		//detlint:ignore costdrop swarm assembly; experiments measure steady-state traffic, not join cost
		p.DHT().Bootstrap([]dht.Contact{seedContact})
	}
	return net, peers
}

// runE2: a 10 KB document is published once; `r` early readers fetch it
// (becoming cache providers); then a wave of readers measures latency.
// More replicas → shorter paths and more aggregate service capacity.
func runE2(seed uint64) []*metrics.Table {
	const swarm = 64
	rng := xrand.New(seed)
	doc := make([]byte, 10_000)
	rng.Bytes(doc)

	t := metrics.NewTable("E2 — fetch latency & throughput vs replication",
		"replicas", "p50 ms", "p95 ms", "mean msgs", "providers", "est QPS capacity")

	for _, r := range []int{1, 2, 4, 8, 16} {
		_, peers := buildStoreSwarm(seed, swarm, 0)
		//detlint:ignore costdrop publish is setup; the table measures reader fetch costs
		root, _, err := peers[0].Add(doc)
		if err != nil {
			panic(err)
		}
		// Prime r-1 cache replicas (the publisher is the first).
		for i := 1; i < r; i++ {
			//detlint:ignore costdrop cache priming; the table measures the post-warm fetch wave
			if _, _, err := peers[i].Fetch(root); err != nil {
				panic(err)
			}
		}
		var lat, msgs metrics.Histogram
		readers := 0
		for i := r; i < r+30 && i < swarm; i++ {
			_, cost, err := peers[i].Fetch(root)
			if err != nil {
				continue
			}
			readers++
			lat.AddDuration(cost.Latency)
			msgs.Add(float64(cost.Msgs))
		}
		//detlint:ignore costdrop provider census probe; not part of the measured fetch wave
		providers, _, err := peers[swarm-1].DHT().FindProviders(root.Key(), 64)
		if err != nil {
			panic(err)
		}
		// Capacity proxy: each provider can serve ~1/latency QPS.
		capacity := 0.0
		if m := lat.Median(); m > 0 {
			capacity = float64(len(providers)) / m
		}
		t.AddRow(r, lat.Median()*1000, lat.Quantile(0.95)*1000, msgs.Mean(), len(providers), capacity)
	}

	// Latency references: the centralized origin, and the DWeb case the
	// paper's "shorter latency" claim actually rests on — content already
	// cached on (or near) the reading device.
	t2 := metrics.NewTable("E2b — latency reference points", "system", "p50 ms", "p95 ms")
	{
		_, peers := buildStoreSwarm(seed, 16, 0)
		//detlint:ignore costdrop publish is setup; the table measures repeat-fetch latency
		root, _, err := peers[0].Add(doc)
		if err != nil {
			panic(err)
		}
		var lat metrics.Histogram
		for i := 1; i < 11; i++ {
			// Cold fetch populates the cache; the measured fetch follows.
			//detlint:ignore costdrop cache-warming fetch; the table measures the repeat fetch
			if _, _, err := peers[i].Fetch(root); err != nil {
				panic(err)
			}
			_, cost, err := peers[i].Fetch(root)
			if err == nil {
				lat.AddDuration(cost.Latency)
			}
		}
		t2.AddRow("DWeb repeat fetch (local cache)", lat.Median()*1000, lat.Quantile(0.95)*1000)
	}
	{
		ncfg := netsim.DefaultConfig()
		ncfg.Seed = seed
		net := netsim.New(ncfg)
		net.Register("origin", func(netsim.NodeID, any) (any, error) {
			return sizedPayload{n: len(doc)}, nil
		})
		var lat metrics.Histogram
		for i := 0; i < 30; i++ {
			client := netsim.NodeID(fmt.Sprintf("client-%d", i))
			net.Register(client, nil)
			_, cost, err := net.Call(client, "origin", sizedPayload{n: 64})
			if err == nil {
				lat.AddDuration(cost.Latency)
			}
		}
		t2.AddRow("single origin server", lat.Median()*1000, lat.Quantile(0.95)*1000)
	}
	// Swarming ablation: a large (200 KB) document fetched from one
	// provider vs chunk-striped across four.
	t3 := metrics.NewTable("E2c — swarming fetch ablation (200 KB doc, 4 replicas)",
		"mode", "p50 ms", "p95 ms")
	for _, swarming := range []bool{false, true} {
		ncfg := netsim.DefaultConfig()
		ncfg.Seed = seed
		net := netsim.New(ncfg)
		pcfg := store.DefaultPeerConfig()
		pcfg.Swarming = swarming
		dcfg := dht.DefaultConfig()
		peers := make([]*store.Peer, 32)
		for i := range peers {
			d := dht.NewNode(net, netsim.NodeID(fmt.Sprintf("sw-%03d", i)), dcfg)
			peers[i] = store.NewPeer(net, d, pcfg)
		}
		seedContact := peers[0].DHT().Self()
		for _, p := range peers[1:] {
			//detlint:ignore costdrop swarm assembly; experiments measure steady-state traffic, not join cost
			p.DHT().Bootstrap([]dht.Contact{seedContact})
		}
		for _, p := range peers {
			//detlint:ignore costdrop swarm assembly; experiments measure steady-state traffic, not join cost
			p.DHT().Bootstrap([]dht.Contact{seedContact})
		}
		big := make([]byte, 200_000)
		xrand.New(seed + 7).Bytes(big)
		//detlint:ignore costdrop publish is setup; the table measures the swarming fetch
		root, _, err := peers[0].Add(big)
		if err != nil {
			panic(err)
		}
		for i := 1; i <= 3; i++ {
			//detlint:ignore costdrop replica priming; the table measures the post-warm fetch
			if _, _, err := peers[i].Fetch(root); err != nil {
				panic(err)
			}
		}
		var lat metrics.Histogram
		for i := 10; i < 25; i++ {
			_, cost, err := peers[i].Fetch(root)
			if err == nil {
				lat.AddDuration(cost.Latency)
			}
		}
		mode := "single provider"
		if swarming {
			mode = "swarming (striped)"
		}
		t3.AddRow(mode, lat.Median()*1000, lat.Quantile(0.95)*1000)
	}
	return []*metrics.Table{t, t2, t3}
}

type sizedPayload struct{ n int }

func (s sizedPayload) WireSize() int { return s.n }

// runE3: availability under crash faults and a 50/50 partition,
// QueenBee's replicated DHT vs the centralized engine.
func runE3(seed uint64) []*metrics.Table {
	const swarm = 48
	const docs = 30
	rng := xrand.New(seed)

	t := metrics.NewTable("E3 — fetch availability vs failed fraction",
		"failed %", "DWeb success %", "central success %")

	for _, frac := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		net, peers := buildStoreSwarm(seed, swarm, 0)
		roots := make([]store.CID, docs)
		for i := 0; i < docs; i++ {
			data := []byte(fmt.Sprintf("document %d body %d", i, rng.Intn(1000)))
			//detlint:ignore costdrop corpus population; the table measures availability, not cost
			root, _, err := peers[i%16].Add(data)
			if err != nil {
				panic(err)
			}
			roots[i] = root
			// One cache replica each (pre-failure, so it cannot fail).
			//detlint:ignore costdrop replica priming; the table measures availability, not cost
			if _, _, err := peers[(i+16)%32].Fetch(root); err != nil {
				panic(err)
			}
		}
		// Centralized reference on the same network.
		clock := vclock.New(time.Time{})
		src := baseline.NewMapSource()
		for i := 0; i < docs; i++ {
			src.Set(urlOf(i), fmt.Sprintf("central doc %d", i))
		}
		central := baseline.NewCentralEngine(net, clock, "central-server", src, time.Hour)

		// Fail a fraction of nodes — the reader (last peer) stays up; the
		// central server fails as soon as any fraction does (it is one of
		// the machines).
		down := int(frac * swarm)
		perm := rng.Perm(swarm - 1)
		for i := 0; i < down; i++ {
			net.SetDown(peers[perm[i]].Addr(), true)
		}
		if down > 0 {
			net.SetDown(central.Addr(), true)
		}

		reader := peers[swarm-1]
		ok := 0
		for _, root := range roots {
			//detlint:ignore costdrop availability probe; only success/failure feeds the table
			if _, _, err := reader.Fetch(root); err == nil {
				ok++
			}
		}
		centralOK := 0
		for i := 0; i < docs; i++ {
			//detlint:ignore costdrop availability probe; only success/failure feeds the table
			if _, _, err := central.Search("peer-047", "central doc", 10); err == nil {
				centralOK++
			}
		}
		t.AddRow(int(frac*100), 100*float64(ok)/docs, 100*float64(centralOK)/docs)
	}

	// Partition scenario: split the swarm in half; a reader in each half
	// fetches content published pre-partition.
	t2 := metrics.NewTable("E3b — 50/50 partition", "scenario", "success %")
	{
		net, peers := buildStoreSwarm(seed, swarm, 0)
		roots := make([]store.CID, docs)
		for i := 0; i < docs; i++ {
			//detlint:ignore costdrop corpus population; the table measures availability, not cost
			root, _, err := peers[i%swarm].Add([]byte(fmt.Sprintf("partition doc %d", i)))
			if err != nil {
				panic(err)
			}
			roots[i] = root
			// Replica in the other half, placed pre-partition.
			//detlint:ignore costdrop replica priming; the table measures availability, not cost
			if _, _, err := peers[(i+swarm/2)%swarm].Fetch(root); err != nil {
				panic(err)
			}
		}
		groups := map[netsim.NodeID]int{}
		for i, p := range peers {
			groups[p.Addr()] = i % 2
		}
		net.SetPartition(groups)
		okA, okB := 0, 0
		for _, root := range roots {
			//detlint:ignore costdrop availability probe; only success/failure feeds the table
			if _, _, err := peers[0].Fetch(root); err == nil {
				okA++
			}
			//detlint:ignore costdrop availability probe; only success/failure feeds the table
			if _, _, err := peers[1].Fetch(root); err == nil {
				okB++
			}
		}
		t2.AddRow("DWeb side A", 100*float64(okA)/docs)
		t2.AddRow("DWeb side B", 100*float64(okB)/docs)
		t2.AddRow("central (server in other half)", 0.0)
	}
	return []*metrics.Table{t, t2}
}

// runE4: attacker load vs query success for one central server vs the
// spread-out swarm. The attacker has a fixed budget of L× the server's
// capacity; against the swarm the same budget spreads across all nodes.
func runE4(seed uint64) []*metrics.Table {
	const swarm = 48
	const capacity = 200.0 // requests/sec each node can serve

	t := metrics.NewTable("E4 — query success under DDoS",
		"attack ×capacity", "central success %", "central p95 ms", "DWeb success %", "DWeb p95 ms")

	for _, load := range []float64{0, 1, 4, 16, 64} {
		net, peers := buildStoreSwarm(seed, swarm, 0)
		clock := vclock.New(time.Time{})
		src := baseline.NewMapSource()
		for i := 0; i < 20; i++ {
			src.Set(urlOf(i), fmt.Sprintf("searchable doc %d content", i))
		}
		central := baseline.NewCentralEngine(net, clock, "central-server", src, time.Hour)
		net.SetCapacity(central.Addr(), capacity)
		net.SetOfferedLoad(central.Addr(), load*capacity)

		// DWeb content: one doc replicated a few times.
		//detlint:ignore costdrop corpus population; the table measures success under attack load
		root, _, err := peers[0].Add([]byte("resilient searchable content"))
		if err != nil {
			panic(err)
		}
		for i := 1; i < 4; i++ {
			// Replicate before the attacker load is applied.
			//detlint:ignore costdrop replica priming; the table measures success under attack load
			if _, _, err := peers[i].Fetch(root); err != nil {
				panic(err)
			}
		}
		// The attacker's identical budget spread across the whole swarm.
		for _, p := range peers {
			net.SetCapacity(p.Addr(), capacity)
			net.SetOfferedLoad(p.Addr(), load*capacity/float64(swarm))
		}

		var cLat, dLat metrics.Histogram
		cOK, dOK := 0, 0
		const trials = 60
		for i := 0; i < trials; i++ {
			if _, cost, err := central.Search(peers[swarm-1].Addr(), "searchable doc", 5); err == nil {
				cOK++
				cLat.AddDuration(cost.Latency)
			}
			reader := peers[swarm-1-(i%8)]
			if _, cost, err := reader.Fetch(root); err == nil {
				dOK++
				dLat.AddDuration(cost.Latency)
			}
		}
		t.AddRow(load,
			100*float64(cOK)/trials, cLat.Quantile(0.95)*1000,
			100*float64(dOK)/trials, dLat.Quantile(0.95)*1000)
	}
	return []*metrics.Table{t}
}
